// Command trasyn synthesizes a single-qubit unitary into a Clifford+T
// sequence using the tensor-network search, and compares against the
// gridsynth baseline.
//
// Usage:
//
//	trasyn -theta 0.3 -phi 1.1 -lambda -0.4 [-budget 8] [-tensors 2] [-samples 2000] [-eps 0]
//	trasyn -rz 0.7241 -eps 0.001        # synthesize a single Rz via both engines
//	trasyn -random [-seed 1]            # Haar-random target
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
)

func main() {
	var (
		theta   = flag.Float64("theta", 0, "U3 θ")
		phi     = flag.Float64("phi", 0, "U3 φ")
		lambda  = flag.Float64("lambda", 0, "U3 λ")
		rz      = flag.Float64("rz", 0, "synthesize Rz(angle) instead of a U3")
		random  = flag.Bool("random", false, "use a Haar-random target")
		seed    = flag.Int64("seed", 1, "random seed")
		budget  = flag.Int("budget", 8, "per-tensor T budget m")
		tensors = flag.Int("tensors", 2, "max MPS tensors l")
		samples = flag.Int("samples", 2000, "samples k")
		eps     = flag.Float64("eps", 0, "error threshold (0 = best effort)")
		beam    = flag.Bool("beam", false, "deterministic beam search")
	)
	flag.Parse()

	var u repro.M2
	switch {
	case *random:
		u = repro.HaarRandom(rand.New(rand.NewSource(*seed)))
		fmt.Printf("target: Haar-random (seed %d)\n", *seed)
	case *rz != 0:
		u = repro.Rz(*rz)
		fmt.Printf("target: Rz(%g)\n", *rz)
	default:
		u = repro.U3(*theta, *phi, *lambda)
		fmt.Printf("target: U3(%g, %g, %g)\n", *theta, *phi, *lambda)
	}

	res := repro.Synthesize(u, repro.SynthOptions{
		TBudget: *budget, Tensors: *tensors, Samples: *samples,
		Epsilon: *eps, Beam: *beam, Seed: *seed,
	})
	fmt.Printf("trasyn:    T=%-3d Clifford=%-3d error=%.3e\n", res.TCount, res.Clifford, res.Error)
	fmt.Printf("  sequence: %v\n", res.Seq)

	geps := res.Error
	if *eps > 0 {
		geps = *eps
	}
	if geps <= 0 || geps >= 1 {
		geps = 1e-2
	}
	var gres repro.SynthResult
	var err error
	if *rz != 0 {
		gres, err = repro.GridsynthRz(*rz, geps)
	} else {
		gres, err = repro.GridsynthU3(u, geps)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsynth failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("gridsynth: T=%-3d Clifford=%-3d error=%.3e (eps=%.1e)\n",
		gres.TCount, gres.Clifford, gres.Error, geps)
	if res.TCount > 0 {
		fmt.Printf("T-count ratio (gridsynth/trasyn): %.2fx\n", float64(gres.TCount)/float64(res.TCount))
	}
}
