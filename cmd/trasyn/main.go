// Command trasyn synthesizes a single-qubit unitary into a Clifford+T
// sequence through the unified synth.Backend API, and compares against the
// gridsynth baseline.
//
// Usage:
//
//	trasyn -theta 0.3 -phi 1.1 -lambda -0.4 [-budget 8] [-tensors 2] [-samples 2000] [-eps 0]
//	trasyn -rz 0.7241 -eps 0.001        # synthesize a single Rz via both engines
//	trasyn -random [-seed 1]            # Haar-random target
//	trasyn -backend auto -random        # race trasyn vs gridsynth
//	trasyn -backends                    # list registered backends
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro"
	"repro/synth"
)

func main() {
	var (
		theta    = flag.Float64("theta", 0, "U3 θ")
		phi      = flag.Float64("phi", 0, "U3 φ")
		lambda   = flag.Float64("lambda", 0, "U3 λ")
		rz       = flag.Float64("rz", 0, "synthesize Rz(angle) instead of a U3")
		random   = flag.Bool("random", false, "use a Haar-random target")
		seed     = flag.Int64("seed", 1, "random seed")
		budget   = flag.Int("budget", 8, "per-tensor T budget m")
		tensors  = flag.Int("tensors", 2, "max MPS tensors l")
		samples  = flag.Int("samples", 2000, "samples k")
		eps      = flag.Float64("eps", 0, "error threshold (0 = best effort)")
		beam     = flag.Bool("beam", false, "deterministic beam search")
		backend  = flag.String("backend", "trasyn", "synthesis backend: "+strings.Join(synth.List(), ", "))
		timeout  = flag.Duration("timeout", 0, "per-synthesis wall-clock budget (0 = none)")
		backends = flag.Bool("backends", false, "list registered backends and exit")
	)
	flag.Parse()

	if *backends {
		for _, n := range synth.List() {
			fmt.Println(n)
		}
		return
	}
	be, ok := synth.Lookup(*backend)
	if !ok {
		fmt.Fprintf(os.Stderr, "trasyn: unknown backend %q (have %s)\n", *backend, strings.Join(synth.List(), ", "))
		os.Exit(1)
	}

	var u repro.M2
	switch {
	case *random:
		u = repro.HaarRandom(rand.New(rand.NewSource(*seed)))
		fmt.Printf("target: Haar-random (seed %d)\n", *seed)
	case *rz != 0:
		u = repro.Rz(*rz)
		fmt.Printf("target: Rz(%g)\n", *rz)
	default:
		u = repro.U3(*theta, *phi, *lambda)
		fmt.Printf("target: U3(%g, %g, %g)\n", *theta, *phi, *lambda)
	}

	req := synth.Request{
		Epsilon: *eps, TBudget: *budget, Tensors: *tensors, Samples: *samples,
		Beam: *beam, Seed: synth.Seed(*seed), Timeout: *timeout,
	}
	ctx := context.Background()
	res, err := be.Synthesize(ctx, u, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", *backend, err)
		os.Exit(1)
	}
	fmt.Printf("%-10s T=%-3d Clifford=%-3d error=%.3e wall=%s\n",
		res.Backend+":", res.TCount, res.Clifford, res.Error, res.Wall.Round(time.Microsecond))
	fmt.Printf("  sequence: %v\n", res.Seq)

	if *backend == "gridsynth" {
		return // nothing to compare against itself
	}
	geps := res.Error
	if *eps > 0 {
		geps = *eps
	}
	if geps <= 0 || geps >= 1 {
		geps = 1e-2
	}
	gs, _ := synth.Lookup("gridsynth")
	gres, err := gs.Synthesize(ctx, u, synth.Request{Epsilon: geps, Timeout: *timeout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsynth failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-10s T=%-3d Clifford=%-3d error=%.3e (eps=%.1e)\n",
		"gridsynth:", gres.TCount, gres.Clifford, gres.Error, geps)
	if res.TCount > 0 {
		fmt.Printf("T-count ratio (gridsynth/%s): %.2fx\n", res.Backend, float64(gres.TCount)/float64(res.TCount))
	}
}
