// Command compile is the circuit front end to the synth pass-pipeline
// API: it reads an OpenQASM 2.0 circuit from a file or stdin, runs a
// configurable pipeline (backend, IR, passes, error budget), and emits the
// lowered Clifford+T circuit as QASM plus a one-line JSON stats record.
//
// Usage:
//
//	compile circuit.qasm                          # default pipeline, auto backend
//	compile -backend trasyn -eps 0.01 circuit.qasm
//	compile -opt 2 circuit.qasm                   # T-count optimizer on
//	cat circuit.qasm | compile -                  # read from stdin
//	compile -ir rz -backend gridsynth -rot-eps 1e-3 circuit.qasm
//	compile -passes transpile,lower circuit.qasm  # custom pass sequence
//	compile -o out.qasm -v circuit.qasm           # QASM to file, progress to stderr
//	compile -remote http://127.0.0.1:8077 circuit.qasm  # compile on a synthd daemon
//
// With -remote the compile runs on a synthd daemon (cmd/synthd) instead of
// in-process, sharing the daemon's warm persistent cache with every other
// client; the same flags configure the request and the output shape is
// identical. -workers and -v stay daemon-side concerns and are ignored.
//
// The lowered QASM goes to stdout (or -o file); the JSON stats line goes
// to stderr (or stdout when -o redirects the QASM), so pipelines can
// split the two streams:
//
//	compile -eps 0.01 in.qasm > out.qasm 2> stats.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/circuit"
	"repro/optimize"
	"repro/synth"
	"repro/synth/serve"
	"repro/synth/serve/client"
	"repro/synth/trace"
)

// stats is the JSON record emitted after a successful compile — the same
// shape serve.CompileStats uses, so local and remote runs are diffable.
type stats = serve.CompileStats

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "compile: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		backend  = flag.String("backend", "auto", "synthesis backend: "+strings.Join(synth.List(), ", "))
		eps      = flag.Float64("eps", 0, "circuit-level error budget ε, split across rotations (0 = per-rotation mode)")
		rotEps   = flag.Float64("rot-eps", 0, "per-rotation epsilon when -eps is 0 (0 = backend default)")
		budget   = flag.String("budget", "uniform", "ε-splitting strategy for -eps: uniform, weighted")
		irFlag   = flag.String("ir", "auto", "lowering IR: auto, u3, rz")
		passes   = flag.String("passes", "", "comma-separated pass list (default: "+strings.Join(synth.PassNames(), ",")+")")
		opt      = flag.Int("opt", 0, "T-count optimizer level: 0 off, 1 pre-lowering rotation folding, 2 also post-lowering Clifford+T peephole")
		fuse2q   = flag.Bool("fuse2q", false, "fuse two-qubit blocks via KAK re-synthesis before transpiling")
		optList  = flag.String("optimizers", "", "comma-separated post-lowering rule chain (implies -opt 2; have: "+strings.Join(optimize.List(), ", ")+")")
		workers  = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		samples  = flag.Int("samples", 0, "trasyn samples k (0 = default)")
		tbudget  = flag.Int("tbudget", 0, "trasyn per-tensor T budget m (0 = default)")
		seed     = flag.Int64("seed", 1, "base seed for deterministic per-rotation seeding")
		timeout  = flag.Duration("timeout", 0, "whole-compile wall-clock budget (0 = none)")
		outPath  = flag.String("o", "", "write lowered QASM here instead of stdout")
		verbose  = flag.Bool("v", false, "report pass and synthesis progress on stderr")
		remote   = flag.String("remote", "", "compile on a synthd daemon at this base URL instead of in-process")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON profile of this compile here (open in chrome://tracing)")
	)
	flag.Parse()

	src, name, err := readInput(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}

	// An explicit -passes list overrides the canned sequence, so the opt
	// flags would be silently ignored — refuse the combination instead
	// (compose optrot/optct inside -passes when hand-building).
	if *passes != "" && (*opt > 0 || *optList != "") {
		fail("-opt/-optimizers cannot be combined with -passes; add optrot/optct to the -passes list instead")
	}
	if *passes != "" && *fuse2q {
		fail("-fuse2q cannot be combined with -passes; add fuse2q to the -passes list instead")
	}

	var optimizers []string
	if *optList != "" {
		for _, n := range strings.Split(*optList, ",") {
			n = strings.TrimSpace(n)
			if _, ok := optimize.Lookup(n); !ok {
				fail("unknown optimizer %q (have %s)", n, strings.Join(optimize.List(), ", "))
			}
			optimizers = append(optimizers, n)
		}
	}

	if *remote != "" {
		req := serve.CompileRequest{
			QASM:       src,
			Backend:    *backend,
			Eps:        *eps,
			RotEps:     *rotEps,
			Budget:     *budget,
			IR:         *irFlag,
			Samples:    *samples,
			TBudget:    *tbudget,
			Seed:       synth.Seed(*seed),
			OptLevel:   *opt,
			Optimizers: optimizers,
			Fuse2Q:     *fuse2q,
			TimeoutMs:  int(*timeout / time.Millisecond),
		}
		if *passes != "" {
			for _, n := range strings.Split(*passes, ",") {
				req.Passes = append(req.Passes, strings.TrimSpace(n))
			}
		}
		// The flag is forwarded as timeout_ms for the daemon AND enforced
		// here, so a stalled daemon cannot outlive the local budget.
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		tracer, root := startTrace(*traceOut, "compile.remote")
		ctx = trace.NewContext(ctx, root)
		res, err := client.New(*remote).Compile(ctx, req)
		if err != nil {
			fail("remote compile of %s: %v", name, err)
		}
		root.SetAttr("backend", res.Stats.Backend)
		writeTrace(*traceOut, tracer, root)
		if *traceOut != "" && res.Stats.TraceID != "" {
			fmt.Fprintf(os.Stderr, "compile: daemon-side spans: GET %s/debug/trace?id=%s\n",
				strings.TrimRight(*remote, "/"), res.Stats.TraceID)
		}
		emit(res.QASM, res.Stats, *outPath)
		return
	}

	circ, err := circuit.ParseQASM(src)
	if err != nil {
		fail("parsing %s: %v", name, err)
	}

	ir, ok := synth.ParseIR(*irFlag)
	if !ok {
		fail("unknown -ir %q (have auto, u3, rz)", *irFlag)
	}
	strat, ok := synth.ParseBudgetStrategy(*budget)
	if !ok {
		fail("unknown -budget %q (have uniform, weighted)", *budget)
	}

	opts := []synth.Option{
		synth.WithRequest(synth.Request{
			Epsilon: *rotEps, Samples: *samples, TBudget: *tbudget, Seed: synth.Seed(*seed),
		}),
		synth.WithWorkers(*workers),
		synth.WithIR(ir),
	}
	if *eps > 0 {
		opts = append(opts, synth.WithCircuitEpsilon(*eps), synth.WithBudgetStrategy(strat))
	}
	if *opt > 0 {
		opts = append(opts, synth.WithOptimize(*opt))
	}
	if *fuse2q {
		opts = append(opts, synth.WithFuseBlocks())
	}
	if len(optimizers) > 0 {
		opts = append(opts, synth.WithOptimizers(optimizers...))
	}
	if *passes != "" {
		var ps []synth.Pass
		for _, n := range strings.Split(*passes, ",") {
			p, ok := synth.LookupPass(strings.TrimSpace(n))
			if !ok {
				fail("unknown pass %q (have %s)", n, strings.Join(synth.PassNames(), ", "))
			}
			ps = append(ps, p)
		}
		opts = append(opts, synth.WithPasses(ps...))
	}
	if *verbose {
		opts = append(opts, synth.WithProgress(func(ev synth.ProgressEvent) {
			if ev.Total == 0 {
				fmt.Fprintf(os.Stderr, "compile: pass %s\n", ev.Pass)
			} else if ev.Done == ev.Total || ev.Done%16 == 0 {
				fmt.Fprintf(os.Stderr, "compile: %s %d/%d\n", ev.Pass, ev.Done, ev.Total)
			}
		}))
	}

	pl, err := synth.NewPipelineFor(*backend, opts...)
	if err != nil {
		fail("%v", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	tracer, root := startTrace(*traceOut, "compile")
	res, err := pl.Run(trace.NewContext(ctx, root), circ)
	if err != nil {
		fail("compiling %s: %v", name, err)
	}
	root.SetAttr("backend", res.Backend)
	writeTrace(*traceOut, tracer, root)

	emit(res.Circuit.QASM(), serve.NewCompileStats(res, pl.Passes(), *eps, strat), *outPath)
}

// startTrace builds the always-sample tracer behind -trace. Without the
// flag both returns are nil, and every span operation downstream no-ops.
func startTrace(path, name string) (*trace.Tracer, *trace.Span) {
	if path == "" {
		return nil, nil
	}
	tracer := trace.New(trace.Config{SampleRatio: 1})
	return tracer, tracer.Start(name)
}

// writeTrace ends the root span and writes the collected trace as Chrome
// trace_event JSON to path (the -trace flag).
func writeTrace(path string, tracer *trace.Tracer, root *trace.Span) {
	if path == "" {
		return
	}
	root.End()
	f, err := os.Create(path)
	if err != nil {
		fail("creating -trace file: %v", err)
	}
	if err := trace.WriteChrome(f, tracer.Collect(root.TraceID())...); err != nil {
		fail("writing -trace file: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("writing -trace file: %v", err)
	}
	fmt.Fprintf(os.Stderr, "compile: trace written to %s (open in chrome://tracing)\n", path)
}

// emit writes the lowered QASM to stdout (or outPath) and the one-line
// JSON stats record to the other stream, so pipelines can split the two.
func emit(qasm string, st stats, outPath string) {
	qasmOut := os.Stdout
	statsOut := io.Writer(os.Stderr)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		qasmOut = f
		statsOut = os.Stdout
	}
	if _, err := io.WriteString(qasmOut, qasm); err != nil {
		fail("writing QASM: %v", err)
	}
	line, err := json.Marshal(st)
	if err != nil {
		fail("encoding stats: %v", err)
	}
	fmt.Fprintln(statsOut, string(line))
}

// readInput resolves the positional argument: a path, "-" or empty for
// stdin.
func readInput(arg string) (src, name string, err error) {
	if arg == "" || arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", "", fmt.Errorf("reading stdin: %w", err)
		}
		return string(b), "stdin", nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return string(b), arg, nil
}
