// Command synthload is the cluster load generator: it drives one or more
// synthd nodes at a target request rate with rotation batches drawn from
// the circuit/gen workload corpus, measures per-request latency
// client-side, and appends the run — p50/p99, hit rate, throttle and
// error counts (with a per-status-code breakdown, and transport-level
// failures tallied separately), machine info — as a dated entry to
// BENCH_serve.json.
//
// Arrivals are open-loop: requests launch on the offered schedule
// (start + i/rps) regardless of how many are still outstanding, so a
// saturated or degraded cluster shows up as latency and 429/503 counts
// instead of silently slowing the generator down (closed-loop generators
// measure their own backpressure, not the service). Targets are hit
// round-robin, which on a consistent-hash cluster makes every node serve
// every key — the cache-affinity stress the peer-lookup path exists for.
//
// Usage:
//
//	synthload -targets http://127.0.0.1:8077 -rps 25 -duration 10s
//	synthload -targets http://n1:8077,http://n2:8077,http://n3:8077 \
//	          -rps 25 -duration 30s -eps 1e-2 -backend gridsynth \
//	          -tenant bench -retries 0 -label 3-node -out BENCH_serve.json
//
// The workload is deterministic: the angle pool is extracted from
// circuit/gen QAOA circuits at fixed seeds, and requests walk the pool
// round-robin, so a run longer than one pool lap is exactly the repeated
// workload a warm cache should absorb.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/circuit"
	"repro/circuit/gen"
	"repro/synth/serve"
	"repro/synth/serve/client"
)

type result struct {
	latencyMs float64
	status    string // ok | throttled | rejected | error
	code      int    // HTTP status, or 0 for a transport-level failure
	hits      int64
	misses    int64
}

type entry struct {
	Date     string  `json:"date"`
	Label    string  `json:"label"`
	Targets  int     `json:"targets"`
	Backend  string  `json:"backend"`
	Eps      float64 `json:"eps"`
	RPS      float64 `json:"offered_rps"`
	Duration string  `json:"duration"`
	Batch    int     `json:"batch"`
	Angles   int     `json:"angle_pool"`

	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Throttled int     `json:"throttled"`
	Rejected  int     `json:"rejected"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	HitRate   float64 `json:"hit_rate"`

	// TransportErrors are failures that never produced an HTTP status —
	// refused/reset connections, timeouts — i.e. a dead or unreachable
	// node, as distinct from a node that answered with a rejection.
	// ByCode counts every non-200 HTTP status the run saw ("429", "503",
	// "500", …), so a chaos run can bound specific failure classes.
	TransportErrors int            `json:"transport_errors"`
	ByCode          map[string]int `json:"by_code,omitempty"`

	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MeanMs     float64 `json:"mean_ms"`
	AchievedR  float64 `json:"achieved_rps"`
	Machine    machine `json:"machine"`
	Note       string  `json:"note,omitempty"`
	TenantsRun string  `json:"tenant,omitempty"`

	// Backends is the server-side attribution scraped from /v1/stats
	// after the run (federated when multiple targets were driven): which
	// backend actually served each (ε-band, class) cell and at what
	// latency quantiles — numbers client-side timing cannot see.
	Backends []backendStat `json:"backends,omitempty"`
}

// backendStat is one /v1/stats cell flattened for the bench record.
type backendStat struct {
	Backend     string  `json:"backend"`
	EpsBand     string  `json:"eps_band"`
	Class       string  `json:"class"`
	Count       int64   `json:"count"`
	CacheHits   int64   `json:"cache_hits"`
	Synthesized int64   `json:"synthesized"`
	Wins        int64   `json:"wins"`
	Losses      int64   `json:"losses"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

type machine struct {
	NProc      int    `json:"nproc"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
}

type report struct {
	Benchmark   string  `json:"benchmark"`
	Description string  `json:"description"`
	Entries     []entry `json:"entries"`
}

func newReport() *report {
	return &report{
		Benchmark: "synthload",
		Description: "Open-loop load generation against synthd (1..N nodes, round-robin): " +
			"rotation batches from the circuit/gen QAOA corpus at a fixed offered RPS; " +
			"client-side p50/p95/p99 latency, cluster-wide cache hit rate, and " +
			"throttle (429) / rejection (503) / error counts.",
	}
}

func main() {
	var (
		targets   = flag.String("targets", "http://127.0.0.1:8077", "comma-separated synthd base URLs, hit round-robin")
		rps       = flag.Float64("rps", 25, "offered request rate (open loop)")
		duration  = flag.Duration("duration", 10*time.Second, "generation window")
		eps       = flag.Float64("eps", 1e-2, "per-rotation epsilon")
		backend   = flag.String("backend", "gridsynth", "backend for every request")
		batch     = flag.Int("batch", 1, "rotations per request")
		angles    = flag.Int("angles", 32, "distinct angles in the workload pool")
		seed      = flag.Int64("seed", 1, "corpus seed (the angle pool is deterministic in it)")
		tenant    = flag.String("tenant", "", "X-Tenant header value (empty = anonymous)")
		retries   = flag.Int("retries", 0, "client retries on 429/503 (0 = measure raw rejections)")
		reqTO     = flag.Duration("req-timeout", 30*time.Second, "per-request deadline")
		label     = flag.String("label", "", "entry label for BENCH_serve.json (e.g. 1-node, 3-node)")
		note      = flag.String("note", "", "free-form note stored with the entry")
		out       = flag.String("out", "BENCH_serve.json", "report path, appended to if it exists (empty = don't record)")
		warmWaves = flag.Int("warm-waves", 0, "closed-loop laps over the angle pool before the timed window (pre-warms the cluster)")
	)
	flag.Parse()

	urls := splitNonEmpty(*targets)
	if len(urls) == 0 {
		fatalf("no -targets")
	}
	if *rps <= 0 || *batch <= 0 || *angles <= 0 {
		fatalf("-rps, -batch and -angles must be positive")
	}
	pool := anglePool(*angles, *seed)

	clients := make([]*client.Client, len(urls))
	opts := []client.Option{client.WithRetry(*retries)}
	if *tenant != "" {
		opts = append(opts, client.WithTenant(*tenant))
	}
	for i, u := range urls {
		clients[i] = client.New(u, opts...)
	}

	ctx := context.Background()
	for i, cl := range clients {
		if _, err := cl.Health(ctx); err != nil {
			fatalf("target %s unhealthy: %v", urls[i], err)
		}
	}

	request := func(i int) serve.SynthesizeRequest {
		rots := make([]serve.Rotation, *batch)
		for j := range rots {
			rots[j] = serve.Rotation{Gate: "rz", Params: [3]float64{pool[(i**batch+j)%len(pool)]}}
		}
		return serve.SynthesizeRequest{Rotations: rots, Backend: *backend, Eps: *eps}
	}

	// Optional closed-loop warmup: one request per pool angle per wave,
	// spread over the targets, so the timed window measures the steady
	// state instead of the cold ramp.
	for w := 0; w < *warmWaves; w++ {
		for i := 0; i < (len(pool)+*batch-1)/(*batch); i++ {
			cl := clients[i%len(clients)]
			cctx, cancel := context.WithTimeout(ctx, *reqTO)
			if _, err := cl.Synthesize(cctx, request(i)); err != nil {
				fmt.Fprintf(os.Stderr, "synthload: warmup: %v\n", err)
			}
			cancel()
		}
	}

	interval := time.Duration(float64(time.Second) / *rps)
	total := int(float64(*duration) / float64(interval))
	fmt.Fprintf(os.Stderr, "synthload: %d requests over %s (%.1f rps, %d targets, pool %d angles)\n",
		total, *duration, *rps, len(urls), len(pool))

	results := make([]result, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		// Open loop: fire at the scheduled arrival even if earlier
		// requests are still in flight.
		if wait := start.Add(time.Duration(i) * interval).Sub(time.Now()); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := clients[i%len(clients)]
			cctx, cancel := context.WithTimeout(ctx, *reqTO)
			defer cancel()
			t0 := time.Now()
			resp, err := cl.Synthesize(cctx, request(i))
			lat := time.Since(t0)
			r := result{latencyMs: float64(lat) / float64(time.Millisecond)}
			switch {
			case err == nil:
				r.status = "ok"
				r.code = 200
				r.hits, r.misses = resp.Hits, resp.Misses
			default:
				var ae *client.APIError
				if errors.As(err, &ae) {
					r.code = ae.Status
					switch ae.Status {
					case 429:
						r.status = "throttled"
					case 503:
						r.status = "rejected"
					default:
						r.status = "error"
					}
				} else {
					r.status = "error" // transport-level: no status reached us
				}
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ent := summarize(results, elapsed)
	ent.Date = time.Now().UTC().Format("2006-01-02")
	ent.Label = *label
	ent.Targets = len(urls)
	ent.Backend = *backend
	ent.Eps = *eps
	ent.RPS = *rps
	ent.Duration = duration.String()
	ent.Batch = *batch
	ent.Angles = len(pool)
	ent.Note = *note
	ent.TenantsRun = *tenant
	ent.Machine = machine{
		NProc:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
	}

	// Server-side backend attribution: scrape /v1/stats from the first
	// target (federated when the run drove several — any cluster member
	// answers for the fleet). Best effort: a daemon predating the endpoint
	// costs the table, not the run.
	sctx, scancel := context.WithTimeout(ctx, *reqTO)
	if stats, err := clients[0].Stats(sctx, len(urls) > 1); err != nil {
		fmt.Fprintf(os.Stderr, "synthload: scraping /v1/stats: %v (skipping backend table)\n", err)
	} else {
		for _, c := range stats.Fleet.Cells {
			ent.Backends = append(ent.Backends, backendStat{
				Backend: c.Backend, EpsBand: c.EpsBand, Class: c.Class,
				Count: c.Count, CacheHits: c.CacheHits, Synthesized: c.Synthesized,
				Wins: c.Wins, Losses: c.Losses,
				P50Ms: c.P50Ms, P95Ms: c.P95Ms, P99Ms: c.P99Ms,
			})
		}
	}
	scancel()

	fmt.Printf("synthload: %d req  ok=%d throttled=%d rejected=%d errors=%d (transport=%d)  "+
		"p50=%.1fms p99=%.1fms  hit_rate=%.3f  achieved=%.1f rps\n",
		ent.Requests, ent.OK, ent.Throttled, ent.Rejected, ent.Errors, ent.TransportErrors,
		ent.P50Ms, ent.P99Ms, ent.HitRate, ent.AchievedR)
	if len(ent.ByCode) > 0 {
		codes := make([]string, 0, len(ent.ByCode))
		for c := range ent.ByCode {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		var parts []string
		for _, c := range codes {
			parts = append(parts, fmt.Sprintf("%s=%d", c, ent.ByCode[c]))
		}
		fmt.Printf("synthload:   by code: %s\n", strings.Join(parts, " "))
	}
	for _, b := range ent.Backends {
		fmt.Printf("synthload:   %s %s/%s n=%d hits=%d synth=%d p50=%.2fms p95=%.2fms p99=%.2fms\n",
			b.Backend, b.EpsBand, b.Class, b.Count, b.CacheHits, b.Synthesized,
			b.P50Ms, b.P95Ms, b.P99Ms)
	}

	if *out == "" {
		return
	}
	rep := newReport()
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			fatalf("%s exists but is not a synthload report: %v", *out, err)
		}
	}
	rep.Entries = append(rep.Entries, ent)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("synthload: appended %q entry to %s\n", *label, *out)
}

// anglePool extracts n rotation angles from the deterministic QAOA
// corpus: the merged RZ/RX angles of gen.QAOAMaxCut circuits at seeds
// seed, seed+1, … — real workload angles, not synthetic uniforms, so
// quantization and cache behavior match what a compile endpoint sees.
func anglePool(n int, seed int64) []float64 {
	var pool []float64
	seen := map[int64]bool{}
	for s := seed; len(pool) < n && s < seed+int64(4*n); s++ {
		c := gen.QAOAMaxCut(8, 2, s)
		for _, op := range c.Ops {
			var theta float64
			switch op.G {
			case circuit.RZ, circuit.RX, circuit.RY:
				theta = op.P[0]
			default:
				continue
			}
			// Dedup at the cache's own quantization so the pool size is
			// the real distinct-key count.
			q := int64(math.Round(theta * 1e12))
			if seen[q] {
				continue
			}
			seen[q] = true
			pool = append(pool, theta)
			if len(pool) == n {
				break
			}
		}
	}
	return pool
}

func summarize(results []result, elapsed time.Duration) entry {
	var ent entry
	var lats []float64
	var hits, misses int64
	var latSum float64
	for _, r := range results {
		ent.Requests++
		switch r.status {
		case "ok":
			ent.OK++
			lats = append(lats, r.latencyMs)
			latSum += r.latencyMs
			hits += r.hits
			misses += r.misses
		case "throttled":
			ent.Throttled++
		case "rejected":
			ent.Rejected++
		default:
			ent.Errors++
			if r.code == 0 {
				ent.TransportErrors++
			}
		}
		if r.code != 200 && r.code != 0 {
			if ent.ByCode == nil {
				ent.ByCode = map[string]int{}
			}
			ent.ByCode[strconv.Itoa(r.code)]++
		}
	}
	if ent.Requests > 0 {
		ent.ErrorRate = float64(ent.Errors) / float64(ent.Requests)
	}
	if hits+misses > 0 {
		ent.HitRate = float64(hits) / float64(hits+misses)
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		ent.P50Ms = percentile(lats, 0.50)
		ent.P95Ms = percentile(lats, 0.95)
		ent.P99Ms = percentile(lats, 0.99)
		ent.MeanMs = latSum / float64(len(lats))
	}
	if elapsed > 0 {
		ent.AchievedR = float64(ent.Requests) / elapsed.Seconds()
	}
	return ent
}

// percentile reads the p-quantile from sorted latencies (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "synthload: "+format+"\n", args...)
	os.Exit(2)
}
