// Command suite lists or exports the 187-circuit benchmark corpus.
//
// Usage:
//
//	suite -list                 # name, category, qubits, rotations
//	suite -dump qasm_out/       # write every circuit as OpenQASM 2.0
//	suite -name qft_n8          # print one circuit's QASM to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/suite"
)

func main() {
	var (
		list = flag.Bool("list", false, "list benchmarks")
		dump = flag.String("dump", "", "directory to write QASM files into")
		name = flag.String("name", "", "print one benchmark's QASM")
	)
	flag.Parse()
	benches := suite.Suite()
	switch {
	case *name != "":
		for _, b := range benches {
			if b.Name == *name {
				fmt.Print(b.Circuit.QASM())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "suite: unknown benchmark %q\n", *name)
		os.Exit(1)
	case *dump != "":
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, b := range benches {
			path := filepath.Join(*dump, b.Name+".qasm")
			if err := os.WriteFile(path, []byte(b.Circuit.QASM()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d circuits to %s\n", len(benches), *dump)
	default:
		*list = true
		fallthrough
	case *list:
		fmt.Printf("%-28s %-24s %7s %10s %8s\n", "name", "category", "qubits", "rotations", "ops")
		for _, b := range benches {
			fmt.Printf("%-28s %-24s %7d %10d %8d\n",
				b.Name, b.Category, b.Circuit.N, b.Circuit.CountRotations(), len(b.Circuit.Ops))
		}
	}
}
