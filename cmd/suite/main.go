// Command suite lists or exports the 192-circuit benchmark corpus, and can
// compile any of its circuits to Clifford+T through the synth pipeline
// API.
//
// Usage:
//
//	suite -list                 # name, category, qubits, rotations
//	suite -dump qasm_out/       # write every circuit as OpenQASM 2.0
//	suite -name qft_n8          # print one circuit's QASM to stdout
//	suite -compile qft_n8 -backend auto -eps 0.01
//	suite -compile qft_n8 -ceps 0.05    # circuit-level error budget
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/synth"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list benchmarks")
		dump    = flag.String("dump", "", "directory to write QASM files into")
		name    = flag.String("name", "", "print one benchmark's QASM")
		compile = flag.String("compile", "", "compile one benchmark to Clifford+T")
		backend = flag.String("backend", "trasyn", "synthesis backend for -compile")
		eps     = flag.Float64("eps", 0.01, "per-rotation error threshold for -compile")
		ceps    = flag.Float64("ceps", 0, "circuit-level error budget (overrides -eps; split across rotations)")
		workers = flag.Int("workers", 0, "pipeline worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	benches := repro.BenchmarkSuite()
	switch {
	case *compile != "":
		for _, b := range benches {
			if b.Name != *compile {
				continue
			}
			opts := []synth.Option{
				synth.WithEpsilon(*eps),
				synth.WithWorkers(*workers),
			}
			if *ceps > 0 {
				opts = append(opts, synth.WithCircuitEpsilon(*ceps))
			}
			pl, err := synth.NewPipelineFor(*backend, opts...)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res, err := pl.Run(context.Background(), b.Circuit)
			if err != nil {
				fmt.Fprintf(os.Stderr, "suite: compiling %s: %v\n", b.Name, err)
				os.Exit(1)
			}
			if *ceps > 0 {
				fmt.Printf("%s via %s (circuit eps %.1e, %s split)\n", b.Name, res.Backend, *ceps, res.Stats.Strategy)
			} else {
				fmt.Printf("%s via %s (eps %.1e)\n", b.Name, res.Backend, *eps)
			}
			fmt.Printf("  IR rotations : %d (setting level %d, commute %v)\n",
				res.Stats.IRRotations, res.Stats.Setting.Level, res.Stats.Setting.Commute)
			fmt.Printf("  synthesized  : %d unique (%d cache hits / %d misses)\n",
				res.Stats.Unique, res.Stats.Hits, res.Stats.Misses)
			fmt.Printf("  T=%d Clifford=%d T-depth=%d Σerr=%.2e wall=%s\n",
				res.Circuit.TCount(), res.Circuit.CliffordCount(), res.Circuit.TDepth(),
				res.Stats.ErrorBound, res.Wall.Round(time.Millisecond))
			if est := res.Stats.Resources; est != nil {
				fmt.Printf("  resources    : distance-%d surface code, %.2e cycles ≈ %.3f s\n",
					est.CodeDistance, est.ExecCycles, est.ExecSeconds)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "suite: unknown benchmark %q\n", *compile)
		os.Exit(1)
	case *name != "":
		for _, b := range benches {
			if b.Name == *name {
				fmt.Print(b.Circuit.QASM())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "suite: unknown benchmark %q\n", *name)
		os.Exit(1)
	case *dump != "":
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, b := range benches {
			path := filepath.Join(*dump, b.Name+".qasm")
			if err := os.WriteFile(path, []byte(b.Circuit.QASM()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d circuits to %s\n", len(benches), *dump)
	default:
		*list = true
		fallthrough
	case *list:
		fmt.Printf("%-28s %-24s %7s %10s %8s\n", "name", "category", "qubits", "rotations", "ops")
		for _, b := range benches {
			fmt.Printf("%-28s %-24s %7d %10d %8d\n",
				b.Name, b.Category, b.Circuit.N, b.Circuit.CountRotations(), len(b.Circuit.Ops))
		}
	}
}
