// Command synthprof records the gridsynth hot-path benchmark: ns/op,
// B/op and allocs/op for gridsynth.Rz across the ε ladder, appended as a
// dated entry to BENCH_gridsynth.json. It drives the exact same workload
// as BenchmarkGridsynthRz* (angles 1.0 + 0.21·(i mod 5)), so numbers are
// comparable between `go test -bench` runs, CI and this tool.
//
// Usage:
//
//	synthprof -out BENCH_gridsynth.json -label after       # full ladder
//	synthprof -eps 1e-2,1e-4 -benchtime 1s -label ci-smoke # quick subset
//
// The "before"/"after" labels are the perf-PR convention: an entry records
// which side of a refactor it measures; later sessions append fresh
// entries rather than overwriting history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/gridsynth"
)

type result struct {
	Eps         float64 `json:"eps"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iters       int     `json:"iters"`
	// DNF marks a tier that did not finish (hand-recorded entries only;
	// e.g. the pre-refactor ε=1e-6 runs that OOMed).
	DNF bool `json:"dnf,omitempty"`
}

type entry struct {
	Date      string   `json:"date"`
	Label     string   `json:"label"`
	Commit    string   `json:"commit,omitempty"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	GoVersion string   `json:"go_version"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
	Note      string   `json:"note,omitempty"`
}

type report struct {
	Benchmark   string  `json:"benchmark"`
	Package     string  `json:"package"`
	Description string  `json:"description"`
	Entries     []entry `json:"entries"`
}

func newReport() *report {
	return &report{
		Benchmark: "BenchmarkGridsynthRz{1e2,1e4,1e6}",
		Package:   "repro/internal/gridsynth",
		Description: "gridsynth.Rz hot-path cost per synthesized rotation at " +
			"ε ∈ {1e-2, 1e-4, 1e-6} (angles 1.0+0.21·(i mod 5)); allocs/op is " +
			"the allocation-free-core acceptance metric.",
	}
}

func main() {
	out := flag.String("out", "BENCH_gridsynth.json", "output JSON path (appended to if it exists)")
	label := flag.String("label", "after", "entry label (before/after/ci-smoke/...)")
	commit := flag.String("commit", "", "commit describing the measured tree")
	note := flag.String("note", "", "free-form note stored with the entry")
	epsFlag := flag.String("eps", "1e-2,1e-4,1e-6", "comma-separated ε ladder")
	benchtime := flag.Duration("benchtime", 2*time.Second, "per-ε measurement time")
	maxOps := flag.Int("max-ops", 0, "cap iterations per ε (0 = benchtime-driven)")
	flag.Parse()

	var epss []float64
	for _, s := range strings.Split(*epsFlag, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthprof: bad eps %q: %v\n", s, err)
			os.Exit(2)
		}
		epss = append(epss, e)
	}

	rep := newReport()
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			fmt.Fprintf(os.Stderr, "synthprof: %s exists but is not a report: %v\n", *out, err)
			os.Exit(1)
		}
	}

	ent := entry{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Label:     *label,
		Commit:    *commit,
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Benchtime: benchtime.String(),
		Note:      *note,
	}
	for _, eps := range epss {
		eps := eps
		fmt.Fprintf(os.Stderr, "synthprof: measuring eps=%g...\n", eps)
		r := benchmarkEps(eps, *benchtime, *maxOps)
		ent.Results = append(ent.Results, r)
		fmt.Fprintf(os.Stderr, "synthprof: eps=%g  %.0f ns/op  %d B/op  %d allocs/op  (%d iters)\n",
			eps, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Iters)
	}
	rep.Entries = append(rep.Entries, ent)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "synthprof: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "synthprof: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("synthprof: appended %q entry (%d ε points) to %s\n", *label, len(ent.Results), *out)
}

// benchmarkEps measures one ε tier: a warm-up op (table construction,
// big.Int capacity growth), then a timed loop over the benchmark angle
// ladder with alloc accounting from runtime.MemStats — the same numbers
// `go test -bench -benchmem` reports, but with a controllable budget.
func benchmarkEps(eps float64, benchtime time.Duration, maxOps int) result {
	op := func(i int) {
		if _, err := gridsynth.Rz(1.0+float64(i%5)*0.21, eps, gridsynth.Options{}); err != nil {
			fmt.Fprintf(os.Stderr, "synthprof: Rz failed at eps=%g: %v\n", eps, err)
			os.Exit(1)
		}
	}
	op(0) // warm-up
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	n := 0
	for {
		op(n)
		n++
		if maxOps > 0 && n >= maxOps {
			break
		}
		if maxOps == 0 && time.Since(start) >= benchtime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return result{
		Eps:         eps,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(n),
		Iters:       n,
	}
}
