// Command optbench is the optimizer smoke benchmark: it compiles the
// QAOA workload (circuit/gen's 8-qubit, depth-2 MaxCut instance) with
// the T-count optimizer off and on, against both an already-minimal
// backend (gridsynth) and the suboptimal Solovay–Kitaev baseline,
// asserts that optimization never regresses the T count — and strictly
// reclaims T from sk — then records the deltas as JSON (BENCH_opt.json
// in CI).
//
// Usage:
//
//	optbench -out BENCH_opt.json            # write the record, exit 0
//	optbench -qaoa-qasm testdata/q.qasm     # also dump the workload QASM
//
// Exit status 1 means an assertion failed — the optimizer regressed a
// workload — which is what the CI optimizer-smoke job gates on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/circuit/gen"
	"repro/synth"
)

// record is one (backend, opt level) measurement.
type record struct {
	Backend      string         `json:"backend"`
	OptLevel     int            `json:"opt_level"`
	TCount       int            `json:"t_count"`
	TDepth       int            `json:"t_depth"`
	Clifford     int            `json:"clifford"`
	TCountBefore int            `json:"t_count_before,omitempty"`
	TCountAfter  int            `json:"t_count_after,omitempty"`
	TSaved       int            `json:"t_saved,omitempty"`
	Iterations   int            `json:"opt_iterations,omitempty"`
	RuleHits     map[string]int `json:"rule_hits,omitempty"`
	WallMs       float64        `json:"wall_ms"`
}

type report struct {
	Workload  string   `json:"workload"`
	Qubits    int      `json:"qubits"`
	Rotations int      `json:"rotations"`
	Eps       float64  `json:"circuit_eps"`
	GoVersion string   `json:"go_version"`
	Records   []record `json:"records"`
	Notes     []string `json:"notes"`
}

func main() {
	out := flag.String("out", "BENCH_opt.json", "output JSON path")
	qasmOut := flag.String("qaoa-qasm", "", "also write the QAOA workload QASM here")
	flag.Parse()

	qaoa := gen.QAOAMaxCut(8, 2, 1)
	const eps = 0.3
	if *qasmOut != "" {
		if err := os.WriteFile(*qasmOut, []byte(qaoa.QASM()), 0o644); err != nil {
			fatal("writing %s: %v", *qasmOut, err)
		}
	}

	rep := report{
		Workload:  "gen.QAOAMaxCut(8, 2, 1)",
		Qubits:    qaoa.N,
		Rotations: qaoa.CountRotations(),
		Eps:       eps,
		GoVersion: runtime.Version(),
	}

	run := func(backend string, level int) record {
		pl, err := synth.NewPipelineFor(backend,
			synth.WithCircuitEpsilon(eps), synth.WithOptimize(level))
		if err != nil {
			fatal("%v", err)
		}
		start := time.Now()
		res, err := pl.Run(context.Background(), qaoa)
		if err != nil {
			fatal("compiling with %s opt=%d: %v", backend, level, err)
		}
		r := record{
			Backend:  backend,
			OptLevel: level,
			TCount:   res.Circuit.TCount(),
			TDepth:   res.Circuit.TDepth(),
			Clifford: res.Circuit.CliffordCount(),
			WallMs:   float64(time.Since(start)) / float64(time.Millisecond),
		}
		if o := res.Stats.Opt; o != nil {
			r.TCountBefore = o.TCountBefore
			r.TCountAfter = o.TCountAfter
			r.TSaved = o.TSaved()
			r.Iterations = o.Iterations
			r.RuleHits = o.RuleHits
		}
		return r
	}

	failed := false
	for _, backend := range []string{"gridsynth", "sk"} {
		off := run(backend, 0)
		on := run(backend, 2)
		rep.Records = append(rep.Records, off, on)
		switch {
		case on.TCount > off.TCount:
			fmt.Fprintf(os.Stderr, "optbench: FAIL %s: -opt 2 regressed T %d → %d\n", backend, off.TCount, on.TCount)
			failed = true
		case backend == "sk" && on.TSaved <= 0:
			fmt.Fprintf(os.Stderr, "optbench: FAIL sk: expected strict T reclamation, saved %d\n", on.TSaved)
			failed = true
		default:
			fmt.Printf("optbench: %-10s T %6d (off) → %6d (on), optct reclaimed %d in %d sweeps\n",
				backend, off.TCount, on.TCount, on.TSaved, on.Iterations)
		}
	}
	rep.Notes = append(rep.Notes,
		"gridsynth/trasyn sequences are per-rotation minimal, so post-lowering reclamation is ~0 — the paper's RQ5 finding",
		"sk's recursive sequences are far from minimal: the fixed-point foldphases+peephole driver reclaims ~20% of its T gates")

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "optbench: "+format+"\n", args...)
	os.Exit(1)
}
