// Command cachebench re-records BenchmarkCacheParallel into
// BENCH_cache.json as a fresh dated entry. It execs the real benchmark
// (`go test -bench=BenchmarkCacheParallel repro/synth`) at the default
// GOMAXPROCS and at GOMAXPROCS=8 — the oversubscription point the shard
// comparison is about — parses the ns/op per case, and appends an entry
// carrying a machine-info stanza (nproc, GOMAXPROCS, CPU model), so every
// recorded number is attributable to the host class it ran on: the PR 3/5
// entries were 1-vCPU recordings whose shard comparison is explicitly
// meaningless, and the stanza is what lets a reader tell such entries
// apart from a real multicore measurement.
//
// Usage:
//
//	cachebench -out BENCH_cache.json -benchtime 2s -note "..."
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type caseResult struct {
	Case    string  `json:"case"`
	NsPerOp float64 `json:"ns_per_op"`
}

type machineInfo struct {
	NProc      int    `json:"nproc"`
	GoMaxProcs int    `json:"gomaxprocs"`
	CPU        string `json:"cpu_model"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
}

// entry mirrors the hand-written PR 3/5 entries so the file stays one
// homogeneous history; machine is the stanza this harness adds.
type entry struct {
	Date              string       `json:"date"`
	Commit            string       `json:"commit,omitempty"`
	GoOS              string       `json:"goos"`
	GoArch            string       `json:"goarch"`
	CPU               string       `json:"cpu,omitempty"`
	CPUs              int          `json:"cpus"`
	Benchtime         string       `json:"benchtime"`
	Machine           *machineInfo `json:"machine,omitempty"`
	Results           []caseResult `json:"results"`
	ResultsGomaxprocs []caseResult `json:"results_gomaxprocs_8,omitempty"`
	Note              string       `json:"note,omitempty"`
}

type report struct {
	Benchmark   string            `json:"benchmark"`
	Package     string            `json:"package"`
	Description string            `json:"description"`
	Entries     []json.RawMessage `json:"entries"`
}

// The -N GOMAXPROCS suffix is absent when GOMAXPROCS=1, so it's optional.
var benchLine = regexp.MustCompile(`^BenchmarkCacheParallel/(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	out := flag.String("out", "BENCH_cache.json", "report path (appended to if it exists)")
	benchtime := flag.String("benchtime", "2s", "go test -benchtime value")
	commit := flag.String("commit", "", "commit describing the measured tree")
	note := flag.String("note", "", "free-form note stored with the entry")
	flag.Parse()

	ent := entry{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Commit:    *commit,
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		CPU:       cpuModel(),
		CPUs:      runtime.NumCPU(),
		Benchtime: *benchtime,
		Machine: &machineInfo{
			NProc:      runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			CPU:        cpuModel(),
			GoOS:       runtime.GOOS,
			GoArch:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
		},
		Note: *note,
	}

	var err error
	if ent.Results, err = runBench(*benchtime, nil); err != nil {
		fatalf("%v", err)
	}
	if ent.ResultsGomaxprocs, err = runBench(*benchtime, []string{"GOMAXPROCS=8"}); err != nil {
		fatalf("GOMAXPROCS=8 run: %v", err)
	}

	rep := &report{}
	if data, rerr := os.ReadFile(*out); rerr == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			fatalf("%s exists but is not a report: %v", *out, err)
		}
	} else {
		rep.Benchmark = "BenchmarkCacheParallel"
		rep.Package = "repro/synth"
		rep.Description = "Mixed 90% Get / 10% Put over a 1024-key working set in a " +
			"4096-entry cache: shards=1 vs shards=16 under 8 and 64 client goroutines."
	}
	raw, err := json.Marshal(ent)
	if err != nil {
		fatalf("%v", err)
	}
	rep.Entries = append(rep.Entries, raw)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cachebench: appended entry (nproc=%d) to %s\n", runtime.NumCPU(), *out)
}

// runBench executes the benchmark once and parses the per-case ns/op.
func runBench(benchtime string, extraEnv []string) ([]caseResult, error) {
	cmd := exec.Command("go", "test", "-run=NONE",
		"-bench=BenchmarkCacheParallel", "-benchtime="+benchtime, "repro/synth")
	cmd.Env = append(os.Environ(), extraEnv...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "cachebench: go test -bench=BenchmarkCacheParallel -benchtime=%s %s\n",
		benchtime, strings.Join(extraEnv, " "))
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("benchmark run: %w\n%s", err, buf.String())
	}
	var results []caseResult
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if m := benchLine.FindStringSubmatch(sc.Text()); m != nil {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			results = append(results, caseResult{Case: m[1], NsPerOp: ns})
			fmt.Fprintf(os.Stderr, "cachebench: %-28s %.1f ns/op\n", m[1], ns)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", buf.String())
	}
	return results, nil
}

// cpuModel best-effort reads the CPU model name (linux /proc/cpuinfo).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cachebench: "+format+"\n", args...)
	os.Exit(1)
}
