// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig7 [-n 100] [-samples 4000] [-maxt 10] [-out results/]
//	experiments -run all -out results/
//
// Scale flags default to CPU-minutes sizes; EXPERIMENTS.md records both the
// default-scale results and the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/expt"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments")
		run     = flag.String("run", "", "experiment id (or 'all')")
		n       = flag.Int("n", 0, "unitaries/angles for RQ1/RQ2 (paper: 1000)")
		samples = flag.Int("samples", 0, "trasyn samples k (paper: 40000)")
		maxt    = flag.Int("maxt", 0, "per-tensor T budget m (paper: 10)")
		sites   = flag.Int("sites", 0, "max MPS tensors (paper: 3)")
		benches = flag.Int("benches", 0, "suite circuits to process (0 = default subsample; -1 = all 192)")
		simq    = flag.Int("simq", 0, "max qubits for noisy simulation")
		out     = flag.String("out", "", "CSV output directory")
		seed    = flag.Int64("seed", 0, "random seed")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range expt.Registry() {
			fmt.Printf("  %-6s %s\n", e.ID, e.Desc)
		}
		return
	}
	cfg := expt.Config{
		N: *n, Samples: *samples, MaxT: *maxt, Sites: *sites,
		SimQubits: *simq, OutDir: *out, Seed: *seed, Workers: *workers,
	}
	if *benches == -1 {
		cfg.BenchLimit = 192
	} else {
		cfg.BenchLimit = *benches
	}
	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range expt.Registry() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, err := expt.Find(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tab.Print(os.Stdout)
		fmt.Printf("(%s took %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
