// Command synthtop is a polling terminal dashboard over a synthd fleet's
// GET /v1/stats: per-node service gauges (cache hit rate, admission
// queue depth) and the per-backend win-rate/latency table by ε band and
// angle class, fleet-wide when the target is clustered.
//
// Usage:
//
//	synthtop -target http://127.0.0.1:8077            # refresh every 2s
//	synthtop -target http://127.0.0.1:8077 -once      # one shot (CI)
//	synthtop -target http://node-a:8077 -local        # this node only
//
// Against a cluster member the dashboard asks for ?cluster=1, so any one
// node renders the whole ring: the per-node table lists every member
// (unreachable peers show their error) and the cell table is the merged
// fleet view — counts are exact sums, quantiles come from merged
// sketches. -once renders a single frame and exits 0 on success, nonzero
// if the target cannot be scraped — the shape CI smoke tests want.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/synth/serve"
	"repro/synth/serve/client"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8077", "synthd base URL to scrape")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		local    = flag.Bool("local", false, "show only the target node (skip ?cluster=1 federation)")
	)
	flag.Parse()

	cl := client.New(*target)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	frame := func() error {
		fctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		resp, err := cl.Stats(fctx, !*local)
		if err != nil {
			return err
		}
		if !*once {
			fmt.Print("\033[H\033[2J") // home + clear
		}
		render(os.Stdout, *target, resp)
		return nil
	}

	if *once {
		if err := frame(); err != nil {
			fmt.Fprintf(os.Stderr, "synthtop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for {
		if err := frame(); err != nil {
			// A refreshing dashboard rides out a restarting daemon instead
			// of dying mid-deploy.
			fmt.Fprintf(os.Stderr, "synthtop: %v (retrying)\n", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*interval):
		}
	}
}

// render writes one dashboard frame: a header, the per-node table, and
// the per-cell statistics table of the fleet view.
func render(w io.Writer, target string, resp *serve.StatsResponse) {
	mode := "local"
	if resp.Cluster {
		mode = fmt.Sprintf("cluster of %d", len(resp.Nodes))
	}
	f := resp.Fleet
	fmt.Fprintf(w, "synthtop — %s (%s) at %s\n", target, mode, time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "fleet: cache %d entries, hit rate %.1f%%, inflight %d, queued %d\n\n",
		f.CacheSize, 100*f.HitRate, f.Inflight, f.QueueDepth)

	fmt.Fprintf(w, "%-10s %10s %8s %9s %9s %7s %7s\n",
		"NODE", "UPTIME", "CACHE", "HITRATE", "INFLIGHT", "QUEUE", "CELLS")
	for _, n := range resp.Nodes {
		if n.Error != "" {
			fmt.Fprintf(w, "%-10s unreachable: %s\n", n.Node, n.Error)
			continue
		}
		fmt.Fprintf(w, "%-10s %10s %8d %8.1f%% %9d %7d %7d\n",
			n.Node, (time.Duration(n.UptimeMs) * time.Millisecond).Round(time.Second),
			n.CacheSize, 100*n.HitRate, n.Inflight, n.QueueDepth, len(n.Cells))
	}

	fmt.Fprintf(w, "\n%-10s %-8s %-8s %7s %6s %6s %6s %7s %7s %8s %8s %8s\n",
		"BACKEND", "EPS", "CLASS", "N", "WIN%", "HITS", "SYNTH", "ERRS", "meanT", "p50ms", "p95ms", "p99ms")
	if len(f.Cells) == 0 {
		fmt.Fprintln(w, "(no observations yet)")
		return
	}
	for _, c := range f.Cells {
		winRate := 0.0
		if races := c.Wins + c.Losses; races > 0 {
			winRate = 100 * float64(c.Wins) / float64(races)
		}
		fmt.Fprintf(w, "%-10s %-8s %-8s %7d %5.1f%% %6d %6d %7d %7.1f %8.2f %8.2f %8.2f\n",
			c.Backend, c.EpsBand, c.Class, c.Count, winRate,
			c.CacheHits, c.Synthesized, c.Errors, c.MeanT, c.P50Ms, c.P95Ms, c.P99Ms)
	}
}
