package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/synth/serve"
)

func TestRenderClusterFrame(t *testing.T) {
	resp := &serve.StatsResponse{
		Cluster: true,
		Fleet: serve.NodeStats{
			Node: "fleet", CacheSize: 12, CacheHits: 9, CacheMisses: 3, HitRate: 0.75,
			Cells: []serve.StatsCell{
				{Backend: "gridsynth", EpsBand: "1e-2", Class: "generic",
					Count: 10, CacheHits: 4, Synthesized: 6, Wins: 5, Losses: 1,
					MeanT: 41.5, P50Ms: 2.2, P95Ms: 8.1, P99Ms: 12.4},
				{Backend: "trasyn", EpsBand: "1e-3", Class: "pi4",
					Count: 3, Synthesized: 3, Wins: 1, Losses: 2, MeanT: 7},
			},
		},
		Nodes: []serve.NodeStats{
			{Node: "a", UptimeMs: 60000, CacheSize: 8, HitRate: 0.8,
				Cells: []serve.StatsCell{{Backend: "gridsynth"}}},
			{Node: "b", Error: "connection refused"},
		},
	}
	var buf bytes.Buffer
	render(&buf, "http://node-a:8077", resp)
	out := buf.String()

	for _, want := range []string{
		"cluster of 2",
		"hit rate 75.0%",
		"BACKEND", "NODE", // both table headers
		"gridsynth", "trasyn", // every backend that ran appears
		"1e-2", "pi4",
		"unreachable: connection refused", // dead peer shows its error
		"1m0s",                            // node a's uptime
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Win rate for gridsynth: 5 of 6 races.
	if !strings.Contains(out, "83.3%") {
		t.Errorf("win rate not rendered:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, "http://x", &serve.StatsResponse{Nodes: []serve.NodeStats{{Node: "solo"}}})
	out := buf.String()
	if !strings.Contains(out, "(no observations yet)") || !strings.Contains(out, "local") {
		t.Errorf("empty frame:\n%s", out)
	}
}
