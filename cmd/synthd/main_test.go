package main

import (
	"testing"
	"time"
)

// Every listener — service and debug alike — must bound slow clients:
// a peer that dribbles headers or never finishes a body ties up a
// connection forever without these. WriteTimeout must stay 0 because a
// long compile legitimately streams its response for minutes and is
// already bounded by the per-request deadline.
func TestNewHTTPServerTimeouts(t *testing.T) {
	hs := newHTTPServer(nil)
	if hs.ReadHeaderTimeout != 10*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 10s", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout != 2*time.Minute {
		t.Errorf("ReadTimeout = %v, want 2m", hs.ReadTimeout)
	}
	if hs.IdleTimeout != 2*time.Minute {
		t.Errorf("IdleTimeout = %v, want 2m", hs.IdleTimeout)
	}
	if hs.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (long compiles hold the response open)", hs.WriteTimeout)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("a=http://h1:8077, b=http://h2:8077,")
	if err != nil {
		t.Fatalf("parsePeers: %v", err)
	}
	if len(peers) != 2 || peers["a"] != "http://h1:8077" || peers["b"] != "http://h2:8077" {
		t.Fatalf("parsePeers = %v", peers)
	}
	if _, err := parsePeers("nourl"); err == nil {
		t.Fatal("parsePeers accepted a peer without id=url")
	}
}
