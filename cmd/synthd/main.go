// Command synthd is the resident synthesis daemon: one warm pipeline
// configuration and one shared, sharded synthesis cache behind the
// synth/serve HTTP/JSON API. Where every cmd/ tool is a cold start that
// rebuilds its cache and throws away every synthesized sequence, synthd
// amortizes synthesis across requests, clients, and — via the snapshot
// file — restarts: gridsynth/trasyn sequences are pure functions of
// (rotation, ε, config), so a cache entry is valid forever.
//
// Usage:
//
//	synthd                                    # :8077, auto backend, no persistence
//	synthd -addr :9000 -backend gridsynth
//	synthd -snapshot /var/lib/synthd/cache.json   # load at start, flush on shutdown
//	synthd -addr 127.0.0.1:0                  # random port, printed on stdout
//
// Cluster mode makes N daemons one consistent-hash cache cluster: give
// every node an ID and the full static peer list, and quantized-angle
// keys are routed by a virtual-node hash ring — a local miss does a
// single-hop lookup at the key's owner before synthesizing, fresh
// syntheses are pushed to the owner, and -warm-seed streams the ring
// successor's snapshot at start so a joining node answers hot keys
// without synthesizing. Per-tenant token-bucket quotas (keyed on the
// X-Tenant header) layer on top of the inflight/queue admission control:
//
//	synthd -addr :8077 -node-id a -peers a=http://h1:8077,b=http://h2:8077,c=http://h3:8077
//	synthd -addr :8078 -node-id b -peers ... -warm-seed      # join warm
//	synthd -tenant-rps 50 -tenant-burst 100                  # quotas, any mode
//
// Endpoints: POST /v1/compile, POST /v1/synthesize, GET /healthz,
// GET /metrics. Compile requests can enable the T-count optimizer via
// opt_level / optimizers (the stats then carry t_count_before /
// t_count_after, and /metrics totals synthd_t_reclaimed_total across
// all compiles). See synth/serve for the request/response shapes and
// synth/serve/client for the Go client; cmd/compile -remote drives a
// running daemon from the CLI.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests (up to -drain), flushes the cache snapshot, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/synth"
	"repro/synth/serve"
	"repro/synth/serve/cluster"
)

// parsePeers parses "id=url,id=url,...". Self may appear; cluster.New
// ignores its URL, so one identical -peers value works for every node.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, base, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("bad peer %q (want id=url)", part)
		}
		peers[id] = base
	}
	return peers, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8077", "listen address (host:0 picks a random port, printed on stdout)")
		backend     = flag.String("backend", "auto", "default backend for requests that name none")
		cacheSize   = flag.Int("cache-size", 0, "cache capacity in entries (0 = default)")
		cacheShards = flag.Int("cache-shards", 0, "cache shard count (0 = auto)")
		snapshot    = flag.String("snapshot", "", "cache snapshot file: loaded at start, flushed on graceful shutdown (empty = no persistence)")
		workers     = flag.Int("workers", 0, "per-compile synthesis pool size (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("queue", 0, "max requests waiting for a slot before 503s (0 = 64)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Minute, "per-request deadline cap (0 = none)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")

		nodeID      = flag.String("node-id", "", "cluster mode: this node's ring ID (requires -peers)")
		peers       = flag.String("peers", "", "cluster mode: static peer list id=url,id=url,... (self may be listed; its URL is ignored)")
		vnodes      = flag.Int("vnodes", 0, "cluster mode: virtual nodes per member on the hash ring (0 = default)")
		peerTimeout = flag.Duration("peer-timeout", 0, "cluster mode: single-hop peer lookup deadline (0 = default)")
		warmSeed    = flag.Bool("warm-seed", false, "cluster mode: stream the ring successor's snapshot at start instead of starting cold")
		seedTimeout = flag.Duration("seed-timeout", 30*time.Second, "cluster mode: -warm-seed transfer budget")

		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant quota in requests/second, keyed on X-Tenant (0 = quotas off)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant quota burst (0 = max(1, ceil(rps)))")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "synthd: ", log.LstdFlags)

	if _, ok := synth.Lookup(*backend); !ok {
		logger.Fatalf("unknown -backend %q (have %v)", *backend, synth.List())
	}

	var node *cluster.Node
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" {
			logger.Fatalf("-peers requires -node-id")
		}
		peerMap, err := parsePeers(*peers)
		if err != nil {
			logger.Fatalf("parsing -peers: %v", err)
		}
		node, err = cluster.New(cluster.Config{
			SelfID:        *nodeID,
			Peers:         peerMap,
			VNodes:        *vnodes,
			LookupTimeout: *peerTimeout,
		})
		if err != nil {
			logger.Fatalf("cluster: %v", err)
		}
	}

	srv := serve.New(serve.Config{
		DefaultBackend: *backend,
		Workers:        *workers,
		CacheSize:      *cacheSize,
		CacheShards:    *cacheShards,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		Cluster:        node,
		TenantRPS:      *tenantRPS,
		TenantBurst:    *tenantBurst,
	})
	cache := srv.Cache()
	if *snapshot != "" {
		n, err := cache.LoadFile(*snapshot)
		switch {
		case err == nil:
			logger.Printf("loaded %d cached sequences from %s", n, *snapshot)
		case os.IsNotExist(err):
			logger.Printf("no snapshot at %s, starting cold", *snapshot)
		default:
			// A corrupt snapshot must not turn the persistence feature into
			// a startup outage: the cache is pure recomputable state, so
			// log, start cold, and let the shutdown flush overwrite it.
			logger.Printf("ignoring unreadable snapshot %s (starting cold): %v", *snapshot, err)
		}
	}

	if *warmSeed {
		if node == nil {
			logger.Fatalf("-warm-seed requires cluster mode (-node-id/-peers)")
		}
		// Seeding is best effort: the donor may itself still be booting
		// (a whole cluster starting at once is all cold anyway), and a
		// cold start is always correct — the cache is pure recomputable
		// state, so log and carry on.
		sctx, scancel := context.WithTimeout(context.Background(), *seedTimeout)
		n, err := node.Seed(sctx)
		scancel()
		if err != nil {
			logger.Printf("warm seed unavailable (starting cold): %v", err)
		} else {
			logger.Printf("warm-seeded %d cached sequences from ring successor %s",
				n, node.Ring().Successor(node.SelfID()))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	// The resolved address goes to stdout so scripts (and the e2e smoke
	// test) can start on :0 and learn the port.
	fmt.Printf("synthd: listening on http://%s\n", ln.Addr())
	logger.Printf("backend=%s cache(cap=%d shards=%d)", *backend, cache.Cap(), cache.Shards())
	if node != nil {
		logger.Printf("cluster node %s: ring %v (%d vnodes/member)",
			node.SelfID(), node.Ring().Members(), node.Ring().VNodes())
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("signal received, draining (budget %s)", *drain)
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if node != nil {
		// Let in-flight owner pushes land so peers keep this node's last
		// syntheses after it leaves.
		node.Flush()
	}
	if *snapshot != "" {
		if err := cache.SaveFile(*snapshot); err != nil {
			logger.Fatalf("flushing snapshot: %v", err)
		}
		st := cache.Stats()
		logger.Printf("flushed %d cached sequences to %s (lifetime: %d hits / %d misses)",
			st.Size, *snapshot, st.Hits, st.Misses)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
}
