// Command synthd is the resident synthesis daemon: one warm pipeline
// configuration and one shared, sharded synthesis cache behind the
// synth/serve HTTP/JSON API. Where every cmd/ tool is a cold start that
// rebuilds its cache and throws away every synthesized sequence, synthd
// amortizes synthesis across requests, clients, and — via the snapshot
// file — restarts: gridsynth/trasyn sequences are pure functions of
// (rotation, ε, config), so a cache entry is valid forever.
//
// Usage:
//
//	synthd                                    # :8077, auto backend, no persistence
//	synthd -addr :9000 -backend gridsynth
//	synthd -snapshot /var/lib/synthd/cache.json   # load at start, flush on shutdown
//	synthd -addr 127.0.0.1:0                  # random port, printed on stdout
//
// Cluster mode makes N daemons one consistent-hash cache cluster: give
// every node an ID and the full static peer list, and quantized-angle
// keys are routed by a virtual-node hash ring — a local miss does a
// single-hop lookup at the key's owner before synthesizing, fresh
// syntheses are pushed to the owner, and -warm-seed streams the ring
// successor's snapshot at start so a joining node answers hot keys
// without synthesizing. Per-tenant token-bucket quotas (keyed on the
// X-Tenant header) layer on top of the inflight/queue admission control:
//
//	synthd -addr :8077 -node-id a -peers a=http://h1:8077,b=http://h2:8077,c=http://h3:8077
//	synthd -addr :8078 -node-id b -peers ... -warm-seed      # join warm
//	synthd -tenant-rps 50 -tenant-burst 100                  # quotas, any mode
//
// Observability: -trace-sample keeps a ratio of requests as span trees
// (-trace-slow keeps only roots at least that slow) retrievable from
// GET /debug/trace?id=<trace id> — text by default, Chrome trace_event
// JSON with &format=chrome. Traces stitch across cluster hops via the
// traceparent header, and every request is logged as one structured
// slog line keyed by request_id (echoed in X-Request-Id). -debug-addr
// opens a second, private listener carrying net/http/pprof and the same
// /debug/trace, so profiling never shares a port with the service API.
//
// Endpoints: POST /v1/compile, POST /v1/synthesize, GET /healthz,
// GET /metrics, GET /v1/stats (add ?cluster=1 for the federated fleet
// view; cmd/synthtop renders it live), GET /debug/trace. With -snapshot,
// fleet statistics persist across restarts in the <snapshot>.stats
// sidecar. Compile requests can enable the
// T-count optimizer via opt_level / optimizers (the stats then carry
// t_count_before / t_count_after, and /metrics totals
// synthd_t_reclaimed_total across all compiles). See synth/serve for
// the request/response shapes and synth/serve/client for the Go client;
// cmd/compile -remote drives a running daemon from the CLI.
//
// Fault containment: panics in backends, racers, and handlers are
// recovered at the goroutine that owns the op and surface as per-op
// errors (synthd_panics_total on /metrics), and in cluster mode every
// peer gets a circuit breaker (-breaker-failures / -breaker-cooldown;
// state on /healthz and /metrics) so a dead peer costs microseconds,
// not a lookup timeout, per miss. -fault-spec arms the deterministic
// fault-injection harness (see synth/fault) for chaos drills:
//
//	synthd -fault-spec 'backend:gridsynth panic every=5; peer:b* latency=300ms'
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests (up to -drain), flushes the cache snapshot and
// stats sidecar, and exits 0 — or nonzero if a flush failed, so
// supervisors notice lost state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/synth"
	"repro/synth/fault"
	"repro/synth/serve"
	"repro/synth/serve/cluster"
	"repro/synth/trace"
)

// newHTTPServer wraps a handler with the slow-client protections every
// listener gets: a bound on header dribble, on reading a request body,
// and on idle keep-alive connections. WriteTimeout stays 0 on purpose —
// a long compile legitimately holds the response open for minutes, and
// the per-request deadline (-request-timeout) already bounds it.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// parsePeers parses "id=url,id=url,...". Self may appear; cluster.New
// ignores its URL, so one identical -peers value works for every node.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, base, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("bad peer %q (want id=url)", part)
		}
		peers[id] = base
	}
	return peers, nil
}

// fatalf logs at Error and exits — the slog counterpart of log.Fatalf
// for startup failures, where there is nothing to drain.
func fatalf(logger *slog.Logger, format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	var (
		addr        = flag.String("addr", ":8077", "listen address (host:0 picks a random port, printed on stdout)")
		backend     = flag.String("backend", "auto", "default backend for requests that name none")
		cacheSize   = flag.Int("cache-size", 0, "cache capacity in entries (0 = default)")
		cacheShards = flag.Int("cache-shards", 0, "cache shard count (0 = auto)")
		snapshot    = flag.String("snapshot", "", "cache snapshot file: loaded at start, flushed on graceful shutdown (empty = no persistence)")
		workers     = flag.Int("workers", 0, "per-compile synthesis pool size (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("queue", 0, "max requests waiting for a slot before 503s (0 = 64)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Minute, "per-request deadline cap (0 = none)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")

		nodeID      = flag.String("node-id", "", "cluster mode: this node's ring ID (requires -peers)")
		peers       = flag.String("peers", "", "cluster mode: static peer list id=url,id=url,... (self may be listed; its URL is ignored)")
		vnodes      = flag.Int("vnodes", 0, "cluster mode: virtual nodes per member on the hash ring (0 = default)")
		peerTimeout = flag.Duration("peer-timeout", 0, "cluster mode: single-hop peer lookup deadline (0 = default)")
		warmSeed    = flag.Bool("warm-seed", false, "cluster mode: stream the ring successor's snapshot at start instead of starting cold")
		seedTimeout = flag.Duration("seed-timeout", 30*time.Second, "cluster mode: -warm-seed transfer budget")

		breakerFails    = flag.Int("breaker-failures", 0, "cluster mode: consecutive peer failures before the circuit breaker opens (0 = default, -1 = breakers off)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0, "cluster mode: initial open-state cooldown before a half-open probe; doubles per failed probe (0 = default)")

		faultSpec = flag.String("fault-spec", "", "fault-injection rules for chaos testing, e.g. 'backend:gridsynth panic every=5; peer:b* latency=300ms' (empty = off)")

		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant quota in requests/second, keyed on X-Tenant (0 = quotas off)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant quota burst (0 = max(1, ceil(rps)))")

		traceSample = flag.Float64("trace-sample", 0, "fraction of requests to trace, 0..1 (0 = tracing off)")
		traceSlow   = flag.Duration("trace-slow", 0, "with -trace-sample, retain only traces at least this slow (0 = retain all sampled)")
		traceRing   = flag.Int("trace-ring", 0, "retained-trace ring capacity (0 = default)")
		debugAddr   = flag.String("debug-addr", "", "private debug listener with net/http/pprof and /debug/trace (empty = off)")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	if _, ok := synth.Lookup(*backend); !ok {
		fatalf(logger, "unknown -backend %q (have %v)", *backend, synth.List())
	}
	if *traceSample < 0 || *traceSample > 1 {
		fatalf(logger, "-trace-sample %v out of range [0,1]", *traceSample)
	}

	var injector *fault.Injector
	if *faultSpec != "" {
		var err error
		injector, err = fault.Parse(*faultSpec)
		if err != nil {
			fatalf(logger, "parsing -fault-spec: %v", err)
		}
		logger.Warn("fault injection armed", "spec", *faultSpec)
	}

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			SampleRatio: *traceSample,
			SlowOnly:    *traceSlow,
			RingSize:    *traceRing,
		})
	}

	var node *cluster.Node
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" {
			fatalf(logger, "-peers requires -node-id")
		}
		peerMap, err := parsePeers(*peers)
		if err != nil {
			fatalf(logger, "parsing -peers: %v", err)
		}
		node, err = cluster.New(cluster.Config{
			SelfID:        *nodeID,
			Peers:         peerMap,
			VNodes:        *vnodes,
			LookupTimeout: *peerTimeout,
			Tracer:        tracer,
			Logger:        logger,
			Fault:         injector,
			Breaker: cluster.BreakerConfig{
				Threshold: *breakerFails,
				Cooldown:  *breakerCooldown,
			},
		})
		if err != nil {
			fatalf(logger, "cluster: %v", err)
		}
	}

	srv := serve.New(serve.Config{
		DefaultBackend: *backend,
		Workers:        *workers,
		CacheSize:      *cacheSize,
		CacheShards:    *cacheShards,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		Cluster:        node,
		TenantRPS:      *tenantRPS,
		TenantBurst:    *tenantBurst,
		Tracer:         tracer,
		Logger:         logger,
		Fault:          injector,
	})
	cache := srv.Cache()
	statsPath := ""
	if *snapshot != "" {
		n, err := cache.LoadFile(*snapshot)
		switch {
		case err == nil:
			logger.Info("snapshot loaded", "entries", n, "path", *snapshot)
		case os.IsNotExist(err):
			logger.Info("no snapshot, starting cold", "path", *snapshot)
		default:
			// A corrupt snapshot must not turn the persistence feature into
			// a startup outage: the cache is pure recomputable state, so
			// log, start cold, and let the shutdown flush overwrite it.
			logger.Warn("ignoring unreadable snapshot, starting cold", "path", *snapshot, "err", err)
		}
		// Fleet statistics persist as a sidecar next to the cache snapshot,
		// with the same degrade discipline: a corrupt or prior-version file
		// means empty statistics, never a startup failure — and never stops
		// the warm cache itself from loading.
		statsPath = *snapshot + ".stats"
		switch err := srv.Obs().LoadFile(statsPath); {
		case err == nil:
			logger.Info("stats sidecar loaded", "path", statsPath)
		case os.IsNotExist(err):
			logger.Info("no stats sidecar, starting empty", "path", statsPath)
		default:
			logger.Warn("ignoring unreadable stats sidecar, starting empty", "path", statsPath, "err", err)
		}
	}

	if *warmSeed {
		if node == nil {
			fatalf(logger, "-warm-seed requires cluster mode (-node-id/-peers)")
		}
		// Seeding is best effort: the donor may itself still be booting
		// (a whole cluster starting at once is all cold anyway), and a
		// cold start is always correct — the cache is pure recomputable
		// state, so log and carry on.
		sctx, scancel := context.WithTimeout(context.Background(), *seedTimeout)
		n, err := node.Seed(sctx)
		scancel()
		if err != nil {
			logger.Warn("warm seed unavailable, starting cold", "err", err)
		} else {
			logger.Info("warm-seeded from ring successor",
				"entries", n, "donor", node.Ring().Successor(node.SelfID()))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf(logger, "listen %s: %v", *addr, err)
	}
	// The resolved address goes to stdout so scripts (and the e2e smoke
	// test) can start on :0 and learn the port.
	fmt.Printf("synthd: listening on http://%s\n", ln.Addr())
	logger.Info("synthd up", "addr", ln.Addr().String(), "backend", *backend,
		"cache_cap", cache.Cap(), "cache_shards", cache.Shards(),
		"trace_sample", *traceSample)
	if node != nil {
		logger.Info("cluster joined", "node", node.SelfID(),
			"ring", fmt.Sprint(node.Ring().Members()), "vnodes", node.Ring().VNodes())
	}

	var dhs *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf(logger, "listen -debug-addr %s: %v", *debugAddr, err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.HandleFunc("GET /debug/trace", srv.HandleDebugTrace)
		dhs = newHTTPServer(dmux)
		fmt.Printf("synthd: debug on http://%s\n", dln.Addr())
		logger.Info("debug listener up", "addr", dln.Addr().String())
		go func() {
			if err := dhs.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug listener failed", "err", err)
			}
		}()
	}

	hs := newHTTPServer(srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received, draining", "budget", drain.String())
	case err := <-errc:
		fatalf(logger, "serve: %v", err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if dhs != nil {
		dhs.Close()
	}
	if node != nil {
		// Let in-flight owner pushes land so peers keep this node's last
		// syntheses after it leaves.
		node.Flush()
	}
	// Persistence failures must not abort the rest of the shutdown (both
	// flushes are attempted, the listener error is still collected), but
	// they must be visible to supervisors: the process exits nonzero so a
	// restart loop or CI harness notices the lost state.
	exitCode := 0
	if *snapshot != "" {
		if err := cache.SaveFile(*snapshot); err != nil {
			logger.Error("flushing snapshot failed", "path", *snapshot, "err", err)
			exitCode = 1
		} else {
			st := cache.Stats()
			logger.Info("snapshot flushed", "entries", st.Size, "path", *snapshot,
				"lifetime_hits", st.Hits, "lifetime_misses", st.Misses)
		}
		if err := srv.Obs().SaveFile(statsPath); err != nil {
			logger.Error("flushing stats sidecar failed", "path", statsPath, "err", err)
			exitCode = 1
		} else {
			logger.Info("stats sidecar flushed", "path", statsPath)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf(logger, "serve: %v", err)
	}
	os.Exit(exitCode)
}
