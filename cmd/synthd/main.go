// Command synthd is the resident synthesis daemon: one warm pipeline
// configuration and one shared, sharded synthesis cache behind the
// synth/serve HTTP/JSON API. Where every cmd/ tool is a cold start that
// rebuilds its cache and throws away every synthesized sequence, synthd
// amortizes synthesis across requests, clients, and — via the snapshot
// file — restarts: gridsynth/trasyn sequences are pure functions of
// (rotation, ε, config), so a cache entry is valid forever.
//
// Usage:
//
//	synthd                                    # :8077, auto backend, no persistence
//	synthd -addr :9000 -backend gridsynth
//	synthd -snapshot /var/lib/synthd/cache.json   # load at start, flush on shutdown
//	synthd -addr 127.0.0.1:0                  # random port, printed on stdout
//
// Endpoints: POST /v1/compile, POST /v1/synthesize, GET /healthz,
// GET /metrics. Compile requests can enable the T-count optimizer via
// opt_level / optimizers (the stats then carry t_count_before /
// t_count_after, and /metrics totals synthd_t_reclaimed_total across
// all compiles). See synth/serve for the request/response shapes and
// synth/serve/client for the Go client; cmd/compile -remote drives a
// running daemon from the CLI.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests (up to -drain), flushes the cache snapshot, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/synth"
	"repro/synth/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8077", "listen address (host:0 picks a random port, printed on stdout)")
		backend     = flag.String("backend", "auto", "default backend for requests that name none")
		cacheSize   = flag.Int("cache-size", 0, "cache capacity in entries (0 = default)")
		cacheShards = flag.Int("cache-shards", 0, "cache shard count (0 = auto)")
		snapshot    = flag.String("snapshot", "", "cache snapshot file: loaded at start, flushed on graceful shutdown (empty = no persistence)")
		workers     = flag.Int("workers", 0, "per-compile synthesis pool size (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("queue", 0, "max requests waiting for a slot before 503s (0 = 64)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Minute, "per-request deadline cap (0 = none)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "synthd: ", log.LstdFlags)

	if _, ok := synth.Lookup(*backend); !ok {
		logger.Fatalf("unknown -backend %q (have %v)", *backend, synth.List())
	}

	srv := serve.New(serve.Config{
		DefaultBackend: *backend,
		Workers:        *workers,
		CacheSize:      *cacheSize,
		CacheShards:    *cacheShards,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
	})
	cache := srv.Cache()
	if *snapshot != "" {
		n, err := cache.LoadFile(*snapshot)
		switch {
		case err == nil:
			logger.Printf("loaded %d cached sequences from %s", n, *snapshot)
		case os.IsNotExist(err):
			logger.Printf("no snapshot at %s, starting cold", *snapshot)
		default:
			// A corrupt snapshot must not turn the persistence feature into
			// a startup outage: the cache is pure recomputable state, so
			// log, start cold, and let the shutdown flush overwrite it.
			logger.Printf("ignoring unreadable snapshot %s (starting cold): %v", *snapshot, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	// The resolved address goes to stdout so scripts (and the e2e smoke
	// test) can start on :0 and learn the port.
	fmt.Printf("synthd: listening on http://%s\n", ln.Addr())
	logger.Printf("backend=%s cache(cap=%d shards=%d)", *backend, cache.Cap(), cache.Shards())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("signal received, draining (budget %s)", *drain)
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if *snapshot != "" {
		if err := cache.SaveFile(*snapshot); err != nil {
			logger.Fatalf("flushing snapshot: %v", err)
		}
		st := cache.Stats()
		logger.Printf("flushed %d cached sequences to %s (lifetime: %d hits / %d misses)",
			st.Size, *snapshot, st.Hits, st.Misses)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
}
