// Command gridsynth exposes the Ross–Selinger Rz synthesizer through the
// unified synth.Backend API: the number-theoretic baseline (grid problems
// + norm equations + exact synthesis), useful stand-alone exactly like the
// original tool.
//
// Usage:
//
//	gridsynth -theta 0.5236 -eps 1e-4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/qmat"
	"repro/synth"
)

func main() {
	var (
		theta   = flag.Float64("theta", 0.5235987755982988, "rotation angle")
		eps     = flag.Float64("eps", 1e-4, "error threshold")
		timeout = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		quiet   = flag.Bool("q", false, "print only the sequence")
	)
	flag.Parse()
	be, ok := synth.Lookup("gridsynth")
	if !ok {
		fmt.Fprintln(os.Stderr, "gridsynth: backend not registered")
		os.Exit(1)
	}
	res, err := be.Synthesize(context.Background(), qmat.Rz(*theta),
		synth.Request{Epsilon: *eps, Timeout: *timeout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsynth: %v\n", err)
		os.Exit(1)
	}
	if *quiet {
		fmt.Println(res.Seq)
		return
	}
	fmt.Printf("Rz(%g) @ eps %.1e\n", *theta, *eps)
	fmt.Printf("T=%d Clifford=%d error=%.3e time=%s\n",
		res.TCount, res.Clifford, res.Error, res.Wall.Round(time.Microsecond))
	fmt.Println(res.Seq)
}
