// Command gridsynth exposes the Ross–Selinger Rz synthesizer: the
// number-theoretic baseline (grid problems + norm equations + exact
// synthesis), useful stand-alone exactly like the original tool.
//
// Usage:
//
//	gridsynth -theta 0.5236 -eps 1e-4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		theta = flag.Float64("theta", 0.5235987755982988, "rotation angle")
		eps   = flag.Float64("eps", 1e-4, "error threshold")
		quiet = flag.Bool("q", false, "print only the sequence")
	)
	flag.Parse()
	start := time.Now()
	res, err := repro.GridsynthRz(*theta, *eps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsynth: %v\n", err)
		os.Exit(1)
	}
	if *quiet {
		fmt.Println(res.Seq)
		return
	}
	fmt.Printf("Rz(%g) @ eps %.1e\n", *theta, *eps)
	fmt.Printf("T=%d Clifford=%d error=%.3e time=%s\n", res.TCount, res.Clifford, res.Error, time.Since(start))
	fmt.Println(res.Seq)
}
