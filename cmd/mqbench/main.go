// Command mqbench records the multi-qubit fusion benchmark: fuse-then-lower
// (the fuse2q pass in front of the canned optimizing pipeline) against
// lower-then-optimize (the same pipeline without fusion) on QAOA and
// random-SU(4)-block workloads, appended as a dated entry to
// BENCH_multiqubit.json. The workloads are the suite's qaoa_maxcut and
// su4blocks generators at fixed seeds, so numbers are comparable between
// runs, CI and this tool.
//
// Usage:
//
//	mqbench -out BENCH_multiqubit.json -label after
//	mqbench -backend gridsynth -opt 2 -label ci-smoke
//
// The "before"/"after" labels are the perf-PR convention: an entry records
// which side of a change it measures; later sessions append fresh entries
// rather than overwriting history.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/circuit"
	"repro/circuit/gen"
	"repro/synth"
)

type workload struct {
	Name    string
	Circuit *circuit.Circuit
}

// side is one compiled variant of a workload (baseline or fused).
type side struct {
	TCount   int     `json:"t_count"`
	TwoQubit int     `json:"two_qubit"`
	Clifford int     `json:"clifford"`
	WallMs   float64 `json:"wall_ms"`
	// Fusion accounting, present on the fused side only.
	BlocksFused  int `json:"blocks_fused,omitempty"`
	BlockCXSaved int `json:"block_cx_saved,omitempty"`
}

type result struct {
	Workload string `json:"workload"`
	Qubits   int    `json:"qubits"`
	// Baseline is lower-then-optimize; Fused is fuse-then-lower.
	Baseline side `json:"baseline"`
	Fused    side `json:"fused"`
	// TSaved/CXSaved are baseline minus fused (positive = fusion won).
	TSaved  int `json:"t_saved"`
	CXSaved int `json:"cx_saved"`
}

type entry struct {
	Date      string   `json:"date"`
	Label     string   `json:"label"`
	Commit    string   `json:"commit,omitempty"`
	Backend   string   `json:"backend"`
	OptLevel  int      `json:"opt_level"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	GoVersion string   `json:"go_version"`
	Results   []result `json:"results"`
	Note      string   `json:"note,omitempty"`
}

type report struct {
	Benchmark   string  `json:"benchmark"`
	Package     string  `json:"package"`
	Description string  `json:"description"`
	Entries     []entry `json:"entries"`
}

func newReport() *report {
	return &report{
		Benchmark: "mqbench fuse-then-lower vs lower-then-optimize",
		Package:   "repro/synth/multiqubit",
		Description: "T-count and two-qubit count with and without the fuse2q " +
			"pass (KAK re-synthesis of pair-confined gate runs) in front of the " +
			"canned optimizing pipeline, on qaoa_maxcut and su4blocks workloads " +
			"at fixed seeds.",
	}
}

func workloads() []workload {
	return []workload{
		{"qaoa_maxcut_n8_p2", gen.QAOAMaxCut(8, 2, 802)},
		{"qaoa_maxcut_n12_p3", gen.QAOAMaxCut(12, 3, 1203)},
		{"su4blocks_n4_b8", gen.RandomSU4Blocks(4, 8, 48)},
		{"su4blocks_n6_b12", gen.RandomSU4Blocks(6, 12, 612)},
	}
}

func main() {
	out := flag.String("out", "BENCH_multiqubit.json", "output JSON path (appended to if it exists)")
	label := flag.String("label", "after", "entry label (before/after/ci-smoke/...)")
	commit := flag.String("commit", "", "commit describing the measured tree")
	note := flag.String("note", "", "free-form note stored with the entry")
	backend := flag.String("backend", "auto", "synthesis backend")
	opt := flag.Int("opt", 2, "optimizer level for both sides")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-compile timeout")
	flag.Parse()

	rep := newReport()
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			fmt.Fprintf(os.Stderr, "mqbench: %s exists but is not a report: %v\n", *out, err)
			os.Exit(1)
		}
	}

	ent := entry{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Label:     *label,
		Commit:    *commit,
		Backend:   *backend,
		OptLevel:  *opt,
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Note:      *note,
	}
	for _, w := range workloads() {
		fmt.Fprintf(os.Stderr, "mqbench: %s (%d qubits, %d ops)...\n", w.Name, w.Circuit.N, len(w.Circuit.Ops))
		base, err := compile(w.Circuit, *backend, *opt, false, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqbench: %s baseline: %v\n", w.Name, err)
			os.Exit(1)
		}
		fused, err := compile(w.Circuit, *backend, *opt, true, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqbench: %s fused: %v\n", w.Name, err)
			os.Exit(1)
		}
		r := result{
			Workload: w.Name,
			Qubits:   w.Circuit.N,
			Baseline: base,
			Fused:    fused,
			TSaved:   base.TCount - fused.TCount,
			CXSaved:  base.TwoQubit - fused.TwoQubit,
		}
		ent.Results = append(ent.Results, r)
		fmt.Fprintf(os.Stderr, "mqbench: %s  T %d→%d  2Q %d→%d  (blocks fused %d)\n",
			w.Name, base.TCount, fused.TCount, base.TwoQubit, fused.TwoQubit, fused.BlocksFused)
	}
	rep.Entries = append(rep.Entries, ent)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mqbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mqbench: appended %q entry (%d workloads) to %s\n", *label, len(ent.Results), *out)
}

// compile runs one workload through the canned optimizing pipeline, with
// or without the fuse2q pass in front, and returns the gate accounting.
func compile(c *circuit.Circuit, backend string, opt int, fuse bool, timeout time.Duration) (side, error) {
	opts := []synth.Option{synth.WithOptimize(opt)}
	if fuse {
		opts = append(opts, synth.WithFuseBlocks())
	}
	pl, err := synth.NewPipelineFor(backend, opts...)
	if err != nil {
		return side{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := pl.Run(ctx, c)
	if err != nil {
		return side{}, err
	}
	s := side{
		TCount:   res.Circuit.TCount(),
		TwoQubit: res.Circuit.TwoQubitCount(),
		Clifford: res.Circuit.CliffordCount(),
		WallMs:   float64(res.Wall) / float64(time.Millisecond),
	}
	if f := res.Stats.Fuse; f != nil {
		s.BlocksFused = f.Blocks
		s.BlockCXSaved = f.CXSaved
	}
	return s, nil
}
