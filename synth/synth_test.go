package synth

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/qmat"
)

// TestRegistrySemantics: built-ins present, duplicate names rejected,
// first registration wins, empty/nil rejected.
func TestRegistrySemantics(t *testing.T) {
	for _, name := range []string{"trasyn", "gridsynth", "sk", "anneal", "auto"} {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("built-in backend %q not registered", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if err := Register("trasyn", trasynBackend{}); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if err := Register("", trasynBackend{}); err == nil {
		t.Fatal("empty-name Register succeeded")
	}
	if err := Register("nilbackend", nil); err == nil {
		t.Fatal("nil-backend Register succeeded")
	}
	if err := Register("custom-test-backend", trasynBackend{}); err != nil {
		t.Fatalf("fresh Register failed: %v", err)
	}
	found := false
	for _, n := range List() {
		if n == "custom-test-backend" {
			found = true
		}
	}
	if !found {
		t.Fatal("List does not include freshly registered backend")
	}
}

// TestSeedZeroReachable: the facade's seed-zero bug must be gone — Seed(0)
// is a real seed (matching core with source 0), and a nil Seed selects the
// deterministic DefaultSeed (matching core with source 1), never the clock.
func TestSeedZeroReachable(t *testing.T) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(8)))
	req := Request{TBudget: 5, Tensors: 2, Samples: 600}
	be, _ := Lookup("trasyn")

	coreRun := func(seed int64) core.Result {
		cfg := core.DefaultConfig(gates.Shared(5), 5, 2, 600)
		cfg.Rng = rand.New(rand.NewSource(seed))
		return core.TRASYN(u, cfg)
	}
	zero := req
	zero.Seed = Seed(0)
	got, err := be.Synthesize(context.Background(), u, zero)
	if err != nil {
		t.Fatal(err)
	}
	if want := coreRun(0); got.Seq.String() != want.Seq.String() {
		t.Fatalf("Seed(0) did not reach seed 0: got %v want %v", got.Seq, want.Seq)
	}
	unset, err := be.Synthesize(context.Background(), u, req)
	if err != nil {
		t.Fatal(err)
	}
	if want := coreRun(DefaultSeed); unset.Seq.String() != want.Seq.String() {
		t.Fatalf("nil Seed is not DefaultSeed: got %v want %v", unset.Seq, want.Seq)
	}
	again, err := be.Synthesize(context.Background(), u, zero)
	if err != nil {
		t.Fatal(err)
	}
	if again.Seq.String() != got.Seq.String() {
		t.Fatal("same request not deterministic")
	}
}

// TestCrossBackendResultConsistency: every backend's Result metadata must
// agree with its own sequence, and Error must be the realized distance.
func TestCrossBackendResultConsistency(t *testing.T) {
	target := qmat.Rz(0.731)
	ctx := context.Background()
	for _, name := range []string{"trasyn", "gridsynth", "sk", "anneal", "auto"} {
		be, _ := Lookup(name)
		req := Request{Epsilon: 0.05, Samples: 800}
		if name == "anneal" {
			req.Timeout = 300 * time.Millisecond
			req.Seed = Seed(2)
		}
		res, err := be.Synthesize(ctx, target, req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Seq == nil {
			t.Fatalf("%s: nil sequence", name)
		}
		if res.TCount != res.Seq.TCount() {
			t.Fatalf("%s: TCount %d != Seq.TCount() %d", name, res.TCount, res.Seq.TCount())
		}
		if res.Clifford != res.Seq.CliffordCount() {
			t.Fatalf("%s: Clifford %d != Seq.CliffordCount() %d", name, res.Clifford, res.Seq.CliffordCount())
		}
		if d := qmat.Distance(target, res.Seq.Matrix()); math.Abs(d-res.Error) > 1e-6 {
			t.Fatalf("%s: reported error %v but realized %v", name, res.Error, d)
		}
		if res.Backend == "" {
			t.Fatalf("%s: empty Backend name", name)
		}
		if res.Wall < 0 {
			t.Fatalf("%s: negative wall time", name)
		}
	}
}

// TestAutoPicksLowerTCount: the racing backend must return a result at
// least as good (in T count at met epsilon, or in error) as gridsynth
// alone under the same epsilon.
func TestAutoPicksLowerTCount(t *testing.T) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(12)))
	ctx := context.Background()
	eps := 1e-2
	auto, _ := Lookup("auto")
	gs, _ := Lookup("gridsynth")
	ares, err := auto.Synthesize(ctx, u, Request{Epsilon: eps, Samples: 1500})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := gs.Synthesize(ctx, u, Request{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if ares.Error <= eps && gres.Error <= eps && ares.TCount > gres.TCount {
		t.Fatalf("auto (T=%d) worse than gridsynth alone (T=%d)", ares.TCount, gres.TCount)
	}
	if ares.Backend != "trasyn" && ares.Backend != "gridsynth" {
		t.Fatalf("auto winner has unexpected backend %q", ares.Backend)
	}
}

// TestBackendCancellation: a canceled context aborts synthesis promptly.
func TestBackendCancellation(t *testing.T) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(13)))
	for _, name := range []string{"trasyn", "gridsynth", "anneal"} {
		be, _ := Lookup(name)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		// Huge work sizes: only cancellation can return this fast.
		_, err := be.Synthesize(ctx, u, Request{Epsilon: 1e-9, Samples: 1 << 20, Tensors: 12})
		if err == nil && name != "anneal" {
			t.Fatalf("%s: no error from pre-canceled context", name)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: cancellation took %s", name, elapsed)
		}
	}
}
