package serve_test

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"repro/synth/fault"
	"repro/synth/serve"
	"repro/synth/serve/client"
)

// TestBackendPanicIsPerOp: an injected backend panic fails only its ops
// inside a 200 batch — the request succeeds, the failed results say why,
// and the panic shows up on /metrics and in the log.
func TestBackendPanicIsPerOp(t *testing.T) {
	in, err := fault.Parse("backend:gridsynth panic=chaos every=2")
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	_, cl := newTestServer(t, serve.Config{
		Fault:   in,
		Workers: 1,
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	resp, err := cl.Synthesize(context.Background(), serve.SynthesizeRequest{
		Backend: "gridsynth",
		Eps:     1e-2,
		Rotations: []serve.Rotation{
			{Gate: "rz", Params: [3]float64{0.11}},
			{Gate: "rz", Params: [3]float64{0.22}},
			{Gate: "rz", Params: [3]float64{0.33}},
			{Gate: "rz", Params: [3]float64{0.44}},
		},
	})
	if err != nil {
		t.Fatalf("batch with contained panics must still be a 200: %v", err)
	}
	if resp.Failed != 2 {
		t.Fatalf("failed = %d, want 2 (every=2 over 4 ops)", resp.Failed)
	}
	var ok, bad int
	for i, res := range resp.Results {
		if res.Failure != "" {
			bad++
			if res.Seq != "" || res.TCount != 0 {
				t.Fatalf("result %d: failed op carries a sequence: %+v", i, res)
			}
			if !strings.Contains(res.Failure, "backend:gridsynth") {
				t.Fatalf("result %d failure %q names no site", i, res.Failure)
			}
			continue
		}
		ok++
		if res.Seq == "" {
			t.Fatalf("result %d: no failure but no sequence", i)
		}
	}
	if ok != 2 || bad != 2 {
		t.Fatalf("got %d ok / %d failed, want 2/2", ok, bad)
	}

	body, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, `synthd_panics_total{site="backend:gridsynth"} 2`) {
		t.Fatalf("metrics missing panic counter:\n%s", grepLines(body, "panics"))
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "recovered panic") || !strings.Contains(logged, "chaos") {
		t.Fatalf("panic not logged: %s", logged)
	}
}

// TestHandlerPanicIs500: a panic at the handler boundary is one 500, and
// the next request on the same server works.
func TestHandlerPanicIs500(t *testing.T) {
	in, err := fault.Parse("handler:/v1/synthesize panic count=1")
	if err != nil {
		t.Fatal(err)
	}
	_, cl := newTestServer(t, serve.Config{Fault: in})
	req := serve.SynthesizeRequest{
		Eps:       1e-2,
		Backend:   "gridsynth",
		Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{0.5}}},
	}
	_, err = cl.Synthesize(context.Background(), req)
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("want 500 APIError, got %v", err)
	}
	if !strings.Contains(ae.Message, "panic") {
		t.Fatalf("500 body hides the panic: %q", ae.Message)
	}
	// count=1 exhausted: the server survived and serves normally.
	resp, err := cl.Synthesize(context.Background(), req)
	if err != nil || resp.Results[0].Seq == "" {
		t.Fatalf("server broken after contained handler panic: %v", err)
	}

	body, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, `synthd_panics_total{site="handler:/v1/synthesize"} 1`) {
		t.Fatalf("metrics missing handler panic:\n%s", grepLines(body, "panics"))
	}
}

// TestInjectedHandlerError: an error-action fault surfaces as a clean 500
// without any panic accounting.
func TestInjectedHandlerError(t *testing.T) {
	in, err := fault.Parse("handler:* error=synthetic-outage count=1")
	if err != nil {
		t.Fatal(err)
	}
	_, cl := newTestServer(t, serve.Config{Fault: in})
	_, err = cl.Compile(context.Background(), serve.CompileRequest{QASM: testQASM, Eps: 0.3})
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("want 500 APIError, got %v", err)
	}
	if !strings.Contains(ae.Message, "synthetic-outage") {
		t.Fatalf("error body: %q", ae.Message)
	}
	body, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body, "synthd_panics_total{") {
		t.Fatalf("injected error counted as a panic:\n%s", grepLines(body, "panics"))
	}
}

// grepLines filters body to lines containing substr, for failure output.
func grepLines(body, substr string) string {
	var out []string
	for _, ln := range strings.Split(body, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	if len(out) == 0 {
		return "(no matching lines)"
	}
	return strings.Join(out, "\n")
}
