package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/synth/serve"
	"repro/synth/serve/client"
)

var retryReq = serve.SynthesizeRequest{
	Eps:       1e-2,
	Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{0.41}}},
}

// rejectingServer answers 429 (with Retry-After) for the first reject
// calls, then 200. It records the call count and the tenant header.
func rejectingServer(t *testing.T, reject int64, status int, tenants *[]string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	calls := &atomic.Int64{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*tenants = append(*tenants, r.Header.Get("X-Tenant"))
		if calls.Add(1) <= reject {
			w.Header().Set("Retry-After", "0") // keep the test fast; 0 floors to 50ms
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "over quota"})
			return
		}
		json.NewEncoder(w).Encode(serve.SynthesizeResponse{
			Results: []serve.SynthesizeResult{{Seq: "T"}}, Hits: 1,
		})
	}))
	t.Cleanup(hs.Close)
	return hs, calls
}

// TestRetryHonorsRetryAfter: a WithRetry client replays the POST after a
// 429, carries the tenant header on every attempt, and succeeds.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1, http.StatusTooManyRequests, &tenants)
	cl := client.New(hs.URL, client.WithRetry(2), client.WithTenant("alice"))
	resp, err := cl.Synthesize(context.Background(), retryReq)
	if err != nil {
		t.Fatalf("retry-enabled client failed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (reject, then success)", got)
	}
	if resp.Hits != 1 || len(resp.Results) != 1 || resp.Results[0].Seq != "T" {
		t.Fatalf("retried request decoded wrong response: %+v", resp)
	}
	for i, tn := range tenants {
		if tn != "alice" {
			t.Fatalf("attempt %d carried X-Tenant %q, want alice on every attempt", i, tn)
		}
	}
}

// TestNoRetryByDefault: rejection is part of the API — without WithRetry
// the caller sees the raw 429 after exactly one attempt.
func TestNoRetryByDefault(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1000, http.StatusTooManyRequests, &tenants)
	cl := client.New(hs.URL)
	_, err := cl.Synthesize(context.Background(), retryReq)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("want raw 429 APIError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("default client made %d attempts, want 1", got)
	}
}

// TestRetryBudgetExhausted: WithRetry(n) means n retries — n+1 attempts —
// and the final rejection surfaces as the APIError. 503 (admission
// control) is retryable like 429.
func TestRetryBudgetExhausted(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1000, http.StatusServiceUnavailable, &tenants)
	cl := client.New(hs.URL, client.WithRetry(2))
	_, err := cl.Synthesize(context.Background(), retryReq)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 APIError after budget, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// killingListener closes the first kills accepted connections before a
// byte is exchanged — the client sees ECONNRESET or EOF, exactly what a
// daemon dropping mid-restart looks like — then passes connections
// through. accepts counts every connection attempt that reached us.
type killingListener struct {
	net.Listener
	kills   atomic.Int64
	accepts atomic.Int64
}

func (l *killingListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return conn, err
		}
		l.accepts.Add(1)
		if l.kills.Add(-1) < 0 {
			return conn, nil
		}
		conn.Close()
	}
}

// killingServer serves the usual one-T response behind a listener that
// kills the first n connections.
func killingServer(t *testing.T, n int64) (*httptest.Server, *killingListener) {
	t.Helper()
	hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.SynthesizeResponse{
			Results: []serve.SynthesizeResult{{Seq: "T"}}, Hits: 1,
		})
	}))
	kl := &killingListener{Listener: hs.Listener}
	kl.kills.Store(n)
	hs.Listener = kl
	hs.Start()
	t.Cleanup(hs.Close)
	return hs, kl
}

// TestRetryTransportReset: connections reset before a response replay
// under the WithRetry budget — the POST body is rebuilt per attempt and
// the call ultimately succeeds.
func TestRetryTransportReset(t *testing.T) {
	hs, kl := killingServer(t, 2)
	cl := client.New(hs.URL, client.WithRetry(3))
	resp, err := cl.Synthesize(context.Background(), retryReq)
	if err != nil {
		t.Fatalf("retry-enabled client failed across resets: %v", err)
	}
	if resp.Hits != 1 || len(resp.Results) != 1 || resp.Results[0].Seq != "T" {
		t.Fatalf("retried request decoded wrong response: %+v", resp)
	}
	if got := kl.accepts.Load(); got != 3 {
		t.Fatalf("server saw %d connections, want 3 (2 killed + 1 served)", got)
	}
}

// TestNoTransportRetryByDefault: without WithRetry a reset surfaces
// immediately as a transport error, not an APIError, after one attempt.
func TestNoTransportRetryByDefault(t *testing.T) {
	hs, kl := killingServer(t, 1000)
	cl := client.New(hs.URL)
	_, err := cl.Synthesize(context.Background(), retryReq)
	if err == nil {
		t.Fatal("want a transport error, got success")
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		t.Fatalf("transport failure surfaced as APIError: %v", err)
	}
	if got := kl.accepts.Load(); got != 1 {
		t.Fatalf("default client made %d connection attempts, want 1", got)
	}
}

// TestTransportRetryRefusedExhaustsBudget: nothing listening at all —
// every dial is refused, the budget runs out, and the last refusal is
// what the caller sees.
func TestTransportRetryRefusedExhaustsBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cl := client.New("http://"+addr, client.WithRetry(2))
	_, err = cl.Synthesize(context.Background(), retryReq)
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("want connection refused after budget, got %v", err)
	}
}

// TestTransportRetryStopsOnDeadline: the caller's deadline overrides
// any remaining retry budget — an unreachable daemon must not pin the
// caller for 1000 backoffs.
func TestTransportRetryStopsOnDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cl := client.New("http://"+addr, client.WithRetry(1000))
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Synthesize(ctx, retryReq)
	if err == nil {
		t.Fatal("want an error, got success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline ignored: returned after %v", el)
	}
}

// TestNonRetryableStatus: a 400 is never retried even with retries on.
func TestNonRetryableStatus(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1000, http.StatusBadRequest, &tenants)
	cl := client.New(hs.URL, client.WithRetry(5))
	_, err := cl.Synthesize(context.Background(), retryReq)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("client retried a non-retryable status: %d attempts", got)
	}
}
