package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/synth/serve"
	"repro/synth/serve/client"
)

var retryReq = serve.SynthesizeRequest{
	Eps:       1e-2,
	Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{0.41}}},
}

// rejectingServer answers 429 (with Retry-After) for the first reject
// calls, then 200. It records the call count and the tenant header.
func rejectingServer(t *testing.T, reject int64, status int, tenants *[]string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	calls := &atomic.Int64{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*tenants = append(*tenants, r.Header.Get("X-Tenant"))
		if calls.Add(1) <= reject {
			w.Header().Set("Retry-After", "0") // keep the test fast; 0 floors to 50ms
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "over quota"})
			return
		}
		json.NewEncoder(w).Encode(serve.SynthesizeResponse{
			Results: []serve.SynthesizeResult{{Seq: "T"}}, Hits: 1,
		})
	}))
	t.Cleanup(hs.Close)
	return hs, calls
}

// TestRetryHonorsRetryAfter: a WithRetry client replays the POST after a
// 429, carries the tenant header on every attempt, and succeeds.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1, http.StatusTooManyRequests, &tenants)
	cl := client.New(hs.URL, client.WithRetry(2), client.WithTenant("alice"))
	resp, err := cl.Synthesize(context.Background(), retryReq)
	if err != nil {
		t.Fatalf("retry-enabled client failed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (reject, then success)", got)
	}
	if resp.Hits != 1 || len(resp.Results) != 1 || resp.Results[0].Seq != "T" {
		t.Fatalf("retried request decoded wrong response: %+v", resp)
	}
	for i, tn := range tenants {
		if tn != "alice" {
			t.Fatalf("attempt %d carried X-Tenant %q, want alice on every attempt", i, tn)
		}
	}
}

// TestNoRetryByDefault: rejection is part of the API — without WithRetry
// the caller sees the raw 429 after exactly one attempt.
func TestNoRetryByDefault(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1000, http.StatusTooManyRequests, &tenants)
	cl := client.New(hs.URL)
	_, err := cl.Synthesize(context.Background(), retryReq)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("want raw 429 APIError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("default client made %d attempts, want 1", got)
	}
}

// TestRetryBudgetExhausted: WithRetry(n) means n retries — n+1 attempts —
// and the final rejection surfaces as the APIError. 503 (admission
// control) is retryable like 429.
func TestRetryBudgetExhausted(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1000, http.StatusServiceUnavailable, &tenants)
	cl := client.New(hs.URL, client.WithRetry(2))
	_, err := cl.Synthesize(context.Background(), retryReq)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 APIError after budget, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestNonRetryableStatus: a 400 is never retried even with retries on.
func TestNonRetryableStatus(t *testing.T) {
	var tenants []string
	hs, calls := rejectingServer(t, 1000, http.StatusBadRequest, &tenants)
	cl := client.New(hs.URL, client.WithRetry(5))
	_, err := cl.Synthesize(context.Background(), retryReq)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("client retried a non-retryable status: %d attempts", got)
	}
}
