// Package client is the Go client for a synthd daemon (synth/serve): the
// typed counterpart of the HTTP/JSON API that cmd/compile -remote and the
// CI smoke test speak. It owns no synthesis state — every call is one
// round trip to the daemon's shared cache and worker pool.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/synth/serve"
	"repro/synth/trace"
)

// Client talks to one synthd base URL.
type Client struct {
	base    string
	hc      *http.Client
	tenant  string
	retries int
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transports, client-side timeouts). The default has no timeout: compile
// deadlines belong to the request context and the daemon's own caps.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTenant sets the X-Tenant header on every request — the identity
// the daemon's per-tenant quotas meter.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// WithRetry enables bounded retries of rejected requests: a 429 (tenant
// quota) or 503 (admission control) response is retried up to n times,
// sleeping the server's Retry-After (capped at retryAfterCap) with ±25%
// jitter so a herd of rejected clients doesn't return in lockstep. The
// same budget covers transport-level connection failures — refused or
// reset connections, EOF before a response — which a restarting daemon
// emits for a few hundred milliseconds; those back off exponentially
// from 100ms. Off by default — rejection is part of the API, and
// callers probing the rejection path (tests, load shedding experiments)
// must see the raw status.
func WithRetry(n int) Option { return func(c *Client) { c.retries = n } }

// retryAfterCap bounds one retry sleep regardless of what the server
// advertises.
const retryAfterCap = 5 * time.Second

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:8077").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("synthd: %d: %s", e.Status, e.Message)
}

// Compile sends one circuit through POST /v1/compile.
func (c *Client) Compile(ctx context.Context, req serve.CompileRequest) (*serve.CompileResponse, error) {
	var resp serve.CompileResponse
	if err := c.post(ctx, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Synthesize sends a rotation batch through POST /v1/synthesize.
func (c *Client) Synthesize(ctx context.Context, req serve.SynthesizeRequest) (*serve.SynthesizeResponse, error) {
	var resp serve.SynthesizeResponse
	if err := c.post(ctx, "/v1/synthesize", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (*serve.Health, error) {
	var h serve.Health
	if err := c.get(ctx, "/healthz", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Stats fetches GET /v1/stats — the fleet-statistics table. With
// cluster=true it asks the daemon to federate across its hash ring
// (?cluster=1); a non-clustered daemon just answers with its local view.
func (c *Client) Stats(ctx context.Context, cluster bool) (*serve.StatsResponse, error) {
	path := "/v1/stats"
	if cluster {
		path += "?cluster=1"
	}
	var resp serve.StatsResponse
	if err := c.get(ctx, path, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the raw Prometheus exposition from GET /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", &APIError{Status: res.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	return c.do(ctx, out, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, out, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	})
}

// do executes the request (rebuilt per attempt, so retried POST bodies
// replay), decoding either the typed response or the daemon's
// ErrorResponse into an APIError. With WithRetry, a 429/503 rejection is
// retried after the advertised Retry-After.
func (c *Client) do(ctx context.Context, out any, build func() (*http.Request, error)) error {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return err
		}
		if c.tenant != "" {
			req.Header.Set("X-Tenant", c.tenant)
		}
		// When the caller's context carries an active span, propagate its
		// identity so the daemon's root span joins the caller's trace.
		if sp := trace.FromContext(ctx); sp != nil {
			req.Header.Set(trace.Header, sp.HeaderValue())
		}
		res, err := c.hc.Do(req)
		if err != nil {
			if attempt >= c.retries || !transportRetryable(err) {
				return err
			}
			select {
			case <-time.After(retryDelay("", attempt)):
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if res.StatusCode == http.StatusOK {
			err := json.NewDecoder(res.Body).Decode(out)
			res.Body.Close()
			if err != nil {
				return fmt.Errorf("client: decoding response: %w", err)
			}
			return nil
		}
		var e serve.ErrorResponse
		msg := res.Status
		if err := json.NewDecoder(res.Body).Decode(&e); err == nil && e.Error != "" {
			msg = e.Error
		}
		res.Body.Close()
		retryable := res.StatusCode == http.StatusTooManyRequests ||
			res.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.retries {
			return &APIError{Status: res.StatusCode, Message: msg}
		}
		select {
		case <-time.After(retryDelay(res.Header.Get("Retry-After"), attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// transportRetryable reports whether a c.hc.Do error is a connection
// failure worth replaying: the request never produced a response, so a
// retry cannot double-execute it... except for an EOF/reset racing a
// response the daemon had already started — acceptable here because
// every synthd POST is idempotent (synthesis is a pure function and
// the cache absorbs repeats). Context cancellation and deadlines are
// the caller's verdict and are never retried.
func transportRetryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	// A pooled keep-alive connection the daemon closed while idle. The
	// transport auto-replays this only for idempotent methods, so POSTs
	// see it raw; the sentinel is unexported, leaving the message.
	if strings.Contains(err.Error(), "server closed idle connection") {
		return true
	}
	// Any dial failure means no bytes reached a server — always safe.
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// retryDelay turns a Retry-After header (integer seconds; the only form
// the daemon emits) into a capped, jittered sleep. Without the header it
// backs off exponentially from 100ms.
func retryDelay(retryAfter string, attempt int) time.Duration {
	d := 100 * time.Millisecond << min(attempt, 10)
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > retryAfterCap {
		d = retryAfterCap
	}
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	// ±25% jitter de-synchronizes rejected clients.
	j := int64(d / 4)
	return d - time.Duration(j/2) + time.Duration(rand.Int63n(j+1))
}
