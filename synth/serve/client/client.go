// Package client is the Go client for a synthd daemon (synth/serve): the
// typed counterpart of the HTTP/JSON API that cmd/compile -remote and the
// CI smoke test speak. It owns no synthesis state — every call is one
// round trip to the daemon's shared cache and worker pool.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/synth/serve"
)

// Client talks to one synthd base URL.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transports, client-side timeouts). The default has no timeout: compile
// deadlines belong to the request context and the daemon's own caps.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:8077").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("synthd: %d: %s", e.Status, e.Message)
}

// Compile sends one circuit through POST /v1/compile.
func (c *Client) Compile(ctx context.Context, req serve.CompileRequest) (*serve.CompileResponse, error) {
	var resp serve.CompileResponse
	if err := c.post(ctx, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Synthesize sends a rotation batch through POST /v1/synthesize.
func (c *Client) Synthesize(ctx context.Context, req serve.SynthesizeRequest) (*serve.SynthesizeResponse, error) {
	var resp serve.SynthesizeResponse
	if err := c.post(ctx, "/v1/synthesize", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (*serve.Health, error) {
	var h serve.Health
	if err := c.get(ctx, "/healthz", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the raw Prometheus exposition from GET /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", &APIError{Status: res.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// do executes the request, decoding either the typed response or the
// daemon's ErrorResponse into an APIError.
func (c *Client) do(req *http.Request, out any) error {
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		msg := res.Status
		if err := json.NewDecoder(res.Body).Decode(&e); err == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{Status: res.StatusCode, Message: msg}
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}
