package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/synth/obs"
)

// latencyBuckets are the request-histogram upper bounds in seconds.
// Synthesis spans ~1ms cache hits to multi-minute tight-epsilon compiles,
// so the buckets are log-spaced across that range.
var latencyBuckets = []float64{
	0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300,
}

// queueWaitBuckets resolve the admission queue: waits are usually
// microseconds (free slot) but stretch to seconds under saturation.
var queueWaitBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10,
}

// fineBuckets resolve per-pass and per-synthesis times, which start well
// under a millisecond (transpile on a small circuit, a warm gridsynth
// call) and top out around a minute.
var fineBuckets = []float64{
	0.00001, 0.0001, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60,
}

// histogram is a fixed-bucket latency histogram (cumulative counts, like
// Prometheus's classic histogram type). Each histogram owns its bucket
// bounds, so coarse request latencies and sub-millisecond pass times
// don't share one resolution.
type histogram struct {
	buckets []float64
	counts  []int64 // counts[i] = observations <= buckets[i]
	sum     float64
	count   int64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]int64, len(buckets))}
}

func (h *histogram) observe(seconds float64) {
	for i, ub := range h.buckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
}

// metrics aggregates the service counters exposed on GET /metrics. All
// methods are safe for concurrent use.
type metrics struct {
	mu sync.Mutex
	// requests[endpoint][status] counts completed requests.
	requests map[string]map[int]int64
	// latency[endpoint] observes successful request durations.
	latency map[string]*histogram
	// queueWait observes admission-queue waits — the time split out of
	// service latency, across all endpoints.
	queueWait *histogram
	// synth[backend|eps_band] observes individual synthesis calls; pass
	// [pass] observes pipeline pass wall times. Both are fed by hooks
	// that fire on every occurrence, independent of trace sampling.
	synth map[string]*histogram
	pass  map[string]*histogram
	// rejected counts admissions refused because the queue was full.
	rejected int64
	// panics[site] counts panics recovered at a containment boundary
	// ("backend:gridsynth", "racer:trasyn", "handler:/v1/compile").
	// Any nonzero value is a latent bug being survived, not business
	// as usual.
	panics map[string]int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  map[string]map[int]int64{},
		latency:   map[string]*histogram{},
		queueWait: newHistogram(queueWaitBuckets),
		synth:     map[string]*histogram{},
		pass:      map[string]*histogram{},
		panics:    map[string]int64{},
	}
}

// panicAt logs one recovered panic at a containment site.
func (m *metrics) panicAt(site string) {
	m.mu.Lock()
	m.panics[site]++
	m.mu.Unlock()
}

// record logs one completed request.
func (m *metrics) record(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = map[int]int64{}
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	if status < 400 {
		h := m.latency[endpoint]
		if h == nil {
			h = newHistogram(latencyBuckets)
			m.latency[endpoint] = h
		}
		h.observe(d.Seconds())
	}
}

// observeQueueWait logs one admission wait (every admitted request,
// including those whose handler later fails).
func (m *metrics) observeQueueWait(d time.Duration) {
	m.mu.Lock()
	m.queueWait.observe(d.Seconds())
	m.mu.Unlock()
}

// observeSynth logs one completed synthesis under its backend and
// epsilon decade band.
func (m *metrics) observeSynth(backend, epsBand string, d time.Duration) {
	key := backend + "|" + epsBand
	m.mu.Lock()
	h := m.synth[key]
	if h == nil {
		h = newHistogram(fineBuckets)
		m.synth[key] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// observePass logs one executed pipeline pass.
func (m *metrics) observePass(pass string, d time.Duration) {
	m.mu.Lock()
	h := m.pass[pass]
	if h == nil {
		h = newHistogram(fineBuckets)
		m.pass[pass] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// reject logs one admission-control rejection.
func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// epsBand buckets an epsilon into its decade ("1e-7"), the label
// granularity of synthd_synth_seconds — the same banding the fleet
// statistics key on, so metrics and /v1/stats rows line up.
func epsBand(eps float64) string { return obs.EpsBand(eps) }

// scrapeMetric is one point-in-time value the server contributes at
// scrape time (cache counters, queue depth).
type scrapeMetric struct {
	name, help, kind string // kind: "gauge" or "counter"
	value            float64
}

// writeHistogram renders one histogram series with the given label
// string ("" or `name="value",...` without braces).
func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	sep := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	for i, ub := range h.buckets {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(fmt.Sprintf("le=%q", trimFloat(ub))), h.counts[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="+Inf"`), h.count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, sep(""), h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep(""), h.count)
}

// trimFloat renders a bucket bound the way Prometheus clients do (%g).
func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// write renders the Prometheus text exposition format: the counters and
// histograms accumulated here plus the caller's scrape-time values.
func (m *metrics) write(w io.Writer, scraped []scrapeMetric) {
	for _, g := range scraped {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", g.name, g.help, g.name, g.kind, g.name, g.value)
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP synthd_rejected_total Requests refused by admission control.\n")
	fmt.Fprintf(w, "# TYPE synthd_rejected_total counter\n")
	fmt.Fprintf(w, "synthd_rejected_total %d\n", m.rejected)

	fmt.Fprintf(w, "# HELP synthd_requests_total Completed requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE synthd_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		byStatus := m.requests[ep]
		codes := make([]int, 0, len(byStatus))
		for c := range byStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "synthd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, byStatus[c])
		}
	}

	fmt.Fprintf(w, "# HELP synthd_request_seconds Latency of successful requests (service time, queue wait excluded).\n")
	fmt.Fprintf(w, "# TYPE synthd_request_seconds histogram\n")
	for _, ep := range sortedKeys(m.latency) {
		writeHistogram(w, "synthd_request_seconds", fmt.Sprintf("endpoint=%q", ep), m.latency[ep])
	}

	fmt.Fprintf(w, "# HELP synthd_queue_wait_seconds Time admitted requests spent waiting for an execution slot.\n")
	fmt.Fprintf(w, "# TYPE synthd_queue_wait_seconds histogram\n")
	writeHistogram(w, "synthd_queue_wait_seconds", "", m.queueWait)

	fmt.Fprintf(w, "# HELP synthd_synth_seconds Wall time of individual syntheses by producing backend and epsilon decade.\n")
	fmt.Fprintf(w, "# TYPE synthd_synth_seconds histogram\n")
	for _, key := range sortedKeys(m.synth) {
		backend, band, _ := strings.Cut(key, "|")
		writeHistogram(w, "synthd_synth_seconds",
			fmt.Sprintf("backend=%q,eps_band=%q", backend, band), m.synth[key])
	}

	fmt.Fprintf(w, "# HELP synthd_pass_seconds Wall time of pipeline passes by pass name.\n")
	fmt.Fprintf(w, "# TYPE synthd_pass_seconds histogram\n")
	for _, p := range sortedKeys(m.pass) {
		writeHistogram(w, "synthd_pass_seconds", fmt.Sprintf("pass=%q", p), m.pass[p])
	}

	fmt.Fprintf(w, "# HELP synthd_panics_total Panics recovered at containment boundaries, by site.\n")
	fmt.Fprintf(w, "# TYPE synthd_panics_total counter\n")
	for _, site := range sortedKeys(m.panics) {
		fmt.Fprintf(w, "synthd_panics_total{site=%q} %d\n", site, m.panics[site])
	}
}

// sortedKeys returns the map's keys in sorted order, for a stable scrape.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
