package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. Synthesis
// spans ~1ms cache hits to multi-minute tight-epsilon compiles, so the
// buckets are log-spaced across that range.
var latencyBuckets = []float64{
	0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300,
}

// histogram is a fixed-bucket latency histogram (cumulative counts, like
// Prometheus's classic histogram type).
type histogram struct {
	counts []int64 // counts[i] = observations <= latencyBuckets[i]
	sum    float64
	count  int64
}

func (h *histogram) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]int64, len(latencyBuckets))
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
}

// metrics aggregates the service counters exposed on GET /metrics. All
// methods are safe for concurrent use.
type metrics struct {
	mu sync.Mutex
	// requests[endpoint][status] counts completed requests.
	requests map[string]map[int]int64
	// latency[endpoint] observes successful request durations.
	latency map[string]*histogram
	// rejected counts admissions refused because the queue was full.
	rejected int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]map[int]int64{},
		latency:  map[string]*histogram{},
	}
}

// record logs one completed request.
func (m *metrics) record(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = map[int]int64{}
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	if status < 400 {
		h := m.latency[endpoint]
		if h == nil {
			h = &histogram{}
			m.latency[endpoint] = h
		}
		h.observe(d.Seconds())
	}
}

// reject logs one admission-control rejection.
func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// scrapeMetric is one point-in-time value the server contributes at
// scrape time (cache counters, queue depth).
type scrapeMetric struct {
	name, help, kind string // kind: "gauge" or "counter"
	value            float64
}

// write renders the Prometheus text exposition format: the counters and
// histograms accumulated here plus the caller's scrape-time values.
func (m *metrics) write(w io.Writer, scraped []scrapeMetric) {
	for _, g := range scraped {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", g.name, g.help, g.name, g.kind, g.name, g.value)
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP synthd_rejected_total Requests refused by admission control.\n")
	fmt.Fprintf(w, "# TYPE synthd_rejected_total counter\n")
	fmt.Fprintf(w, "synthd_rejected_total %d\n", m.rejected)

	fmt.Fprintf(w, "# HELP synthd_requests_total Completed requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE synthd_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		byStatus := m.requests[ep]
		codes := make([]int, 0, len(byStatus))
		for c := range byStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "synthd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, byStatus[c])
		}
	}

	fmt.Fprintf(w, "# HELP synthd_request_seconds Latency of successful requests.\n")
	fmt.Fprintf(w, "# TYPE synthd_request_seconds histogram\n")
	for _, ep := range sortedKeys(m.latency) {
		h := m.latency[ep]
		for i, ub := range latencyBuckets {
			n := int64(0)
			if h.counts != nil {
				n = h.counts[i]
			}
			fmt.Fprintf(w, "synthd_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, n)
		}
		fmt.Fprintf(w, "synthd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.count)
		fmt.Fprintf(w, "synthd_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "synthd_request_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}
}

// sortedKeys returns the map's keys in sorted order, for a stable scrape.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
