package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/synth/serve"
	"repro/synth/trace"
)

// postCompile does a raw POST /v1/compile so the test can read response
// headers (the typed client hides them).
func postCompile(t *testing.T, base string, req serve.CompileRequest, hdr map[string]string) (*http.Response, serve.CompileResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	res, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compile: status %d: %s", res.StatusCode, raw)
	}
	var cr serve.CompileResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("decoding compile response: %v", err)
	}
	return res, cr
}

// TestTraceEndToEnd: with sampling at 1, one compile produces a root span
// tree reaching from the HTTP endpoint down to individual syntheses,
// retrievable from /debug/trace in both text and Chrome form, and the
// response carries the request/trace identity and the wait/service split.
func TestTraceEndToEnd(t *testing.T) {
	tracer := trace.New(trace.Config{SampleRatio: 1})
	s := serve.New(serve.Config{DefaultBackend: "gridsynth", Tracer: tracer})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	res, cr := postCompile(t, hs.URL, serve.CompileRequest{QASM: testQASM, Eps: 0.3}, nil)

	if res.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id header")
	}
	traceID := res.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Trace-Id header with sampling at 1")
	}
	if cr.Stats.TraceID != traceID {
		t.Fatalf("stats trace_id %q != X-Trace-Id %q", cr.Stats.TraceID, traceID)
	}
	if cr.Stats.ServiceMs <= 0 {
		t.Fatalf("service_ms = %v, want > 0", cr.Stats.ServiceMs)
	}
	if cr.Stats.QueueWaitMs < 0 {
		t.Fatalf("queue_wait_ms = %v, want >= 0", cr.Stats.QueueWaitMs)
	}

	id, ok := trace.ParseID(traceID)
	if !ok {
		t.Fatalf("unparsable trace id %q", traceID)
	}
	roots := tracer.Collect(id)
	if len(roots) != 1 {
		t.Fatalf("collected %d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Name() != "/v1/compile" {
		t.Fatalf("root span %q, want /v1/compile", root.Name())
	}
	if root.Attr("request_id") != res.Header.Get("X-Request-Id") {
		t.Fatalf("root request_id attr %q != header %q", root.Attr("request_id"), res.Header.Get("X-Request-Id"))
	}
	var sawWait, sawServe, sawPass, sawScan, sawSynth bool
	root.Walk(func(sp *trace.Span) {
		switch {
		case sp.Name() == "queue.wait":
			sawWait = true
		case sp.Name() == "serve":
			sawServe = true
		case strings.HasPrefix(sp.Name(), "pass:"):
			sawPass = true
		case sp.Name() == "scan":
			sawScan = true
		case sp.Name() == "synth":
			sawSynth = true
			if sp.Attr("backend") == "" || sp.Attr("eps") == "" {
				t.Errorf("synth span missing backend/eps attrs: %v", sp.Attrs())
			}
		}
	})
	if !sawWait || !sawServe || !sawPass || !sawScan || !sawSynth {
		t.Fatalf("span tree incomplete: wait=%v serve=%v pass=%v scan=%v synth=%v",
			sawWait, sawServe, sawPass, sawScan, sawSynth)
	}

	// The debug endpoint renders the same trace: text by default, valid
	// JSON with format=chrome, and an index without an id.
	get := func(path string) (int, string) {
		r, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r.StatusCode, string(b)
	}
	if code, body := get("/debug/trace?id=" + traceID); code != http.StatusOK || !strings.Contains(body, "pass:") {
		t.Fatalf("/debug/trace?id: status %d body %q", code, body)
	}
	if code, body := get("/debug/trace?id=" + traceID + "&format=chrome"); code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("/debug/trace chrome export: status %d, valid JSON = %v", code, json.Valid([]byte(body)))
	}
	if code, body := get("/debug/trace"); code != http.StatusOK || !strings.Contains(body, traceID) {
		t.Fatalf("/debug/trace index: status %d missing %s:\n%s", code, traceID, body)
	}
	if code, _ := get("/debug/trace?id=ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d, want 404", code)
	}
}

// TestTraceParentJoin: a request carrying a traceparent header joins the
// caller's trace — the daemon's root is kept under the propagated ID
// regardless of sampling, which is what stitches cluster hops together.
func TestTraceParentJoin(t *testing.T) {
	// SampleRatio 0: only the propagated header can produce a kept trace.
	tracer := trace.New(trace.Config{SampleRatio: 0})
	s := serve.New(serve.Config{DefaultBackend: "gridsynth", Tracer: tracer})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	const tid = "00000000000000000123456789abcdef"
	parent := "00-" + tid + "-00000000000000ab-01"
	res, cr := postCompile(t, hs.URL, serve.CompileRequest{QASM: testQASM, Eps: 0.3},
		map[string]string{trace.Header: parent})

	want := tid[16:] // low 64 bits, the wire trace id
	if got := res.Header.Get("X-Trace-Id"); got != want {
		t.Fatalf("X-Trace-Id %q, want propagated %q", got, want)
	}
	if cr.Stats.TraceID != want {
		t.Fatalf("stats trace_id %q, want %q", cr.Stats.TraceID, want)
	}
	id, _ := trace.ParseID(want)
	if roots := tracer.Collect(id); len(roots) != 1 {
		t.Fatalf("propagated trace kept %d fragments, want 1", len(roots))
	}
}

// TestTraceOff: without a Tracer the request still gets an ID, but no
// trace identity leaks into headers or stats, and /debug/trace is a 404.
func TestTraceOff(t *testing.T) {
	s := serve.New(serve.Config{DefaultBackend: "gridsynth"})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	res, cr := postCompile(t, hs.URL, serve.CompileRequest{QASM: testQASM, Eps: 0.3}, nil)
	if res.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id header with tracing off")
	}
	if got := res.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("X-Trace-Id %q with tracing off, want none", got)
	}
	if cr.Stats.TraceID != "" {
		t.Fatalf("stats trace_id %q with tracing off, want empty", cr.Stats.TraceID)
	}
	r, err := http.Get(hs.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace with tracing off: status %d, want 404", r.StatusCode)
	}
}
