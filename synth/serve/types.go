// Package serve is the synthesis service layer: an HTTP/JSON front end
// over one resident synth pipeline/compiler and one shared, sharded,
// snapshot-persistent synthesis cache — the daemon-shaped deployment the
// paper's amortization argument calls for. Every gridsynth/trasyn sequence
// is a pure function of (rotation, ε, config), so a long-lived cache turns
// the per-rotation synthesis cost into a one-time cost across all clients.
//
// Endpoints:
//
//	POST /v1/compile     QASM in → lowered Clifford+T QASM + stats out
//	POST /v1/synthesize  batch of rotations → gate sequences
//	GET  /healthz        liveness + build configuration
//	GET  /metrics        Prometheus text: cache, queue, latency histograms
//	GET  /v1/stats       fleet statistics (per-backend win/latency cells);
//	                     ?cluster=1 federates across the hash ring
//
// cmd/synthd wraps this package as a standalone daemon; serve/client is
// the Go client; cmd/compile -remote routes the CLI through a daemon.
package serve

import (
	"strings"
	"time"

	"repro/synth"
	"repro/synth/serve/cluster"
)

// CompileRequest asks the service to compile an OpenQASM 2.0 circuit down
// to Clifford+T. Zero-valued fields select the server's defaults, so the
// minimal request is just {"qasm": "..."}. The knobs mirror cmd/compile's
// flags one-for-one.
type CompileRequest struct {
	// QASM is the OpenQASM 2.0 source of the circuit. Required.
	QASM string `json:"qasm"`
	// Backend names a registered backend (empty = server default).
	Backend string `json:"backend,omitempty"`
	// Eps, when positive, is the circuit-level error budget split across
	// rotations; Budget picks the splitting strategy (uniform, weighted).
	Eps    float64 `json:"eps,omitempty"`
	Budget string  `json:"budget,omitempty"`
	// RotEps is the per-rotation epsilon used when Eps is zero (0 = backend
	// default).
	RotEps float64 `json:"rot_eps,omitempty"`
	// IR forces the lowering workflow: "auto", "u3", "rz".
	IR string `json:"ir,omitempty"`
	// Passes overrides the pass sequence by name (default: the full
	// transpile → fuse → snap → lower → estimate pipeline).
	Passes []string `json:"passes,omitempty"`
	// Samples/TBudget/Seed are the trasyn sampling knobs and base seed.
	Samples int    `json:"samples,omitempty"`
	TBudget int    `json:"tbudget,omitempty"`
	Seed    *int64 `json:"seed,omitempty"`
	// OptLevel sets the T-count optimizer level (synth.WithOptimize):
	// 0 off, 1 pre-lowering rotation folding, 2 also post-lowering
	// Clifford+T peephole. Optimizers, when set, selects the
	// post-lowering rule chain by optimize-registry name and implies
	// level 2.
	OptLevel   int      `json:"opt_level,omitempty"`
	Optimizers []string `json:"optimizers,omitempty"`
	// Fuse2Q prepends the two-qubit block-fusion pass (KAK re-synthesis
	// of pair-confined gate runs) to the canned sequence.
	Fuse2Q bool `json:"fuse_2q,omitempty"`
	// TimeoutMs bounds this compile inside the server's own request
	// timeout; the tighter of the two wins.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// CompileStats is the stats record of one compile — the same shape
// cmd/compile prints, so local and remote compiles are diffable.
type CompileStats struct {
	Backend     string  `json:"backend"`
	IRRotations int     `json:"ir_rotations"`
	Rotations   int     `json:"rotations"`
	Unique      int     `json:"unique"`
	Hits        int     `json:"cache_hits"`
	Misses      int     `json:"cache_misses"`
	TCount      int     `json:"t_count"`
	TDepth      int     `json:"t_depth"`
	Clifford    int     `json:"clifford"`
	ErrorBound  float64 `json:"error_bound"`
	CircuitEps  float64 `json:"circuit_eps,omitempty"`
	Budget      string  `json:"budget,omitempty"`
	// Optimizer accounting, present when an optimizer pass ran:
	// TCountBefore/TCountAfter bracket the post-lowering fixed-point run
	// (TSaved = the T gates it reclaimed); RotationsFolded counts the IR
	// rotations the pre-lowering pass removed before synthesis;
	// OptIterations is the driver's sweep count.
	TCountBefore    int `json:"t_count_before,omitempty"`
	TCountAfter     int `json:"t_count_after,omitempty"`
	TSaved          int `json:"t_saved,omitempty"`
	RotationsFolded int `json:"rotations_folded,omitempty"`
	OptIterations   int `json:"opt_iterations,omitempty"`
	// Block-fusion accounting, present when the fuse2q pass ran:
	// BlocksFused counts two-qubit runs replaced by their KAK re-synthesis
	// and BlockCXSaved the two-qubit gates that saved (in CX units).
	BlocksFused  int     `json:"blocks_fused,omitempty"`
	BlockCXSaved int     `json:"block_cx_saved,omitempty"`
	Passes       string  `json:"passes"`
	WallMs       float64 `json:"wall_ms"`
	// QueueWaitMs is how long the request waited for an execution slot;
	// ServiceMs is the execution time after admission. The server fills
	// both (WallMs is the pipeline's own measure and excludes decode).
	QueueWaitMs float64 `json:"queue_wait_ms"`
	ServiceMs   float64 `json:"service_ms"`
	// TraceID is the request's trace ID when it was sampled — fetch the
	// span tree from GET /debug/trace?id=<TraceID>.
	TraceID string `json:"trace_id,omitempty"`
}

// NewCompileStats assembles the stats record for one pipeline run — the
// single construction both the daemon and cmd/compile's local path use,
// so the two outputs cannot drift apart. circuitEps/strat echo the
// requested circuit-level budget (circuitEps <= 0 = per-rotation mode,
// omitted from the JSON).
func NewCompileStats(res *synth.PipelineResult, passes []string, circuitEps float64, strat synth.BudgetStrategy) CompileStats {
	st := CompileStats{
		Backend:     res.Backend,
		IRRotations: res.Stats.IRRotations,
		Rotations:   res.Stats.Rotations,
		Unique:      res.Stats.Unique,
		Hits:        res.Stats.Hits,
		Misses:      res.Stats.Misses,
		TCount:      res.Circuit.TCount(),
		TDepth:      res.Circuit.TDepth(),
		Clifford:    res.Circuit.CliffordCount(),
		ErrorBound:  res.Stats.ErrorBound,
		Passes:      strings.Join(passes, ","),
		WallMs:      float64(res.Wall) / float64(time.Millisecond),
	}
	if circuitEps > 0 {
		st.CircuitEps = circuitEps
		st.Budget = strat.String()
	}
	if opt := res.Stats.Opt; opt != nil {
		st.TCountBefore = opt.TCountBefore
		st.TCountAfter = opt.TCountAfter
		st.TSaved = opt.TSaved()
		st.RotationsFolded = opt.PreRotationsBefore - opt.PreRotationsAfter
		st.OptIterations = opt.Iterations
	}
	if fuse := res.Stats.Fuse; fuse != nil {
		st.BlocksFused = fuse.Blocks
		st.BlockCXSaved = fuse.CXSaved
	}
	return st
}

// CompileResponse is the lowered circuit plus its stats.
type CompileResponse struct {
	QASM  string       `json:"qasm"`
	Stats CompileStats `json:"stats"`
}

// Rotation is one single-qubit rotation to synthesize: gate "rx", "ry",
// "rz" (Params[0] = θ) or "u3" (θ, φ, λ).
type Rotation struct {
	Gate   string     `json:"gate"`
	Params [3]float64 `json:"params"`
}

// SynthesizeRequest asks for Clifford+T sequences for a batch of
// rotations. Repeated rotations inside the batch — and across every past
// request sharing the daemon's cache — cost one synthesis.
type SynthesizeRequest struct {
	// Rotations is the batch. Required, non-empty.
	Rotations []Rotation `json:"rotations"`
	// Backend names a registered backend (empty = server default).
	Backend string `json:"backend,omitempty"`
	// Eps is the per-rotation error threshold (0 = backend default).
	Eps float64 `json:"eps,omitempty"`
	// Samples/TBudget/Seed are the trasyn knobs and base seed.
	Samples int    `json:"samples,omitempty"`
	TBudget int    `json:"tbudget,omitempty"`
	Seed    *int64 `json:"seed,omitempty"`
	// TimeoutMs bounds the batch inside the server's request timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// SynthesizeResult is one synthesized rotation, in request order.
type SynthesizeResult struct {
	// Seq is the Clifford+T sequence as space-separated mnemonics in
	// matrix-product order (parse with internal gates.Parse or feed back
	// into QASM via the client).
	Seq string `json:"seq"`
	// Error is the realized unitary distance to the target.
	Error float64 `json:"error"`
	// TCount/Clifford are gate counts; Backend is the producing backend
	// (for "auto", the race winner).
	TCount   int    `json:"t_count"`
	Clifford int    `json:"clifford"`
	Backend  string `json:"backend"`
	// WallMs is the synthesis wall time; 0 means the sequence was served
	// from the shared cache.
	WallMs float64 `json:"wall_ms"`
	// Failure, when non-empty, marks a contained per-op failure (a
	// backend panic recovered at the worker boundary): Seq is empty and
	// the gate counts are zero, but the rest of the batch — and the
	// request — succeeded. Error (the realized distance) stays 0.
	Failure string `json:"failure,omitempty"`
}

// SynthesizeResponse carries the batch results plus the cache accounting
// for this request.
type SynthesizeResponse struct {
	Results []SynthesizeResult `json:"results"`
	Hits    int64              `json:"cache_hits"`
	Misses  int64              `json:"cache_misses"`
	// Failed counts results carrying a Failure — 0 on the happy path.
	Failed int `json:"failed,omitempty"`
	// QueueWaitMs/ServiceMs split the request's admission wait from its
	// execution time; TraceID is set when the request was sampled.
	QueueWaitMs float64 `json:"queue_wait_ms"`
	ServiceMs   float64 `json:"service_ms"`
	TraceID     string  `json:"trace_id,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status   string   `json:"status"`
	Backends []string `json:"backends"`
	// Default is the backend used when a request names none.
	Default string `json:"default_backend"`
	// CacheSize/CacheCap/CacheShards describe the resident cache.
	CacheSize   int   `json:"cache_size"`
	CacheCap    int   `json:"cache_cap"`
	CacheShards int   `json:"cache_shards"`
	UptimeMs    int64 `json:"uptime_ms"`
	// NodeID/ClusterSize are set in cluster mode: this node's ring ID and
	// the ring's member count (self included). Breakers is the per-peer
	// circuit-breaker state (closed / half-open / open), so one /healthz
	// poll shows which peers this node currently considers dead.
	NodeID      string                `json:"node_id,omitempty"`
	ClusterSize int                   `json:"cluster_size,omitempty"`
	Breakers    []cluster.PeerBreaker `json:"breakers,omitempty"`
}

// StatsCell is one (backend, ε-band, angle-class) row of GET /v1/stats:
// the counters plus the sketch quantiles rendered in milliseconds.
// Quantiles cover performed syntheses only (cache hits are counted, not
// timed) and carry the sketch's documented relative error bound.
type StatsCell struct {
	Backend string `json:"backend"`
	EpsBand string `json:"eps_band"`
	Class   string `json:"class"`
	// Count is every observation in the cell; CacheHits + Synthesized +
	// Errors always equals Count.
	Count       int64 `json:"count"`
	CacheHits   int64 `json:"cache_hits"`
	Synthesized int64 `json:"synthesized"`
	// Wins/Losses split performed syntheses by race outcome (a non-racing
	// backend's syntheses all count as wins); Errors counts failed racers.
	Wins   int64 `json:"wins"`
	Losses int64 `json:"losses"`
	Errors int64 `json:"errors"`
	// MeanT averages T counts over observations where it was known.
	MeanT float64 `json:"mean_t"`
	// P50Ms/P95Ms/P99Ms are synthesis wall-time quantiles (0 when the
	// cell has no performed synthesis).
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// NodeStats is one node's view in GET /v1/stats: service gauges plus the
// per-cell statistics table. In the federated response an unreachable
// peer appears with Error set and everything else zero.
type NodeStats struct {
	Node  string `json:"node"`
	Error string `json:"error,omitempty"`
	// UptimeMs is the node's uptime; CacheSize/CacheHits/CacheMisses and
	// HitRate describe its resident cache; Inflight/QueueDepth its
	// admission state at scrape time.
	UptimeMs    int64       `json:"uptime_ms,omitempty"`
	CacheSize   int         `json:"cache_size"`
	CacheHits   int64       `json:"cache_hits"`
	CacheMisses int64       `json:"cache_misses"`
	HitRate     float64     `json:"hit_rate"`
	Inflight    int         `json:"inflight"`
	QueueDepth  int         `json:"queue_depth"`
	Cells       []StatsCell `json:"cells"`
}

// StatsResponse is the GET /v1/stats body. Without ?cluster=1 (or on a
// non-clustered daemon) Fleet and the single Nodes entry are the same
// local view. With it, Nodes holds every ring member's own view and
// Fleet the lossless merge: each Fleet cell's counts equal the sum of
// that cell across Nodes, and its quantiles are computed from the merged
// sketches, not averaged.
type StatsResponse struct {
	Cluster bool        `json:"cluster"`
	Fleet   NodeStats   `json:"fleet"`
	Nodes   []NodeStats `json:"nodes"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
