// Shutdown fault tests against the real synthd binary: SIGTERM under
// load must drain every accepted request to a 200, and a failed
// snapshot flush must exit nonzero — promptly — so supervisors notice.
package serve_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/synth/serve"
	"repro/synth/serve/client"
)

func buildSynthd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "synthd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/synthd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building synthd: %v\n%s", err, out)
	}
	return bin
}

// syncBuffer is a bytes.Buffer safe for the exec stderr-copy goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSynthdDrainsInflightOnSigterm proves the graceful path under
// load: requests accepted before the signal all complete with real
// sequences — none are dropped mid-drain — and the process exits 0.
func TestSynthdDrainsInflightOnSigterm(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the synthd binary")
	}
	// Gridsynth alone finishes a batch in single-digit milliseconds —
	// too fast to still be running when the signal lands — so the fault
	// harness slows every 4th synthesis by 300ms. This also exercises
	// the -fault-spec flag through the real binary.
	// -workers/-max-inflight are pinned up so the sleeps overlap even on
	// a GOMAXPROCS=1 runner and the drain stays a couple of seconds.
	d := startDaemon(t, buildSynthd(t), "-backend", "gridsynth",
		"-fault-spec", "backend:gridsynth latency=200ms every=8",
		"-workers", "8", "-max-inflight", "8")
	cl := client.New(d.base)
	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	resps := make([]*serve.SynthesizeResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rots := make([]serve.Rotation, 24)
			for j := range rots {
				rots[j] = serve.Rotation{Gate: "rz", Params: [3]float64{0.11 + 0.013*float64(i) + 0.0007*float64(j)}}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			resps[i], errs[i] = cl.Synthesize(ctx, serve.SynthesizeRequest{
				Backend: "gridsynth", Eps: 1e-3, Rotations: rots,
			})
		}(i)
	}

	// Give the requests time to be accepted, then pull the plug. stop()
	// itself asserts a clean (zero) exit within the drain budget.
	time.Sleep(100 * time.Millisecond)
	d.stop(t)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d dropped during drain: %v", i, errs[i])
		}
		if len(resps[i].Results) != 24 || resps[i].Failed != 0 {
			t.Fatalf("request %d: %d results, %d failed; want 24 clean", i, len(resps[i].Results), resps[i].Failed)
		}
		for _, r := range resps[i].Results {
			if r.Seq == "" {
				t.Fatalf("request %d returned an empty sequence", i)
			}
		}
	}
}

// TestSynthdExitsNonzeroOnFlushFailure points -snapshot at a path that
// cannot be written (an existing directory — immune to running as
// root, unlike permission bits) and proves the failed flush is loud:
// logged, exit code nonzero, and no hang — the drain and stats flush
// still run.
func TestSynthdExitsNonzeroOnFlushFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the synthd binary")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "cache.json")
	if err := os.Mkdir(snap, 0o755); err != nil {
		t.Fatal(err)
	}

	var stderr syncBuffer
	d := startDaemonStderr(t, buildSynthd(t), &stderr, "-backend", "gridsynth", "-snapshot", snap)
	cl := client.New(d.base)

	// One real synthesis so there is cache state worth flushing.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := cl.Synthesize(ctx, serve.SynthesizeRequest{
		Backend: "gridsynth", Eps: 1e-2,
		Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{0.42}}},
	}); err != nil {
		t.Fatalf("synthesize: %v", err)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 1 {
			t.Fatalf("exit after failed flush = %v, want exit code 1", err)
		}
	case <-time.After(60 * time.Second):
		d.kill()
		t.Fatal("synthd hung after failed snapshot flush")
	}
	logs := stderr.String()
	if !strings.Contains(logs, "flushing snapshot failed") {
		t.Fatalf("stderr missing snapshot-failure log:\n%s", logs)
	}
	// The stats sidecar is a sibling file, so its flush still succeeds —
	// proof that one failed flush does not abort the rest of shutdown.
	if !strings.Contains(logs, "stats sidecar flushed") {
		t.Fatalf("stats sidecar flush did not run after snapshot failure:\n%s", logs)
	}
}
