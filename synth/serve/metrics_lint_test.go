package serve_test

import (
	"context"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/synth/serve"
)

var (
	seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$`)
)

// promSeries is one parsed exposition line.
type promSeries struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// parseExposition parses the Prometheus text format strictly enough to
// catch the ways a hand-rolled exporter goes wrong: malformed lines,
// unparsable values, series without TYPE metadata, duplicate series.
func parseExposition(t *testing.T, text string) ([]promSeries, map[string]string) {
	t.Helper()
	var series []promSeries
	types := map[string]string{} // family -> counter|gauge|histogram
	seen := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			if f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		m := seriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed series line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		labels := map[string]string{}
		if m[2] != "" {
			for _, pair := range strings.Split(m[2], ",") {
				if !labelRe.MatchString(pair) {
					t.Fatalf("malformed label %q in %q", pair, line)
				}
				k, val, _ := strings.Cut(pair, "=")
				labels[k] = val[1 : len(val)-1]
			}
		}
		key := m[1] + "{" + m[2] + "}"
		if seen[key] {
			t.Fatalf("duplicate series %q", key)
		}
		seen[key] = true
		series = append(series, promSeries{name: m[1], labels: labels, value: v, line: line})
	}
	return series, types
}

// family strips the histogram suffix so _bucket/_sum/_count map to their
// TYPE line.
func family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// labelsetKey canonicalizes a labelset minus "le" — the identity of one
// histogram series.
func labelsetKey(labels map[string]string) string {
	ks := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	var b strings.Builder
	for _, k := range ks {
		b.WriteString(k + "=" + labels[k] + ",")
	}
	return b.String()
}

// TestMetricsWellFormed scrapes /metrics after mixed traffic and lints
// the whole exposition: every series parses and has TYPE metadata, every
// histogram has monotone cumulative buckets ending in +Inf, and +Inf
// agrees with _count. This is the scrape a real Prometheus would ingest,
// so a formatting regression in any exporter path fails here.
func TestMetricsWellFormed(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{DefaultBackend: "gridsynth"})
	ctx := context.Background()
	if _, err := cl.Compile(ctx, serve.CompileRequest{QASM: testQASM, Eps: 0.3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Compile(ctx, serve.CompileRequest{QASM: testQASM, Eps: 0.3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Synthesize(ctx, serve.SynthesizeRequest{
		Backend:   "gridsynth",
		Eps:       1e-3,
		Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{0.41}}},
	}); err != nil {
		t.Fatal(err)
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	series, types := parseExposition(t, text)

	// Every series belongs to a declared family of a known type.
	for _, s := range series {
		typ, ok := types[family(s.name)]
		if !ok {
			t.Fatalf("series %q has no # TYPE line", s.name)
		}
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			t.Fatalf("family %q has unknown type %q", family(s.name), typ)
		}
		if typ != "histogram" && (strings.HasSuffix(s.name, "_bucket") || s.labels["le"] != "") {
			t.Fatalf("non-histogram series %q carries histogram shape", s.line)
		}
	}

	// Histogram invariants, per labelset: cumulative bucket counts are
	// non-decreasing in le, +Inf is present and equals _count, and _sum
	// exists.
	type hist struct {
		les    []float64
		counts map[float64]float64
		inf    float64
		hasInf bool
		count  float64
		hasCnt bool
		hasSum bool
	}
	hists := map[string]map[string]*hist{} // family -> labelset -> data
	get := func(fam, ls string) *hist {
		if hists[fam] == nil {
			hists[fam] = map[string]*hist{}
		}
		h := hists[fam][ls]
		if h == nil {
			h = &hist{counts: map[float64]float64{}}
			hists[fam][ls] = h
		}
		return h
	}
	for _, s := range series {
		fam := family(s.name)
		if types[fam] != "histogram" {
			continue
		}
		h := get(fam, labelsetKey(s.labels))
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := s.labels["le"]
			if le == "" {
				t.Fatalf("bucket series without le: %q", s.line)
			}
			if le == "+Inf" {
				h.inf, h.hasInf = s.value, true
				break
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("unparsable le in %q: %v", s.line, err)
			}
			h.les = append(h.les, ub)
			h.counts[ub] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			h.hasSum = true
		case strings.HasSuffix(s.name, "_count"):
			h.count, h.hasCnt = s.value, true
		}
	}
	for fam, byLS := range hists {
		for ls, h := range byLS {
			if !h.hasInf || !h.hasCnt || !h.hasSum {
				t.Fatalf("%s{%s}: incomplete histogram (inf=%v count=%v sum=%v)",
					fam, ls, h.hasInf, h.hasCnt, h.hasSum)
			}
			if h.inf != h.count {
				t.Fatalf("%s{%s}: +Inf bucket %g != _count %g", fam, ls, h.inf, h.count)
			}
			sort.Float64s(h.les)
			prev := math.Inf(-1)
			last := 0.0
			for _, ub := range h.les {
				if ub <= prev {
					t.Fatalf("%s{%s}: bucket bounds not strictly increasing at %g", fam, ls, ub)
				}
				prev = ub
				if c := h.counts[ub]; c < last {
					t.Fatalf("%s{%s}: cumulative counts decrease at le=%g (%g < %g)", fam, ls, ub, c, last)
				} else {
					last = c
				}
			}
			if h.inf < last {
				t.Fatalf("%s{%s}: +Inf bucket %g below last finite bucket %g", fam, ls, h.inf, last)
			}
		}
	}

	// The families this PR added are present with their labels: the
	// queue-wait split, per-synthesis times by backend and epsilon decade,
	// and per-pass times.
	if len(hists["synthd_queue_wait_seconds"]) == 0 {
		t.Fatal("synthd_queue_wait_seconds missing")
	}
	foundSynth := false
	for ls := range hists["synthd_synth_seconds"] {
		if strings.Contains(ls, "backend=gridsynth") && strings.Contains(ls, "eps_band=") {
			foundSynth = true
		}
	}
	if !foundSynth {
		t.Fatalf("synthd_synth_seconds missing backend/eps_band series: %v", hists["synthd_synth_seconds"])
	}
	foundPass := false
	for ls := range hists["synthd_pass_seconds"] {
		if strings.Contains(ls, "pass=lower") {
			foundPass = true
		}
	}
	if !foundPass {
		t.Fatalf("synthd_pass_seconds missing pass=lower series: %v", hists["synthd_pass_seconds"])
	}
	// Three admitted requests → three queue-wait observations.
	for _, h := range hists["synthd_queue_wait_seconds"] {
		if h.count < 3 {
			t.Fatalf("synthd_queue_wait_seconds count %g, want >= 3", h.count)
		}
	}

	// The fleet-statistics families: per-cell observation counters with
	// the full (backend, eps_band, class) key, cache-hit counters (the
	// warm recompile guarantees at least one), and the sketch quantile
	// gauges for every cell with synthesis wall times.
	var obsCount, obsHits bool
	quantiles := map[string]bool{}
	for _, s := range series {
		full := s.labels["backend"] == "gridsynth" && s.labels["eps_band"] != "" && s.labels["class"] != ""
		switch family(s.name) {
		case "synthd_obs_observations_total":
			if full && s.value > 0 {
				obsCount = true
			}
		case "synthd_obs_cache_hits_total":
			if full && s.value > 0 {
				obsHits = true
			}
		case "synthd_obs_wall_quantile_seconds":
			if full && s.value > 0 {
				quantiles[s.labels["q"]] = true
			}
		}
	}
	if !obsCount {
		t.Fatal("synthd_obs_observations_total missing full-key series")
	}
	if !obsHits {
		t.Fatal("synthd_obs_cache_hits_total missing despite warm recompile")
	}
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		if !quantiles[q] {
			t.Fatalf("synthd_obs_wall_quantile_seconds missing q=%s (got %v)", q, quantiles)
		}
	}
}
