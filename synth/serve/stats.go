package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/synth"
	"repro/synth/obs"
)

// statsPayload is the node-statistics wire form: the GET /v1/peer/stats
// body, and the builder of a public NodeStats. It carries the raw obs
// snapshot rather than rendered cells so the federating node can merge
// sketches losslessly before computing quantiles.
type statsPayload struct {
	Node        string        `json:"node"`
	UptimeMs    int64         `json:"uptime_ms"`
	CacheSize   int           `json:"cache_size"`
	CacheHits   int64         `json:"cache_hits"`
	CacheMisses int64         `json:"cache_misses"`
	Inflight    int           `json:"inflight"`
	QueueDepth  int           `json:"queue_depth"`
	Obs         *obs.Snapshot `json:"obs"`
}

// observe routes one synthesis observation to both sinks: the fleet
// statistics table sees everything (winners, losers, failures, cache
// hits); the synthd_synth_seconds histogram keeps its meaning — wall
// time of performed syntheses — so hits (no wall time) and failures (no
// result) stay out of it.
func (s *Server) observe(o synth.SynthObservation) {
	s.obs.Observe(o)
	if !o.CacheHit && !o.Failed {
		s.metrics.observeSynth(o.Backend, epsBand(o.Epsilon), o.Wall)
	}
}

// localStats snapshots this node's service gauges and statistics table.
func (s *Server) localStats() statsPayload {
	st := s.cache.Stats()
	inflight := len(s.sem)
	queued := int(s.pending.Load()) - inflight
	if queued < 0 {
		queued = 0
	}
	return statsPayload{
		Node:        s.nodeName(),
		UptimeMs:    time.Since(s.start).Milliseconds(),
		CacheSize:   st.Size,
		CacheHits:   st.Hits,
		CacheMisses: st.Misses,
		Inflight:    inflight,
		QueueDepth:  queued,
		Obs:         s.obs.Snapshot(),
	}
}

// nodeView renders a wire payload as the public per-node entry.
func nodeView(p statsPayload) NodeStats {
	n := NodeStats{
		Node:        p.Node,
		UptimeMs:    p.UptimeMs,
		CacheSize:   p.CacheSize,
		CacheHits:   p.CacheHits,
		CacheMisses: p.CacheMisses,
		Inflight:    p.Inflight,
		QueueDepth:  p.QueueDepth,
		Cells:       renderCells(p.Obs),
	}
	if total := p.CacheHits + p.CacheMisses; total > 0 {
		n.HitRate = float64(p.CacheHits) / float64(total)
	}
	return n
}

// renderCells converts a snapshot into response rows, quantiles in ms.
func renderCells(sn *obs.Snapshot) []StatsCell {
	if sn == nil {
		return nil
	}
	cells := make([]StatsCell, 0, len(sn.Cells))
	for i := range sn.Cells {
		c := &sn.Cells[i]
		cells = append(cells, StatsCell{
			Backend:     c.Backend,
			EpsBand:     c.EpsBand,
			Class:       c.Class,
			Count:       c.Count,
			CacheHits:   c.Hits,
			Synthesized: c.Synthesized,
			Wins:        c.Wins,
			Losses:      c.Losses,
			Errors:      c.Errors,
			MeanT:       c.MeanT(),
			P50Ms:       ms(c.Wall.Quantile(0.50)),
			P95Ms:       ms(c.Wall.Quantile(0.95)),
			P99Ms:       ms(c.Wall.Quantile(0.99)),
		})
	}
	return cells
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// handleStats serves GET /v1/stats. The local view is free; with
// ?cluster=1 on a clustered node it fans out to every ring peer,
// reports each node's own view, and merges the obs snapshots into the
// fleet view — per-cell counts in Fleet equal the sum across Nodes, and
// quantiles come from the merged sketches. An unreachable or corrupt
// peer degrades to an Error entry; the fleet view then covers the nodes
// that answered.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	local := s.localStats()
	q := r.URL.Query().Get("cluster")
	wantCluster := q != "" && q != "0"
	node := s.cfg.Cluster
	if !wantCluster || node == nil {
		view := nodeView(local)
		writeJSON(w, http.StatusOK, StatsResponse{
			Fleet: fleetView(local.Obs, []NodeStats{view}),
			Nodes: []NodeStats{view},
		})
		return
	}

	nodes := []NodeStats{nodeView(local)}
	snaps := []*obs.Snapshot{local.Obs}
	peers := node.PeerStats(r.Context())
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ps := peers[id]
		if ps.Err != nil {
			nodes = append(nodes, NodeStats{Node: id, Error: ps.Err.Error()})
			continue
		}
		var p statsPayload
		if err := json.Unmarshal(ps.Raw, &p); err != nil {
			nodes = append(nodes, NodeStats{Node: id, Error: fmt.Sprintf("decoding stats: %v", err)})
			continue
		}
		if p.Obs != nil {
			if err := p.Obs.Validate(); err != nil {
				nodes = append(nodes, NodeStats{Node: id, Error: err.Error()})
				continue
			}
			snaps = append(snaps, p.Obs)
		}
		if p.Node == "" {
			p.Node = id
		}
		nodes = append(nodes, nodeView(p))
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Cluster: true,
		Fleet:   fleetView(obs.Merge(snaps...), nodes),
		Nodes:   nodes,
	})
}

// fleetView assembles the merged entry: cells from the merged snapshot,
// service gauges summed over the answering nodes.
func fleetView(merged *obs.Snapshot, nodes []NodeStats) NodeStats {
	f := NodeStats{Node: "fleet", Cells: renderCells(merged)}
	for _, n := range nodes {
		if n.Error != "" {
			continue
		}
		f.CacheSize += n.CacheSize
		f.CacheHits += n.CacheHits
		f.CacheMisses += n.CacheMisses
		f.Inflight += n.Inflight
		f.QueueDepth += n.QueueDepth
	}
	if total := f.CacheHits + f.CacheMisses; total > 0 {
		f.HitRate = float64(f.CacheHits) / float64(total)
	}
	return f
}

// writeObsMetrics appends the fleet-statistics series to a /metrics
// scrape: per-cell observation and cache-hit counts, race outcomes, and
// the sketch quantiles as labeled gauges (a gauge with a q label rather
// than a summary type, which the hand-rolled exposition does not speak).
// Cells come pre-sorted from Snapshot, so scrapes are stable.
func (s *Server) writeObsMetrics(w io.Writer) {
	sn := s.obs.Snapshot()
	if len(sn.Cells) == 0 && sn.Dropped == 0 {
		return
	}
	labels := func(c *obs.CellSnapshot) string {
		return fmt.Sprintf("backend=%q,eps_band=%q,class=%q", c.Backend, c.EpsBand, c.Class)
	}

	fmt.Fprintf(w, "# HELP synthd_obs_observations_total Synthesis observations by backend, epsilon decade and angle class.\n")
	fmt.Fprintf(w, "# TYPE synthd_obs_observations_total counter\n")
	for i := range sn.Cells {
		c := &sn.Cells[i]
		fmt.Fprintf(w, "synthd_obs_observations_total{%s} %d\n", labels(c), c.Count)
	}

	fmt.Fprintf(w, "# HELP synthd_obs_cache_hits_total Observations served from cache, by cell.\n")
	fmt.Fprintf(w, "# TYPE synthd_obs_cache_hits_total counter\n")
	for i := range sn.Cells {
		c := &sn.Cells[i]
		fmt.Fprintf(w, "synthd_obs_cache_hits_total{%s} %d\n", labels(c), c.Hits)
	}

	fmt.Fprintf(w, "# HELP synthd_obs_race_total Race outcomes by cell (win includes non-racing syntheses).\n")
	fmt.Fprintf(w, "# TYPE synthd_obs_race_total counter\n")
	for i := range sn.Cells {
		c := &sn.Cells[i]
		for _, oc := range []struct {
			outcome string
			n       int64
		}{{"win", c.Wins}, {"loss", c.Losses}, {"error", c.Errors}} {
			if oc.n > 0 {
				fmt.Fprintf(w, "synthd_obs_race_total{%s,outcome=%q} %d\n", labels(c), oc.outcome, oc.n)
			}
		}
	}

	fmt.Fprintf(w, "# HELP synthd_obs_wall_quantile_seconds Sketch wall-time quantiles of performed syntheses, by cell (relative error <= 4.4%%).\n")
	fmt.Fprintf(w, "# TYPE synthd_obs_wall_quantile_seconds gauge\n")
	for i := range sn.Cells {
		c := &sn.Cells[i]
		if c.Wall.N == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
			fmt.Fprintf(w, "synthd_obs_wall_quantile_seconds{%s,q=%q} %g\n",
				labels(c), q.label, c.Wall.Quantile(q.v).Seconds())
		}
	}

	if sn.Dropped > 0 {
		fmt.Fprintf(w, "# HELP synthd_obs_dropped_total Observations dropped by the cell-table cap.\n")
		fmt.Fprintf(w, "# TYPE synthd_obs_dropped_total counter\n")
		fmt.Fprintf(w, "synthd_obs_dropped_total %d\n", sn.Dropped)
	}
}
