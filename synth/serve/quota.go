package serve

import (
	"math"
	"sync"
	"time"
)

// tenantLimiter is the per-tenant token-bucket layer on top of the
// global inflight/queue admission control: capacity protects the node,
// quotas keep one tenant from starving the rest of it. Tenants are
// identified by the X-Tenant request header (the empty header is its own
// "anonymous" tenant, so unlabeled traffic is bounded too). Each tenant
// gets an independent bucket of Burst tokens refilled at RPS per second;
// a request with no token is refused with 429 and a Retry-After naming
// when the next token lands.
type tenantLimiter struct {
	rps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens    float64
	last      time.Time
	throttled int64
}

// newTenantLimiter builds a limiter; burst <= 0 defaults to
// max(1, ceil(rps)) — at least one request always fits a fresh bucket.
func newTenantLimiter(rps float64, burst int) *tenantLimiter {
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, math.Ceil(rps))
	}
	return &tenantLimiter{rps: rps, burst: b, buckets: map[string]*tokenBucket{}}
}

// allow consumes one token from tenant's bucket. When the bucket is
// empty it returns false plus the wait until a full token has refilled —
// the Retry-After the 429 advertises.
func (l *tenantLimiter) allow(tenant string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	b.throttled++
	return false, time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
}

// throttledByTenant snapshots the per-tenant throttle counters (the
// synthd_tenant_throttled_total series).
func (l *tenantLimiter) throttledByTenant() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.buckets))
	for t, b := range l.buckets {
		if b.throttled > 0 {
			out[t] = b.throttled
		}
	}
	return out
}
