package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Default breaker tuning. The threshold is deliberately small: with a
// 250ms lookup timeout, five consecutive timeouts against a dead peer
// cost 1.25s of added latency spread over five requests before the
// breaker opens and every later miss falls through to local synthesis
// in microseconds.
const (
	DefaultBreakerThreshold   = 5
	DefaultBreakerCooldown    = 1 * time.Second
	DefaultBreakerMaxCooldown = 30 * time.Second
)

// BreakerConfig tunes the per-peer circuit breakers.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens a peer's
	// breaker. 0 selects DefaultBreakerThreshold; negative disables
	// breakers entirely (every call goes to the wire).
	Threshold int
	// Cooldown is the open interval before the first half-open probe;
	// it doubles on every consecutive re-open up to MaxCooldown, with
	// ±25% jitter so a fleet does not probe a recovering peer in
	// lockstep. Zero selects the defaults.
	Cooldown    time.Duration
	MaxCooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = DefaultBreakerMaxCooldown
	}
	if c.MaxCooldown < c.Cooldown {
		c.MaxCooldown = c.Cooldown
	}
	return c
}

// breakerState is the classic three-state machine: closed (traffic
// flows, failures counted) → open (traffic skipped until a cooldown
// expires) → half-open (exactly one probe in flight decides).
type breakerState int

const (
	stateClosed breakerState = iota
	stateHalfOpen
	stateOpen
)

func (s breakerState) String() string {
	switch s {
	case stateHalfOpen:
		return "half-open"
	case stateOpen:
		return "open"
	default:
		return "closed"
	}
}

// PeerBreaker is one peer's breaker snapshot, as exposed on /healthz.
type PeerBreaker struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
	// ConsecutiveFailures is the current failure streak (resets on any
	// success); Trips counts closed/half-open → open transitions since
	// start.
	ConsecutiveFailures int   `json:"consecutive_failures"`
	Trips               int64 `json:"trips"`
	// RetryInMs, for an open breaker, is the time until the next
	// half-open probe is admitted.
	RetryInMs int64 `json:"retry_in_ms,omitempty"`
}

// breaker guards one peer. All methods are cheap (a mutex and a few
// fields) next to the network call they gate.
type breaker struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	peer  string
	state breakerState
	fails int   // consecutive failures
	trips int64 // lifetime → open transitions
	// cooldown is the open interval the NEXT trip will use; it doubles
	// per consecutive re-open and resets on a confirmed recovery.
	cooldown time.Duration
	probeAt  time.Time
	probing  bool
	rng      *rand.Rand
	// onChange observes every state transition (under mu: keep it to
	// counters and logging).
	onChange func(peer string, from, to breakerState)
}

func newBreaker(peer string, cfg BreakerConfig, onChange func(peer string, from, to breakerState)) *breaker {
	return &breaker{
		peer:     peer,
		cfg:      cfg,
		cooldown: cfg.Cooldown,
		rng:      rand.New(rand.NewSource(int64(hashID(peer)) | 1)),
		onChange: onChange,
	}
}

// Allow reports whether a call to this peer may go to the wire now.
// An open breaker whose cooldown has expired admits exactly one
// half-open probe; further calls are skipped until that probe settles
// via Success or Failure.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Before(b.probeAt) {
			return false
		}
		b.transition(stateHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful call: any state collapses back to
// closed and the backoff resets.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.cooldown = b.cfg.Cooldown
	if b.state != stateClosed {
		b.transition(stateClosed)
	}
}

// Failure records a failed call. A failed half-open probe re-opens
// immediately with a doubled cooldown; in the closed state the breaker
// opens once the consecutive-failure streak reaches the threshold.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch b.state {
	case stateHalfOpen:
		b.probing = false
		b.trip(now, true)
	case stateClosed:
		if b.fails >= b.cfg.Threshold {
			b.trip(now, false)
		}
	}
	// Already open: a straggler from before the trip; the streak was
	// counted, nothing else to do.
}

// trip opens the breaker. redouble marks a failed recovery probe, which
// escalates the backoff.
func (b *breaker) trip(now time.Time, redouble bool) {
	cd := b.cooldown
	if redouble {
		if cd *= 2; cd > b.cfg.MaxCooldown {
			cd = b.cfg.MaxCooldown
		}
		b.cooldown = cd
	}
	// ±25% jitter: a fleet that lost the same peer at the same moment
	// must not re-probe it in lockstep.
	jittered := time.Duration(float64(cd) * (0.75 + 0.5*b.rng.Float64()))
	b.probeAt = now.Add(jittered)
	b.trips++
	b.transition(stateOpen)
}

// transition must be called with mu held.
func (b *breaker) transition(to breakerState) {
	from := b.state
	b.state = to
	if b.onChange != nil && from != to {
		b.onChange(b.peer, from, to)
	}
}

// snapshot renders the breaker for /healthz and /metrics.
func (b *breaker) snapshot(now time.Time) PeerBreaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	pb := PeerBreaker{
		Peer:                b.peer,
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Trips:               b.trips,
	}
	if b.state == stateOpen {
		if d := b.probeAt.Sub(now); d > 0 {
			pb.RetryInMs = d.Milliseconds()
		}
	}
	return pb
}

// hashID is FNV-1a over a peer ID — a stable jitter seed.
func hashID(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
