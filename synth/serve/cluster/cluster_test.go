// In-process cluster end-to-end tests: N serve.Servers behind
// httptest.Servers, wired into one static peer list. External test
// package because serve imports cluster.
package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/qmat"
	"repro/synth"
	"repro/synth/serve"
	"repro/synth/serve/client"
	"repro/synth/serve/cluster"
)

// lateHandler lets an httptest.Server exist (so its URL can go into every
// node's peer list) before the serve.Server behind it is built. Until the
// real handler is installed the node answers 503 — exactly what a
// configured-but-not-yet-started cluster member looks like.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "node not started", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testNode struct {
	id   string
	hs   *httptest.Server
	late *lateHandler
	node *cluster.Node
	srv  *serve.Server
	cl   *client.Client
}

type testCluster struct {
	t     *testing.T
	ids   []string
	urls  map[string]string
	nodes map[string]*testNode
}

// newTestCluster allocates listeners (and thus peer URLs) for every ID.
// No node is serving yet; start() brings members up one at a time.
func newTestCluster(t *testing.T, ids ...string) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, ids: ids, urls: map[string]string{}, nodes: map[string]*testNode{}}
	for _, id := range ids {
		lh := &lateHandler{}
		hs := httptest.NewServer(lh)
		t.Cleanup(hs.Close)
		tc.urls[id] = hs.URL
		tc.nodes[id] = &testNode{id: id, hs: hs, late: lh}
	}
	return tc
}

// start builds id's cluster node and serve.Server (full static peer list)
// and installs the real handler behind its listener.
func (tc *testCluster) start(id, backend string) *testNode {
	tc.t.Helper()
	return tc.startWith(id, cluster.Config{
		// Generous for loaded CI runners; the lookups are loopback.
		LookupTimeout: 2 * time.Second,
	}, serve.Config{DefaultBackend: backend})
}

// startWith is start with explicit cluster/serve configs (chaos tests
// tune breakers and inject faults); SelfID, Peers and the Cluster
// wiring are filled here.
func (tc *testCluster) startWith(id string, ccfg cluster.Config, scfg serve.Config) *testNode {
	tc.t.Helper()
	tn := tc.nodes[id]
	ccfg.SelfID = id
	ccfg.Peers = tc.urls
	node, err := cluster.New(ccfg)
	if err != nil {
		tc.t.Fatalf("cluster.New(%s): %v", id, err)
	}
	scfg.Cluster = node
	srv := serve.New(scfg)
	tn.node, tn.srv = node, srv
	tn.cl = client.New(tn.hs.URL)
	tn.late.set(srv.Handler())
	return tn
}

// flush waits for every started node's async owner pushes to land.
func (tc *testCluster) flush() {
	for _, tn := range tc.nodes {
		if tn.node != nil {
			tn.node.Flush()
		}
	}
}

func (tc *testCluster) synthesize(id, backend string, theta float64) (*serve.SynthesizeResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return tc.nodes[id].cl.Synthesize(ctx, serve.SynthesizeRequest{
		Backend:   backend,
		Eps:       1e-2,
		Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{theta}}},
	})
}

// countingBackend wraps gridsynth but reports Name() "gridsynth", so its
// cache keys share the gridsynth scope across every node while the test
// counts exactly how many syntheses actually ran cluster-wide.
type countingBackend struct {
	inner synth.Backend
	calls atomic.Int64
}

func (b *countingBackend) Name() string { return "gridsynth" }

func (b *countingBackend) Synthesize(ctx context.Context, target qmat.M2, req synth.Request) (synth.Result, error) {
	b.calls.Add(1)
	return b.inner.Synthesize(ctx, target, req)
}

func registerCounting(t *testing.T, regName string) *countingBackend {
	t.Helper()
	inner, ok := synth.Lookup("gridsynth")
	if !ok {
		t.Fatal("gridsynth backend not registered")
	}
	b := &countingBackend{inner: inner}
	if err := synth.Register(regName, b); err != nil {
		t.Fatalf("registering %s: %v", regName, err)
	}
	return b
}

// TestClusterEndToEnd is the 3-node acceptance path: a cold wave
// synthesizes each angle exactly once cluster-wide, a second wave routed
// to different nodes is served entirely by peer lookups and owner pushes
// (zero re-synthesis), and killing a node mid-run degrades that node's
// partition to local synthesis without taking the cluster down.
func TestClusterEndToEnd(t *testing.T) {
	be := registerCounting(t, "count-e2e")
	ids := []string{"a", "b", "c"}
	tc := newTestCluster(t, ids...)
	for _, id := range ids {
		tc.start(id, "count-e2e")
	}

	angles := make([]float64, 12)
	for i := range angles {
		angles[i] = 0.3 + 0.05*float64(i)
	}

	// Wave 1: all caches cold; every request round-robins and misses.
	for i, th := range angles {
		resp, err := tc.synthesize(ids[i%3], "count-e2e", th)
		if err != nil {
			t.Fatalf("wave 1 angle %d: %v", i, err)
		}
		if resp.Hits != 0 || resp.Misses != 1 {
			t.Fatalf("wave 1 angle %d: hits=%d misses=%d, want a cold miss", i, resp.Hits, resp.Misses)
		}
	}
	if got := be.calls.Load(); got != int64(len(angles)) {
		t.Fatalf("wave 1 ran %d syntheses, want %d (one per distinct angle)", got, len(angles))
	}
	tc.flush() // owner pushes land before wave 2

	// Wave 2: same angles, every request deliberately sent to a different
	// node than wave 1. Each must be a cache hit — either the serving node
	// owns the key (it got the push) or the single-hop peer lookup finds
	// it at the owner. No angle is synthesized twice.
	for i, th := range angles {
		id := ids[(i+1)%3]
		resp, err := tc.synthesize(id, "count-e2e", th)
		if err != nil {
			t.Fatalf("wave 2 angle %d via %s: %v", i, id, err)
		}
		if resp.Hits != 1 || resp.Misses != 0 {
			t.Fatalf("wave 2 angle %d via %s: hits=%d misses=%d, want a cluster-wide hit",
				i, id, resp.Hits, resp.Misses)
		}
	}
	if got := be.calls.Load(); got != int64(len(angles)) {
		t.Fatalf("wave 2 re-synthesized: %d total calls, want still %d", got, len(angles))
	}
	var peerHits int64
	owned := 0
	for _, id := range ids {
		peerHits += tc.nodes[id].node.Stats().PeerHits
		owned += tc.nodes[id].node.KeysOwned()
	}
	if peerHits == 0 {
		t.Fatal("wave 2 produced no peer hits: requests were not served cross-node")
	}
	// Exactly one node owns each key, and the owner holds it (local
	// synthesis or push), so ownership sums to the distinct-key count.
	if owned != len(angles) {
		t.Fatalf("ring owns %d keys cluster-wide, want %d", owned, len(angles))
	}

	metrics, err := tc.nodes["a"].cl.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`synthd_peer_lookups_total{result="hit"}`,
		"synthd_ring_keys_owned",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Kill b mid-run. Fresh angles keyed to b's partition now fail their
	// peer lookup and fall back to local synthesis; the cluster keeps
	// answering.
	tc.nodes["b"].hs.Close()
	fresh := make([]float64, 24)
	for i := range fresh {
		fresh[i] = 1.3 + 0.031*float64(i)
	}
	live := []string{"a", "c"}
	for i, th := range fresh {
		resp, err := tc.synthesize(live[i%2], "count-e2e", th)
		if err != nil {
			t.Fatalf("with b dead, request %d to %s failed: %v", i, live[i%2], err)
		}
		if len(resp.Results) != 1 || resp.Results[0].Seq == "" {
			t.Fatalf("with b dead, request %d returned no sequence", i)
		}
	}
	if errs := tc.nodes["a"].node.Stats().PeerErrors + tc.nodes["c"].node.Stats().PeerErrors; errs == 0 {
		t.Fatal("no peer lookup errors recorded: dead node was never consulted (24 fresh keys)")
	}
	// The survivors still serve their own hot sets from local cache.
	for i, th := range fresh {
		resp, err := tc.synthesize(live[i%2], "count-e2e", th)
		if err != nil {
			t.Fatalf("re-request %d to %s failed: %v", i, live[i%2], err)
		}
		if resp.Hits != 1 {
			t.Fatalf("re-request %d to %s: hits=%d, want local hit", i, live[i%2], resp.Hits)
		}
	}
	tc.flush()
}

// TestClusterWarmSeeding is the join path: a node configured into a
// 2-live-node cluster streams its ring successor's snapshot at start and
// then answers a previously-hot key with a pure cache hit — no local
// synthesis, no peer lookup.
func TestClusterWarmSeeding(t *testing.T) {
	be := registerCounting(t, "count-seed")
	tc := newTestCluster(t, "a", "b", "c")
	tc.start("a", "count-seed")
	tc.start("b", "count-seed")
	// c stays configured-but-down: a and b run as a 2-live-node cluster.

	const hot = 0.777
	for _, id := range []string{"a", "b"} {
		resp, err := tc.synthesize(id, "count-seed", hot)
		if err != nil {
			t.Fatalf("warming %s: %v", id, err)
		}
		if resp.Hits+resp.Misses != 1 {
			t.Fatalf("warming %s: hits=%d misses=%d", id, resp.Hits, resp.Misses)
		}
		tc.nodes[id].node.Flush()
	}
	// However ownership fell (including on the dead c), both live nodes
	// now hold the hot entry, so any donor choice can seed it.
	calls := be.calls.Load()
	if calls == 0 {
		t.Fatal("hot key was never synthesized")
	}

	tn := tc.start("c", "count-seed")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n, err := tn.node.Seed(ctx)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	if n == 0 {
		t.Fatal("seed streamed zero entries")
	}

	resp, err := tc.synthesize("c", "count-seed", hot)
	if err != nil {
		t.Fatalf("hot key via joined node: %v", err)
	}
	if resp.Hits != 1 || resp.Misses != 0 {
		t.Fatalf("joined node: hits=%d misses=%d, want a pure cache hit", resp.Hits, resp.Misses)
	}
	if got := be.calls.Load(); got != calls {
		t.Fatalf("joined node ran %d local syntheses, want 0", got-calls)
	}
	if st := tn.node.Stats(); st.PeerHits+st.PeerMisses+st.PeerErrors != 0 {
		t.Fatalf("joined node did peer lookups (%+v): hot key was not served from the seeded snapshot", st)
	}

	h, err := tc.nodes["c"].cl.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.NodeID != "c" || h.ClusterSize != 3 {
		t.Fatalf("health node_id=%q cluster_size=%d, want c/3", h.NodeID, h.ClusterSize)
	}
}
