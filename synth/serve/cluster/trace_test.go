package cluster_test

import (
	"context"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/synth/serve"
	"repro/synth/serve/client"
	"repro/synth/serve/cluster"
	"repro/synth/trace"
)

// startTraced is start() with an always-sample tracer wired into both the
// cluster node and the serve.Server, the way cmd/synthd does it.
func (tc *testCluster) startTraced(id, backend string, tr *trace.Tracer) *testNode {
	tc.t.Helper()
	tn := tc.nodes[id]
	node, err := cluster.New(cluster.Config{
		SelfID:        id,
		Peers:         tc.urls,
		LookupTimeout: 2 * time.Second,
		Tracer:        tr,
	})
	if err != nil {
		tc.t.Fatalf("cluster.New(%s): %v", id, err)
	}
	srv := serve.New(serve.Config{DefaultBackend: backend, Cluster: node, Tracer: tr})
	tn.node, tn.srv = node, srv
	tn.cl = client.New(tn.hs.URL)
	tn.late.set(srv.Handler())
	return tn
}

// traceQASM holds eight distinct rotation angles so a cold compile fans
// out across the ring: under the fixed a/b/c hash ring some keys land on
// peers, forcing cross-node lookups inside one request.
const traceQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(0.31) q[0];
rz(0.47) q[1];
rz(0.59) q[0];
rz(0.73) q[1];
rz(0.89) q[0];
rz(1.01) q[1];
rz(1.13) q[0];
rz(1.27) q[1];
`

// coverage returns the fraction of root's duration covered by the union
// of its direct children's intervals — the acceptance measure that the
// trace accounts for the request's wall-clock, not just fragments of it.
func coverage(root *trace.Span) float64 {
	kids := root.Children()
	if len(kids) == 0 || root.Duration() <= 0 {
		return 0
	}
	type iv struct{ a, b time.Time }
	ivs := make([]iv, 0, len(kids))
	for _, k := range kids {
		ivs = append(ivs, iv{k.Start(), k.Start().Add(k.Duration())})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
	var covered time.Duration
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.a.After(cur.b) {
			covered += cur.b.Sub(cur.a)
			cur = v
		} else if v.b.After(cur.b) {
			cur.b = v.b
		}
	}
	covered += cur.b.Sub(cur.a)
	return float64(covered) / float64(root.Duration())
}

// TestClusterStitchedTrace is the tracing acceptance path: one compile
// against a cold 3-node cluster yields a single trace ID under which the
// serving node holds a root covering >= 95% of the request wall-clock,
// and the peers hold remote fragments — proof the traceparent header
// crossed the wire — while the serving node's tree shows the peer
// lookups themselves.
func TestClusterStitchedTrace(t *testing.T) {
	ids := []string{"a", "b", "c"}
	tc := newTestCluster(t, ids...)
	tracers := map[string]*trace.Tracer{}
	for _, id := range ids {
		tracers[id] = trace.New(trace.Config{SampleRatio: 1})
		tc.startTraced(id, "gridsynth", tracers[id])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, err := tc.nodes["a"].cl.Compile(ctx, serve.CompileRequest{
		QASM: traceQASM, Backend: "gridsynth", Eps: 0.5,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if resp.Stats.TraceID == "" {
		t.Fatal("compile response carries no trace_id with sampling at 1")
	}
	tid, ok := trace.ParseID(resp.Stats.TraceID)
	if !ok {
		t.Fatalf("unparsable trace_id %q", resp.Stats.TraceID)
	}
	tc.flush() // let async owner pushes (and their spans) land

	// The serving node holds the root, and its direct children account
	// for >= 95% of the request's wall-clock.
	rootsA := tracers["a"].Collect(tid)
	if len(rootsA) == 0 {
		t.Fatal("serving node kept no trace")
	}
	root := rootsA[0]
	if root.Name() != "/v1/compile" {
		t.Fatalf("root span %q, want /v1/compile", root.Name())
	}
	if cov := coverage(root); cov < 0.95 {
		t.Fatalf("trace covers %.1f%% of request wall-clock, want >= 95%%", cov*100)
	}

	// The serving node's own tree shows the cross-node traffic.
	var lookups, pushes int
	root.Walk(func(sp *trace.Span) {
		switch sp.Name() {
		case "peer.lookup":
			lookups++
			if p := sp.Attr("peer"); p != "b" && p != "c" {
				t.Errorf("peer.lookup against %q, want b or c", p)
			}
		case "peer.push":
			pushes++
		}
	})
	if lookups == 0 {
		t.Fatal("no peer.lookup spans in the serving node's trace: compile never crossed nodes")
	}

	// At least one peer holds a remote fragment under the SAME trace ID:
	// the propagated traceparent header stitched the hops together.
	var fragments []*trace.Span
	for _, id := range []string{"b", "c"} {
		fragments = append(fragments, tracers[id].Collect(tid)...)
	}
	if len(fragments) == 0 {
		t.Fatal("no remote fragments on peers: traceparent did not propagate")
	}
	sawServe := false
	for _, f := range fragments {
		if f.TraceID() != tid {
			t.Fatalf("fragment %q under trace %x, want %x", f.Name(), f.TraceID(), tid)
		}
		if strings.HasPrefix(f.Name(), "peer.serve.") {
			sawServe = true
			if f.Attr("node") == "" {
				t.Errorf("fragment %q missing node attr", f.Name())
			}
		}
	}
	if !sawServe {
		t.Fatalf("no peer.serve.* fragments among %d peer fragments", len(fragments))
	}

	// The stitched trace is retrievable over HTTP from the serving node.
	res, err := http.Get(tc.nodes["a"].hs.URL + "/debug/trace?id=" + resp.Stats.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "peer.lookup") {
		t.Fatalf("/debug/trace: status %d, body missing peer.lookup:\n%s", res.StatusCode, body)
	}
}
