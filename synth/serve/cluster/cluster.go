// Package cluster turns N synthd processes into one consistent-hash
// cache cluster — the distributed form of the paper's amortization
// argument. Synthesized sequences are pure functions of their quantized
// (angle, ε, backend-config) cache key, so the cluster never needs
// invalidation or consensus: every node derives key ownership from the
// same static peer list via a virtual-node hash ring (Ring), misses do a
// single-hop lookup to the owner before synthesizing locally, fresh
// syntheses are pushed to the owner so later lookups from any node find
// them, and a joining node warm-seeds by streaming its ring successor's
// snapshot instead of starting cold.
//
// The package deliberately has no transport of its own beyond four
// internal HTTP endpoints a Node contributes under /v1/peer/ (mounted by
// synth/serve next to the public API):
//
//	GET /v1/peer/cache?gate=&a=&b=&c=&eps=&cfg=&scope=   one-key lookup
//	PUT /v1/peer/cache                                    owner fill push
//	GET /v1/peer/snapshot                                 full snapshot stream
//	GET /v1/peer/stats                                    node statistics (opaque JSON)
//
// The stats endpoint serves whatever payload the mounting layer provides
// (SetStatsProvider) — the cluster only moves the bytes, so the peer
// protocol stays agnostic of the statistics schema. PeerStats fans the
// GET out to every peer for the federated /v1/stats?cluster=1 view.
//
// A node that cannot reach a peer degrades to local synthesis — a dead
// node costs its share of cache affinity, never availability. A
// per-peer circuit breaker (BreakerConfig) makes that degradation
// cheap: after Threshold consecutive failures the peer's breaker opens
// and every outbound call to it is skipped in microseconds instead of
// burning the lookup timeout, until a half-open probe after a jittered
// cooldown confirms recovery.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/circuit"
	"repro/internal/gates"
	"repro/synth"
	"repro/synth/fault"
	"repro/synth/trace"
)

// DefaultLookupTimeout bounds one peer cache lookup. It is deliberately
// tight: a peer hit saves a synthesis (~100µs to minutes), but a peer
// that cannot answer quickly must not stall the request — local
// synthesis is always available.
const DefaultLookupTimeout = 250 * time.Millisecond

// DefaultPushTimeout bounds one asynchronous owner fill push.
const DefaultPushTimeout = 2 * time.Second

// Config describes this node's place in a static cluster.
type Config struct {
	// SelfID is this node's ID on the ring. Required.
	SelfID string
	// Peers maps every OTHER member's ID to its base URL
	// (e.g. "b" → "http://10.0.0.2:8077"). May be empty: a one-node
	// cluster is valid and behaves like plain synthd.
	Peers map[string]string
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// LookupTimeout bounds a peer cache lookup (0 = DefaultLookupTimeout);
	// PushTimeout bounds an owner fill push (0 = DefaultPushTimeout).
	LookupTimeout time.Duration
	PushTimeout   time.Duration
	// Client overrides the HTTP client used for peer calls (tests inject
	// httptest transports). Default: a fresh http.Client; timeouts come
	// from per-call contexts.
	Client *http.Client
	// Tracer, when set, records a remote trace fragment for every peer
	// request that arrives carrying a traceparent header, so a trace
	// started on one node can be stitched together from every node's
	// /debug/trace ring. Outbound peer calls propagate the header
	// regardless (they read the span from the caller's context).
	Tracer *trace.Tracer
	// Breaker tunes the per-peer circuit breakers that gate every
	// outbound peer call (lookups, fills, stats fan-out). The zero value
	// selects the defaults; Threshold < 0 disables breakers.
	Breaker BreakerConfig
	// Logger, when set, records breaker state transitions.
	Logger *slog.Logger
	// Fault, when set, is the node-level fault injector consulted at the
	// "peer:<id>:{lookup,push,stats}" sites before every outbound peer
	// call that has no injector on its context (detached fill pushes);
	// request-scoped injectors on the context take precedence. A
	// "peer:<id>*" wildcard rule covers all three operations.
	Fault *fault.Injector
}

// Stats is a point-in-time snapshot of a node's cluster counters.
type Stats struct {
	// PeerHits/PeerMisses/PeerErrors count single-hop owner lookups by
	// outcome (error includes timeouts and unreachable peers).
	PeerHits, PeerMisses, PeerErrors int64
	// Pushes counts owner fill pushes attempted; PushErrors the failures.
	Pushes, PushErrors int64
	// Seeded is the entry count loaded by the last Seed call.
	Seeded int64
	// BreakerTrips counts breaker open transitions across all peers;
	// BreakerSkips counts outbound calls skipped because a peer's
	// breaker was open (each skip is a fast local fall-through).
	BreakerTrips, BreakerSkips int64
}

// Node is one cluster member: the ring view, the peer HTTP client, and
// the hook pair it installs into the resident cache (Attach). Create
// with New, mount Handler under /v1/peer/, Attach the cache, and
// optionally Seed before serving.
type Node struct {
	selfID string
	ring   *Ring
	peers  map[string]string
	hc     *http.Client
	cfg    Config

	cache atomic.Pointer[synth.Cache]
	// statsProvider renders this node's statistics payload for
	// GET /v1/peer/stats (installed by the serving layer; nil = 503).
	statsProvider atomic.Pointer[func() ([]byte, error)]

	// breakers guards each peer with a circuit breaker (nil map entries
	// never exist; the map itself is empty when breakers are disabled).
	// Immutable after New.
	breakers map[string]*breaker

	peerHits, peerMisses, peerErrors atomic.Int64
	pushes, pushErrors               atomic.Int64
	seeded                           atomic.Int64
	breakerTrips, breakerSkips       atomic.Int64
	// pending tracks in-flight async fill pushes; Flush waits for them
	// (tests and graceful shutdown).
	pending sync.WaitGroup
}

// New validates cfg and builds the node's ring view (self + peers).
func New(cfg Config) (*Node, error) {
	if cfg.SelfID == "" {
		return nil, fmt.Errorf("cluster: SelfID is required")
	}
	ids := []string{cfg.SelfID}
	peers := make(map[string]string, len(cfg.Peers))
	for id, base := range cfg.Peers {
		if id == cfg.SelfID {
			// Tolerate peer lists that include self (the natural spelling
			// when every node gets the same -peers flag).
			continue
		}
		if base == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", id)
		}
		if _, err := url.Parse(base); err != nil {
			return nil, fmt.Errorf("cluster: peer %q URL: %w", id, err)
		}
		peers[id] = base
		ids = append(ids, id)
	}
	ring, err := NewRing(cfg.VNodes, ids...)
	if err != nil {
		return nil, err
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = DefaultLookupTimeout
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = DefaultPushTimeout
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	n := &Node{selfID: cfg.SelfID, ring: ring, peers: peers, hc: hc, cfg: cfg}
	n.breakers = make(map[string]*breaker, len(peers))
	if cfg.Breaker.Threshold >= 0 {
		bcfg := cfg.Breaker.withDefaults()
		for id := range peers {
			n.breakers[id] = newBreaker(id, bcfg, n.breakerChanged)
		}
	}
	return n, nil
}

// breakerChanged observes every breaker transition: trips feed the
// counter and every edge is logged, so "peer b went dark at 14:02 and
// recovered at 14:07" is reconstructable from one node's log.
func (n *Node) breakerChanged(peer string, from, to breakerState) {
	if to == stateOpen {
		n.breakerTrips.Add(1)
	}
	if n.cfg.Logger != nil {
		n.cfg.Logger.Warn("peer breaker transition",
			"peer", peer, "from", from.String(), "to", to.String())
	}
}

// SelfID returns this node's ring ID.
func (n *Node) SelfID() string { return n.selfID }

// Ring returns the node's (immutable) ring view.
func (n *Node) Ring() *Ring { return n.ring }

// Stats snapshots the cluster counters.
func (n *Node) Stats() Stats {
	return Stats{
		PeerHits:   n.peerHits.Load(),
		PeerMisses: n.peerMisses.Load(),
		PeerErrors: n.peerErrors.Load(),
		Pushes:     n.pushes.Load(),
		PushErrors: n.pushErrors.Load(),
		Seeded:     n.seeded.Load(),

		BreakerTrips: n.breakerTrips.Load(),
		BreakerSkips: n.breakerSkips.Load(),
	}
}

// BreakerStates snapshots every peer breaker, sorted by peer ID — the
// /healthz "breakers" field and the per-peer state gauge on /metrics.
func (n *Node) BreakerStates() []PeerBreaker {
	if len(n.breakers) == 0 {
		return nil
	}
	now := time.Now()
	out := make([]PeerBreaker, 0, len(n.breakers))
	for _, br := range n.breakers {
		out = append(out, br.snapshot(now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// inject consults the fault injector for an outbound peer call: a
// request-scoped injector on ctx wins; otherwise the node-level one
// from Config.Fault (reached by detached push goroutines, whose fresh
// contexts carry nothing). Nil-safe on both.
func (n *Node) inject(ctx context.Context, site string) error {
	if in := fault.FromContext(ctx); in != nil {
		return in.At(ctx, site)
	}
	return n.cfg.Fault.At(ctx, site)
}

// allowPeer is the breaker gate before an outbound call to peer id;
// a skip is counted (it stands for a sub-millisecond local
// fall-through where a timeout would have been).
func (n *Node) allowPeer(id string) (*breaker, bool) {
	br := n.breakers[id]
	if br == nil {
		return nil, true
	}
	if !br.Allow(time.Now()) {
		n.breakerSkips.Add(1)
		return br, false
	}
	return br, true
}

func brSuccess(br *breaker) {
	if br != nil {
		br.Success()
	}
}

func brFailure(br *breaker) {
	if br != nil {
		br.Failure(time.Now())
	}
}

// KeysOwned counts the live entries in the attached cache whose ring
// owner is this node — the synthd_ring_keys_owned gauge.
func (n *Node) KeysOwned() int {
	c := n.cache.Load()
	if c == nil {
		return 0
	}
	owned := 0
	c.Range(func(k synth.Key, _ synth.Entry) bool {
		if n.ring.OwnerOf(k) == n.selfID {
			owned++
		}
		return true
	})
	return owned
}

// Attach wires the node into c: local misses on keys another node owns
// do a single-hop peer lookup there, and fresh local syntheses of such
// keys are pushed (asynchronously) to the owner. Call once, before
// serving traffic.
func (n *Node) Attach(c *synth.Cache) {
	n.cache.Store(c)
	if len(n.peers) == 0 {
		return // one-node cluster: nothing to look up or push to
	}
	c.SetPeer(n.lookup, n.fill)
}

// Flush waits for every in-flight fill push to settle — the barrier
// tests (and a draining daemon) use to make "wave 2 sees wave 1" exact.
func (n *Node) Flush() { n.pending.Wait() }

// SetStatsProvider installs the function that renders this node's
// statistics payload for GET /v1/peer/stats. The cluster treats the
// bytes as opaque JSON — the serving layer owns the schema on both ends
// (it provides here and decodes what PeerStats fetched).
func (n *Node) SetStatsProvider(fn func() ([]byte, error)) {
	n.statsProvider.Store(&fn)
}

// Peers returns a copy of the peer map (every OTHER member's ID → base
// URL).
func (n *Node) Peers() map[string]string {
	out := make(map[string]string, len(n.peers))
	for id, base := range n.peers {
		out[id] = base
	}
	return out
}

// PeerStat is one peer's answer to a stats fan-out: its raw payload, or
// the error that kept it from answering. Exactly one field is set.
type PeerStat struct {
	Raw json.RawMessage
	Err error
}

// PeerStats fans GET /v1/peer/stats out to every peer concurrently and
// returns each answer by peer ID. An unreachable peer contributes its
// error, never blocks the map: a dead node degrades the fleet view by
// its own share and nothing else. Each call is bounded by the push
// timeout (stats are heavier than a one-key lookup but must not hang a
// dashboard).
func (n *Node) PeerStats(ctx context.Context) map[string]PeerStat {
	out := make(map[string]PeerStat, len(n.peers))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for id, base := range n.peers {
		wg.Add(1)
		go func(id, base string) {
			defer wg.Done()
			raw, err := n.fetchPeerStats(ctx, id, base)
			mu.Lock()
			out[id] = PeerStat{Raw: raw, Err: err}
			mu.Unlock()
		}(id, base)
	}
	wg.Wait()
	return out
}

func (n *Node) fetchPeerStats(ctx context.Context, id, base string) (json.RawMessage, error) {
	br, ok := n.allowPeer(id)
	if !ok {
		return nil, fmt.Errorf("cluster: peer %s: breaker open", id)
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.PushTimeout)
	defer cancel()
	if err := n.inject(ctx, "peer:"+id+":stats"); err != nil {
		brFailure(br)
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peer/stats", nil)
	if err != nil {
		return nil, err
	}
	res, err := n.hc.Do(req)
	if err != nil {
		brFailure(br)
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		brFailure(br)
		return nil, fmt.Errorf("cluster: peer stats: HTTP %d", res.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(res.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	brSuccess(br)
	return raw, nil
}

// lookup is the cache's miss hook: one GET to the key's owner. It runs
// under the triggering request's context — cancelled with it, and traced
// as a "peer.lookup" span whose identity travels to the owner in the
// traceparent header (the owner records the matching "peer.serve"
// fragment in its own ring).
func (n *Node) lookup(ctx context.Context, k synth.Key) (synth.Entry, bool) {
	owner := n.ring.OwnerOf(k)
	if owner == n.selfID {
		return synth.Entry{}, false
	}
	sp := trace.FromContext(ctx).Child("peer.lookup")
	sp.SetAttr("peer", owner)
	e, ok := n.lookupSpan(ctx, k, owner, sp)
	sp.SetAttr("hit", ok)
	sp.End()
	return e, ok
}

func (n *Node) lookupSpan(ctx context.Context, k synth.Key, owner string, sp *trace.Span) (synth.Entry, bool) {
	br, ok := n.allowPeer(owner)
	if !ok {
		// The owner's breaker is open: fall through to local synthesis
		// without paying the lookup timeout. Not a peer error — the
		// error already happened when the breaker tripped.
		sp.SetAttr("breaker", "open")
		return synth.Entry{}, false
	}
	base := n.peers[owner]
	ctx, cancel := context.WithTimeout(ctx, n.cfg.LookupTimeout)
	defer cancel()
	// Injection sits inside the lookup-timeout scope so latency/timeout
	// faults race the real deadline, exactly as a slow peer would.
	if err := n.inject(ctx, "peer:"+owner+":lookup"); err != nil {
		n.peerErrors.Add(1)
		brFailure(br)
		sp.SetAttr("error", err.Error())
		return synth.Entry{}, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peer/cache?"+keyQuery(k), nil)
	if err != nil {
		n.peerErrors.Add(1)
		return synth.Entry{}, false
	}
	if h := sp.HeaderValue(); h != "" {
		req.Header.Set(trace.Header, h)
	}
	res, err := n.hc.Do(req)
	if err != nil {
		n.peerErrors.Add(1)
		brFailure(br)
		sp.SetAttr("error", err.Error())
		return synth.Entry{}, false
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		// A miss is a healthy answer: the peer is up, it just doesn't
		// have the key.
		n.peerMisses.Add(1)
		brSuccess(br)
		return synth.Entry{}, false
	default:
		n.peerErrors.Add(1)
		brFailure(br)
		return synth.Entry{}, false
	}
	var we wireEntry
	if err := json.NewDecoder(res.Body).Decode(&we); err != nil {
		n.peerErrors.Add(1)
		brFailure(br)
		return synth.Entry{}, false
	}
	e, err := we.entry()
	if err != nil {
		n.peerErrors.Add(1)
		brFailure(br)
		return synth.Entry{}, false
	}
	n.peerHits.Add(1)
	brSuccess(br)
	return e, true
}

// fill is the cache's put hook: a fresh local synthesis of a key some
// other node owns is pushed there asynchronously, so the owner answers
// every future cluster-wide lookup for it. Push failures are counted
// and dropped — the entry is still cached locally, and determinism
// means any node can always recompute it. The push is traced as a
// "peer.push" child of the span in ctx; because it is asynchronous the
// span may end after the request's root was reported, which the trace
// ring tolerates (late child ends update the retained tree). The HTTP
// call itself deliberately does NOT use the request's context — the
// push must survive the request completing.
func (n *Node) fill(ctx context.Context, k synth.Key, e synth.Entry) {
	owner := n.ring.OwnerOf(k)
	if owner == n.selfID {
		return
	}
	sp := trace.FromContext(ctx).Child("peer.push")
	sp.SetAttr("peer", owner)
	br, ok := n.allowPeer(owner)
	if !ok {
		// Owner's breaker is open: skip the push entirely. The entry is
		// cached locally and determinism lets any node recompute it, so
		// nothing is lost but affinity — which the dead owner has
		// already lost anyway.
		sp.SetAttr("breaker", "open")
		sp.End()
		return
	}
	base := n.peers[owner]
	n.pending.Add(1)
	n.pushes.Add(1)
	go func() {
		defer n.pending.Done()
		defer sp.End()
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PushTimeout)
		defer cancel()
		if err := n.inject(ctx, "peer:"+owner+":push"); err != nil {
			n.pushErrors.Add(1)
			brFailure(br)
			sp.SetAttr("error", err.Error())
			return
		}
		body, err := json.Marshal(wirePut{Key: wireKey(k), Entry: newWireEntry(e)})
		if err != nil {
			n.pushErrors.Add(1)
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, base+"/v1/peer/cache", bytes.NewReader(body))
		if err != nil {
			n.pushErrors.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if h := sp.HeaderValue(); h != "" {
			req.Header.Set(trace.Header, h)
		}
		res, err := n.hc.Do(req)
		if err != nil {
			n.pushErrors.Add(1)
			brFailure(br)
			sp.SetAttr("error", err.Error())
			return
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNoContent && res.StatusCode != http.StatusOK {
			n.pushErrors.Add(1)
			brFailure(br)
			return
		}
		brSuccess(br)
	}()
}

// remoteFragment opens a trace fragment for an inbound peer request
// carrying a traceparent header (nil otherwise, and all span use
// no-ops). The fragment lands in this node's ring under the propagated
// trace ID, tagged with this node's ID so stitched exports name it.
func (n *Node) remoteFragment(r *http.Request, name string) *trace.Span {
	if n.cfg.Tracer == nil {
		return nil
	}
	tid, sid, ok := trace.ParseHeaderValue(r.Header.Get(trace.Header))
	if !ok {
		return nil
	}
	sp := n.cfg.Tracer.StartRemote(tid, sid, name)
	sp.SetAttr("node", n.selfID)
	return sp
}

// Seed streams the ring successor's snapshot into the attached cache —
// the warm join: the successor owned most of this node's arcs before it
// joined, so its snapshot contains the hot entries this node is about
// to be asked for. Returns the entry count loaded. A one-node cluster
// (or an unreachable donor) is an error the caller typically logs and
// survives: a cold start is always safe.
func (n *Node) Seed(ctx context.Context) (int, error) {
	c := n.cache.Load()
	if c == nil {
		return 0, fmt.Errorf("cluster: Seed before Attach")
	}
	donor := n.ring.Successor(n.selfID)
	if donor == n.selfID {
		return 0, fmt.Errorf("cluster: no peer to seed from")
	}
	base := n.peers[donor]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peer/snapshot", nil)
	if err != nil {
		return 0, err
	}
	res, err := n.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: seeding from %s: %w", donor, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: seeding from %s: HTTP %d", donor, res.StatusCode)
	}
	loaded, err := c.LoadSnapshot(res.Body)
	if err != nil {
		return 0, fmt.Errorf("cluster: seeding from %s: %w", donor, err)
	}
	n.seeded.Store(int64(loaded))
	return loaded, nil
}

// Handler returns the internal peer endpoint tree, to be mounted under
// /v1/peer/. These endpoints are cluster-internal: serve mounts them
// outside admission control and tenant quotas, and deployments should
// not expose them on public load balancers.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/peer/cache", n.handleGet)
	mux.HandleFunc("PUT /v1/peer/cache", n.handlePut)
	mux.HandleFunc("GET /v1/peer/snapshot", n.handleSnapshot)
	mux.HandleFunc("GET /v1/peer/stats", n.handleStats)
	return mux
}

// handleStats serves the mounting layer's statistics payload. The bytes
// are opaque here; 503 until a provider is installed.
func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	fn := n.statsProvider.Load()
	if fn == nil {
		http.Error(w, "no stats provider attached", http.StatusServiceUnavailable)
		return
	}
	body, err := (*fn)()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleGet answers a one-key peer lookup from the local cache only (no
// recursion: a miss here is a miss, the asking node synthesizes). Peek
// semantics — a remote probe neither counts in this node's hit/miss
// accounting nor refreshes recency, so cluster traffic cannot distort
// local LRU or stats.
func (n *Node) handleGet(w http.ResponseWriter, r *http.Request) {
	sp := n.remoteFragment(r, "peer.serve.get")
	defer sp.End()
	c := n.cache.Load()
	if c == nil {
		http.Error(w, "no cache attached", http.StatusServiceUnavailable)
		return
	}
	k, err := keyFromQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e, ok := c.Peek(k)
	sp.SetAttr("hit", ok)
	if !ok {
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(newWireEntry(e))
}

// handlePut accepts an owner fill push.
func (n *Node) handlePut(w http.ResponseWriter, r *http.Request) {
	sp := n.remoteFragment(r, "peer.serve.put")
	defer sp.End()
	c := n.cache.Load()
	if c == nil {
		http.Error(w, "no cache attached", http.StatusServiceUnavailable)
		return
	}
	var p wirePut
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e, err := p.Entry.entry()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.PutQuiet(p.Key.key(), e)
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshot streams the local cache's versioned-JSON snapshot — the
// same format the daemon persists, reused as the seeding wire format.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	c := n.cache.Load()
	if c == nil {
		http.Error(w, "no cache attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := c.Snapshot(w); err != nil {
		// Headers are gone; all we can do is log-by-status via trailer-less
		// abort. Snapshot only fails on writer errors anyway.
		return
	}
}

// --- wire forms ---

// wireKey flattens a synth.Key for query strings and JSON.
type wireKeyT struct {
	Gate  uint8  `json:"gate"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	C     int64  `json:"c"`
	Eps   int64  `json:"eps"`
	Cfg   int64  `json:"cfg"`
	Scope string `json:"scope"`
}

func wireKey(k synth.Key) wireKeyT {
	return wireKeyT{Gate: uint8(k.Gate), A: k.A, B: k.B, C: k.C, Eps: k.Eps, Cfg: k.Cfg, Scope: k.Scope}
}

func (wk wireKeyT) key() synth.Key {
	return synth.Key{Gate: circuit.GateType(wk.Gate), A: wk.A, B: wk.B, C: wk.C, Eps: wk.Eps, Cfg: wk.Cfg, Scope: wk.Scope}
}

// wireEntry carries one cache entry; the sequence travels as the same
// space-separated mnemonics the snapshot format uses.
type wireEntry struct {
	Seq     string  `json:"seq"`
	Err     float64 `json:"err"`
	Backend string  `json:"backend,omitempty"`
}

func newWireEntry(e synth.Entry) wireEntry {
	return wireEntry{Seq: e.Seq.String(), Err: e.Err, Backend: e.Backend}
}

func (we wireEntry) entry() (synth.Entry, error) {
	seq, err := gates.Parse(we.Seq)
	if err != nil {
		return synth.Entry{}, fmt.Errorf("cluster: bad wire sequence: %w", err)
	}
	return synth.Entry{Seq: seq, Err: we.Err, Backend: we.Backend}, nil
}

type wirePut struct {
	Key   wireKeyT  `json:"key"`
	Entry wireEntry `json:"entry"`
}

// keyQuery encodes k as URL query parameters.
func keyQuery(k synth.Key) string {
	v := url.Values{}
	v.Set("gate", strconv.FormatUint(uint64(k.Gate), 10))
	v.Set("a", strconv.FormatInt(k.A, 10))
	v.Set("b", strconv.FormatInt(k.B, 10))
	v.Set("c", strconv.FormatInt(k.C, 10))
	v.Set("eps", strconv.FormatInt(k.Eps, 10))
	v.Set("cfg", strconv.FormatInt(k.Cfg, 10))
	v.Set("scope", k.Scope)
	return v.Encode()
}

// keyFromQuery decodes keyQuery's encoding.
func keyFromQuery(v url.Values) (synth.Key, error) {
	var k synth.Key
	gate, err := strconv.ParseUint(v.Get("gate"), 10, 8)
	if err != nil {
		return k, fmt.Errorf("bad gate: %v", err)
	}
	k.Gate = circuit.GateType(gate)
	for _, f := range []struct {
		name string
		dst  *int64
	}{{"a", &k.A}, {"b", &k.B}, {"c", &k.C}, {"eps", &k.Eps}, {"cfg", &k.Cfg}} {
		x, err := strconv.ParseInt(v.Get(f.name), 10, 64)
		if err != nil {
			return k, fmt.Errorf("bad %s: %v", f.name, err)
		}
		*f.dst = x
	}
	k.Scope = v.Get("scope")
	return k, nil
}
