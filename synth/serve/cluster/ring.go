package cluster

import (
	"fmt"
	"sort"

	"repro/synth"
)

// DefaultVNodes is the virtual-node count per physical node. 128 points
// per node keeps the ownership split within a few percent of uniform for
// small clusters, and adding or removing one node moves close to the
// ideal 1/N of the key space (RingStability's property test bounds it at
// 1.5/N).
const DefaultVNodes = 128

// Ring is a consistent-hash ring over node IDs: each node contributes
// vnodes points (FNV-1a of "id#i", the same hash family synth.Cache uses
// for shard election), and a key belongs to the first point clockwise
// from its synth.KeyHash. Membership changes therefore move only the
// arcs adjacent to the changed node's points — about 1/N of keys — while
// every node agrees on ownership from the peer list alone, with no
// coordination protocol.
//
// Ring is immutable after construction; build a new one for a new
// membership (With/Without help tests and joiners do that cheaply).
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	ids    []string    // sorted member IDs
}

type ringPoint struct {
	h  uint64
	id string
}

// NewRing builds a ring over the given member IDs (order irrelevant,
// duplicates rejected). vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int, ids ...string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{vnodes: vnodes, points: make([]ringPoint, 0, vnodes*len(ids))}
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", id)
		}
		seen[id] = true
		r.ids = append(r.ids, id)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: vnodeHash(id, i), id: id})
		}
	}
	sort.Strings(r.ids)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Ties (astronomically rare) break by ID so every node sorts the
		// ring identically.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// vnodeHash is FNV-1a over "id#i". It deliberately shares the FNV family
// with synth's key hash so the whole system hashes one way, but the
// "#i" suffix decorrelates a node's points from each other.
func vnodeHash(id string, i int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for j := 0; j < len(id); j++ {
		h ^= uint64(id[j])
		h *= prime
	}
	h ^= '#'
	h *= prime
	for ; ; i /= 10 {
		h ^= uint64('0' + i%10)
		h *= prime
		if i < 10 {
			return h
		}
	}
}

// Members returns the node IDs on the ring, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.ids) }

// VNodes returns the per-node virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the node owning hash h: the first ring point at or
// clockwise from h, wrapping at the top of the hash space.
func (r *Ring) Owner(h uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// OwnerOf returns the node owning a synthesis cache key.
func (r *Ring) OwnerOf(k synth.Key) string { return r.Owner(synth.KeyHash(k)) }

// Successor returns the first node clockwise from id's lowest ring point
// that is not id itself — the member that owned most of id's lowest arc
// before id joined, and the natural donor for warm-seeding a joiner. For
// a single-node ring it returns id.
func (r *Ring) Successor(id string) string {
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].h >= vnodeHash(id, 0)
	})
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.id != id {
			return p.id
		}
	}
	return id
}

// With returns a new ring with id added; Without returns one with id
// removed. Both leave r untouched.
func (r *Ring) With(id string) (*Ring, error) {
	return NewRing(r.vnodes, append(r.Members(), id)...)
}

// Without returns a new ring without id.
func (r *Ring) Without(id string) (*Ring, error) {
	ids := make([]string, 0, len(r.ids))
	for _, m := range r.ids {
		if m != id {
			ids = append(ids, m)
		}
	}
	return NewRing(r.vnodes, ids...)
}
