package cluster

import (
	"fmt"
	"testing"

	"repro/circuit"
	"repro/synth"
)

// sampleKeys builds n distinct realistic cache keys (quantized rz angles
// under the gridsynth scope, the cluster's dominant key population).
func sampleKeys(n int) []synth.Key {
	keys := make([]synth.Key, n)
	for i := range keys {
		op := circuit.Op{G: circuit.RZ, Q: [2]int{0, -1}, P: [3]float64{0.001 + float64(i)*0.0007}}
		keys[i] = synth.KeyOf(op, "gridsynth", 1e-3, 0)
	}
	return keys
}

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	return ids
}

// TestRingOwnerAgreement: ownership is a pure function of the member
// set — every node building a ring from the same peer list (in any
// order) routes every key identically. This is the property that lets
// the cluster run with no coordination at all.
func TestRingOwnerAgreement(t *testing.T) {
	ids := ringIDs(5)
	r1, err := NewRing(0, ids...)
	if err != nil {
		t.Fatal(err)
	}
	rev := []string{ids[3], ids[0], ids[4], ids[2], ids[1]}
	r2, err := NewRing(0, rev...)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(2000) {
		if a, b := r1.OwnerOf(k), r2.OwnerOf(k); a != b {
			t.Fatalf("owner disagreement for %+v: %q vs %q", k, a, b)
		}
	}
}

// TestRingStability is the membership-churn property the consistent
// hash exists for: adding or removing one node out of N moves at most
// ~1.5/N of a 10k-key sample (ideal is 1/(N+1) on add, 1/N on remove),
// and every moved key moves to/from the changed node — membership churn
// never reshuffles keys between surviving nodes.
func TestRingStability(t *testing.T) {
	const n = 5
	keys := sampleKeys(10000)
	base, err := NewRing(0, ringIDs(n)...)
	if err != nil {
		t.Fatal(err)
	}
	bound := int(1.5 / float64(n) * float64(len(keys)))

	t.Run("add", func(t *testing.T) {
		grown, err := base.With("node-new")
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			was, is := base.OwnerOf(k), grown.OwnerOf(k)
			if was == is {
				continue
			}
			moved++
			if is != "node-new" {
				t.Fatalf("key moved %q → %q, not to the new node", was, is)
			}
		}
		if moved == 0 || moved > bound {
			t.Fatalf("add moved %d of %d keys, want (0, %d] (≈1/(N+1) ideal)", moved, len(keys), bound)
		}
		t.Logf("add: moved %d/%d (ideal %d, bound %d)", moved, len(keys), len(keys)/(n+1), bound)
	})

	t.Run("remove", func(t *testing.T) {
		shrunk, err := base.Without("node-2")
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			was, is := base.OwnerOf(k), shrunk.OwnerOf(k)
			if was == is {
				continue
			}
			moved++
			if was != "node-2" {
				t.Fatalf("key moved %q → %q though its owner survived", was, is)
			}
		}
		if moved == 0 || moved > bound {
			t.Fatalf("remove moved %d of %d keys, want (0, %d] (≈1/N ideal)", moved, len(keys), bound)
		}
		t.Logf("remove: moved %d/%d (ideal %d, bound %d)", moved, len(keys), len(keys)/n, bound)
	})
}

// TestRingBalance: with DefaultVNodes virtual nodes the key space splits
// roughly evenly — no member owns less than a third or more than double
// its fair share of a 10k-key sample.
func TestRingBalance(t *testing.T) {
	const n = 5
	keys := sampleKeys(10000)
	r, err := NewRing(0, ringIDs(n)...)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.OwnerOf(k)]++
	}
	fair := len(keys) / n
	for id, c := range counts {
		if c < fair/3 || c > 2*fair {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): imbalanced ring", id, c, len(keys), fair)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d nodes own keys: %v", len(counts), n, counts)
	}
}

// TestRingSuccessor: the seeding donor is deterministic, never self on a
// multi-node ring, and self on a singleton.
func TestRingSuccessor(t *testing.T) {
	r, err := NewRing(0, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		s := r.Successor(id)
		if s == id {
			t.Fatalf("Successor(%q) = self on a 3-node ring", id)
		}
		if s2 := r.Successor(id); s2 != s {
			t.Fatalf("Successor(%q) not deterministic: %q vs %q", id, s, s2)
		}
	}
	solo, err := NewRing(0, "only")
	if err != nil {
		t.Fatal(err)
	}
	if s := solo.Successor("only"); s != "only" {
		t.Fatalf("singleton successor = %q, want self", s)
	}
}

// TestRingValidation: empty ring, empty IDs and duplicates are refused.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing(0, "a", ""); err == nil {
		t.Fatal("empty node ID accepted")
	}
	if _, err := NewRing(0, "a", "b", "a"); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
}
