package cluster_test

import (
	"context"
	"testing"
	"time"

	"repro/synth/serve"
)

// TestClusterFederatedStats is the federation acceptance check: after
// mixed-ε traffic lands on every member of a three-node cluster,
// /v1/stats?cluster=1 asked of ANY node returns a merged view whose
// per-cell observation counts equal the sum of that cell across the
// per-node views — the lossless-merge property of the sketches and
// counters.
func TestClusterFederatedStats(t *testing.T) {
	tc := newTestCluster(t, "a", "b", "c")
	for _, id := range tc.ids {
		tc.start(id, "gridsynth")
	}

	synth := func(id string, eps, theta float64) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_, err := tc.nodes[id].cl.Synthesize(ctx, serve.SynthesizeRequest{
			Backend:   "gridsynth",
			Eps:       eps,
			Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{theta}}},
		})
		if err != nil {
			t.Fatalf("synthesize on %s: %v", id, err)
		}
	}

	// Every node sees both ε decades; angles vary per node so cells
	// populate across the ring, with one repeat for cache-hit traffic.
	for i, id := range tc.ids {
		base := 0.31 + 0.17*float64(i)
		synth(id, 1e-2, base)
		synth(id, 1e-2, base) // warm repeat
		synth(id, 0.3, base+0.05)
	}
	tc.flush()

	type cellKey struct{ backend, band, class string }
	for _, askID := range tc.ids {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		st, err := tc.nodes[askID].cl.Stats(ctx, true)
		cancel()
		if err != nil {
			t.Fatalf("stats via %s: %v", askID, err)
		}
		if !st.Cluster {
			t.Fatalf("node %s did not federate", askID)
		}
		if len(st.Nodes) != 3 {
			t.Fatalf("node %s sees %d nodes, want 3: %+v", askID, len(st.Nodes), st.Nodes)
		}

		// Sum every cell across the per-node views.
		nodeSums := map[cellKey]int64{}
		seen := map[string]bool{}
		for _, n := range st.Nodes {
			seen[n.Node] = true
			if n.Error != "" {
				t.Fatalf("node %s unreachable in %s's view: %s", n.Node, askID, n.Error)
			}
			for _, c := range n.Cells {
				nodeSums[cellKey{c.Backend, c.EpsBand, c.Class}] += c.Count
			}
		}
		for _, id := range tc.ids {
			if !seen[id] {
				t.Fatalf("node %s missing from %s's cluster view", id, askID)
			}
		}

		// The merged fleet view must match those sums cell for cell.
		if len(st.Fleet.Cells) == 0 {
			t.Fatalf("node %s: empty fleet view after traffic", askID)
		}
		fleet := map[cellKey]int64{}
		bands := map[string]bool{}
		for _, c := range st.Fleet.Cells {
			if c.Backend != "gridsynth" {
				t.Errorf("unexpected backend %q in fleet view", c.Backend)
			}
			fleet[cellKey{c.Backend, c.EpsBand, c.Class}] = c.Count
			bands[c.EpsBand] = true
			if c.CacheHits+c.Synthesized+c.Errors != c.Count {
				t.Errorf("fleet cell %+v violates hits+synth+errors=count", c)
			}
		}
		if len(fleet) != len(nodeSums) {
			t.Fatalf("node %s: fleet has %d cells, node sums have %d", askID, len(fleet), len(nodeSums))
		}
		for k, want := range nodeSums {
			if got := fleet[k]; got != want {
				t.Errorf("node %s: cell %+v fleet count %d != per-node sum %d", askID, k, got, want)
			}
		}
		if !bands["1e-2"] || !bands["1e-1"] {
			t.Errorf("node %s: missing ε bands in fleet view: %v", askID, bands)
		}
	}
}

// TestClusterStatsPartialFailure: an unstarted member degrades to an
// error entry in the cluster view; the fleet merge covers the live
// nodes instead of failing outright.
func TestClusterStatsPartialFailure(t *testing.T) {
	tc := newTestCluster(t, "a", "b", "c")
	tc.start("a", "gridsynth")
	tc.start("b", "gridsynth")
	// "c" stays a 503 listener.

	if _, err := tc.synthesize("a", "gridsynth", 0.41); err != nil {
		t.Fatal(err)
	}
	tc.flush()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := tc.nodes["a"].cl.Stats(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	var dead, live int
	for _, n := range st.Nodes {
		if n.Error != "" {
			dead++
			if n.Node != "c" {
				t.Errorf("wrong node reported dead: %+v", n)
			}
		} else {
			live++
		}
	}
	if dead != 1 || live != 2 {
		t.Fatalf("want 1 dead / 2 live nodes, got %d/%d: %+v", dead, live, st.Nodes)
	}
	if len(st.Fleet.Cells) == 0 {
		t.Fatal("fleet view empty despite live traffic")
	}
}
