// Chaos tests: the fault-containment acceptance path. A dead peer, a
// slow peer, and a panicking backend each cost exactly what the design
// says they cost — never a process, never an unrelated request.
package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/qmat"
	"repro/synth"
	"repro/synth/fault"
	"repro/synth/serve"
	"repro/synth/serve/cluster"
)

// chaosBreaker is the tight tuning chaos tests use: trip fast, probe
// fast, so a full open → half-open → closed cycle fits in a test.
func chaosBreaker() cluster.BreakerConfig {
	return cluster.BreakerConfig{
		Threshold:   3,
		Cooldown:    200 * time.Millisecond,
		MaxCooldown: time.Second,
	}
}

// angleCursor yields an endless stream of fresh rotation angles owned
// by one ring member, under the exact key the serving compiler will
// use. start varies per call site so tests never collide on cached
// entries.
type angleCursor struct {
	tn    *testNode
	owner string
	next  float64
}

func (c *angleCursor) angle() float64 {
	req := synth.Request{Epsilon: 1e-2}
	for {
		th := c.next
		c.next += 0.0137
		k := synth.KeyForTarget(qmat.Rz(th), "gridsynth", req)
		if c.tn.node.Ring().OwnerOf(k) == c.owner {
			return th
		}
	}
}

// anglesOwnedBy returns the cursor's next n angles.
func anglesOwnedBy(t *testing.T, tn *testNode, owner string, n int, start float64) []float64 {
	t.Helper()
	c := &angleCursor{tn: tn, owner: owner, next: start}
	out := make([]float64, n)
	for i := range out {
		out[i] = c.angle()
	}
	return out
}

// breakerFor extracts peer's breaker snapshot from a /healthz body.
func breakerFor(t *testing.T, tn *testNode, peer string) cluster.PeerBreaker {
	t.Helper()
	h, err := tn.cl.Health(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	for _, br := range h.Breakers {
		if br.Peer == peer {
			return br
		}
	}
	t.Fatalf("healthz has no breaker for peer %q: %+v", peer, h.Breakers)
	return cluster.PeerBreaker{}
}

// TestChaosDeadPeerBreakerCycle: killing a peer opens its breaker on
// the survivor after Threshold failed lookups, open-breaker misses fall
// through to local synthesis in microseconds, and restarting the peer
// recloses the breaker via a half-open probe. Every request along the
// way succeeds.
func TestChaosDeadPeerBreakerCycle(t *testing.T) {
	tc := newTestCluster(t, "a", "b", "c")
	a := tc.startWith("a", cluster.Config{
		LookupTimeout: 2 * time.Second,
		PushTimeout:   500 * time.Millisecond,
		Breaker:       chaosBreaker(),
	}, serve.Config{DefaultBackend: "gridsynth"})
	tc.start("b", "gridsynth")
	c := tc.start("c", "gridsynth")

	// Kill c: its listener stays up but answers 503 to everything —
	// a crashed process behind a live load balancer.
	cHandler := c.srv.Handler()
	c.late.set(nil)

	// Phase 1: fresh c-owned keys miss locally, consult dead c, fail.
	// After Threshold failures the breaker opens. The requests
	// themselves all succeed by local synthesis.
	warm := anglesOwnedBy(t, a, "c", 3, 0.31)
	for i, th := range warm {
		resp, err := tc.synthesize("a", "gridsynth", th)
		if err != nil {
			t.Fatalf("request %d with c dead: %v", i, err)
		}
		if resp.Results[0].Seq == "" {
			t.Fatalf("request %d with c dead returned no sequence", i)
		}
	}
	if br := breakerFor(t, a, "c"); br.State != "open" || br.Trips < 1 {
		t.Fatalf("after %d failed lookups, c's breaker: %+v", len(warm), br)
	}
	if st := a.node.Stats(); st.BreakerTrips < 1 {
		t.Fatalf("stats trips = %d, want >= 1", st.BreakerTrips)
	}

	// Phase 2: with the breaker open, fresh c-owned misses skip the
	// peer entirely. The fastest of five requests bounds the
	// fall-through cost — microseconds of breaker check plus a warm
	// gridsynth synthesis, well under 5ms.
	fast := anglesOwnedBy(t, a, "c", 5, 1.11)
	best := time.Hour
	for i, th := range fast {
		t0 := time.Now()
		resp, err := tc.synthesize("a", "gridsynth", th)
		if d := time.Since(t0); d < best {
			best = d
		}
		if err != nil || resp.Results[0].Seq == "" {
			t.Fatalf("open-breaker request %d: %v", i, err)
		}
	}
	if best >= 5*time.Millisecond {
		t.Fatalf("open-breaker fall-through: fastest of %d requests took %v, want < 5ms", len(fast), best)
	}
	if st := a.node.Stats(); st.BreakerSkips == 0 {
		t.Fatal("open breaker recorded no skips")
	}

	// Phase 3: restart c and keep driving fresh c-owned keys (fresh, so
	// every one is a miss that can drive a half-open probe); within a
	// few cooldowns a probe reaches the live peer and the breaker
	// recloses.
	c.late.set(cHandler)
	cur := &angleCursor{tn: a, owner: "c", next: 2.03}
	deadline := time.Now().Add(15 * time.Second)
	reclosed := false
	for i := 0; time.Now().Before(deadline); i++ {
		if _, err := tc.synthesize("a", "gridsynth", cur.angle()); err != nil {
			t.Fatalf("post-restart request %d: %v", i, err)
		}
		if breakerFor(t, a, "c").State == "closed" {
			reclosed = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !reclosed {
		t.Fatalf("breaker never reclosed after c restarted: %+v", breakerFor(t, a, "c"))
	}
	tc.flush()
}

// TestChaosSlowPeerTimeout: a peer slowed past the lookup deadline
// burns that deadline on every miss until the breaker opens, after
// which misses become instant — the latency cliff is the whole point
// of the breaker. The wildcard rule slows ALL operations against b
// (lookups and fill pushes alike, as a genuinely slow peer would) and
// self-clears after count fires, so the recovery probe eventually
// finds a healthy peer and recloses the breaker.
func TestChaosSlowPeerTimeout(t *testing.T) {
	in, err := fault.Parse("peer:b* latency=400ms count=6")
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, "a", "b")
	a := tc.startWith("a", cluster.Config{
		LookupTimeout: 150 * time.Millisecond,
		PushTimeout:   300 * time.Millisecond,
		Breaker:       chaosBreaker(),
		Fault:         in,
	}, serve.Config{DefaultBackend: "gridsynth", Fault: in})
	tc.start("b", "gridsynth")

	// Phase 1: the first fresh b-owned miss stalls the full lookup
	// timeout before local synthesis answers; within Threshold requests
	// the breaker opens (slow pushes shorten the streak, never reset
	// it — every operation against b is failing).
	slow := anglesOwnedBy(t, a, "b", 4, 0.47)
	t0 := time.Now()
	if resp, err := tc.synthesize("a", "gridsynth", slow[0]); err != nil || resp.Results[0].Seq == "" {
		t.Fatalf("first slow-peer request: %v", err)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("first slow-peer request took %v, expected to burn the 150ms lookup timeout", d)
	}
	for _, th := range slow[1:] {
		if breakerFor(t, a, "b").State == "open" {
			break
		}
		if _, err := tc.synthesize("a", "gridsynth", th); err != nil {
			t.Fatalf("slow-peer request: %v", err)
		}
	}
	if br := breakerFor(t, a, "b"); br.State != "open" {
		t.Fatalf("breaker never opened against the slowed peer: %+v", br)
	}

	// Phase 2: the breaker is open — fresh b-owned misses no longer
	// wait on b. The fastest of five bounds the fall-through cost (at
	// most one of the five can be a half-open probe and pay latency).
	fast := anglesOwnedBy(t, a, "b", 5, 1.57)
	best := time.Hour
	for i, th := range fast {
		t0 := time.Now()
		if _, err := tc.synthesize("a", "gridsynth", th); err != nil {
			t.Fatalf("open-breaker request %d: %v", i, err)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	if best >= 5*time.Millisecond {
		t.Fatalf("open-breaker fall-through: fastest request took %v, want < 5ms", best)
	}

	// Phase 3: keep driving fresh b-owned misses until the latency
	// rule's count exhausts and a half-open probe reaches the healthy
	// b — the breaker recloses.
	cur := &angleCursor{tn: a, owner: "b", next: 2.71}
	deadline := time.Now().Add(15 * time.Second)
	reclosed := false
	for i := 0; time.Now().Before(deadline); i++ {
		if _, err := tc.synthesize("a", "gridsynth", cur.angle()); err != nil {
			t.Fatalf("recovery request %d: %v", i, err)
		}
		if breakerFor(t, a, "b").State == "closed" {
			reclosed = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !reclosed {
		t.Fatalf("breaker never reclosed after stall cleared: %+v", breakerFor(t, a, "b"))
	}
	if st := a.node.Stats(); st.BreakerTrips < 1 || st.PeerErrors < 3 {
		t.Fatalf("stats after cycle: %+v", st)
	}
	tc.flush()
}

// TestChaosPanickingBackendWithDeadPeer is the combined acceptance
// scenario: one peer dead AND the backend panicking on every third
// synthesis. The surviving node answers every request with 200 — the
// panicked ops as per-op failures — while its breaker contains the
// dead peer and /metrics records both pathologies.
func TestChaosPanickingBackendWithDeadPeer(t *testing.T) {
	in, err := fault.Parse("backend:gridsynth panic=chaos every=3")
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, "a", "b", "c")
	a := tc.startWith("a", cluster.Config{
		LookupTimeout: 2 * time.Second,
		PushTimeout:   500 * time.Millisecond,
		Breaker:       chaosBreaker(),
	}, serve.Config{DefaultBackend: "gridsynth", Fault: in, Workers: 1})
	tc.start("b", "gridsynth")
	tc.start("c", "gridsynth")
	tc.nodes["c"].late.set(nil) // crash c

	// Nine fresh c-owned keys through a: every one consults the dead
	// peer (until the breaker opens) and every third synthesis panics.
	// All nine requests are 200s; requests 3, 6, 9 carry the failure.
	angles := anglesOwnedBy(t, a, "c", 9, 0.53)
	var failed, ok int
	for i, th := range angles {
		resp, err := tc.synthesize("a", "gridsynth", th)
		if err != nil {
			t.Fatalf("request %d under chaos: %v", i, err)
		}
		r := resp.Results[0]
		switch {
		case r.Failure != "":
			failed++
			if !strings.Contains(r.Failure, "backend:gridsynth") {
				t.Fatalf("request %d failure %q names no site", i, r.Failure)
			}
			if r.Seq != "" {
				t.Fatalf("request %d: failed op carries a sequence", i)
			}
		case r.Seq != "":
			ok++
		default:
			t.Fatalf("request %d: neither sequence nor failure: %+v", i, r)
		}
	}
	if failed != 3 || ok != 6 {
		t.Fatalf("got %d failed / %d ok, want 3/6 (panic every=3 over 9 ops)", failed, ok)
	}

	// The process is alive, the dead peer is contained, and both
	// pathologies are on /metrics.
	if br := breakerFor(t, a, "c"); br.Trips < 1 {
		t.Fatalf("c's breaker never tripped: %+v", br)
	}
	body, err := a.cl.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics after chaos: %v", err)
	}
	for _, want := range []string{
		`synthd_panics_total{site="backend:gridsynth"} 3`,
		`synthd_peer_breaker_trips_total`,
		`synthd_peer_breaker_state{peer="c"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q after chaos", want)
		}
	}
	tc.flush()
}
