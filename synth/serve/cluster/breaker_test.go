package cluster

import (
	"testing"
	"time"
)

func newTestBreaker(th int, cd time.Duration, trans *[]string) *breaker {
	cfg := BreakerConfig{Threshold: th, Cooldown: cd, MaxCooldown: 100 * cd}.withDefaults()
	return newBreaker("p", cfg, func(peer string, from, to breakerState) {
		if trans != nil {
			*trans = append(*trans, from.String()+">"+to.String())
		}
	})
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	var trans []string
	b := newTestBreaker(3, time.Second, &trans)
	now := time.Now()
	for i := 0; i < 2; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Failure(now)
	}
	if s := b.snapshot(now); s.State != "closed" || s.ConsecutiveFailures != 2 {
		t.Fatalf("below threshold: %+v", s)
	}
	b.Failure(now) // third consecutive failure trips it
	s := b.snapshot(now)
	if s.State != "open" || s.Trips != 1 {
		t.Fatalf("at threshold: %+v", s)
	}
	if s.RetryInMs <= 0 {
		t.Fatalf("open breaker with no retry horizon: %+v", s)
	}
	if b.Allow(now) {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if len(trans) != 1 || trans[0] != "closed>open" {
		t.Fatalf("transitions: %v", trans)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newTestBreaker(3, time.Second, nil)
	now := time.Now()
	b.Failure(now)
	b.Failure(now)
	b.Success()
	b.Failure(now)
	b.Failure(now)
	if s := b.snapshot(now); s.State != "open" && s.ConsecutiveFailures != 2 {
		t.Fatalf("streak did not reset: %+v", s)
	}
	if s := b.snapshot(now); s.State == "open" {
		t.Fatalf("non-consecutive failures tripped the breaker: %+v", s)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var trans []string
	b := newTestBreaker(1, 10*time.Millisecond, &trans)
	now := time.Now()
	b.Failure(now) // trips at threshold 1
	// Past the maximum jittered cooldown (1.25×): exactly one probe.
	later := now.Add(20 * time.Millisecond)
	if !b.Allow(later) {
		t.Fatal("expired cooldown denied the probe")
	}
	if b.Allow(later) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	if s := b.snapshot(later); s.State != "half-open" {
		t.Fatalf("state after probe admit: %+v", s)
	}
	b.Success()
	if s := b.snapshot(later); s.State != "closed" || s.ConsecutiveFailures != 0 {
		t.Fatalf("probe success did not close: %+v", s)
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(trans) != 3 || trans[0] != want[0] || trans[1] != want[1] || trans[2] != want[2] {
		t.Fatalf("transitions: %v, want %v", trans, want)
	}
}

func TestBreakerFailedProbeDoublesCooldown(t *testing.T) {
	b := newTestBreaker(1, 100*time.Millisecond, nil)
	now := time.Now()
	b.Failure(now)
	first := b.probeAt.Sub(now)
	later := now.Add(time.Second)
	if !b.Allow(later) {
		t.Fatal("probe denied")
	}
	b.Failure(later)
	s := b.snapshot(later)
	if s.State != "open" || s.Trips != 2 {
		t.Fatalf("failed probe did not re-open: %+v", s)
	}
	second := b.probeAt.Sub(later)
	// Jitter is ±25%, doubling is ×2: the re-open horizon strictly
	// exceeds the worst-case first horizon (200×0.75 > 100×1.25).
	if second <= first {
		t.Fatalf("cooldown did not escalate: first %v, second %v", first, second)
	}
	// A recovery resets the backoff to the configured base.
	if !b.Allow(later.Add(time.Second)) {
		t.Fatal("second probe denied")
	}
	b.Success()
	if b.cooldown != b.cfg.Cooldown {
		t.Fatalf("cooldown not reset on recovery: %v", b.cooldown)
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Second, MaxCooldown: 3 * time.Second}.withDefaults()
	b := newBreaker("p", cfg, nil)
	now := time.Now()
	b.Failure(now)
	for i := 0; i < 5; i++ {
		now = now.Add(time.Minute)
		if !b.Allow(now) {
			t.Fatalf("probe %d denied", i)
		}
		b.Failure(now)
	}
	if b.cooldown != cfg.MaxCooldown {
		t.Fatalf("cooldown %v, want capped at %v", b.cooldown, cfg.MaxCooldown)
	}
}

func TestBreakerDisabled(t *testing.T) {
	n, err := New(Config{
		SelfID:  "a",
		Peers:   map[string]string{"b": "http://localhost:1"},
		Breaker: BreakerConfig{Threshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.breakers) != 0 {
		t.Fatalf("Threshold<0 still built %d breakers", len(n.breakers))
	}
	if n.BreakerStates() != nil {
		t.Fatal("disabled breakers still report states")
	}
	if _, ok := n.allowPeer("b"); !ok {
		t.Fatal("disabled breakers denied a call")
	}
}

func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.Threshold != DefaultBreakerThreshold ||
		cfg.Cooldown != DefaultBreakerCooldown ||
		cfg.MaxCooldown != DefaultBreakerMaxCooldown {
		t.Fatalf("defaults: %+v", cfg)
	}
	// MaxCooldown never undercuts Cooldown.
	cfg = BreakerConfig{Cooldown: time.Minute, MaxCooldown: time.Second}.withDefaults()
	if cfg.MaxCooldown != time.Minute {
		t.Fatalf("MaxCooldown %v < Cooldown %v", cfg.MaxCooldown, cfg.Cooldown)
	}
}
