package serve_test

import (
	"context"
	"testing"

	"repro/synth/serve"
)

// statsTotals sums per-cell counters across a node view.
func statsTotals(n serve.NodeStats) (count, hits, synthesized int64) {
	for _, c := range n.Cells {
		count += c.Count
		hits += c.CacheHits
		synthesized += c.Synthesized
	}
	return
}

// TestStatsEndpoint: compiles populate the statistics table; the warm
// recompile shows up as cache hits; local and cluster forms agree on a
// single node.
func TestStatsEndpoint(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{DefaultBackend: "gridsynth"})
	ctx := context.Background()

	empty, err := cl.Stats(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Fleet.Cells) != 0 {
		t.Fatalf("fresh daemon has cells: %+v", empty.Fleet.Cells)
	}

	req := serve.CompileRequest{QASM: testQASM, Eps: 0.3}
	if _, err := cl.Compile(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Compile(ctx, req); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Stats(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster {
		t.Fatal("non-clustered daemon reported cluster view")
	}
	if len(st.Nodes) != 1 || st.Nodes[0].Error != "" {
		t.Fatalf("nodes: %+v", st.Nodes)
	}
	count, hits, synthesized := statsTotals(st.Fleet)
	if synthesized == 0 || hits == 0 {
		t.Fatalf("want syntheses and warm hits recorded, got count=%d hits=%d synth=%d",
			count, hits, synthesized)
	}
	for _, c := range st.Fleet.Cells {
		if c.Backend != "gridsynth" {
			t.Errorf("unexpected backend %q in cell %+v", c.Backend, c)
		}
		if c.EpsBand != "1e-1" {
			t.Errorf("eps 0.3 banded to %q, want 1e-1", c.EpsBand)
		}
		if c.Synthesized > 0 && (c.P50Ms <= 0 || c.P99Ms < c.P50Ms) {
			t.Errorf("implausible quantiles in cell %+v", c)
		}
	}
	// The service gauges ride along.
	if st.Fleet.CacheHits == 0 || st.Fleet.CacheSize == 0 || st.Fleet.UptimeMs < 0 {
		t.Errorf("fleet gauges: %+v", st.Fleet)
	}

	// ?cluster=1 on a non-clustered daemon degrades to the local view.
	solo, err := cl.Stats(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Cluster {
		t.Fatal("daemon without a cluster claims one")
	}
	c2, h2, s2 := statsTotals(solo.Fleet)
	if c2 != count || h2 != hits || s2 != synthesized {
		t.Fatalf("cluster=1 view diverged: %d/%d/%d vs %d/%d/%d", c2, h2, s2, count, hits, synthesized)
	}
}

// TestStatsObservationsAccount: per-cell counters are internally
// consistent — hits + synthesized + errors = count — the invariant the
// snapshot validator enforces on every load and merge.
func TestStatsObservationsAccount(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{DefaultBackend: "auto"})
	ctx := context.Background()
	if _, err := cl.Compile(ctx, serve.CompileRequest{QASM: testQASM, Eps: 0.1}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Fleet.Cells) == 0 {
		t.Fatal("auto compile produced no cells")
	}
	var wins, losses int64
	for _, c := range st.Fleet.Cells {
		if c.CacheHits+c.Synthesized+c.Errors != c.Count {
			t.Errorf("cell %+v violates hits+synth+errors=count", c)
		}
		wins += c.Wins
		losses += c.Losses
	}
	// The auto race reports both sides: winners and losers both land.
	if wins == 0 || losses == 0 {
		t.Errorf("auto race recorded wins=%d losses=%d — loser observations missing", wins, losses)
	}
}
