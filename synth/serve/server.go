package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/circuit"
	"repro/internal/qmat"
	"repro/optimize"
	"repro/synth"
	"repro/synth/fault"
	"repro/synth/obs"
	"repro/synth/serve/cluster"
	"repro/synth/trace"
)

// Config shapes a Server. The zero value is usable: auto backend, a fresh
// default-sized sharded cache, GOMAXPROCS-wide admission, and a 64-deep
// queue.
type Config struct {
	// DefaultBackend is used when a request names no backend ("auto").
	DefaultBackend string
	// Workers bounds each compile's synthesis pool (0 = GOMAXPROCS).
	Workers int
	// Cache, when set, is the resident cache (a daemon injects the one it
	// loaded from its snapshot). Otherwise NewCacheSharded(CacheSize,
	// CacheShards) is built.
	Cache       *synth.Cache
	CacheSize   int
	CacheShards int
	// MaxInflight bounds concurrently executing requests; MaxQueue bounds
	// how many more may wait for a slot. A request beyond both is refused
	// with 503 + Retry-After (0 = GOMAXPROCS and 64 respectively).
	MaxInflight int
	MaxQueue    int
	// RequestTimeout caps every request's context deadline; a request's
	// own timeout_ms can only tighten it (0 = no server-side cap).
	RequestTimeout time.Duration
	// Cluster, when set, makes this server one member of a consistent-hash
	// cache cluster: the node is attached to the resident cache (peer
	// lookup on miss, owner push on fill) and its internal endpoints are
	// mounted under /v1/peer/ — outside admission control and tenant
	// quotas, since peers must stay reachable exactly when the public
	// side is saturated.
	Cluster *cluster.Node
	// TenantRPS, when positive, enables per-tenant token-bucket quotas on
	// the public POST endpoints, keyed on the X-Tenant header (absent
	// header = the anonymous tenant). Each tenant refills at TenantRPS
	// requests/second up to TenantBurst tokens (0 = max(1, ceil(rps)));
	// beyond that requests get 429 + Retry-After. Quotas sit in front of
	// the shared inflight/queue admission control.
	TenantRPS   float64
	TenantBurst int
	// Obs, when set, is the resident fleet-statistics table (a daemon
	// injects the one it loaded from its stats sidecar). Otherwise a
	// fresh empty table is built. Every synthesis observation — winners,
	// race losers, failed racers, cache hits — feeds it, and GET /v1/stats
	// reads it.
	Obs *obs.Stats
	// Tracer, when set, samples request traces: each sampled POST request
	// gets a span tree from admission down to individual syntheses,
	// retrievable from GET /debug/trace. Requests arriving with a
	// traceparent header join the originating trace regardless of the
	// local sample ratio. Nil = tracing off (span plumbing then costs nil
	// checks only).
	Tracer *trace.Tracer
	// Logger, when set, receives one structured line per completed public
	// request (request_id, endpoint, status, queue wait, duration, and
	// trace_id when sampled).
	Logger *slog.Logger
	// Fault, when set, is the fault injector every public request carries
	// on its context (synthd -fault-spec). Sites fire down the whole
	// stack — handlers, backend calls, racers, peer lookups. Nil costs a
	// nil check per request.
	Fault *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.DefaultBackend == "" {
		c.DefaultBackend = "auto"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	return c
}

// Server is the resident synthesis service: one shared sharded cache, one
// admission-controlled worker pool, and the four HTTP endpoints. Create
// with New, mount via Handler, persist the cache with Cache().SaveFile on
// shutdown.
type Server struct {
	cfg     Config
	cache   *synth.Cache
	sem     chan struct{} // held by executing requests
	pending atomic.Int64  // executing + queued
	// tReclaimed totals the T gates the post-lowering optimizer removed
	// across every compile served (the /metrics
	// synthd_t_reclaimed_total counter).
	tReclaimed atomic.Int64
	// blocksFused / blockCXSaved total what the fuse2q pass did across
	// every compile served (the synthd_blocks_fused_total and
	// synthd_block_cx_saved_total counters).
	blocksFused  atomic.Int64
	blockCXSaved atomic.Int64
	metrics      *metrics
	obs          *obs.Stats
	quota        *tenantLimiter // nil when quotas are disabled
	mux          *http.ServeMux
	start        time.Time
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		if cfg.CacheShards > 0 {
			cache = synth.NewCacheSharded(cfg.CacheSize, cfg.CacheShards)
		} else {
			// Auto-sharded: 16 ways at default capacity, 1 for small caches.
			cache = synth.NewCache(cfg.CacheSize)
		}
	}
	ob := cfg.Obs
	if ob == nil {
		ob = obs.New()
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		sem:     make(chan struct{}, cfg.MaxInflight),
		metrics: newMetrics(),
		obs:     ob,
		start:   time.Now(),
	}
	if cfg.TenantRPS > 0 {
		s.quota = newTenantLimiter(cfg.TenantRPS, cfg.TenantBurst)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.instrument("/v1/compile", s.handleCompile))
	s.mux.HandleFunc("POST /v1/synthesize", s.instrument("/v1/synthesize", s.handleSynthesize))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /debug/trace", s.HandleDebugTrace)
	if cfg.Cluster != nil {
		cfg.Cluster.Attach(cache)
		// The peer stats payload is this node's local view in wire form;
		// the schema is ours on both ends, the cluster just moves bytes.
		cfg.Cluster.SetStatsProvider(func() ([]byte, error) {
			return json.Marshal(s.localStats())
		})
		s.mux.Handle("/v1/peer/", cfg.Cluster.Handler())
	}
	return s
}

// nodeName is the "node" attribute stamped on trace roots and fragments —
// the ring ID in cluster mode, the daemon name otherwise.
func (s *Server) nodeName() string {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.SelfID()
	}
	return "synthd"
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the resident cache (for snapshot flush and tests).
func (s *Server) Cache() *synth.Cache { return s.cache }

// Obs exposes the resident statistics table (for sidecar persistence on
// shutdown and tests).
func (s *Server) Obs() *obs.Stats { return s.obs }

// apiError carries an HTTP status with a message for the error body.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// handler is the typed shape of the two POST endpoints: admission and
// metrics live in instrument, the handler just computes a response.
type handler func(w http.ResponseWriter, r *http.Request) (int, error)

// reqInfo is what instrument learned about a request before its handler
// ran, stashed in the request context so handlers can fill the
// wait/service response fields and attach sub-spans to the trace.
type reqInfo struct {
	id       string        // request_id (also the X-Request-Id header)
	wait     time.Duration // admission-queue wait
	admitted time.Time     // when the execution slot was acquired
	span     *trace.Span   // the "serve" span (nil when unsampled)
	traceID  string        // root trace ID ("" when unsampled)
}

type reqInfoKey struct{}

// info returns the reqInfo instrument attached (zero value on contexts
// that never passed through instrument, e.g. direct handler tests).
func info(ctx context.Context) reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(reqInfo)
	return ri
}

// newRequestID draws a 16-hex-digit request ID.
func newRequestID() string { return trace.FormatID(rand.Uint64() | 1) }

// instrument wraps a handler with request identity, tracing, admission
// control and per-endpoint metrics. The handler's returned status (or
// mapped error status) is what the latency histogram and request counters
// record; the latency histogram sees service time only — queue wait is
// split into synthd_queue_wait_seconds.
func (s *Server) instrument(endpoint string, h handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := newRequestID()
		w.Header().Set("X-Request-Id", reqID)
		// Tenant quota first: a throttled tenant must not even occupy a
		// queue slot, or a flooding tenant would still crowd the queue.
		if s.quota != nil {
			if ok, retry := s.quota.allow(r.Header.Get("X-Tenant"), start); !ok {
				secs := int(retry/time.Second) + 1
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeJSON(w, http.StatusTooManyRequests,
					ErrorResponse{Error: fmt.Sprintf("serve: tenant over quota, retry in %ds", secs)})
				s.metrics.record(endpoint, http.StatusTooManyRequests, time.Since(start))
				return
			}
		}
		// Root span: join a propagated trace when the request carries a
		// traceparent header (the origin already sampled), else apply the
		// local sample ratio. Both no-op to nil when Tracer is unset.
		var root *trace.Span
		if tid, sid, ok := trace.ParseHeaderValue(r.Header.Get(trace.Header)); ok {
			root = s.cfg.Tracer.StartRemote(tid, sid, endpoint)
		} else {
			root = s.cfg.Tracer.Start(endpoint)
		}
		root.SetAttr("request_id", reqID)
		root.SetAttr("node", s.nodeName())
		if root != nil {
			w.Header().Set("X-Trace-Id", trace.FormatID(root.TraceID()))
		}
		defer root.End()

		waitSpan := root.Child("queue.wait")
		release, err := s.admit(r.Context())
		wait := time.Since(start)
		waitSpan.End()
		if err != nil {
			// Only a genuine capacity refusal counts as a rejection and
			// advertises Retry-After; a client that vanished while queued
			// takes the ordinary cancellation status.
			status := errStatus(err)
			if status == http.StatusServiceUnavailable {
				s.metrics.reject()
				w.Header().Set("Retry-After", "1")
			}
			root.SetAttr("status", status)
			writeJSON(w, status, ErrorResponse{Error: err.Error()})
			s.metrics.record(endpoint, status, time.Since(start))
			s.logRequest(reqID, endpoint, status, wait, time.Since(start), root)
			return
		}
		defer release()
		s.metrics.observeQueueWait(wait)

		admitted := time.Now()
		serveSpan := root.Child("serve")
		ri := reqInfo{id: reqID, wait: wait, admitted: admitted, span: serveSpan}
		if root != nil {
			ri.traceID = trace.FormatID(root.TraceID())
		}
		ctx := context.WithValue(trace.NewContext(r.Context(), serveSpan), reqInfoKey{}, ri)
		ctx = fault.NewContext(ctx, s.cfg.Fault)
		// Every panic recovered below this point — a backend, a racer, or
		// the handler itself — lands here: one counter bump, one log line
		// with the trimmed stack and the request it happened under.
		ctx = fault.WithPanicObserver(ctx, func(pe *fault.PanicError) {
			s.metrics.panicAt(pe.Site)
			if s.cfg.Logger != nil {
				s.cfg.Logger.Error("recovered panic",
					"site", pe.Site,
					"request_id", reqID,
					"endpoint", endpoint,
					"value", fmt.Sprint(pe.Value),
					"stack", pe.Stack)
			}
		})
		status, err := s.serveContained(endpoint, h, w, r.WithContext(ctx))
		serveSpan.End()
		if err != nil {
			status = errStatus(err)
			writeJSON(w, status, ErrorResponse{Error: err.Error()})
		}
		root.SetAttr("status", status)
		service := time.Since(admitted)
		s.metrics.record(endpoint, status, service)
		s.logRequest(reqID, endpoint, status, wait, service, root)
	}
}

// serveContained is the handler containment boundary: a panic anywhere
// in handler code that no inner boundary caught becomes this request's
// 500 — with its stack logged and counted — instead of killing the
// process (net/http would otherwise also kill just the connection, but
// silently and without the metric). The handler:<endpoint> fault site
// fires here.
func (s *Server) serveContained(endpoint string, h handler, w http.ResponseWriter, r *http.Request) (status int, err error) {
	site := "handler:" + endpoint
	defer fault.Recover(r.Context(), site, &err)
	if ferr := fault.At(r.Context(), site); ferr != nil {
		return 0, ferr
	}
	return h(w, r)
}

// logRequest emits the per-request structured log line when a logger is
// configured.
func (s *Server) logRequest(reqID, endpoint string, status int, wait, service time.Duration, root *trace.Span) {
	if s.cfg.Logger == nil {
		return
	}
	attrs := []any{
		"request_id", reqID,
		"endpoint", endpoint,
		"status", status,
		"queue_wait_ms", float64(wait) / float64(time.Millisecond),
		"service_ms", float64(service) / float64(time.Millisecond),
	}
	if root != nil {
		attrs = append(attrs, "trace_id", trace.FormatID(root.TraceID()))
	}
	s.cfg.Logger.Info("request", attrs...)
}

// errStatus maps a handler error to its HTTP status: explicit apiErrors
// keep theirs, deadline expiry is 504, client cancellation 499 (nginx's
// convention; the client is gone either way), anything else 500.
func errStatus(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// admit reserves an execution slot, waiting in the bounded queue when the
// pool is busy. It refuses immediately once executing+queued would exceed
// MaxInflight+MaxQueue, and gives up when the request's context ends
// first. The returned release must be called exactly once.
func (s *Server) admit(ctx context.Context) (func(), error) {
	limit := int64(s.cfg.MaxInflight + s.cfg.MaxQueue)
	if s.pending.Add(1) > limit {
		s.pending.Add(-1)
		return nil, &apiError{
			status: http.StatusServiceUnavailable,
			msg:    fmt.Sprintf("serve: at capacity (%d executing + %d queued)", s.cfg.MaxInflight, s.cfg.MaxQueue),
		}
	}
	select {
	case s.sem <- struct{}{}:
		return func() {
			<-s.sem
			s.pending.Add(-1)
		}, nil
	case <-ctx.Done():
		s.pending.Add(-1)
		return nil, fmt.Errorf("serve: canceled while queued: %w", ctx.Err())
	}
}

// requestContext layers the server cap and the request's own timeout_ms
// onto the connection context — the deadline every synthesis under this
// request sees, all the way down into CompileBatch's worker pool.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	if timeoutMs > 0 {
		prev := cancel
		var inner context.CancelFunc
		ctx, inner = context.WithTimeout(ctx, time.Duration(timeoutMs)*time.Millisecond)
		cancel = func() { inner(); prev() }
	}
	return ctx, cancel
}

// maxBody bounds request bodies; QASM for even the largest suite circuits
// is well under this.
const maxBody = 32 << 20

// decode parses the JSON body into v.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		return badRequest("decoding request: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// backend resolves a request's backend name against the registry.
func (s *Server) backend(name string) (synth.Backend, string, error) {
	if name == "" {
		name = s.cfg.DefaultBackend
	}
	be, ok := synth.Lookup(name)
	if !ok {
		return nil, name, badRequest("unknown backend %q (have %s)", name, strings.Join(synth.List(), ", "))
	}
	return be, name, nil
}

// handleCompile runs one QASM circuit through a pipeline wired to the
// resident cache — the warm state every request shares.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) (int, error) {
	var req CompileRequest
	if err := decode(w, r, &req); err != nil {
		return 0, err
	}
	if strings.TrimSpace(req.QASM) == "" {
		return 0, badRequest("empty qasm")
	}
	circ, err := circuit.ParseQASM(req.QASM)
	if err != nil {
		return 0, badRequest("parsing qasm: %v", err)
	}
	_, name, err := s.backend(req.Backend)
	if err != nil {
		return 0, err
	}
	ir, ok := synth.ParseIR(req.IR)
	if !ok {
		return 0, badRequest("unknown ir %q (have auto, u3, rz)", req.IR)
	}
	strat, ok := synth.ParseBudgetStrategy(req.Budget)
	if !ok {
		return 0, badRequest("unknown budget %q (have uniform, weighted)", req.Budget)
	}

	opts := []synth.Option{
		synth.WithRequest(synth.Request{
			Epsilon: req.RotEps, Samples: req.Samples, TBudget: req.TBudget, Seed: req.Seed,
		}),
		synth.WithWorkers(s.cfg.Workers),
		synth.WithIR(ir),
		synth.WithCache(s.cache),
		synth.WithSynthObserver(s.observe),
	}
	if req.Eps > 0 {
		opts = append(opts, synth.WithCircuitEpsilon(req.Eps), synth.WithBudgetStrategy(strat))
	}
	if req.OptLevel < 0 {
		return 0, badRequest("negative opt_level %d", req.OptLevel)
	}
	if len(req.Passes) > 0 && (req.OptLevel > 0 || len(req.Optimizers) > 0) {
		// An explicit pass list overrides the canned sequence, so the opt
		// knobs would be silently ignored — refuse the combination.
		return 0, badRequest("opt_level/optimizers cannot be combined with passes; add optrot/optct to the pass list instead")
	}
	if req.OptLevel > 0 {
		opts = append(opts, synth.WithOptimize(req.OptLevel))
	}
	if req.Fuse2Q {
		if len(req.Passes) > 0 {
			return 0, badRequest("fuse_2q cannot be combined with passes; add fuse2q to the pass list instead")
		}
		opts = append(opts, synth.WithFuseBlocks())
	}
	if len(req.Optimizers) > 0 {
		for _, n := range req.Optimizers {
			if _, ok := optimize.Lookup(n); !ok {
				return 0, badRequest("unknown optimizer %q (have %s)", n, strings.Join(optimize.List(), ", "))
			}
		}
		opts = append(opts, synth.WithOptimizers(req.Optimizers...))
	}
	if len(req.Passes) > 0 {
		var ps []synth.Pass
		for _, n := range req.Passes {
			p, ok := synth.LookupPass(strings.TrimSpace(n))
			if !ok {
				return 0, badRequest("unknown pass %q (have %s)", n, strings.Join(synth.PassNames(), ", "))
			}
			ps = append(ps, p)
		}
		opts = append(opts, synth.WithPasses(ps...))
	}
	pl, err := synth.NewPipelineFor(name, opts...)
	if err != nil {
		return 0, badRequest("%v", err)
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := pl.Run(ctx, circ)
	if err != nil {
		return 0, err
	}
	for _, pt := range res.Stats.Passes {
		s.metrics.observePass(pt.Name, pt.Wall)
	}

	st := NewCompileStats(res, pl.Passes(), req.Eps, strat)
	ri := info(r.Context())
	st.QueueWaitMs = float64(ri.wait) / float64(time.Millisecond)
	if !ri.admitted.IsZero() {
		st.ServiceMs = float64(time.Since(ri.admitted)) / float64(time.Millisecond)
	}
	st.TraceID = ri.traceID
	if st.TSaved > 0 {
		s.tReclaimed.Add(int64(st.TSaved))
	}
	if st.BlocksFused > 0 {
		s.blocksFused.Add(int64(st.BlocksFused))
		s.blockCXSaved.Add(int64(st.BlockCXSaved))
	}
	writeJSON(w, http.StatusOK, CompileResponse{QASM: res.Circuit.QASM(), Stats: st})
	return http.StatusOK, nil
}

// handleSynthesize lowers a batch of rotations through CompileBatch over
// the resident cache.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) (int, error) {
	var req SynthesizeRequest
	if err := decode(w, r, &req); err != nil {
		return 0, err
	}
	if len(req.Rotations) == 0 {
		return 0, badRequest("empty rotations")
	}
	be, _, err := s.backend(req.Backend)
	if err != nil {
		return 0, err
	}
	targets := make([]qmat.M2, len(req.Rotations))
	for i, rot := range req.Rotations {
		op, err := rot.op()
		if err != nil {
			return 0, err
		}
		targets[i] = op.Matrix1Q()
	}

	comp := &synth.Compiler{
		Backend: be,
		Req:     synth.Request{Epsilon: req.Eps, Samples: req.Samples, TBudget: req.TBudget, Seed: req.Seed},
		Workers: s.cfg.Workers,
		Cache:   s.cache,
		Observe: s.observe,
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	results, stats, err := comp.CompileBatchStats(ctx, targets)
	if err != nil {
		return 0, err
	}

	ri := info(r.Context())
	resp := SynthesizeResponse{
		Results:     make([]SynthesizeResult, len(results)),
		Hits:        int64(stats.Hits),
		Misses:      int64(stats.Misses),
		QueueWaitMs: float64(ri.wait) / float64(time.Millisecond),
		TraceID:     ri.traceID,
	}
	if !ri.admitted.IsZero() {
		resp.ServiceMs = float64(time.Since(ri.admitted)) / float64(time.Millisecond)
	}
	for i, res := range results {
		sr := SynthesizeResult{
			Seq:      res.Seq.String(),
			Error:    res.Error,
			TCount:   res.TCount,
			Clifford: res.Clifford,
			Backend:  res.Backend,
			WallMs:   float64(res.Wall) / float64(time.Millisecond),
		}
		if res.Err != nil {
			// A contained backend panic: this op failed, the batch did
			// not. The client sees which rotations to resubmit. Seq is
			// cleared — the empty sequence would otherwise render as
			// the identity "I", which reads as a (wrong) result.
			sr.Failure = res.Err.Error()
			sr.Seq = ""
			resp.Failed++
		}
		resp.Results[i] = sr
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// op converts a wire Rotation to a circuit op on qubit 0 (the qubit index
// is irrelevant to single-qubit synthesis).
func (rot Rotation) op() (circuit.Op, error) {
	var g circuit.GateType
	switch strings.ToLower(rot.Gate) {
	case "rx":
		g = circuit.RX
	case "ry":
		g = circuit.RY
	case "rz":
		g = circuit.RZ
	case "u3":
		g = circuit.U3
	default:
		return circuit.Op{}, badRequest("unknown rotation gate %q (have rx, ry, rz, u3)", rot.Gate)
	}
	return circuit.Op{G: g, Q: [2]int{0, -1}, P: rot.Params}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	h := Health{
		Status:      "ok",
		Backends:    synth.List(),
		Default:     s.cfg.DefaultBackend,
		CacheSize:   st.Size,
		CacheCap:    st.Cap,
		CacheShards: s.cache.Shards(),
		UptimeMs:    time.Since(s.start).Milliseconds(),
	}
	if n := s.cfg.Cluster; n != nil {
		h.NodeID = n.SelfID()
		h.ClusterSize = n.Ring().Size()
		h.Breakers = n.BreakerStates()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	inflight := len(s.sem)
	queued := int(s.pending.Load()) - inflight
	if queued < 0 {
		queued = 0
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, []scrapeMetric{
		{"synthd_cache_hits_total", "Cache hits across all requests since start.", "counter", float64(st.Hits)},
		{"synthd_cache_misses_total", "Cache misses across all requests since start.", "counter", float64(st.Misses)},
		{"synthd_cache_entries", "Live entries in the synthesis cache.", "gauge", float64(st.Size)},
		{"synthd_cache_capacity", "Entry capacity of the synthesis cache.", "gauge", float64(st.Cap)},
		{"synthd_inflight", "Requests currently executing.", "gauge", float64(inflight)},
		{"synthd_queue_depth", "Requests waiting for an execution slot.", "gauge", float64(queued)},
		{"synthd_t_reclaimed_total", "T gates removed by the post-lowering optimizer across all compiles.", "counter", float64(s.tReclaimed.Load())},
		{"synthd_blocks_fused_total", "Two-qubit blocks replaced by KAK re-synthesis across all compiles.", "counter", float64(s.blocksFused.Load())},
		{"synthd_block_cx_saved_total", "Two-qubit gates (CX units) saved by block fusion across all compiles.", "counter", float64(s.blockCXSaved.Load())},
	})
	if n := s.cfg.Cluster; n != nil {
		cs := n.Stats()
		fmt.Fprintf(w, "# HELP synthd_peer_lookups_total Single-hop peer cache lookups by result (error includes timeouts and dead peers).\n")
		fmt.Fprintf(w, "# TYPE synthd_peer_lookups_total counter\n")
		fmt.Fprintf(w, "synthd_peer_lookups_total{result=\"hit\"} %d\n", cs.PeerHits)
		fmt.Fprintf(w, "synthd_peer_lookups_total{result=\"miss\"} %d\n", cs.PeerMisses)
		fmt.Fprintf(w, "synthd_peer_lookups_total{result=\"error\"} %d\n", cs.PeerErrors)
		fmt.Fprintf(w, "# HELP synthd_peer_pushes_total Owner fill pushes attempted after local syntheses.\n")
		fmt.Fprintf(w, "# TYPE synthd_peer_pushes_total counter\n")
		fmt.Fprintf(w, "synthd_peer_pushes_total %d\n", cs.Pushes)
		fmt.Fprintf(w, "# HELP synthd_ring_keys_owned Live local cache entries whose consistent-hash owner is this node.\n")
		fmt.Fprintf(w, "# TYPE synthd_ring_keys_owned gauge\n")
		fmt.Fprintf(w, "synthd_ring_keys_owned %d\n", n.KeysOwned())
		fmt.Fprintf(w, "# HELP synthd_seeded_entries Entries loaded from the ring successor's snapshot at join.\n")
		fmt.Fprintf(w, "# TYPE synthd_seeded_entries gauge\n")
		fmt.Fprintf(w, "synthd_seeded_entries %d\n", cs.Seeded)
		if brs := n.BreakerStates(); len(brs) > 0 {
			fmt.Fprintf(w, "# HELP synthd_peer_breaker_state Per-peer circuit breaker state (0 closed, 1 half-open, 2 open).\n")
			fmt.Fprintf(w, "# TYPE synthd_peer_breaker_state gauge\n")
			for _, br := range brs {
				v := 0
				switch br.State {
				case "half-open":
					v = 1
				case "open":
					v = 2
				}
				fmt.Fprintf(w, "synthd_peer_breaker_state{peer=%q} %d\n", br.Peer, v)
			}
			fmt.Fprintf(w, "# HELP synthd_peer_breaker_trips_total Breaker open transitions across all peers.\n")
			fmt.Fprintf(w, "# TYPE synthd_peer_breaker_trips_total counter\n")
			fmt.Fprintf(w, "synthd_peer_breaker_trips_total %d\n", cs.BreakerTrips)
			fmt.Fprintf(w, "# HELP synthd_peer_breaker_skips_total Outbound peer calls skipped because the peer's breaker was open.\n")
			fmt.Fprintf(w, "# TYPE synthd_peer_breaker_skips_total counter\n")
			fmt.Fprintf(w, "synthd_peer_breaker_skips_total %d\n", cs.BreakerSkips)
		}
	}
	if s.quota != nil {
		counts := s.quota.throttledByTenant()
		fmt.Fprintf(w, "# HELP synthd_tenant_throttled_total Requests refused by per-tenant quota, by tenant.\n")
		fmt.Fprintf(w, "# TYPE synthd_tenant_throttled_total counter\n")
		for _, t := range sortedKeys(counts) {
			fmt.Fprintf(w, "synthd_tenant_throttled_total{tenant=%q} %d\n", t, counts[t])
		}
	}
	s.writeObsMetrics(w)
}

// HandleDebugTrace serves GET /debug/trace: without ?id= it lists the
// ring of recent kept traces (newest first, one line each); with
// ?id=<trace id> it renders every retained span tree of that trace —
// local roots and remote fragments alike — as the compact text format,
// or as Chrome trace_event JSON with &format=chrome (load the saved body
// in chrome://tracing or Perfetto). Exported so a daemon can also mount
// it on a private -debug-addr listener next to net/http/pprof.
func (s *Server) HandleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.cfg.Tracer
	if tr == nil {
		http.Error(w, "tracing disabled (start with -trace-sample > 0)", http.StatusNotFound)
		return
	}
	idStr := r.URL.Query().Get("id")
	if idStr == "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		n := 0
		for _, root := range tr.Recent(0) {
			fmt.Fprintf(w, "%s %12s %s", trace.FormatID(root.TraceID()), root.Duration().Round(time.Microsecond), root.Name())
			if id := root.Attr("request_id"); id != "" {
				fmt.Fprintf(w, " request_id=%s", id)
			}
			fmt.Fprintln(w)
			n++
		}
		if n == 0 {
			fmt.Fprintln(w, "no traces retained yet")
		}
		return
	}
	id, ok := trace.ParseID(idStr)
	if !ok {
		http.Error(w, "bad id (want 16 or 32 hex digits)", http.StatusBadRequest)
		return
	}
	roots := tr.Collect(id)
	if len(roots) == 0 {
		http.Error(w, "trace not found (evicted from ring, or never sampled)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, roots...)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	trace.WriteText(w, roots...)
}
