package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/circuit/gen"
	"repro/internal/gates"
	"repro/internal/qmat"
	"repro/synth"
	"repro/synth/serve"
	"repro/synth/serve/client"
)

// testQASM is a small circuit with a repeated nontrivial angle, so a warm
// second compile must report cache hits.
const testQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
cx q[0],q[1];
rz(0.7300000000) q[0];
rz(0.7300000000) q[1];
rz(1.3100000000) q[0];
`

// newTestServer starts an httptest server over a serve.Server and returns
// a client for it.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *client.Client) {
	t.Helper()
	s := serve.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, client.New(hs.URL)
}

// TestCompileEndpoint: a round trip lowers to Clifford+T QASM, and the
// identical second request is served from the warm cache.
func TestCompileEndpoint(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{DefaultBackend: "gridsynth"})
	ctx := context.Background()
	req := serve.CompileRequest{QASM: testQASM, Eps: 0.3}

	cold, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold.QASM, "OPENQASM 2.0") || cold.Stats.TCount == 0 {
		t.Fatalf("implausible lowered circuit: t_count=%d qasm=%q…", cold.Stats.TCount, cold.QASM[:min(80, len(cold.QASM))])
	}
	if cold.Stats.Backend != "gridsynth" || cold.Stats.Misses == 0 {
		t.Fatalf("cold stats: %+v", cold.Stats)
	}

	warm, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Hits == 0 || warm.Stats.Unique != 0 {
		t.Fatalf("second identical compile not served from cache: %+v", warm.Stats)
	}
	if warm.QASM != cold.QASM {
		t.Fatal("warm compile produced a different circuit")
	}
}

// TestCompileValidation: malformed inputs are 400s with a JSON error body,
// not 500s.
func TestCompileValidation(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{})
	ctx := context.Background()
	cases := []struct {
		name string
		req  serve.CompileRequest
	}{
		{"empty qasm", serve.CompileRequest{}},
		{"bad qasm", serve.CompileRequest{QASM: "OPENQASM 2.0;\nnot a gate;"}},
		{"unknown backend", serve.CompileRequest{QASM: testQASM, Backend: "nope"}},
		{"unknown ir", serve.CompileRequest{QASM: testQASM, IR: "zx"}},
		{"unknown budget", serve.CompileRequest{QASM: testQASM, Eps: 0.1, Budget: "exponential"}},
		{"unknown pass", serve.CompileRequest{QASM: testQASM, Passes: []string{"optimize-harder"}}},
	}
	for _, tc := range cases {
		_, err := cl.Compile(ctx, tc.req)
		var ae *client.APIError
		if !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest {
			t.Errorf("%s: want 400 APIError, got %v", tc.name, err)
		}
	}
}

func asAPIError(err error, out **client.APIError) bool {
	ae, ok := err.(*client.APIError)
	if ok {
		*out = ae
	}
	return ok
}

// TestSynthesizeEndpoint: batch results come back in order, repeats are
// cache hits, and sequences actually multiply out to the target rotation.
func TestSynthesizeEndpoint(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{})
	ctx := context.Background()
	resp, err := cl.Synthesize(ctx, serve.SynthesizeRequest{
		Backend: "gridsynth",
		Eps:     1e-2,
		Rotations: []serve.Rotation{
			{Gate: "rz", Params: [3]float64{0.73}},
			{Gate: "rz", Params: [3]float64{0.73}},
			{Gate: "rz", Params: [3]float64{1.31}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(resp.Results))
	}
	if resp.Hits != 1 || resp.Misses != 2 {
		t.Fatalf("accounting: %d hits / %d misses, want 1/2", resp.Hits, resp.Misses)
	}
	for i, res := range resp.Results {
		if res.Seq == "" || res.Backend != "gridsynth" {
			t.Fatalf("result %d: %+v", i, res)
		}
		seq, err := gates.Parse(res.Seq)
		if err != nil {
			t.Fatalf("result %d sequence unparsable: %v", i, err)
		}
		theta := 0.73
		if i == 2 {
			theta = 1.31
		}
		if d := qmat.Distance(seq.Matrix(), qmat.Rz(theta)); d > 1e-2 {
			t.Fatalf("result %d sequence %.3g from target, want <= 1e-2", i, d)
		}
	}

	// Unknown gates and empty batches are 400s.
	for _, bad := range []serve.SynthesizeRequest{
		{},
		{Rotations: []serve.Rotation{{Gate: "cz"}}},
	} {
		_, err := cl.Synthesize(ctx, bad)
		var ae *client.APIError
		if !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest {
			t.Fatalf("want 400 APIError, got %v", err)
		}
	}
}

// TestHealthz reports the registry and cache shape.
func TestHealthz(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{CacheSize: 2048, CacheShards: 8})
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.CacheCap != 2048 || h.CacheShards != 8 {
		t.Fatalf("health: %+v", h)
	}
	found := false
	for _, b := range h.Backends {
		if b == "gridsynth" {
			found = true
		}
	}
	if !found {
		t.Fatalf("health backends missing gridsynth: %v", h.Backends)
	}
}

// TestMetricsExposition: after traffic, the scrape carries cache counters,
// request counters and latency histograms in Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{DefaultBackend: "gridsynth"})
	ctx := context.Background()
	if _, err := cl.Compile(ctx, serve.CompileRequest{QASM: testQASM, Eps: 0.3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Compile(ctx, serve.CompileRequest{QASM: testQASM, Eps: 0.3}); err != nil {
		t.Fatal(err)
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"synthd_cache_hits_total",
		"synthd_cache_misses_total",
		"synthd_queue_depth",
		`synthd_requests_total{endpoint="/v1/compile",code="200"} 2`,
		`synthd_request_seconds_count{endpoint="/v1/compile"} 2`,
		"synthd_request_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
	// The warm compile turned repeats into hits: the gauge must be > 0.
	var hits float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "synthd_cache_hits_total ") {
			fmt.Sscanf(line, "synthd_cache_hits_total %g", &hits)
		}
	}
	if hits == 0 {
		t.Fatal("cache hits gauge is zero after a warm compile")
	}
}

// slowBackend blocks until its context is done or released; it lets the
// admission tests hold execution slots deterministically.
type slowBackend struct {
	name    string
	started chan struct{}
	release chan struct{}
	calls   atomic.Int64
}

func (b *slowBackend) Name() string { return b.name }

func (b *slowBackend) Synthesize(ctx context.Context, u qmat.M2, req synth.Request) (synth.Result, error) {
	b.calls.Add(1)
	select {
	case b.started <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return synth.Result{}, ctx.Err()
	case <-b.release:
	}
	return synth.Result{Seq: gates.Sequence{gates.T}, TCount: 1, Backend: b.name}, nil
}

var slowSeq atomic.Int64

// registerSlow registers a fresh blocking backend under a unique name (the
// registry is process-global and rejects duplicates).
func registerSlow(t *testing.T) *slowBackend {
	t.Helper()
	b := &slowBackend{
		name:    fmt.Sprintf("servetest-slow-%d", slowSeq.Add(1)),
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	if err := synth.Register(b.name, b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAdmissionControl: with one execution slot and no queue, a request
// arriving while another executes is refused with 503 + Retry-After, and
// the rejection shows up in the metrics.
func TestAdmissionControl(t *testing.T) {
	slow := registerSlow(t)
	s, cl := newTestServer(t, serve.Config{
		DefaultBackend: slow.name,
		MaxInflight:    1,
		MaxQueue:       1,
	})
	_ = s

	ctx := context.Background()
	rot := []serve.Rotation{{Gate: "rz", Params: [3]float64{0.41}}}
	errc := make(chan error, 2)
	// First request occupies the slot; second waits in the queue.
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			_, err := cl.Synthesize(ctx, serve.SynthesizeRequest{
				Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{0.41 + float64(i)*0.1}}},
			})
			errc <- err
		}()
	}
	<-slow.started // executing
	// Give the queued request time to enter the bounded queue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		text, err := cl.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(text, "synthd_queue_depth 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued request never showed in queue_depth:\n%s", text)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Third request: slot busy, queue full → immediate 503.
	_, err := cl.Synthesize(ctx, serve.SynthesizeRequest{Rotations: rot})
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 APIError, got %v", err)
	}

	close(slow.release)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "synthd_rejected_total 1") {
		t.Fatalf("rejection not counted:\n%s", text)
	}
}

// TestRequestTimeout: the server-side cap propagates as a context deadline
// into the synthesis pool and surfaces as 504.
func TestRequestTimeout(t *testing.T) {
	slow := registerSlow(t)
	_, cl := newTestServer(t, serve.Config{
		DefaultBackend: slow.name,
		RequestTimeout: 50 * time.Millisecond,
	})
	start := time.Now()
	_, err := cl.Synthesize(context.Background(), serve.SynthesizeRequest{
		Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{2.21}}},
	})
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("want 504 APIError, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %s — deadline did not propagate", elapsed)
	}
}

// qaoaQASM returns the QAOA acceptance workload as OpenQASM.
func qaoaQASM() string { return gen.QAOAMaxCut(6, 1, 1).QASM() }

// TestCompileOptLevel: opt_level=2 against the sk baseline strictly
// reclaims T gates (t_count_before > t_count_after), the daemon's
// t-reclaimed counter advances, and opt_level=0 reports no optimizer
// fields. Unknown optimizer names are 400s.
func TestCompileOptLevel(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{DefaultBackend: "gridsynth"})
	ctx := context.Background()

	plain, err := cl.Compile(ctx, serve.CompileRequest{QASM: qaoaQASM(), Eps: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.TCountBefore != 0 || plain.Stats.TCountAfter != 0 || plain.Stats.OptIterations != 0 {
		t.Fatalf("opt fields set without opt_level: %+v", plain.Stats)
	}

	opt, err := cl.Compile(ctx, serve.CompileRequest{
		QASM: qaoaQASM(), Eps: 0.3, Backend: "sk", OptLevel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := opt.Stats
	if st.TCountBefore <= st.TCountAfter {
		t.Fatalf("want strict T reclamation on the sk baseline, got before=%d after=%d", st.TCountBefore, st.TCountAfter)
	}
	if st.TSaved != st.TCountBefore-st.TCountAfter || st.TCount != st.TCountAfter {
		t.Fatalf("inconsistent opt stats: %+v", st)
	}
	if st.OptIterations < 1 {
		t.Fatalf("no optimizer iterations reported: %+v", st)
	}
	if !strings.Contains(st.Passes, "optct") || !strings.Contains(st.Passes, "optrot") {
		t.Fatalf("optimizer passes missing from pass list %q", st.Passes)
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var reclaimed int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "synthd_t_reclaimed_total ") {
			fmt.Sscanf(line, "synthd_t_reclaimed_total %d", &reclaimed)
		}
	}
	if want := int64(st.TSaved); reclaimed != want {
		t.Fatalf("synthd_t_reclaimed_total = %d, want %d", reclaimed, want)
	}

	// Named rule chains work, and unknown names are refused up front.
	named, err := cl.Compile(ctx, serve.CompileRequest{
		QASM: qaoaQASM(), Eps: 0.3, Backend: "sk", Optimizers: []string{"foldphases", "peephole"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if named.Stats.TCountBefore <= named.Stats.TCountAfter {
		t.Fatalf("named optimizer chain reclaimed nothing: %+v", named.Stats)
	}
	_, err = cl.Compile(ctx, serve.CompileRequest{QASM: qaoaQASM(), Optimizers: []string{"nope"}})
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("unknown optimizer: want 400 APIError, got %v", err)
	}
}

// TestTenantQuota: with per-tenant quotas on, a tenant that exhausts its
// burst gets 429 + Retry-After and shows up in the throttle metric, while
// other tenants are untouched.
func TestTenantQuota(t *testing.T) {
	s := serve.New(serve.Config{DefaultBackend: "gridsynth", TenantRPS: 0.1, TenantBurst: 1})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	ctx := context.Background()
	req := serve.SynthesizeRequest{Eps: 1e-2, Rotations: []serve.Rotation{{Gate: "rz", Params: [3]float64{0.41}}}}

	alice := client.New(hs.URL, client.WithTenant("alice"))
	if _, err := alice.Synthesize(ctx, req); err != nil {
		t.Fatalf("first request inside the burst: %v", err)
	}
	_, err := alice.Synthesize(ctx, req)
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("second request: want 429 APIError, got %v", err)
	}

	// The raw rejection carries Retry-After (the client API hides headers).
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/synthesize",
		strings.NewReader(`{"eps":0.01,"rotations":[{"gate":"rz","params":[0.41,0,0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("X-Tenant", "alice")
	res, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw throttled request: status %d, want 429", res.StatusCode)
	}
	ra, err := strconv.Atoi(res.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", res.Header.Get("Retry-After"))
	}

	// An unrelated tenant still has its full burst.
	bob := client.New(hs.URL, client.WithTenant("bob"))
	if _, err := bob.Synthesize(ctx, req); err != nil {
		t.Fatalf("other tenant throttled by alice's quota: %v", err)
	}

	cl := client.New(hs.URL)
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `synthd_tenant_throttled_total{tenant="alice"} 2`) {
		t.Fatalf("metrics missing alice's throttle count:\n%s", text)
	}
	if strings.Contains(text, `synthd_tenant_throttled_total{tenant="bob"}`) {
		t.Fatal("metrics report throttles for a never-throttled tenant")
	}
}
