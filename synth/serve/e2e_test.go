package serve_test

import (
	"bufio"
	"context"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/suite"
	"repro/synth/serve"
	"repro/synth/serve/client"
)

// daemon is one running synthd subprocess.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon builds nothing — the binary is shared per test run — and
// boots synthd on a random port, parsing the listen line from stdout.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	return startDaemonStderr(t, bin, os.Stderr, args...)
}

// startDaemonStderr is startDaemon with the subprocess's stderr routed
// to an arbitrary writer, for tests that assert on the daemon's logs.
func startDaemonStderr(t *testing.T, bin string, stderr io.Writer, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on ") {
				lines <- strings.TrimSpace(line[strings.Index(line, "http://"):])
				return
			}
		}
		close(lines)
	}()
	select {
	case base, ok := <-lines:
		if !ok {
			cmd.Process.Kill()
			t.Fatal("synthd exited without printing a listen address")
		}
		d := &daemon{cmd: cmd, base: base}
		t.Cleanup(func() { d.kill() })
		return d
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("synthd did not print a listen address in time")
		return nil
	}
}

// stop sends SIGTERM and waits for a clean exit (the graceful path that
// flushes the snapshot).
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("synthd exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		d.kill()
		t.Fatal("synthd did not exit within the drain budget")
	}
}

func (d *daemon) kill() {
	if d.cmd.ProcessState == nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// TestSynthdEndToEnd is the CI smoke: build the real daemon, drive it
// over HTTP with the Go client using the QAOA example circuit, and prove
// the service-layer economics — warm-cache hits within a daemon lifetime,
// and a snapshot that survives a graceful restart so the first
// post-restart request is already warm.
func TestSynthdEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the synthd binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "synthd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/synthd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building synthd: %v\n%s", err, out)
	}
	snap := filepath.Join(dir, "cache.json")
	qasm := suite.QAOAMaxCut(6, 1, 1).QASM()
	req := serve.CompileRequest{QASM: qasm, Backend: "gridsynth", Eps: 0.5}
	ctx := context.Background()

	d := startDaemon(t, bin, "-backend", "gridsynth", "-snapshot", snap)
	cl := client.New(d.base)

	if h, err := cl.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, %v", h, err)
	}

	cold, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	if !strings.Contains(cold.QASM, "OPENQASM") || cold.Stats.TCount == 0 {
		t.Fatalf("cold compile produced an implausible circuit: %+v", cold.Stats)
	}
	if cold.Stats.Misses == 0 {
		t.Fatalf("cold compile reported no misses: %+v", cold.Stats)
	}

	warm, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if warm.Stats.Hits == 0 {
		t.Fatalf("second identical compile reported no cache hits: %+v", warm.Stats)
	}
	if warm.QASM != cold.QASM {
		t.Fatal("warm compile produced a different circuit")
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "synthd_cache_hits_total") {
		t.Fatalf("metrics missing cache counters:\n%s", metrics)
	}

	// Graceful shutdown flushes the snapshot…
	d.stop(t)
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not flushed on shutdown: %v", err)
	}

	// …and a restarted daemon serves its first request from the reloaded
	// persistent cache.
	d2 := startDaemon(t, bin, "-backend", "gridsynth", "-snapshot", snap)
	cl2 := client.New(d2.base)
	reloaded, err := cl2.Compile(ctx, req)
	if err != nil {
		t.Fatalf("post-restart compile: %v", err)
	}
	if reloaded.Stats.Hits == 0 || reloaded.Stats.Unique != 0 {
		t.Fatalf("first post-restart compile missed the reloaded cache: %+v", reloaded.Stats)
	}
	if reloaded.QASM != cold.QASM {
		t.Fatal("post-restart compile produced a different circuit")
	}

	// The batch endpoint shares the same resident cache.
	sy, err := cl2.Synthesize(ctx, serve.SynthesizeRequest{
		Backend: "gridsynth",
		Eps:     1e-2,
		Rotations: []serve.Rotation{
			{Gate: "rz", Params: [3]float64{0.377}},
			{Gate: "rz", Params: [3]float64{0.377}},
		},
	})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if len(sy.Results) != 2 || sy.Results[0].Seq == "" || sy.Hits != 1 {
		t.Fatalf("synthesize batch: %+v", sy)
	}
	d2.stop(t)
}
