package serve

import (
	"testing"
	"time"
)

// TestTenantLimiterBucket drives the token bucket on a synthetic clock:
// burst is honored, refill follows rps, tenants are independent, and the
// advertised retry delay is the time to the next whole token.
func TestTenantLimiterBucket(t *testing.T) {
	lim := newTenantLimiter(2, 3) // 2 tokens/s, burst 3
	now := time.Unix(1000, 0)

	for i := 0; i < 3; i++ {
		if ok, _ := lim.allow("a", now); !ok {
			t.Fatalf("request %d inside burst throttled", i)
		}
	}
	ok, retry := lim.allow("a", now)
	if ok {
		t.Fatal("4th instantaneous request allowed past burst 3")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry = %v, want (0, 500ms] at 2 rps", retry)
	}

	// A different tenant has its own untouched bucket.
	if ok, _ := lim.allow("b", now); !ok {
		t.Fatal("tenant b throttled by tenant a's spend")
	}

	// After the advertised wait, exactly one token is back.
	now = now.Add(retry)
	if ok, _ := lim.allow("a", now); !ok {
		t.Fatal("request after advertised Retry-After still throttled")
	}
	if ok, _ := lim.allow("a", now); ok {
		t.Fatal("second request after a one-token refill allowed")
	}

	// Refill is capped at burst: a long idle stretch doesn't bank tokens.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := lim.allow("a", now); !ok {
			t.Fatalf("request %d after long idle throttled (burst not restored)", i)
		}
	}
	if ok, _ := lim.allow("a", now); ok {
		t.Fatal("idle time banked more than burst")
	}

	got := lim.throttledByTenant()
	if got["a"] < 2 {
		t.Fatalf("throttle accounting for a = %d, want >= 2", got["a"])
	}
	if _, present := got["b"]; present {
		t.Fatal("never-throttled tenant appears in throttle counts")
	}
}

// TestTenantLimiterBurstDefault: burst <= 0 falls back to max(1, ceil(rps)).
func TestTenantLimiterBurstDefault(t *testing.T) {
	now := time.Unix(1000, 0)
	lim := newTenantLimiter(2.5, 0) // ceil(2.5) = 3
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := lim.allow("t", now); ok {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("default burst at 2.5 rps allowed %d, want 3", allowed)
	}
	slow := newTenantLimiter(0.01, 0) // tiny rps still admits one
	if ok, _ := slow.allow("t", now); !ok {
		t.Fatal("sub-1 rps quota admitted nothing")
	}
}
