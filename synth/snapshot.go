package synth

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/circuit"
	"repro/internal/gates"
)

// SnapshotVersion is the on-disk snapshot format version. LoadSnapshot
// rejects files written by an incompatible future format instead of
// guessing at their contents.
const SnapshotVersion = 1

// snapshotFile is the persisted form of a Cache: the format version plus
// every live entry, ordered least- to most-recently used (per shard), so a
// reload reconstructs recency by replaying Puts in file order. Counters
// are process statistics and are deliberately not persisted — a restarted
// daemon starts its accounting at zero with a warm entry set.
type snapshotFile struct {
	Version int             `json:"version"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry flattens one (Key, Entry) pair. The gate sequence is
// stored as space-separated mnemonics (gates.Sequence.String), the one
// stable, human-auditable spelling the gates package already round-trips.
type snapshotEntry struct {
	Gate    uint8   `json:"gate"`
	A       int64   `json:"a"`
	B       int64   `json:"b,omitempty"`
	C       int64   `json:"c,omitempty"`
	Eps     int64   `json:"eps"`
	Cfg     int64   `json:"cfg"`
	Scope   string  `json:"scope"`
	Seq     string  `json:"seq"`
	Err     float64 `json:"err"`
	Backend string  `json:"backend,omitempty"`
}

// Snapshot writes the cache's live entries to w as versioned JSON — the
// persistence tier synthd flushes on graceful shutdown and reloads at
// start, so synthesized sequences survive restarts. Entries are emitted
// least-recently-used first, round-robin across shards, so every shard's
// hottest entries cluster at the file's tail: LoadSnapshot replays the
// file in order as Puts, and a reload into a cache with a different shard
// count or a smaller capacity keeps (approximately — recency is ranked
// per shard, not globally timestamped) the most-recently-used entries.
// Concurrent Get/Put during a snapshot are safe; the snapshot then
// reflects some interleaving of them.
func (c *Cache) Snapshot(w io.Writer) error {
	// Collect each shard LRU→MRU, then interleave by recency rank.
	perShard := make([][]snapshotEntry, len(c.shards))
	maxLen := 0
	for i, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			n := el.Value.(*cacheNode)
			perShard[i] = append(perShard[i], snapshotEntry{
				Gate:    uint8(n.k.Gate),
				A:       n.k.A,
				B:       n.k.B,
				C:       n.k.C,
				Eps:     n.k.Eps,
				Cfg:     n.k.Cfg,
				Scope:   n.k.Scope,
				Seq:     n.e.Seq.String(),
				Err:     n.e.Err,
				Backend: n.e.Backend,
			})
		}
		s.mu.Unlock()
		if len(perShard[i]) > maxLen {
			maxLen = len(perShard[i])
		}
	}
	sf := snapshotFile{Version: SnapshotVersion}
	// Rank r of every shard before rank r+1 of any; shards shorter than
	// maxLen pad from the cold end (their entries are all relatively hot).
	for r := 0; r < maxLen; r++ {
		for i := range perShard {
			if off := len(perShard[i]) - maxLen + r; off >= 0 {
				sf.Entries = append(sf.Entries, perShard[i][off])
			}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(sf); err != nil {
		return fmt.Errorf("synth: encoding snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot merges a snapshot written by Snapshot into the cache,
// returning the number of entries loaded. Entries are replayed in file
// order as ordinary Puts, so recency is reconstructed and a snapshot
// larger than the cache's capacity keeps its most-recently-used tail.
// Counters are unaffected: loading is not a lookup. A malformed file or an
// unknown format version is an error and loads nothing.
func (c *Cache) LoadSnapshot(r io.Reader) (int, error) {
	var sf snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sf); err != nil {
		return 0, fmt.Errorf("synth: decoding snapshot: %w", err)
	}
	if sf.Version != SnapshotVersion {
		return 0, fmt.Errorf("synth: snapshot version %d, want %d", sf.Version, SnapshotVersion)
	}
	// Validate every entry before inserting any, so a corrupt file really
	// does load nothing rather than leaving a partial entry set behind.
	seqs := make([]gates.Sequence, len(sf.Entries))
	for i, se := range sf.Entries {
		seq, err := gates.Parse(se.Seq)
		if err != nil {
			return 0, fmt.Errorf("synth: snapshot entry %d: %w", i, err)
		}
		seqs[i] = seq
	}
	for i, se := range sf.Entries {
		k := Key{
			Gate:  circuit.GateType(se.Gate),
			A:     se.A,
			B:     se.B,
			C:     se.C,
			Eps:   se.Eps,
			Cfg:   se.Cfg,
			Scope: se.Scope,
		}
		// putQuiet: snapshot entries came from the tier (a prior run or a
		// peer), so they must not be re-published through a peer fill hook.
		c.putQuiet(k, Entry{Seq: seqs[i], Err: se.Err, Backend: se.Backend})
	}
	return len(sf.Entries), nil
}

// SaveFile atomically writes the snapshot to path: the JSON is staged in a
// temporary file in the same directory, fsynced, and renamed into place,
// so a crash mid-write never truncates an existing good snapshot (without
// the fsync, delayed allocation could leave a zero-length file at path
// after a power loss shortly post-rename).
func (c *Cache) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("synth: staging snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := c.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("synth: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("synth: flushing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("synth: installing snapshot: %w", err)
	}
	return nil
}

// LoadFile merges the snapshot at path into the cache, returning the entry
// count loaded. Callers that treat a missing file as a cold start should
// test the error with os.IsNotExist / errors.Is(err, fs.ErrNotExist).
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.LoadSnapshot(f)
}
