package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	in, err := Parse("backend:gridsynth panic every=3; peer:b latency=400ms; handler:/v1/synthesize error=boom prob=0.5 seed=42")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rules := in.Rules()
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	if r := rules[0]; r.Site != "backend:gridsynth" || r.Action != ActPanic || r.Every != 3 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r := rules[1]; r.Action != ActLatency || r.Latency != 400*time.Millisecond {
		t.Fatalf("rule 1 = %+v", r)
	}
	if r := rules[2]; r.Action != ActError || r.Msg != "boom" || r.Prob != 0.5 || r.Seed != 42 {
		t.Fatalf("rule 2 = %+v", r)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if in, err := Parse("  "); err != nil || in != nil {
		t.Fatalf("empty spec: injector=%v err=%v, want nil/nil", in, err)
	}
	for _, bad := range []string{
		"justasite",
		"site explode",
		"site latency",
		"site latency=notadur",
		"site error every=x",
		"site error prob=1.5",
		"site error frequency=2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

func TestErrorInjection(t *testing.T) {
	in, err := Parse("peer:b error=down")
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(context.Background(), in)
	if err := At(ctx, "peer:a"); err != nil {
		t.Fatalf("non-matching site injected: %v", err)
	}
	err = At(ctx, "peer:b")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "peer:b" || !strings.Contains(ie.Error(), "down") {
		t.Fatalf("got %v, want InjectedError at peer:b", err)
	}
}

func TestWildcardSite(t *testing.T) {
	in, _ := Parse("peer:* error")
	for _, site := range []string{"peer:a", "peer:bb"} {
		if in.At(context.Background(), site) == nil {
			t.Errorf("wildcard did not match %q", site)
		}
	}
	if err := in.At(context.Background(), "backend:peer"); err != nil {
		t.Errorf("wildcard matched %q: %v", "backend:peer", err)
	}
}

func TestEveryAfterCount(t *testing.T) {
	in, _ := Parse("s error every=3 after=2 count=2")
	var fires []int
	for i := 1; i <= 14; i++ {
		if in.At(context.Background(), "s") != nil {
			fires = append(fires, i)
		}
	}
	// after=2 skips calls 1-2; every=3 then fires on calls 5, 8, 11, ...;
	// count=2 keeps only the first two.
	want := []int{5, 8}
	if len(fires) != len(want) || fires[0] != want[0] || fires[1] != want[1] {
		t.Fatalf("fired on calls %v, want %v", fires, want)
	}
	if got := in.Rules()[0].Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

func TestProbDeterministic(t *testing.T) {
	run := func() []int {
		in, _ := Parse("s error prob=0.3 seed=7")
		var fires []int
		for i := 0; i < 100; i++ {
			if in.At(context.Background(), "s") != nil {
				fires = append(fires, i)
			}
		}
		return fires
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("prob=0.3 fired %d/100 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("two seeded runs differ: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two seeded runs diverge at fire %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPanicInjectionAndRecover(t *testing.T) {
	in, _ := Parse("backend:x panic=kaboom")
	var observed *PanicError
	ctx := WithPanicObserver(NewContext(context.Background(), in), func(pe *PanicError) {
		observed = pe
	})
	call := func() (err error) {
		defer Recover(ctx, "backend:x", &err)
		if ferr := At(ctx, "backend:x"); ferr != nil {
			return ferr
		}
		return nil
	}
	err := call()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
	if pe.Site != "backend:x" || !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("PanicError = %+v", pe)
	}
	if pe.Stack == "" || strings.HasPrefix(pe.Stack, "goroutine ") {
		t.Fatalf("stack not trimmed:\n%s", pe.Stack)
	}
	if observed != pe {
		t.Fatalf("observer saw %v, want the same PanicError", observed)
	}
}

func TestRecoverGenuinePanic(t *testing.T) {
	call := func() (err error) {
		defer Recover(context.Background(), "worker", &err)
		var m map[string]int
		m["boom"] = 1 // nil map write panics
		return nil
	}
	err := call()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Site != "worker" {
		t.Fatalf("got %v, want PanicError at worker", err)
	}
	if !strings.Contains(pe.Stack, "fault_test.go") {
		t.Fatalf("stack does not reach the panicking frame:\n%s", pe.Stack)
	}
}

func TestRecoverNoPanic(t *testing.T) {
	call := func() (err error) {
		defer Recover(context.Background(), "worker", &err)
		return nil
	}
	if err := call(); err != nil {
		t.Fatalf("Recover invented an error: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	in, _ := Parse("s latency=50ms")
	start := time.Now()
	if err := in.At(context.Background(), "s"); err != nil {
		t.Fatalf("latency returned error: %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("latency slept %v, want ~50ms", d)
	}
	// Bounded by the context: a tighter deadline cuts the sleep short.
	in2, _ := Parse("s latency=10s")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start = time.Now()
	err := in2.At(ctx, "s")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("latency ignored the context (%v)", d)
	}
}

func TestTimeoutInjection(t *testing.T) {
	in, _ := Parse("s timeout")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := in.At(ctx, "s"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if err := in.At(context.Background(), "anything"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if err := At(context.Background(), "anything"); err != nil {
		t.Fatalf("bare context injected: %v", err)
	}
	if ctx := NewContext(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("NewContext(nil) installed something")
	}
}

func TestConcurrentCountExact(t *testing.T) {
	in, _ := Parse("s error count=10")
	var wg sync.WaitGroup
	var fired atomic64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.At(context.Background(), "s") != nil {
					fired.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := fired.load(); got != 10 {
		t.Fatalf("count=10 fired %d times under concurrency", got)
	}
}

// atomic64 avoids importing sync/atomic twice under different idioms.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
