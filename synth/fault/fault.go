// Package fault is the deterministic fault-injection harness and the
// panic-containment primitives the serving stack's goroutine boundaries
// share. It has two halves:
//
// An Injector holds seedable rules keyed by site — "backend:gridsynth",
// "racer:trasyn", "peer:b", "handler:/v1/synthesize" — each firing one
// action (error, panic, latency, timeout) under count/probability
// triggers. Rules come from a compact spec string (the synthd
// -fault-spec flag) or are built in Go by tests:
//
//	backend:gridsynth panic every=3; peer:b latency=400ms; handler:/v1/compile error prob=0.1 seed=7
//
// Injection points call At(ctx, site); with no injector in the context
// (the production default) that is a nil check and nothing more.
//
// Recover is the other half: deferred at a goroutine boundary it turns a
// panic — injected or genuine — into a *PanicError carrying the site and
// the trimmed stack, and reports it to the context's panic observer
// (WithPanicObserver), where the serving layer counts and logs it. The
// package deliberately sits below synth: synth's worker pools, the
// cluster's peer calls, and serve's handlers all import it, so a panic's
// blast radius is one op, one peer hop, or one request — never the
// process.
package fault

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what a matched rule does.
type Action int

const (
	// ActError makes the injection point return an *InjectedError — the
	// shape of a backend or peer failing cleanly.
	ActError Action = iota
	// ActPanic panics at the injection point — contained (or not) by
	// whatever Recover boundary is above it.
	ActPanic
	// ActLatency sleeps the rule's duration (bounded by the context)
	// before letting the call proceed — the shape of a slow dependency.
	ActLatency
	// ActTimeout blocks until the context ends and returns its error —
	// the shape of a dependency that never answers within the deadline.
	ActTimeout
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActLatency:
		return "latency"
	case ActTimeout:
		return "timeout"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule is one injection rule. Triggers AND together; the zero trigger
// set fires on every matching call. Rules are stateful (hit and fire
// counters, the prob RNG) and safe for concurrent use.
type Rule struct {
	// Site is the site pattern: an exact site string, or a prefix ending
	// in "*" ("peer:*" matches every peer site).
	Site string
	// Action is what firing does; Msg customizes the error/panic text.
	Action Action
	Msg    string
	// Latency is ActLatency's sleep.
	Latency time.Duration
	// Every fires on every k-th matching call (after After); 0 or 1 =
	// every call.
	Every int64
	// Count stops the rule after it has fired this many times (0 = no
	// limit).
	Count int64
	// After skips the first n matching calls (0 = none).
	After int64
	// Prob fires with this probability, drawn from a deterministic RNG
	// seeded by Seed (0 = fire deterministically per Every/Count/After).
	Prob float64
	// Seed seeds the Prob RNG (0 = derived from the site pattern, so a
	// spec without an explicit seed is still reproducible).
	Seed int64

	hits  atomic.Int64
	fired atomic.Int64

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// matches reports whether the rule applies to site.
func (r *Rule) matches(site string) bool {
	if p, ok := strings.CutSuffix(r.Site, "*"); ok {
		return strings.HasPrefix(site, p)
	}
	return r.Site == site
}

// fire consumes one matching call and reports whether the rule triggers.
func (r *Rule) fire() bool {
	n := r.hits.Add(1)
	if n <= r.After {
		return false
	}
	if r.Every > 1 && (n-r.After)%r.Every != 0 {
		return false
	}
	if r.Prob > 0 && !r.draw() {
		return false
	}
	if r.Count > 0 {
		// CAS so the fired counter never exceeds Count under concurrency.
		for {
			f := r.fired.Load()
			if f >= r.Count {
				return false
			}
			if r.fired.CompareAndSwap(f, f+1) {
				return true
			}
		}
	}
	r.fired.Add(1)
	return true
}

func (r *Rule) draw() bool {
	r.rngOnce.Do(func() {
		seed := r.Seed
		if seed == 0 {
			seed = int64(fnvString(r.Site) | 1)
		}
		r.rng = rand.New(rand.NewSource(seed))
	})
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.rng.Float64() < r.Prob
}

// Fired returns how many times the rule has triggered.
func (r *Rule) Fired() int64 { return r.fired.Load() }

// InjectedError is what ActError returns — distinguishable from organic
// failures so tests can assert the fault came from the harness.
type InjectedError struct {
	Site string
	Msg  string
}

func (e *InjectedError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("fault: injected error at %s: %s", e.Site, e.Msg)
	}
	return fmt.Sprintf("fault: injected error at %s", e.Site)
}

// Injector evaluates a rule list at injection points. A nil *Injector is
// valid and inert, so call sites never need a guard.
type Injector struct {
	rules []*Rule
}

// NewInjector builds an injector from rules (tests compose rules in Go;
// the daemon parses them from -fault-spec).
func NewInjector(rules ...*Rule) *Injector { return &Injector{rules: rules} }

// Rules exposes the rule list (for spec echo and tests).
func (in *Injector) Rules() []*Rule {
	if in == nil {
		return nil
	}
	return in.rules
}

// At evaluates the rules against site. The first rule that matches and
// triggers acts: ActError returns an *InjectedError, ActPanic panics,
// ActLatency sleeps (bounded by ctx) and returns nil so the real call
// proceeds delayed, ActTimeout blocks until ctx ends and returns its
// error. No match — or a nil injector — returns nil immediately.
func (in *Injector) At(ctx context.Context, site string) error {
	if in == nil {
		return nil
	}
	for _, r := range in.rules {
		if !r.matches(site) || !r.fire() {
			continue
		}
		switch r.Action {
		case ActError:
			return &InjectedError{Site: site, Msg: r.Msg}
		case ActPanic:
			msg := r.Msg
			if msg == "" {
				msg = "injected panic"
			}
			panic(fmt.Sprintf("fault: %s at %s", msg, site))
		case ActLatency:
			select {
			case <-time.After(r.Latency):
			case <-ctx.Done():
				return ctx.Err()
			}
			return nil
		case ActTimeout:
			<-ctx.Done()
			return ctx.Err()
		}
	}
	return nil
}

// Parse builds an Injector from a spec string: rules separated by ";",
// each "<site> <action> [trigger...]" with whitespace-separated fields.
//
//	site    exact ("peer:b") or trailing-* prefix ("peer:*")
//	action  error[=msg] | panic[=msg] | latency=<duration> | timeout
//	trigger every=<k> | count=<n> | after=<n> | prob=<p> | seed=<s>
//
// An empty spec yields a nil (inert) injector.
func Parse(spec string) (*Injector, error) {
	var rules []*Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: %w", raw, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return &Injector{rules: rules}, nil
}

func parseRule(raw string) (*Rule, error) {
	fields := strings.Fields(raw)
	if len(fields) < 2 {
		return nil, fmt.Errorf("want \"<site> <action> [trigger...]\"")
	}
	r := &Rule{Site: fields[0]}
	action, arg, hasArg := strings.Cut(fields[1], "=")
	switch action {
	case "error":
		r.Action = ActError
		r.Msg = arg
	case "panic":
		r.Action = ActPanic
		r.Msg = arg
	case "latency":
		r.Action = ActLatency
		if !hasArg {
			return nil, fmt.Errorf("latency needs a duration (latency=400ms)")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("latency: %v", err)
		}
		r.Latency = d
	case "timeout":
		r.Action = ActTimeout
	default:
		return nil, fmt.Errorf("unknown action %q (have error, panic, latency, timeout)", action)
	}
	for _, f := range fields[2:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("bad trigger %q (want key=value)", f)
		}
		switch key {
		case "every", "count", "after", "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || (key != "seed" && n < 0) {
				return nil, fmt.Errorf("bad %s=%q", key, val)
			}
			switch key {
			case "every":
				r.Every = n
			case "count":
				r.Count = n
			case "after":
				r.After = n
			case "seed":
				r.Seed = n
			}
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("bad prob=%q (want 0..1)", val)
			}
			r.Prob = p
		default:
			return nil, fmt.Errorf("unknown trigger %q (have every, count, after, prob, seed)", key)
		}
	}
	return r, nil
}

// --- context plumbing ---

type injectorKey struct{}

// NewContext installs in as the context's injector; a nil injector
// returns ctx unchanged.
func NewContext(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey{}, in)
}

// FromContext returns the context's injector, or nil.
func FromContext(ctx context.Context) *Injector {
	in, _ := ctx.Value(injectorKey{}).(*Injector)
	return in
}

// At evaluates the context's injector at site — the one-liner injection
// points use. Without an injector it is two map-free context lookups.
func At(ctx context.Context, site string) error {
	return FromContext(ctx).At(ctx, site)
}

// --- panic containment ---

// PanicError is a recovered panic as a per-op error: the containment
// site, the panic value, and the trimmed stack of the panicking
// goroutine.
type PanicError struct {
	Site  string
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fault: panic at %s: %v", e.Site, e.Value)
}

// Recover converts an in-flight panic into a *PanicError stored in
// *errp, reporting it to the context's panic observer first. Use it
// deferred, directly, at every goroutine boundary that must survive its
// callees:
//
//	func (c *Compiler) synthesizeContained(ctx ...) (res Result, err error) {
//		defer fault.Recover(ctx, "backend:"+c.Backend.Name(), &err)
//		...
//	}
//
// With no panic in flight it does nothing.
func Recover(ctx context.Context, site string, errp *error) {
	v := recover()
	if v == nil {
		return
	}
	pe := &PanicError{Site: site, Value: v, Stack: trimStack(debug.Stack())}
	if fn := panicObserver(ctx); fn != nil {
		fn(pe)
	}
	*errp = pe
}

type observerKey struct{}

// WithPanicObserver installs fn to be called (synchronously, from the
// recovering goroutine) for every panic Recover contains under this
// context — the hook the serving layer uses for the panics metric and
// the structured log line. fn must be safe for concurrent use.
func WithPanicObserver(ctx context.Context, fn func(*PanicError)) context.Context {
	return context.WithValue(ctx, observerKey{}, fn)
}

func panicObserver(ctx context.Context) func(*PanicError) {
	fn, _ := ctx.Value(observerKey{}).(func(*PanicError))
	return fn
}

// trimStack drops the goroutine header and the runtime/fault frames
// (recover plumbing) from a debug.Stack dump and caps what remains —
// enough to locate the panic, small enough for a log line.
func trimStack(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	// Drop "goroutine N [running]:" then the panic/Recover machinery:
	// pairs of (function, location) lines until the first frame outside
	// runtime and this package.
	i := 1
	for i+1 < len(lines) {
		fn := lines[i]
		if !strings.HasPrefix(fn, "runtime/debug.Stack") &&
			!strings.HasPrefix(fn, "runtime.gopanic") &&
			!strings.HasPrefix(fn, "runtime.panic") &&
			!strings.HasPrefix(fn, "panic(") &&
			!strings.Contains(fn, "/synth/fault.Recover") &&
			!strings.Contains(fn, "/synth/fault.At") &&
			!strings.Contains(fn, "/synth/fault.(*Injector).At") {
			break
		}
		i += 2
	}
	const maxLines = 16
	trimmed := lines[i:]
	if len(trimmed) > maxLines {
		trimmed = append(trimmed[:maxLines:maxLines], "...")
	}
	return strings.TrimRight(strings.Join(trimmed, "\n"), "\n")
}

// fnvString is FNV-1a over s (the default per-rule seed derivation).
func fnvString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
