package synth

import (
	"container/list"
	"math"
	"sync"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/pipeline"
	"repro/internal/qmat"
)

// DefaultCacheSize bounds a Cache when NewCache is given no capacity.
const DefaultCacheSize = 4096

// Key identifies one synthesis job up to angle quantization. Two requests
// with the same Key are interchangeable: same rotation (angles wrapped to
// [0, 4π) and quantized at 1e-12), same scope (backend name or caller
// namespace), same epsilon, and same packed backend knobs — so a shared
// cache never serves a loose approximation to a tight request or mixes
// backends.
type Key struct {
	Gate    circuit.GateType
	A, B, C int64
	Eps     int64
	Cfg     int64
	Scope   string
}

// quantizeAngle wraps x to [0, 4π) (U3 angles are 2π-periodic up to phase;
// 4π is safe for every convention) and quantizes at 1e-12.
func quantizeAngle(x float64) int64 {
	x = math.Mod(x, 4*math.Pi)
	if x < 0 {
		x += 4 * math.Pi
	}
	return int64(math.Round(x * 1e12))
}

// KeyOf builds the cache key for a rotation op under a scope and epsilon.
func KeyOf(op circuit.Op, scope string, eps float64, cfg int64) Key {
	return Key{
		Gate:  op.G,
		A:     quantizeAngle(op.P[0]),
		B:     quantizeAngle(op.P[1]),
		C:     quantizeAngle(op.P[2]),
		Eps:   int64(math.Round(eps * 1e15)),
		Cfg:   cfg,
		Scope: scope,
	}
}

// KeyOfTarget builds the cache key for a raw unitary via its ZYZ Euler
// angles, so matrix-level batch jobs share entries with equivalent U3 ops.
func KeyOfTarget(u qmat.M2, scope string, eps float64, cfg int64) Key {
	theta, phi, lambda := qmat.ZYZAngles(u)
	return KeyOf(circuit.Op{G: circuit.U3, P: [3]float64{theta, phi, lambda}}, scope, eps, cfg)
}

// cacheCfg hashes every Request knob that changes synthesis output —
// budget shape, sampler, time budget, and the base seed (per-op seeds are
// derived from the base seed and the key, so compilers with different base
// seeds must not serve each other's entries).
func (r Request) cacheCfg() int64 {
	d := r.withDefaults()
	h := fnv64(uint64(d.TBudget), uint64(d.Tensors), uint64(d.Samples),
		uint64(d.Timeout), uint64(r.seed()))
	if d.Beam {
		h ^= 1
	}
	return int64(h)
}

// fnv64 is FNV-1a over a list of 64-bit words.
func fnv64(vs ...uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// Entry is one cached synthesis outcome.
type Entry struct {
	Seq gates.Sequence
	Err float64 // realized unitary distance
	// Backend records which backend produced the entry (meaningful for
	// racing backends like "auto", whose winner varies per target).
	Backend string
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses int64
	Size, Cap    int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a bounded, concurrency-safe synthesis cache with LRU eviction —
// the promotion of internal/pipeline's former private memoizer into a
// service-level object shared across batch jobs. Every Get counts a hit or
// a miss; Stats exposes the accounting.
type Cache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recent
	m            map[Key]*list.Element
	hits, misses int64
}

type cacheNode struct {
	k Key
	e Entry
}

// NewCache returns a cache bounded to capacity entries (<= 0 selects
// DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{cap: capacity, ll: list.New(), m: map[Key]*list.Element{}}
}

// Get looks up k, counting a hit or miss and refreshing recency.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheNode).e, true
	}
	c.misses++
	return Entry{}, false
}

// creditHit records a hit for a lookup served without touching the map —
// a job that reuses one in-flight synthesis for several ops charges the
// extra ops here.
func (c *Cache) creditHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// creditMiss records a miss for a lookup performed via peek — a job that
// finds its entry evicted between phases and recomputes inline charges
// that second lookup here, keeping Hits+Misses equal to the lookups
// actually performed.
func (c *Cache) creditMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// peek is Get without accounting or recency update; used when assembling
// output from entries the caller already charged for.
func (c *Cache) peek(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		return el.Value.(*cacheNode).e, true
	}
	return Entry{}, false
}

// Put stores k → e, evicting the least-recently-used entry when full.
func (c *Cache) Put(k Key, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheNode).e = e
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheNode{k: k, e: e})
	for len(c.m) > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheNode).k)
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.m), Cap: c.cap}
}

// Wrap memoizes a pipeline lowerer through the cache under the given scope
// and per-rotation epsilon, so a shared cache never serves a loose
// approximation to a tighter pass. The scope must distinguish anything
// else that changes the lowerer's output (backend name, engine config).
// Errors are not cached. This is the drop-in replacement for the old
// pipeline-private cachingLowerer, now shareable across runs.
func (c *Cache) Wrap(scope string, eps float64, f pipeline.Lowerer) pipeline.Lowerer {
	return func(op circuit.Op) (gates.Sequence, float64, error) {
		k := KeyOf(op, scope, eps, 0)
		if e, ok := c.Get(k); ok {
			return e.Seq, e.Err, nil
		}
		seq, errDist, err := f(op)
		if err != nil {
			return nil, 0, err
		}
		c.Put(k, Entry{Seq: seq, Err: errDist})
		return seq, errDist, nil
	}
}
