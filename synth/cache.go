package synth

import (
	"container/list"
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/pipeline"
	"repro/internal/qmat"
)

// DefaultCacheSize bounds a Cache when NewCache is given no capacity.
const DefaultCacheSize = 4096

// DefaultCacheShards is the shard count NewCache selects for caches large
// enough to split (see minShardCap); NewCacheSharded overrides it.
const DefaultCacheShards = 16

// minShardCap is the smallest per-shard capacity worth sharding for: below
// it a split cache would evict so early that the LRU working set breaks up,
// so NewCache keeps small caches on a single shard (which also preserves
// exact global LRU order for them).
const minShardCap = 64

// Key identifies one synthesis job up to angle quantization. Two requests
// with the same Key are interchangeable: same rotation (angles wrapped to
// [0, 4π) and quantized at 1e-12), same scope (backend name or caller
// namespace), same epsilon, and same packed backend knobs — so a shared
// cache never serves a loose approximation to a tight request or mixes
// backends.
type Key struct {
	Gate    circuit.GateType
	A, B, C int64
	Eps     int64
	Cfg     int64
	Scope   string
}

// quantizeAngle wraps x to [0, 4π) (U3 angles are 2π-periodic up to phase;
// 4π is safe for every convention) and quantizes at 1e-12.
func quantizeAngle(x float64) int64 {
	x = math.Mod(x, 4*math.Pi)
	if x < 0 {
		x += 4 * math.Pi
	}
	return int64(math.Round(x * 1e12))
}

// KeyOf builds the cache key for a rotation op under a scope and epsilon.
func KeyOf(op circuit.Op, scope string, eps float64, cfg int64) Key {
	return Key{
		Gate:  op.G,
		A:     quantizeAngle(op.P[0]),
		B:     quantizeAngle(op.P[1]),
		C:     quantizeAngle(op.P[2]),
		Eps:   int64(math.Round(eps * 1e15)),
		Cfg:   cfg,
		Scope: scope,
	}
}

// KeyOfTarget builds the cache key for a raw unitary via its ZYZ Euler
// angles, so matrix-level batch jobs share entries with equivalent U3 ops.
func KeyOfTarget(u qmat.M2, scope string, eps float64, cfg int64) Key {
	theta, phi, lambda := qmat.ZYZAngles(u)
	return KeyOf(circuit.Op{G: circuit.U3, P: [3]float64{theta, phi, lambda}}, scope, eps, cfg)
}

// KeyForTarget builds the exact key a Compiler with this request caches
// target under — KeyOfTarget with the request's config hash filled in.
// Ownership-aware callers (cluster chaos tests, load generators that
// route by ring owner) use it to predict where an entry will live.
func KeyForTarget(u qmat.M2, scope string, req Request) Key {
	return KeyOfTarget(u, scope, req.Epsilon, req.cacheCfg())
}

// cacheCfg hashes every Request knob that changes synthesis output —
// budget shape, sampler, time budget, and the base seed (per-op seeds are
// derived from the base seed and the key, so compilers with different base
// seeds must not serve each other's entries).
func (r Request) cacheCfg() int64 {
	d := r.withDefaults()
	h := fnv64(uint64(d.TBudget), uint64(d.Tensors), uint64(d.Samples),
		uint64(d.Timeout), uint64(r.seed()))
	if d.Beam {
		h ^= 1
	}
	return int64(h)
}

// fnv64 is FNV-1a over a list of 64-bit words.
func fnv64(vs ...uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// Entry is one cached synthesis outcome.
type Entry struct {
	Seq gates.Sequence
	Err float64 // realized unitary distance
	// Backend records which backend produced the entry (meaningful for
	// racing backends like "auto", whose winner varies per target).
	Backend string
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses int64
	Size, Cap    int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a bounded, concurrency-safe synthesis cache with LRU eviction —
// the promotion of internal/pipeline's former private memoizer into a
// service-level object shared across batch jobs and, since the synthd
// service layer, across daemon requests. Internally the key space is split
// over independent LRU shards (each with its own lock), so concurrent
// lookups under different keys proceed without contending on one mutex;
// recency and eviction are per shard, a standard approximation of global
// LRU. Every Get counts a hit or a miss; Stats exposes the accounting, and
// Hits+Misses always equals the number of lookups performed.
type Cache struct {
	shards []*cacheShard
	mask   uint64 // len(shards)-1; shard count is a power of two
	cap    int
	// creditHits/creditMisses charge the key-less accounting paths
	// (creditHit/creditMiss) without electing a shard for them.
	creditHits, creditMisses atomic.Int64
	// peer holds the optional second-tier hooks a cache cluster installs
	// (SetPeer): lookup fills local misses from a remote owner, fill
	// publishes fresh local syntheses to it.
	peer atomic.Pointer[peerHooks]
}

// peerHooks is the pair SetPeer installs. Both functions may be nil.
// Both receive the caller's context, so a hook that does network I/O
// (the cluster tier) can honor cancellation and propagate the request's
// trace span across the hop.
type peerHooks struct {
	lookup func(context.Context, Key) (Entry, bool)
	fill   func(context.Context, Key, Entry)
}

// SetPeer installs a second lookup tier behind this cache — the hook a
// consistent-hash cache cluster (synth/serve/cluster) uses to make N
// processes behave as one memo table. On a local miss, Get consults
// lookup (outside any shard lock; it may do network I/O) and, on a peer
// hit, stores the entry locally and counts the lookup as a hit — from the
// caller's perspective the cluster served it without synthesis. Every Put
// of a locally produced entry is reported to fill (also outside locks),
// so the cluster can publish it to the key's owning node; entries that
// arrived *from* the tier — peer hits, snapshot loads — are stored
// quietly and never re-published. Pass nils to detach. Install before
// serving traffic: SetPeer itself is safe for concurrent use, but
// lookups racing the swap may see either tier configuration. Hooks
// receive the context of the GetCtx/PutCtx call that triggered them
// (context.Background() for plain Get/Put), which carries cancellation
// and any trace span the request is under.
func (c *Cache) SetPeer(lookup func(context.Context, Key) (Entry, bool), fill func(context.Context, Key, Entry)) {
	if lookup == nil && fill == nil {
		c.peer.Store(nil)
		return
	}
	c.peer.Store(&peerHooks{lookup: lookup, fill: fill})
}

// KeyHash is the FNV-1a hash of k — the same value in-process shard
// election uses, exported so cluster-level routing (consistent-hash node
// ownership) distributes keys exactly the way the shards already do.
func KeyHash(k Key) uint64 { return keyHash(k) }

// cacheShard is one independently locked LRU region.
type cacheShard struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recent
	m            map[Key]*list.Element
	hits, misses int64
}

type cacheNode struct {
	k Key
	e Entry
}

// NewCache returns a cache bounded to capacity entries (<= 0 selects
// DefaultCacheSize), sharded DefaultCacheShards ways when the capacity
// leaves each shard at least minShardCap entries; smaller caches stay on a
// single shard and so keep exact global LRU order.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	shards := 1
	for shards < DefaultCacheShards && capacity/(shards*2) >= minShardCap {
		shards *= 2
	}
	return NewCacheSharded(capacity, shards)
}

// NewCacheSharded returns a cache bounded to capacity entries split over
// an explicit shard count — the tuning knob for high-concurrency services
// like synthd. The count is rounded up to a power of two and clamped to
// [1, capacity] so every shard holds at least one entry; capacity <= 0
// selects DefaultCacheSize. The total entry count never exceeds capacity.
func NewCacheSharded(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	n := 1
	for n < shards {
		n *= 2
	}
	if n > capacity {
		n /= 2
	}
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1), cap: capacity}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		c.shards[i] = &cacheShard{cap: sc, ll: list.New(), m: map[Key]*list.Element{}}
	}
	return c
}

// Shards returns the shard count (for tuning reports and tests).
func (c *Cache) Shards() int { return len(c.shards) }

// shard elects the shard owning k.
func (c *Cache) shard(k Key) *cacheShard {
	return c.shards[keyHash(k)&c.mask]
}

// Get looks up k, counting a hit or miss and refreshing recency. When a
// peer tier is installed (SetPeer), a local miss consults it before being
// counted: a peer hit is stored locally and counted as a hit, so
// Hits+Misses still equals the lookups performed and a hit still means
// "served without synthesis".
func (c *Cache) Get(k Key) (Entry, bool) { return c.GetCtx(context.Background(), k) }

// GetCtx is Get under the caller's context: a peer lookup triggered by a
// local miss receives ctx, so it is cancelled with the request and its
// network hop lands under the request's trace span.
func (c *Cache) GetCtx(ctx context.Context, k Key) (Entry, bool) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		s.hits++
		s.ll.MoveToFront(el)
		e := el.Value.(*cacheNode).e
		s.mu.Unlock()
		return e, true
	}
	p := c.peer.Load()
	if p == nil || p.lookup == nil {
		s.misses++
		s.mu.Unlock()
		return Entry{}, false
	}
	// The peer lookup does network I/O; it must run outside the shard
	// lock. Concurrent misses on one key may each ask the peer — a
	// bounded duplication the short lookup deadline keeps cheap.
	s.mu.Unlock()
	if e, ok := p.lookup(ctx, k); ok {
		c.putQuiet(k, e)
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		return e, true
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return Entry{}, false
}

// creditHit records a hit for a lookup served without touching the map —
// a job that reuses one in-flight synthesis for several ops charges the
// extra ops here.
func (c *Cache) creditHit() {
	c.creditHits.Add(1)
}

// creditMiss records a miss for a lookup performed via peek — a job that
// finds its entry evicted between phases and recomputes inline charges
// that second lookup here, keeping Hits+Misses equal to the lookups
// actually performed.
func (c *Cache) creditMiss() {
	c.creditMisses.Add(1)
}

// Peek is Get without accounting, recency update, or peer consultation —
// the lookup a remote cluster probe uses, so cross-node traffic neither
// distorts local LRU order nor inflates the hit/miss counters.
func (c *Cache) Peek(k Key) (Entry, bool) { return c.peek(k) }

// PutQuiet stores k → e without reporting it to any peer fill hook — the
// insert path for entries that arrived from another cluster node, which
// must not bounce back to it.
func (c *Cache) PutQuiet(k Key, e Entry) { c.putQuiet(k, e) }

// peek is Get without accounting or recency update; used when assembling
// output from entries the caller already charged for.
func (c *Cache) peek(k Key) (Entry, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		return el.Value.(*cacheNode).e, true
	}
	return Entry{}, false
}

// Put stores k → e, evicting the owning shard's least-recently-used entry
// when that shard is full. The entry is treated as locally produced and
// reported to the peer fill hook when one is installed; use LoadSnapshot
// (or rely on Get's peer path) for entries that came from the tier.
func (c *Cache) Put(k Key, e Entry) { c.PutCtx(context.Background(), k, e) }

// PutCtx is Put under the caller's context, handed to the peer fill hook
// so a cluster push can be traced back to the request that produced the
// entry.
func (c *Cache) PutCtx(ctx context.Context, k Key, e Entry) {
	c.putQuiet(k, e)
	if p := c.peer.Load(); p != nil && p.fill != nil {
		p.fill(ctx, k, e)
	}
}

// putQuiet is Put without the peer fill notification — the insert path
// for entries that arrived from the peer tier or a snapshot.
func (c *Cache) putQuiet(k Key, e Entry) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		el.Value.(*cacheNode).e = e
		s.ll.MoveToFront(el)
		return
	}
	s.m[k] = s.ll.PushFront(&cacheNode{k: k, e: e})
	for len(s.m) > s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.m, last.Value.(*cacheNode).k)
	}
}

// Range calls f for every live entry until f returns false. Order is
// unspecified; recency is not refreshed and nothing is counted. One shard
// is locked at a time, so f must not call back into the cache, and
// entries inserted or evicted concurrently may or may not be seen.
func (c *Cache) Range(f func(Key, Entry) bool) {
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			n := el.Value.(*cacheNode)
			if !f(n.k, n.e) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Cap returns the total capacity bound.
func (c *Cache) Cap() int { return c.cap }

// Stats snapshots the counters, summing across shards. Shards are read one
// at a time, so a snapshot taken while lookups are in flight may straddle
// them; after the cache quiesces it is exact.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:   c.creditHits.Load(),
		Misses: c.creditMisses.Load(),
		Cap:    c.cap,
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Size += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// Wrap memoizes a pipeline lowerer through the cache under the given scope
// and per-rotation epsilon, so a shared cache never serves a loose
// approximation to a tighter pass. The scope must distinguish anything
// else that changes the lowerer's output (backend name, engine config).
// Errors are not cached. This is the drop-in replacement for the old
// pipeline-private cachingLowerer, now shareable across runs.
func (c *Cache) Wrap(scope string, eps float64, f pipeline.Lowerer) pipeline.Lowerer {
	return func(op circuit.Op) (gates.Sequence, float64, error) {
		k := KeyOf(op, scope, eps, 0)
		if e, ok := c.Get(k); ok {
			return e.Seq, e.Err, nil
		}
		seq, errDist, err := f(op)
		if err != nil {
			return nil, 0, err
		}
		c.Put(k, Entry{Seq: seq, Err: errDist})
		return seq, errDist, nil
	}
}
