package synth

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under name. It fails on an empty name, a nil
// backend, or a name already taken — names are first-come, first-served so
// a plugin cannot silently shadow a built-in.
func Register(name string, b Backend) error {
	if name == "" {
		return fmt.Errorf("synth: Register with empty name")
	}
	if b == nil {
		return fmt.Errorf("synth: Register %q with nil backend", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("synth: backend %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register that panics on error; for init-time wiring.
func MustRegister(name string, b Backend) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// List returns the registered backend names, sorted.
func List() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	MustRegister("trasyn", trasynBackend{})
	MustRegister("gridsynth", gridsynthBackend{})
	MustRegister("sk", &skBackend{})
	MustRegister("anneal", annealBackend{})
	MustRegister("auto", autoBackend{})
}
