package synth

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/gridsynth"
	"repro/internal/qmat"
	"repro/internal/sk"
	"repro/synth/fault"
	"repro/synth/trace"
)

// ErrNoSequence is returned when a backend produced nothing usable.
var ErrNoSequence = errors.New("synth: backend produced no sequence")

// --- trasyn ---

// trasynBackend wraps core.TRASYN (Algorithm 1): the tensor-network-guided
// search over Clifford+T sequences. Epsilon, when set, turns the run into
// the Eq. (4) early-stopping form; otherwise the full budget ladder runs
// and the best approximation wins.
type trasynBackend struct{}

func (trasynBackend) Name() string { return "trasyn" }

func (trasynBackend) Synthesize(ctx context.Context, target qmat.M2, req Request) (Result, error) {
	ctx, cancel := req.budget(ctx)
	defer cancel()
	req = req.withDefaults()
	cfg := core.DefaultConfig(gates.Shared(req.TBudget), req.TBudget, req.Tensors, req.Samples)
	cfg.Epsilon = req.Epsilon
	cfg.UseBeam = req.Beam
	cfg.Rng = rand.New(rand.NewSource(req.seed()))
	cfg.Cancel = ctx.Done()
	start := time.Now()
	res := core.TRASYN(target, cfg)
	if res.Seq == nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return Result{}, ErrNoSequence
	}
	// A canceled run that nonetheless met its target is a success; a
	// truncated one is not — returning (and caching) partial best-effort
	// results would silently degrade later requests.
	if err := ctx.Err(); err != nil && (req.Epsilon <= 0 || res.Error > req.Epsilon) {
		return Result{}, err
	}
	return finish("trasyn", start, res.Seq, res.Error, res.Evals), nil
}

// --- gridsynth ---

// gridsynthBackend wraps the Ross–Selinger baseline. Diagonal targets take
// the single-Rz path; general unitaries go through the three-rotation U3
// decomposition with the error budget split equally (the paper's Eq. (1)
// baseline).
type gridsynthBackend struct{}

func (gridsynthBackend) Name() string { return "gridsynth" }

func (gridsynthBackend) Synthesize(ctx context.Context, target qmat.M2, req Request) (Result, error) {
	ctx, cancel := req.budget(ctx)
	defer cancel()
	opt := gridsynth.Options{Cancel: ctx.Done(), Trace: trace.FromContext(ctx)}
	start := time.Now()
	var (
		r   gridsynth.Result
		err error
	)
	if theta, ok := rzAngle(target); ok {
		r, err = gridsynth.Rz(theta, req.eps(), opt)
	} else {
		r, err = gridsynth.U3(target, req.eps(), opt)
	}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, cerr
		}
		return Result{}, err
	}
	return finish("gridsynth", start, r.Seq, r.Error, 0), nil
}

// rzAngle reports whether target is diagonal — i.e. an Rz rotation up to
// global phase — and extracts its angle.
func rzAngle(u qmat.M2) (float64, bool) {
	if cmplx.Abs(u[0][1]) > 1e-12 || cmplx.Abs(u[1][0]) > 1e-12 {
		return 0, false
	}
	return cmplx.Phase(u[1][1]) - cmplx.Phase(u[0][0]), true
}

// --- Solovay–Kitaev ---

// skBackend wraps the recursive Solovay–Kitaev baseline. The engine is
// depth-driven, so the backend deepens the recursion until req's epsilon is
// met or maxSKDepth is reached (sequence lengths grow ~5^depth), returning
// the best depth found.
type skBackend struct {
	once sync.Once
	eng  *sk.Engine
}

const maxSKDepth = 4

func (*skBackend) Name() string { return "sk" }

func (b *skBackend) Synthesize(ctx context.Context, target qmat.M2, req Request) (Result, error) {
	ctx, cancel := req.budget(ctx)
	defer cancel()
	b.once.Do(func() { b.eng = sk.NewEngine(gates.Shared(4)) })
	start := time.Now()
	best := Result{Error: math.Inf(1)}
	for depth := 0; depth <= maxSKDepth; depth++ {
		if err := ctx.Err(); err != nil {
			// Only a best-so-far that already meets the target survives
			// cancellation; a truncated recursion is an error.
			if best.Seq != nil && best.Error <= req.eps() {
				return best, nil
			}
			return Result{}, err
		}
		seq, d := b.eng.Synthesize(target, depth)
		if d < best.Error {
			best = finish("sk", start, seq, d, 0)
		}
		if best.Error <= req.eps() {
			break
		}
	}
	if best.Seq == nil {
		return Result{}, ErrNoSequence
	}
	best.Wall = time.Since(start)
	return best, nil
}

// --- annealer ---

// annealBackend wraps the Synthetiq-style simulated annealer. Its restart
// budget is Request.Timeout (default 2s) — a declared knob that is part of
// the cache key, unlike an ambient context deadline. Like the original it
// has no optimality guarantee: the best sequence found within the budget
// is returned even when it misses epsilon — callers judge Result.Error
// against their threshold. A run cut short by context cancellation (as
// opposed to its own budget) only succeeds if it already met epsilon.
type annealBackend struct{}

func (annealBackend) Name() string { return "anneal" }

func (annealBackend) Synthesize(ctx context.Context, target qmat.M2, req Request) (Result, error) {
	opt := anneal.Options{
		Budget: req.Timeout,
		Rng:    rand.New(rand.NewSource(req.seed())),
		Cancel: ctx.Done(),
	}
	start := time.Now()
	res := anneal.Synthesize(target, req.eps(), opt)
	if res.Seq == nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return Result{}, ErrNoSequence
	}
	if err := ctx.Err(); err != nil && res.Error > req.eps() {
		return Result{}, err
	}
	return finish("anneal", start, res.Seq, res.Error, res.Restarts), nil
}

// --- auto ---

// autoBackend races trasyn against gridsynth under the caller's epsilon and
// returns the lower-T-count result among those meeting it (falling back to
// the lower-error result when neither does) — the pluggable-search framing
// of T-count optimization from Kliuchnikov '13 / Davis et al. One racer
// failing is not fatal: the race degrades to whichever racers succeed, and
// only when all fail does the combined error surface.
type autoBackend struct {
	// racers overrides the default trasyn/gridsynth pair (tests inject
	// failing backends here; nil selects the default).
	racers []Backend
}

func (autoBackend) Name() string { return "auto" }

func (a autoBackend) Synthesize(ctx context.Context, target qmat.M2, req Request) (Result, error) {
	ctx, cancel := req.budget(ctx)
	defer cancel()
	racers := a.racers
	if racers == nil {
		racers = []Backend{trasynBackend{}, gridsynthBackend{}}
	}
	// trasyn needs an explicit epsilon to early-stop against the same
	// threshold gridsynth targets.
	sub := req
	sub.Epsilon = req.eps()
	type out struct {
		res  Result
		err  error
		wall time.Duration
	}
	span := trace.FromContext(ctx)
	var wg sync.WaitGroup
	outs := make([]out, len(racers))
	for i, be := range racers {
		wg.Add(1)
		go func(i int, be Backend) {
			defer wg.Done()
			rs := span.Child("race:" + be.Name())
			start := time.Now()
			r, err := race(trace.NewContext(ctx, rs), be, target, sub)
			if err != nil {
				rs.SetAttr("error", err.Error())
			} else {
				rs.SetAttr("t_count", r.TCount)
				rs.SetAttr("err_dist", r.Error)
			}
			rs.End()
			outs[i] = out{r, err, time.Since(start)}
		}(i, be)
	}
	wg.Wait()
	best, bestIdx := Result{Error: math.Inf(1)}, -1
	for i, o := range outs {
		if o.err != nil {
			continue
		}
		if bestIdx < 0 || beats(o.res, best, sub.Epsilon) {
			best, bestIdx = o.res, i
		}
	}
	// Report every non-winning racer — losers with their own timing,
	// failures flagged — so win-rate statistics see both sides of every
	// race. The winner itself is reported by the compiler, which also
	// stamps the angle class on these.
	if obs := raceObserver(ctx); obs != nil {
		for i, o := range outs {
			if i == bestIdx {
				continue
			}
			so := SynthObservation{Backend: racers[i].Name(), Epsilon: sub.eps(), Wall: o.wall}
			if o.err != nil {
				so.Failed = true
			} else {
				so.TCount = o.res.TCount
				so.ErrDist = o.res.Error
			}
			obs(so)
		}
	}
	if bestIdx < 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		parts := make([]string, len(racers))
		for i, be := range racers {
			parts[i] = fmt.Sprintf("%s: %v", be.Name(), outs[i].err)
		}
		return Result{}, fmt.Errorf("synth: auto: all backends failed (%s)", strings.Join(parts, "; "))
	}
	span.SetAttr("auto_winner", best.Backend)
	return best, nil
}

// race runs one racer under the race-boundary containment: the fault
// injector's racer site fires first, and a panicking racer is recovered
// into an error — it loses the race (reported Failed through the race
// observer like any failing racer) instead of killing the process.
func race(ctx context.Context, be Backend, target qmat.M2, req Request) (res Result, err error) {
	site := "racer:" + be.Name()
	defer fault.Recover(ctx, site, &err)
	if ferr := fault.At(ctx, site); ferr != nil {
		return Result{}, ferr
	}
	return be.Synthesize(ctx, target, req)
}

// pickWinner prefers the lower T count among results meeting eps, then the
// lower error.
func pickWinner(a, b Result, eps float64) Result {
	if beats(b, a, eps) {
		return b
	}
	return a
}

// beats reports whether b strictly wins over a: meeting eps beats
// missing it, then lower T count, then lower error. Ties keep a.
func beats(b, a Result, eps float64) bool {
	aOK, bOK := a.Error <= eps, b.Error <= eps
	switch {
	case bOK && !aOK:
		return true
	case aOK && !bOK:
		return false
	case aOK && bOK:
		return b.TCount < a.TCount || (b.TCount == a.TCount && b.Error < a.Error)
	default:
		return b.Error < a.Error
	}
}
