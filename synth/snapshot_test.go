package synth

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gates"
)

// snapKey builds a distinct key per index for snapshot tests.
func snapKey(i int) Key {
	return KeyOf(rzOp(float64(i)*0.11+0.03), "snap-test", 1e-3, 7)
}

// TestSnapshotRoundTrip: every entry — key fields, sequence, error,
// backend attribution — survives a dump/load cycle into a fresh cache.
func TestSnapshotRoundTrip(t *testing.T) {
	src := NewCache(64)
	for i := 0; i < 10; i++ {
		src.Put(snapKey(i), Entry{
			Seq:     gates.Sequence{gates.H, gates.T, gates.S, gates.Tdg},
			Err:     float64(i) * 1e-4,
			Backend: "gridsynth",
		})
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewCache(64)
	n, err := dst.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || dst.Len() != 10 {
		t.Fatalf("loaded %d entries, Len %d, want 10", n, dst.Len())
	}
	for i := 0; i < 10; i++ {
		e, ok := dst.peek(snapKey(i))
		if !ok {
			t.Fatalf("entry %d missing after reload", i)
		}
		if e.Seq.String() != "H T S Tdg" || e.Err != float64(i)*1e-4 || e.Backend != "gridsynth" {
			t.Fatalf("entry %d corrupted: %+v", i, e)
		}
	}
	// Loading is not a lookup: counters stay untouched.
	if st := dst.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("load perturbed counters: %+v", st)
	}
}

// TestSnapshotPreservesRecency: a snapshot reloaded into a cache too small
// for it keeps the most-recently-used entries and evicts the stale tail.
func TestSnapshotPreservesRecency(t *testing.T) {
	src := NewCache(8)
	for i := 0; i < 8; i++ {
		src.Put(snapKey(i), Entry{Seq: gates.Sequence{gates.T}})
	}
	src.Get(snapKey(0)) // refresh 0 → most recent
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewCacheSharded(4, 1) // one shard: exact LRU, capacity for half
	if _, err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 4 {
		t.Fatalf("Len %d after loading 8 entries into capacity 4", dst.Len())
	}
	if _, ok := dst.peek(snapKey(0)); !ok {
		t.Fatal("most-recently-used entry lost on reload into smaller cache")
	}
	if _, ok := dst.peek(snapKey(1)); ok {
		t.Fatal("least-recently-used entry survived reload into smaller cache")
	}
}

// TestSnapshotShardedRecency: the round-robin dump order means a sharded
// snapshot reloaded into a much smaller cache keeps each shard's hottest
// entries — the freshly touched key must survive, the cold bulk must not
// displace it.
func TestSnapshotShardedRecency(t *testing.T) {
	src := NewCacheSharded(4096, 16)
	for i := 0; i < 400; i++ {
		src.Put(snapKey(i), Entry{Seq: gates.Sequence{gates.T}})
	}
	src.Get(snapKey(7)) // make key 7 its shard's MRU
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewCacheSharded(32, 1)
	if _, err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 32 {
		t.Fatalf("Len %d, want 32", dst.Len())
	}
	if _, ok := dst.peek(snapKey(7)); !ok {
		t.Fatal("hottest entry lost reloading a 16-shard snapshot into a 32-entry cache")
	}
}

// TestSnapshotVersionAndCorruption: wrong version and malformed JSON are
// rejected without loading anything.
func TestSnapshotVersionAndCorruption(t *testing.T) {
	c := NewCache(8)
	bad := fmt.Sprintf(`{"version": %d, "entries": []}`, SnapshotVersion+1)
	if _, err := c.LoadSnapshot(strings.NewReader(bad)); err == nil {
		t.Fatal("future snapshot version accepted")
	}
	if _, err := c.LoadSnapshot(strings.NewReader(`{"version": 1, "entries": [{"seq": "NOTAGATE"}]}`)); err == nil {
		t.Fatal("unparsable gate sequence accepted")
	}
	if _, err := c.LoadSnapshot(strings.NewReader(`{nope`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// A bad entry after good ones must not leave a partial load behind.
	mixed := `{"version": 1, "entries": [{"scope": "s", "seq": "H T"}, {"scope": "s", "a": 1, "seq": "NOTAGATE"}]}`
	if _, err := c.LoadSnapshot(strings.NewReader(mixed)); err == nil {
		t.Fatal("snapshot with one corrupt entry accepted")
	}
	if c.Len() != 0 {
		t.Fatalf("rejected snapshots still loaded %d entries", c.Len())
	}
}

// TestSnapshotFileRoundTrip: SaveFile + LoadFile through a real path, and
// a missing file reports os.IsNotExist for cold-start handling.
func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	src := NewCache(16)
	src.Put(snapKey(1), Entry{Seq: gates.Sequence{gates.H, gates.T}, Err: 1e-5, Backend: "trasyn"})
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Atomic staging leaves no temp litter.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot dir has %d files, want 1", len(ents))
	}

	dst := NewCache(16)
	if n, err := dst.LoadFile(path); err != nil || n != 1 {
		t.Fatalf("LoadFile = (%d, %v), want (1, nil)", n, err)
	}
	if e, ok := dst.peek(snapKey(1)); !ok || e.Backend != "trasyn" {
		t.Fatalf("entry missing or corrupted after file round-trip: %+v", e)
	}

	if _, err := dst.LoadFile(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("missing snapshot: want IsNotExist, got %v", err)
	}
}

// TestSnapshotSharded: a snapshot taken from a sharded cache reloads into
// caches with different shard counts without losing entries.
func TestSnapshotSharded(t *testing.T) {
	src := NewCacheSharded(4096, 16)
	if src.Shards() != 16 {
		t.Fatalf("want 16 shards, got %d", src.Shards())
	}
	for i := 0; i < 200; i++ {
		src.Put(snapKey(i), Entry{Seq: gates.Sequence{gates.T}})
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4, 32} {
		dst := NewCacheSharded(4096, shards)
		if n, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil || n != 200 {
			t.Fatalf("shards=%d: LoadSnapshot = (%d, %v), want (200, nil)", shards, n, err)
		}
		if dst.Len() != 200 {
			t.Fatalf("shards=%d: Len %d, want 200", shards, dst.Len())
		}
	}
}
