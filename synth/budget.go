package synth

import (
	"repro/circuit"
	"repro/internal/pipeline"
)

// BudgetStrategy selects how a circuit-level error budget ε is split
// across the N nontrivial rotations of an IR. The additive composition of
// unitary distances (the paper's Eq. 2 metric is subadditive under
// products) guarantees the lowered circuit's total error is bounded by the
// sum of per-rotation allocations, so every strategy here allocates shares
// that sum to ε.
type BudgetStrategy int

const (
	// BudgetUniform gives every nontrivial rotation op the same share ε/N.
	// This minimizes the circuit's total T count for a fixed budget (T cost
	// grows like log(1/ε) per synthesis, so the Lagrangian optimum is a
	// constant per-op epsilon).
	BudgetUniform BudgetStrategy = iota
	// BudgetWeighted gives every *distinct* rotation (angle class) an equal
	// share of ε: an op whose angle occurs m times in the circuit receives
	// ε/(D·m), where D is the number of distinct angle classes. Repeated
	// angles are synthesized tighter (they multiply through the error sum)
	// while rare angles get looser, cheaper sequences — this minimizes the
	// T count of the distinct-synthesis set, i.e. compile-time synthesis
	// work, at a small circuit-T premium over BudgetUniform.
	BudgetWeighted
)

// String names the strategy for stats output and CLI flags.
func (s BudgetStrategy) String() string {
	switch s {
	case BudgetWeighted:
		return "weighted"
	default:
		return "uniform"
	}
}

// ParseBudgetStrategy resolves a CLI-flag spelling.
func ParseBudgetStrategy(name string) (BudgetStrategy, bool) {
	switch name {
	case "uniform", "":
		return BudgetUniform, true
	case "weighted":
		return BudgetWeighted, true
	}
	return BudgetUniform, false
}

// budgetClass identifies a rotation's angle class for multiplicity
// counting: the gate type plus its quantized angles (the same quantization
// the synthesis cache keys on, so "same class" and "same cache entry"
// agree).
type budgetClass struct {
	g       circuit.GateType
	a, b, c int64
}

func classOf(op circuit.Op) budgetClass {
	return budgetClass{op.G, quantizeAngle(op.P[0]), quantizeAngle(op.P[1]), quantizeAngle(op.P[2])}
}

// AllocateBudget splits the circuit-level error budget eps across the
// nontrivial rotations of c, returning one epsilon per op (index-aligned
// with c.Ops; entries for ops that consume no synthesis are 0). The
// returned allocations sum to eps — by additivity of the unitary distance
// the lowered circuit's total error is then bounded by eps — unless c has
// no nontrivial rotations, in which case all entries are 0.
func AllocateBudget(c *circuit.Circuit, eps float64, strategy BudgetStrategy) []float64 {
	out := make([]float64, len(c.Ops))
	if eps <= 0 {
		return out
	}
	mult := map[budgetClass]int{}
	total := 0
	for _, op := range c.Ops {
		if !synthesizable(op) {
			continue
		}
		mult[classOf(op)]++
		total++
	}
	if total == 0 {
		return out
	}
	for i, op := range c.Ops {
		if !synthesizable(op) {
			continue
		}
		switch strategy {
		case BudgetWeighted:
			out[i] = eps / (float64(len(mult)) * float64(mult[classOf(op)]))
		default:
			out[i] = eps / float64(total)
		}
	}
	return out
}

// synthesizable reports whether op consumes synthesis budget: a rotation
// that is not a trivial π/4 multiple.
func synthesizable(op circuit.Op) bool {
	return op.G.IsRotation() && !pipeline.TrivialRotation(op)
}
