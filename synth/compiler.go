package synth

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/pipeline"
	"repro/internal/qmat"
	"repro/internal/transpile"
)

// IR selects the intermediate representation CompileCircuit lowers through.
type IR int

const (
	// IRAuto picks the IR the backend was evaluated on in the paper:
	// CX+H+RZ for gridsynth, CX+U3 for everything else.
	IRAuto IR = iota
	// IRU3 forces the CX+U3 workflow (one synthesis per fused rotation).
	IRU3
	// IRRz forces the CX+H+RZ workflow.
	IRRz
)

// Compiler is the batch service layer over a Backend: a worker pool with
// context cancellation, deterministic per-op seeding (seeds are derived
// from the base seed and the op's cache key, so results are independent of
// worker scheduling and batch order), and a shared synthesis cache.
type Compiler struct {
	// Backend performs the per-rotation synthesis. Required.
	Backend Backend
	// Req is the base request applied to every op; Req.Seed is the base of
	// the per-op seed derivation.
	Req Request
	// Workers bounds pool size (0 = GOMAXPROCS).
	Workers int
	// Cache is shared across CompileBatch/CompileCircuit jobs; NewCompiler
	// installs a fresh bounded cache, and several compilers may share one.
	Cache *Cache
	// IR selects the lowering workflow for CompileCircuit.
	IR IR

	// mu guards the lazy Cache initialization for zero-value compilers
	// used concurrently.
	mu sync.Mutex
}

// NewCompiler returns a Compiler over b with a fresh bounded cache.
func NewCompiler(b Backend, req Request) *Compiler {
	return &Compiler{Backend: b, Req: req, Cache: NewCache(0)}
}

// NewCompilerFor resolves name through the registry.
func NewCompilerFor(name string, req Request) (*Compiler, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("synth: unknown backend %q (have %v)", name, List())
	}
	return NewCompiler(b, req), nil
}

func (c *Compiler) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Compiler) cache() *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Cache == nil {
		c.Cache = NewCache(0)
	}
	return c.Cache
}

// perOpReq derives the request for one op from the base request and the
// op's cache key.
func (c *Compiler) perOpReq(k Key) Request {
	req := c.Req
	req.Seed = Seed(mixSeed(c.Req.seed(), keyHash(k)))
	return req
}

// missingJob is one distinct key the worker pool must synthesize.
type missingJob struct {
	k      Key
	target qmat.M2
}

// scanTargets performs the counted cache lookups for a job: the first
// occurrence of an uncached key is a miss (and scheduled once); later
// occurrences are hits — they will be served by that one synthesis.
func (c *Compiler) scanTargets(keys []Key, targets []qmat.M2) (missing []missingJob, hits, misses int) {
	cache := c.cache()
	pending := map[Key]bool{}
	for i, k := range keys {
		if pending[k] {
			cache.creditHit()
			hits++
			continue
		}
		if _, ok := cache.Get(k); ok {
			hits++
			continue
		}
		misses++
		pending[k] = true
		missing = append(missing, missingJob{k: k, target: targets[i]})
	}
	return missing, hits, misses
}

// synthesizeMissing runs the worker pool over the distinct missing keys,
// storing entries in the cache and returning the full per-key Results.
// The first error (including context cancellation) drains the pool.
func (c *Compiler) synthesizeMissing(ctx context.Context, missing []missingJob) (map[Key]Result, error) {
	computed := make(map[Key]Result, len(missing))
	if len(missing) == 0 {
		return computed, nil
	}
	cache := c.cache()
	jobs := make(chan missingJob)
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := c.Backend.Synthesize(wctx, j.target, c.perOpReq(j.k))
				if err != nil {
					fail(err)
					return
				}
				cache.Put(j.k, Entry{Seq: res.Seq, Err: res.Error, Backend: res.Backend})
				mu.Lock()
				computed[j.k] = res
				mu.Unlock()
			}
		}()
	}
feed:
	for _, j := range missing {
		select {
		case jobs <- j:
		case <-wctx.Done():
			fail(wctx.Err())
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return computed, firstErr
}

// CompileBatch synthesizes every target through the backend, serving
// repeats — within the batch or from earlier jobs sharing the cache — with
// a single synthesis each. Results are in input order. On error (including
// context cancellation) the pool drains and the first error is returned;
// the result slice then holds zero values for unfinished items.
func (c *Compiler) CompileBatch(ctx context.Context, targets []qmat.M2) ([]Result, error) {
	if c.Backend == nil {
		return nil, fmt.Errorf("synth: Compiler has no Backend")
	}
	cache := c.cache()
	scope := c.Backend.Name()
	eps := c.Req.Epsilon
	cfg := c.Req.cacheCfg()
	keys := make([]Key, len(targets))
	for i, u := range targets {
		keys[i] = KeyOfTarget(u, scope, eps, cfg)
	}
	missing, _, _ := c.scanTargets(keys, targets)
	computed, err := c.synthesizeMissing(ctx, missing)
	results := make([]Result, len(targets))
	if err != nil {
		return results, err
	}
	for i, k := range keys {
		if res, ok := computed[k]; ok {
			// The freshly synthesized occurrence keeps its full metadata
			// (wall time, evals); repeats read the amortized entry.
			results[i] = res
			delete(computed, k)
			continue
		}
		if e, ok := cache.peek(k); ok {
			results[i] = c.fromEntry(e)
			continue
		}
		// Evicted between phases (cache smaller than the batch's distinct
		// angles): recompute inline.
		res, serr := c.Backend.Synthesize(ctx, targets[i], c.perOpReq(k))
		if serr != nil {
			return results, serr
		}
		cache.Put(k, Entry{Seq: res.Seq, Err: res.Error, Backend: res.Backend})
		results[i] = res
	}
	return results, nil
}

// fromEntry rebuilds a Result from a cache entry (zero wall time: the work
// was amortized by an earlier job).
func (c *Compiler) fromEntry(e Entry) Result {
	name := e.Backend
	if name == "" {
		name = c.Backend.Name()
	}
	return Result{
		Seq:      e.Seq,
		Error:    e.Err,
		TCount:   e.Seq.TCount(),
		Clifford: e.Seq.CliffordCount(),
		Backend:  name,
	}
}

// CircuitResult is one end-to-end circuit compilation.
type CircuitResult struct {
	// Circuit is the lowered Clifford+T circuit.
	Circuit *circuit.Circuit
	// Stats aggregates the lowering pass (rotation count, error bounds).
	Stats pipeline.Stats
	// Setting is the winning transpiler setting; IRRotations counts the
	// nontrivial rotations in the IR before synthesis.
	Setting     transpile.Setting
	IRRotations int
	// Unique is how many distinct rotations this job synthesized; Hits and
	// Misses are this job's cache accounting (one lookup per nontrivial
	// rotation op).
	Unique       int
	Hits, Misses int
	// Backend names the backend; Wall is the end-to-end compile time.
	Backend string
	Wall    time.Duration
}

// CompileCircuit transpiles the circuit to the workflow IR (best of the 16
// transpiler settings) and lowers every nontrivial rotation through the
// backend: one cache lookup per rotation op, then a worker pool over the
// distinct misses, then assembly. Repeated angles — within the circuit or
// across jobs sharing the cache — synthesize once.
func (c *Compiler) CompileCircuit(ctx context.Context, circ *circuit.Circuit) (CircuitResult, error) {
	if c.Backend == nil {
		return CircuitResult{}, fmt.Errorf("synth: Compiler has no Backend")
	}
	start := time.Now()
	cache := c.cache()
	scope := c.Backend.Name()
	eps := c.Req.Epsilon
	cfg := c.Req.cacheCfg()
	basis := transpile.BasisU3
	if c.IR == IRRz || (c.IR == IRAuto && scope == "gridsynth") {
		basis = transpile.BasisRz
	}
	ir, setting := transpile.BestSetting(circ, basis)
	out := CircuitResult{Setting: setting, IRRotations: ir.CountRotations(), Backend: scope}

	// Phase 1: one counted lookup per nontrivial rotation (the first
	// occurrence of an uncached angle is the miss; repeats are hits).
	var (
		keys   []Key
		rotOps []qmat.M2
	)
	for _, op := range ir.Ops {
		if !op.G.IsRotation() || pipeline.TrivialRotation(op) {
			continue
		}
		keys = append(keys, KeyOf(op, scope, eps, cfg))
		rotOps = append(rotOps, op.Matrix1Q())
	}
	missing, hits, misses := c.scanTargets(keys, rotOps)
	out.Hits, out.Misses = hits, misses
	out.Unique = len(missing)

	// Phase 2: synthesize the distinct misses on the worker pool.
	if _, err := c.synthesizeMissing(ctx, missing); err != nil {
		return out, fmt.Errorf("synth: lowering %s IR: %w", scope, err)
	}

	// Phase 3: assemble. Lookups were charged in phase 1, so assembly reads
	// quietly; an entry evicted between phases is recomputed inline.
	lowered, stats, err := pipeline.Lower(ir, func(op circuit.Op) (gates.Sequence, float64, error) {
		k := KeyOf(op, scope, eps, cfg)
		if e, ok := cache.peek(k); ok {
			return e.Seq, e.Err, nil
		}
		res, serr := c.Backend.Synthesize(ctx, op.Matrix1Q(), c.perOpReq(k))
		if serr != nil {
			return nil, 0, serr
		}
		cache.Put(k, Entry{Seq: res.Seq, Err: res.Error, Backend: res.Backend})
		return res.Seq, res.Error, nil
	})
	if err != nil {
		return out, err
	}
	out.Circuit = lowered
	out.Stats = stats
	out.Wall = time.Since(start)
	return out, nil
}

// keyHash is FNV-1a over the key fields; mixSeed is splitmix64. Together
// they derive a deterministic, well-spread per-op seed from the base seed.
func keyHash(k Key) uint64 {
	const prime = 1099511628211
	h := fnv64(uint64(k.Gate), uint64(k.A), uint64(k.B), uint64(k.C), uint64(k.Eps), uint64(k.Cfg))
	for i := 0; i < len(k.Scope); i++ {
		h ^= uint64(k.Scope[i])
		h *= prime
	}
	return h
}

func mixSeed(base int64, salt uint64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(salt|1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
