package synth

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/circuit"
	"repro/internal/pipeline"
	"repro/internal/qmat"
	"repro/internal/transpile"
	"repro/synth/fault"
	"repro/synth/trace"
)

// IR selects the intermediate representation circuit compilation lowers
// through.
type IR int

const (
	// IRAuto picks the IR the backend was evaluated on in the paper:
	// CX+H+RZ for gridsynth, CX+U3 for everything else.
	IRAuto IR = iota
	// IRU3 forces the CX+U3 workflow (one synthesis per fused rotation).
	IRU3
	// IRRz forces the CX+H+RZ workflow.
	IRRz
)

// ParseIR resolves a CLI-flag spelling.
func ParseIR(name string) (IR, bool) {
	switch name {
	case "auto", "":
		return IRAuto, true
	case "u3":
		return IRU3, true
	case "rz":
		return IRRz, true
	}
	return IRAuto, false
}

// Compiler is the batch service layer over a Backend: a worker pool with
// context cancellation, deterministic per-op seeding (seeds are derived
// from the base seed and the op's cache key, so results are independent of
// worker scheduling and batch order), and a shared synthesis cache.
type Compiler struct {
	// Backend performs the per-rotation synthesis. Required.
	Backend Backend
	// Req is the base request applied to every op; Req.Seed is the base of
	// the per-op seed derivation.
	Req Request
	// Workers bounds pool size (0 = GOMAXPROCS).
	Workers int
	// Cache is shared across CompileBatch/CompileCircuit jobs; NewCompiler
	// installs a fresh bounded cache, and several compilers may share one.
	Cache *Cache
	// IR selects the lowering workflow for CompileCircuit.
	IR IR
	// Observe, when set, fires after every successful synthesis this
	// compiler performs (worker pool and inline recomputes alike) — the
	// metrics hook a service uses to histogram synthesis latency by
	// backend and epsilon without depending on trace sampling. It is
	// called from worker goroutines and must be safe for concurrent use.
	Observe func(SynthObservation)

	// mu guards the lazy Cache initialization for zero-value compilers
	// used concurrently.
	mu sync.Mutex
}

// SynthObservation is one synthesis event, as reported to
// Compiler.Observe. Successful syntheses report the producing backend
// with Won=true; racing backends additionally report each loser
// (Won=false) and each failed racer (Failed=true), so win-rate
// statistics see both sides of every race. Cache hits are reported with
// CacheHit=true and zero Wall — the work was amortized, not performed.
type SynthObservation struct {
	// Backend produced (or attempted) the sequence — the individual racer
	// for auto's loser/error reports, never "auto" itself.
	Backend string
	// Epsilon is the threshold the synthesis ran under.
	Epsilon float64
	// Wall is the synthesis wall-clock time (zero for cache hits).
	Wall time.Duration
	// Class is the op's bounded angle class (ObsClass vocabulary).
	Class string
	// TCount is the result's T-gate count; -1 when unknown (a cache hit
	// on an entry still being synthesized by a concurrent job).
	TCount int
	// ErrDist is the realized operator-distance error of the sequence.
	ErrDist float64
	// CacheHit marks a lookup served from cache instead of synthesis.
	CacheHit bool
	// Won is true for the result actually used (every non-racing
	// synthesis, or the race winner); false for a race loser.
	Won bool
	// Failed marks a racer that returned an error; only Backend, Epsilon,
	// Class and Wall are meaningful then.
	Failed bool
}

// NewCompiler returns a Compiler over b with a fresh bounded cache.
func NewCompiler(b Backend, req Request) *Compiler {
	return &Compiler{Backend: b, Req: req, Cache: NewCache(0)}
}

// NewCompilerFor resolves name through the registry.
func NewCompilerFor(name string, req Request) (*Compiler, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("synth: unknown backend %q (have %v)", name, List())
	}
	return NewCompiler(b, req), nil
}

func (c *Compiler) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Compiler) cache() *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Cache == nil {
		c.Cache = NewCache(0)
	}
	return c.Cache
}

// opJob is one synthesis lookup: its cache key, the target unitary, and
// the request it runs under. Requests vary per op when a circuit-level
// budget allocates per-rotation epsilons (the key's Eps field tracks
// that, so differently budgeted syntheses never share an entry).
type opJob struct {
	k      Key
	target qmat.M2
	req    Request
}

// derived returns the job's request with its deterministic per-op seed
// (splitmix64 of the base seed and the key hash).
func (j opJob) derived() Request {
	req := j.req
	req.Seed = Seed(mixSeed(req.seed(), keyHash(j.k)))
	return req
}

// scanJobs performs the counted cache lookups for a job list: the first
// occurrence of an uncached key is a miss (and scheduled once); later
// occurrences are hits — they will be served by that one synthesis.
// Lookups run under ctx, so peer-tier consultations are cancellable and
// traced.
func (c *Compiler) scanJobs(ctx context.Context, jobs []opJob) (missing []opJob, hits, misses int) {
	cache := c.cache()
	pending := map[Key]bool{}
	for _, j := range jobs {
		if pending[j.k] {
			cache.creditHit()
			hits++
			c.observeHit(j, Entry{}, false)
			continue
		}
		if e, ok := cache.GetCtx(ctx, j.k); ok {
			hits++
			c.observeHit(j, e, true)
			continue
		}
		misses++
		pending[j.k] = true
		missing = append(missing, j)
	}
	return missing, hits, misses
}

// observeHit reports a cache hit to the Observe hook. On the
// pending-dedup path the entry does not exist yet (a concurrent job is
// still synthesizing it), so TCount is the -1 "unknown" sentinel and
// ErrDist is zero; a materialized entry reports its real metadata.
func (c *Compiler) observeHit(j opJob, e Entry, materialized bool) {
	if c.Observe == nil {
		return
	}
	o := SynthObservation{
		Backend:  c.Backend.Name(),
		Epsilon:  j.req.eps(),
		Class:    j.k.obsClass(),
		TCount:   -1,
		CacheHit: true,
	}
	if materialized {
		if e.Backend != "" {
			o.Backend = e.Backend
		}
		o.TCount = e.Seq.TCount()
		o.ErrDist = e.Err
	}
	c.Observe(o)
}

// synthesizeMissing runs the worker pool over the distinct missing jobs,
// storing entries in the cache and returning the per-key Results. The
// optional progress hook fires after each completed synthesis with
// (done, total). The first error (including context cancellation) drains
// the pool — except contained backend panics, which fail only their own
// op: the key's Result carries Err, nothing is cached for it, and the
// pool keeps running.
func (c *Compiler) synthesizeMissing(ctx context.Context, missing []opJob, progress func(done, total int)) (map[Key]Result, error) {
	computed := make(map[Key]Result, len(missing))
	if len(missing) == 0 {
		return computed, nil
	}
	cache := c.cache()
	jobs := make(chan opJob)
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		done     int
	)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := c.synthOne(wctx, j)
				if err != nil {
					var pe *fault.PanicError
					if !errors.As(err, &pe) {
						fail(err)
						return
					}
					// A recovered panic costs one op, not the batch: record
					// the failure under its key (repeats share it) and keep
					// going. Nothing is cached — a later batch retries fresh.
					res = Result{Err: err, Backend: c.Backend.Name()}
				} else {
					cache.PutCtx(wctx, j.k, Entry{Seq: res.Seq, Err: res.Error, Backend: res.Backend})
				}
				mu.Lock()
				computed[j.k] = res
				done++
				n := done
				mu.Unlock()
				if progress != nil {
					progress(n, len(missing))
				}
			}
		}()
	}
feed:
	for _, j := range missing {
		select {
		case jobs <- j:
		case <-wctx.Done():
			fail(wctx.Err())
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return computed, firstErr
}

// synthOne runs one synthesis under a per-op trace span (when ctx carries
// one) and reports it to the Observe hook. The span is named "synth" and
// records the op's angle class, epsilon, the producing backend (the race
// winner for "auto"), and the outcome; the backend call itself sees the
// span in its context, so backend-internal spans (gridsynth's per-k scan,
// auto's racer spans) nest under it.
func (c *Compiler) synthOne(ctx context.Context, j opJob) (Result, error) {
	req := j.derived()
	class := j.k.obsClass()
	sp := trace.FromContext(ctx).Child("synth")
	if sp != nil {
		sp.SetAttr("class", j.k.angleClass())
		sp.SetAttr("eps", req.eps())
		ctx = trace.NewContext(ctx, sp)
	}
	if c.Observe != nil {
		// Racing backends report losers and failed racers through the
		// context; the hook stamps the op's class, which only the compiler
		// knows.
		obs := c.Observe
		ctx = withRaceObserver(ctx, func(o SynthObservation) {
			o.Class = class
			obs(o)
		})
	}
	res, err := c.synthesizeContained(ctx, j.target, req)
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			sp.SetAttr("backend", res.Backend)
			sp.SetAttr("t_count", res.TCount)
			sp.SetAttr("err_dist", res.Error)
		}
		sp.End()
	}
	if c.Observe != nil {
		var pe *fault.PanicError
		switch {
		case err == nil:
			c.Observe(SynthObservation{
				Backend: res.Backend,
				Epsilon: req.eps(),
				Wall:    res.Wall,
				Class:   class,
				TCount:  res.TCount,
				ErrDist: res.Error,
				Won:     true,
			})
		case errors.As(err, &pe):
			// A contained panic is a failed synthesis the statistics must
			// see (the same Failed shape a failed racer reports).
			c.Observe(SynthObservation{
				Backend: c.Backend.Name(),
				Epsilon: req.eps(),
				Class:   class,
				Failed:  true,
			})
		}
	}
	return res, err
}

// synthesizeContained is the backend call under the worker-boundary
// containment: the fault injector's backend site fires first (the chaos
// harness's hook), and a panic anywhere below — backend code, injected
// or genuine — is recovered into a *fault.PanicError instead of killing
// the worker goroutine and with it the process.
func (c *Compiler) synthesizeContained(ctx context.Context, target qmat.M2, req Request) (res Result, err error) {
	site := "backend:" + c.Backend.Name()
	defer fault.Recover(ctx, site, &err)
	if ferr := fault.At(ctx, site); ferr != nil {
		return Result{}, ferr
	}
	return c.Backend.Synthesize(ctx, target, req)
}

// ObsClasses is the bounded angle-class vocabulary statistics are keyed
// on: unlike angleClass (one string per distinct quantized angle,
// unbounded), obsClass buckets every op into one of these five, so a
// per-(backend, ε-band, class) statistics table stays bounded no matter
// the traffic.
var ObsClasses = []string{"pi2", "pi4", "dyadic", "generic", "u3"}

// obsClass buckets the key's angle: exact multiples of π/2 ("pi2") or
// π/4 ("pi4") — the Clifford and Clifford+T fixed points — then other
// dyadic fractions k·π/2^j, j ≤ 12 ("dyadic", the angles iterative
// phase estimation and QFT produce), then everything else ("generic").
// Genuinely three-angle (U3) keys are their own class: their synthesis
// splits the budget three ways, so their latency is not comparable to
// single-Rz. A diagonal U3 key — θ a multiple of 2π — is an Rz in
// disguise (U3(0,φ,λ) = e^{iα}·Rz(φ+λ)) and classes by its net angle:
// both the transpiler's U3 basis and matrix-level batch keys (ZYZ
// angles) express pure-Rz traffic this way, and it must not all
// collapse into "u3".
func (k Key) obsClass() string {
	const q = 1e-12 // inverse of quantizeAngle's scale
	// Quantization leaves ~1e-12 absolute noise; 1e-9 on the ratio
	// comfortably covers it without absorbing genuinely nearby angles.
	mult := func(x, unit float64) bool {
		r := x / unit
		return math.Abs(r-math.Round(r)) < 1e-9
	}
	theta := float64(k.A) * q
	if k.B != 0 || k.C != 0 {
		if !mult(theta, 2*math.Pi) {
			return "u3"
		}
		theta = float64(k.B)*q + float64(k.C)*q
	}
	switch {
	case mult(theta, math.Pi/2):
		return "pi2"
	case mult(theta, math.Pi/4):
		return "pi4"
	default:
		for j := 3; j <= 12; j++ {
			if mult(theta, math.Pi/float64(int64(1)<<j)) {
				return "dyadic"
			}
		}
		return "generic"
	}
}

// angleClass renders the key's gate and quantized angles — the budget
// package's angle-class identity — as a human-readable trace attribute.
func (k Key) angleClass() string {
	const q = 1e-12 // inverse of quantizeAngle's scale
	s := k.Gate.String() + "(" + strconv.FormatFloat(float64(k.A)*q, 'g', 6, 64)
	if k.B != 0 || k.C != 0 {
		s += "," + strconv.FormatFloat(float64(k.B)*q, 'g', 6, 64) +
			"," + strconv.FormatFloat(float64(k.C)*q, 'g', 6, 64)
	}
	return s + ")"
}

// BatchStats is the cache accounting of one CompileBatchStats call:
// Unique distinct syntheses performed, and the Hits/Misses charged for
// this batch's lookups (Hits+Misses counts every lookup the batch made,
// including eviction recomputes).
type BatchStats struct {
	Unique       int
	Hits, Misses int
}

// CompileBatch synthesizes every target through the backend, serving
// repeats — within the batch or from earlier jobs sharing the cache — with
// a single synthesis each. Results are in input order. On error (including
// context cancellation) the pool drains and the first error is returned;
// the result slice then holds zero values for unfinished items. A backend
// panic is contained at the worker boundary and fails only its own op:
// the batch still returns nil error and that op's Result carries Err (a
// *fault.PanicError) with an empty Seq.
func (c *Compiler) CompileBatch(ctx context.Context, targets []qmat.M2) ([]Result, error) {
	results, _, err := c.CompileBatchStats(ctx, targets)
	return results, err
}

// CompileBatchStats is CompileBatch plus this batch's own cache
// accounting — the per-request numbers a service reports, which a shared
// cache's global counters cannot provide under concurrent requests.
func (c *Compiler) CompileBatchStats(ctx context.Context, targets []qmat.M2) ([]Result, BatchStats, error) {
	if c.Backend == nil {
		return nil, BatchStats{}, fmt.Errorf("synth: Compiler has no Backend")
	}
	cache := c.cache()
	scope := c.Backend.Name()
	cfg := c.Req.cacheCfg()
	jobs := make([]opJob, len(targets))
	for i, u := range targets {
		jobs[i] = opJob{k: KeyOfTarget(u, scope, c.Req.Epsilon, cfg), target: u, req: c.Req}
	}
	missing, hits, misses := c.scanJobs(ctx, jobs)
	stats := BatchStats{Unique: len(missing), Hits: hits, Misses: misses}
	computed, err := c.synthesizeMissing(ctx, missing, nil)
	results := make([]Result, len(targets))
	if err != nil {
		return results, stats, err
	}
	for i, j := range jobs {
		if res, ok := computed[j.k]; ok {
			// The freshly synthesized occurrence keeps its full metadata
			// (wall time, evals); repeats read the amortized entry. A
			// failed op's record stays put so its repeats report the same
			// failure instead of falling through to an inline recompute.
			results[i] = res
			if res.Err == nil {
				delete(computed, j.k)
			}
			continue
		}
		if e, ok := cache.peek(j.k); ok {
			results[i] = c.fromEntry(e)
			continue
		}
		// Evicted between phases (cache smaller than the batch's distinct
		// angles): recompute inline. The scan never charged this second
		// lookup, so credit the miss — Hits+Misses must count every lookup.
		cache.creditMiss()
		stats.Misses++
		res, serr := c.synthOne(ctx, j)
		if serr != nil {
			var pe *fault.PanicError
			if !errors.As(serr, &pe) {
				return results, stats, serr
			}
			results[i] = Result{Err: serr, Backend: c.Backend.Name()}
			continue
		}
		cache.PutCtx(ctx, j.k, Entry{Seq: res.Seq, Err: res.Error, Backend: res.Backend})
		results[i] = res
	}
	return results, stats, nil
}

// fromEntry rebuilds a Result from a cache entry (zero wall time: the work
// was amortized by an earlier job).
func (c *Compiler) fromEntry(e Entry) Result {
	name := e.Backend
	if name == "" {
		name = c.Backend.Name()
	}
	return Result{
		Seq:      e.Seq,
		Error:    e.Err,
		TCount:   e.Seq.TCount(),
		Clifford: e.Seq.CliffordCount(),
		Backend:  name,
	}
}

// CircuitResult is one end-to-end circuit compilation.
//
// Deprecated: run a Pipeline and read PipelineResult, which additionally
// reports pass timings, the budget configuration and the resource
// estimate.
type CircuitResult struct {
	// Circuit is the lowered Clifford+T circuit.
	Circuit *circuit.Circuit
	// Stats aggregates the lowering pass (rotation count, error bounds).
	Stats pipeline.Stats
	// Setting is the winning transpiler setting; IRRotations counts the
	// nontrivial rotations in the IR before synthesis.
	Setting     transpile.Setting
	IRRotations int
	// Unique is how many distinct rotations this job synthesized; Hits and
	// Misses count every cache lookup this job performed: one per
	// nontrivial rotation op, plus one per eviction recompute.
	Unique       int
	Hits, Misses int
	// Backend names the backend; Wall is the end-to-end compile time.
	Backend string
	Wall    time.Duration
}

// CompileCircuit transpiles the circuit to the workflow IR (best of the 16
// transpiler settings) and lowers every nontrivial rotation through the
// backend at the uniform per-rotation Req.Epsilon.
//
// Deprecated: CompileCircuit is a canned transpile→lower pipeline kept
// for compatibility. Use NewPipeline, which adds circuit-level error
// budgets (WithCircuitEpsilon), pass composition (WithPasses), progress
// hooks and resource estimation:
//
//	pl := synth.NewPipeline(be, synth.WithRequest(req), synth.WithWorkers(8))
//	res, err := pl.Run(ctx, circ)
func (c *Compiler) CompileCircuit(ctx context.Context, circ *circuit.Circuit) (CircuitResult, error) {
	if c.Backend == nil {
		return CircuitResult{}, fmt.Errorf("synth: Compiler has no Backend")
	}
	pl := NewPipeline(c.Backend,
		WithRequest(c.Req),
		WithWorkers(c.Workers),
		WithCache(c.cache()),
		WithIR(c.IR),
		WithPasses(Transpile(), Lower()),
		WithSynthObserver(c.Observe),
	)
	res, err := pl.Run(ctx, circ)
	if err != nil {
		return CircuitResult{Backend: c.Backend.Name()}, err
	}
	return CircuitResult{
		Circuit: res.Circuit,
		Stats: pipeline.Stats{
			Rotations:  res.Stats.Rotations,
			ErrorBound: res.Stats.ErrorBound,
			MaxError:   res.Stats.MaxError,
		},
		Setting:     res.Stats.Setting,
		IRRotations: res.Stats.IRRotations,
		Unique:      res.Stats.Unique,
		Hits:        res.Stats.Hits,
		Misses:      res.Stats.Misses,
		Backend:     res.Backend,
		Wall:        res.Wall,
	}, nil
}

// keyHash is FNV-1a over the key fields; mixSeed is splitmix64. Together
// they derive a deterministic, well-spread per-op seed from the base seed.
func keyHash(k Key) uint64 {
	const prime = 1099511628211
	h := fnv64(uint64(k.Gate), uint64(k.A), uint64(k.B), uint64(k.C), uint64(k.Eps), uint64(k.Cfg))
	for i := 0; i < len(k.Scope); i++ {
		h ^= uint64(k.Scope[i])
		h *= prime
	}
	return h
}

func mixSeed(base int64, salt uint64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(salt|1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
