package multiqubit

import (
	"math"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/qmat"
)

func TestCanMatrixKnownPoints(t *testing.T) {
	// Can(0,0,0) = I.
	if d := qmat.Distance4(CanMatrix(0, 0, 0), qmat.I4()); d > 1e-12 {
		t.Fatalf("Can(0,0,0) distance to I: %g", d)
	}
	// Can(π/4,π/4,π/4) = e^{iπ/4}·SWAP (since XX+YY+ZZ = 2·SWAP − I).
	if d := qmat.Distance4(CanMatrix(math.Pi/4, math.Pi/4, math.Pi/4), qmat.SWAP4()); d > 1e-12 {
		t.Fatalf("Can(π/4,π/4,π/4) distance to SWAP: %g", d)
	}
	// exp(iπ/4·XX) is locally equivalent to CX: same canonical coordinates.
	d, err := Decompose(qmat.CXFirst())
	if err != nil {
		t.Fatal(err)
	}
	want := [3]float64{math.Pi / 4, 0, 0}
	for k := 0; k < 3; k++ {
		if math.Abs(d.C[k]-want[k]) > 1e-10 {
			t.Fatalf("CX coords %v, want %v", d.C, want)
		}
	}
}

// TestKAKProperty is the headline guarantee: on ≥200 seeded Haar-random
// SU(4) matrices the synthesized 3-CX circuit reconstructs the input to
// within 1e-10 (phase-invariant distance).
func TestKAKProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		u := qmat.HaarRandom4(rng)
		ops, d, err := Synthesize(u, 0, 1, 1e-10)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		got, err := OpsMatrix(ops, 0, 1)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if dist := qmat.MaxAbsDiff4(got, u); dist > 1e-10 {
			t.Fatalf("sample %d: reconstruction distance %g > 1e-10", i, dist)
		}
		ncx := 0
		for _, op := range ops {
			if op.G == circuit.CX {
				ncx++
			}
		}
		if ncx != d.CX || ncx > 3 {
			t.Fatalf("sample %d: emitted %d CX, decomposition says %d", i, ncx, d.CX)
		}
	}
}

// TestReconstructExact checks the factored form (no class snapping)
// matches to near machine precision.
func TestReconstructExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		u := qmat.HaarRandom4(rng)
		d, err := Decompose(u)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if diff := qmat.MaxAbsDiff4(d.Reconstruct(), u); diff > 1e-11 {
			t.Fatalf("sample %d: reconstruct diff %g", i, diff)
		}
	}
}

func TestCXClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	local := func() qmat.M4 {
		return qmat.Kron(qmat.HaarRandom(rng), qmat.HaarRandom(rng))
	}
	cases := []struct {
		name string
		u    qmat.M4
		cx   int
	}{
		{"identity", qmat.I4(), 0},
		{"local", local(), 0},
		{"cx", qmat.CXFirst(), 1},
		{"cx-reversed", qmat.CXSecond(), 1},
		{"cz", qmat.CZ4(), 1},
		{"dressed-cx", qmat.MulAll4(local(), qmat.CXFirst(), local()), 1},
		{"can-2cx", CanMatrix(0.31, 0.12, 0), 2},
		{"dressed-2cx", qmat.MulAll4(local(), CanMatrix(0.43, 0.29, 0), local()), 2},
		{"swap", qmat.SWAP4(), 3},
		{"generic", CanMatrix(0.31, 0.22, 0.11), 3},
	}
	for _, tc := range cases {
		ops, d, err := Synthesize(tc.u, 0, 1, 1e-9)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if d.CX != tc.cx {
			t.Errorf("%s: CX class %d, want %d (coords %v)", tc.name, d.CX, tc.cx, d.C)
		}
		ncx := 0
		for _, op := range ops {
			if op.G == circuit.CX {
				ncx++
			}
		}
		if ncx != tc.cx {
			t.Errorf("%s: emitted %d CX, want %d", tc.name, ncx, tc.cx)
		}
	}
}

// TestCanonicalCoordinates builds U = (k1⊗k2)·Can(c)·(k3⊗k4) for
// chamber-interior c and checks the analysis recovers exactly c.
func TestCanonicalCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coords := [][3]float64{
		{0.7, 0.5, 0.3},  // generic interior (×π/4 below)
		{0.9, 0.6, -0.2}, // negative c3
		{0.5, 0.5, 0.25}, // degenerate c1 = c2
		{0.8, 0.4, 0.4},  // degenerate c2 = |c3|
		{0.6, 0.35, 0.0}, // c3 = 0 boundary
	}
	for _, w := range coords {
		c := [3]float64{w[0] * math.Pi / 4, w[1] * math.Pi / 4, w[2] * math.Pi / 4}
		u := qmat.MulAll4(
			qmat.Kron(qmat.HaarRandom(rng), qmat.HaarRandom(rng)),
			CanMatrix(c[0], c[1], c[2]),
			qmat.Kron(qmat.HaarRandom(rng), qmat.HaarRandom(rng)),
		)
		d, err := Decompose(u)
		if err != nil {
			t.Fatalf("coords %v: %v", c, err)
		}
		for k := 0; k < 3; k++ {
			if math.Abs(d.C[k]-c[k]) > 1e-9 {
				t.Fatalf("coords %v: recovered %v", c, d.C)
			}
		}
	}
}

// TestWeylChamber checks every decomposition lands in the canonical cell.
func TestWeylChamber(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		d, err := Decompose(qmat.HaarRandom4(rng))
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		c := d.C
		ok := c[0] >= c[1]-1e-12 && c[1] >= math.Abs(c[2])-1e-12 &&
			c[0] <= math.Pi/4+1e-12 && c[1] >= -1e-12
		if c[0] > math.Pi/4-1e-12 && c[2] < -1e-12 {
			ok = false
		}
		if !ok {
			t.Fatalf("sample %d: coords %v outside Weyl chamber", i, c)
		}
	}
}

// TestOpsMatrixRejectsStray checks OpsMatrix refuses ops off the pair.
func TestOpsMatrixRejectsStray(t *testing.T) {
	ops := []circuit.Op{{G: circuit.H, Q: [2]int{2, -1}}}
	if _, err := OpsMatrix(ops, 0, 1); err == nil {
		t.Fatal("expected error for op off the pair")
	}
}
