// Package multiqubit synthesizes arbitrary two-qubit unitaries into at
// most 3 CX gates plus single-qubit U3 rotations via the KAK (Cartan)
// decomposition, and fuses runs of gates confined to a qubit pair into one
// 4x4 block so the whole run re-synthesizes as a single decomposition
// (FuseBlocks). The resulting U3 rotations ride the existing per-rotation
// lowering machinery unchanged.
//
// The math: every U ∈ U(4) factors as
//
//	U = e^{iγ}·(La⊗Lb)·Can(c1,c2,c3)·(Ra⊗Rb),
//	Can(c) = exp(i(c1·XX + c2·YY + c3·ZZ)),
//
// with single-qubit La..Rb and canonical (Weyl-chamber) coordinates
// c1 ≥ c2 ≥ |c3|, c1,c2 ∈ [0,π/4]. The coordinates are found by
// diagonalizing UᵀU in the magic basis (where SU(2)⊗SU(2) becomes SO(4)
// and Can becomes diagonal), and they decide the CX cost exactly:
// (0,0,0) → 0 CX, (π/4,0,0) → 1 CX, c3 = 0 → 2 CX, else 3 CX.
package multiqubit

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/circuit"
	"repro/internal/qmat"
)

// classTol is the coordinate tolerance for snapping a decomposition into a
// cheaper CX class. Snapping moves the realized unitary by O(classTol), so
// it is kept an order of magnitude below the 1e-10 reconstruction
// guarantee the package tests enforce.
const classTol = 1e-11

// magicM is the magic-basis change matrix (columns are the Bell-like magic
// states): M†·(σk⊗σk)·M is diagonal for k ∈ {x,y,z}, M†·SO(4)·M = SU(2)⊗SU(2).
func magicM() qmat.M4 {
	s := complex(1/math.Sqrt2, 0)
	i := complex(0, 1/math.Sqrt2)
	return qmat.M4{
		{s, 0, 0, i},
		{0, i, s, 0},
		{0, i, -s, 0},
		{s, 0, 0, -i},
	}
}

// CanMatrix returns Can(c1,c2,c3) = exp(i(c1·XX + c2·YY + c3·ZZ)), built
// from its magic-basis diagonal form M·diag(e^{iφ_j})·M†.
func CanMatrix(c1, c2, c3 float64) qmat.M4 {
	phi := canPhases(c1, c2, c3)
	m := magicM()
	var d qmat.M4
	for j := 0; j < 4; j++ {
		d[j][j] = cmplx.Exp(complex(0, phi[j]))
	}
	return qmat.MulAll4(m, d, qmat.Dagger4(m))
}

// canPhases maps Cartan coordinates to the magic-basis eigenphases of Can.
func canPhases(c1, c2, c3 float64) [4]float64 {
	return [4]float64{c1 - c2 + c3, c1 + c2 - c3, -c1 - c2 - c3, -c1 + c2 + c3}
}

// Decomposition is a KAK factorization
// U = Phase·(La⊗Lb)·Can(C)·(Ra⊗Rb) in canonical (Weyl-chamber) form:
// C[0] ≥ C[1] ≥ |C[2]|, C[0],C[1] ∈ [0,π/4], and C[2] ≥ 0 when C[0] = π/4.
type Decomposition struct {
	// Phase is the global phase e^{iγ}.
	Phase complex128
	// C are the canonical Cartan coordinates (c1, c2, c3).
	C [3]float64
	// La/Lb act on the pair's first/second qubit after Can; Ra/Rb before.
	La, Lb, Ra, Rb qmat.M2
	// CX is the exact CX cost of the synthesized circuit (0..3), after
	// class snapping at classTol.
	CX int
}

// Reconstruct multiplies the factors back together (without class
// snapping); it matches the decomposed unitary to machine precision.
func (d *Decomposition) Reconstruct() qmat.M4 {
	return qmat.Scale4(d.Phase, qmat.MulAll4(
		qmat.Kron(d.La, d.Lb),
		CanMatrix(d.C[0], d.C[1], d.C[2]),
		qmat.Kron(d.Ra, d.Rb),
	))
}

// Decompose computes the canonical KAK decomposition of a two-qubit
// unitary (entrywise unitary to ~1e-9).
func Decompose(u qmat.M4) (*Decomposition, error) {
	if !qmat.IsUnitary4(u, 1e-8) {
		return nil, fmt.Errorf("multiqubit: input is not unitary")
	}
	// Special-ize: U = g·Us with det(Us) = 1.
	g := cmplx.Pow(qmat.Det4(u), 0.25)
	if cmplx.Abs(g) < 1e-6 {
		return nil, fmt.Errorf("multiqubit: degenerate determinant")
	}
	us := qmat.Scale4(1/g, u)

	// Magic basis: Up = M†·Us·M. Then P = Upᵀ·Up is complex symmetric
	// unitary with P = K2ᵀ·D²·K2 for the (theoretically real orthogonal)
	// right factor of Up = K1·D·K2, D = diag(e^{iθ}). So the real
	// eigenbasis Q of P gives K2 = Qᵀ directly, and K1 = Up·Q·D^{-1} is
	// provably real orthogonal: K1ᵀK1 = D^{-1}·(QᵀPQ)·D^{-1} = I, and a
	// real matrix is exactly one that is both unitary and complex-orthogonal.
	m := magicM()
	md := qmat.Dagger4(m)
	up := qmat.MulAll4(md, us, m)
	p := qmat.Mul4(qmat.Transpose4(up), up)

	q, theta, err := diagonalizeSymUnitary(p)
	if err != nil {
		return nil, err
	}
	qc := complexify(q)
	// det(K2) = det(Q) = +1 so that M·K2·M† lands in SU(2)⊗SU(2): flip
	// one eigenvector when the Jacobi basis came out with det −1 (the
	// matching column of K1 flips with it, so det(K1) is unaffected
	// relative to the e^{-iΣθ} factor below).
	if real(qmat.Det4(qc)) < 0 {
		for r := 0; r < 4; r++ {
			q[r][3] = -q[r][3]
		}
		qc = complexify(q)
	}
	k1 := qmat.Mul4(up, qc)
	for j := 0; j < 4; j++ {
		e := cmplx.Exp(complex(0, -theta[j]))
		for row := 0; row < 4; row++ {
			k1[row][j] *= e
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(imag(k1[i][j])) > 1e-7 {
				return nil, fmt.Errorf("multiqubit: magic-basis factor not real (%g)", imag(k1[i][j]))
			}
		}
	}
	// det(K1) = +1 too: θ_0 → θ_0+π negates column 0 of K1 while keeping
	// the product K1·D·K2 and the eigenphase e^{2iθ_0} unchanged.
	if real(qmat.Det4(k1)) < 0 {
		theta[0] += math.Pi
		for row := 0; row < 4; row++ {
			k1[row][0] = -k1[row][0]
		}
	}

	// Pull the traceful part of θ into the global phase, leaving the
	// coordinate phases φ with Σφ = 0.
	s := theta[0] + theta[1] + theta[2] + theta[3]
	g *= cmplx.Exp(complex(0, s/4))
	phi := [4]float64{theta[0] - s/4, theta[1] - s/4, theta[2] - s/4, theta[3] - s/4}
	d := &Decomposition{
		Phase: g,
		C: [3]float64{
			(phi[0] + phi[1]) / 2,
			(phi[1] + phi[3]) / 2,
			(phi[0] + phi[3]) / 2,
		},
	}

	// Back to the computational basis; both factors are exactly local.
	l1 := qmat.MulAll4(m, k1, md)
	l2 := qmat.MulAll4(m, qmat.Transpose4(qc), md)
	var ph1, ph2 complex128
	var ok bool
	d.La, d.Lb, ph1, ok = qmat.KronFactor(l1, 1e-7)
	if !ok {
		return nil, fmt.Errorf("multiqubit: left factor not a tensor product")
	}
	d.Ra, d.Rb, ph2, ok = qmat.KronFactor(l2, 1e-7)
	if !ok {
		return nil, fmt.Errorf("multiqubit: right factor not a tensor product")
	}
	d.Phase *= ph1 * ph2

	d.canonicalize()
	d.CX = d.classify()
	return d, nil
}

// complexify lifts a real matrix to M4.
func complexify(a [4][4]float64) qmat.M4 {
	var m qmat.M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = complex(a[i][j], 0)
		}
	}
	return m
}

// diagonalizeSymUnitary finds a real orthogonal Q and phases θ with
// QᵀPQ = diag(e^{2iθ}) for a complex symmetric unitary P. Re(P) and Im(P)
// commute, so the eigenvectors of a generic real combination Re+t·Im
// diagonalize both; a few t values cover degenerate spectra.
func diagonalizeSymUnitary(p qmat.M4) ([4][4]float64, [4]float64, error) {
	var pr, pi [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			pr[i][j] = real(p[i][j])
			pi[i][j] = imag(p[i][j])
		}
	}
	bestOff := math.Inf(1)
	var bestQ [4][4]float64
	for _, t := range []float64{0, 1, math.Sqrt2 - 1, math.Sqrt2 + 1, math.Pi / 7} {
		var a [4][4]float64
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				a[i][j] = pr[i][j] + t*pi[i][j]
			}
		}
		q := jacobi4(a)
		// Off-diagonal residue of QᵀPQ over the complex P.
		d := qmat.MulAll4(qmat.Transpose4(complexify(q)), p, complexify(q))
		off := 0.0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i != j {
					if v := cmplx.Abs(d[i][j]); v > off {
						off = v
					}
				}
			}
		}
		if off < bestOff {
			bestOff, bestQ = off, q
		}
		if off < 1e-12 {
			break
		}
	}
	if bestOff > 1e-8 {
		return bestQ, [4]float64{}, fmt.Errorf("multiqubit: eigenbasis residue %g", bestOff)
	}
	d := qmat.MulAll4(qmat.Transpose4(complexify(bestQ)), p, complexify(bestQ))
	var theta [4]float64
	for j := 0; j < 4; j++ {
		theta[j] = cmplx.Phase(d[j][j]) / 2
	}
	return bestQ, theta, nil
}

// jacobi4 returns the eigenvector matrix (columns) of a real symmetric 4x4
// matrix by cyclic Jacobi rotations.
func jacobi4(a [4][4]float64) [4][4]float64 {
	var v [4][4]float64
	for i := 0; i < 4; i++ {
		v[i][i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		off := 0.0
		for p := 0; p < 4; p++ {
			for q := p + 1; q < 4; q++ {
				off += a[p][q] * a[p][q]
			}
		}
		if off < 1e-30 {
			break
		}
		for p := 0; p < 4; p++ {
			for q := p + 1; q < 4; q++ {
				if math.Abs(a[p][q]) < 1e-18 {
					continue
				}
				th := 0.5 * math.Atan2(2*a[p][q], a[q][q]-a[p][p])
				c, s := math.Cos(th), math.Sin(th)
				for k := 0; k < 4; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < 4; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < 4; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	return v
}

// --- Weyl-chamber canonicalization -----------------------------------------
//
// Each reduction step rewrites U = Phase·(La⊗Lb)·Can(C)·(Ra⊗Rb) exactly:
// the coordinate change is compensated by Paulis/Cliffords folded into the
// local factors and phase, so Reconstruct() is invariant.

var paulis = [3]qmat.M2{qmat.X, qmat.Y, qmat.Z}

// shift reduces C[k] by m·π/2 using Can(c+π/2·e_k) = i·(σk⊗σk)·Can(c).
func (d *Decomposition) shift(k, m int) {
	if m == 0 {
		return
	}
	d.C[k] -= float64(m) * math.Pi / 2
	if m%2 != 0 {
		d.La = qmat.Mul(d.La, paulis[k])
		d.Lb = qmat.Mul(d.Lb, paulis[k])
	}
	d.Phase *= cmplx.Exp(complex(0, float64(m)*math.Pi/2))
}

// flipPauli[j][k] conjugates away the signs of the coordinate pair {j,k}:
// (P⊗I)·Can(c)·(P⊗I) negates exactly the two coordinates P anticommutes
// with (Z flips c1,c2; X flips c2,c3; Y flips c1,c3).
func flipPauli(j, k int) qmat.M2 {
	switch {
	case j != 0 && k != 0:
		return qmat.X
	case j != 1 && k != 1:
		return qmat.Y
	default:
		return qmat.Z
	}
}

// flip negates the coordinate pair {j,k}.
func (d *Decomposition) flip(j, k int) {
	p := flipPauli(j, k)
	d.C[j], d.C[k] = -d.C[j], -d.C[k]
	d.La = qmat.Mul(d.La, p)
	d.Ra = qmat.Mul(p, d.Ra)
}

// swapV[j][k] is the local Clifford V with (V⊗V)·Can(c)·(V†⊗V†)
// transposing coordinates j and k with no sign change.
func swapV(j, k int) qmat.M2 {
	switch {
	case j != 0 && k != 0:
		return qmat.Rx(math.Pi / 2) // Y↔Z axis swap fixes X
	case j != 1 && k != 1:
		return qmat.Ry(math.Pi / 2) // X↔Z swap fixes Y
	default:
		return qmat.S() // X↔Y swap fixes Z
	}
}

// swap transposes coordinates j and k.
func (d *Decomposition) swap(j, k int) {
	v := swapV(j, k)
	vd := qmat.Dagger(v)
	d.C[j], d.C[k] = d.C[k], d.C[j]
	d.La = qmat.Mul(d.La, vd)
	d.Lb = qmat.Mul(d.Lb, vd)
	d.Ra = qmat.Mul(v, d.Ra)
	d.Rb = qmat.Mul(v, d.Rb)
}

// canonicalize folds C into the Weyl chamber C[0] ≥ C[1] ≥ |C[2]|,
// C[0],C[1] ∈ [0,π/4], with C[2] ≥ 0 on the C[0] = π/4 boundary.
func (d *Decomposition) canonicalize() {
	// Reduce each coordinate into (−π/4, π/4].
	for k := 0; k < 3; k++ {
		m := int(math.Round(d.C[k] / (math.Pi / 2)))
		if d.C[k]-float64(m)*math.Pi/2 <= -math.Pi/4+1e-13 {
			m--
		}
		d.shift(k, m)
	}
	// Sort descending by |C| (3-element bubble).
	abs := func(k int) float64 { return math.Abs(d.C[k]) }
	if abs(0) < abs(1) {
		d.swap(0, 1)
	}
	if abs(1) < abs(2) {
		d.swap(1, 2)
	}
	if abs(0) < abs(1) {
		d.swap(0, 1)
	}
	// Sign parity: negatives flip only in pairs, so push any lone sign
	// onto the smallest coordinate.
	var neg []int
	for k := 0; k < 3; k++ {
		if d.C[k] < 0 {
			neg = append(neg, k)
		}
	}
	switch len(neg) {
	case 3:
		d.flip(0, 1)
		// falls through conceptually: C[2] stays negative
	case 2:
		d.flip(neg[0], neg[1])
	case 1:
		if neg[0] != 2 {
			d.flip(neg[0], 2)
		}
	}
	// π/4 boundary: (π/4, c2, c3) ≅ (π/4, c2, −c3); normalize c3 ≥ 0.
	if d.C[0] > math.Pi/4-1e-12 && d.C[2] < -1e-13 {
		d.shift(0, 1) // C[0] → ≈ −π/4
		d.flip(0, 2)  // C[0] → ≈ +π/4, C[2] → |C[2]|
	}
}

// classify snaps the canonical coordinates to the cheapest CX class
// within classTol.
func (d *Decomposition) classify() int {
	c1, c2, c3 := d.C[0], d.C[1], math.Abs(d.C[2])
	switch {
	case c1 < classTol && c2 < classTol && c3 < classTol:
		return 0
	case math.Abs(c1-math.Pi/4) < classTol && c2 < classTol && c3 < classTol:
		return 1
	case c3 < classTol:
		return 2
	default:
		return 3
	}
}

// --- synthesis --------------------------------------------------------------

// emit1Q appends a U3 for m on qubit q, skipping near-identities.
func emit1Q(ops []circuit.Op, q int, m qmat.M2) []circuit.Op {
	if qmat.Distance(m, qmat.I2()) < 1e-12 {
		return ops
	}
	th, ph, la := qmat.ZYZAngles(m)
	return append(ops, circuit.Op{G: circuit.U3, Q: [2]int{q, -1}, P: [3]float64{th, ph, la}})
}

// Ops emits the decomposition as a time-ordered gate list on the qubit
// pair (qa, qb), using exactly d.CX CX gates plus U3 rotations. The
// emitted circuit equals the decomposed unitary up to global phase
// (within classTol when a cheaper class was snapped).
//
// The exact 3-CX template comes from Can(c) = exp(ic2·YY)·exp(i(c1·XX+c3·ZZ))
// with the YY factor written as an (S⊗S)-conjugated CX sandwich: the inner
// CX·(S†⊗S†)·CX collapses to (S†⊗I)·e^{iπ/4·ZZ} and the stray ZZ
// exponential re-enters the second sandwich as e^{iπ/4·ZZ} = e^{iπ/4}·
// (S†⊗S†)·CZ with CZ = (I⊗H)·CX·(I⊗H), giving
//
//	Can(c) = (S⊗S)·CX·(Rx(−2c2)Z ⊗ S†H)·CX·(Rx(−2c1) ⊗ H·Rz(−2c3))·CX.
func (d *Decomposition) Ops(qa, qb int) []circuit.Op {
	cx := circuit.Op{G: circuit.CX, Q: [2]int{qa, qb}}
	var ops []circuit.Op
	c1, c2, c3 := d.C[0], d.C[1], d.C[2]
	switch d.CX {
	case 0:
		ops = emit1Q(ops, qa, qmat.Mul(d.La, d.Ra))
		ops = emit1Q(ops, qb, qmat.Mul(d.Lb, d.Rb))
	case 1:
		// exp(iπ/4·XX) = e^{iπ/4}·(HS† ⊗ HS†H)·CX·(H⊗I).
		h, sdg := qmat.H(), qmat.Sdg()
		ops = emit1Q(ops, qa, qmat.Mul(h, d.Ra))
		ops = emit1Q(ops, qb, d.Rb)
		ops = append(ops, cx)
		ops = emit1Q(ops, qa, qmat.MulAll(d.La, h, sdg))
		ops = emit1Q(ops, qb, qmat.MulAll(d.Lb, h, sdg, h))
	case 2:
		// Can(c1,c2,0) = (V⊗V)·CX·(Rx(−2c1)⊗Rz(−2c2))·CX·(V†⊗V†), V = Rx(π/2).
		v := qmat.Rx(math.Pi / 2)
		vd := qmat.Dagger(v)
		ops = emit1Q(ops, qa, qmat.Mul(vd, d.Ra))
		ops = emit1Q(ops, qb, qmat.Mul(vd, d.Rb))
		ops = append(ops, cx)
		ops = emit1Q(ops, qa, qmat.Rx(-2*c1))
		ops = emit1Q(ops, qb, qmat.Rz(-2*c2))
		ops = append(ops, cx)
		ops = emit1Q(ops, qa, qmat.Mul(d.La, v))
		ops = emit1Q(ops, qb, qmat.Mul(d.Lb, v))
	default:
		h, s, sdg := qmat.H(), qmat.S(), qmat.Sdg()
		ops = emit1Q(ops, qa, d.Ra)
		ops = emit1Q(ops, qb, d.Rb)
		ops = append(ops, cx)
		ops = emit1Q(ops, qa, qmat.Rx(-2*c1))
		ops = emit1Q(ops, qb, qmat.Mul(h, qmat.Rz(-2*c3)))
		ops = append(ops, cx)
		ops = emit1Q(ops, qa, qmat.Mul(qmat.Rx(-2*c2), qmat.Z))
		ops = emit1Q(ops, qb, qmat.Mul(sdg, h))
		ops = append(ops, cx)
		ops = emit1Q(ops, qa, qmat.Mul(d.La, s))
		ops = emit1Q(ops, qb, qmat.Mul(d.Lb, s))
	}
	return ops
}

// OpsMatrix multiplies a time-ordered op list confined to the pair
// (qa, qb) into its 4x4 unitary (first qubit of the pair = high bit).
func OpsMatrix(ops []circuit.Op, qa, qb int) (qmat.M4, error) {
	m := qmat.I4()
	for _, op := range ops {
		var g qmat.M4
		switch {
		case op.G == circuit.CX && op.Q[0] == qa && op.Q[1] == qb:
			g = qmat.CXFirst()
		case op.G == circuit.CX && op.Q[0] == qb && op.Q[1] == qa:
			g = qmat.CXSecond()
		case op.G == circuit.CZ && onPair(op, qa, qb):
			g = qmat.CZ4()
		case op.G == circuit.SWAP && onPair(op, qa, qb):
			g = qmat.SWAP4()
		case !op.G.IsTwoQubit() && op.Q[0] == qa:
			g = qmat.Kron(op.Matrix1Q(), qmat.I2())
		case !op.G.IsTwoQubit() && op.Q[0] == qb:
			g = qmat.Kron(qmat.I2(), op.Matrix1Q())
		default:
			return m, fmt.Errorf("multiqubit: op %v not confined to pair (%d,%d)", op.G, qa, qb)
		}
		m = qmat.Mul4(g, m)
	}
	return m, nil
}

func onPair(op circuit.Op, qa, qb int) bool {
	return (op.Q[0] == qa && op.Q[1] == qb) || (op.Q[0] == qb && op.Q[1] == qa)
}

// Synthesize decomposes u and emits its gate list on (qa, qb), verifying
// the reconstruction to tol (tol ≤ 0 defaults to 1e-9). The residual is
// the phase-aligned entrywise max difference, not the fidelity distance:
// sqrt(1−t²) bottoms out at √ε ≈ 2e-8 for a perfect reconstruction, far
// above the 1e-10 guarantee this package tests.
func Synthesize(u qmat.M4, qa, qb int, tol float64) ([]circuit.Op, *Decomposition, error) {
	if tol <= 0 {
		tol = 1e-9
	}
	d, err := Decompose(u)
	if err != nil {
		return nil, nil, err
	}
	ops := d.Ops(qa, qb)
	got, err := OpsMatrix(ops, qa, qb)
	if err != nil {
		return nil, nil, err
	}
	if dist := qmat.MaxAbsDiff4(got, u); dist > tol {
		return nil, nil, fmt.Errorf("multiqubit: synthesis residual %g exceeds %g", dist, tol)
	}
	return ops, d, nil
}
