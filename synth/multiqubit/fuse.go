package multiqubit

import (
	"repro/circuit"
)

// FuseStats reports what one Fuse sweep did.
type FuseStats struct {
	// Blocks counts pair-blocks that were actually replaced by their
	// re-synthesized form; Candidates counts blocks that qualified for a
	// fusion attempt (≥2 ops, ≥1 two-qubit gate).
	Blocks     int `json:"blocks"`
	Candidates int `json:"candidates"`
	// OpsFused counts input ops absorbed into replaced blocks.
	OpsFused int `json:"ops_fused"`
	// CXSaved is the summed two-qubit-cost reduction over replaced blocks
	// (CX/CZ cost 1, SWAP costs 3 — its lowering cost in CX).
	CXSaved int `json:"cx_saved"`
}

// block is a run of ops confined to one qubit pair, open while no gate
// outside the pair has touched either qubit.
type block struct {
	qa, qb int
	ops    []circuit.Op
	twoQ   int
}

// cxWeight is an op's two-qubit cost in CX units.
func cxWeight(op circuit.Op) int {
	switch op.G {
	case circuit.CX, circuit.CZ:
		return 1
	case circuit.SWAP:
		return 3
	}
	return 0
}

func blockCost(ops []circuit.Op, n int) (cx int, rot int) {
	tmp := circuit.New(n)
	for _, op := range ops {
		cx += cxWeight(op)
		tmp.Add(op)
	}
	return cx, tmp.CountRotations()
}

// Fuse scans c for maximal runs of gates confined to a qubit pair,
// multiplies each run into its 4x4 unitary, and re-synthesizes it through
// the KAK decomposition (≤3 CX + U3 rotations). A block is replaced only
// when the synthesized form is strictly cheaper: fewer two-qubit gates
// (CX units), or equally many with fewer nontrivial rotations. The
// returned circuit realizes the same unitary up to global phase.
//
// Single-qubit gates between blocks attach to the next two-qubit gate on
// their qubit; runs that never meet a two-qubit gate pass through
// untouched (adjacent-gate merging is FuseRotations' job).
func Fuse(c *circuit.Circuit) (*circuit.Circuit, FuseStats) {
	var st FuseStats
	if c.N < 2 {
		return c.Clone(), st
	}
	out := circuit.New(c.N)
	pending := make([][]circuit.Op, c.N) // 1q ops awaiting a pair
	active := make(map[int]*block)       // qubit → open block

	emit := func(ops []circuit.Op) {
		for _, op := range ops {
			out.Add(op)
		}
	}
	closeBlock := func(b *block) {
		delete(active, b.qa)
		delete(active, b.qb)
		if b.twoQ == 0 || len(b.ops) < 2 {
			emit(b.ops)
			return
		}
		st.Candidates++
		u, err := OpsMatrix(b.ops, b.qa, b.qb)
		if err != nil {
			emit(b.ops)
			return
		}
		fused, _, err := Synthesize(u, b.qa, b.qb, 0)
		if err != nil {
			emit(b.ops)
			return
		}
		oldCX, oldRot := blockCost(b.ops, c.N)
		newCX, newRot := blockCost(fused, c.N)
		if newCX > oldCX || (newCX == oldCX && newRot >= oldRot) {
			emit(b.ops)
			return
		}
		st.Blocks++
		st.OpsFused += len(b.ops)
		st.CXSaved += oldCX - newCX
		emit(fused)
	}
	closeQubit := func(q int) {
		if b := active[q]; b != nil {
			closeBlock(b)
		}
	}

	for _, op := range c.Ops {
		if !op.G.IsTwoQubit() {
			if op.G == circuit.I {
				continue
			}
			if b := active[op.Q[0]]; b != nil {
				b.ops = append(b.ops, op)
			} else {
				pending[op.Q[0]] = append(pending[op.Q[0]], op)
			}
			continue
		}
		x, y := op.Q[0], op.Q[1]
		if b := active[x]; b != nil && b == active[y] {
			b.ops = append(b.ops, op)
			b.twoQ++
			continue
		}
		closeQubit(x)
		closeQubit(y)
		b := &block{qa: x, qb: y, twoQ: 1}
		b.ops = append(b.ops, pending[x]...)
		b.ops = append(b.ops, pending[y]...)
		b.ops = append(b.ops, op)
		pending[x], pending[y] = nil, nil
		active[x], active[y] = b, b
	}
	// Close remaining blocks in first-qubit order for determinism (open
	// blocks are pairwise disjoint, so any order preserves dependencies).
	for q := 0; q < c.N; q++ {
		closeQubit(q)
	}
	for q := 0; q < c.N; q++ {
		emit(pending[q])
	}
	return out, st
}
