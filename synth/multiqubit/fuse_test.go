package multiqubit

import (
	"math"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/sim"
)

// randomPairCircuit builds a random circuit mixing 1q and 2q gates.
func randomPairCircuit(n, nops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < nops; i++ {
		q := rng.Intn(n)
		switch rng.Intn(8) {
		case 0:
			c.H(q)
		case 1:
			c.T(q)
		case 2:
			c.RZ(q, rng.Float64()*2*math.Pi)
		case 3:
			c.U3Gate(q, rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
		case 4:
			c.S(q)
		default:
			r := rng.Intn(n - 1)
			if r >= q {
				r++
			}
			switch rng.Intn(3) {
			case 0:
				c.CX(q, r)
			case 1:
				c.CZ(q, r)
			default:
				c.Swap(q, r)
			}
		}
	}
	return c
}

// TestFusePreservesUnitary is the pipeline-level safety property: Fuse
// never changes the circuit's unitary (up to global phase), across random
// 2- and 3-qubit circuits dense with fusable runs.
func TestFusePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + trial%2
		c := randomPairCircuit(n, 12+rng.Intn(20), rng)
		fused, _ := Fuse(c)
		d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(fused))
		if d > 1e-6 {
			t.Fatalf("trial %d (n=%d): unitary distance %g after fusion\n%s", trial, n, d, c.QASM())
		}
	}
}

// TestFuseSavesCX checks a run with redundant entanglers actually fuses:
// two back-to-back ZZ-interaction blocks cost 4 CX unfused but are jointly
// a single 2-CX class unitary.
func TestFuseSavesCX(t *testing.T) {
	c := circuit.New(2)
	for i := 0; i < 2; i++ {
		c.CX(0, 1)
		c.RZ(1, 0.3+0.2*float64(i))
		c.CX(0, 1)
	}
	fused, st := Fuse(c)
	if st.Blocks != 1 || st.CXSaved < 2 {
		t.Fatalf("stats %+v, want 1 block fused saving ≥2 CX", st)
	}
	if got := fused.TwoQubitCount(); got > 2 {
		t.Fatalf("fused circuit has %d two-qubit gates, want ≤2", got)
	}
	d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(fused))
	if d > 1e-6 {
		t.Fatalf("unitary distance %g", d)
	}
}

// TestFuseSwapRun checks SWAP's 3-CX weight makes swap-adjacent runs
// profitable.
func TestFuseSwapRun(t *testing.T) {
	c := circuit.New(2)
	c.Swap(0, 1)
	c.CX(0, 1) // SWAP·CX is locally equivalent to a 2-CX class unitary
	fused, st := Fuse(c)
	if st.Blocks != 1 {
		t.Fatalf("stats %+v, want a fused block", st)
	}
	if before, after := c.TwoQubitCount(), fused.TwoQubitCount(); after >= 4 {
		t.Fatalf("fusion kept %d→%d two-qubit gates", before, after)
	}
	d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(fused))
	if d > 1e-6 {
		t.Fatalf("unitary distance %g", d)
	}
}

// TestFuseKeepsOptimal checks an already-minimal pattern is left alone:
// one ZZ block is its own 2-CX canonical form, so fusion has nothing to
// save and must not churn.
func TestFuseKeepsOptimal(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	c.RZ(1, 0.7)
	c.CX(0, 1)
	fused, st := Fuse(c)
	if st.Blocks != 0 {
		t.Fatalf("stats %+v, want no fusion on an optimal block", st)
	}
	if len(fused.Ops) != len(c.Ops) {
		t.Fatalf("circuit changed: %d → %d ops", len(c.Ops), len(fused.Ops))
	}
}

// TestFuseDisjointPairs checks interleaved blocks on disjoint pairs fuse
// independently and the whole-circuit unitary survives.
func TestFuseDisjointPairs(t *testing.T) {
	c := circuit.New(4)
	for i := 0; i < 2; i++ {
		c.CX(0, 1)
		c.CX(2, 3)
		c.RZ(1, 0.4)
		c.RZ(3, 0.9)
		c.CX(0, 1)
		c.CX(2, 3)
	}
	fused, st := Fuse(c)
	if st.Blocks < 2 {
		t.Fatalf("stats %+v, want both pair blocks fused", st)
	}
	d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(fused))
	if d > 1e-6 {
		t.Fatalf("unitary distance %g", d)
	}
}

// TestFuseSingleQubitOnly checks a circuit with no two-qubit gates passes
// through unchanged.
func TestFuseSingleQubitOnly(t *testing.T) {
	c := circuit.New(2)
	c.H(0).T(0).H(1).RZ(1, 0.5)
	fused, st := Fuse(c)
	if st.Candidates != 0 || len(fused.Ops) != len(c.Ops) {
		t.Fatalf("stats %+v, ops %d→%d; want untouched", st, len(c.Ops), len(fused.Ops))
	}
}
