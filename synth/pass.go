package synth

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/circuit"
	"repro/internal/pipeline"
	"repro/internal/resource"
	"repro/internal/transpile"
	"repro/optimize"
	"repro/synth/multiqubit"
	"repro/synth/trace"
)

// Pass is one circuit-to-circuit compilation stage. Passes are composed by
// a Pipeline and share a PassContext carrying the backend, error budget,
// cache, stats and progress hooks; each pass returns a new circuit (or the
// input unchanged) and records what it learned in pc.Stats.
type Pass interface {
	// Name is the stable identifier used by WithPasses callers, the
	// cmd/compile -passes flag, and progress events.
	Name() string
	// Run transforms c under the shared context. Implementations must not
	// mutate c in place — callers may retain it.
	Run(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error)
}

// PassContext is the shared state of one pipeline run: the synthesis
// backend and base request, the concurrency and cache configuration, the
// circuit-level error budget, and the accumulating stats. It is created by
// (*Pipeline).Run; passes read the configuration and write Stats.
type PassContext struct {
	// Ctx is the run's cancellation context.
	Ctx context.Context
	// Backend performs per-rotation synthesis for the Lower pass.
	Backend Backend
	// Req is the base request. In per-rotation mode (CircuitEpsilon == 0)
	// Req.Epsilon applies to every rotation, as in Compiler.CompileCircuit.
	Req Request
	// Workers bounds the Lower pass's pool (0 = GOMAXPROCS).
	Workers int
	// Cache is the shared synthesis cache (never nil during a run).
	Cache *Cache
	// IR selects the lowering workflow (IRAuto resolves per backend).
	IR IR
	// CircuitEpsilon, when positive, is the circuit-level error budget ε:
	// the Lower pass splits it across the nontrivial rotations with the
	// Budget strategy instead of using Req.Epsilon per rotation.
	CircuitEpsilon float64
	// Budget selects the ε-splitting strategy.
	Budget BudgetStrategy
	// Progress, when set, receives pass-start and synthesis-progress
	// events.
	Progress func(ProgressEvent)
	// Span is the trace span of the pass currently running (nil when the
	// run is untraced — all span operations then no-op). Pipeline.Run
	// repoints it at a fresh child of the run's span before each pass, so
	// a pass that opens sub-spans always nests under its own timing.
	Span *trace.Span
	// Observe, when set, is handed to the Lower pass's compiler as its
	// per-synthesis metrics hook (see Compiler.Observe).
	Observe func(SynthObservation)
	// Stats accumulates across passes.
	Stats *PipelineStats
}

// basis resolves the transpile basis for the configured IR and backend —
// CX+H+RZ for gridsynth under IRAuto (the workflow the paper evaluates it
// on), CX+U3 otherwise.
func (pc *PassContext) basis() transpile.Basis {
	if pc.IR == IRRz || (pc.IR == IRAuto && pc.Backend != nil && pc.Backend.Name() == "gridsynth") {
		return transpile.BasisRz
	}
	return transpile.BasisU3
}

// event emits a progress event when a hook is installed.
func (pc *PassContext) event(pass string, done, total int) {
	if pc.Progress != nil {
		pc.Progress(ProgressEvent{Pass: pass, Done: done, Total: total})
	}
}

// ProgressEvent reports pipeline progress: one event per pass start
// (Done == Total == 0), plus one per completed synthesis inside the Lower
// pass (Done in 1..Total over the distinct rotations being synthesized).
type ProgressEvent struct {
	Pass        string
	Done, Total int
}

// PassTiming records one executed pass.
type PassTiming struct {
	Name string
	Wall time.Duration
}

// PipelineStats aggregates everything a pipeline run learned.
type PipelineStats struct {
	// Setting is the winning transpiler setting; IRRotations counts the
	// nontrivial rotations in the IR the Transpile pass produced.
	Setting     transpile.Setting
	IRRotations int
	// Rotations counts rotations actually synthesized by Lower; ErrorBound
	// is the additive sum of realized per-rotation errors (the guarantee
	// compared against CircuitEpsilon); MaxError is the worst single one.
	Rotations  int
	ErrorBound float64
	MaxError   float64
	// Epsilon and Strategy echo the circuit-level budget configuration
	// (Epsilon 0 = per-rotation mode).
	Epsilon  float64
	Strategy BudgetStrategy
	// Unique counts distinct syntheses; Hits and Misses count every cache
	// lookup the run performed (scan lookups plus any eviction recomputes).
	Unique       int
	Hits, Misses int
	// Resources is filled by the EstimateResources pass.
	Resources *resource.Estimate
	// Opt aggregates what the optimizer passes (OptimizeRotations,
	// OptimizeCliffordT) did; nil when no optimizer pass ran.
	Opt *OptStats
	// Fuse aggregates what the FuseBlocks pass did; nil when it didn't run.
	Fuse *multiqubit.FuseStats
	// Passes records the executed pass sequence with wall times.
	Passes []PassTiming
}

// OptStats is the optimizer passes' accounting: the pre-lowering
// rotation delta (OptimizeRotations) and the post-lowering T-count
// delta plus fixed-point driver stats (OptimizeCliffordT).
type OptStats struct {
	// PreRotationsBefore/After bracket the pre-lowering pass: nontrivial
	// rotations in the IR before and after parity folding — the
	// synthesis work the optimizer removed before it was ever paid for.
	PreRotationsBefore, PreRotationsAfter int
	// TCountBefore/After bracket the post-lowering pass: T gates in the
	// lowered Clifford+T circuit before and after the fixed-point run.
	TCountBefore, TCountAfter int
	// Iterations counts the driver's full rule sweeps; Converged is
	// false only when some post-lowering run had its safety ceiling cut
	// the run short (vacuously true when no optct pass ran).
	Iterations int
	Converged  bool
	// RuleHits counts, per optimizer name, the sweeps in which that rule
	// strictly improved the circuit.
	RuleHits map[string]int
}

// TSaved is the post-lowering pass's headline delta.
func (o *OptStats) TSaved() int { return o.TCountBefore - o.TCountAfter }

// opt lazily allocates the optimizer stats block (Converged seeds true
// so repeated optct passes can AND their convergence into it).
func (s *PipelineStats) opt() *OptStats {
	if s.Opt == nil {
		s.Opt = &OptStats{Converged: true}
	}
	return s.Opt
}

// fuse lazily allocates the block-fusion stats block.
func (s *PipelineStats) fuse() *multiqubit.FuseStats {
	if s.Fuse == nil {
		s.Fuse = &multiqubit.FuseStats{}
	}
	return s.Fuse
}

// passFunc adapts a named function to Pass.
type passFunc struct {
	name string
	run  func(*PassContext, *circuit.Circuit) (*circuit.Circuit, error)
}

func (p passFunc) Name() string { return p.name }
func (p passFunc) Run(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
	return p.run(pc, c)
}

// NewPass wraps a function as a custom Pass for WithPasses callers.
func NewPass(name string, run func(*PassContext, *circuit.Circuit) (*circuit.Circuit, error)) Pass {
	return passFunc{name: name, run: run}
}

// Transpile returns the IR-selection pass: the best of the paper's 16
// transpiler settings (fewest nontrivial rotations) for the workflow
// basis, recording the winning setting and IR rotation count.
func Transpile() Pass {
	return passFunc{name: "transpile", run: func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		ir, setting := transpile.BestSetting(c, pc.basis())
		pc.Stats.Setting = setting
		pc.Stats.IRRotations = ir.CountRotations()
		return ir, nil
	}}
}

// FuseRotations returns the rotation-fusion pass: adjacent single-qubit
// gates merge into one rotation (U3 basis) or adjacent RZ/phase gates sum
// their angles (Rz basis), shrinking the synthesis workload without
// changing the unitary. Idempotent after Transpile (whose winning setting
// already merges), but load-bearing in hand-built pipelines that skip it.
func FuseRotations() Pass {
	return passFunc{name: "fuse", run: func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		if pc.basis() == transpile.BasisRz {
			return transpile.MergeRz(c), nil
		}
		return transpile.Merge1Q(c), nil
	}}
}

// SnapTrivial returns the pass replacing every trivial (π/4-multiple)
// rotation with exact discrete gates, consuming no synthesis budget
// (footnote 3 of the paper). Lower also snaps trivial rotations it
// encounters, so this pass is about moving the exact rewrites ahead of
// budget allocation and about pipelines that lower some other way.
func SnapTrivial() Pass {
	return passFunc{name: "snap", run: func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		return pipeline.SnapTrivialRotations(c), nil
	}}
}

// FuseBlocks returns the two-qubit block-fusion pass: maximal runs of
// gates confined to a qubit pair are multiplied into one 4x4 unitary and
// re-synthesized through the KAK decomposition into ≤3 CX plus U3
// rotations, kept only when strictly cheaper (fewer two-qubit gates, or
// equally many with fewer nontrivial rotations). It runs best BEFORE
// Transpile: the emitted CX+U3 blocks are exactly what the transpiler
// settings consume, and collapsing entangler runs early shrinks both the
// two-qubit count and the rotation workload every later pass sees.
// Records what it did in Stats.Fuse.
func FuseBlocks() Pass {
	return passFunc{name: "fuse2q", run: func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		out, fs := multiqubit.Fuse(c)
		st := pc.Stats.fuse()
		st.Blocks += fs.Blocks
		st.Candidates += fs.Candidates
		st.OpsFused += fs.OpsFused
		st.CXSaved += fs.CXSaved
		return out, nil
	}}
}

// Lower returns the synthesis pass: one counted cache lookup per
// nontrivial rotation, a worker pool over the distinct misses, then
// assembly into a Clifford+T circuit. Under a circuit-level budget
// (CircuitEpsilon > 0) each rotation synthesizes at its allocated share;
// otherwise every rotation uses Req.Epsilon.
func Lower() Pass {
	return passFunc{name: "lower", run: runLower}
}

func runLower(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
	if pc.Backend == nil {
		return nil, fmt.Errorf("no backend configured")
	}
	comp := &Compiler{Backend: pc.Backend, Req: pc.Req, Workers: pc.Workers, Cache: pc.Cache, Observe: pc.Observe}
	scope := pc.Backend.Name()
	// Everything below runs under the pass span: scan-phase peer lookups,
	// the per-op synthesis spans the workers open, and cluster pushes.
	ctx := trace.NewContext(pc.Ctx, pc.Span)
	var epss []float64
	if pc.CircuitEpsilon > 0 {
		epss = AllocateBudget(c, pc.CircuitEpsilon, pc.Budget)
	}

	// One job per nontrivial rotation, in op order.
	var jobs []opJob
	for i, op := range c.Ops {
		if !synthesizable(op) {
			continue
		}
		req := pc.Req
		if epss != nil {
			req.Epsilon = epss[i]
		}
		jobs = append(jobs, opJob{
			k:      KeyOf(op, scope, req.Epsilon, req.cacheCfg()),
			target: op.Matrix1Q(),
			req:    req,
		})
	}

	// Scan: counted lookups; first occurrence of an uncached key is the
	// miss that schedules its one synthesis.
	scanSpan := pc.Span.Child("scan")
	missing, hits, misses := comp.scanJobs(trace.NewContext(pc.Ctx, scanSpan), jobs)
	scanSpan.SetAttr("hits", hits)
	scanSpan.SetAttr("misses", misses)
	scanSpan.End()
	pc.Stats.Hits += hits
	pc.Stats.Misses += misses
	pc.Stats.Unique += len(missing)

	// Pool over the distinct misses, with progress events. Workers report
	// concurrently, so delivery is serialized here — the user hook never
	// needs to be goroutine-safe.
	var pmu sync.Mutex
	progress := func(done, total int) {
		pmu.Lock()
		pc.event("lower", done, total)
		pmu.Unlock()
	}
	computed, err := comp.synthesizeMissing(ctx, missing, progress)
	if err != nil {
		return nil, fmt.Errorf("lowering %s IR: %w", scope, err)
	}

	// Assemble. Lookups were charged in the scan; an entry evicted between
	// phases is recomputed inline and that extra lookup is itself counted
	// as a miss (the Hits+Misses invariant: every lookup is charged).
	out := circuit.New(c.N)
	cache := comp.cache()
	ji := 0
	for _, op := range c.Ops {
		if !op.G.IsRotation() {
			out.Add(op)
			continue
		}
		if pipeline.TrivialRotation(op) {
			one := circuit.New(c.N)
			one.Add(op)
			for _, o := range pipeline.SnapTrivialRotations(one).Ops {
				out.Add(o)
			}
			continue
		}
		j := jobs[ji]
		ji++
		// A contained backend panic fails only its op in batch mode, but a
		// circuit cannot be assembled around a hole — surface it as this
		// compile's error (the process survives; the request does not).
		if res, ok := computed[j.k]; ok && res.Err != nil {
			return nil, fmt.Errorf("lowering %s IR: %w", scope, res.Err)
		}
		e, ok := cache.peek(j.k)
		if !ok {
			cache.creditMiss()
			pc.Stats.Misses++
			res, err := comp.synthOne(ctx, j)
			if err != nil {
				return nil, fmt.Errorf("lowering %s IR: %w", scope, err)
			}
			cache.PutCtx(ctx, j.k, Entry{Seq: res.Seq, Err: res.Error, Backend: res.Backend})
			e = Entry{Seq: res.Seq, Err: res.Error, Backend: res.Backend}
		}
		for _, o := range circuit.FromSequence(e.Seq, op.Q[0]) {
			out.Add(o)
		}
		pc.Stats.Rotations++
		pc.Stats.ErrorBound += e.Err
		if e.Err > pc.Stats.MaxError {
			pc.Stats.MaxError = e.Err
		}
	}
	return out, nil
}

// OptimizeRotations returns the pre-lowering optimizer pass: parity
// phase folding (the optimize package's "foldphases" rule) over the IR,
// merging and cancelling RZ/phase gates that act on the same CNOT
// parity so fewer rotations ever reach the synthesizer. Adjacency-based
// fusion (FuseRotations) cannot see these merges — parity tracking
// commutes phases through entire CX regions. The pass is most effective
// on the Rz-basis IR; on the CX+U3 IR only explicit phase gates fold.
// Records the rotation delta in Stats.Opt.
func OptimizeRotations() Pass {
	return passFunc{name: "optrot", run: func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		before := c.CountRotations()
		out, err := optimize.FoldPhases().Optimize(c)
		if err != nil {
			return nil, err
		}
		st := pc.Stats.opt()
		st.PreRotationsBefore += before
		st.PreRotationsAfter += out.CountRotations()
		return out, nil
	}}
}

// OptimizeCliffordT returns the post-lowering optimizer pass: a
// fixed-point optimize.Driver run over the lowered Clifford+T circuit.
// names select rules from the optimize registry (empty = the default
// foldphases + peephole chain); unknown names surface as a pass error.
// Records the T-count delta, iteration count, and per-rule hit counters
// in Stats.Opt. The optimizer rules preserve the unitary exactly, so
// the realized error bound is untouched.
func OptimizeCliffordT(names ...string) Pass {
	return passFunc{name: "optct", run: func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		d, err := optimize.NewDriverNamed(names...)
		if err != nil {
			return nil, err
		}
		res, err := d.Run(c)
		if err != nil {
			return nil, err
		}
		st := pc.Stats.opt()
		st.TCountBefore += res.Before.TCount
		st.TCountAfter += res.After.TCount
		st.Iterations += res.Iterations
		st.Converged = st.Converged && res.Converged
		if st.RuleHits == nil {
			st.RuleHits = map[string]int{}
		}
		for name, hits := range res.RuleHits {
			st.RuleHits[name] += hits
		}
		return res.Circuit, nil
	}}
}

// EstimateResources returns the pass attaching a surface-code resource
// estimate (internal/resource's model) for the current circuit to
// Stats.Resources. The circuit flows through unchanged, so the pass can
// sit anywhere after Lower.
func EstimateResources() Pass {
	return passFunc{name: "estimate", run: func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		est := resource.DefaultParams().Estimate(c.N, c.TCount(), c.TDepth())
		pc.Stats.Resources = &est
		return c, nil
	}}
}

// DefaultPasses is the canned Figure 3(a) workflow: transpile → fuse →
// snap → lower → estimate.
func DefaultPasses() []Pass {
	return []Pass{Transpile(), FuseRotations(), SnapTrivial(), Lower(), EstimateResources()}
}

// PassNames lists the built-in pass names in canned-pipeline order
// (the optimizer passes sit where WithOptimize inserts them; fuse2q sits
// where WithFuseBlocks inserts it, ahead of transpile).
func PassNames() []string {
	return []string{"fuse2q", "transpile", "optrot", "fuse", "snap", "lower", "optct", "estimate"}
}

// LookupPass resolves a built-in pass by name (the cmd/compile -passes
// vocabulary).
func LookupPass(name string) (Pass, bool) {
	switch name {
	case "fuse2q":
		return FuseBlocks(), true
	case "transpile":
		return Transpile(), true
	case "optrot":
		return OptimizeRotations(), true
	case "fuse":
		return FuseRotations(), true
	case "snap":
		return SnapTrivial(), true
	case "lower":
		return Lower(), true
	case "optct":
		return OptimizeCliffordT(), true
	case "estimate":
		return EstimateResources(), true
	}
	return nil, false
}
