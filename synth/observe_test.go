package synth

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/qmat"
)

// namedStub is a deterministic racer: fixed name, fixed T count, or an
// injected failure — so auto's winner and losers are predictable.
type namedStub struct {
	name   string
	tGates int
	fail   bool
}

func (s *namedStub) Name() string { return s.name }

func (s *namedStub) Synthesize(ctx context.Context, u qmat.M2, req Request) (Result, error) {
	if s.fail {
		return Result{}, fmt.Errorf("%s: injected failure", s.name)
	}
	seq := gates.Sequence{gates.H}
	for i := 0; i < s.tGates; i++ {
		seq = append(seq, gates.T)
	}
	return finish(s.name, time.Now(), seq, 1e-4, 1), nil
}

// recorder collects observations from compiler worker goroutines.
type recorder struct {
	mu  sync.Mutex
	obs []SynthObservation
}

func (r *recorder) observe(o SynthObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = append(r.obs, o)
}

func (r *recorder) byBackend(backend string) []SynthObservation {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SynthObservation
	for _, o := range r.obs {
		if o.Backend == backend {
			out = append(out, o)
		}
	}
	return out
}

// TestAutoRaceObservations: one synthesis through a three-way auto race
// must report the winner (Won), the loser with its own timing and T
// count, and the failed racer — all stamped with the op's angle class —
// and cache hits must report too, attributed to the winning backend.
func TestAutoRaceObservations(t *testing.T) {
	rec := &recorder{}
	racers := []Backend{
		&namedStub{name: "winner", tGates: 1},
		&namedStub{name: "loser", tGates: 3},
		&namedStub{name: "failer", fail: true},
	}
	comp := NewCompiler(autoBackend{racers: racers}, Request{Epsilon: 1e-2})
	comp.Workers = 1 // sequential: the duplicate op is a materialized hit
	comp.Observe = rec.observe

	c := circuit.New(2)
	c.RZ(0, 0.7)
	c.RZ(1, 0.7)
	if _, err := comp.CompileCircuit(context.Background(), c); err != nil {
		t.Fatal(err)
	}

	wins := rec.byBackend("winner")
	if len(wins) != 1 || !wins[0].Won || wins[0].Failed || wins[0].CacheHit {
		t.Fatalf("winner observations: %+v", wins)
	}
	if wins[0].TCount != 1 || wins[0].Class != "generic" || wins[0].Epsilon != 1e-2 {
		t.Errorf("winner observation fields: %+v", wins[0])
	}

	losses := rec.byBackend("loser")
	if len(losses) != 1 || losses[0].Won || losses[0].Failed || losses[0].CacheHit {
		t.Fatalf("loser observations: %+v", losses)
	}
	if losses[0].TCount != 3 || losses[0].Class != "generic" {
		t.Errorf("loser observation fields: %+v", losses[0])
	}

	fails := rec.byBackend("failer")
	if len(fails) != 1 || !fails[0].Failed || fails[0].Won {
		t.Fatalf("failer observations: %+v", fails)
	}
	if fails[0].Class != "generic" {
		t.Errorf("failed racer missing angle class: %+v", fails[0])
	}

	// The duplicate op deduplicated against the in-flight entry at scan
	// time: a cache-hit observation attributed to the compiler's backend
	// with T count still unknown (-1).
	pending := hitObs(rec)
	if len(pending) != 1 {
		t.Fatalf("got %d cache-hit observations, want 1: %+v", len(pending), pending)
	}
	if o := pending[0]; o.Backend != "auto" || o.TCount != -1 || o.Wall != 0 {
		t.Errorf("pending-dedup hit observation: %+v", o)
	}

	if total := len(rec.byBackend("winner")) + len(rec.byBackend("loser")) +
		len(rec.byBackend("failer")) + len(pending); total != 4 {
		t.Fatalf("got %d observations, want 4 (win+loss+failure+hit)", total)
	}

	// A warm recompile hits materialized entries: both ops report as
	// hits attributed to the backend that won the race, with the cached
	// sequence's T count.
	rec2 := &recorder{}
	comp.Observe = rec2.observe
	if _, err := comp.CompileCircuit(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	warm := hitObs(rec2)
	if len(warm) != 2 {
		t.Fatalf("warm recompile: got %d hit observations, want 2: %+v", len(warm), warm)
	}
	for _, o := range warm {
		if o.Backend != "winner" || o.TCount != 1 || o.Won || o.Failed {
			t.Errorf("materialized hit observation: %+v", o)
		}
	}
}

// hitObs filters a recorder down to its cache-hit observations.
func hitObs(r *recorder) []SynthObservation {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SynthObservation
	for _, o := range r.obs {
		if o.CacheHit {
			out = append(out, o)
		}
	}
	return out
}

// TestObserveWithoutRace: a plain (non-auto) backend reports its
// synthesis as a win by walkover.
func TestObserveWithoutRace(t *testing.T) {
	rec := &recorder{}
	comp := NewCompiler(&stubBackend{}, Request{Epsilon: 1e-2})
	comp.Observe = rec.observe
	if _, err := comp.CompileBatch(context.Background(), []qmat.M2{qmat.Rz(0.3)}); err != nil {
		t.Fatal(err)
	}
	obs := rec.byBackend("stub")
	if len(obs) != 1 || !obs[0].Won {
		t.Fatalf("walkover synthesis observations: %+v", obs)
	}
}

// TestObsClass pins the bounded vocabulary: Clifford and Clifford+T
// fixed points, QFT-style dyadic fractions, everything else generic,
// and three-angle keys in their own class.
func TestObsClass(t *testing.T) {
	rz := func(theta float64) Key { return Key{A: quantizeAngle(theta)} }
	for _, tc := range []struct {
		name string
		k    Key
		want string
	}{
		{"pi/2", rz(math.Pi / 2), "pi2"},
		{"pi", rz(math.Pi), "pi2"},
		{"neg-pi/2 wraps", rz(-math.Pi / 2), "pi2"},
		{"3pi/4", rz(3 * math.Pi / 4), "pi4"},
		{"pi/8", rz(math.Pi / 8), "dyadic"},
		{"5pi/32", rz(5 * math.Pi / 32), "dyadic"},
		{"pi/4096", rz(math.Pi / 4096), "dyadic"},
		{"pi/2^13 beyond ladder", rz(math.Pi / 8192), "generic"},
		{"0.7", rz(0.7), "generic"},
		{"u3", Key{A: quantizeAngle(0.5), B: quantizeAngle(0.3), C: quantizeAngle(0.1)}, "u3"},
		// Diagonal U3 keys — θ ≡ 0 mod 2π — are Rz in disguise and class
		// by φ+λ (the shape ZYZ batch keys and the U3 basis produce).
		{"diag generic", Key{B: quantizeAngle(0.3), C: quantizeAngle(0.4)}, "generic"},
		{"diag pi4", Key{B: quantizeAngle(math.Pi / 8), C: quantizeAngle(math.Pi / 8)}, "pi4"},
		{"diag dyadic wrapped", Key{A: quantizeAngle(2 * math.Pi), B: quantizeAngle(math.Pi / 8), C: quantizeAngle(0)}, "dyadic"},
	} {
		if got := tc.k.obsClass(); got != tc.want {
			t.Errorf("%s: obsClass = %q, want %q", tc.name, got, tc.want)
		}
		found := false
		for _, cl := range ObsClasses {
			if cl == tc.want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: expected class %q not in ObsClasses", tc.name, tc.want)
		}
	}
}
