// Panic-containment tests for the compiler's goroutine boundaries: a
// backend panic costs one op in a batch, one racer in a race, and one
// request in a circuit compile — never the process.
package synth

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/circuit"
	"repro/internal/qmat"
	"repro/synth/fault"
)

// panicBackend panics on demand; otherwise it delegates to gridsynth.
type panicBackend struct {
	name  string
	inner Backend
	// panicOn, when non-nil, reports whether this call should panic.
	panicOn func() bool
}

func (b *panicBackend) Name() string { return b.name }

func (b *panicBackend) Synthesize(ctx context.Context, target qmat.M2, req Request) (Result, error) {
	if b.panicOn != nil && b.panicOn() {
		panic(fmt.Sprintf("%s: synthetic pathological input", b.name))
	}
	return b.inner.Synthesize(ctx, target, req)
}

func gridsynthBE(t *testing.T) Backend {
	t.Helper()
	be, ok := Lookup("gridsynth")
	if !ok {
		t.Fatal("gridsynth not registered")
	}
	return be
}

// everyNth returns a closure that fires on every n-th call (mutex-
// guarded, so it is deterministic in total count under the worker pool).
func everyNth(n int) func() bool {
	var mu sync.Mutex
	calls := 0
	return func() bool {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return calls%n == 0
	}
}

func TestCompileBatchContainsBackendPanic(t *testing.T) {
	be := &panicBackend{name: "gridsynth", inner: gridsynthBE(t), panicOn: everyNth(3)}
	var (
		mu     sync.Mutex
		failed int
		won    int
	)
	comp := &Compiler{
		Backend: be,
		Req:     Request{Epsilon: 1e-2},
		Observe: func(o SynthObservation) {
			mu.Lock()
			defer mu.Unlock()
			if o.Failed {
				failed++
			}
			if o.Won {
				won++
			}
		},
	}
	var panics []*fault.PanicError
	ctx := fault.WithPanicObserver(context.Background(), func(pe *fault.PanicError) {
		mu.Lock()
		panics = append(panics, pe)
		mu.Unlock()
	})

	targets := make([]qmat.M2, 9)
	for i := range targets {
		targets[i] = qmat.Rz(0.31 + 0.01*float64(i))
	}
	results, err := comp.CompileBatch(ctx, targets)
	if err != nil {
		t.Fatalf("CompileBatch failed outright: %v (panics must be per-op)", err)
	}
	var ok, bad int
	for i, res := range results {
		if res.Err != nil {
			bad++
			var pe *fault.PanicError
			if !errors.As(res.Err, &pe) {
				t.Fatalf("op %d: Err = %v, want PanicError", i, res.Err)
			}
			if pe.Site != "backend:gridsynth" {
				t.Fatalf("op %d: site %q", i, pe.Site)
			}
			if res.Seq != nil {
				t.Fatalf("op %d: failed op carries a sequence", i)
			}
			continue
		}
		ok++
		if res.Seq == nil {
			t.Fatalf("op %d: no error but no sequence", i)
		}
	}
	// 9 distinct ops, every 3rd backend call panics → 3 contained panics.
	if bad != 3 || ok != 6 {
		t.Fatalf("got %d failed / %d ok, want 3/6", bad, ok)
	}
	mu.Lock()
	defer mu.Unlock()
	if failed != 3 || won != 6 {
		t.Fatalf("observations: failed=%d won=%d, want 3/6", failed, won)
	}
	if len(panics) != 3 {
		t.Fatalf("panic observer saw %d panics, want 3", len(panics))
	}
	for _, pe := range panics {
		if !strings.Contains(pe.Stack, "panic_test.go") {
			t.Fatalf("stack does not reach the panicking backend:\n%s", pe.Stack)
		}
	}
}

func TestBatchRepeatsShareFailure(t *testing.T) {
	// Panic on the very first backend call only; the batch repeats that
	// op three times. Workers=1 keeps which op panics deterministic.
	first := true
	var mu sync.Mutex
	be := &panicBackend{name: "gridsynth", inner: gridsynthBE(t), panicOn: func() bool {
		mu.Lock()
		defer mu.Unlock()
		p := first
		first = false
		return p
	}}
	comp := &Compiler{Backend: be, Req: Request{Epsilon: 1e-2}, Workers: 1}
	targets := []qmat.M2{qmat.Rz(0.5), qmat.Rz(0.5), qmat.Rz(0.5), qmat.Rz(0.9)}
	results, err := comp.CompileBatch(context.Background(), targets)
	if err != nil {
		t.Fatalf("CompileBatch: %v", err)
	}
	for i := 0; i < 3; i++ {
		if results[i].Err == nil {
			t.Fatalf("repeat %d of the panicked op has no Err", i)
		}
	}
	if results[3].Err != nil || results[3].Seq == nil {
		t.Fatalf("unrelated op affected: %+v", results[3])
	}
	// The failed op was never cached: a fresh batch retries it and (the
	// backend now behaving) succeeds.
	results, err = comp.CompileBatch(context.Background(), []qmat.M2{qmat.Rz(0.5)})
	if err != nil || results[0].Err != nil || results[0].Seq == nil {
		t.Fatalf("retry after contained panic: err=%v res=%+v", err, results[0])
	}
}

func TestInjectedBackendPanic(t *testing.T) {
	in, err := fault.Parse("backend:gridsynth panic every=2")
	if err != nil {
		t.Fatal(err)
	}
	comp := &Compiler{Backend: gridsynthBE(t), Req: Request{Epsilon: 1e-2}, Workers: 1}
	ctx := fault.NewContext(context.Background(), in)
	targets := []qmat.M2{qmat.Rz(0.11), qmat.Rz(0.22), qmat.Rz(0.33), qmat.Rz(0.44)}
	results, err := comp.CompileBatch(ctx, targets)
	if err != nil {
		t.Fatalf("CompileBatch: %v", err)
	}
	var bad int
	for _, res := range results {
		if res.Err != nil {
			bad++
		}
	}
	if bad != 2 {
		t.Fatalf("every=2 over 4 ops failed %d, want 2", bad)
	}
}

func TestRacerPanicLosesRace(t *testing.T) {
	boom := &panicBackend{name: "trasyn-boom", panicOn: func() bool { return true }}
	auto := autoBackend{racers: []Backend{boom, gridsynthBE(t)}}
	var (
		mu       sync.Mutex
		failures []SynthObservation
	)
	ctx := withRaceObserver(context.Background(), func(o SynthObservation) {
		mu.Lock()
		defer mu.Unlock()
		if o.Failed {
			failures = append(failures, o)
		}
	})
	res, err := auto.Synthesize(ctx, qmat.Rz(0.3), Request{Epsilon: 1e-2})
	if err != nil {
		t.Fatalf("race died with a panicking racer: %v", err)
	}
	if res.Backend != "gridsynth" {
		t.Fatalf("winner = %q, want gridsynth", res.Backend)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(failures) != 1 || failures[0].Backend != "trasyn-boom" {
		t.Fatalf("race observer failures = %+v, want one for trasyn-boom", failures)
	}
}

func TestAllRacersPanicSurfacesError(t *testing.T) {
	always := func() bool { return true }
	auto := autoBackend{racers: []Backend{
		&panicBackend{name: "p1", panicOn: always},
		&panicBackend{name: "p2", panicOn: always},
	}}
	_, err := auto.Synthesize(context.Background(), qmat.Rz(0.3), Request{Epsilon: 1e-2})
	if err == nil {
		t.Fatal("all racers panicked but the race succeeded")
	}
	if !strings.Contains(err.Error(), "all backends failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineFailsClosedOnPanickedRotation(t *testing.T) {
	be := &panicBackend{name: "gridsynth", inner: gridsynthBE(t), panicOn: func() bool { return true }}
	pl := NewPipeline(be, WithRequest(Request{Epsilon: 1e-2}), WithWorkers(1))
	circ := circuit.New(1).RZ(0, 0.37)
	_, err := pl.Run(context.Background(), circ)
	if err == nil {
		t.Fatal("compile with a panicked rotation succeeded")
	}
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped PanicError", err)
	}
}
