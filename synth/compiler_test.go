package synth

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/qmat"
	"repro/internal/sim"
	"repro/internal/suite"
)

// stubBackend counts synthesis calls and returns a fixed sequence.
type stubBackend struct {
	calls atomic.Int64
	delay time.Duration
	fail  bool
}

func (s *stubBackend) Name() string { return "stub" }

func (s *stubBackend) Synthesize(ctx context.Context, u qmat.M2, req Request) (Result, error) {
	if s.delay > 0 {
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-time.After(s.delay):
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if s.fail {
		return Result{}, fmt.Errorf("stub: synthetic failure")
	}
	s.calls.Add(1)
	seq := gates.Sequence{gates.T, gates.H}
	return finish("stub", time.Now(), seq, 0.001, 1), nil
}

// TestCompileBatchCancellation: a mid-flight cancel drains the pool and
// surfaces the context error; a pre-canceled context never synthesizes.
func TestCompileBatchCancellation(t *testing.T) {
	stub := &stubBackend{delay: 50 * time.Millisecond}
	comp := NewCompiler(stub, Request{})
	comp.Workers = 2
	targets := make([]qmat.M2, 64)
	for i := range targets {
		targets[i] = qmat.Rz(float64(i) * 0.01)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := comp.CompileBatch(ctx, targets)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %s — pool did not drain", elapsed)
	}
	if got := stub.calls.Load(); got > 4 {
		t.Fatalf("pool kept synthesizing after cancel: %d calls", got)
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	stub2 := &stubBackend{}
	comp2 := NewCompiler(stub2, Request{})
	if _, err := comp2.CompileBatch(pre, targets); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if got := stub2.calls.Load(); got != 0 {
		t.Fatalf("pre-canceled batch synthesized %d times", got)
	}
}

// TestCompileBatchError: a failing backend aborts the batch with its error.
func TestCompileBatchError(t *testing.T) {
	comp := NewCompiler(&stubBackend{fail: true}, Request{})
	_, err := comp.CompileBatch(context.Background(), []qmat.M2{qmat.Rz(0.3), qmat.Rz(0.4)})
	if err == nil {
		t.Fatal("batch with failing backend returned nil error")
	}
}

// TestCompileBatchCacheAccounting: repeated targets synthesize once and
// count as hits; the cache is shared across batches.
func TestCompileBatchCacheAccounting(t *testing.T) {
	stub := &stubBackend{}
	comp := NewCompiler(stub, Request{})
	targets := []qmat.M2{qmat.Rz(0.3), qmat.Rz(0.3), qmat.Rz(0.3), qmat.Rz(0.9)}
	// Sequential workers make the duplicate ordering deterministic.
	comp.Workers = 1
	if _, err := comp.CompileBatch(context.Background(), targets); err != nil {
		t.Fatal(err)
	}
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("want 2 syntheses for 2 distinct targets, got %d", got)
	}
	st := comp.Cache.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("want 2 hits / 2 misses, got %+v", st)
	}
	// Second batch over the same targets: all hits, zero new syntheses.
	if _, err := comp.CompileBatch(context.Background(), targets); err != nil {
		t.Fatal(err)
	}
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("warm batch re-synthesized: %d calls", got)
	}
	if st := comp.Cache.Stats(); st.Hits != 6 {
		t.Fatalf("warm batch want 6 cumulative hits, got %+v", st)
	}
}

// TestCompileCircuitAccounting: within one circuit, repeated angles cost
// one synthesis; trivial rotations cost none.
func TestCompileCircuitAccounting(t *testing.T) {
	stub := &stubBackend{}
	comp := NewCompiler(stub, Request{})
	c := circuit.New(4)
	for q := 0; q < 4; q++ {
		c.RZ(q, 0.7)
	}
	res, err := comp.CompileCircuit(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rotations != 4 {
		t.Fatalf("want 4 lowered rotations, got %d", res.Stats.Rotations)
	}
	if res.Unique != 1 {
		t.Fatalf("want 1 unique synthesis, got %d", res.Unique)
	}
	if res.Hits != 3 || res.Misses != 1 {
		t.Fatalf("want 3 hits / 1 miss, got %d / %d", res.Hits, res.Misses)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("backend called %d times for 1 unique rotation", got)
	}
}

// TestCompileCircuitSemantics: end-to-end with the real trasyn backend — the
// lowered circuit must approximate the original within the error bound.
func TestCompileCircuitSemantics(t *testing.T) {
	be, _ := Lookup("trasyn")
	comp := NewCompiler(be, Request{
		Epsilon: 0.02, TBudget: 6, Tensors: 2, Samples: 1500, Seed: Seed(99),
	})
	c := circuit.New(2)
	c.H(0).RZ(0, 0.8).CX(0, 1).RX(1, 1.1).U3Gate(0, 0.5, 0.3, -0.7).CX(0, 1)
	res, err := comp.CompileCircuit(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.CountRotations() != 0 {
		t.Fatal("rotations left after lowering")
	}
	d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(res.Circuit))
	if d > res.Stats.ErrorBound*1.5+1e-6 {
		t.Fatalf("lowered circuit distance %v exceeds bound %v", d, res.Stats.ErrorBound)
	}
}

// TestCompileBatchDeterministicSeeding: per-op seeds derive from the op
// key, so results are identical across batch orderings and fresh caches.
func TestCompileBatchDeterministicSeeding(t *testing.T) {
	be, _ := Lookup("trasyn")
	req := Request{TBudget: 5, Tensors: 2, Samples: 400, Seed: Seed(7)}
	fwd := []qmat.M2{qmat.Rz(0.9), qmat.Rz(0.4), qmat.Rz(1.7)}
	rev := []qmat.M2{qmat.Rz(1.7), qmat.Rz(0.4), qmat.Rz(0.9)}
	a, err := NewCompiler(be, req).CompileBatch(context.Background(), fwd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCompiler(be, req).CompileBatch(context.Background(), rev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fwd {
		if a[i].Seq.String() != b[len(rev)-1-i].Seq.String() {
			t.Fatalf("target %d: order-dependent result:\n%v\n%v", i, a[i].Seq, b[len(rev)-1-i].Seq)
		}
	}
}

// qaoaRotationTargets extracts the nontrivial rotation matrices of the
// QAOA example circuit — the workload of the acceptance benchmark.
func qaoaRotationTargets() []qmat.M2 {
	qaoa := suite.QAOAMaxCut(8, 2, 1)
	var targets []qmat.M2
	for _, op := range qaoa.Ops {
		if op.G.IsRotation() {
			targets = append(targets, op.Matrix1Q())
		}
	}
	return targets
}

// repeatedAngles counts the distinct rotations that occur more than once
// in a target list — the denominators of the hits-per-repeated-rotation
// acceptance metric.
func repeatedAngles(c *Compiler, targets []qmat.M2) int {
	counts := map[Key]int{}
	for _, u := range targets {
		counts[KeyOfTarget(u, c.Backend.Name(), c.Req.Epsilon, c.Req.cacheCfg())]++
	}
	n := 0
	for _, v := range counts {
		if v > 1 {
			n++
		}
	}
	return n
}

// TestCompileBatchQAOAHits: on the QAOA example circuit the shared cache
// must give more than one hit per repeated rotation (the angles repeat
// heavily across edges and qubits).
func TestCompileBatchQAOAHits(t *testing.T) {
	targets := qaoaRotationTargets()
	be, _ := Lookup("gridsynth")
	comp := NewCompiler(be, Request{Epsilon: 1e-2})
	if _, err := comp.CompileBatch(context.Background(), targets); err != nil {
		t.Fatal(err)
	}
	repeats := repeatedAngles(comp, targets)
	if repeats == 0 {
		t.Fatal("QAOA workload has no repeated rotations")
	}
	st := comp.Cache.Stats()
	if st.Hits <= int64(repeats) {
		t.Fatalf("cache gave %d hits for %d repeated rotations — want > 1 hit each", st.Hits, repeats)
	}
	// Every duplicate occurrence must be a hit, never a re-synthesis.
	if want := int64(len(targets)) - st.Misses; st.Hits != want {
		t.Fatalf("hits %d != repeated occurrences %d", st.Hits, want)
	}
}

// BenchmarkCompileBatch: the acceptance benchmark — batch-compile the QAOA
// example circuit's rotations through the shared cache and report hits per
// repeated rotation per batch (must exceed 1: the cache amortizes every
// duplicate occurrence onto one synthesis).
func BenchmarkCompileBatch(b *testing.B) {
	targets := qaoaRotationTargets()
	be, _ := Lookup("gridsynth")
	comp := NewCompiler(be, Request{Epsilon: 1e-2})
	repeats := repeatedAngles(comp, targets)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.CompileBatch(ctx, targets); err != nil {
			b.Fatal(err)
		}
	}
	st := comp.Cache.Stats()
	if repeats > 0 {
		b.ReportMetric(float64(st.Hits)/float64(int64(repeats)*int64(b.N)), "hits/repeated-rot")
	}
	b.ReportMetric(float64(st.Hits)/float64(b.N), "hits/batch")
	b.ReportMetric(st.HitRate(), "hit-rate")
}
