// Package synth is the unified synthesis API: every synthesizer in the
// repository — trasyn (the paper's tensor-network search), the
// Ross–Selinger gridsynth baseline, Solovay–Kitaev, and the
// Synthetiq-style annealer — is exposed as a Backend behind one Request /
// Result pair, discovered through a named registry, and composed two
// ways: batch jobs through the Compiler service (worker pool, context
// cancellation, deterministic per-op seeding, shared bounded synthesis
// cache), and circuit compilation through the pass Pipeline (Transpile →
// FuseRotations → SnapTrivial → Lower → EstimateResources over a shared
// PassContext, with circuit-level error budgets).
//
// Rotation quick start:
//
//	be, _ := synth.Lookup("auto")
//	res, err := be.Synthesize(ctx, qmat.Rz(0.73), synth.Request{Epsilon: 1e-3})
//	fmt.Println(res.Backend, res.TCount, res.Error)
//
// Circuit quick start — compile a circuit to Clifford+T within a total
// error budget of 1e-2, split across its rotations:
//
//	circ, _ := circuit.ParseQASM(src)
//	pl, _ := synth.NewPipelineFor("auto", synth.WithCircuitEpsilon(1e-2))
//	out, err := pl.Run(ctx, circ)
//	fmt.Println(out.Circuit.TCount(), out.Stats.ErrorBound)
//
// Layering (see DESIGN.md for the full diagram):
//
//	cmd/*, examples/*          — CLIs and demos; talk to synth only
//	repro (root facade)        — thin deprecated shims over synth
//	synth                      — Backend, registry, Pipeline + passes,
//	                             Compiler, Cache
//	circuit                    — the public circuit IR (QASM in/out)
//	internal/pipeline          — circuit lowering primitives
//	internal/{core,gridsynth,sk,anneal} — the engines
package synth

import (
	"context"
	"time"

	"repro/internal/gates"
	"repro/internal/qmat"
)

// DefaultSeed is the seed used when Request.Seed is nil. Backends are
// deterministic for a fixed (target, Request) pair — nothing seeds from
// the clock — with one caveat: the annealer's restart budget is wall
// clock, so how far its deterministic random walk proceeds can vary with
// machine load.
const DefaultSeed int64 = 1

// DefaultEpsilon is the error threshold assumed by epsilon-driven backends
// (gridsynth, sk, anneal, auto) when Request.Epsilon is zero.
const DefaultEpsilon = 1e-2

// Request is the one synthesis request type shared by all backends. The
// zero value is usable: backends fill in their documented defaults.
type Request struct {
	// Epsilon is the target unitary distance (Eq. 2). Zero means "backend
	// default": best-effort for trasyn, DefaultEpsilon for epsilon-driven
	// backends.
	Epsilon float64
	// TBudget is trasyn's per-tensor T budget m (default 5). Other
	// backends use their own fixed enumeration tables and ignore it.
	TBudget int
	// Tensors is trasyn's maximum MPS length l (default 4 → T ≤ 4·TBudget).
	Tensors int
	// Samples is trasyn's MPS sample count k (default 2000).
	Samples int
	// Beam switches trasyn to the deterministic beam-search sampler.
	Beam bool
	// Seed pins the sampling randomness. nil selects DefaultSeed; use
	// Seed(0) for an explicit zero seed — unlike the deprecated facade,
	// seed 0 is a real seed here, not an alias for "unset".
	Seed *int64
	// Timeout bounds one synthesis call in addition to any deadline already
	// on the context (the annealer also uses it as its restart budget).
	Timeout time.Duration
}

// Seed returns a *int64 for Request.Seed, distinguishing an explicit seed
// (including 0) from the unset default.
func Seed(v int64) *int64 { return &v }

// seed resolves the effective seed.
func (r Request) seed() int64 {
	if r.Seed == nil {
		return DefaultSeed
	}
	return *r.Seed
}

// eps resolves the effective threshold for epsilon-driven backends.
func (r Request) eps() float64 {
	if r.Epsilon <= 0 {
		return DefaultEpsilon
	}
	return r.Epsilon
}

// withDefaults fills the trasyn-shaped knobs.
func (r Request) withDefaults() Request {
	if r.TBudget <= 0 {
		r.TBudget = 5
	}
	if r.Tensors <= 0 {
		r.Tensors = 4
	}
	if r.Samples <= 0 {
		r.Samples = 2000
	}
	return r
}

// budget applies Request.Timeout on top of the caller's context.
func (r Request) budget(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.Timeout > 0 {
		return context.WithTimeout(ctx, r.Timeout)
	}
	return ctx, func() {}
}

// Result is the one synthesis result type shared by all backends.
type Result struct {
	// Seq is the Clifford+T sequence in matrix-product order; its product
	// equals the target up to global phase, within Error.
	Seq gates.Sequence
	// Error is the realized unitary distance (Eq. 2) to the target.
	Error float64
	// TCount and Clifford are gate-count metadata for Seq.
	TCount   int
	Clifford int
	// Evals counts candidate configurations examined, when the backend
	// tracks them (trasyn); 0 otherwise.
	Evals int
	// Wall is the synthesis wall-clock time.
	Wall time.Duration
	// Backend names the backend that produced the result; for "auto" it is
	// the winning sub-backend.
	Backend string
	// Err, when non-nil, marks a contained per-op failure — a backend
	// panic recovered at the worker boundary. Seq is then empty and every
	// other field is zero except Backend; batch APIs report such ops
	// individually instead of failing the whole batch.
	Err error
}

// Backend is one synthesis engine. Implementations must be safe for
// concurrent use and honor context cancellation at their natural
// granularity (attempt / denominator-exponent / restart boundaries).
type Backend interface {
	// Name is the registry name.
	Name() string
	// Synthesize approximates target subject to req.
	Synthesize(ctx context.Context, target qmat.M2, req Request) (Result, error)
}

// finish stamps the shared metadata a backend result carries.
func finish(name string, start time.Time, seq gates.Sequence, errDist float64, evals int) Result {
	return Result{
		Seq:      seq,
		Error:    errDist,
		TCount:   seq.TCount(),
		Clifford: seq.CliffordCount(),
		Evals:    evals,
		Wall:     time.Since(start),
		Backend:  name,
	}
}
