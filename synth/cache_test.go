package synth

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/circuit"
	"repro/internal/gates"
)

func rzOp(theta float64) circuit.Op {
	return circuit.Op{G: circuit.RZ, Q: [2]int{0, -1}, P: [3]float64{theta}}
}

// TestCacheHitAccounting: Get counts hits and misses exactly.
func TestCacheHitAccounting(t *testing.T) {
	c := NewCache(8)
	k := KeyOf(rzOp(0.7), "t", 1e-3, 0)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, Entry{Seq: gates.Sequence{gates.T}, Err: 0.001})
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(k); !ok {
			t.Fatal("miss after Put")
		}
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats %+v, want 3 hits / 1 miss / size 1", st)
	}
	if got := st.HitRate(); got != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", got)
	}
}

// TestCacheKeyScoping: same angle under different scope, epsilon, or
// config must not collide; equivalent wrapped angles must.
func TestCacheKeyScoping(t *testing.T) {
	base := KeyOf(rzOp(0.7), "trasyn", 1e-3, 1)
	if KeyOf(rzOp(0.7), "gridsynth", 1e-3, 1) == base {
		t.Fatal("keys collide across backends")
	}
	if KeyOf(rzOp(0.7), "trasyn", 1e-4, 1) == base {
		t.Fatal("keys collide across epsilons")
	}
	if KeyOf(rzOp(0.7), "trasyn", 1e-3, 2) == base {
		t.Fatal("keys collide across configs")
	}
	if KeyOf(rzOp(0.7+16*3.141592653589793/4), "trasyn", 1e-3, 1) != base {
		t.Fatal("4π-equivalent angles do not share a key")
	}
}

// TestCacheCfgScoping: the packed config must separate entries whose
// synthesis output differs — base seed and time budget included — while
// treating a nil seed as DefaultSeed.
func TestCacheCfgScoping(t *testing.T) {
	base := Request{}.cacheCfg()
	if (Request{Seed: Seed(7)}).cacheCfg() == (Request{Seed: Seed(9)}).cacheCfg() {
		t.Fatal("base seed not part of the cache config")
	}
	if (Request{Seed: Seed(DefaultSeed)}).cacheCfg() != base {
		t.Fatal("nil seed and explicit DefaultSeed should share entries")
	}
	if (Request{Timeout: time.Second}).cacheCfg() == base {
		t.Fatal("timeout not part of the cache config")
	}
	if (Request{Beam: true}).cacheCfg() == base {
		t.Fatal("beam flag not part of the cache config")
	}
}

// TestCacheEviction: the cache is bounded, evicting least-recently-used.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	k := func(i int) Key { return KeyOf(rzOp(float64(i)*0.1+0.05), "t", 0, 0) }
	c.Put(k(1), Entry{})
	c.Put(k(2), Entry{})
	c.Get(k(1)) // refresh 1 → 2 is now LRU
	c.Put(k(3), Entry{})
	if c.Len() != 2 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Fatal("newest entry missing")
	}
}

// TestCacheWrapMemoizes: the lowerer adapter synthesizes each distinct
// angle once — the promoted replacement of pipeline's private memoizer.
func TestCacheWrapMemoizes(t *testing.T) {
	c := NewCache(0)
	calls := 0
	f := c.Wrap("scope", 1e-3, func(op circuit.Op) (gates.Sequence, float64, error) {
		calls++
		return gates.Sequence{gates.T}, 0.001, nil
	})
	for i := 0; i < 5; i++ {
		if _, _, err := f(rzOp(0.7)); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("want 1 underlying call, got %d", calls)
	}
	// A tighter epsilon must not be served the loose entry.
	tight := 0
	h := c.Wrap("scope", 1e-6, func(op circuit.Op) (gates.Sequence, float64, error) {
		tight++
		return gates.Sequence{gates.T}, 1e-7, nil
	})
	if _, _, err := h(rzOp(0.7)); err != nil {
		t.Fatal(err)
	}
	if tight != 1 {
		t.Fatalf("tight-epsilon pass hit the loose entry (%d calls)", tight)
	}
	// Errors are not cached: the lowerer is retried.
	fails := 0
	g := c.Wrap("scope", 1e-3, func(op circuit.Op) (gates.Sequence, float64, error) {
		fails++
		return nil, 0, fmt.Errorf("boom")
	})
	g(rzOp(1.3))
	g(rzOp(1.3))
	if fails != 2 {
		t.Fatalf("error was cached: %d calls", fails)
	}
}

// TestCacheShardedBound: a sharded cache distributes entries yet never
// exceeds its total capacity, and the invariant holds: Hits+Misses counts
// exactly the Get calls made.
func TestCacheShardedBound(t *testing.T) {
	c := NewCacheSharded(64, 8)
	if c.Shards() != 8 || c.Cap() != 64 {
		t.Fatalf("want 8 shards / cap 64, got %d / %d", c.Shards(), c.Cap())
	}
	lookups := 0
	for i := 0; i < 500; i++ {
		k := KeyOf(rzOp(float64(i)*0.013+0.004), "t", 1e-3, 0)
		c.Get(k)
		lookups++
		c.Put(k, Entry{Seq: gates.Sequence{gates.T}})
	}
	if c.Len() > 64 {
		t.Fatalf("sharded cache exceeded capacity: %d > 64", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != int64(lookups) {
		t.Fatalf("invariant broken: %d hits + %d misses != %d lookups", st.Hits, st.Misses, lookups)
	}
	// NewCache auto-shards large capacities and keeps small ones on one
	// shard (exact LRU).
	if got := NewCache(0).Shards(); got != DefaultCacheShards {
		t.Fatalf("default cache has %d shards, want %d", got, DefaultCacheShards)
	}
	if got := NewCache(32).Shards(); got != 1 {
		t.Fatalf("small cache has %d shards, want 1", got)
	}
}

// TestCacheConcurrent: concurrent Get/Put/Wrap must be race-free (run
// under -race in CI) and never exceed the bound.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := c.Wrap("s", 1e-3, func(op circuit.Op) (gates.Sequence, float64, error) {
				return gates.Sequence{gates.T}, 0.001, nil
			})
			for i := 0; i < 200; i++ {
				f(rzOp(float64(i%48)*0.07 + 0.01))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache exceeded bound: %d", c.Len())
	}
	if st := c.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("degenerate accounting: %+v", st)
	}
}

// TestCachePeerTier: the SetPeer hook pair. A local miss consults the
// peer lookup — a peer hit counts as a hit (the Hits+Misses==lookups
// invariant survives the peer tier) and lands in the local cache without
// re-publishing; a Put of locally produced entries notifies the fill
// hook; PutQuiet never does.
func TestCachePeerTier(t *testing.T) {
	c := NewCache(8)
	remote := map[Key]Entry{}
	var fills []Key
	c.SetPeer(
		func(_ context.Context, k Key) (Entry, bool) { e, ok := remote[k]; return e, ok },
		func(_ context.Context, k Key, e Entry) { fills = append(fills, k) },
	)

	kRemote := KeyOf(rzOp(0.7), "t", 1e-3, 0)
	kLocal := KeyOf(rzOp(0.9), "t", 1e-3, 0)
	kMiss := KeyOf(rzOp(1.1), "t", 1e-3, 0)
	remote[kRemote] = Entry{Seq: gates.Sequence{gates.T}, Err: 0.001}

	// Peer hit: counted as a hit, no fill notification (peer-served
	// entries must not echo back to the owner), and now cached locally.
	if _, ok := c.Get(kRemote); !ok {
		t.Fatal("peer-held key missed")
	}
	if len(fills) != 0 {
		t.Fatalf("peer hit triggered %d fill notifications, want 0", len(fills))
	}
	delete(remote, kRemote)
	if _, ok := c.Get(kRemote); !ok {
		t.Fatal("peer-served entry was not cached locally")
	}

	// Peer miss: counted as a miss.
	if _, ok := c.Get(kMiss); ok {
		t.Fatal("hit on a key neither tier holds")
	}

	// Put publishes through the fill hook exactly once; PutQuiet is the
	// no-publish path (snapshot loads, peer-pushed entries).
	c.Put(kLocal, Entry{Seq: gates.Sequence{gates.T}, Err: 0.001})
	if len(fills) != 1 || fills[0] != kLocal {
		t.Fatalf("fills after Put = %v, want [%v]", fills, kLocal)
	}
	c.PutQuiet(kMiss, Entry{Seq: gates.Sequence{gates.T}, Err: 0.001})
	if len(fills) != 1 {
		t.Fatalf("PutQuiet published through the fill hook: %v", fills)
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss (peer hit counts as hit)", st)
	}

	// Range sees every live entry.
	seen := 0
	c.Range(func(Key, Entry) bool { seen++; return true })
	if seen != 3 {
		t.Fatalf("Range visited %d entries, want 3", seen)
	}

	// Hooks detach cleanly.
	c.SetPeer(nil, nil)
	if _, ok := c.Get(KeyOf(rzOp(1.3), "t", 1e-3, 0)); ok {
		t.Fatal("hit after detaching peer hooks")
	}
}
