package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/synth"
)

// seedStats builds a table with one of every observation kind: race
// winner, race loser, failed racer, materialized cache hit, and a hit
// on an in-flight entry (unknown T count).
func seedStats() *Stats {
	s := New()
	s.Observe(synth.SynthObservation{ // race winner
		Backend: "gridsynth", Epsilon: 1e-3, Class: "generic",
		Wall: 3 * time.Millisecond, TCount: 40, ErrDist: 5e-4, Won: true,
	})
	s.Observe(synth.SynthObservation{ // race loser, same cell
		Backend: "gridsynth", Epsilon: 1e-3, Class: "generic",
		Wall: 9 * time.Millisecond, TCount: 52, ErrDist: 7e-4,
	})
	s.Observe(synth.SynthObservation{ // failed racer
		Backend: "gridsynth", Epsilon: 1e-3, Class: "generic", Failed: true,
	})
	s.Observe(synth.SynthObservation{ // materialized cache hit
		Backend: "gridsynth", Epsilon: 1e-3, Class: "generic",
		TCount: 40, ErrDist: 5e-4, CacheHit: true,
	})
	s.Observe(synth.SynthObservation{ // hit on in-flight entry: T unknown
		Backend: "gridsynth", Epsilon: 1e-3, Class: "generic",
		TCount: -1, CacheHit: true,
	})
	s.Observe(synth.SynthObservation{ // different cell: other band+class
		Backend: "trasyn", Epsilon: 0.3, Class: "pi4",
		Wall: time.Millisecond, TCount: 8, Won: true,
	})
	return s
}

func TestObserveAccounting(t *testing.T) {
	sn := seedStats().Snapshot()
	if len(sn.Cells) != 2 {
		t.Fatalf("got %d cells, want 2: %+v", len(sn.Cells), sn.Cells)
	}
	// Sorted order puts gridsynth first.
	g := sn.Cells[0]
	if g.Cell != (Cell{Backend: "gridsynth", EpsBand: "1e-3", Class: "generic"}) {
		t.Fatalf("unexpected first cell %+v", g.Cell)
	}
	if g.Count != 5 || g.Wins != 1 || g.Losses != 1 || g.Errors != 1 || g.Hits != 2 || g.Synthesized != 2 {
		t.Errorf("gridsynth counters off: %+v", g.CellStats)
	}
	// TSum = 40+52 (syntheses) + 40 (materialized hit); the -1 hit is excluded.
	if g.TSum != 132 || g.TObs != 3 {
		t.Errorf("T accounting: sum %d obs %d, want 132/3", g.TSum, g.TObs)
	}
	if got, want := g.MeanT(), 44.0; got != want {
		t.Errorf("MeanT %g, want %g", got, want)
	}
	if g.Wall.N != 2 {
		t.Errorf("wall sketch holds %d samples, want 2 (hits and failures stay out)", g.Wall.N)
	}
	tr := sn.Cells[1]
	if tr.Cell != (Cell{Backend: "trasyn", EpsBand: "1e-1", Class: "pi4"}) {
		t.Fatalf("unexpected second cell %+v", tr.Cell)
	}
	if err := sn.Validate(); err != nil {
		t.Fatalf("live snapshot fails its own validation: %v", err)
	}
}

func TestEpsBand(t *testing.T) {
	for _, tc := range []struct {
		eps  float64
		want string
	}{
		{0, "default"}, {-1, "default"},
		{1e-2, "1e-2"}, {0.03, "1e-2"}, {0.3, "1e-1"},
		{1e-10, "1e-10"}, {1, "1e0"},
	} {
		if got := EpsBand(tc.eps); got != tc.want {
			t.Errorf("EpsBand(%g) = %q, want %q", tc.eps, got, tc.want)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.stats")
	s := seedStats()
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	// "Restart": a fresh table loads the sidecar and matches exactly.
	s2 := New()
	if err := s2.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !reflect.DeepEqual(s.Snapshot(), s2.Snapshot()) {
		t.Fatalf("snapshot changed across save/load round trip")
	}
	// And the restored table keeps accumulating.
	s2.Observe(synth.SynthObservation{Backend: "gridsynth", Epsilon: 1e-3, Class: "generic", CacheHit: true, TCount: -1})
	if got := s2.Snapshot().Cells[0].Count; got != 6 {
		t.Fatalf("post-restore count %d, want 6", got)
	}
}

// TestLoadDegradesToEmpty: corrupt bytes, a prior-version snapshot, and
// an invariant-violating snapshot all error out of LoadFile without
// touching the table — the daemon logs and starts with empty stats.
func TestLoadDegradesToEmpty(t *testing.T) {
	good := seedStats()
	goodPath := filepath.Join(t.TempDir(), "good.stats")
	if err := good.SaveFile(goodPath); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"garbage":        []byte("not json {"),
		"truncated":      goodBytes[:len(goodBytes)/2],
		"prior-version":  []byte(`{"version":0,"cells":[]}`),
		"future-version": []byte(`{"version":99,"cells":[]}`),
		"count-mismatch": []byte(`{"version":1,"cells":[{"backend":"g","eps_band":"1e-3","class":"generic","count":5,"hits":1,"synthesized":1,"errors":1,"wall":{"n":1,"b":[1]}}]}`),
		"empty-key":      []byte(`{"version":1,"cells":[{"backend":"","eps_band":"1e-3","class":"generic","count":0,"wall":{"n":0}}]}`),
		"dup-cell": []byte(`{"version":1,"cells":[` +
			`{"backend":"g","eps_band":"1e-3","class":"generic","count":0,"wall":{"n":0}},` +
			`{"backend":"g","eps_band":"1e-3","class":"generic","count":0,"wall":{"n":0}}]}`),
		"sketch-mismatch": []byte(`{"version":1,"cells":[{"backend":"g","eps_band":"1e-3","class":"generic","count":1,"synthesized":1,"wall":{"n":0}}]}`),
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.stats")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			s := New()
			s.Observe(synth.SynthObservation{Backend: "pre", Epsilon: 1e-2, Class: "generic", Won: true})
			before := s.Snapshot()
			if err := s.LoadFile(path); err == nil {
				t.Fatal("bad snapshot loaded without error")
			}
			if !reflect.DeepEqual(before, s.Snapshot()) {
				t.Fatal("failed load mutated the table")
			}
		})
	}

	// Missing file is the fresh-start path: an error the caller maps to
	// "starting empty", distinguishable via os.IsNotExist.
	s := New()
	err = s.LoadFile(filepath.Join(t.TempDir(), "absent.stats"))
	if !os.IsNotExist(err) {
		t.Fatalf("missing file: got %v, want not-exist", err)
	}
}

func TestMergeSumsCells(t *testing.T) {
	a, b := seedStats().Snapshot(), seedStats().Snapshot()
	b.Dropped = 3
	merged := Merge(a, nil, b)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged snapshot invalid: %v", err)
	}
	if merged.Dropped != 3 {
		t.Errorf("merged dropped %d, want 3", merged.Dropped)
	}
	if len(merged.Cells) != len(a.Cells) {
		t.Fatalf("merged has %d cells, want %d", len(merged.Cells), len(a.Cells))
	}
	for i, c := range merged.Cells {
		if c.Count != a.Cells[i].Count+b.Cells[i].Count {
			t.Errorf("cell %+v merged count %d != %d+%d", c.Cell, c.Count, a.Cells[i].Count, b.Cells[i].Count)
		}
		if c.Wall.N != a.Cells[i].Wall.N+b.Cells[i].Wall.N {
			t.Errorf("cell %+v merged sketch count off", c.Cell)
		}
	}
}

func TestMaxCellsDrops(t *testing.T) {
	s := New()
	s.maxCells = 2
	for i, backend := range []string{"a", "b", "c", "d"} {
		s.Observe(synth.SynthObservation{Backend: backend, Epsilon: 1e-2, Class: "generic", Won: true, Wall: time.Duration(i+1) * time.Millisecond})
	}
	// Existing cells still accept observations at the cap.
	s.Observe(synth.SynthObservation{Backend: "a", Epsilon: 1e-2, Class: "generic", CacheHit: true, TCount: -1})
	sn := s.Snapshot()
	if len(sn.Cells) != 2 {
		t.Fatalf("table grew to %d cells past cap 2", len(sn.Cells))
	}
	if sn.Dropped != 2 {
		t.Fatalf("dropped %d, want 2", sn.Dropped)
	}
	if sn.Cells[0].Count != 2 {
		t.Fatalf("existing cell rejected observation at cap: count %d", sn.Cells[0].Count)
	}
}
