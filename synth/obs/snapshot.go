package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SnapshotVersion is the statistics snapshot format version. A mismatch
// on load is an error the caller degrades from (empty statistics) —
// never a partial or misread install.
const SnapshotVersion = 1

// Snapshot is the serializable (and wire) form of a statistics table:
// the sidecar file persisted next to the cache snapshot, and the payload
// of GET /v1/peer/stats. Merge combines node snapshots losslessly.
type Snapshot struct {
	Version int            `json:"version"`
	Dropped int64          `json:"dropped,omitempty"`
	Cells   []CellSnapshot `json:"cells"`
}

// CellSnapshot is one cell plus its statistics.
type CellSnapshot struct {
	Cell
	CellStats
}

// Validate checks the whole snapshot — version, key vocabulary, counter
// invariants, sketch shape — before any of it is trusted (snapshot
// files and peer stats payloads alike).
func (sn *Snapshot) Validate() error {
	if sn.Version != SnapshotVersion {
		return fmt.Errorf("obs: snapshot version %d, want %d", sn.Version, SnapshotVersion)
	}
	if sn.Dropped < 0 {
		return fmt.Errorf("obs: snapshot dropped %d < 0", sn.Dropped)
	}
	seen := make(map[Cell]bool, len(sn.Cells))
	for i := range sn.Cells {
		c := &sn.Cells[i]
		if c.Backend == "" || c.EpsBand == "" || c.Class == "" {
			return fmt.Errorf("obs: cell %d has empty key %+v", i, c.Cell)
		}
		if seen[c.Cell] {
			return fmt.Errorf("obs: duplicate cell %+v", c.Cell)
		}
		seen[c.Cell] = true
		if err := c.CellStats.validate(); err != nil {
			return fmt.Errorf("obs: cell %+v: %w", c.Cell, err)
		}
	}
	return nil
}

// Merge combines snapshots cell-wise: counters add, sketches merge
// bucket-wise (exactly the sketch of the union stream), so the merged
// view's per-cell counts equal the sum across inputs. Nil inputs are
// skipped. The result is a fresh snapshot, sorted like Stats.Snapshot.
func Merge(snaps ...*Snapshot) *Snapshot {
	cells := map[Cell]*CellStats{}
	out := &Snapshot{Version: SnapshotVersion}
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		out.Dropped += sn.Dropped
		for i := range sn.Cells {
			c := &sn.Cells[i]
			cs := cells[c.Cell]
			if cs == nil {
				cs = &CellStats{}
				cells[c.Cell] = cs
			}
			cs.merge(&c.CellStats)
		}
	}
	for cell, cs := range cells {
		out.Cells = append(out.Cells, CellSnapshot{Cell: cell, CellStats: *cs})
	}
	sort.Slice(out.Cells, func(i, j int) bool { return out.Cells[i].Cell.less(out.Cells[j].Cell) })
	return out
}

// Write emits the snapshot as JSON.
func (sn *Snapshot) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(sn)
}

// ReadSnapshot parses and validates a snapshot stream.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	if err := json.NewDecoder(r).Decode(&sn); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	if err := sn.Validate(); err != nil {
		return nil, err
	}
	return &sn, nil
}

// SaveFile atomically writes the table's snapshot to path (temp file,
// fsync, rename) — the same durability discipline as the cache
// snapshot, so a crash mid-save leaves the previous file intact.
func (s *Stats) SaveFile(path string) error {
	sn := s.Snapshot()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".stats-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := sn.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads, validates and installs a snapshot file — all before
// replacing any state, so a corrupt or prior-version file leaves the
// table untouched (the caller logs and continues with what it has).
func (s *Stats) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sn, err := ReadSnapshot(f)
	if err != nil {
		return err
	}
	return s.LoadSnapshot(sn)
}
