package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/synth"
)

// DefaultMaxCells bounds the statistics table. The natural cardinality
// is small — backends × ε decades × the five angle classes — so the cap
// only matters if a bug floods the cell space; beyond it observations
// are counted in Dropped rather than growing memory.
const DefaultMaxCells = 4096

// Cell is the statistics key: which backend, which ε decade, which
// angle class. Bounded vocabulary in every coordinate keeps the table
// bounded.
type Cell struct {
	Backend string `json:"backend"`
	EpsBand string `json:"eps_band"`
	Class   string `json:"class"`
}

// EpsBand buckets an epsilon into its decade ("1e-3" covers
// [1e-3, 1e-2)); non-positive epsilons — requests leaving the backend
// default in force — band to "default".
func EpsBand(eps float64) string {
	if eps <= 0 {
		return "default"
	}
	return fmt.Sprintf("1e%d", int(math.Floor(math.Log10(eps)+1e-9)))
}

// CellStats is one cell's accumulated statistics. Exported fields are
// the snapshot/wire form; Stats owns all mutation.
type CellStats struct {
	// Count is every observation charged to the cell.
	Count int64 `json:"count"`
	// Wins/Losses count race outcomes among performed syntheses (a
	// non-racing synthesis is a win by walkover); Errors counts failed
	// racers.
	Wins   int64 `json:"wins"`
	Losses int64 `json:"losses"`
	Errors int64 `json:"errors"`
	// Hits counts cache hits, Synthesized actual syntheses — the
	// amortization split per cell.
	Hits        int64 `json:"hits"`
	Synthesized int64 `json:"synthesized"`
	// TSum sums T counts over TObs observations with a known T count
	// (hits on in-flight entries report -1 and are excluded).
	TSum int64 `json:"t_sum"`
	TObs int64 `json:"t_obs"`
	// Wall sketches synthesis wall time; cache hits (zero wall) stay out.
	Wall Sketch `json:"wall"`
}

// MeanT returns the mean T count, or 0 with no T observations.
func (c *CellStats) MeanT() float64 {
	if c.TObs == 0 {
		return 0
	}
	return float64(c.TSum) / float64(c.TObs)
}

// merge folds other into c; sketches add losslessly.
func (c *CellStats) merge(other *CellStats) {
	c.Count += other.Count
	c.Wins += other.Wins
	c.Losses += other.Losses
	c.Errors += other.Errors
	c.Hits += other.Hits
	c.Synthesized += other.Synthesized
	c.TSum += other.TSum
	c.TObs += other.TObs
	c.Wall.Merge(&other.Wall)
}

// validate is the snapshot-load guard.
func (c *CellStats) validate() error {
	for _, v := range []struct {
		name string
		n    int64
	}{
		{"count", c.Count}, {"wins", c.Wins}, {"losses", c.Losses},
		{"errors", c.Errors}, {"hits", c.Hits}, {"synthesized", c.Synthesized},
		{"t_obs", c.TObs},
	} {
		if v.n < 0 {
			return fmt.Errorf("obs: cell %s %d < 0", v.name, v.n)
		}
	}
	if c.Hits+c.Synthesized+c.Errors != c.Count {
		return fmt.Errorf("obs: cell hits %d + synthesized %d + errors %d != count %d",
			c.Hits, c.Synthesized, c.Errors, c.Count)
	}
	if err := c.Wall.validate(); err != nil {
		return err
	}
	if c.Wall.N != c.Synthesized {
		return fmt.Errorf("obs: cell wall sketch count %d != synthesized %d", c.Wall.N, c.Synthesized)
	}
	return nil
}

// Stats is the concurrent-safe statistics table a daemon feeds from its
// SynthObservation hook. The zero value is not usable; call New.
type Stats struct {
	mu       sync.Mutex
	cells    map[Cell]*CellStats
	dropped  int64
	maxCells int
}

// New returns an empty table with the default cell cap.
func New() *Stats {
	return &Stats{cells: map[Cell]*CellStats{}, maxCells: DefaultMaxCells}
}

// Observe charges one observation to its cell. Safe for concurrent use —
// it is called from synthesis worker goroutines.
func (s *Stats) Observe(o synth.SynthObservation) {
	cell := Cell{Backend: o.Backend, EpsBand: EpsBand(o.Epsilon), Class: o.Class}
	if cell.Class == "" {
		cell.Class = "generic"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.cells[cell]
	if cs == nil {
		if len(s.cells) >= s.maxCells {
			s.dropped++
			return
		}
		cs = &CellStats{}
		s.cells[cell] = cs
	}
	cs.Count++
	switch {
	case o.Failed:
		cs.Errors++
	case o.CacheHit:
		cs.Hits++
		if o.TCount >= 0 {
			cs.TSum += int64(o.TCount)
			cs.TObs++
		}
	default:
		cs.Synthesized++
		cs.Wall.Observe(o.Wall)
		if o.Won {
			cs.Wins++
		} else {
			cs.Losses++
		}
		cs.TSum += int64(o.TCount)
		cs.TObs++
	}
}

// Snapshot deep-copies the table into its serializable form, cells
// sorted by (backend, eps_band, class) for stable output.
func (s *Stats) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := &Snapshot{Version: SnapshotVersion, Dropped: s.dropped}
	for cell, cs := range s.cells {
		sn.Cells = append(sn.Cells, CellSnapshot{
			Cell: cell,
			CellStats: CellStats{
				Count: cs.Count, Wins: cs.Wins, Losses: cs.Losses, Errors: cs.Errors,
				Hits: cs.Hits, Synthesized: cs.Synthesized,
				TSum: cs.TSum, TObs: cs.TObs,
				Wall: cs.Wall.clone(),
			},
		})
	}
	sort.Slice(sn.Cells, func(i, j int) bool { return sn.Cells[i].Cell.less(sn.Cells[j].Cell) })
	return sn
}

// LoadSnapshot validates sn in full and then replaces the table's
// contents with it — all-or-nothing, so a corrupt snapshot cannot
// half-install.
func (s *Stats) LoadSnapshot(sn *Snapshot) error {
	if err := sn.Validate(); err != nil {
		return err
	}
	cells := make(map[Cell]*CellStats, len(sn.Cells))
	for _, c := range sn.Cells {
		cs := c.CellStats
		cs.Wall = cs.Wall.clone()
		cells[c.Cell] = &cs
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cells = cells
	s.dropped = sn.Dropped
	return nil
}

func (a Cell) less(b Cell) bool {
	if a.Backend != b.Backend {
		return a.Backend < b.Backend
	}
	if a.EpsBand != b.EpsBand {
		return a.EpsBand < b.EpsBand
	}
	return a.Class < b.Class
}
