package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// trueQuantile is the nearest-rank sample quantile — the ground truth
// the sketch's documented bound is measured against.
func trueQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// relErr returns the symmetric relative error between estimate and truth.
func relErr(est, truth time.Duration) float64 {
	a, b := float64(est), float64(truth)
	if a < b {
		a, b = b, a
	}
	return a/b - 1
}

// genDurations draws a heavy-tailed workload: lognormal around ~160µs
// spanning microseconds to seconds — the shape synthesis wall times
// actually have (warm gridsynth calls vs tight-ε trasyn runs). Values
// are clamped into the sketch range, where the bound applies.
func genDurations(n int, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		d := time.Duration(math.Exp(rng.NormFloat64()*2.0 + 12.0)) // ns
		// Clamp into sketch range, off the exact bucket boundary at 2µs
		// (powers of two sit on edges for γ = 2^(1/8), where nanosecond
		// truncation can tip the measured ratio a hair past the bound).
		if d < 3*time.Microsecond {
			d = 3 * time.Microsecond
		}
		out[i] = d
	}
	return out
}

// TestSketchQuantileErrorBound is the documented guarantee: for every
// tested quantile the sketch estimate is within RelativeErrorBound of
// the true sample quantile.
func TestSketchQuantileErrorBound(t *testing.T) {
	data := genDurations(20000, 1)
	var s Sketch
	for _, d := range data {
		s.Observe(d)
	}
	sorted := append([]time.Duration(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		est := s.Quantile(q)
		truth := trueQuantile(sorted, q)
		if e := relErr(est, truth); e > RelativeErrorBound+1e-12 {
			t.Errorf("q=%g: estimate %v vs true %v: relative error %.4f > bound %.4f",
				q, est, truth, e, RelativeErrorBound)
		}
	}
	if s.N != int64(len(data)) {
		t.Fatalf("sketch count %d, want %d", s.N, len(data))
	}
}

func TestSketchEmptyAndClamp(t *testing.T) {
	var s Sketch
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch quantile = %v, want 0", got)
	}
	// Below-range and above-range observations clamp, not panic or drop.
	s.Observe(0)
	s.Observe(time.Nanosecond)
	s.Observe(time.Hour)
	if s.N != 3 {
		t.Fatalf("count %d after clamped observations, want 3", s.N)
	}
	if err := s.validate(); err != nil {
		t.Fatalf("clamped sketch invalid: %v", err)
	}
}

// TestSketchMergeAdversarialSplits: merging per-shard sketches must be
// exactly the sketch of the concatenated stream — bucket-for-bucket —
// no matter how adversarially the stream is split (all-small vs
// all-large, interleaved, empty shards, many shards). Consequently the
// merged quantiles also stay within the documented bound of the true
// quantiles of the union.
func TestSketchMergeAdversarialSplits(t *testing.T) {
	data := genDurations(8000, 7)
	sorted := append([]time.Duration(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var whole Sketch
	for _, d := range data {
		whole.Observe(d)
	}

	splits := map[string]func() []*Sketch{
		// Sorted halves: one shard gets every small value, the other
		// every large one — the split that breaks naive mergeable
		// summaries.
		"sorted-halves": func() []*Sketch {
			a, b := &Sketch{}, &Sketch{}
			for i, d := range sorted {
				if i < len(sorted)/2 {
					a.Observe(d)
				} else {
					b.Observe(d)
				}
			}
			return []*Sketch{a, b}
		},
		"interleaved": func() []*Sketch {
			a, b := &Sketch{}, &Sketch{}
			for i, d := range data {
				if i%2 == 0 {
					a.Observe(d)
				} else {
					b.Observe(d)
				}
			}
			return []*Sketch{a, b}
		},
		"empty-shards": func() []*Sketch {
			a := &Sketch{}
			for _, d := range data {
				a.Observe(d)
			}
			return []*Sketch{{}, a, {}}
		},
		"seven-way": func() []*Sketch {
			shards := make([]*Sketch, 7)
			for i := range shards {
				shards[i] = &Sketch{}
			}
			for i, d := range sorted {
				shards[i%7].Observe(d)
			}
			return shards
		},
	}

	for name, mk := range splits {
		var merged Sketch
		for _, sh := range mk() {
			merged.Merge(sh)
		}
		if merged.N != whole.N {
			t.Fatalf("%s: merged count %d != whole %d", name, merged.N, whole.N)
		}
		if !reflect.DeepEqual(merged.B, whole.B) {
			t.Fatalf("%s: merged buckets differ from single-stream sketch", name)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
				t.Fatalf("%s: q=%g merged %v != whole %v", name, q, got, want)
			}
			truth := trueQuantile(sorted, q)
			if e := relErr(merged.Quantile(q), truth); e > RelativeErrorBound+1e-12 {
				t.Errorf("%s: q=%g merged relative error %.4f > bound %.4f", name, q, e, RelativeErrorBound)
			}
		}
	}
}

func TestSketchValidate(t *testing.T) {
	bad := []Sketch{
		{N: -1},
		{N: 2, B: []int64{1}},           // sum mismatch
		{N: 1, B: []int64{-1, 2}},       // negative bucket
		{N: 0, B: make([]int64, 10000)}, // too many buckets
	}
	for i, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("bad sketch %d validated", i)
		}
	}
}
