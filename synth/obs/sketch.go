// Package obs is the fleet-statistics subsystem: bounded-memory online
// statistics over synthesis observations, keyed by (backend, ε-decade
// band, angle class). Each cell carries win/loss/error counters from the
// auto race, the cache-hit vs synthesized split, a T-count mean, and a
// streaming quantile sketch of synthesis wall time. Statistics persist
// as a versioned snapshot next to the cache snapshot and merge losslessly
// across cluster nodes, so any node can answer for the fleet.
package obs

import (
	"fmt"
	"math"
	"time"
)

// The sketch is a log-bucketed histogram: bucket i covers
// [sketchMin·γ^i, sketchMin·γ^(i+1)) with γ = 2^(1/8). A quantile
// estimate is the geometric midpoint of the bucket holding that rank,
// so the estimate is within a factor γ^(1/2) of the true sample
// quantile — a guaranteed relative error of at most γ^(1/2)−1 ≈ 4.4%
// (RelativeErrorBound), independent of the distribution. Merging two
// sketches is bucket-wise addition, which is *exactly* the sketch of
// the concatenated streams — federation loses nothing.
const (
	// sketchGamma is the bucket growth factor, 2^(1/8).
	sketchGamma = 1.0905077326652577
	// sketchMin is the lower edge of bucket 0; anything faster clamps
	// there (a synthesis under a microsecond is measurement noise).
	sketchMin = time.Microsecond
	// sketchBuckets spans sketchMin·γ^240 ≈ 18 minutes; slower
	// observations clamp into the last bucket.
	sketchBuckets = 240
)

// RelativeErrorBound is the documented worst-case relative error of
// Sketch.Quantile against the true sample quantile, for values inside
// the sketch range: γ^(1/2) − 1.
var RelativeErrorBound = math.Sqrt(sketchGamma) - 1

// Sketch is a bounded-memory streaming quantile sketch over durations.
// The zero value is empty and ready to use. Fields are exported for JSON
// snapshot and wire transport only; use the methods. Not safe for
// concurrent use — Stats serializes access.
type Sketch struct {
	// N counts every observation, including clamped ones.
	N int64 `json:"n"`
	// B holds per-bucket counts; trailing zero buckets are trimmed on
	// snapshot, so len(B) ≤ sketchBuckets.
	B []int64 `json:"b,omitempty"`
}

// bucketOf maps a duration to its bucket index, clamping to the range.
func bucketOf(d time.Duration) int {
	if d <= sketchMin {
		return 0
	}
	i := int(math.Log(float64(d)/float64(sketchMin)) / math.Log(sketchGamma))
	if i >= sketchBuckets {
		return sketchBuckets - 1
	}
	return i
}

// Observe adds one duration.
func (s *Sketch) Observe(d time.Duration) {
	i := bucketOf(d)
	if len(s.B) <= i {
		grown := make([]int64, i+1)
		copy(grown, s.B)
		s.B = grown
	}
	s.B[i]++
	s.N++
}

// Quantile returns the q-quantile estimate (q in [0,1]) — the geometric
// midpoint of the bucket containing rank ⌈q·N⌉ — or 0 on an empty
// sketch. For values inside the sketch range the estimate is within
// RelativeErrorBound of the true sample quantile.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s.N == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.N)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.B {
		seen += c
		if seen >= rank {
			mid := float64(sketchMin) * math.Pow(sketchGamma, float64(i)+0.5)
			return time.Duration(mid)
		}
	}
	// Unreachable when N == sum(B); defend against a corrupt load.
	return time.Duration(float64(sketchMin) * math.Pow(sketchGamma, sketchBuckets))
}

// Merge adds other's observations into s — bucket-wise addition, exactly
// equivalent to having observed both streams in one sketch.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.N == 0 {
		return
	}
	if len(s.B) < len(other.B) {
		grown := make([]int64, len(other.B))
		copy(grown, s.B)
		s.B = grown
	}
	for i, c := range other.B {
		s.B[i] += c
	}
	s.N += other.N
}

// clone deep-copies the sketch (snapshots must not alias live buckets).
func (s *Sketch) clone() Sketch {
	return Sketch{N: s.N, B: append([]int64(nil), s.B...)}
}

// validate rejects sketches no Observe/Merge sequence could produce —
// the guard LoadSnapshot runs before installing foreign data.
func (s *Sketch) validate() error {
	if s.N < 0 {
		return fmt.Errorf("obs: sketch count %d < 0", s.N)
	}
	if len(s.B) > sketchBuckets {
		return fmt.Errorf("obs: sketch has %d buckets, max %d", len(s.B), sketchBuckets)
	}
	var sum int64
	for i, c := range s.B {
		if c < 0 {
			return fmt.Errorf("obs: sketch bucket %d count %d < 0", i, c)
		}
		sum += c
	}
	if sum != s.N {
		return fmt.Errorf("obs: sketch bucket sum %d != count %d", sum, s.N)
	}
	return nil
}
