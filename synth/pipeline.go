package synth

import (
	"context"
	"fmt"
	"time"

	"repro/circuit"
	"repro/synth/trace"
)

// Pipeline is the composable circuit-compilation API: an ordered list of
// Passes over one shared PassContext (backend, error budget, worker pool,
// cache, progress hooks). The zero configuration — NewPipeline(backend) —
// is the paper's Figure 3(a) workflow: transpile to the workflow IR, fuse
// and snap rotations, lower every nontrivial rotation through the backend,
// and estimate fault-tolerant resources.
//
// The pipeline is immutable after construction and safe for concurrent
// Run calls when its Cache is (synth.Cache is); each Run gets a fresh
// PassContext and stats.
type Pipeline struct {
	backend    Backend
	req        Request
	workers    int
	cache      *Cache
	ir         IR
	circuitEps float64
	budget     BudgetStrategy
	progress   func(ProgressEvent)
	observe    func(SynthObservation)
	passes     []Pass
	optLevel   int
	optNames   []string
	fuse2q     bool
}

// Option configures a Pipeline at construction.
type Option func(*Pipeline)

// WithRequest sets the base synthesis request (trasyn knobs, seed,
// timeout, and — in per-rotation mode — the per-rotation epsilon).
func WithRequest(req Request) Option { return func(p *Pipeline) { p.req = req } }

// WithEpsilon sets the per-rotation error threshold (Request.Epsilon),
// keeping the other request knobs. Mutually exclusive in spirit with
// WithCircuitEpsilon, which takes precedence when both are set.
func WithEpsilon(eps float64) Option { return func(p *Pipeline) { p.req.Epsilon = eps } }

// WithCircuitEpsilon sets a circuit-level error budget ε: the Lower pass
// splits ε across the N nontrivial rotations of the IR (uniform ε/N by
// default; see WithBudgetStrategy) so the lowered circuit's total unitary
// distance to the IR is bounded by ε — the knob the paper's circuit
// results are stated in, which a uniform per-rotation epsilon cannot
// express.
func WithCircuitEpsilon(eps float64) Option { return func(p *Pipeline) { p.circuitEps = eps } }

// WithBudgetStrategy selects how a circuit-level ε is split (uniform
// per-rotation shares vs equal shares per distinct angle class).
func WithBudgetStrategy(s BudgetStrategy) Option { return func(p *Pipeline) { p.budget = s } }

// WithWorkers bounds the Lower pass's worker pool (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(p *Pipeline) { p.workers = n } }

// WithCache shares a synthesis cache across pipelines and batch jobs.
func WithCache(c *Cache) Option { return func(p *Pipeline) { p.cache = c } }

// WithIR forces the lowering workflow (IRAuto resolves per backend).
func WithIR(ir IR) Option { return func(p *Pipeline) { p.ir = ir } }

// WithProgress installs a progress hook: one event per pass start and one
// per completed synthesis inside the Lower pass. Delivery is serialized —
// worker goroutines report through a lock — so the hook does not need to
// be goroutine-safe.
func WithProgress(fn func(ProgressEvent)) Option { return func(p *Pipeline) { p.progress = fn } }

// WithSynthObserver installs a per-synthesis metrics hook: fn fires after
// every successful synthesis the Lower pass performs, with the producing
// backend, epsilon, and wall time. Unlike tracing (which samples), the
// hook sees every synthesis; it is called from worker goroutines and must
// be safe for concurrent use.
func WithSynthObserver(fn func(SynthObservation)) Option {
	return func(p *Pipeline) { p.observe = fn }
}

// WithPasses replaces the default pass sequence. Compose built-ins
// (Transpile, OptimizeRotations, FuseRotations, SnapTrivial, Lower,
// OptimizeCliffordT, EstimateResources) with custom NewPass stages in
// any order; an empty call leaves the defaults. An explicit pass list
// wins over WithOptimize/WithOptimizers — compose the optimizer passes
// yourself when hand-building.
func WithPasses(passes ...Pass) Option {
	return func(p *Pipeline) {
		if len(passes) > 0 {
			p.passes = passes
		}
	}
}

// WithOptimize sets the T-count optimizer level for the canned pass
// sequence:
//
//	0  off (the default sequence, unchanged)
//	1  pre-lowering only: OptimizeRotations folds RZ parities in the IR
//	   so fewer rotations reach the synthesizer
//	2  level 1 plus post-lowering OptimizeCliffordT: a fixed-point
//	   foldphases+peephole run reclaims T gates from the lowered circuit
//
// Levels above 2 behave like 2. Ignored when WithPasses overrides the
// sequence.
func WithOptimize(level int) Option { return func(p *Pipeline) { p.optLevel = level } }

// WithOptimizers selects the post-lowering rule chain by optimize
// registry name (in application order) and implies WithOptimize(2).
// Unknown names surface when the optct pass first runs.
func WithOptimizers(names ...string) Option {
	return func(p *Pipeline) {
		if len(names) > 0 {
			p.optNames = names
			if p.optLevel < 2 {
				p.optLevel = 2
			}
		}
	}
}

// WithFuseBlocks prepends the two-qubit block-fusion pass (FuseBlocks)
// to the canned pass sequence: runs of gates confined to a qubit pair
// are multiplied together and re-synthesized via the KAK decomposition
// into ≤3 CX plus U3 rotations before the transpiler ever sees them.
// Ignored when WithPasses overrides the sequence — compose FuseBlocks()
// yourself when hand-building.
func WithFuseBlocks() Option { return func(p *Pipeline) { p.fuse2q = true } }

// OptimizedPasses is the canned pass sequence at the given optimizer
// level (the list WithOptimize installs): level <= 0 is DefaultPasses;
// level 1 inserts OptimizeRotations after Transpile; level >= 2 also
// inserts OptimizeCliffordT(names...) after Lower.
func OptimizedPasses(level int, names ...string) []Pass {
	if level <= 0 {
		return DefaultPasses()
	}
	passes := []Pass{Transpile(), OptimizeRotations(), FuseRotations(), SnapTrivial(), Lower()}
	if level >= 2 {
		passes = append(passes, OptimizeCliffordT(names...))
	}
	return append(passes, EstimateResources())
}

// NewPipeline builds a pipeline over backend b with the default pass
// sequence, then applies opts. Without WithCache it installs one fresh
// bounded cache owned by the pipeline — shared across its Run calls, like
// NewCompiler's — so repeated angles across circuits stay hits.
func NewPipeline(b Backend, opts ...Option) *Pipeline {
	p := &Pipeline{backend: b}
	for _, opt := range opts {
		opt(p)
	}
	if p.passes == nil {
		p.passes = OptimizedPasses(p.optLevel, p.optNames...)
		if p.fuse2q {
			p.passes = append([]Pass{FuseBlocks()}, p.passes...)
		}
	}
	if p.cache == nil {
		p.cache = NewCache(0)
	}
	return p
}

// NewPipelineFor resolves name through the backend registry.
func NewPipelineFor(name string, opts ...Option) (*Pipeline, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("synth: unknown backend %q (have %v)", name, List())
	}
	return NewPipeline(b, opts...), nil
}

// Passes returns the configured pass names in execution order.
func (p *Pipeline) Passes() []string {
	names := make([]string, len(p.passes))
	for i, pass := range p.passes {
		names[i] = pass.Name()
	}
	return names
}

// PipelineResult is one pipeline run: the lowered circuit plus everything
// the passes recorded.
type PipelineResult struct {
	// Circuit is the final circuit (Clifford+T after a Lower pass).
	Circuit *circuit.Circuit
	// Stats aggregates across passes (setting, rotation counts, realized
	// error bound, cache accounting, resource estimate, pass timings).
	Stats PipelineStats
	// Backend names the pipeline's backend; Wall is the end-to-end time.
	Backend string
	Wall    time.Duration
}

// Run executes the pass sequence on c. The input circuit is never
// mutated. On error the failing pass's name wraps the cause.
//
// When ctx carries a trace span (trace.NewContext), every pass runs under
// a child span named "pass:<name>", and the Lower pass's synthesis work
// nests under its pass span — the pipeline segment of an end-to-end
// request trace. An untraced ctx costs one nil check per pass.
func (p *Pipeline) Run(ctx context.Context, c *circuit.Circuit) (*PipelineResult, error) {
	if p.backend == nil {
		return nil, fmt.Errorf("synth: Pipeline has no Backend")
	}
	start := time.Now()
	cache := p.cache
	if cache == nil {
		// Only reachable for a hand-built zero-value Pipeline; constructor
		// pipelines own a persistent cache.
		cache = NewCache(0)
	}
	pc := &PassContext{
		Ctx:            ctx,
		Backend:        p.backend,
		Req:            p.req,
		Workers:        p.workers,
		Cache:          cache,
		IR:             p.ir,
		CircuitEpsilon: p.circuitEps,
		Budget:         p.budget,
		Progress:       p.progress,
		Observe:        p.observe,
		Stats:          &PipelineStats{Epsilon: p.circuitEps, Strategy: p.budget},
	}
	runSpan := trace.FromContext(ctx)
	cur := c
	for _, pass := range p.passes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		pc.event(pass.Name(), 0, 0)
		pc.Span = runSpan.Child("pass:" + pass.Name())
		next, err := pass.Run(pc, cur)
		pc.Span.End()
		if err != nil {
			return nil, fmt.Errorf("synth: pass %s: %w", pass.Name(), err)
		}
		if next == nil {
			return nil, fmt.Errorf("synth: pass %s returned a nil circuit", pass.Name())
		}
		cur = next
		pc.Stats.Passes = append(pc.Stats.Passes, PassTiming{Name: pass.Name(), Wall: time.Since(t0)})
	}
	return &PipelineResult{
		Circuit: cur,
		Stats:   *pc.Stats,
		Backend: p.backend.Name(),
		Wall:    time.Since(start),
	}, nil
}
