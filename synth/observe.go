package synth

import "context"

// raceObserverKey carries the per-op observation hook from synthOne down
// into a racing backend, so the race can report its losers and failed
// racers without the Backend interface growing an observer parameter.
type raceObserverKey struct{}

// withRaceObserver installs fn as the context's race observer. synthOne
// installs a hook that stamps the op's angle class and forwards to
// Compiler.Observe; backends that race (auto) read it back and call it
// once per non-winning racer.
func withRaceObserver(ctx context.Context, fn func(SynthObservation)) context.Context {
	return context.WithValue(ctx, raceObserverKey{}, fn)
}

// raceObserver returns the context's race observer, or nil.
func raceObserver(ctx context.Context) func(SynthObservation) {
	fn, _ := ctx.Value(raceObserverKey{}).(func(SynthObservation))
	return fn
}
