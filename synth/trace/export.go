package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one Chrome trace_event record. Only the "X" (complete)
// and "M" (metadata) phases are emitted; timestamps and durations are in
// microseconds, as the format requires.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the JSON object form chrome://tracing and Perfetto load.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the given trace roots (typically one local root
// plus the remote fragments Collect returned on peer nodes) as Chrome
// trace_event JSON. Each root becomes its own process row, named by the
// span's "node" attribute when present (so a stitched cluster trace shows
// one row per node); overlapping sibling spans are spread across thread
// lanes so concurrent synthesis work renders side by side.
func WriteChrome(w io.Writer, roots ...*Span) error {
	var (
		events []chromeEvent
		base   time.Time
	)
	for _, r := range roots {
		if r == nil {
			continue
		}
		if base.IsZero() || r.start.Before(base) {
			base = r.start
		}
	}
	pid := 0
	for _, r := range roots {
		if r == nil {
			continue
		}
		pid++
		name := r.Attr("node")
		if name == "" {
			name = r.Name()
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": name},
		})
		nextLane := 2 // lane 1 is the root's; concurrent siblings overflow here
		emitChrome(&events, r, base, pid, 1, &nextLane)
	}
	return json.NewEncoder(w).Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

func emitChrome(events *[]chromeEvent, s *Span, base time.Time, pid, lane int, nextLane *int) {
	dur := s.Duration()
	args := map[string]string{
		"trace_id": FormatID(s.traceID),
		"span_id":  FormatID(s.id),
	}
	if s.parent != 0 {
		args["parent_id"] = FormatID(s.parent)
	}
	for _, a := range s.Attrs() {
		args[a.Key] = a.Value
	}
	*events = append(*events, chromeEvent{
		Name: s.Name(),
		Ph:   "X",
		Ts:   float64(s.start.Sub(base)) / float64(time.Microsecond),
		Dur:  float64(dur) / float64(time.Microsecond),
		Pid:  pid,
		Tid:  lane,
		Args: args,
	})
	children := s.Children()
	sort.Slice(children, func(i, j int) bool { return children[i].start.Before(children[j].start) })
	// A child nested in time renders inside the parent only on the same
	// thread lane, so the first concurrent chain of children inherits the
	// parent's lane; siblings that overlap an already-busy lane overflow to
	// fresh lanes (concurrent synthesis workers render side by side).
	type laneState struct {
		lane int
		busy time.Time
	}
	var lanes []laneState
	for _, c := range children {
		slot := -1
		for i := range lanes {
			if !c.start.Before(lanes[i].busy) {
				slot = i
				break
			}
		}
		if slot < 0 {
			l := lane
			if len(lanes) > 0 {
				l = *nextLane
				*nextLane++
			}
			lanes = append(lanes, laneState{lane: l})
			slot = len(lanes) - 1
		}
		lanes[slot].busy = c.start.Add(c.Duration())
		emitChrome(events, c, base, pid, lanes[slot].lane, nextLane)
	}
}

// WriteText renders the trace roots as a compact one-line-per-span log:
// indentation is tree depth, offsets are relative to the earliest root.
//
//	a1b2... +0.000ms 12.450ms /v1/compile request_id=...
//	  ·     +0.031ms  0.002ms queue.wait
//	  ·     +0.040ms 12.400ms serve
func WriteText(w io.Writer, roots ...*Span) {
	var base time.Time
	for _, r := range roots {
		if r != nil && (base.IsZero() || r.start.Before(base)) {
			base = r.start
		}
	}
	for _, r := range roots {
		if r != nil {
			writeTextSpan(w, r, base, 0, true)
		}
	}
}

func writeTextSpan(w io.Writer, s *Span, base time.Time, depth int, root bool) {
	id := "      ·         "
	if root {
		id = FormatID(s.traceID)
	}
	fmt.Fprintf(w, "%s %*s+%.3fms %.3fms %s", id, depth*2, "",
		float64(s.start.Sub(base))/float64(time.Millisecond),
		float64(s.Duration())/float64(time.Millisecond),
		s.Name())
	for _, a := range s.Attrs() {
		fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w)
	children := s.Children()
	sort.Slice(children, func(i, j int) bool { return children[i].start.Before(children[j].start) })
	for _, c := range children {
		writeTextSpan(w, c, base, depth+1, false)
	}
}
