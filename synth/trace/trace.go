// Package trace is the repository's zero-dependency request-tracing
// layer: a Span tree with wall-clock start/duration and string attributes,
// a sampling Tracer (always / ratio / slow-only-over-threshold) with a
// ring buffer of recent completed traces, and two exporters — Chrome
// trace_event JSON (load the file in chrome://tracing or Perfetto) and a
// compact one-line-per-span text log.
//
// The design discipline mirrors serve/metrics.go: hand-rolled, no
// third-party deps, and free when off. Every Span method is nil-safe —
// an unsampled request carries a nil *Span and every instrumentation
// point degrades to a pointer check — so the overhead of compiled-in
// tracing is unmeasurable when sampling is off.
//
// Propagation: spans travel in-process inside a context.Context
// (NewContext/FromContext) and across processes in a traceparent-style
// HTTP header (Header, (*Span).HeaderValue, ParseHeaderValue). A node
// that receives a header joins the originating trace via
// (*Tracer).StartRemote; the resulting fragment lands in that node's ring
// buffer under the propagated trace ID, so fragments from every node a
// request touched can be stitched into one trace (Collect on each node's
// tracer, then export together).
package trace

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are stored as
// strings: attributes exist to be read by humans and exporters, not to be
// computed on.
type Attr struct {
	Key, Value string
}

// Span is one timed operation in a trace tree. Create roots with
// (*Tracer).Start, children with (*Span).Child, and close every span with
// End. All methods are safe for concurrent use and safe on a nil
// receiver — a nil span is "tracing off" and every operation no-ops.
type Span struct {
	tracer  *Tracer
	traceID uint64
	id      uint64
	parent  uint64
	name    string
	start   time.Time
	remote  bool // created by StartRemote (a fragment of a foreign trace)

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Child opens a sub-span. A nil receiver returns nil, so call sites never
// guard.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		traceID: s.traceID,
		id:      randID(),
		parent:  s.id,
		name:    name,
		start:   time.Now(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Ending a root span reports
// the finished trace to its Tracer, which decides (slow-only mode)
// whether to keep it in the ring buffer. End is idempotent; late child
// ends after the root was reported (async work) still update the tree the
// ring holds.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.tracer != nil {
		s.tracer.finish(s)
	}
}

// SetAttr annotates the span. Accepted value kinds: string, int, int64,
// uint64, float64, bool, time.Duration; anything else is ignored (this is
// a tracing annotation, not an error path).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case string:
		v = x
	case int:
		v = strconv.Itoa(x)
	case int64:
		v = strconv.FormatInt(x, 10)
	case uint64:
		v = strconv.FormatUint(x, 10)
	case float64:
		v = strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		v = strconv.FormatBool(x)
	case time.Duration:
		v = x.String()
	default:
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// TraceID returns the 64-bit trace ID (0 on a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// Name returns the span name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time (zero on a nil span).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's duration: final after End, the running
// elapsed time before it, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the value of the first attribute named key ("" when
// absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Walk visits the span and every descendant depth-first.
func (s *Span) Walk(f func(*Span)) {
	if s == nil {
		return
	}
	f(s)
	for _, c := range s.Children() {
		c.Walk(f)
	}
}

// Config shapes a Tracer.
type Config struct {
	// SampleRatio is the fraction of Start calls that produce a real
	// span: <= 0 never samples (Start always returns nil), >= 1 always
	// does, in between samples that fraction at random. Propagated
	// traces (StartRemote) bypass the ratio — the originating node
	// already made the decision.
	SampleRatio float64
	// SlowOnly, when positive, keeps only locally rooted traces whose
	// total duration is at least this threshold in the ring buffer;
	// faster traces are recorded (so children measure real time) but
	// dropped at the root's End. Remote fragments are always kept: they
	// exist only because some origin sampled the trace.
	SlowOnly time.Duration
	// RingSize bounds the ring of recent kept traces (0 = DefaultRingSize).
	RingSize int
}

// DefaultRingSize is the kept-trace ring capacity when Config.RingSize
// is zero.
const DefaultRingSize = 64

// Tracer makes sampling decisions and retains recent completed traces.
// Safe for concurrent use. A nil *Tracer is valid and never samples.
type Tracer struct {
	cfg Config

	mu   sync.Mutex
	ring []*Span // completed kept roots and fragments, oldest first
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	return &Tracer{cfg: cfg}
}

// Start opens a new locally rooted trace, applying the sample ratio:
// an unsampled call returns nil and the whole request traces for free.
func (t *Tracer) Start(name string) *Span {
	if t == nil || t.cfg.SampleRatio <= 0 {
		return nil
	}
	if t.cfg.SampleRatio < 1 && rand.Float64() >= t.cfg.SampleRatio {
		return nil
	}
	return &Span{
		tracer:  t,
		traceID: randID(),
		id:      randID(),
		name:    name,
		start:   time.Now(),
	}
}

// StartRemote opens a fragment of a trace that originated elsewhere
// (traceID/parentID from a propagated header). The origin's sampling
// decision is honored: fragments are always recorded and always kept.
func (t *Tracer) StartRemote(traceID, parentID uint64, name string) *Span {
	if t == nil || traceID == 0 {
		return nil
	}
	return &Span{
		tracer:  t,
		traceID: traceID,
		id:      randID(),
		parent:  parentID,
		name:    name,
		start:   time.Now(),
		remote:  true,
	}
}

// finish is the root-End hook: apply the slow-only keep filter and ring
// the survivors.
func (t *Tracer) finish(s *Span) {
	if !s.remote && t.cfg.SlowOnly > 0 && s.Duration() < t.cfg.SlowOnly {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = append(t.ring, s)
	if n := len(t.ring) - t.cfg.RingSize; n > 0 {
		t.ring = append(t.ring[:0], t.ring[n:]...)
	}
}

// Collect returns every kept trace (roots and remote fragments) with the
// given trace ID, oldest first.
func (t *Tracer) Collect(traceID uint64) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	for _, s := range t.ring {
		if s.traceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Recent returns up to n of the most recently kept traces, newest first
// (n <= 0 = all).
func (t *Tracer) Recent(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]*Span, 0, n)
	for i := len(t.ring) - 1; i >= len(t.ring)-n; i-- {
		out = append(out, t.ring[i])
	}
	return out
}

// --- context propagation ---

type ctxKey struct{}

// NewContext returns ctx carrying s (which may be nil: downstream
// FromContext then reports tracing off, shadowing any outer span).
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// --- header propagation ---

// Header is the HTTP header spans propagate in, using the W3C
// traceparent shape: version "00", a 128-bit trace-id field (the high 64
// bits are zero — IDs here are 64-bit), the 64-bit parent span ID, and
// the sampled flag.
const Header = "traceparent"

// HeaderValue renders the span's identity for the Header ("" on nil).
func (s *Span) HeaderValue() string {
	if s == nil {
		return ""
	}
	return "00-" + pad32(s.traceID) + "-" + pad16(s.id) + "-01"
}

// ParseHeaderValue decodes a HeaderValue (or any W3C traceparent whose
// trace-id fits 64 bits after dropping the high half).
func ParseHeaderValue(v string) (traceID, spanID uint64, ok bool) {
	if len(v) != 55 || v[:3] != "00-" || v[35] != '-' || v[52] != '-' {
		return 0, 0, false
	}
	tid, err := strconv.ParseUint(v[3+16:35], 16, 64) // low 64 bits of the 128-bit field
	if err != nil {
		return 0, 0, false
	}
	sid, err := strconv.ParseUint(v[36:52], 16, 64)
	if err != nil || tid == 0 {
		return 0, 0, false
	}
	return tid, sid, true
}

// FormatID renders a trace ID the way /debug/trace?id= accepts it.
func FormatID(id uint64) string { return pad16(id) }

// ParseID accepts a 16- or 32-hex-digit trace ID (the 32 form keeps only
// the low 64 bits, matching HeaderValue's padding).
func ParseID(s string) (uint64, bool) {
	if len(s) == 32 {
		s = s[16:]
	}
	if len(s) != 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	return id, err == nil && id != 0
}

func pad16(v uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func pad32(v uint64) string { return "0000000000000000" + pad16(v) }

// randID draws a nonzero 64-bit ID.
func randID() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}
