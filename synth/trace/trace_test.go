package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := New(Config{SampleRatio: 1})
	root := tr.Start("request")
	if root == nil {
		t.Fatal("SampleRatio=1 must always sample")
	}
	root.SetAttr("request_id", "abc")
	root.SetAttr("eps", 1e-3)
	root.SetAttr("ops", 7)
	root.SetAttr("hit", true)
	root.SetAttr("wait", 5*time.Millisecond)
	root.SetAttr("ignored", struct{}{})

	c1 := root.Child("pass:lower")
	c2 := c1.Child("synth")
	c2.End()
	c1.End()
	root.End()

	if got := root.Attr("request_id"); got != "abc" {
		t.Errorf("Attr(request_id) = %q", got)
	}
	if got := root.Attr("eps"); got != "0.001" {
		t.Errorf("Attr(eps) = %q", got)
	}
	if got := root.Attr("ignored"); got != "" {
		t.Errorf("unsupported attr type should be dropped, got %q", got)
	}
	if len(root.Attrs()) != 5 {
		t.Errorf("want 5 attrs, got %d", len(root.Attrs()))
	}

	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name()) })
	want := []string{"request", "pass:lower", "synth"}
	if len(names) != len(want) {
		t.Fatalf("walk visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk visited %v, want %v", names, want)
		}
	}
	for _, s := range []*Span{c1, c2} {
		if s.TraceID() != root.TraceID() {
			t.Errorf("child trace id %x != root %x", s.TraceID(), root.TraceID())
		}
	}
	if c2.parent != c1.id {
		t.Errorf("child parent id not linked")
	}
	if root.Duration() <= 0 {
		t.Errorf("ended root must have positive duration")
	}

	kept := tr.Collect(root.TraceID())
	if len(kept) != 1 || kept[0] != root {
		t.Fatalf("Collect returned %d spans", len(kept))
	}
	if rec := tr.Recent(0); len(rec) != 1 || rec[0] != root {
		t.Fatalf("Recent returned %d spans", len(rec))
	}
}

func TestNilSafety(t *testing.T) {
	var s *Span
	var tr *Tracer
	// None of these may panic, and all must degrade to "tracing off".
	if tr.Start("x") != nil {
		t.Error("nil tracer must not sample")
	}
	if tr.StartRemote(1, 2, "x") != nil {
		t.Error("nil tracer must not start remote fragments")
	}
	if tr.Collect(1) != nil || tr.Recent(5) != nil {
		t.Error("nil tracer must return no traces")
	}
	if c := s.Child("y"); c != nil {
		t.Error("nil span must produce nil children")
	}
	s.End()
	s.SetAttr("k", "v")
	s.Walk(func(*Span) { t.Error("walk on nil must not visit") })
	if s.TraceID() != 0 || s.Name() != "" || s.Duration() != 0 || s.HeaderValue() != "" {
		t.Error("nil span accessors must return zero values")
	}
	if s.Attrs() != nil || s.Children() != nil || s.Attr("k") != "" {
		t.Error("nil span collections must be empty")
	}
	if !s.Start().IsZero() {
		t.Error("nil span start must be zero")
	}
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != nil {
		t.Error("nil span must round-trip through context as nil")
	}
}

func TestSamplingRatio(t *testing.T) {
	never := New(Config{SampleRatio: 0})
	for i := 0; i < 100; i++ {
		if never.Start("x") != nil {
			t.Fatal("ratio 0 sampled")
		}
	}
	always := New(Config{SampleRatio: 1})
	for i := 0; i < 100; i++ {
		s := always.Start("x")
		if s == nil {
			t.Fatal("ratio 1 skipped")
		}
		s.End()
	}
	half := New(Config{SampleRatio: 0.5, RingSize: 4096})
	n := 0
	for i := 0; i < 2000; i++ {
		if s := half.Start("x"); s != nil {
			n++
			s.End()
		}
	}
	if n < 800 || n > 1200 {
		t.Errorf("ratio 0.5 sampled %d/2000", n)
	}
}

func TestSlowOnly(t *testing.T) {
	tr := New(Config{SampleRatio: 1, SlowOnly: 20 * time.Millisecond})
	fast := tr.Start("fast")
	fast.End()
	if got := tr.Collect(fast.TraceID()); len(got) != 0 {
		t.Errorf("fast trace kept despite SlowOnly")
	}
	slow := tr.Start("slow")
	slow.start = slow.start.Add(-time.Second) // synthesize a slow request
	slow.End()
	if got := tr.Collect(slow.TraceID()); len(got) != 1 {
		t.Errorf("slow trace dropped")
	}
	// Remote fragments bypass the slow-only filter: the origin sampled.
	frag := tr.StartRemote(slow.TraceID(), slow.id, "peer.serve")
	frag.End()
	if got := tr.Collect(slow.TraceID()); len(got) != 2 {
		t.Errorf("remote fragment dropped, got %d spans", len(got))
	}
}

func TestRingTrim(t *testing.T) {
	tr := New(Config{SampleRatio: 1, RingSize: 3})
	var last *Span
	for i := 0; i < 10; i++ {
		last = tr.Start("x")
		last.End()
	}
	rec := tr.Recent(0)
	if len(rec) != 3 {
		t.Fatalf("ring holds %d, want 3", len(rec))
	}
	if rec[0] != last {
		t.Errorf("Recent must be newest first")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := New(Config{SampleRatio: 1})
	s := tr.Start("req")
	defer s.End()
	h := s.HeaderValue()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("bad header %q", h)
	}
	tid, sid, ok := ParseHeaderValue(h)
	if !ok || tid != s.TraceID() || sid != s.id {
		t.Fatalf("round trip got (%x,%x,%v), want (%x,%x)", tid, sid, ok, s.TraceID(), s.id)
	}
	for _, bad := range []string{
		"", "garbage", h[:54], h + "0",
		"01-" + h[3:],
		strings.Replace(h, "-", "_", 1),
		"00-00000000000000000000000000000000-0000000000000000-01",
	} {
		if _, _, ok := ParseHeaderValue(bad); ok {
			t.Errorf("ParseHeaderValue accepted %q", bad)
		}
	}
}

func TestParseID(t *testing.T) {
	id := uint64(0xdeadbeef12345678)
	f := FormatID(id)
	if len(f) != 16 {
		t.Fatalf("FormatID length %d", len(f))
	}
	if got, ok := ParseID(f); !ok || got != id {
		t.Fatalf("ParseID(16) = %x,%v", got, ok)
	}
	if got, ok := ParseID("0000000000000000" + f); !ok || got != id {
		t.Fatalf("ParseID(32) = %x,%v", got, ok)
	}
	for _, bad := range []string{"", "xyz", "0000000000000000", f[:15]} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID accepted %q", bad)
		}
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Config{SampleRatio: 1})
	s := tr.Start("req")
	defer s.End()
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("context did not carry span")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil span")
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New(Config{SampleRatio: 1})
	root := tr.Start("/v1/compile")
	root.SetAttr("node", "node-a")
	p := root.Child("pipeline")
	p.Child("pass:lower").End()
	p.End()
	root.End()
	frag := tr.StartRemote(root.TraceID(), root.id, "peer.serve")
	frag.SetAttr("node", "node-b")
	frag.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, root, frag); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	// 2 process_name metadata + 4 spans.
	var meta, spans int
	pids := map[int]bool{}
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
			pids[e.Pid] = true
			if e.Args["trace_id"] != FormatID(root.TraceID()) {
				t.Errorf("span %q trace_id = %q", e.Name, e.Args["trace_id"])
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 2 || spans != 4 {
		t.Errorf("got %d metadata + %d span events, want 2+4", meta, spans)
	}
	if len(pids) != 2 {
		t.Errorf("stitched roots must land on distinct pids, got %v", pids)
	}
}

func TestWriteChromeLanes(t *testing.T) {
	// Two children overlapping in time must land on different lanes;
	// a nested child must share its parent's lane so Chrome nests it.
	tr := New(Config{SampleRatio: 1})
	root := tr.Start("root")
	a := root.Child("a")
	b := root.Child("b") // starts before a ends -> overlap
	inner := a.Child("a.inner")
	inner.End()
	a.End()
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, root); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	lane := map[string]int{}
	for _, e := range f.TraceEvents {
		if e.Ph == "X" {
			lane[e.Name] = e.Tid
		}
	}
	if lane["a"] == lane["b"] {
		t.Errorf("overlapping siblings share lane %d", lane["a"])
	}
	if lane["a.inner"] != lane["a"] {
		t.Errorf("nested child on lane %d, parent on %d", lane["a.inner"], lane["a"])
	}
	if lane["root"] != lane["a"] {
		t.Errorf("first child chain must inherit root lane")
	}
}

func TestWriteText(t *testing.T) {
	tr := New(Config{SampleRatio: 1})
	root := tr.Start("/v1/compile")
	root.SetAttr("request_id", "r1")
	root.Child("queue.wait").End()
	root.End()

	var buf bytes.Buffer
	WriteText(&buf, root)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], FormatID(root.TraceID())) ||
		!strings.Contains(lines[0], "/v1/compile") ||
		!strings.Contains(lines[0], "request_id=r1") {
		t.Errorf("root line malformed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "queue.wait") || strings.Contains(lines[1], FormatID(root.TraceID())) {
		t.Errorf("child line malformed: %q", lines[1])
	}
}
