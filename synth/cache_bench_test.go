package synth

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gates"
)

// BenchmarkCacheParallel measures the mixed Get/Put throughput of the old
// single-lock layout (shards=1) against the sharded cache under growing
// goroutine counts — the contention profile of a synthd daemon serving
// concurrent compile requests. The workload is ~90% lookups over a
// working set that fits in the cache, the service steady state. Results
// are recorded in BENCH_cache.json.
func BenchmarkCacheParallel(b *testing.B) {
	const capacity = 4096
	const workingSet = 1024
	keys := make([]Key, workingSet)
	for i := range keys {
		keys[i] = KeyOf(rzOp(float64(i)*0.003+0.0005), "bench", 1e-3, 0)
	}
	entry := Entry{Seq: gates.Sequence{gates.H, gates.T, gates.S}, Err: 1e-4}

	for _, shards := range []int{1, 16} {
		for _, par := range []int{8, 64} {
			name := fmt.Sprintf("shards=%d/goroutines=%d", shards, par)
			b.Run(name, func(b *testing.B) {
				c := NewCacheSharded(capacity, shards)
				for _, k := range keys {
					c.Put(k, entry)
				}
				// SetParallelism multiplies GOMAXPROCS, so this yields at
				// least par goroutines — the 64-way point oversubscribes
				// the lock the way a request flood does.
				procs := runtime.GOMAXPROCS(0)
				b.SetParallelism((par + procs - 1) / procs)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						k := keys[i%workingSet]
						if i%10 == 9 {
							c.Put(k, entry)
						} else {
							c.Get(k)
						}
						i++
					}
				})
			})
		}
	}
}
