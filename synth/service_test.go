package synth

// Satellite coverage for the service layer's load-bearing seams: registry
// error paths surfaced through the constructors, the auto backend's
// degraded race, and context cancellation leaving the cache's accounting
// invariant (Hits+Misses == lookups performed) intact.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/qmat"
)

// TestConstructorUnknownBackend: NewCompilerFor and NewPipelineFor reject
// unknown names with an error that lists what is registered.
func TestConstructorUnknownBackend(t *testing.T) {
	if _, err := NewCompilerFor("no-such-backend", Request{}); err == nil {
		t.Fatal("NewCompilerFor with unknown backend succeeded")
	} else if !strings.Contains(err.Error(), "gridsynth") {
		t.Fatalf("error does not list registered backends: %v", err)
	}
	if _, err := NewPipelineFor("no-such-backend"); err == nil {
		t.Fatal("NewPipelineFor with unknown backend succeeded")
	} else if !strings.Contains(err.Error(), "no-such-backend") {
		t.Fatalf("error does not name the offender: %v", err)
	}
}

// TestRegisterDuplicateKeepsFirst: a duplicate Register fails AND leaves
// the original backend in place — a plugin cannot shadow a built-in.
func TestRegisterDuplicateKeepsFirst(t *testing.T) {
	name := "dup-test-backend"
	first := &errBackend{name: name}
	if err := Register(name, first); err != nil {
		t.Fatal(err)
	}
	if err := Register(name, &errBackend{name: name}); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	got, ok := Lookup(name)
	if !ok || got != Backend(first) {
		t.Fatal("duplicate Register displaced the original backend")
	}
}

// errBackend always fails (or, with seq set, always succeeds with it).
type errBackend struct {
	name string
	seq  gates.Sequence
	errd float64
}

func (b *errBackend) Name() string { return b.name }

func (b *errBackend) Synthesize(ctx context.Context, u qmat.M2, req Request) (Result, error) {
	if b.seq == nil {
		return Result{}, fmt.Errorf("%s: synthetic failure", b.name)
	}
	return finish(b.name, time.Now(), b.seq, b.errd, 0), nil
}

// TestAutoOneRacerFails: the race degrades gracefully — if one racer
// errors, the other's result wins with its attribution intact.
func TestAutoOneRacerFails(t *testing.T) {
	good := &errBackend{name: "good", seq: gates.Sequence{gates.T, gates.H}, errd: 1e-4}
	bad := &errBackend{name: "bad"}
	for _, racers := range [][]Backend{{bad, good}, {good, bad}} {
		a := autoBackend{racers: racers}
		res, err := a.Synthesize(context.Background(), qmat.Rz(0.3), Request{Epsilon: 1e-3})
		if err != nil {
			t.Fatalf("auto failed although one racer succeeded: %v", err)
		}
		if res.Backend != "good" || res.TCount != 1 {
			t.Fatalf("auto returned %+v, want the good racer's result", res)
		}
	}
}

// TestAutoAllRacersFail: when every racer errors, the combined error names
// each racer and its failure.
func TestAutoAllRacersFail(t *testing.T) {
	a := autoBackend{racers: []Backend{
		&errBackend{name: "badA"},
		&errBackend{name: "badB"},
	}}
	_, err := a.Synthesize(context.Background(), qmat.Rz(0.3), Request{Epsilon: 1e-3})
	if err == nil {
		t.Fatal("auto with all racers failing succeeded")
	}
	for _, want := range []string{"badA", "badB", "synthetic failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("combined error missing %q: %v", want, err)
		}
	}
}

// blockingBackend parks until its context is cancelled.
type blockingBackend struct{}

func (blockingBackend) Name() string { return "blocking" }

func (blockingBackend) Synthesize(ctx context.Context, u qmat.M2, req Request) (Result, error) {
	<-ctx.Done()
	return Result{}, ctx.Err()
}

// TestCompileBatchCancelInvariant: a batch cancelled mid-flight surfaces
// ctx.Err() promptly, and the cache accounting still balances — the scan
// charged one lookup per target before the pool started, and cancellation
// must not add or lose any.
func TestCompileBatchCancelInvariant(t *testing.T) {
	comp := NewCompiler(blockingBackend{}, Request{})
	comp.Workers = 4
	targets := make([]qmat.M2, 32)
	for i := range targets {
		targets[i] = qmat.Rz(float64(i)*0.03 + 0.011)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, stats, err := comp.CompileBatchStats(ctx, targets)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation surfaced after %s, want prompt", elapsed)
	}
	st := comp.Cache.Stats()
	if st.Hits+st.Misses != int64(len(targets)) {
		t.Fatalf("invariant broken: %d hits + %d misses != %d lookups",
			st.Hits, st.Misses, len(targets))
	}
	if stats.Hits+stats.Misses != len(targets) {
		t.Fatalf("batch stats broken: %d hits + %d misses != %d lookups",
			stats.Hits, stats.Misses, len(targets))
	}
}

// TestPipelineCancelInvariant: a pipeline run cancelled inside Lower
// returns ctx.Err() wrapped with the failing pass, and the shared cache's
// invariant holds: every scanned rotation was charged exactly once.
func TestPipelineCancelInvariant(t *testing.T) {
	cache := NewCache(0)
	pl := NewPipeline(blockingBackend{},
		WithCache(cache),
		WithWorkers(2),
		WithPasses(Transpile(), Lower()),
	)
	c := randomRotationCircuit(2, 12)
	rotations := int64(0) // lookups the Lower scan will perform
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := pl.Run(ctx, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "pass lower") {
		t.Fatalf("error does not attribute the failing pass: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation surfaced after %s, want prompt", elapsed)
	}
	st := cache.Stats()
	rotations = st.Hits + st.Misses
	if rotations == 0 {
		t.Fatal("scan never charged a lookup — test circuit has no rotations?")
	}
	// Re-running with a fresh context and an instant backend must keep the
	// books balanced: the aborted run's charges stay, the new run adds
	// exactly one lookup per scanned rotation.
	pl2 := NewPipeline(&errBackend{name: "instant", seq: gates.Sequence{gates.T}},
		WithCache(cache),
		WithPasses(Transpile(), Lower()),
	)
	if _, err := pl2.Run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	st2 := cache.Stats()
	if st2.Hits+st2.Misses <= rotations {
		t.Fatalf("second run charged no lookups: %+v then %+v", st, st2)
	}
}

// randomRotationCircuit builds an n-qubit circuit with count distinct
// nontrivial rotations.
func randomRotationCircuit(n, count int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < count; i++ {
		c.RZ(i%n, float64(i)*0.057+0.013)
	}
	return c
}
