package synth

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/qmat"
	"repro/internal/sim"
)

// TestAllocateBudget: allocations must sum to ε for every strategy, and
// the weighted strategy must hand every distinct angle class an equal
// share.
func TestAllocateBudget(t *testing.T) {
	c := circuit.New(2)
	c.RZ(0, 0.3).RZ(1, 0.3).RZ(0, 0.9).RX(1, 0.3) // classes: rz(0.3)x2, rz(0.9), rx(0.3)
	c.RZ(0, math.Pi)                              // trivial: no budget
	c.H(1)
	const eps = 0.12
	for _, s := range []BudgetStrategy{BudgetUniform, BudgetWeighted} {
		got := AllocateBudget(c, eps, s)
		if len(got) != len(c.Ops) {
			t.Fatalf("%v: allocation length %d != ops %d", s, len(got), len(c.Ops))
		}
		sum := 0.0
		for i, e := range got {
			if e < 0 {
				t.Fatalf("%v: negative allocation at op %d", s, i)
			}
			if e > 0 && !synthesizable(c.Ops[i]) {
				t.Fatalf("%v: op %d (%v) got budget but needs no synthesis", s, i, c.Ops[i].G)
			}
			sum += e
		}
		if math.Abs(sum-eps) > 1e-12 {
			t.Fatalf("%v: allocations sum to %v, want %v", s, sum, eps)
		}
	}
	uni := AllocateBudget(c, eps, BudgetUniform)
	if math.Abs(uni[0]-eps/4) > 1e-12 {
		t.Fatalf("uniform: op 0 got %v, want ε/4 = %v", uni[0], eps/4)
	}
	// Weighted: 3 classes, rz(0.3) has multiplicity 2 → each occurrence
	// gets ε/(3·2); the singleton classes get ε/3.
	w := AllocateBudget(c, eps, BudgetWeighted)
	if math.Abs(w[0]-eps/6) > 1e-12 || math.Abs(w[1]-eps/6) > 1e-12 {
		t.Fatalf("weighted: repeated class got %v/%v, want ε/6 = %v", w[0], w[1], eps/6)
	}
	if math.Abs(w[2]-eps/3) > 1e-12 || math.Abs(w[3]-eps/3) > 1e-12 {
		t.Fatalf("weighted: singleton classes got %v/%v, want ε/3 = %v", w[2], w[3], eps/3)
	}
	if got := AllocateBudget(circuit.New(1).H(0), eps, BudgetUniform); got[0] != 0 {
		t.Fatalf("rotation-free circuit got allocation %v", got)
	}
}

// randomCircuit builds a random 2–3 qubit circuit mixing discrete gates,
// two-qubit gates and continuous rotations (with one deliberate repeat
// class and one trivial angle).
func randomCircuit(rng *rand.Rand) *circuit.Circuit {
	n := 2 + rng.Intn(2)
	c := circuit.New(n)
	repeat := rng.Float64()*2 - 1
	for i := 0; i < 10; i++ {
		q := rng.Intn(n)
		switch rng.Intn(7) {
		case 0:
			c.H(q)
		case 1:
			c.S(q)
		case 2:
			c.CX(q, (q+1)%n)
		case 3:
			c.RZ(q, repeat)
		case 4:
			c.RZ(q, rng.Float64()*2-1)
		case 5:
			c.RX(q, rng.Float64()*2-1)
		case 6:
			c.RZ(q, math.Pi/2) // trivial: snaps exactly
		}
	}
	return c
}

// TestPipelinePreservesUnitary is the property test: a pipeline of all
// built-in passes preserves the circuit unitary on random 2–3 qubit
// circuits, and the realized error respects the WithCircuitEpsilon budget
// under both splitting strategies (gridsynth guarantees its per-rotation
// thresholds, so the additive bound must hold end to end).
func TestPipelinePreservesUnitary(t *testing.T) {
	const eps = 0.05
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for trial := 0; trial < 3; trial++ {
		c := randomCircuit(rng)
		for _, strat := range []BudgetStrategy{BudgetUniform, BudgetWeighted} {
			pl, err := NewPipelineFor("gridsynth",
				WithCircuitEpsilon(eps),
				WithBudgetStrategy(strat),
				WithPasses(DefaultPasses()...),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pl.Run(ctx, c)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, strat, err)
			}
			if res.Circuit.CountRotations() != 0 {
				t.Fatalf("trial %d %v: rotations left after lowering", trial, strat)
			}
			if res.Stats.ErrorBound > eps+1e-12 {
				t.Fatalf("trial %d %v: realized bound %v exceeds circuit budget %v",
					trial, strat, res.Stats.ErrorBound, eps)
			}
			d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(res.Circuit))
			if d > eps+1e-6 {
				t.Fatalf("trial %d %v: unitary distance %v exceeds budget %v", trial, strat, d, eps)
			}
			if res.Stats.Resources == nil {
				t.Fatalf("trial %d %v: EstimateResources pass left Stats.Resources nil", trial, strat)
			}
		}
	}
}

// TestPipelineShimEquivalence: the deprecated CompileCircuit shim and an
// explicitly composed transpile→lower pipeline must produce identical
// circuits and accounting (deterministic per-op seeding makes the outputs
// bit-identical).
func TestPipelineShimEquivalence(t *testing.T) {
	c := circuit.New(2)
	c.H(0).RZ(0, 0.8).CX(0, 1).RX(1, 1.1).RZ(0, 0.8)
	req := Request{Epsilon: 1e-2}
	be, _ := Lookup("gridsynth")

	comp := NewCompiler(be, req)
	old, err := comp.CompileCircuit(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(be, WithRequest(req), WithPasses(Transpile(), Lower()))
	res, err := pl.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if old.Circuit.QASM() != res.Circuit.QASM() {
		t.Fatal("shim and explicit pipeline produced different circuits")
	}
	if old.Hits != res.Stats.Hits || old.Misses != res.Stats.Misses || old.Unique != res.Stats.Unique {
		t.Fatalf("accounting mismatch: shim %d/%d/%d vs pipeline %d/%d/%d",
			old.Hits, old.Misses, old.Unique, res.Stats.Hits, res.Stats.Misses, res.Stats.Unique)
	}
	if old.Setting != res.Stats.Setting || old.IRRotations != res.Stats.IRRotations {
		t.Fatal("setting/IR metadata mismatch between shim and pipeline")
	}
}

// TestPipelinePassesAndProgress: custom pass sequences run in order, emit
// pass-start and synthesis progress events, and NewPass hooks user stages
// into the shared context.
func TestPipelinePassesAndProgress(t *testing.T) {
	stub := &stubBackend{}
	var events []ProgressEvent
	sawRotations := -1
	audit := NewPass("audit", func(pc *PassContext, c *circuit.Circuit) (*circuit.Circuit, error) {
		sawRotations = c.CountRotations()
		return c, nil
	})
	// Default worker count on purpose: delivery is serialized by the
	// pipeline, so this plain append must be race-free.
	pl := NewPipeline(stub,
		WithPasses(SnapTrivial(), audit, Lower()),
		WithProgress(func(ev ProgressEvent) { events = append(events, ev) }),
	)
	if got := pl.Passes(); len(got) != 3 || got[0] != "snap" || got[1] != "audit" || got[2] != "lower" {
		t.Fatalf("Passes() = %v", got)
	}
	c := circuit.New(1)
	c.RZ(0, math.Pi/2).RZ(0, 0.7).RZ(0, 1.3)
	res, err := pl.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if sawRotations != 2 {
		t.Fatalf("audit pass saw %d rotations after snap, want 2", sawRotations)
	}
	if res.Stats.Unique != 2 || res.Stats.Rotations != 2 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if len(res.Stats.Passes) != 3 {
		t.Fatalf("want 3 pass timings, got %v", res.Stats.Passes)
	}
	var starts []string
	maxDone := 0
	for _, ev := range events {
		if ev.Total == 0 {
			starts = append(starts, ev.Pass)
		} else if ev.Pass == "lower" && ev.Done > maxDone {
			maxDone = ev.Done
		}
	}
	if len(starts) != 3 || starts[0] != "snap" || starts[1] != "audit" || starts[2] != "lower" {
		t.Fatalf("pass-start events: %v", starts)
	}
	if maxDone != 2 {
		t.Fatalf("lower progress reached %d, want 2", maxDone)
	}
}

// TestLookupPass: every published pass name resolves, and the canned
// sequences match PassNames (the full optimized list) and DefaultPasses
// (the no-optimizer subset).
func TestLookupPass(t *testing.T) {
	names := PassNames()
	full := append([]Pass{FuseBlocks()}, OptimizedPasses(2)...)
	if len(names) != len(full) {
		t.Fatalf("PassNames %d entries, fuse2q+OptimizedPasses(2) %d", len(names), len(full))
	}
	for i, n := range names {
		p, ok := LookupPass(n)
		if !ok {
			t.Fatalf("LookupPass(%q) failed", n)
		}
		if p.Name() != n || full[i].Name() != n {
			t.Fatalf("pass name mismatch at %d: %q / %q / %q", i, n, p.Name(), full[i].Name())
		}
	}
	defs := DefaultPasses()
	want := []string{"transpile", "fuse", "snap", "lower", "estimate"}
	if len(defs) != len(want) {
		t.Fatalf("DefaultPasses %d entries, want %d", len(defs), len(want))
	}
	for i, n := range want {
		if defs[i].Name() != n {
			t.Fatalf("DefaultPasses[%d] = %q, want %q", i, defs[i].Name(), n)
		}
	}
	if _, ok := LookupPass("nope"); ok {
		t.Fatal("LookupPass accepted an unknown name")
	}
}

// TestLowerEvictionAccounting: when the cache is smaller than the distinct
// rotation set, assembly recomputes evicted entries — and every one of
// those extra lookups must be counted as a miss, keeping Hits+Misses equal
// to the lookups actually performed (the invariant the old code broke).
func TestLowerEvictionAccounting(t *testing.T) {
	stub := &stubBackend{}
	cache := NewCache(1) // capacity 1 < 2 distinct rotations
	pl := NewPipeline(stub, WithCache(cache), WithWorkers(1), WithPasses(Lower()))
	c := circuit.New(1)
	c.RZ(0, 0.3).H(0).RZ(0, 0.9).H(0).RZ(0, 0.3)
	res, err := pl.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// Scan: miss(0.3), miss(0.9), pending-hit(0.3). The single-slot cache
	// then holds only rz(0.9) after the pool, so all three assembly peeks
	// miss and recompute: 3 more misses. 6 lookups total.
	if res.Stats.Hits != 1 || res.Stats.Misses != 5 {
		t.Fatalf("want 1 hit / 5 misses, got %d / %d", res.Stats.Hits, res.Stats.Misses)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 5 {
		t.Fatalf("cache counters want 1/5, got %+v", st)
	}
	if got, want := st.Hits+st.Misses, int64(6); got != want {
		t.Fatalf("Hits+Misses = %d, want %d lookups", got, want)
	}
	if got := stub.calls.Load(); got != 5 {
		t.Fatalf("backend calls = %d, want 2 pool + 3 recompute", got)
	}
}

// TestCompileBatchEvictionAccounting: the CompileBatch tail recompute path
// must likewise credit its lookup as a miss.
func TestCompileBatchEvictionAccounting(t *testing.T) {
	stub := &stubBackend{}
	comp := NewCompiler(stub, Request{})
	comp.Cache = NewCache(1)
	comp.Workers = 1
	targets := []qmat.M2{qmat.Rz(0.3), qmat.Rz(0.9), qmat.Rz(0.3)}
	if _, err := comp.CompileBatch(context.Background(), targets); err != nil {
		t.Fatal(err)
	}
	// Scan: miss, miss, pending-hit. Assembly serves the first two from
	// the in-flight results; the repeat of rz(0.3) finds its entry evicted
	// (the slot holds rz(0.9)) and recomputes: one extra counted miss.
	st := comp.Cache.Stats()
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("want 1 hit / 3 misses, got %+v", st)
	}
	if got, want := st.Hits+st.Misses, int64(4); got != want {
		t.Fatalf("Hits+Misses = %d, want %d lookups", got, want)
	}
	if got := stub.calls.Load(); got != 3 {
		t.Fatalf("backend calls = %d, want 2 pool + 1 recompute", got)
	}
}

// TestPipelineCachePersistsAcrossRuns: like NewCompiler, NewPipeline owns
// one cache across Run calls — a second compile of the same circuit must
// be all hits, zero new syntheses.
func TestPipelineCachePersistsAcrossRuns(t *testing.T) {
	stub := &stubBackend{}
	pl := NewPipeline(stub, WithPasses(Lower()))
	c := circuit.New(1)
	c.RZ(0, 0.7).H(0).RZ(0, 1.3)
	first, err := pl.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Misses != 2 || first.Stats.Hits != 0 {
		t.Fatalf("cold run: %d hits / %d misses", first.Stats.Hits, first.Stats.Misses)
	}
	second, err := pl.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Hits != 2 || second.Stats.Misses != 0 {
		t.Fatalf("warm run: %d hits / %d misses", second.Stats.Hits, second.Stats.Misses)
	}
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("warm run re-synthesized: %d backend calls", got)
	}
}

// TestPipelineCancellation: a canceled context aborts between passes.
func TestPipelineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl := NewPipeline(&stubBackend{})
	if _, err := pl.Run(ctx, circuit.New(1).RZ(0, 0.4)); err == nil {
		t.Fatal("pre-canceled pipeline ran")
	}
}
