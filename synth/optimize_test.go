package synth

import (
	"context"
	"strings"
	"testing"

	"repro/circuit"
	"repro/circuit/gen"
	"repro/internal/sim"
)

// optWorkloads are the gen-package circuits the optimized pipeline must
// never regress on (small enough for gridsynth at a loose budget).
func optWorkloads() map[string]*circuit.Circuit {
	return map[string]*circuit.Circuit{
		"qaoa":      gen.QAOAMaxCut(6, 1, 1),
		"chemistry": gen.Heisenberg(3, 1.0).EvolutionCircuit(0.4, 1),
		"ghz":       gen.GHZWithRotations(4, 7),
	}
}

// TestWithOptimizeNeverIncreasesTCount: for every gen workload, the
// fully optimized pipeline produces a final T count no worse than the
// unoptimized pipeline's, records the optimizer stats, and brackets the
// post-lowering pass coherently.
func TestWithOptimizeNeverIncreasesTCount(t *testing.T) {
	ctx := context.Background()
	for name, c := range optWorkloads() {
		base, err := NewPipelineFor("gridsynth", WithCircuitEpsilon(0.3))
		if err != nil {
			t.Fatal(err)
		}
		off, err := base.Run(ctx, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opt, err := NewPipelineFor("gridsynth", WithCircuitEpsilon(0.3), WithOptimize(2))
		if err != nil {
			t.Fatal(err)
		}
		on, err := opt.Run(ctx, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if on.Circuit.TCount() > off.Circuit.TCount() {
			t.Errorf("%s: optimized pipeline increased T %d → %d",
				name, off.Circuit.TCount(), on.Circuit.TCount())
		}
		o := on.Stats.Opt
		if o == nil {
			t.Fatalf("%s: optimizer passes recorded no stats", name)
		}
		if o.TCountAfter > o.TCountBefore {
			t.Errorf("%s: optct regressed %d → %d", name, o.TCountBefore, o.TCountAfter)
		}
		if o.TCountAfter != on.Circuit.TCount() {
			t.Errorf("%s: TCountAfter %d != final T %d (estimate must not change the circuit)",
				name, o.TCountAfter, on.Circuit.TCount())
		}
		if o.Iterations < 1 {
			t.Errorf("%s: no driver iterations recorded", name)
		}
		if got := strings.Join(opt.Passes(), ","); got != "transpile,optrot,fuse,snap,lower,optct,estimate" {
			t.Errorf("%s: pass sequence %q", name, got)
		}
	}
}

// TestWithOptimizePreservesUnitary: the optimizer passes must not eat
// into the error budget — the optimized lowered circuit stays within
// the circuit epsilon of the original.
func TestWithOptimizePreservesUnitary(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CX(0, 1).RZ(0, 0.73).RZ(1, 0.73).T(0).CX(0, 1).RZ(0, 0.41)
	const eps = 0.2
	pl, err := NewPipelineFor("gridsynth", WithCircuitEpsilon(eps), WithOptimize(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(res.Circuit)); d > eps {
		t.Fatalf("optimized pipeline output %v from the input unitary (budget %v)", d, eps)
	}
}

// TestWithOptimizeReclaimsFromSK: against the Solovay–Kitaev baseline —
// whose sequences are far from minimal — the post-lowering pass must
// strictly reclaim T gates (the acceptance workload of the opt flag).
func TestWithOptimizeReclaimsFromSK(t *testing.T) {
	pl, err := NewPipelineFor("sk", WithCircuitEpsilon(0.3), WithOptimize(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(context.Background(), gen.QAOAMaxCut(6, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Stats.Opt
	if o == nil || o.TCountBefore <= o.TCountAfter {
		t.Fatalf("expected strict T reclamation from sk output, got %+v", o)
	}
	if o.TSaved() != o.TCountBefore-o.TCountAfter {
		t.Fatalf("TSaved inconsistent: %+v", o)
	}
	if len(o.RuleHits) == 0 {
		t.Fatal("T gates saved with no rule hits recorded")
	}
}

// TestOptimizedPassesLevels: the canned sequences per level, and the
// option interactions (WithOptimizers implies level 2; WithPasses wins).
func TestOptimizedPassesLevels(t *testing.T) {
	names := func(ps []Pass) string {
		var out []string
		for _, p := range ps {
			out = append(out, p.Name())
		}
		return strings.Join(out, ",")
	}
	if got := names(OptimizedPasses(0)); got != "transpile,fuse,snap,lower,estimate" {
		t.Errorf("level 0: %s", got)
	}
	if got := names(OptimizedPasses(1)); got != "transpile,optrot,fuse,snap,lower,estimate" {
		t.Errorf("level 1: %s", got)
	}
	if got := names(OptimizedPasses(2)); got != "transpile,optrot,fuse,snap,lower,optct,estimate" {
		t.Errorf("level 2: %s", got)
	}
	be, _ := Lookup("gridsynth")
	p := NewPipeline(be, WithOptimizers("foldphases"))
	if got := strings.Join(p.Passes(), ","); !strings.Contains(got, "optct") {
		t.Errorf("WithOptimizers did not imply level 2: %s", got)
	}
	p = NewPipeline(be, WithOptimize(2), WithPasses(Lower()))
	if got := strings.Join(p.Passes(), ","); got != "lower" {
		t.Errorf("WithPasses should win over WithOptimize: %s", got)
	}
}

// TestWithOptimizersUnknownName: an unknown rule surfaces as an optct
// pass error at run time.
func TestWithOptimizersUnknownName(t *testing.T) {
	pl, err := NewPipelineFor("gridsynth", WithCircuitEpsilon(0.3), WithOptimizers("nope"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = pl.Run(context.Background(), gen.GHZWithRotations(2, 1))
	if err == nil || !strings.Contains(err.Error(), "optct") || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want optct pass error naming the unknown rule, got %v", err)
	}
}
