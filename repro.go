// Package repro is a from-scratch Go reproduction of "Reducing T Gates
// with Unitary Synthesis" (ASPLOS 2026): trasyn, a tensor-network-guided
// synthesizer that compiles arbitrary single-qubit unitaries directly into
// Clifford+T sequences, together with the full evaluation stack — a
// Ross–Selinger gridsynth baseline, a Solovay–Kitaev baseline, a
// Synthetiq-style annealer, a circuit IR and transpiler, simulators and a
// 187-circuit benchmark suite.
//
// This file is the public facade; the implementation lives in internal/
// packages (see DESIGN.md for the system inventory).
//
// Quick start:
//
//	u := repro.HaarRandom(rand.New(rand.NewSource(1)))
//	res := repro.Synthesize(u, repro.SynthOptions{TBudget: 8, Tensors: 2})
//	fmt.Println(res.Seq, res.TCount, res.Error)
package repro

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/gridsynth"
	"repro/internal/qmat"
	"repro/internal/sk"
	"repro/internal/suite"
	"repro/internal/transpile"
)

// M2 is a dense 2x2 complex matrix (row-major).
type M2 = qmat.M2

// Sequence is a discrete Clifford+T gate sequence in matrix-product order.
type Sequence = gates.Sequence

// Circuit is the multi-qubit circuit IR.
type Circuit = circuit.Circuit

// Gate constructors re-exported for target construction.
var (
	// HaarRandom draws a Haar-distributed SU(2) element.
	HaarRandom = qmat.HaarRandom
	// U3 builds the general single-qubit unitary U3(θ, φ, λ).
	U3 = qmat.U3
	// Rz, Rx, Ry build axis rotations.
	Rz = qmat.Rz
	Rx = qmat.Rx
	Ry = qmat.Ry
	// Distance is the unitary distance of Eq. (2).
	Distance = qmat.Distance
	// NewCircuit allocates an empty n-qubit circuit.
	NewCircuit = circuit.New
	// BenchmarkSuite generates the 187-circuit evaluation corpus.
	BenchmarkSuite = suite.Suite
)

// SynthOptions configures trasyn synthesis.
type SynthOptions struct {
	// TBudget is the per-tensor T budget m (≤ 12 practical; default 5 —
	// small budgets with longer chains sample better per FLOP).
	TBudget int
	// Tensors is the maximum MPS length l (default 4 → T ≤ 4·TBudget).
	Tensors int
	// Samples is the sample count k (default 2000).
	Samples int
	// Epsilon, if positive, stops at the first budget meeting it (Eq. 4).
	Epsilon float64
	// Beam switches to the deterministic beam-search sampler (extension).
	Beam bool
	// Seed fixes the sampling randomness (0 = fixed default seed).
	Seed int64
}

// SynthResult is a synthesized Clifford+T approximation.
type SynthResult struct {
	Seq      Sequence
	Error    float64
	TCount   int
	Clifford int
}

// Synthesize approximates the unitary u with trasyn (Algorithm 1).
func Synthesize(u M2, opt SynthOptions) SynthResult {
	if opt.TBudget <= 0 {
		opt.TBudget = 5
	}
	if opt.Tensors <= 0 {
		opt.Tensors = 4
	}
	if opt.Samples <= 0 {
		opt.Samples = 2000
	}
	cfg := core.DefaultConfig(gates.Shared(opt.TBudget), opt.TBudget, opt.Tensors, opt.Samples)
	cfg.Epsilon = opt.Epsilon
	cfg.UseBeam = opt.Beam
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	cfg.Rng = rand.New(rand.NewSource(seed))
	res := core.TRASYN(u, cfg)
	return SynthResult{Seq: res.Seq, Error: res.Error, TCount: res.TCount, Clifford: res.Clifford}
}

// GridsynthRz approximates Rz(theta) with the Ross–Selinger baseline.
func GridsynthRz(theta, eps float64) (SynthResult, error) {
	r, err := gridsynth.Rz(theta, eps, gridsynth.Options{})
	if err != nil {
		return SynthResult{}, err
	}
	return SynthResult{Seq: r.Seq, Error: r.Error, TCount: r.TCount, Clifford: r.Clifford}, nil
}

// GridsynthU3 approximates an arbitrary unitary with the three-rotation
// Rz workflow (the paper's baseline for general unitaries).
func GridsynthU3(u M2, eps float64) (SynthResult, error) {
	r, err := gridsynth.U3(u, eps, gridsynth.Options{})
	if err != nil {
		return SynthResult{}, err
	}
	return SynthResult{Seq: r.Seq, Error: r.Error, TCount: r.TCount, Clifford: r.Clifford}, nil
}

// SolovayKitaev approximates u with the classic recursive algorithm at the
// given depth (baseline from §2.3; lengths blow up quickly).
func SolovayKitaev(u M2, depth int) (SynthResult, float64) {
	eng := sk.NewEngine(gates.Shared(4))
	seq, err := eng.Synthesize(u, depth)
	return SynthResult{Seq: seq, Error: err, TCount: seq.TCount(), Clifford: seq.CliffordCount()}, err
}

// TranspileU3 converts a circuit to the CX+U3 IR with the best of the 16
// transpiler settings (fewest nontrivial rotations).
func TranspileU3(c *Circuit) *Circuit {
	out, _ := transpile.BestSetting(c, transpile.BasisU3)
	return out
}

// TranspileRz converts a circuit to the CX+H+RZ IR likewise.
func TranspileRz(c *Circuit) *Circuit {
	out, _ := transpile.BestSetting(c, transpile.BasisRz)
	return out
}
