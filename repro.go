// Package repro is a from-scratch Go reproduction of "Reducing T Gates
// with Unitary Synthesis" (ASPLOS 2026): trasyn, a tensor-network-guided
// synthesizer that compiles arbitrary single-qubit unitaries directly into
// Clifford+T sequences, together with the full evaluation stack — a
// Ross–Selinger gridsynth baseline, a Solovay–Kitaev baseline, a
// Synthetiq-style annealer, a circuit IR and transpiler, simulators and a
// 192-circuit benchmark suite.
//
// This file is the legacy public facade; new code should use the synth
// package — a unified Backend interface, named registry, batch Compiler
// and shared synthesis cache — and the implementation lives in internal/
// packages (see DESIGN.md for the system inventory and the migration
// table from these facade functions to synth calls).
//
// Quick start (new API):
//
//	be, _ := synth.Lookup("trasyn")
//	res, _ := be.Synthesize(ctx, target, synth.Request{Epsilon: 1e-3})
//	fmt.Println(res.Seq, res.TCount, res.Error)
package repro

import (
	"context"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/qmat"
	"repro/internal/sk"
	"repro/internal/suite"
	"repro/internal/transpile"
	"repro/synth"
)

// M2 is a dense 2x2 complex matrix (row-major).
type M2 = qmat.M2

// Sequence is a discrete Clifford+T gate sequence in matrix-product order.
type Sequence = gates.Sequence

// Circuit is the multi-qubit circuit IR.
type Circuit = circuit.Circuit

// Gate constructors re-exported for target construction.
var (
	// HaarRandom draws a Haar-distributed SU(2) element.
	HaarRandom = qmat.HaarRandom
	// U3 builds the general single-qubit unitary U3(θ, φ, λ).
	U3 = qmat.U3
	// Rz, Rx, Ry build axis rotations.
	Rz = qmat.Rz
	Rx = qmat.Rx
	Ry = qmat.Ry
	// Distance is the unitary distance of Eq. (2).
	Distance = qmat.Distance
	// NewCircuit allocates an empty n-qubit circuit.
	NewCircuit = circuit.New
	// BenchmarkSuite generates the 192-circuit evaluation corpus.
	BenchmarkSuite = suite.Suite
)

// SynthOptions configures trasyn synthesis.
//
// Deprecated: use synth.Request, which additionally distinguishes an unset
// seed from an explicit zero seed (here Seed 0 has always meant "default",
// so seed 0 itself is unreachable — synth.Seed(0) reaches it).
type SynthOptions struct {
	// TBudget is the per-tensor T budget m (≤ 12 practical; default 5 —
	// small budgets with longer chains sample better per FLOP).
	TBudget int
	// Tensors is the maximum MPS length l (default 4 → T ≤ 4·TBudget).
	Tensors int
	// Samples is the sample count k (default 2000).
	Samples int
	// Epsilon, if positive, stops at the first budget meeting it (Eq. 4).
	Epsilon float64
	// Beam switches to the deterministic beam-search sampler (extension).
	Beam bool
	// Seed fixes the sampling randomness (0 = fixed default seed).
	Seed int64
}

// SynthResult is a synthesized Clifford+T approximation.
//
// Deprecated: use synth.Result, which adds evals, wall time and the
// backend name.
type SynthResult struct {
	Seq      Sequence
	Error    float64
	TCount   int
	Clifford int
}

// request converts the legacy options to a synth.Request.
func (o SynthOptions) request() synth.Request {
	req := synth.Request{
		Epsilon: o.Epsilon,
		TBudget: o.TBudget,
		Tensors: o.Tensors,
		Samples: o.Samples,
		Beam:    o.Beam,
	}
	if o.Seed != 0 {
		req.Seed = synth.Seed(o.Seed)
	}
	return req
}

func fromSynth(r synth.Result) SynthResult {
	return SynthResult{Seq: r.Seq, Error: r.Error, TCount: r.TCount, Clifford: r.Clifford}
}

// mustBackend resolves a built-in backend; the registry pre-populates all
// of them in synth's init, so a miss is a programming error.
func mustBackend(name string) synth.Backend {
	b, ok := synth.Lookup(name)
	if !ok {
		panic("repro: backend " + name + " not registered")
	}
	return b
}

// Synthesize approximates the unitary u with trasyn (Algorithm 1).
//
// Deprecated: use synth.Lookup("trasyn") and Backend.Synthesize.
func Synthesize(u M2, opt SynthOptions) SynthResult {
	res, err := mustBackend("trasyn").Synthesize(context.Background(), u, opt.request())
	if err != nil {
		return SynthResult{}
	}
	return fromSynth(res)
}

// GridsynthRz approximates Rz(theta) with the Ross–Selinger baseline.
//
// Deprecated: use synth.Lookup("gridsynth") with a qmat.Rz target.
func GridsynthRz(theta, eps float64) (SynthResult, error) {
	res, err := mustBackend("gridsynth").Synthesize(context.Background(),
		qmat.Rz(theta), synth.Request{Epsilon: eps})
	if err != nil {
		return SynthResult{}, err
	}
	return fromSynth(res), nil
}

// GridsynthU3 approximates an arbitrary unitary with the three-rotation
// Rz workflow (the paper's baseline for general unitaries).
//
// Deprecated: use synth.Lookup("gridsynth") and Backend.Synthesize.
func GridsynthU3(u M2, eps float64) (SynthResult, error) {
	res, err := mustBackend("gridsynth").Synthesize(context.Background(), u, synth.Request{Epsilon: eps})
	if err != nil {
		return SynthResult{}, err
	}
	return fromSynth(res), nil
}

// SolovayKitaev approximates u with the classic recursive algorithm at the
// given depth (baseline from §2.3; lengths blow up quickly).
func SolovayKitaev(u M2, depth int) (SynthResult, float64) {
	eng := sk.NewEngine(gates.Shared(4))
	seq, err := eng.Synthesize(u, depth)
	return SynthResult{Seq: seq, Error: err, TCount: seq.TCount(), Clifford: seq.CliffordCount()}, err
}

// TranspileU3 converts a circuit to the CX+U3 IR with the best of the 16
// transpiler settings (fewest nontrivial rotations).
func TranspileU3(c *Circuit) *Circuit {
	out, _ := transpile.BestSetting(c, transpile.BasisU3)
	return out
}

// TranspileRz converts a circuit to the CX+H+RZ IR likewise.
func TranspileRz(c *Circuit) *Circuit {
	out, _ := transpile.BestSetting(c, transpile.BasisRz)
	return out
}
