package optimize

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Optimizer{}
)

// Register adds an optimizer under its Name(). It fails on a nil
// optimizer, an empty name, or a name already taken — names are
// first-come, first-served so a plugin cannot silently shadow a
// built-in (mirroring synth.Register).
func Register(o Optimizer) error {
	if o == nil {
		return fmt.Errorf("optimize: Register with nil optimizer")
	}
	name := o.Name()
	if name == "" {
		return fmt.Errorf("optimize: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("optimize: optimizer %q already registered", name)
	}
	registry[name] = o
	return nil
}

// MustRegister is Register that panics on error; for init-time wiring.
func MustRegister(o Optimizer) {
	if err := Register(o); err != nil {
		panic(err)
	}
}

// Lookup returns the optimizer registered under name.
func Lookup(name string) (Optimizer, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	o, ok := registry[name]
	return o, ok
}

// List returns the registered optimizer names, sorted.
func List() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Defaults returns the default T-count-reducing rule chain: phase
// folding then table peephole — the pair the Driver iterates to a fixed
// point and the synth OptimizeCliffordT pass applies post-lowering.
// (zxzxz is registered but excluded: it inflates rotation count by
// design.)
func Defaults() []Optimizer {
	return []Optimizer{FoldPhases(), NewPeephole(0)}
}

func init() {
	MustRegister(FoldPhases())
	MustRegister(NewPeephole(0))
	MustRegister(ZXZXZ())
}
