package optimize

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/circuit"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/transpile"
)

// --- phase folding ---

// foldPhases is the "foldphases" rule: CNOT-parity tracking merges
// diagonal phase gates applied to the same parity term (promoted from
// internal/zxopt).
type foldPhases struct{}

// FoldPhases returns the phase-folding rule: it merges diagonal phase
// gates (T, T†, S, S†, Z, RZ) that act on the same CNOT parity of the
// initial wire variables. CX updates parities by symmetric difference;
// any other non-diagonal gate allocates a fresh variable for its qubit
// (ending the foldable region). Parities are exact sorted variable sets,
// so distinct parities never merge.
func FoldPhases() Optimizer { return foldPhases{} }

func (foldPhases) Name() string { return "foldphases" }

type phaseSlot struct {
	angle float64
	qubit int
}

func (foldPhases) Optimize(c *circuit.Circuit) (*circuit.Circuit, error) {
	nextVar := 0
	fresh := func() int { v := nextVar; nextVar++; return v }
	parity := make([][]int, c.N)
	for q := range parity {
		parity[q] = []int{fresh()}
	}
	keyOf := func(vars []int) string { return fmt.Sprint(vars) }

	slots := map[string]*phaseSlot{} // parity key → accumulated phase
	slotAt := map[int]*phaseSlot{}   // output position → slot
	var outOps []circuit.Op

	angleOf := func(op circuit.Op) (float64, bool) {
		switch op.G {
		case circuit.Z:
			return math.Pi, true
		case circuit.S:
			return math.Pi / 2, true
		case circuit.Sdg:
			return -math.Pi / 2, true
		case circuit.T:
			return math.Pi / 4, true
		case circuit.Tdg:
			return -math.Pi / 4, true
		case circuit.RZ:
			return op.P[0], true
		}
		return 0, false
	}
	for _, op := range c.Ops {
		if a, ok := angleOf(op); ok {
			q := op.Q[0]
			k := keyOf(parity[q])
			if s, exists := slots[k]; exists {
				s.angle += a
				continue
			}
			s := &phaseSlot{angle: a, qubit: q}
			slots[k] = s
			slotAt[len(outOps)] = s
			outOps = append(outOps, circuit.Op{}) // placeholder
			continue
		}
		switch {
		case op.G == circuit.CX:
			parity[op.Q[1]] = symdiff(parity[op.Q[1]], parity[op.Q[0]])
			outOps = append(outOps, op)
		case op.G == circuit.CZ:
			// Diagonal: commutes with Z-phases, parities unchanged.
			outOps = append(outOps, op)
		case op.G == circuit.SWAP:
			// Relabeling: the parities travel with the qubits.
			parity[op.Q[0]], parity[op.Q[1]] = parity[op.Q[1]], parity[op.Q[0]]
			outOps = append(outOps, op)
		case op.G == circuit.I:
		default:
			parity[op.Q[0]] = []int{fresh()}
			if op.G.IsTwoQubit() {
				parity[op.Q[1]] = []int{fresh()}
			}
			outOps = append(outOps, op)
		}
	}
	out := circuit.New(c.N)
	for i, op := range outOps {
		if s, ok := slotAt[i]; ok {
			emitPhase(out, s.qubit, s.angle)
			continue
		}
		out.Add(op)
	}
	return out, nil
}

// symdiff returns the sorted symmetric difference of two sorted sets.
func symdiff(a, b []int) []int {
	m := map[int]bool{}
	for _, x := range a {
		m[x] = !m[x]
	}
	for _, x := range b {
		m[x] = !m[x]
	}
	var out []int
	for x, keep := range m {
		if keep {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// emitPhase appends the cheapest discrete gates for an RZ-type phase.
func emitPhase(c *circuit.Circuit, q int, angle float64) {
	angle = math.Mod(angle, 2*math.Pi)
	if angle < 0 {
		angle += 2 * math.Pi
	}
	if angle < 1e-12 || 2*math.Pi-angle < 1e-12 {
		return
	}
	if circuit.TrivialAngle(angle) {
		m := int(math.Round(angle/(math.Pi/4))) % 8
		switch m {
		case 1:
			c.T(q)
		case 2:
			c.S(q)
		case 3:
			c.S(q)
			c.T(q)
		case 4:
			c.Z(q)
		case 5:
			c.Z(q)
			c.T(q)
		case 6:
			c.Gate1(circuit.Sdg, q)
		case 7:
			c.Tdg(q)
		}
		return
	}
	c.RZ(q, angle)
}

// --- table peephole ---

// DefaultPeepholeBudget is the enumeration-table T budget of the
// registered "peephole" rule: windows of up to this many T gates rewrite
// to their canonical minimal form (the experiment configuration of RQ5).
const DefaultPeepholeBudget = 5

// peephole is the "peephole" rule: exact rewriting of maximal
// single-qubit discrete-gate runs against the step-0 enumeration table.
type peephole struct {
	maxT int
	once sync.Once
	tab  *gates.Table
}

// NewPeephole returns the table-peephole rule at the given enumeration
// T budget (0 selects DefaultPeepholeBudget). The table is the
// process-wide shared one, built lazily on first use.
func NewPeephole(maxT int) Optimizer {
	if maxT <= 0 {
		maxT = DefaultPeepholeBudget
	}
	return &peephole{maxT: maxT}
}

func (p *peephole) Name() string { return "peephole" }

// Optimize rewrites maximal runs of discrete 1q gates per qubit into
// their minimal table form (trasyn's step-3 rewriting applied
// circuit-wide).
func (p *peephole) Optimize(c *circuit.Circuit) (*circuit.Circuit, error) {
	p.once.Do(func() { p.tab = gates.Shared(p.maxT) })
	out := circuit.New(c.N)
	pending := make([]gates.Sequence, c.N) // time-ordered runs
	flush := func(q int) {
		run := pending[q]
		if len(run) == 0 {
			return
		}
		pending[q] = nil
		// Convert time order → matrix-product order, rewrite, convert back.
		rev := make(gates.Sequence, len(run))
		for i, g := range run {
			rev[len(run)-1-i] = g
		}
		rev = core.Rewrite(rev, p.tab)
		for _, op := range circuit.FromSequence(rev, q) {
			out.Add(op)
		}
	}
	toGate := func(g circuit.GateType) (gates.Gate, bool) {
		switch g {
		case circuit.X:
			return gates.X, true
		case circuit.Y:
			return gates.Y, true
		case circuit.Z:
			return gates.Z, true
		case circuit.H:
			return gates.H, true
		case circuit.S:
			return gates.S, true
		case circuit.Sdg:
			return gates.Sdg, true
		case circuit.T:
			return gates.T, true
		case circuit.Tdg:
			return gates.Tdg, true
		}
		return 0, false
	}
	for _, op := range c.Ops {
		if op.G.IsTwoQubit() {
			flush(op.Q[0])
			flush(op.Q[1])
			out.Add(op)
			continue
		}
		if g, ok := toGate(op.G); ok {
			pending[op.Q[0]] = append(pending[op.Q[0]], g)
			continue
		}
		if op.G == circuit.I {
			continue
		}
		flush(op.Q[0])
		out.Add(op)
	}
	for q := 0; q < c.N; q++ {
		flush(q)
	}
	return out, nil
}

// --- ZXZXZ resynthesis ---

// zxzxz is the "zxzxz" rule: partition-and-reinstantiate resynthesis
// that re-expresses every merged single-qubit unitary in the fixed ZXZXZ
// template RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ) (SX = √X, a Clifford). Like
// BQSKit's numerical instantiation, this canonicalizes structure at the
// cost of inflating the number of arbitrary rotations — one U3 becomes
// three nontrivial RZ gates — which is exactly the behavior the paper
// measures against in Figure 12.
type zxzxz struct{}

// ZXZXZ returns the resynthesis rule. It is registered but not part of
// Defaults(): it trades T-friendly structure for rotation count and
// exists for resynthesis pipelines and comparisons.
func ZXZXZ() Optimizer { return zxzxz{} }

func (zxzxz) Name() string { return "zxzxz" }

// Optimize merges adjacent 1q gates, then re-instantiates each U3 into
// the ZXZXZ template, emitting an Rz-basis circuit (SX expanded into
// H·S·H-form Cliffords via the RZ(π/2) identity).
func (zxzxz) Optimize(c *circuit.Circuit) (*circuit.Circuit, error) {
	merged := transpile.Merge1Q(c)
	out := circuit.New(c.N)
	for _, op := range merged.Ops {
		if op.G != circuit.U3 {
			out.Add(op)
			continue
		}
		th, ph, la := op.P[0], op.P[1], op.P[2]
		q := op.Q[0]
		// Time order: RZ(λ), SX, RZ(θ+π), SX, RZ(φ+π); SX = H·RZ(π/2)·H up
		// to phase (H S H).
		emit := func(angle float64) {
			angle = math.Mod(angle, 2*math.Pi)
			if angle < 0 {
				angle += 2 * math.Pi
			}
			if angle > 1e-12 && 2*math.Pi-angle > 1e-12 {
				out.RZ(q, angle)
			}
		}
		sx := func() {
			out.H(q)
			out.S(q)
			out.H(q)
		}
		emit(la)
		sx()
		emit(th + math.Pi)
		sx()
		emit(ph + math.Pi)
	}
	return out, nil
}
