package optimize

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/circuit/gen"
	"repro/internal/sim"
)

// randomMixed builds a random 2–3 qubit circuit mixing discrete
// Clifford+T gates, CXs, and continuous rotations (RZ and U3) — the
// workload every registered optimizer must preserve the unitary on.
func randomMixed(rng *rand.Rand, n, depth int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		switch rng.Intn(10) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.Tdg(rng.Intn(n))
		case 3:
			c.S(rng.Intn(n))
		case 4:
			c.Z(rng.Intn(n))
		case 5:
			c.RZ(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 6:
			c.U3Gate(rng.Intn(n), rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	return c
}

// TestEveryRegisteredOptimizerPreservesUnitary is the subsystem's core
// property: each registry entry preserves the circuit unitary up to
// global phase on random 2–3 qubit circuits (UnitaryDistance is
// global-phase invariant).
func TestEveryRegisteredOptimizerPreservesUnitary(t *testing.T) {
	names := List()
	if len(names) < 3 {
		t.Fatalf("expected ≥ 3 registered optimizers, have %v", names)
	}
	for _, name := range names {
		o, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 25; trial++ {
				n := 2 + trial%2
				c := randomMixed(rng, n, 30)
				out, err := o.Optimize(c)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(out)); d > 1e-6 {
					t.Fatalf("trial %d: %s changed the unitary by %v", trial, name, d)
				}
			}
		})
	}
}

// TestDriverPreservesUnitaryAndNeverIncreasesT: the default fixed-point
// run keeps the unitary and can only lower the T count; across enough
// random circuits it must save at least one T overall.
func TestDriverPreservesUnitaryAndNeverIncreasesT(t *testing.T) {
	saved := 0
	for trial := 0; trial < 15; trial++ {
		c := gen.RandomCliffordT(3, 60, int64(trial+1))
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(res.Circuit)); d > 1e-6 {
			t.Fatalf("trial %d: driver changed unitary: %v", trial, d)
		}
		if res.After.TCount > res.Before.TCount {
			t.Fatalf("trial %d: driver increased T %d → %d", trial, res.Before.TCount, res.After.TCount)
		}
		if got := res.Circuit.TCount(); got != res.After.TCount {
			t.Fatalf("trial %d: After metrics stale: %d vs %d", trial, res.After.TCount, got)
		}
		if res.TSaved() != res.Before.TCount-res.After.TCount {
			t.Fatalf("trial %d: TSaved inconsistent", trial)
		}
		saved += res.TSaved()
	}
	if saved == 0 {
		t.Error("driver never saved a single T gate across 15 random circuits")
	}
}

// TestDriverReachesFixedPoint: a second run on the driver's output finds
// nothing (the 6-pass cap of the old zxopt.Optimize is gone), and the
// result reports convergence with per-rule hit counters.
func TestDriverReachesFixedPoint(t *testing.T) {
	c := gen.RandomCliffordT(3, 120, 9)
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("driver hit the safety ceiling on a %d-op circuit (%d iterations)", len(c.Ops), res.Iterations)
	}
	if res.Iterations < 1 || res.Iterations > DefaultMaxIterations {
		t.Fatalf("implausible iteration count %d", res.Iterations)
	}
	if res.TSaved() > 0 && len(res.RuleHits) == 0 {
		t.Fatal("T gates saved but no rule hit recorded")
	}
	again, err := Run(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if again.TSaved() != 0 || again.After.Clifford != again.Before.Clifford {
		t.Fatalf("not a fixed point: second run saved T %d, Clifford %d → %d",
			again.TSaved(), again.Before.Clifford, again.After.Clifford)
	}
}

// TestDriverSafetyCeiling: MaxIterations caps the sweeps and marks the
// run unconverged when work remained.
func TestDriverSafetyCeiling(t *testing.T) {
	// A circuit where folding then peephole keeps improving for at least
	// two sweeps: parity-foldable T pairs interleaved with reducible runs.
	c := circuit.New(2)
	for i := 0; i < 8; i++ {
		c.T(0).CX(0, 1).T(0).CX(0, 1)
		c.H(1).S(1).S(1).H(1)
	}
	d := NewDriver()
	d.MaxIterations = 1
	res, err := d.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("ceiling ignored: %d iterations", res.Iterations)
	}
	full, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations <= 1 {
		t.Skipf("workload converged in one sweep; ceiling unobservable")
	}
	if res.Converged {
		t.Fatal("capped run claims convergence")
	}
}

// TestFoldPhasesMergesAcrossCX: T(0)·CX(0,1)·T(0) — the two T's share
// the control parity and must merge into one S.
func TestFoldPhasesMergesAcrossCX(t *testing.T) {
	c := circuit.New(2)
	c.T(0).CX(0, 1).T(0)
	f, err := FoldPhases().Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(f)); d > 1e-7 {
		t.Fatalf("unitary changed: %v", d)
	}
	if f.TCount() != 0 {
		t.Fatalf("expected T count 0 after folding, got %d", f.TCount())
	}
}

// TestFoldPhasesRespectsHBarrier: T·H·T on one qubit — the H separates
// parities; the T count must stay 2.
func TestFoldPhasesRespectsHBarrier(t *testing.T) {
	c := circuit.New(1)
	c.T(0).H(0).T(0)
	f, err := FoldPhases().Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if f.TCount() != 2 {
		t.Fatalf("H barrier violated: T=%d", f.TCount())
	}
}

// TestEmitPhaseAngles: the discrete-gate table for every π/4 multiple
// matches the RZ it stands in for.
func TestEmitPhaseAngles(t *testing.T) {
	for m := 0; m < 8; m++ {
		c := circuit.New(1)
		emitPhase(c, 0, float64(m)*math.Pi/4)
		ref := circuit.New(1)
		ref.RZ(0, float64(m)*math.Pi/4)
		if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(ref)); d > 1e-7 {
			t.Fatalf("emitPhase(%dπ/4) wrong: %v", m, d)
		}
		if c.CountRotations() != 0 {
			t.Fatalf("emitPhase(%dπ/4) left a rotation", m)
		}
	}
}

// TestZXZXZEmitsRzBasisAndInflates: the resynthesis rule leaves only RZ
// rotations and — on merged U3 input — inflates the rotation count, the
// Figure 12 behavior the driver's best-cost selection must never let
// leak into a T-count-optimizing run.
func TestZXZXZEmitsRzBasisAndInflates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := circuit.New(2)
	for i := 0; i < 10; i++ {
		c.U3Gate(i%2, rng.Float64()*3, rng.Float64()*6, rng.Float64()*6)
		c.CX(0, 1)
	}
	r, err := ZXZXZ().Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range r.Ops {
		if op.G == circuit.U3 || op.G == circuit.RX || op.G == circuit.RY {
			t.Fatal("zxzxz left a non-RZ rotation")
		}
	}
	if r.CountRotations() <= c.CountRotations() {
		t.Fatalf("expected rotation inflation: %d → %d", c.CountRotations(), r.CountRotations())
	}
	// The driver must shield a T-count run from the inflation: with zxzxz
	// in the chain the best-cost circuit still never regresses.
	res, err := Run(c, ZXZXZ(), FoldPhases(), NewPeephole(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.After.TCount > res.Before.TCount || res.After.Clifford > res.Before.Clifford {
		t.Fatalf("driver regressed under zxzxz: %+v → %+v", res.Before, res.After)
	}
}

// TestRegistry: duplicate and invalid registrations fail; lookups and
// listings behave.
func TestRegistry(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Fatal("Register(nil) succeeded")
	}
	if err := Register(FoldPhases()); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	for _, want := range []string{"foldphases", "peephole", "zxzxz"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("built-in %q not registered (have %v)", want, List())
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
	if _, err := NewDriverNamed("nope"); err == nil {
		t.Fatal("NewDriverNamed accepted an unknown name")
	}
	d, err := NewDriverNamed("foldphases", "peephole")
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(d.Rules()); got != "[foldphases peephole]" {
		t.Fatalf("rule order: %s", got)
	}
}
