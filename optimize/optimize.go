// Package optimize is the public T-count circuit-optimizer subsystem: a
// registry of named rewrite rules (Optimizer implementations) plus a
// fixed-point Driver that applies them until no rule improves the
// circuit. It promotes the repository's experiment-only optimizers into
// first-class citizens of the compilation stack:
//
//   - "foldphases" — phase folding: CNOT-parity tracking merges diagonal
//     phase gates (T/S/Z/RZ) applied to the same parity term, the primary
//     mechanism by which ZX-calculus optimizers reclaim T gates
//     (promoted from internal/zxopt, the PyZX stand-in for RQ5);
//   - "peephole" — exact peephole rewriting of single-qubit gate runs
//     against the step-0 enumeration table of minimal Clifford+T forms
//     (trasyn's step-3 rewriting applied circuit-wide);
//   - "zxzxz" — partition-and-reinstantiate resynthesis into the fixed
//     ZXZXZ template RZ·SX·RZ·SX·RZ (promoted from internal/resynth, the
//     BQSKit stand-in for Figure 12). Unlike the other rules it trades
//     structure for rotation count and is therefore not in the default
//     rule set; it exists for resynthesis pipelines and comparisons.
//
// Every registered optimizer preserves the circuit unitary exactly (up
// to global phase), which the package property tests verify by
// simulation. The synth package wires the subsystem into circuit
// compilation as the OptimizeRotations (pre-lowering) and
// OptimizeCliffordT (post-lowering) passes — see synth.WithOptimize.
package optimize

import (
	"fmt"

	"repro/circuit"
)

// Optimizer is one named circuit-to-circuit rewrite rule. Implementations
// must not mutate the input circuit and must preserve its unitary up to
// global phase; they are free to return the input unchanged when they
// find nothing to improve.
type Optimizer interface {
	// Name is the stable identifier used by the registry, the
	// synth.WithOptimizers option, and the Driver's per-rule hit counters.
	Name() string
	// Optimize returns a rewritten circuit (or c itself when nothing
	// improved).
	Optimize(c *circuit.Circuit) (*circuit.Circuit, error)
}

// Result is one Driver run: the optimized circuit, the before/after
// metric snapshots, and what the driver learned on the way there.
type Result struct {
	// Circuit is the optimized circuit.
	Circuit *circuit.Circuit
	// Before/After are the full metric snapshots bracketing the run; the
	// headline delta is Before.TCount - After.TCount.
	Before, After circuit.Metrics
	// Iterations counts full rule sweeps executed, including the final
	// sweep that confirmed the fixed point. Capped at the driver ceiling.
	Iterations int
	// Converged reports whether a true fixed point was reached (false
	// only when the safety ceiling cut the run short).
	Converged bool
	// RuleHits counts, per rule name, the sweeps in which that rule
	// strictly improved the circuit cost.
	RuleHits map[string]int
}

// TSaved is the headline metric: T gates reclaimed by the run.
func (r *Result) TSaved() int { return r.Before.TCount - r.After.TCount }

// DefaultMaxIterations is the Driver's safety ceiling on full rule
// sweeps. Phase folding and peephole rewriting both converge in a
// handful of sweeps on every workload in the suite; the ceiling exists
// so a pathological rule pair cannot livelock the compile path.
const DefaultMaxIterations = 32

// Driver applies a rule list to a fixed point: rules run in order, and
// sweeps repeat until a full sweep leaves the circuit cost unchanged (or
// the safety ceiling trips). The zero value is not useful; construct
// with NewDriver.
type Driver struct {
	rules []Optimizer
	// MaxIterations overrides the sweep ceiling (0 = DefaultMaxIterations).
	MaxIterations int
}

// NewDriver builds a fixed-point driver over the given rules. With no
// rules it uses Defaults() — the T-count-reducing pair.
func NewDriver(rules ...Optimizer) *Driver {
	if len(rules) == 0 {
		rules = Defaults()
	}
	return &Driver{rules: rules}
}

// NewDriverNamed resolves rule names through the registry.
func NewDriverNamed(names ...string) (*Driver, error) {
	if len(names) == 0 {
		return NewDriver(), nil
	}
	rules := make([]Optimizer, len(names))
	for i, n := range names {
		o, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("optimize: unknown optimizer %q (have %v)", n, List())
		}
		rules[i] = o
	}
	return NewDriver(rules...), nil
}

// Rules returns the configured rule names in application order.
func (d *Driver) Rules() []string {
	names := make([]string, len(d.rules))
	for i, r := range d.rules {
		names[i] = r.Name()
	}
	return names
}

// cost is the driver's improvement ordering: T count dominates, then
// non-Pauli Cliffords, then raw op count (so pure cleanups that delete
// identities still register as progress).
func cost(c *circuit.Circuit) [3]int {
	return [3]int{c.TCount(), c.CliffordCount(), len(c.Ops)}
}

func less(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Run drives the rule list to a fixed point on c. The input circuit is
// never mutated. Within a sweep every rule is applied unconditionally —
// one rule's rearrangement can enable the next even when it does not
// improve the cost by itself — and sweeps repeat while the circuit keeps
// improving. The best-cost circuit seen is what the Result carries, so a
// run can never regress the T count even when a structural rule (zxzxz)
// inflates the circuit mid-sweep.
func (d *Driver) Run(c *circuit.Circuit) (*Result, error) {
	maxIter := d.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	res := &Result{
		Before:   c.Metrics(),
		RuleHits: map[string]int{},
	}
	cur, best := c, c
	curCost := cost(cur)
	bestCost := curCost
	for res.Iterations < maxIter {
		res.Iterations++
		sweepStart := curCost
		for _, rule := range d.rules {
			next, err := rule.Optimize(cur)
			if err != nil {
				return nil, fmt.Errorf("optimize: rule %s: %w", rule.Name(), err)
			}
			if next == nil {
				return nil, fmt.Errorf("optimize: rule %s returned a nil circuit", rule.Name())
			}
			nextCost := cost(next)
			if less(nextCost, curCost) {
				res.RuleHits[rule.Name()]++
			}
			cur, curCost = next, nextCost
			if less(curCost, bestCost) {
				best, bestCost = cur, curCost
			}
		}
		if !less(curCost, sweepStart) {
			res.Converged = true
			break
		}
	}
	res.Circuit = best
	res.After = best.Metrics()
	return res, nil
}

// Run is the package-level convenience: a fixed-point run of the given
// rules (Defaults() when empty) over c.
func Run(c *circuit.Circuit, rules ...Optimizer) (*Result, error) {
	return NewDriver(rules...).Run(c)
}
