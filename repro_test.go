package repro

import (
	"math"
	"math/rand"
	"testing"
)

// TestFacadeSynthesize: the headline API must produce verified sequences.
func TestFacadeSynthesize(t *testing.T) {
	u := HaarRandom(rand.New(rand.NewSource(1)))
	res := Synthesize(u, SynthOptions{Samples: 800, Seed: 2})
	if res.Seq == nil {
		t.Fatal("no sequence")
	}
	if d := Distance(u, res.Seq.Matrix()); math.Abs(d-res.Error) > 1e-6 {
		t.Fatalf("reported %v realized %v", res.Error, d)
	}
	if res.TCount != res.Seq.TCount() {
		t.Fatal("T count metadata mismatch")
	}
}

// TestFacadeHeadlineClaim: trasyn must beat the three-rotation gridsynth
// baseline on T count at a comparable error — the paper's core claim,
// verified through the public API alone.
func TestFacadeHeadlineClaim(t *testing.T) {
	wins, total := 0, 0
	for i := int64(0); i < 5; i++ {
		u := HaarRandom(rand.New(rand.NewSource(10 + i)))
		res := Synthesize(u, SynthOptions{Samples: 1500, Seed: i + 1})
		g, err := GridsynthU3(u, math.Max(res.Error, 1e-4))
		if err != nil {
			t.Fatal(err)
		}
		total++
		if g.TCount > res.TCount {
			wins++
		}
	}
	if wins < total {
		t.Fatalf("trasyn won only %d/%d against gridsynth", wins, total)
	}
}

func TestFacadeGridsynthRz(t *testing.T) {
	res, err := GridsynthRz(0.731, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > 1e-3 {
		t.Fatalf("error %v > 1e-3", res.Error)
	}
	if d := Distance(Rz(0.731), res.Seq.Matrix()); d > 1e-3 {
		t.Fatalf("sequence does not approximate Rz: %v", d)
	}
}

func TestFacadeSolovayKitaev(t *testing.T) {
	u := HaarRandom(rand.New(rand.NewSource(3)))
	res0, e0 := SolovayKitaev(u, 0)
	res1, e1 := SolovayKitaev(u, 1)
	if res0.Seq == nil || res1.Seq == nil {
		t.Fatal("SK returned nil")
	}
	if e1 > e0*1.5 {
		t.Fatalf("SK depth 1 much worse than depth 0: %v vs %v", e1, e0)
	}
}

func TestFacadeTranspile(t *testing.T) {
	c := NewCircuit(2)
	c.RZ(0, 0.4).H(0).RZ(0, 0.9).CX(0, 1).RX(1, 1.2)
	u3 := TranspileU3(c)
	rz := TranspileRz(c)
	if u3.CountRotations() > rz.CountRotations() {
		t.Fatalf("U3 IR has more rotations (%d) than Rz IR (%d)",
			u3.CountRotations(), rz.CountRotations())
	}
}

func TestFacadeBenchmarkSuite(t *testing.T) {
	if got := len(BenchmarkSuite()); got != 192 {
		t.Fatalf("suite has %d circuits, want 192", got)
	}
}
