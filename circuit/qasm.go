package circuit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseQASM parses the OpenQASM 2.0 subset emitted by (*Circuit).QASM —
// one quantum register, the discrete/rotation gate alphabet of this IR,
// and cx/cz/swap — so circuits round-trip through text and external
// circuits in this dialect can be imported.
func ParseQASM(src string) (*Circuit, error) {
	var c *Circuit
	regName := "q"
	for ln, rawLine := range strings.Split(src, "\n") {
		line := strings.TrimSpace(rawLine)
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !strings.HasSuffix(line, ";") {
			return nil, fmt.Errorf("qasm line %d: missing ';': %q", ln+1, line)
		}
		stmt := strings.TrimSuffix(line, ";")
		switch {
		case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"):
			continue
		case strings.HasPrefix(stmt, "qreg"):
			name, size, err := parseQreg(stmt)
			if err != nil {
				return nil, fmt.Errorf("qasm line %d: %v", ln+1, err)
			}
			if c != nil {
				return nil, fmt.Errorf("qasm line %d: multiple qregs unsupported", ln+1)
			}
			regName = name
			c = New(size)
		case strings.HasPrefix(stmt, "creg"), strings.HasPrefix(stmt, "barrier"),
			strings.HasPrefix(stmt, "measure"):
			continue // ignored: no classical semantics in this IR
		default:
			if c == nil {
				return nil, fmt.Errorf("qasm line %d: gate before qreg", ln+1)
			}
			if err := parseGateStmt(c, regName, stmt); err != nil {
				return nil, fmt.Errorf("qasm line %d: %v", ln+1, err)
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return c, nil
}

func parseQreg(stmt string) (string, int, error) {
	// qreg q[N]
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "qreg"))
	open := strings.Index(rest, "[")
	closeB := strings.Index(rest, "]")
	if open < 0 || closeB < open {
		return "", 0, fmt.Errorf("malformed qreg %q", stmt)
	}
	size, err := strconv.Atoi(rest[open+1 : closeB])
	if err != nil || size <= 0 {
		return "", 0, fmt.Errorf("bad qreg size in %q", stmt)
	}
	return strings.TrimSpace(rest[:open]), size, nil
}

func parseGateStmt(c *Circuit, reg, stmt string) error {
	// <name>[(params)] q[i][,q[j]]
	var name, params, args string
	if i := strings.Index(stmt, "("); i >= 0 {
		j := strings.Index(stmt, ")")
		if j < i {
			return fmt.Errorf("malformed params in %q", stmt)
		}
		name = strings.TrimSpace(stmt[:i])
		params = stmt[i+1 : j]
		args = strings.TrimSpace(stmt[j+1:])
	} else {
		fields := strings.Fields(stmt)
		if len(fields) < 2 {
			return fmt.Errorf("malformed gate %q", stmt)
		}
		name = fields[0]
		args = strings.TrimSpace(strings.Join(fields[1:], " "))
	}
	qubits, err := parseArgs(reg, args, c.N)
	if err != nil {
		return err
	}
	var angles []float64
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			v, err := parseAngle(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			angles = append(angles, v)
		}
	}
	return applyParsed(c, strings.ToLower(name), qubits, angles)
}

func parseArgs(reg, args string, n int) ([]int, error) {
	var out []int
	for _, a := range strings.Split(args, ",") {
		a = strings.TrimSpace(a)
		if !strings.HasPrefix(a, reg+"[") || !strings.HasSuffix(a, "]") {
			return nil, fmt.Errorf("bad qubit reference %q", a)
		}
		idx, err := strconv.Atoi(a[len(reg)+1 : len(a)-1])
		if err != nil || idx < 0 || idx >= n {
			return nil, fmt.Errorf("qubit index out of range in %q", a)
		}
		out = append(out, idx)
	}
	return out, nil
}

// parseAngle evaluates the tiny expression grammar QASM angles use:
// float literals, pi, unary minus, and '*' / '/' with two operands.
func parseAngle(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty angle")
	}
	if i := strings.LastIndex(s, "/"); i > 0 {
		num, err := parseAngle(s[:i])
		if err != nil {
			return 0, err
		}
		den, err := parseAngle(s[i+1:])
		if err != nil {
			return 0, err
		}
		if den == 0 {
			return 0, fmt.Errorf("division by zero in angle %q", s)
		}
		return num / den, nil
	}
	if i := strings.LastIndex(s, "*"); i > 0 {
		a, err := parseAngle(s[:i])
		if err != nil {
			return 0, err
		}
		b, err := parseAngle(s[i+1:])
		if err != nil {
			return 0, err
		}
		return a * b, nil
	}
	neg := false
	for strings.HasPrefix(s, "-") {
		neg = !neg
		s = strings.TrimSpace(s[1:])
	}
	var v float64
	switch s {
	case "pi":
		v = math.Pi
	default:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", s)
		}
		v = f
	}
	if neg {
		v = -v
	}
	return v, nil
}

func applyParsed(c *Circuit, name string, qubits []int, angles []float64) error {
	need := func(nq, na int) error {
		if len(qubits) != nq || len(angles) != na {
			return fmt.Errorf("gate %s: want %d qubits/%d params, got %d/%d",
				name, nq, na, len(qubits), len(angles))
		}
		return nil
	}
	oneQ := map[string]GateType{
		"id": I, "x": X, "y": Y, "z": Z, "h": H,
		"s": S, "sdg": Sdg, "t": T, "tdg": Tdg,
	}
	if g, ok := oneQ[name]; ok {
		if err := need(1, 0); err != nil {
			return err
		}
		c.Gate1(g, qubits[0])
		return nil
	}
	switch name {
	case "rx", "ry", "rz", "u1", "p":
		if err := need(1, 1); err != nil {
			return err
		}
		switch name {
		case "rx":
			c.RX(qubits[0], angles[0])
		case "ry":
			c.RY(qubits[0], angles[0])
		default: // rz, u1, p — all diagonal (u1/p differ by phase only)
			c.RZ(qubits[0], angles[0])
		}
	case "u3", "u":
		if err := need(1, 3); err != nil {
			return err
		}
		c.U3Gate(qubits[0], angles[0], angles[1], angles[2])
	case "u2":
		if err := need(1, 2); err != nil {
			return err
		}
		c.U3Gate(qubits[0], math.Pi/2, angles[0], angles[1])
	case "cx", "cnot":
		if err := need(2, 0); err != nil {
			return err
		}
		c.CX(qubits[0], qubits[1])
	case "cz":
		if err := need(2, 0); err != nil {
			return err
		}
		c.CZ(qubits[0], qubits[1])
	case "swap":
		if err := need(2, 0); err != nil {
			return err
		}
		c.Swap(qubits[0], qubits[1])
	default:
		return fmt.Errorf("unsupported gate %q", name)
	}
	return nil
}
