package gen

import (
	"testing"

	"repro/circuit"
)

// TestDeterminism: every seeded generator is a pure function of its
// arguments — two calls produce byte-identical QASM, and a different
// seed produces a different circuit.
func TestDeterminism(t *testing.T) {
	cases := []struct {
		name string
		make func(seed int64) *circuit.Circuit
	}{
		{"qaoa", func(s int64) *circuit.Circuit { return QAOAMaxCut(8, 2, s) }},
		{"molecular", func(s int64) *circuit.Circuit { return Molecular(6, 12, s).EvolutionCircuit(0.3, 1) }},
		{"ghz", func(s int64) *circuit.Circuit { return GHZWithRotations(5, s) }},
		{"vqe", func(s int64) *circuit.Circuit { return VQEAnsatz(4, 2, s) }},
		{"random", func(s int64) *circuit.Circuit { return RandomCircuit(4, 3, s) }},
		{"cliffordt", func(s int64) *circuit.Circuit { return RandomCliffordT(3, 40, s) }},
		{"su4blocks", func(s int64) *circuit.Circuit { return RandomSU4Blocks(4, 6, s) }},
	}
	for _, tc := range cases {
		a, b := tc.make(7), tc.make(7)
		if a.QASM() != b.QASM() {
			t.Errorf("%s: same seed produced different circuits", tc.name)
		}
		if c := tc.make(8); c.QASM() == a.QASM() {
			t.Errorf("%s: different seed produced an identical circuit", tc.name)
		}
	}
}

// TestQAOAMaxCutShape: H layer on every qubit first, then cost gadgets
// (CX·RZ·CX) and mixers — with rotations to synthesize.
func TestQAOAMaxCutShape(t *testing.T) {
	c := QAOAMaxCut(8, 2, 1)
	if c.N != 8 {
		t.Fatalf("qubits: %d", c.N)
	}
	for q := 0; q < 8; q++ {
		if c.Ops[q].G != circuit.H {
			t.Fatalf("op %d: want initial H layer, got %v", q, c.Ops[q].G)
		}
	}
	if c.CountRotations() == 0 || c.TwoQubitCount() == 0 {
		t.Fatalf("degenerate QAOA circuit: %d rotations, %d CX", c.CountRotations(), c.TwoQubitCount())
	}
}

// TestThreeRegularEdges: every vertex has degree 3 (n even).
func TestThreeRegularEdges(t *testing.T) {
	for _, n := range []int{8, 12} {
		deg := make([]int, n)
		for _, e := range ThreeRegularEdges(n, 42) {
			deg[e[0]]++
			deg[e[1]]++
		}
		for v, d := range deg {
			if d != 3 {
				t.Fatalf("n=%d vertex %d has degree %d", n, v, d)
			}
		}
	}
}

// TestRandomCliffordT: the optimizer property-test workload contains
// only discrete Clifford+T gates and CXs — no rotations to synthesize.
func TestRandomCliffordT(t *testing.T) {
	c := RandomCliffordT(3, 80, 5)
	if c.CountRotations() != 0 {
		t.Fatalf("RandomCliffordT emitted %d rotations", c.CountRotations())
	}
	if c.TCount() == 0 || c.TwoQubitCount() == 0 {
		t.Fatalf("degenerate circuit: T=%d CX=%d", c.TCount(), c.TwoQubitCount())
	}
	for i, op := range c.Ops {
		if !op.G.IsDiscrete1Q() && !op.G.IsTwoQubit() {
			t.Fatalf("op %d: unexpected gate %v", i, op.G)
		}
	}
}

// TestChemistryEvolution: a Trotterized Hamiltonian circuit exposes
// nontrivial RZ rotations (the synthesis workload) and no other
// rotation kinds.
func TestChemistryEvolution(t *testing.T) {
	c := Heisenberg(4, 1.0).EvolutionCircuit(0.4, 2)
	if c.CountRotations() == 0 {
		t.Fatal("no rotations in the Trotter circuit")
	}
	for i, op := range c.Ops {
		if op.G == circuit.RX || op.G == circuit.RY || op.G == circuit.U3 {
			t.Fatalf("op %d: Pauli-gadget compiler emitted %v", i, op.G)
		}
	}
}

// TestRandomSU4BlocksShape: each block is a 3-CX KAK skeleton with Haar
// locals — so blocks·3 CX gates, blocks·8 U3 gates, and no other ops.
func TestRandomSU4BlocksShape(t *testing.T) {
	const blocks = 7
	c := RandomSU4Blocks(5, blocks, 3)
	if c.N != 5 {
		t.Fatalf("qubits: %d", c.N)
	}
	cx, u3 := 0, 0
	for _, op := range c.Ops {
		switch op.G {
		case circuit.CX:
			cx++
		case circuit.U3:
			u3++
		default:
			t.Fatalf("unexpected gate %v", op.G)
		}
	}
	if cx != 3*blocks || u3 != 8*blocks {
		t.Fatalf("got %d CX / %d U3, want %d / %d", cx, u3, 3*blocks, 8*blocks)
	}
}
