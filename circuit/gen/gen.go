// Package gen is the public circuit-workload generator library: every
// parameterized circuit family the benchmarks, examples, and tests
// share, promoted from internal/suite so external callers can build the
// same workloads the paper's evaluation runs on.
//
// Three groups:
//
//   - QAOA: MaxCut circuits on random 3-regular graphs with the §3.4
//     merge-friendly gate ordering (QAOAMaxCut);
//   - Hamiltonian simulation ("chemistry"): Pauli-term Hamiltonians
//     (TFIM, Heisenberg, XYChain, Molecular, MaxCutIsing, SpinGlass)
//     compiled to Trotter circuits via Hamiltonian.EvolutionCircuit;
//   - fault-tolerant algorithms: QFT, QPE, Cuccaro adders, GHZ/W states,
//     VQE ansatzes, Grover, random CX+U3 circuits (RandomCircuit), and
//     random Clifford+T circuits (RandomCliffordT — the optimizer
//     property-test workload).
//
// Everything is deterministic in its seed arguments; nothing reads the
// clock. internal/suite assembles the 192-circuit corpus from these
// generators and re-exports them as deprecated aliases.
package gen

import (
	"math/rand"

	"repro/circuit"
)

// RandomCliffordT returns a random n-qubit Clifford+T circuit of the
// given depth: uniform H/T/T†/S/Z single-qubit gates mixed with CXs on
// random distinct pairs (CX twice as likely). It is the canonical
// random workload for optimizer correctness properties — every gate is
// discrete, so T counts compare exactly. n must be ≥ 2.
func RandomCliffordT(n, depth int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		switch rng.Intn(7) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.Tdg(rng.Intn(n))
		case 3:
			c.S(rng.Intn(n))
		case 4:
			c.Z(rng.Intn(n))
		case 5, 6:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	return c
}
