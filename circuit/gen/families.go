package gen

import (
	"math"
	"math/rand"

	"repro/circuit"
	"repro/internal/qmat"
)

// --- Hamiltonian families (Hamlib-style) ---

// TFIM returns the transverse-field Ising model on a chain:
// Σ J·Z_i Z_{i+1} + Σ g·X_i. Mixed Z/X terms → "quantum" Hamiltonian.
func TFIM(n int, j, g float64) Hamiltonian {
	h := Hamiltonian{N: n}
	for i := 0; i+1 < n; i++ {
		h.Terms = append(h.Terms, NewTerm(j, map[int]Pauli{i: PZ, i + 1: PZ}))
	}
	for i := 0; i < n; i++ {
		h.Terms = append(h.Terms, NewTerm(g, map[int]Pauli{i: PX}))
	}
	return h
}

// Heisenberg returns the isotropic Heisenberg chain:
// Σ (X_i X_{i+1} + Y_i Y_{i+1} + Z_i Z_{i+1}).
func Heisenberg(n int, j float64) Hamiltonian {
	h := Hamiltonian{N: n}
	for i := 0; i+1 < n; i++ {
		for _, p := range []Pauli{PX, PY, PZ} {
			h.Terms = append(h.Terms, NewTerm(j, map[int]Pauli{i: p, i + 1: p}))
		}
	}
	return h
}

// XYChain returns Σ (X_i X_{i+1} + Y_i Y_{i+1}).
func XYChain(n int, j float64) Hamiltonian {
	h := Hamiltonian{N: n}
	for i := 0; i+1 < n; i++ {
		h.Terms = append(h.Terms, NewTerm(j, map[int]Pauli{i: PX, i + 1: PX}))
		h.Terms = append(h.Terms, NewTerm(j, map[int]Pauli{i: PY, i + 1: PY}))
	}
	return h
}

// MaxCutIsing returns the classical MaxCut cost Hamiltonian Σ w·Z_u Z_v on
// a random 3-regular graph — Z-only terms ("classical" Hamiltonian).
func MaxCutIsing(n int, seed int64) Hamiltonian {
	h := Hamiltonian{N: n}
	for _, e := range ThreeRegularEdges(n, seed) {
		h.Terms = append(h.Terms, NewTerm(1.0, map[int]Pauli{e[0]: PZ, e[1]: PZ}))
	}
	return h
}

// SpinGlass returns a classical Z/ZZ spin glass with random couplings.
func SpinGlass(n int, seed int64) Hamiltonian {
	rng := rand.New(rand.NewSource(seed))
	h := Hamiltonian{N: n}
	for i := 0; i < n; i++ {
		h.Terms = append(h.Terms, NewTerm(rng.NormFloat64(), map[int]Pauli{i: PZ}))
	}
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if rng.Float64() < 0.5 {
				h.Terms = append(h.Terms, NewTerm(rng.NormFloat64(), map[int]Pauli{i: PZ, k: PZ}))
			}
		}
	}
	return h
}

// Molecular returns a molecular-electronic-structure-like Hamiltonian:
// random weight-2..4 strings mixing X, Y, Z (what Jordan–Wigner encodings
// of fermionic terms look like).
func Molecular(n, terms int, seed int64) Hamiltonian {
	rng := rand.New(rand.NewSource(seed))
	h := Hamiltonian{N: n}
	paulis := []Pauli{PX, PY, PZ}
	for t := 0; t < terms; t++ {
		w := 2 + rng.Intn(3)
		ops := map[int]Pauli{}
		start := rng.Intn(n)
		for i := 0; i < w; i++ {
			ops[(start+i)%n] = paulis[rng.Intn(3)]
		}
		h.Terms = append(h.Terms, NewTerm(rng.NormFloat64()*0.5, ops))
	}
	return h
}

// --- QAOA ---

// ThreeRegularEdges returns the edge list of a random 3-regular graph on n
// vertices (n even), built by repeated perfect-matching sampling.
func ThreeRegularEdges(n int, seed int64) [][2]int {
	if n%2 == 1 {
		n--
	}
	rng := rand.New(rand.NewSource(seed))
	used := map[[2]int]bool{}
	var edges [][2]int
	for round := 0; round < 3; round++ {
		for attempt := 0; ; attempt++ {
			perm := rng.Perm(n)
			ok := true
			var cand [][2]int
			for i := 0; i < n; i += 2 {
				a, b := perm[i], perm[i+1]
				if a > b {
					a, b = b, a
				}
				if a == b || used[[2]int{a, b}] {
					ok = false
					break
				}
				cand = append(cand, [2]int{a, b})
			}
			if ok {
				for _, e := range cand {
					used[e] = true
				}
				edges = append(edges, cand...)
				break
			}
			if attempt > 200 {
				// Fall back to a ring + cross edges (still 3-regular-ish).
				for i := 0; i < n; i++ {
					e := [2]int{i, (i + 1) % n}
					if e[0] > e[1] {
						e[0], e[1] = e[1], e[0]
					}
					if !used[e] {
						used[e] = true
						edges = append(edges, e)
					}
				}
				break
			}
		}
	}
	return edges
}

// QAOAMaxCut builds a depth-p QAOA circuit for MaxCut on a random
// 3-regular graph, with the gate ordering of §3.4 that maximizes rotation
// merging: within each layer the cost gadgets (CX·RZ·CX) are emitted in
// BFS-spanning-tree order with the CX targeting the child vertex, so that
// every non-root qubit's first touch in the layer is as a CX target — its
// mixer RX from the previous layer then commutes through and merges with
// the cost RZ ("all but one Rx per layer", §3.4). ZZ gadgets commute, so
// the reordering is exact.
func QAOAMaxCut(n, depth int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed ^ 0x9a0a))
	edges := ThreeRegularEdges(n, seed)
	ordered := bfsTreeFirst(n, edges)
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for layer := 0; layer < depth; layer++ {
		gamma := rng.Float64() * math.Pi
		beta := rng.Float64() * math.Pi
		for _, e := range ordered {
			c.CX(e[0], e[1])
			c.RZ(e[1], 2*gamma)
			c.CX(e[0], e[1])
		}
		for q := 0; q < n; q++ {
			c.RX(q, 2*beta)
		}
	}
	return c
}

// bfsTreeFirst orders edges so that BFS spanning-tree edges come first
// (directed parent→child, child as CX target), then the remaining edges.
func bfsTreeFirst(n int, edges [][2]int) [][2]int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	visited := make([]bool, n)
	used := map[[2]int]bool{}
	var ordered [][2]int
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if visited[w] {
					continue
				}
				visited[w] = true
				ordered = append(ordered, [2]int{v, w}) // target = child w
				key := [2]int{min(v, w), max(v, w)}
				used[key] = true
				queue = append(queue, w)
			}
		}
	}
	for _, e := range edges {
		key := [2]int{min(e[0], e[1]), max(e[0], e[1])}
		if !used[key] {
			ordered = append(ordered, e)
		}
	}
	return ordered
}

// --- FT algorithm families (Benchpress/QASMBench-style) ---

// QFT returns the quantum Fourier transform (no final swaps) with
// controlled-phase gates decomposed into CX + RZ.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			appendCPhase(c, j, i, math.Pi/math.Pow(2, float64(i-j)))
		}
	}
	return c
}

// appendCPhase emits CP(θ) = diag(1,1,1,e^{iθ}) as RZ(θ/2)s and CXs.
func appendCPhase(c *circuit.Circuit, ctl, tgt int, theta float64) {
	c.RZ(ctl, theta/2)
	c.CX(ctl, tgt)
	c.RZ(tgt, -theta/2)
	c.CX(ctl, tgt)
	c.RZ(tgt, theta/2)
}

// QPE returns a phase-estimation circuit with `bits` counting qubits
// estimating the phase of RZ(2πφ) on one eigenstate qubit.
func QPE(bits int, phase float64) *circuit.Circuit {
	n := bits + 1
	c := circuit.New(n)
	target := bits
	c.X(target) // eigenstate |1⟩ of RZ
	for i := 0; i < bits; i++ {
		c.H(i)
	}
	for i := 0; i < bits; i++ {
		reps := 1 << uint(i)
		appendCPhase(c, i, target, 2*math.Pi*phase*float64(reps))
	}
	// Inverse QFT on the counting register.
	for i := 0; i < bits; i++ {
		for j := 0; j < i; j++ {
			appendCPhase(c, j, i, -math.Pi/math.Pow(2, float64(i-j)))
		}
		c.H(i)
	}
	return c
}

// CCX appends a Toffoli in the standard 7-T decomposition.
func CCX(c *circuit.Circuit, a, b, t int) {
	c.H(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CX(a, b)
	c.T(a)
	c.Tdg(b)
	c.CX(a, b)
}

// CuccaroAdder returns an in-place ripple-carry adder on two m-bit
// registers plus carry qubits (2m+2 qubits total) — a pure Clifford+T
// circuit exercising the T-heavy FT regime.
func CuccaroAdder(m int) *circuit.Circuit {
	n := 2*m + 2
	c := circuit.New(n)
	a := func(i int) int { return i }
	b := func(i int) int { return m + i }
	cin := 2 * m
	cout := 2*m + 1
	// MAJ / UMA ladder.
	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		CCX(c, x, y, z)
	}
	uma := func(x, y, z int) {
		CCX(c, x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}
	maj(cin, b(0), a(0))
	for i := 1; i < m; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.CX(a(m-1), cout)
	for i := m - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// GHZWithRotations prepares a GHZ state then applies a layer of arbitrary
// rotations (the "state preparation + tomography basis" pattern).
func GHZWithRotations(n int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	for q := 0; q < n; q++ {
		c.RZ(q, rng.Float64()*2*math.Pi)
		c.RX(q, rng.Float64()*math.Pi)
	}
	return c
}

// WState prepares the n-qubit W state by the standard amplitude-shift
// cascade: X on qubit 0, then for each i a controlled-RY (decomposed into
// RY halves and CXs) moving weight √(1/(n−i)) … onto qubit i+1, followed
// by a CX returning the control to |0⟩ on the shifted branch.
func WState(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.X(0)
	for i := 0; i+1 < n; i++ {
		theta := 2 * math.Acos(math.Sqrt(1.0/float64(n-i)))
		// CRY(θ): ctl=i, tgt=i+1.
		c.RY(i+1, theta/2)
		c.CX(i, i+1)
		c.RY(i+1, -theta/2)
		c.CX(i, i+1)
		// Move the excitation: if qubit i+1 got set, clear qubit i.
		c.CX(i+1, i)
	}
	return c
}

// VQEAnsatz returns a hardware-efficient ansatz: layers of RY+RZ rotations
// and a CX entangling ladder (the adjacent-axial-rotation pattern of §3.4).
func VQEAnsatz(n, layers int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(q, rng.Float64()*2*math.Pi)
			c.RZ(q, rng.Float64()*2*math.Pi)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.RY(q, rng.Float64()*2*math.Pi)
	}
	return c
}

// Grover returns a Grover search circuit on n qubits marking a single
// state, with multi-controlled Z built from Toffoli cascades (n ≤ 6 keeps
// ancilla-free ladders manageable; uses one ancilla chain above that).
func Grover(n, iters int, marked int64) *circuit.Circuit {
	total := n
	anc := -1
	if n > 2 {
		anc = n
		total = n + n - 2 // Toffoli chain ancillas
	}
	c := circuit.New(total)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	mcz := func() {
		switch n {
		case 1:
			c.Z(0)
		case 2:
			c.CZ(0, 1)
		default:
			// Compute AND-chain into ancillas, CZ, uncompute.
			CCX(c, 0, 1, anc)
			for i := 2; i < n-1; i++ {
				CCX(c, i, anc+i-2, anc+i-1)
			}
			c.CZ(n-1, anc+n-3)
			for i := n - 2; i >= 2; i-- {
				CCX(c, i, anc+i-2, anc+i-1)
			}
			CCX(c, 0, 1, anc)
		}
	}
	for it := 0; it < iters; it++ {
		// Oracle: flip phase of |marked⟩.
		for q := 0; q < n; q++ {
			if marked>>uint(q)&1 == 0 {
				c.X(q)
			}
		}
		mcz()
		for q := 0; q < n; q++ {
			if marked>>uint(q)&1 == 0 {
				c.X(q)
			}
		}
		// Diffusion.
		for q := 0; q < n; q++ {
			c.H(q)
			c.X(q)
		}
		mcz()
		for q := 0; q < n; q++ {
			c.X(q)
			c.H(q)
		}
	}
	return c
}

// RandomSU4Blocks returns a circuit of `blocks` Haar-ish random two-qubit
// unitaries, each on a random qubit pair as a generic 3-CX KAK skeleton
// (8 Haar-random single-qubit locals around 3 CXs — a full-measure subset
// of SU(4)). On few qubits consecutive blocks often land on the same
// pair, which is exactly the workload two-qubit block fusion collapses:
// k stacked blocks on one pair are jointly still a single ≤3-CX unitary.
// n must be ≥ 2; everything is deterministic in seed.
func RandomSU4Blocks(n, blocks int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	haarU3 := func(q int) {
		th, ph, la := qmat.ZYZAngles(qmat.HaarRandom(rng))
		c.U3Gate(q, th, ph, la)
	}
	for i := 0; i < blocks; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		haarU3(a)
		haarU3(b)
		for layer := 0; layer < 3; layer++ {
			c.CX(a, b)
			haarU3(a)
			haarU3(b)
		}
	}
	return c
}

// RandomCircuit returns a random CX+U3 circuit (the "volume" style
// benchmark family).
func RandomCircuit(n, depth int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for d := 0; d < depth; d++ {
		for q := 0; q < n; q++ {
			c.U3Gate(q, rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
		}
		for q := rng.Intn(2); q+1 < n; q += 2 {
			c.CX(q, q+1)
		}
	}
	return c
}
