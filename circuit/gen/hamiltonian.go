package gen

import (
	"repro/circuit"
)

// Pauli identifies a single-qubit Pauli operator in a term.
type Pauli uint8

// Pauli labels.
const (
	PI Pauli = iota
	PX
	PY
	PZ
)

// PauliTerm is coeff · P_0 ⊗ P_1 ⊗ … (identity on unlisted qubits).
type PauliTerm struct {
	Coeff float64
	Ops   map[int]Pauli
}

// NewTerm builds a term from qubit→Pauli assignments.
func NewTerm(coeff float64, ops map[int]Pauli) PauliTerm {
	return PauliTerm{Coeff: coeff, Ops: ops}
}

// ParseTerm builds a term from a string like "XZY" acting on qubits
// offset, offset+1, … (identity letters skipped).
func ParseTerm(coeff float64, s string, offset int) PauliTerm {
	ops := map[int]Pauli{}
	for i, ch := range s {
		switch ch {
		case 'X':
			ops[offset+i] = PX
		case 'Y':
			ops[offset+i] = PY
		case 'Z':
			ops[offset+i] = PZ
		}
	}
	return PauliTerm{Coeff: coeff, Ops: ops}
}

// Hamiltonian is a sum of Pauli terms on N qubits.
type Hamiltonian struct {
	N     int
	Terms []PauliTerm
}

// EvolutionCircuit compiles exp(−i·H·t) by first-order Trotterization with
// the given number of steps: one parity-rotation gadget per term — basis
// changes (H for X, S†H for Y), a CNOT ladder onto the last involved qubit,
// RZ(2·coeff·t/steps), and the inverse ladder/basis. This is the standard
// structure Rustiq and similar Pauli-evolution compilers emit; adjacent
// gadgets with shared structure are left for the transpiler to fuse.
func (h Hamiltonian) EvolutionCircuit(t float64, steps int) *circuit.Circuit {
	c := circuit.New(h.N)
	if steps < 1 {
		steps = 1
	}
	dt := t / float64(steps)
	for s := 0; s < steps; s++ {
		for _, term := range h.Terms {
			appendPauliRotation(c, term, 2*term.Coeff*dt)
		}
	}
	return c
}

// appendPauliRotation emits exp(−i·θ/2·P) for the term's Pauli string.
func appendPauliRotation(c *circuit.Circuit, term PauliTerm, theta float64) {
	qubits := sortedQubits(term.Ops)
	if len(qubits) == 0 {
		return // global phase
	}
	// Basis changes into Z.
	for _, q := range qubits {
		switch term.Ops[q] {
		case PX:
			c.H(q)
		case PY:
			// Map Y → Z: apply H·S† (time order S† then H? matrix V with
			// V·Y·V† = Z: V = H·Sdg ⇒ time order Sdg, then H).
			c.Gate1(circuit.Sdg, q)
			c.H(q)
		}
	}
	// CNOT ladder computing the parity onto the last qubit.
	last := qubits[len(qubits)-1]
	for i := 0; i < len(qubits)-1; i++ {
		c.CX(qubits[i], qubits[i+1])
	}
	c.RZ(last, theta)
	for i := len(qubits) - 2; i >= 0; i-- {
		c.CX(qubits[i], qubits[i+1])
	}
	// Undo basis changes.
	for _, q := range qubits {
		switch term.Ops[q] {
		case PX:
			c.H(q)
		case PY:
			c.H(q)
			c.Gate1(circuit.S, q)
		}
	}
}

func sortedQubits(ops map[int]Pauli) []int {
	var qs []int
	for q, p := range ops {
		if p != PI {
			qs = append(qs, q)
		}
	}
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0 && qs[j] < qs[j-1]; j-- {
			qs[j], qs[j-1] = qs[j-1], qs[j]
		}
	}
	return qs
}

// Matrix builds the dense matrix of the Hamiltonian for n ≤ 10 qubits
// (used by tests to verify the evolution circuits).
func (h Hamiltonian) Matrix() [][]complex128 {
	dim := 1 << uint(h.N)
	m := make([][]complex128, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
	}
	for _, term := range h.Terms {
		// Walk basis states; Paulis act factor-wise.
		for col := 0; col < dim; col++ {
			row := col
			coeff := complex(term.Coeff, 0)
			for q, p := range term.Ops {
				bit := (col >> uint(q)) & 1
				switch p {
				case PX:
					row ^= 1 << uint(q)
				case PY:
					row ^= 1 << uint(q)
					if bit == 0 {
						coeff *= 1i
					} else {
						coeff *= -1i
					}
				case PZ:
					if bit == 1 {
						coeff = -coeff
					}
				}
			}
			m[row][col] += coeff
		}
	}
	return m
}
