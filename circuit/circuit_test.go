package circuit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gates"
	"repro/internal/qmat"
)

func TestMetrics(t *testing.T) {
	c := New(3)
	c.H(0).T(0).CX(0, 1).T(1).Tdg(0).S(2).RZ(2, 0.3).CZ(1, 2).X(0)
	if got := c.TCount(); got != 3 {
		t.Errorf("TCount = %d, want 3", got)
	}
	if got := c.CliffordCount(); got != 4 { // H, CX, S, CZ
		t.Errorf("CliffordCount = %d, want 4", got)
	}
	if got := c.TwoQubitCount(); got != 2 {
		t.Errorf("TwoQubitCount = %d, want 2", got)
	}
	if got := c.CountRotations(); got != 1 {
		t.Errorf("CountRotations = %d, want 1", got)
	}
}

func TestTDepthSequentialVsParallel(t *testing.T) {
	// Ts on distinct qubits: depth 1. Ts chained on one qubit: depth = count.
	par := New(3)
	par.T(0).T(1).T(2)
	if par.TDepth() != 1 {
		t.Errorf("parallel TDepth = %d, want 1", par.TDepth())
	}
	seq := New(1)
	seq.T(0).T(0).T(0)
	if seq.TDepth() != 3 {
		t.Errorf("sequential TDepth = %d, want 3", seq.TDepth())
	}
	// CX synchronizes depths.
	mix := New(2)
	mix.T(0).T(0).CX(0, 1).T(1)
	if mix.TDepth() != 3 {
		t.Errorf("mixed TDepth = %d, want 3", mix.TDepth())
	}
}

func TestTrivialAngle(t *testing.T) {
	for m := -8; m <= 8; m++ {
		if !TrivialAngle(float64(m) * math.Pi / 4) {
			t.Errorf("m·π/4 should be trivial (m=%d)", m)
		}
	}
	for _, a := range []float64{0.3, 1.0, math.Pi / 3, 2.5} {
		if TrivialAngle(a) {
			t.Errorf("%v should be nontrivial", a)
		}
	}
}

func TestTrivialU3Detection(t *testing.T) {
	c := New(1)
	c.U3Gate(0, 0, math.Pi/4, 0) // ≅ Rz(π/4) ≅ T: trivial
	if c.CountRotations() != 0 {
		t.Error("T-equivalent U3 counted as rotation")
	}
	c2 := New(1)
	c2.U3Gate(0, 0.4, 0.2, 0.9)
	if c2.CountRotations() != 1 {
		t.Error("generic U3 not counted")
	}
}

func TestMatrix1QMatchesQmat(t *testing.T) {
	cases := []struct {
		op   Op
		want qmat.M2
	}{
		{Op{G: H, Q: [2]int{0, -1}}, qmat.H()},
		{Op{G: RZ, Q: [2]int{0, -1}, P: [3]float64{0.7}}, qmat.Rz(0.7)},
		{Op{G: U3, Q: [2]int{0, -1}, P: [3]float64{0.5, 1.1, -0.2}}, qmat.U3(0.5, 1.1, -0.2)},
	}
	for _, tc := range cases {
		if !qmat.ApproxEqual(tc.op.Matrix1Q(), tc.want, 1e-12) {
			t.Errorf("Matrix1Q(%v) mismatch", tc.op.G)
		}
	}
}

func TestQASMOutput(t *testing.T) {
	c := New(2)
	c.H(0).CX(0, 1).RZ(1, 0.5).U3Gate(0, 1, 2, 3)
	q := c.QASM()
	for _, want := range []string{"OPENQASM 2.0", "qreg q[2]", "h q[0]", "cx q[0],q[1]", "rz(0.5) q[1]", "u3(1,2,3) q[0]"} {
		if !strings.Contains(q, want) {
			t.Errorf("QASM missing %q:\n%s", want, q)
		}
	}
}

func TestFromSequenceReversesOrder(t *testing.T) {
	// Matrix-product order [H, T] means T applied first: ops = [T, H].
	ops := FromSequence(gates.Sequence{gates.H, gates.T}, 3)
	if len(ops) != 2 || ops[0].G != T || ops[1].G != H {
		t.Fatalf("FromSequence wrong: %v", ops)
	}
	if ops[0].Q[0] != 3 {
		t.Fatal("wrong qubit")
	}
	// Identity gates dropped.
	ops = FromSequence(gates.Sequence{gates.I, gates.S}, 0)
	if len(ops) != 1 || ops[0].G != S {
		t.Fatal("identity not dropped")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(1)
	c.H(0)
	d := c.Clone()
	d.T(0)
	if len(c.Ops) != 1 {
		t.Fatal("clone aliases ops")
	}
}
