package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestQASMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New(4)
	for i := 0; i < 40; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(4))
		case 1:
			c.RZ(rng.Intn(4), rng.Float64()*6-3)
		case 2:
			c.U3Gate(rng.Intn(4), rng.Float64()*3, rng.Float64()*6, rng.Float64()*6)
		case 3:
			a := rng.Intn(4)
			c.CX(a, (a+1)%4)
		case 4:
			c.Tdg(rng.Intn(4))
		case 5:
			c.CZ(rng.Intn(4), (rng.Intn(3)+1+rng.Intn(4))%4)
		}
	}
	// Fix accidental same-qubit CZ.
	for i, op := range c.Ops {
		if op.G.IsTwoQubit() && op.Q[0] == op.Q[1] {
			c.Ops[i].Q[1] = (op.Q[0] + 1) % 4
		}
	}
	parsed, err := ParseQASM(c.QASM())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.N != c.N || len(parsed.Ops) != len(c.Ops) {
		t.Fatalf("round trip shape mismatch: %d/%d ops", len(parsed.Ops), len(c.Ops))
	}
	for i := range c.Ops {
		a, b := c.Ops[i], parsed.Ops[i]
		if a.G != b.G || a.Q != b.Q {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.P {
			if math.Abs(a.P[j]-b.P[j]) > 1e-9 {
				t.Fatalf("op %d angle mismatch: %v vs %v", i, a.P, b.P)
			}
		}
	}
}

func TestQASMAngleExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(pi/2) q[0];
rz(-pi/4) q[0];
rz(2*pi) q[0];
rz(0.25) q[0];
u2(0,pi) q[0];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Pi / 2, -math.Pi / 4, 2 * math.Pi, 0.25}
	for i, w := range want {
		if math.Abs(c.Ops[i].P[0]-w) > 1e-12 {
			t.Fatalf("angle %d = %v, want %v", i, c.Ops[i].P[0], w)
		}
	}
	// u2(φ,λ) = u3(π/2,φ,λ).
	last := c.Ops[len(c.Ops)-1]
	if last.G != U3 || math.Abs(last.P[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("u2 not lowered to u3: %+v", last)
	}
}

func TestQASMErrors(t *testing.T) {
	cases := []string{
		"qreg q[2];\nfoo q[0];",      // unknown gate
		"h q[0];",                    // gate before qreg
		"qreg q[2];\ncx q[0];",       // arity
		"qreg q[2];\nh q[5];",        // out of range
		"qreg q[2];\nrz(pi/0) q[0];", // division by zero
		"qreg q[2]\nh q[0];",         // missing semicolon
		"",                           // empty
	}
	for _, src := range cases {
		if _, err := ParseQASM(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestQASMIgnoresClassical(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
barrier q[0],q[1];
measure q[0] -> c[0];
cx q[0],q[1];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ops) != 2 {
		t.Fatalf("expected 2 ops, got %d", len(c.Ops))
	}
	if !strings.Contains(c.QASM(), "cx q[0],q[1]") {
		t.Fatal("re-emission broken")
	}
}

// TestQASMRoundTripTable: external-dialect sources — pi-expression angles
// (3*pi/2 style), u1/u2/p aliases, and ignored classical statements —
// must parse, re-emit through (*Circuit).QASM, and re-parse to the same
// op list (the emitted text is this package's dialect, so the second trip
// is exact).
func TestQASMRoundTripTable(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		ops    int
		angle0 float64 // first op's P[0]
	}{
		{
			name: "pi-products",
			src: `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(3*pi/2) q[0];
rx(-3*pi/4) q[1];
ry(pi*0.5) q[0];
rz(2*pi/3) q[1];
`,
			ops: 4, angle0: 3 * math.Pi / 2,
		},
		{
			name: "classical-ignored",
			src: `OPENQASM 2.0;
qreg q[3];
creg c[3];
h q[0];
barrier q[0],q[1],q[2];
rz(3*pi/2) q[1];
measure q[1] -> c[1];
cx q[1],q[2];
measure q[2] -> c[2];
`,
			ops: 3, angle0: 0,
		},
		{
			name: "aliases",
			src: `OPENQASM 2.0;
qreg q[1];
u1(3*pi/2) q[0];
p(-pi/8) q[0];
u(0.4,0.2,-1.1) q[0];
u2(pi/2,3*pi/2) q[0];
`,
			ops: 4, angle0: 3 * math.Pi / 2,
		},
		{
			name: "two-qubit-alphabet",
			src: `OPENQASM 2.0;
qreg q[3];
u3(0.3,1.1,-0.7) q[0];
cx q[0],q[1];
cz q[1],q[2];
swap q[0],q[2];
cnot q[2],q[0];
swap q[1],q[0];
`,
			ops: 6, angle0: 0.3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first, err := ParseQASM(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if len(first.Ops) != tc.ops {
				t.Fatalf("parsed %d ops, want %d", len(first.Ops), tc.ops)
			}
			if tc.angle0 != 0 && math.Abs(first.Ops[0].P[0]-tc.angle0) > 1e-12 {
				t.Fatalf("op 0 angle %v, want %v", first.Ops[0].P[0], tc.angle0)
			}
			second, err := ParseQASM(first.QASM())
			if err != nil {
				t.Fatalf("re-parsing emitted QASM: %v", err)
			}
			if second.N != first.N || len(second.Ops) != len(first.Ops) {
				t.Fatalf("round trip shape: %d/%d ops", len(second.Ops), len(first.Ops))
			}
			for i := range first.Ops {
				a, b := first.Ops[i], second.Ops[i]
				if a.G != b.G || a.Q != b.Q {
					t.Fatalf("op %d: %+v vs %+v", i, a, b)
				}
				for j := range a.P {
					if math.Abs(a.P[j]-b.P[j]) > 1e-12 {
						t.Fatalf("op %d angle %d: %v vs %v", i, j, a.P, b.P)
					}
				}
			}
		})
	}
}

// FuzzQASMRoundTrip: any source ParseQASM accepts must re-emit to text
// that parses back to the identical op list.
func FuzzQASMRoundTrip(f *testing.F) {
	f.Add("OPENQASM 2.0;\nqreg q[2];\nrz(3*pi/2) q[0];\ncx q[0],q[1];\n")
	f.Add("qreg q[1];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n")
	f.Add("qreg r[3];\nu2(0,pi) r[2];\nbarrier r[0];\ntdg r[1];\n")
	f.Add("qreg q[2];\nrx(-pi/4) q[1];\nrz(0.125) q[0];\nu3(1,2,3) q[1];\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseQASM(src)
		if err != nil {
			return // invalid input: nothing to round-trip
		}
		again, err := ParseQASM(c.QASM())
		if err != nil {
			t.Fatalf("emitted QASM does not re-parse: %v\n%s", err, c.QASM())
		}
		if again.N != c.N || len(again.Ops) != len(c.Ops) {
			t.Fatalf("round trip shape: %d/%d ops", len(again.Ops), len(c.Ops))
		}
		for i := range c.Ops {
			a, b := c.Ops[i], again.Ops[i]
			if a.G != b.G || a.Q != b.Q {
				t.Fatalf("op %d: %+v vs %+v", i, a, b)
			}
			for j := range a.P {
				if math.Abs(a.P[j]-b.P[j]) > 1e-9*(1+math.Abs(a.P[j])) {
					t.Fatalf("op %d angle %d: %v vs %v", i, j, a.P, b.P)
				}
			}
		}
	})
}
