// Package circuit is the public multi-qubit circuit IR: a flat list of
// operations in time order, with OpenQASM 2.0 input/output (ParseQASM /
// (*Circuit).QASM) and the resource metrics the paper reports (T count,
// T depth, non-Pauli Clifford count, nontrivial rotation count).
//
// It is the currency of the synth pass-pipeline API: synth passes consume
// and produce *circuit.Circuit values, and user code can build circuits
// programmatically (the fluent Add/H/RZ/... constructors) or import them
// from QASM text. The package was promoted from internal/circuit so
// callers outside this module can construct inputs for and inspect
// outputs of synth.NewPipeline.
package circuit

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/gates"
	"repro/internal/qmat"
)

// GateType enumerates the circuit-level gate alphabet: the discrete
// Clifford+T gates, parameterized rotations, and two-qubit gates.
type GateType uint8

// Gate types. Single-qubit discrete gates mirror package gates; RX/RY/RZ/U3
// are the continuous rotations to be synthesized; CX/CZ are the two-qubit
// Cliffords.
const (
	I GateType = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	RX
	RY
	RZ
	U3
	CX
	CZ
	SWAP
	numGateTypes
)

var gateNames = [numGateTypes]string{
	"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "u3", "cx", "cz", "swap",
}

// String returns the QASM-style mnemonic.
func (g GateType) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("gate(%d)", uint8(g))
}

// IsTwoQubit reports whether g acts on two qubits.
func (g GateType) IsTwoQubit() bool { return g == CX || g == CZ || g == SWAP }

// IsRotation reports whether g carries a continuous angle parameter.
func (g GateType) IsRotation() bool { return g == RX || g == RY || g == RZ || g == U3 }

// IsPauli reports whether g ∈ {I, X, Y, Z}.
func (g GateType) IsPauli() bool { return g <= Z }

// IsDiscrete1Q reports whether g is a parameter-free single-qubit gate.
func (g GateType) IsDiscrete1Q() bool { return g <= Tdg }

// Op is a single circuit operation. Q[1] is meaningful only for two-qubit
// gates (control = Q[0], target = Q[1] for CX). P holds up to three angles
// (θ, φ, λ for U3; θ for RX/RY/RZ).
type Op struct {
	G GateType
	Q [2]int
	P [3]float64
}

// Matrix1Q returns the 2x2 matrix of a single-qubit op.
func (o Op) Matrix1Q() qmat.M2 {
	switch o.G {
	case I:
		return qmat.I2()
	case X:
		return qmat.X
	case Y:
		return qmat.Y
	case Z:
		return qmat.Z
	case H:
		return qmat.H()
	case S:
		return qmat.S()
	case Sdg:
		return qmat.Sdg()
	case T:
		return qmat.T()
	case Tdg:
		return qmat.Tdg()
	case RX:
		return qmat.Rx(o.P[0])
	case RY:
		return qmat.Ry(o.P[0])
	case RZ:
		return qmat.Rz(o.P[0])
	case U3:
		return qmat.U3(o.P[0], o.P[1], o.P[2])
	}
	panic(fmt.Sprintf("circuit: Matrix1Q on %v", o.G))
}

// Circuit is a sequence of operations in time order (Ops[0] acts first).
type Circuit struct {
	N   int
	Ops []Op
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit { return &Circuit{N: n} }

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	return &Circuit{N: c.N, Ops: append([]Op(nil), c.Ops...)}
}

// Add appends an operation.
func (c *Circuit) Add(op Op) *Circuit {
	c.Ops = append(c.Ops, op)
	return c
}

// Convenience constructors.
func (c *Circuit) Gate1(g GateType, q int) *Circuit { return c.Add(Op{G: g, Q: [2]int{q, -1}}) }

// H adds a Hadamard.
func (c *Circuit) H(q int) *Circuit { return c.Gate1(H, q) }

// X adds a Pauli X.
func (c *Circuit) X(q int) *Circuit { return c.Gate1(X, q) }

// Z adds a Pauli Z.
func (c *Circuit) Z(q int) *Circuit { return c.Gate1(Z, q) }

// S adds an S gate.
func (c *Circuit) S(q int) *Circuit { return c.Gate1(S, q) }

// T adds a T gate.
func (c *Circuit) T(q int) *Circuit { return c.Gate1(T, q) }

// Tdg adds a T† gate.
func (c *Circuit) Tdg(q int) *Circuit { return c.Gate1(Tdg, q) }

// RX adds an x-rotation.
func (c *Circuit) RX(q int, theta float64) *Circuit {
	return c.Add(Op{G: RX, Q: [2]int{q, -1}, P: [3]float64{theta}})
}

// RY adds a y-rotation.
func (c *Circuit) RY(q int, theta float64) *Circuit {
	return c.Add(Op{G: RY, Q: [2]int{q, -1}, P: [3]float64{theta}})
}

// RZ adds a z-rotation.
func (c *Circuit) RZ(q int, theta float64) *Circuit {
	return c.Add(Op{G: RZ, Q: [2]int{q, -1}, P: [3]float64{theta}})
}

// U3Gate adds a general single-qubit rotation.
func (c *Circuit) U3Gate(q int, theta, phi, lambda float64) *Circuit {
	return c.Add(Op{G: U3, Q: [2]int{q, -1}, P: [3]float64{theta, phi, lambda}})
}

// CX adds a controlled-X (control ctl, target tgt).
func (c *Circuit) CX(ctl, tgt int) *Circuit { return c.Add(Op{G: CX, Q: [2]int{ctl, tgt}}) }

// CZ adds a controlled-Z.
func (c *Circuit) CZ(a, b int) *Circuit { return c.Add(Op{G: CZ, Q: [2]int{a, b}}) }

// Swap adds a SWAP of two qubits.
func (c *Circuit) Swap(a, b int) *Circuit { return c.Add(Op{G: SWAP, Q: [2]int{a, b}}) }

// TCount returns the number of T/T† gates (rotations are NOT counted; run
// the synthesis pipeline first to lower them).
func (c *Circuit) TCount() int {
	n := 0
	for _, op := range c.Ops {
		if op.G == T || op.G == Tdg {
			n++
		}
	}
	return n
}

// TDepth returns the T count along the critical path (paper §4, Metrics):
// the number of T-layers when gates are scheduled greedily.
func (c *Circuit) TDepth() int {
	depth := make([]int, c.N)
	for _, op := range c.Ops {
		if op.G.IsTwoQubit() {
			d := depth[op.Q[0]]
			if depth[op.Q[1]] > d {
				d = depth[op.Q[1]]
			}
			depth[op.Q[0]], depth[op.Q[1]] = d, d
			continue
		}
		if op.G == T || op.G == Tdg {
			depth[op.Q[0]]++
		}
	}
	max := 0
	for _, d := range depth {
		if d > max {
			max = d
		}
	}
	return max
}

// CliffordCount returns the number of non-Pauli Clifford gates: H, S, S†
// and the two-qubit gates (Paulis are free under Pauli-frame tracking).
func (c *Circuit) CliffordCount() int {
	n := 0
	for _, op := range c.Ops {
		switch op.G {
		case H, S, Sdg, CX, CZ:
			n++
		case SWAP:
			n += 3 // SWAP = 3 CX
		}
	}
	return n
}

// Metrics is a point-in-time snapshot of every resource metric the paper
// reports — the currency of before/after comparisons (the optimize
// subsystem records one per optimizer run, and stats payloads derive
// their deltas from a pair).
type Metrics struct {
	Qubits    int `json:"qubits"`
	Ops       int `json:"ops"`
	Rotations int `json:"rotations"`
	TCount    int `json:"t_count"`
	TDepth    int `json:"t_depth"`
	Clifford  int `json:"clifford"`
	TwoQubit  int `json:"two_qubit"`
}

// Metrics computes the full metric snapshot in one pass-friendly call.
func (c *Circuit) Metrics() Metrics {
	return Metrics{
		Qubits:    c.N,
		Ops:       len(c.Ops),
		Rotations: c.CountRotations(),
		TCount:    c.TCount(),
		TDepth:    c.TDepth(),
		Clifford:  c.CliffordCount(),
		TwoQubit:  c.TwoQubitCount(),
	}
}

// TwoQubitCount returns the number of two-qubit (CX/CZ/SWAP) gates.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, op := range c.Ops {
		if op.G.IsTwoQubit() {
			n++
		}
	}
	return n
}

// trivialTol is the tolerance for classifying rotations as trivial.
const trivialTol = 1e-9

// TrivialAngle reports whether θ is an integer multiple of π/4 (such
// rotations cost at most one T gate — footnote 3 of the paper).
func TrivialAngle(theta float64) bool {
	r := math.Mod(theta, math.Pi/4)
	if r < 0 {
		r += math.Pi / 4
	}
	return r < trivialTol || math.Pi/4-r < trivialTol
}

// CountRotations returns the number of nontrivial rotations: RX/RY/RZ with
// angle not a multiple of π/4, and U3 gates whose matrix needs more than
// one T gate (not within tolerance of a T-count-≤1 operator).
func (c *Circuit) CountRotations() int {
	n := 0
	for _, op := range c.Ops {
		if op.G == RX || op.G == RY || op.G == RZ {
			if !TrivialAngle(op.P[0]) {
				n++
			}
		} else if op.G == U3 {
			if !trivialU3(op) {
				n++
			}
		}
	}
	return n
}

// trivialU3 reports whether the U3's matrix is (up to phase) an operator
// with T count ≤ 1.
func trivialU3(op Op) bool {
	m := op.Matrix1Q()
	for _, e := range gates.Shared(1).Collect(0, 1) {
		if qmat.Distance(m, e.M) < 1e-7 {
			return true
		}
	}
	return false
}

// QASM renders the circuit as OpenQASM 2.0.
func (c *Circuit) QASM() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n", c.N)
	for _, op := range c.Ops {
		switch {
		case op.G == U3:
			fmt.Fprintf(&b, "u3(%g,%g,%g) q[%d];\n", op.P[0], op.P[1], op.P[2], op.Q[0])
		case op.G.IsRotation():
			fmt.Fprintf(&b, "%s(%g) q[%d];\n", op.G, op.P[0], op.Q[0])
		case op.G.IsTwoQubit():
			fmt.Fprintf(&b, "%s q[%d],q[%d];\n", op.G, op.Q[0], op.Q[1])
		default:
			fmt.Fprintf(&b, "%s q[%d];\n", op.G, op.Q[0])
		}
	}
	return b.String()
}

// FromSequence converts a gates.Sequence (matrix-product order, leftmost
// applied last) into time-ordered ops on qubit q.
func FromSequence(seq gates.Sequence, q int) []Op {
	out := make([]Op, 0, len(seq))
	for i := len(seq) - 1; i >= 0; i-- {
		var g GateType
		switch seq[i] {
		case gates.I:
			continue
		case gates.X:
			g = X
		case gates.Y:
			g = Y
		case gates.Z:
			g = Z
		case gates.H:
			g = H
		case gates.S:
			g = S
		case gates.Sdg:
			g = Sdg
		case gates.T:
			g = T
		case gates.Tdg:
			g = Tdg
		}
		out = append(out, Op{G: g, Q: [2]int{q, -1}})
	}
	return out
}
