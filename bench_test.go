// Benchmarks regenerating every table and figure of the paper at
// CI-friendly scale (one per artifact, named after it), plus
// microbenchmarks and ablations for the design choices DESIGN.md calls
// out. Custom metrics surface the headline numbers: reduction ratios are
// reported via b.ReportMetric so `go test -bench` output doubles as a
// miniature results table. Full-scale runs go through cmd/experiments.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/gates"
	"repro/internal/gridsynth"
	"repro/internal/qmat"
)

// benchCfg is the shared miniature scale for artifact benches.
func benchCfg() expt.Config {
	return expt.Config{
		N:          6,
		Samples:    600,
		MaxT:       5,
		Sites:      3,
		BenchLimit: 8,
		SimQubits:  5,
		FidTrials:  80,
		Seed:       11,
		Workers:    8,
	}
}

// runArtifact executes one experiment per benchmark iteration and reports
// a headline metric extracted from its table when available.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, err := expt.Find(id)
		if err != nil {
			b.Fatal(err)
		}
		tab, err := e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		b.ReportMetric(float64(len(tab.Rows)), "rows")
	}
}

// One bench per paper artifact (Figures 2, 3b, 6–14 and Tables 1, 2).
func BenchmarkFig02_Headline(b *testing.B)          { runArtifact(b, "fig2") }
func BenchmarkFig03b_RotationRatio(b *testing.B)    { runArtifact(b, "fig3b") }
func BenchmarkFig06_TranspileSettings(b *testing.B) { runArtifact(b, "fig6") }
func BenchmarkFig07_RQ1Scatter(b *testing.B)        { runArtifact(b, "fig7") }
func BenchmarkTab01_Reductions(b *testing.B)        { runArtifact(b, "tab1") }
func BenchmarkFig08_SynthesisTime(b *testing.B)     { runArtifact(b, "fig8") }
func BenchmarkFig09_ErrorTradeoff(b *testing.B)     { runArtifact(b, "fig9") }
func BenchmarkTab02_DatasetStats(b *testing.B)      { runArtifact(b, "tab2") }
func BenchmarkFig10_CategoryRatios(b *testing.B)    { runArtifact(b, "fig10") }
func BenchmarkFig11_CircuitInfidelity(b *testing.B) { runArtifact(b, "fig11") }
func BenchmarkFig12_BQSKitCompare(b *testing.B)     { runArtifact(b, "fig12") }
func BenchmarkFig13_AppFidelity(b *testing.B)       { runArtifact(b, "fig13") }
func BenchmarkFig14_PostOptimize(b *testing.B)      { runArtifact(b, "fig14") }

// --- Core microbenchmarks ---

func BenchmarkTrasynSynthesizeT10(b *testing.B) {
	cfg := core.DefaultConfig(gates.Shared(5), 5, 2, 1000)
	cfg.Rng = rand.New(rand.NewSource(1))
	u := qmat.HaarRandom(rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(float64(res.TCount), "tcount")
			b.ReportMetric(res.Error, "error")
		}
	}
}

func BenchmarkTrasynSynthesizeT20(b *testing.B) {
	cfg := core.DefaultConfig(gates.Shared(5), 5, 4, 2000)
	cfg.MinSites = 4
	cfg.Rng = rand.New(rand.NewSource(1))
	u := qmat.HaarRandom(rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(float64(res.TCount), "tcount")
			b.ReportMetric(res.Error, "error")
		}
	}
}

func BenchmarkGridsynthRz1e2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gridsynth.Rz(1.0+float64(i%5)*0.21, 1e-2, gridsynth.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridsynthRz1e4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gridsynth.Rz(1.0+float64(i%5)*0.21, 1e-4, gridsynth.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices from DESIGN.md) ---

// AblationBudgetSplit: same total T budget, different per-tensor splits.
// Small-budget/long chains are cheaper per sample and finer-grained.
func BenchmarkAblationBudgetM5L4(b *testing.B)  { ablationSplit(b, 5, 4) }
func BenchmarkAblationBudgetM10L2(b *testing.B) { ablationSplit(b, 10, 2) }

func ablationSplit(b *testing.B, m, l int) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(3)))
	cfg := core.DefaultConfig(gates.Shared(m), m, l, 1500)
	cfg.MinSites = l
	cfg.Rng = rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(res.Error, "error")
			b.ReportMetric(float64(res.TCount), "tcount")
		}
	}
}

// AblationSamplerBeamVsRandom: deterministic beam search vs perfect
// sampling at matched candidate counts.
func BenchmarkAblationSamplerRandom(b *testing.B) { ablationSampler(b, false) }
func BenchmarkAblationSamplerBeam(b *testing.B)   { ablationSampler(b, true) }

func ablationSampler(b *testing.B, beam bool) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(5)))
	cfg := core.DefaultConfig(gates.Shared(5), 5, 3, 1024)
	cfg.MinSites = 3
	cfg.UseBeam = beam
	cfg.BeamWidth = 256
	cfg.Rng = rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(res.Error, "error")
		}
	}
}

// AblationRewrite: step-3 post-processing on vs off (Clifford savings).
func BenchmarkAblationWithRewrite(b *testing.B) {
	seqLen := 0
	tab := gates.Shared(5)
	rng := rand.New(rand.NewSource(7))
	alphabet := []gates.Gate{gates.H, gates.S, gates.T, gates.X, gates.Z, gates.Tdg, gates.Sdg}
	seqs := make([]gates.Sequence, 32)
	for i := range seqs {
		s := make(gates.Sequence, 60)
		for j := range s {
			s[j] = alphabet[rng.Intn(len(alphabet))]
		}
		seqs[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := core.Rewrite(seqs[i%len(seqs)], tab)
		seqLen += len(out)
	}
	if b.N > 0 {
		b.ReportMetric(float64(seqLen)/float64(b.N), "outlen")
	}
}

func BenchmarkEnumerationT8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := gates.BuildTable(8)
		if tab.Count() != 24*(3*256-2) {
			b.Fatal("bad count")
		}
	}
}
