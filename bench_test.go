// Benchmarks regenerating every table and figure of the paper at
// CI-friendly scale (one per artifact, named after it). Custom metrics
// surface the headline numbers: reduction ratios are reported via
// b.ReportMetric so `go test -bench` output doubles as a miniature
// results table. Full-scale runs go through cmd/experiments; the engine
// microbenchmarks and design-choice ablations live next to their engines
// (internal/core, internal/gridsynth, internal/gates), and the service
// layer's BenchmarkCompileBatch lives in the synth package.
package repro

import (
	"testing"

	"repro/internal/expt"
)

// benchCfg is the shared miniature scale for artifact benches.
func benchCfg() expt.Config {
	return expt.Config{
		N:          6,
		Samples:    600,
		MaxT:       5,
		Sites:      3,
		BenchLimit: 8,
		SimQubits:  5,
		FidTrials:  80,
		Seed:       11,
		Workers:    8,
	}
}

// runArtifact executes one experiment per benchmark iteration and reports
// a headline metric extracted from its table when available.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, err := expt.Find(id)
		if err != nil {
			b.Fatal(err)
		}
		tab, err := e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		b.ReportMetric(float64(len(tab.Rows)), "rows")
	}
}

// One bench per paper artifact (Figures 2, 3b, 6–14 and Tables 1, 2).
func BenchmarkFig02_Headline(b *testing.B)          { runArtifact(b, "fig2") }
func BenchmarkFig03b_RotationRatio(b *testing.B)    { runArtifact(b, "fig3b") }
func BenchmarkFig06_TranspileSettings(b *testing.B) { runArtifact(b, "fig6") }
func BenchmarkFig07_RQ1Scatter(b *testing.B)        { runArtifact(b, "fig7") }
func BenchmarkTab01_Reductions(b *testing.B)        { runArtifact(b, "tab1") }
func BenchmarkFig08_SynthesisTime(b *testing.B)     { runArtifact(b, "fig8") }
func BenchmarkFig09_ErrorTradeoff(b *testing.B)     { runArtifact(b, "fig9") }
func BenchmarkTab02_DatasetStats(b *testing.B)      { runArtifact(b, "tab2") }
func BenchmarkFig10_CategoryRatios(b *testing.B)    { runArtifact(b, "fig10") }
func BenchmarkFig11_CircuitInfidelity(b *testing.B) { runArtifact(b, "fig11") }
func BenchmarkFig12_BQSKitCompare(b *testing.B)     { runArtifact(b, "fig12") }
func BenchmarkFig13_AppFidelity(b *testing.B)       { runArtifact(b, "fig13") }
func BenchmarkFig14_PostOptimize(b *testing.B)      { runArtifact(b, "fig14") }
