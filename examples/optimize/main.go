// T-count optimizer demo: compile the same QAOA circuit with the
// optimizer off and on (synth.WithOptimize), and run the optimize
// package's fixed-point driver standalone on a Solovay–Kitaev baseline
// — the workload where peephole rewriting reclaims the most, since SK
// sequences are famously far from minimal. Against trasyn/gridsynth
// output the reclaimed T count is near zero: their per-rotation
// sequences are already minimal, which is exactly the paper's RQ5
// finding (ZX-style post-optimization cannot substitute for better
// synthesis).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/circuit/gen"
	"repro/optimize"
	"repro/synth"
)

func main() {
	qaoa := gen.QAOAMaxCut(8, 2, 1)
	fmt.Printf("QAOA MaxCut circuit: %d qubits, %d ops, %d rotations\n",
		qaoa.N, len(qaoa.Ops), qaoa.CountRotations())
	fmt.Printf("registered optimizers: %v\n\n", optimize.List())

	ctx := context.Background()
	const eps = 0.3

	// Same pipeline twice: optimizer off vs fully on (level 2 = parity
	// folding pre-lowering + fixed-point Clifford+T peephole after).
	run := func(level int) *synth.PipelineResult {
		pl, err := synth.NewPipelineFor("gridsynth",
			synth.WithCircuitEpsilon(eps), synth.WithOptimize(level))
		if err != nil {
			log.Fatal(err)
		}
		res, err := pl.Run(ctx, qaoa)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	off, on := run(0), run(2)
	fmt.Printf("gridsynth  -opt 0: T=%d Clifford=%d\n", off.Circuit.TCount(), off.Circuit.CliffordCount())
	fmt.Printf("gridsynth  -opt 2: T=%d Clifford=%d", on.Circuit.TCount(), on.Circuit.CliffordCount())
	if o := on.Stats.Opt; o != nil {
		fmt.Printf("  (optct: T %d→%d in %d sweeps, rule hits %v)", o.TCountBefore, o.TCountAfter, o.Iterations, o.RuleHits)
	}
	fmt.Println()

	// The reclamation story: SK's recursive sequences carry massive
	// redundancy, and the driver strips it.
	sk, err := synth.NewPipelineFor("sk", synth.WithCircuitEpsilon(eps))
	if err != nil {
		log.Fatal(err)
	}
	skRes, err := sk.Run(ctx, qaoa)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := optimize.Run(skRes.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSolovay–Kitaev baseline, standalone optimize.Run:\n")
	fmt.Printf("  T %d → %d (%.1f%% reclaimed), Clifford %d → %d\n",
		opt.Before.TCount, opt.After.TCount,
		100*float64(opt.TSaved())/float64(opt.Before.TCount),
		opt.Before.Clifford, opt.After.Clifford)
	fmt.Printf("  %d sweeps (converged=%v), rule hits %v\n",
		opt.Iterations, opt.Converged, opt.RuleHits)
}
