// Resource estimation extension: translate the T-count savings of the U3
// workflow into fault-tolerant machine resources (distillation rounds,
// factory qubits, wall-clock) with the standard surface-code model — the
// "why T gates matter" arithmetic from the paper's introduction, with both
// workflows compiled through synth.Compiler.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/resource"
	"repro/internal/suite"
	"repro/synth"
)

func main() {
	circ := suite.TFIM(10, 1.0, 0.7).EvolutionCircuit(0.5, 2)
	fmt.Printf("TFIM(10) Trotter circuit: %d rotations\n", circ.CountRotations())

	ctx := context.Background()
	tc, err := synth.NewCompilerFor("trasyn", synth.Request{
		Epsilon: 0.007, TBudget: 5, Tensors: 4, Samples: 2000, Seed: synth.Seed(7),
	})
	if err != nil {
		log.Fatal(err)
	}
	u3res, err := tc.CompileCircuit(ctx, circ)
	if err != nil {
		log.Fatal(err)
	}
	epsRz := 0.007
	if u3res.Stats.Rotations > 0 {
		epsRz = u3res.Stats.ErrorBound / float64(u3res.Stats.Rotations)
	}
	gc, err := synth.NewCompilerFor("gridsynth", synth.Request{Epsilon: epsRz})
	if err != nil {
		log.Fatal(err)
	}
	rzres, err := gc.CompileCircuit(ctx, circ)
	if err != nil {
		log.Fatal(err)
	}

	params := resource.DefaultParams()
	for _, w := range []struct {
		name string
		c    interface {
			TCount() int
			TDepth() int
		}
	}{
		{"trasyn (U3 IR)", u3res.Circuit},
		{"gridsynth (Rz IR)", rzres.Circuit},
	} {
		est := params.Estimate(circ.N, w.c.TCount(), w.c.TDepth())
		fmt.Printf("\n%s:\n", w.name)
		fmt.Printf("  T count / magic states : %d\n", est.MagicStates)
		fmt.Printf("  code distance          : %d (%d phys/logical)\n", est.CodeDistance, est.PhysPerLogical)
		fmt.Printf("  distillation rounds    : %d (factory: %d phys qubits)\n", est.DistillRounds, est.FactoryQubits)
		fmt.Printf("  data block             : %d phys qubits\n", est.DataQubits)
		fmt.Printf("  execution              : %.2e cycles ≈ %.3f s\n", est.ExecCycles, est.ExecSeconds)
	}
	fmt.Printf("\nwall-clock speedup from the T-count reduction: %.2fx\n",
		float64(rzres.Circuit.TCount())/float64(u3res.Circuit.TCount()))
}
