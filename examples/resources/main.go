// Resource estimation extension: translate the T-count savings of the U3
// workflow into fault-tolerant machine resources (distillation rounds,
// factory qubits, wall-clock) with the standard surface-code model — the
// "why T gates matter" arithmetic from the paper's introduction. Both
// workflows run through the synth pass pipeline, whose EstimateResources
// pass attaches the footprint to the run's stats directly.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/suite"
	"repro/synth"
)

func main() {
	circ := suite.TFIM(10, 1.0, 0.7).EvolutionCircuit(0.5, 2)
	fmt.Printf("TFIM(10) Trotter circuit: %d rotations\n", circ.CountRotations())

	const circuitEps = 0.3 // shared circuit-level budget for both IRs
	ctx := context.Background()
	tp, err := synth.NewPipelineFor("trasyn",
		synth.WithRequest(synth.Request{TBudget: 5, Tensors: 4, Samples: 2000, Seed: synth.Seed(7)}),
		synth.WithCircuitEpsilon(circuitEps))
	if err != nil {
		log.Fatal(err)
	}
	u3res, err := tp.Run(ctx, circ)
	if err != nil {
		log.Fatal(err)
	}
	gp, err := synth.NewPipelineFor("gridsynth", synth.WithCircuitEpsilon(circuitEps))
	if err != nil {
		log.Fatal(err)
	}
	rzres, err := gp.Run(ctx, circ)
	if err != nil {
		log.Fatal(err)
	}

	for _, w := range []struct {
		name string
		res  *synth.PipelineResult
	}{
		{"trasyn (U3 IR)", u3res},
		{"gridsynth (Rz IR)", rzres},
	} {
		est := w.res.Stats.Resources // filled by the EstimateResources pass
		fmt.Printf("\n%s: T=%d T-depth=%d (Σerr %.2e within budget %.1e)\n",
			w.name, w.res.Circuit.TCount(), w.res.Circuit.TDepth(),
			w.res.Stats.ErrorBound, circuitEps)
		fmt.Printf("  T count / magic states : %d\n", est.MagicStates)
		fmt.Printf("  code distance          : %d (%d phys/logical)\n", est.CodeDistance, est.PhysPerLogical)
		fmt.Printf("  distillation rounds    : %d (factory: %d phys qubits)\n", est.DistillRounds, est.FactoryQubits)
		fmt.Printf("  data block             : %d phys qubits\n", est.DataQubits)
		fmt.Printf("  execution              : %.2e cycles ≈ %.3f s\n", est.ExecCycles, est.ExecSeconds)
	}
	fmt.Printf("\nwall-clock speedup from the T-count reduction: %.2fx\n",
		float64(rzres.Circuit.TCount())/float64(u3res.Circuit.TCount()))
}
