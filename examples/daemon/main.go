// Daemon workflow: the service-layer economics in one runnable demo. A
// synth/serve server is started in-process (what cmd/synthd wraps), the
// Go client compiles the same QAOA circuit twice — cold, then served from
// the shared cache — and a snapshot round-trip shows the cache surviving
// a "restart": the second server's first request is already warm. The
// point is the paper's amortization argument made operational: every
// synthesized sequence is a pure function of (rotation, ε, config), so a
// resident daemon pays for each one exactly once, across requests,
// clients, and restarts.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	"repro/internal/suite"
	"repro/synth"
	"repro/synth/serve"
	"repro/synth/serve/client"
)

func main() {
	qasm := suite.QAOAMaxCut(8, 2, 1).QASM()
	req := serve.CompileRequest{QASM: qasm, Backend: "gridsynth", Eps: 0.3}
	ctx := context.Background()

	// First daemon lifetime: cold cache.
	cache := synth.NewCache(0)
	hs := httptest.NewServer(serve.New(serve.Config{Cache: cache}).Handler())
	cl := client.New(hs.URL)

	cold, err := cl.Compile(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold:  T=%d  unique=%d  hits=%d  misses=%d  wall=%.1fms\n",
		cold.Stats.TCount, cold.Stats.Unique, cold.Stats.Hits, cold.Stats.Misses, cold.Stats.WallMs)

	warm, err := cl.Compile(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm:  T=%d  unique=%d  hits=%d  misses=%d  wall=%.1fms  (%.0fx faster)\n",
		warm.Stats.TCount, warm.Stats.Unique, warm.Stats.Hits, warm.Stats.Misses, warm.Stats.WallMs,
		cold.Stats.WallMs/warm.Stats.WallMs)

	// Graceful "shutdown": flush the snapshot, stop the server.
	snap := filepath.Join(os.TempDir(), "synthd-example-cache.json")
	defer os.Remove(snap)
	if err := cache.SaveFile(snap); err != nil {
		log.Fatal(err)
	}
	hs.Close()

	// Second lifetime: a fresh cache reloads the snapshot, so the first
	// request of the new process is already warm.
	cache2 := synth.NewCache(0)
	n, err := cache2.LoadFile(snap)
	if err != nil {
		log.Fatal(err)
	}
	hs2 := httptest.NewServer(serve.New(serve.Config{Cache: cache2}).Handler())
	defer hs2.Close()
	restarted, err := client.New(hs2.URL).Compile(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart: reloaded %d sequences; first request: unique=%d hits=%d wall=%.1fms\n",
		n, restarted.Stats.Unique, restarted.Stats.Hits, restarted.Stats.WallMs)
}
