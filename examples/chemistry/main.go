// Hamiltonian-simulation workflow: compile a Heisenberg-chain Trotter
// circuit (X/Y/Z rotations — the "quantum Hamiltonian" category that
// benefits most from the U3 IR) through the synth pass pipeline with both
// backends under one circuit-level error budget, and check the final
// state fidelity of the lowered circuit by simulation.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/circuit/gen"
	"repro/internal/sim"
	"repro/synth"
)

func main() {
	h := gen.Heisenberg(5, 1.0)
	circ := h.EvolutionCircuit(0.4, 2)
	fmt.Printf("Heisenberg(5) Trotter circuit: %d ops, %d rotations\n",
		len(circ.Ops), circ.CountRotations())

	// One error budget for the whole circuit; each pipeline splits it
	// across the rotation count of its own IR (uniform strategy).
	const circuitEps = 0.15
	ctx := context.Background()
	tp, err := synth.NewPipelineFor("trasyn",
		synth.WithRequest(synth.Request{TBudget: 5, Tensors: 4, Samples: 2500, Seed: synth.Seed(4)}),
		synth.WithCircuitEpsilon(circuitEps))
	if err != nil {
		log.Fatal(err)
	}
	u3res, err := tp.Run(ctx, circ)
	if err != nil {
		log.Fatal(err)
	}
	gp, err := synth.NewPipelineFor("gridsynth", synth.WithCircuitEpsilon(circuitEps))
	if err != nil {
		log.Fatal(err)
	}
	rzres, err := gp.Run(ctx, circ)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %8s %8s %10s %12s\n", "workflow", "T", "Cliff", "T-depth", "Σ synth err")
	fmt.Printf("%-10s %8d %8d %10d %12.2e\n", "trasyn",
		u3res.Circuit.TCount(), u3res.Circuit.CliffordCount(), u3res.Circuit.TDepth(), u3res.Stats.ErrorBound)
	fmt.Printf("%-10s %8d %8d %10d %12.2e\n", "gridsynth",
		rzres.Circuit.TCount(), rzres.Circuit.CliffordCount(), rzres.Circuit.TDepth(), rzres.Stats.ErrorBound)
	fmt.Printf("(both within the shared circuit budget %.2e)\n", circuitEps)

	// End-to-end check: the lowered circuits must reproduce the original
	// state on |0…0⟩ to within the synthesis budget.
	ideal := sim.RunCircuit(circ)
	fU3 := sim.StateFidelity(ideal, sim.RunCircuit(u3res.Circuit))
	fRz := sim.StateFidelity(ideal, sim.RunCircuit(rzres.Circuit))
	fmt.Printf("\nstate fidelity vs. original: trasyn %.6f, gridsynth %.6f\n", fU3, fRz)

	// Under logical noise, fewer gates win (RQ4's mechanism).
	nm := sim.NoiseModel{Rate: 1e-4}
	rng := rand.New(rand.NewSource(5))
	nU3 := sim.ImportanceFidelity(u3res.Circuit, nm, 400, rng)
	nRz := sim.ImportanceFidelity(rzres.Circuit, nm, 400, rng)
	fmt.Printf("under 1e-4 depolarizing on non-Pauli gates: trasyn %.5f, gridsynth %.5f\n", nU3, nRz)
	fmt.Printf("infidelity ratio: %.2fx (higher favors trasyn)\n", (1-nRz)/(1-nU3))
}
