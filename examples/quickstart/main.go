// Quickstart: synthesize one arbitrary single-qubit unitary through the
// unified synth.Backend API — trasyn (the paper's tensor-network search)
// against the gridsynth (three-Rz) baseline, plus the "auto" backend that
// races the two and keeps the lower-T-count winner. The paper's core claim
// in ~50 lines, with every engine behind the same Request/Result pair.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/qmat"
	"repro/synth"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	u := qmat.HaarRandom(rng)
	fmt.Println("target: a Haar-random single-qubit unitary")
	fmt.Println("registered backends:", synth.List())

	ctx := context.Background()
	trasyn, _ := synth.Lookup("trasyn")
	gridsynth, _ := synth.Lookup("gridsynth")

	// trasyn: direct U3 synthesis over Clifford+T. Seed is explicit — the
	// new API distinguishes synth.Seed(0) from "unset" (default seed).
	res, err := trasyn.Synthesize(ctx, u, synth.Request{
		TBudget: 5, Tensors: 4, Samples: 3000, Seed: synth.Seed(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrasyn:    T=%d, Clifford=%d, error=%.2e (wall %s)\n",
		res.TCount, res.Clifford, res.Error, res.Wall.Round(1e6))
	fmt.Printf("sequence:  %v\n", res.Seq)

	// Verify independently: the sequence's product must realize the error.
	d := qmat.Distance(u, res.Seq.Matrix())
	fmt.Printf("verified:  D(U, product) = %.2e\n", d)

	// Baseline: decompose into three Rz rotations, synthesize each with
	// gridsynth at a matched error budget.
	g, err := gridsynth.Synthesize(ctx, u, synth.Request{Epsilon: res.Error})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngridsynth: T=%d, Clifford=%d, error=%.2e\n", g.TCount, g.Clifford, g.Error)
	fmt.Printf("\nT-count reduction: %.2fx  (paper: ~3x at matched error)\n",
		float64(g.TCount)/float64(res.TCount))

	// The "auto" backend races both under one epsilon and reports the
	// winner in Result.Backend.
	auto, _ := synth.Lookup("auto")
	a, err := auto.Synthesize(ctx, u, synth.Request{Epsilon: 1e-2, Samples: 3000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauto @ 1e-2: winner=%s T=%d error=%.2e\n", a.Backend, a.TCount, a.Error)
}
