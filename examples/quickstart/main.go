// Quickstart: synthesize one arbitrary single-qubit unitary with trasyn and
// compare against the gridsynth (three-Rz) baseline — the paper's core
// claim in ~40 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	u := repro.HaarRandom(rng)
	fmt.Println("target: a Haar-random single-qubit unitary")

	// trasyn: direct U3 synthesis over Clifford+T.
	res := repro.Synthesize(u, repro.SynthOptions{TBudget: 5, Tensors: 4, Samples: 3000})
	fmt.Printf("\ntrasyn:    T=%d, Clifford=%d, error=%.2e\n", res.TCount, res.Clifford, res.Error)
	fmt.Printf("sequence:  %v\n", res.Seq)

	// Verify independently: the sequence's product must realize the error.
	d := repro.Distance(u, res.Seq.Matrix())
	fmt.Printf("verified:  D(U, product) = %.2e\n", d)

	// Baseline: decompose into three Rz rotations, synthesize each with
	// gridsynth at a matched error budget.
	g, err := repro.GridsynthU3(u, res.Error)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngridsynth: T=%d, Clifford=%d, error=%.2e\n", g.TCount, g.Clifford, g.Error)
	fmt.Printf("\nT-count reduction: %.2fx  (paper: ~3x at matched error)\n",
		float64(g.TCount)/float64(res.TCount))
}
