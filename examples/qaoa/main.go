// QAOA workflow (§3.4): build a 3-regular MaxCut QAOA circuit and compile
// it to Clifford+T through synth.Compiler — trasyn on the CX+U3 IR vs
// gridsynth on the CX+H+RZ IR. The commutation pass merges the mixer RX
// gates through CX targets, which is where the paper's consistent ~1.6x T
// reduction on QAOA comes from; the compiler's shared cache turns the many
// repeated QAOA angles into cache hits.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/suite"
	"repro/synth"
)

func main() {
	qaoa := suite.QAOAMaxCut(8, 2, 1) // 8 qubits, depth 2
	fmt.Printf("QAOA MaxCut circuit: %d qubits, %d ops, %d rotations\n",
		qaoa.N, len(qaoa.Ops), qaoa.CountRotations())

	ctx := context.Background()

	// U3 workflow with trasyn.
	tc, err := synth.NewCompilerFor("trasyn", synth.Request{
		Epsilon: 0.007, TBudget: 5, Tensors: 4, Samples: 2500, Seed: synth.Seed(3),
	})
	if err != nil {
		log.Fatal(err)
	}
	u3res, err := tc.CompileCircuit(ctx, qaoa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nU3 IR after transpile: %d rotations (setting: level %d, commute %v)\n",
		u3res.IRRotations, u3res.Setting.Level, u3res.Setting.Commute)
	fmt.Printf("trasyn-lowered:  T=%d  T-depth=%d  Clifford=%d  Σerr=%.2e\n",
		u3res.Circuit.TCount(), u3res.Circuit.TDepth(), u3res.Circuit.CliffordCount(),
		u3res.Stats.ErrorBound)
	fmt.Printf("cache: %d unique syntheses for %d rotations (%d hits, %d misses)\n",
		u3res.Unique, u3res.Stats.Rotations, u3res.Hits, u3res.Misses)

	// Rz workflow with gridsynth at a matched per-rotation budget.
	epsRz := 0.007
	if u3res.Stats.Rotations > 0 {
		epsRz = u3res.Stats.ErrorBound / float64(u3res.Stats.Rotations)
	}
	gc, err := synth.NewCompilerFor("gridsynth", synth.Request{Epsilon: epsRz})
	if err != nil {
		log.Fatal(err)
	}
	rzres, err := gc.CompileCircuit(ctx, qaoa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRz IR after transpile: %d rotations\n", rzres.IRRotations)
	fmt.Printf("gridsynth-lowered: T=%d  T-depth=%d  Clifford=%d  Σerr=%.2e\n",
		rzres.Circuit.TCount(), rzres.Circuit.TDepth(), rzres.Circuit.CliffordCount(),
		rzres.Stats.ErrorBound)
	fmt.Printf("cache: %d unique syntheses for %d rotations (%d hits, %d misses)\n",
		rzres.Unique, rzres.Stats.Rotations, rzres.Hits, rzres.Misses)

	fmt.Printf("\nT-count ratio (gridsynth/trasyn): %.2fx  (paper: ~1.6x for QAOA)\n",
		float64(rzres.Circuit.TCount())/float64(u3res.Circuit.TCount()))
}
