// QAOA workflow (§3.4): build a 3-regular MaxCut QAOA circuit and compile
// it through the synth pass pipeline — trasyn on the CX+U3 IR vs gridsynth
// on the CX+H+RZ IR — under a single circuit-level error budget. The
// commutation pass merges the mixer RX gates through CX targets, which is
// where the paper's consistent ~1.6x T reduction on QAOA comes from; the
// pipeline's shared cache turns the many repeated QAOA angles into cache
// hits, and WithCircuitEpsilon splits one ε across whatever rotation count
// each IR ends up with — the apples-to-apples comparison the paper's
// circuit-level results are stated in.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/circuit/gen"
	"repro/synth"
)

func main() {
	qaoa := gen.QAOAMaxCut(8, 2, 1) // 8 qubits, depth 2
	fmt.Printf("QAOA MaxCut circuit: %d qubits, %d ops, %d rotations\n",
		qaoa.N, len(qaoa.Ops), qaoa.CountRotations())

	// One budget for the whole circuit, either IR. Gridsynth guarantees
	// its per-rotation shares, so its Σerr always lands under ε; trasyn's
	// stop threshold is best-effort (it reports the best sequence found
	// when the budget ladder exhausts), so its realized bound can graze ε.
	const circuitEps = 0.3
	ctx := context.Background()

	// U3 workflow with trasyn: the default pass sequence (transpile →
	// fuse → snap → lower → estimate) under the circuit-level budget.
	tp, err := synth.NewPipelineFor("trasyn", synth.WithRequest(synth.Request{
		TBudget: 5, Tensors: 4, Samples: 2500, Seed: synth.Seed(3),
	}), synth.WithCircuitEpsilon(circuitEps))
	if err != nil {
		log.Fatal(err)
	}
	u3res, err := tp.Run(ctx, qaoa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nU3 IR after transpile: %d rotations (setting: level %d, commute %v)\n",
		u3res.Stats.IRRotations, u3res.Stats.Setting.Level, u3res.Stats.Setting.Commute)
	fmt.Printf("trasyn-lowered:  T=%d  T-depth=%d  Clifford=%d  Σerr=%.2e (budget %.1e)\n",
		u3res.Circuit.TCount(), u3res.Circuit.TDepth(), u3res.Circuit.CliffordCount(),
		u3res.Stats.ErrorBound, circuitEps)
	fmt.Printf("cache: %d unique syntheses for %d rotations (%d hits, %d misses)\n",
		u3res.Stats.Unique, u3res.Stats.Rotations, u3res.Stats.Hits, u3res.Stats.Misses)

	// Rz workflow with gridsynth under the SAME circuit budget: the
	// allocator hands each Rz rotation its share of ε automatically — no
	// manual rotation-ratio scaling.
	gp, err := synth.NewPipelineFor("gridsynth", synth.WithCircuitEpsilon(circuitEps))
	if err != nil {
		log.Fatal(err)
	}
	rzres, err := gp.Run(ctx, qaoa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRz IR after transpile: %d rotations\n", rzres.Stats.IRRotations)
	fmt.Printf("gridsynth-lowered: T=%d  T-depth=%d  Clifford=%d  Σerr=%.2e (budget %.1e)\n",
		rzres.Circuit.TCount(), rzres.Circuit.TDepth(), rzres.Circuit.CliffordCount(),
		rzres.Stats.ErrorBound, circuitEps)
	fmt.Printf("cache: %d unique syntheses for %d rotations (%d hits, %d misses)\n",
		rzres.Stats.Unique, rzres.Stats.Rotations, rzres.Stats.Hits, rzres.Stats.Misses)

	fmt.Printf("\nT-count ratio (gridsynth/trasyn): %.2fx  (paper: ~1.6x for QAOA)\n",
		float64(rzres.Circuit.TCount())/float64(u3res.Circuit.TCount()))
}
