// QAOA workflow (§3.4): build a 3-regular MaxCut QAOA circuit, transpile it
// into both intermediate representations, and compile each to Clifford+T —
// trasyn on the CX+U3 IR vs gridsynth on the CX+H+RZ IR. The commutation
// pass merges the mixer RX gates through CX targets, which is where the
// paper's consistent ~1.6x T reduction on QAOA comes from.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/gridsynth"
	"repro/internal/pipeline"
	"repro/internal/suite"
)

func main() {
	qaoa := suite.QAOAMaxCut(8, 2, 1) // 8 qubits, depth 2
	fmt.Printf("QAOA MaxCut circuit: %d qubits, %d ops, %d rotations\n",
		qaoa.N, len(qaoa.Ops), qaoa.CountRotations())

	// U3 workflow with trasyn.
	cfg := core.DefaultConfig(gates.Shared(5), 5, 4, 2500)
	cfg.Epsilon = 0.007
	cfg.Rng = rand.New(rand.NewSource(3))
	u3res, err := pipeline.RunU3Workflow(qaoa, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nU3 IR after transpile: %d rotations (setting: level %d, commute %v)\n",
		u3res.IRRotations, u3res.Setting.Level, u3res.Setting.Commute)
	fmt.Printf("trasyn-lowered:  T=%d  T-depth=%d  Clifford=%d  Σerr=%.2e\n",
		u3res.Circuit.TCount(), u3res.Circuit.TDepth(), u3res.Circuit.CliffordCount(),
		u3res.Stats.ErrorBound)

	// Rz workflow with gridsynth at a matched per-rotation budget.
	epsRz := 0.007
	if u3res.Stats.Rotations > 0 {
		epsRz = u3res.Stats.ErrorBound / float64(u3res.Stats.Rotations)
	}
	rzres, err := pipeline.RunRzWorkflow(qaoa, epsRz, gridsynth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRz IR after transpile: %d rotations\n", rzres.IRRotations)
	fmt.Printf("gridsynth-lowered: T=%d  T-depth=%d  Clifford=%d  Σerr=%.2e\n",
		rzres.Circuit.TCount(), rzres.Circuit.TDepth(), rzres.Circuit.CliffordCount(),
		rzres.Stats.ErrorBound)

	fmt.Printf("\nT-count ratio (gridsynth/trasyn): %.2fx  (paper: ~1.6x for QAOA)\n",
		float64(rzres.Circuit.TCount())/float64(u3res.Circuit.TCount()))
}
