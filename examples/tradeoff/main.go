// Logical-vs-synthesis error tradeoff (RQ2): decompose Rz rotations at a
// sweep of synthesis thresholds, attach depolarizing noise to every T gate,
// and locate the threshold minimizing total process infidelity. Reproduces
// the Figure 9 phenomenon: pushing synthesis error far below the logical
// error wastes T gates and *hurts* overall fidelity. The per-threshold
// angle sweep runs as one synth.Compiler batch job per epsilon.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/qmat"
	"repro/internal/sim"
	"repro/synth"
)

func main() {
	rng := rand.New(rand.NewSource(6))
	angles := make([]float64, 30)
	targets := make([]qmat.M2, len(angles))
	for i := range angles {
		angles[i] = rng.Float64()*2*math.Pi - math.Pi
		targets[i] = qmat.Rz(angles[i])
	}
	epsGrid := []float64{1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4}
	rates := []float64{1e-5, 1e-6, 1e-7}

	be, ok := synth.Lookup("gridsynth")
	if !ok {
		log.Fatal("gridsynth backend not registered")
	}
	ctx := context.Background()

	fmt.Printf("%-10s", "eps \\ rate")
	for _, r := range rates {
		fmt.Printf("  %12.0e", r)
	}
	fmt.Println("  avg T")
	best := map[float64]float64{}
	bestV := map[float64]float64{}
	for _, r := range rates {
		bestV[r] = math.Inf(1)
	}
	for _, eps := range epsGrid {
		// One batch job per threshold: the worker pool spreads the 30
		// angles across cores, the shared cache absorbs duplicates.
		comp := synth.NewCompiler(be, synth.Request{Epsilon: eps})
		results, err := comp.CompileBatch(ctx, targets)
		if err != nil {
			log.Fatal(err)
		}
		infid := make([]float64, len(rates))
		tAvg := 0.0
		for j, res := range results {
			tAvg += float64(res.TCount) / float64(len(angles))
			for i, rate := range rates {
				ch := sim.SequencePTM(res.Seq, rate)
				infid[i] += (1 - sim.ProcessFidelity(qmat.Rz(angles[j]), ch)) / float64(len(angles))
			}
		}
		fmt.Printf("%-10.0e", eps)
		for i, r := range rates {
			fmt.Printf("  %12.3e", infid[i])
			if infid[i] < bestV[r] {
				bestV[r], best[r] = infid[i], eps
			}
		}
		fmt.Printf("  %5.1f\n", tAvg)
	}
	fmt.Println("\noptimal synthesis threshold per logical rate (paper fit: ≈1.22·√rate):")
	for _, r := range rates {
		fmt.Printf("  rate %.0e → eps* %.0e (fit predicts %.0e)\n", r, best[r], 1.22*math.Sqrt(r))
	}
}
