// Batch service demo: the synth.Compiler as it would sit inside a
// heavy-traffic synthesis service — a worker pool compiling a stream of
// rotation requests against a shared bounded cache, with deterministic
// per-op seeding (identical requests give identical sequences regardless
// of arrival order) and context cancellation for deadline-bound callers.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/qmat"
	"repro/synth"
)

func main() {
	// A workload shaped like production traffic: many requests, few
	// distinct angles (applications reuse rotation angles heavily).
	rng := rand.New(rand.NewSource(9))
	distinct := make([]float64, 12)
	for i := range distinct {
		distinct[i] = rng.Float64()*2*math.Pi - math.Pi
	}
	targets := make([]qmat.M2, 96)
	for i := range targets {
		targets[i] = qmat.Rz(distinct[rng.Intn(len(distinct))])
	}

	be, ok := synth.Lookup("auto")
	if !ok {
		log.Fatal("auto backend not registered")
	}
	cache := synth.NewCache(256)
	comp := synth.NewCompiler(be, synth.Request{Epsilon: 1e-3, Samples: 1500})
	comp.Cache = cache

	start := time.Now()
	results, err := comp.CompileBatch(context.Background(), targets)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	var tTotal int
	wins := map[string]int{}
	for _, r := range results {
		tTotal += r.TCount
		wins[r.Backend]++
	}
	st := cache.Stats()
	fmt.Printf("compiled %d requests (%d distinct angles) in %s\n",
		len(targets), len(distinct), wall.Round(time.Millisecond))
	fmt.Printf("total T count: %d (%.1f avg)\n", tTotal, float64(tTotal)/float64(len(targets)))
	fmt.Printf("cache: %d hits / %d misses (%.0f%% hit rate, %d entries)\n",
		st.Hits, st.Misses, 100*st.HitRate(), st.Size)
	fmt.Printf("auto-race winners per request: %v\n", wins)

	// A second identical batch is served entirely from the shared cache.
	start = time.Now()
	if _, err := comp.CompileBatch(context.Background(), targets); err != nil {
		log.Fatal(err)
	}
	st2 := cache.Stats()
	fmt.Printf("\nwarm rerun: %s (hits %d → %d, misses unchanged: %v)\n",
		time.Since(start).Round(time.Microsecond), st.Hits, st2.Hits, st2.Misses == st.Misses)

	// Deadline-bound callers cancel mid-batch instead of blocking.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	fresh := synth.NewCompiler(be, synth.Request{Epsilon: 1e-3})
	if _, err := fresh.CompileBatch(ctx, targets); err != nil {
		fmt.Printf("deadline-bound batch: %v (as expected)\n", err)
	}
}
