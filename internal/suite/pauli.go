// Package suite generates the 192-circuit benchmark corpus of the
// evaluation: QAOA MaxCut circuits with merge-friendly gate ordering,
// Hamlib-style Hamiltonian-simulation circuits compiled from Pauli strings
// (a greedy CNOT-ladder compiler standing in for Rustiq), and
// Benchpress/QASMBench-style fault-tolerant algorithm circuits (QFT, QPE,
// adders, GHZ/W states, VQE ansatzes, Grover, random circuits).
//
// The generators themselves were promoted to the public circuit/gen
// package so benchmarks, examples, and external callers share one
// workload source; this package keeps the corpus registry (Suite,
// DatasetStats) and re-exports the generator API as deprecated aliases.
package suite

import (
	"fmt"

	"repro/circuit/gen"
)

// Pauli identifies a single-qubit Pauli operator in a term.
//
// Deprecated: use gen.Pauli.
type Pauli = gen.Pauli

// Pauli labels.
//
// Deprecated: use the gen package's labels.
const (
	PI = gen.PI
	PX = gen.PX
	PY = gen.PY
	PZ = gen.PZ
)

// PauliTerm is coeff · P_0 ⊗ P_1 ⊗ … (identity on unlisted qubits).
//
// Deprecated: use gen.PauliTerm.
type PauliTerm = gen.PauliTerm

// Hamiltonian is a sum of Pauli terms on N qubits.
//
// Deprecated: use gen.Hamiltonian.
type Hamiltonian = gen.Hamiltonian

// Deprecated: use the gen package's constructors.
var (
	NewTerm   = gen.NewTerm
	ParseTerm = gen.ParseTerm
)

// fmtName builds benchmark names like "tfim_n8".
func fmtName(family string, n int, extra ...interface{}) string {
	name := fmt.Sprintf("%s_n%d", family, n)
	for _, e := range extra {
		name += fmt.Sprintf("_%v", e)
	}
	return name
}
