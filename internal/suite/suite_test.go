package suite

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/circuit"
	"repro/internal/sim"
)

// TestSuiteHas192Circuits: the headline corpus size from the paper.
func TestSuiteHas192Circuits(t *testing.T) {
	s := Suite()
	if len(s) != 192 {
		t.Fatalf("suite has %d circuits, want 192", len(s))
	}
	names := map[string]bool{}
	for _, b := range s {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
		if b.Circuit == nil || b.Circuit.N <= 0 || len(b.Circuit.Ops) == 0 {
			t.Fatalf("benchmark %q has an empty circuit", b.Name)
		}
	}
}

// TestSinglePauliRotation: the gadget must implement exp(−iθ/2·P) exactly.
func TestSinglePauliRotation(t *testing.T) {
	cases := []struct {
		name string
		ops  map[int]Pauli
	}{
		{"Z", map[int]Pauli{0: PZ}},
		{"X", map[int]Pauli{0: PX}},
		{"Y", map[int]Pauli{0: PY}},
		{"ZZ", map[int]Pauli{0: PZ, 1: PZ}},
		{"XY", map[int]Pauli{0: PX, 1: PY}},
		{"XYZ", map[int]Pauli{0: PX, 1: PY, 2: PZ}},
		{"YZX", map[int]Pauli{0: PY, 1: PZ, 2: PX}},
	}
	for _, tc := range cases {
		theta := 0.7321
		n := 0
		for q := range tc.ops {
			if q+1 > n {
				n = q + 1
			}
		}
		h := Hamiltonian{N: n, Terms: []PauliTerm{NewTerm(theta/2, tc.ops)}}
		// Evolution for t=1, one step: exp(−i·(θ/2)·P).
		c := h.EvolutionCircuit(1, 1)
		got := sim.Unitary(c)
		// Direct: cos(θ/2)I − i·sin(θ/2)·P.
		pm := h.Matrix() // = (θ/2)·P
		dim := 1 << uint(n)
		want := make([][]complex128, dim)
		for i := range want {
			want[i] = make([]complex128, dim)
			for j := range want[i] {
				p := pm[i][j] / complex(theta/2, 0)
				if i == j {
					want[i][j] = complex(math.Cos(theta/2), 0)
				}
				want[i][j] += complex(0, -math.Sin(theta/2)) * p
			}
		}
		if d := sim.UnitaryDistance(got, want); d > 1e-7 {
			t.Errorf("%s rotation distance %v", tc.name, d)
		}
	}
}

// TestCommutingEvolutionExact: for Z-only Hamiltonians all terms commute,
// so one Trotter step is exact. Check against the diagonal exponential.
func TestCommutingEvolutionExact(t *testing.T) {
	h := MaxCutIsing(4, 3)
	tval := 0.9
	c := h.EvolutionCircuit(tval, 1)
	got := sim.Unitary(c)
	m := h.Matrix()
	dim := len(m)
	want := make([][]complex128, dim)
	for i := range want {
		want[i] = make([]complex128, dim)
		want[i][i] = cmplx.Exp(complex(0, -tval) * m[i][i])
	}
	if d := sim.UnitaryDistance(got, want); d > 1e-7 {
		t.Fatalf("Z-only evolution distance %v", d)
	}
}

func TestThreeRegularGraph(t *testing.T) {
	for _, n := range []int{4, 8, 12, 20} {
		edges := threeRegularEdges(n, 42)
		deg := make([]int, n)
		seen := map[[2]int]bool{}
		for _, e := range edges {
			if e[0] == e[1] {
				t.Fatal("self loop")
			}
			if seen[e] {
				t.Fatal("duplicate edge")
			}
			seen[e] = true
			deg[e[0]]++
			deg[e[1]]++
		}
		for v, d := range deg {
			if d < 2 || d > 4 {
				t.Fatalf("vertex %d of n=%d has degree %d (want ≈3)", v, n, d)
			}
		}
	}
}

// TestQAOAStructure: depth-p QAOA on 3-regular graphs has 3n/2·p cost
// rotations and n·p mixer rotations.
func TestQAOAStructure(t *testing.T) {
	c := QAOAMaxCut(8, 2, 7)
	rz, rx := 0, 0
	for _, op := range c.Ops {
		switch op.G {
		case circuit.RZ:
			rz++
		case circuit.RX:
			rx++
		}
	}
	if rz != 8*3/2*2 {
		t.Errorf("QAOA RZ count %d, want %d", rz, 24)
	}
	if rx != 8*2 {
		t.Errorf("QAOA RX count %d, want %d", rx, 16)
	}
}

// TestQFTSmall: QFT(2) maps |00⟩ to uniform superposition.
func TestQFTSmall(t *testing.T) {
	c := QFT(2)
	s := sim.RunCircuit(c)
	for i, a := range s.Amp {
		if math.Abs(cmplx.Abs(a)-0.5) > 1e-9 {
			t.Fatalf("QFT(2)|00⟩ amplitude %d = %v, want 1/2", i, a)
		}
	}
}

// TestCuccaroAdderAdds: the adder must compute a+b on the b register.
func TestCuccaroAdderAdds(t *testing.T) {
	m := 3
	c := CuccaroAdder(m)
	for _, tc := range [][2]int{{1, 2}, {3, 4}, {5, 7}, {0, 0}, {7, 7}} {
		a, b := tc[0], tc[1]
		s := sim.NewState(c.N)
		idx := 0
		for i := 0; i < m; i++ {
			if a>>uint(i)&1 == 1 {
				idx |= 1 << uint(i)
			}
			if b>>uint(i)&1 == 1 {
				idx |= 1 << uint(m+i)
			}
		}
		s.Amp[0] = 0
		s.Amp[idx] = 1
		s.Run(c)
		// Find the basis state with max amplitude.
		best, bestV := 0, 0.0
		for i, amp := range s.Amp {
			if v := cmplx.Abs(amp); v > bestV {
				best, bestV = i, v
			}
		}
		if bestV < 0.999 {
			t.Fatalf("adder output not a basis state (%v)", bestV)
		}
		sum := b + a
		gotB := (best >> uint(m)) & ((1 << uint(m)) - 1)
		gotCarry := (best >> uint(2*m+1)) & 1
		if gotB != sum%(1<<uint(m)) || gotCarry != sum>>uint(m)&1 {
			t.Fatalf("adder %d+%d: got b=%d carry=%d", a, b, gotB, gotCarry)
		}
		gotA := best & ((1 << uint(m)) - 1)
		if gotA != a {
			t.Fatalf("adder clobbered register a: %d → %d", a, gotA)
		}
	}
}

// TestWState: the W state has equal weight on all single-excitation
// basis states.
func TestWState(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		c := WState(n)
		s := sim.RunCircuit(c)
		want := 1 / math.Sqrt(float64(n))
		for i, a := range s.Amp {
			ones := 0
			for b := 0; b < n; b++ {
				ones += (i >> uint(b)) & 1
			}
			v := cmplx.Abs(a)
			if ones == 1 {
				if math.Abs(v-want) > 1e-7 {
					t.Fatalf("W%d amp at %b = %v, want %v", n, i, v, want)
				}
			} else if v > 1e-7 {
				t.Fatalf("W%d spurious amplitude at %b: %v", n, i, v)
			}
		}
	}
}

// TestGroverAmplifies: after the right number of iterations the marked
// state dominates.
func TestGroverAmplifies(t *testing.T) {
	c := Grover(3, 2, 1)
	s := sim.RunCircuit(c)
	p := 0.0
	// Marked state |001⟩ on the first 3 qubits; ancillas must be |0⟩.
	for i, a := range s.Amp {
		if i&7 == 1 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if p < 0.9 {
		t.Fatalf("Grover success probability %v < 0.9", p)
	}
}

// TestDatasetStats: Table 2 must cover three datasets with sane ranges.
func TestDatasetStats(t *testing.T) {
	stats := DatasetStats(Suite())
	if len(stats) != 3 {
		t.Fatalf("expected 3 dataset rows, got %d", len(stats))
	}
	for _, s := range stats {
		if s.Count == 0 || s.MinQ < 2 || s.MaxQ > 30 || s.MeanRot <= 0 {
			t.Fatalf("implausible stats row: %+v", s)
		}
	}
}

func TestCategoriesPresent(t *testing.T) {
	seen := map[Category]int{}
	for _, b := range Suite() {
		seen[b.Category]++
	}
	for _, cat := range []Category{CatQAOA, CatHamQuantum, CatHamClassical, CatFTAlgorithm} {
		if seen[cat] < 10 {
			t.Errorf("category %s has only %d benchmarks", cat, seen[cat])
		}
	}
}
