package suite

import (
	"repro/circuit/gen"
)

// The circuit families below moved to the public circuit/gen package;
// these delegating bindings keep the corpus registry and existing
// callers compiling unchanged.
//
// Deprecated: import repro/circuit/gen directly.
var (
	TFIM             = gen.TFIM
	Heisenberg       = gen.Heisenberg
	XYChain          = gen.XYChain
	MaxCutIsing      = gen.MaxCutIsing
	SpinGlass        = gen.SpinGlass
	Molecular        = gen.Molecular
	QAOAMaxCut       = gen.QAOAMaxCut
	QFT              = gen.QFT
	QPE              = gen.QPE
	CCX              = gen.CCX
	CuccaroAdder     = gen.CuccaroAdder
	GHZWithRotations = gen.GHZWithRotations
	WState           = gen.WState
	VQEAnsatz        = gen.VQEAnsatz
	Grover           = gen.Grover
	RandomCircuit    = gen.RandomCircuit
	RandomSU4Blocks  = gen.RandomSU4Blocks
)

// threeRegularEdges delegates to the promoted generator (kept for the
// package tests that assert graph regularity).
func threeRegularEdges(n int, seed int64) [][2]int {
	return gen.ThreeRegularEdges(n, seed)
}
