package suite

import (
	"repro/circuit"
)

// Category labels benchmarks the way the paper's Figure 10 groups them.
type Category string

// Benchmark categories.
const (
	CatQAOA         Category = "qaoa"
	CatHamQuantum   Category = "quantum-hamiltonian"
	CatHamClassical Category = "classical-hamiltonian"
	CatFTAlgorithm  Category = "ft-algorithm"
)

// Benchmark is one suite entry.
type Benchmark struct {
	Name     string
	Category Category
	Dataset  string // benchpress | hamlib | qaoa (Table 2 grouping)
	Circuit  *circuit.Circuit
}

// Suite generates the full 192-circuit corpus:
//   - 60 QAOA MaxCut circuits (depths 1–5 × 12 sizes, 4–26 qubits),
//   - 60 Hamlib-style Hamiltonian circuits (6 families × 10 sizes),
//   - 72 Benchpress/QASMBench-style algorithm circuits (including the
//     random-SU(4)-block family the multi-qubit fusion bench uses).
//
// Everything is generated deterministically from fixed seeds.
func Suite() []Benchmark {
	var out []Benchmark

	// --- QAOA: depths 1..5, qubits 4..26 step 2 (12 sizes) → 60.
	for depth := 1; depth <= 5; depth++ {
		for n := 4; n <= 26; n += 2 {
			out = append(out, Benchmark{
				Name:     fmtName("qaoa_maxcut", n, "p", depth),
				Category: CatQAOA,
				Dataset:  "qaoa",
				Circuit:  QAOAMaxCut(n, depth, int64(n*100+depth)),
			})
		}
	}

	// --- Hamlib-style: 6 families × 10 sizes → 60.
	sizes := []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 14}
	for _, n := range sizes {
		out = append(out, Benchmark{
			Name: fmtName("tfim", n), Category: CatHamQuantum, Dataset: "hamlib",
			Circuit: TFIM(n, 1.0, 0.7).EvolutionCircuit(0.5, 2),
		})
	}
	for _, n := range sizes {
		out = append(out, Benchmark{
			Name: fmtName("heisenberg", n), Category: CatHamQuantum, Dataset: "hamlib",
			Circuit: Heisenberg(n, 1.0).EvolutionCircuit(0.4, 2),
		})
	}
	for _, n := range sizes {
		out = append(out, Benchmark{
			Name: fmtName("xy", n), Category: CatHamQuantum, Dataset: "hamlib",
			Circuit: XYChain(n, 1.0).EvolutionCircuit(0.6, 2),
		})
	}
	for _, n := range sizes {
		out = append(out, Benchmark{
			Name: fmtName("molecular", n), Category: CatHamQuantum, Dataset: "hamlib",
			Circuit: Molecular(n, 6*n, int64(n)).EvolutionCircuit(0.3, 1),
		})
	}
	for _, n := range sizes {
		out = append(out, Benchmark{
			Name: fmtName("maxcut_ising", n), Category: CatHamClassical, Dataset: "hamlib",
			Circuit: MaxCutIsing(n, int64(n*7)).EvolutionCircuit(1.2, 2),
		})
	}
	for _, n := range sizes {
		out = append(out, Benchmark{
			Name: fmtName("spinglass", n), Category: CatHamClassical, Dataset: "hamlib",
			Circuit: SpinGlass(n, int64(n*13)).EvolutionCircuit(0.5, 1),
		})
	}

	// --- Benchpress/QASMBench-style: 67 circuits.
	for n := 2; n <= 12; n++ { // 11 QFTs
		out = append(out, Benchmark{
			Name: fmtName("qft", n), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: QFT(n),
		})
	}
	for _, bits := range []int{2, 3, 4, 5, 6} { // 5 QPEs
		out = append(out, Benchmark{
			Name: fmtName("qpe", bits+1, "bits", bits), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: QPE(bits, 0.1234),
		})
	}
	for _, m := range []int{1, 2, 3, 4, 5, 6} { // 6 adders
		out = append(out, Benchmark{
			Name: fmtName("cuccaro_adder", 2*m+2, "m", m), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: CuccaroAdder(m),
		})
	}
	for n := 3; n <= 12; n++ { // 10 GHZ
		out = append(out, Benchmark{
			Name: fmtName("ghz_rot", n), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: GHZWithRotations(n, int64(n*3)),
		})
	}
	for n := 3; n <= 12; n++ { // 10 W states
		out = append(out, Benchmark{
			Name: fmtName("wstate", n), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: WState(n),
		})
	}
	for i, cfg := range [][2]int{{4, 1}, {4, 2}, {6, 1}, {6, 2}, {8, 1}, {8, 2}, {10, 1}, {10, 2}, {12, 1}, {12, 2}} { // 10 VQE
		out = append(out, Benchmark{
			Name: fmtName("vqe_hea", cfg[0], "l", cfg[1]), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: VQEAnsatz(cfg[0], cfg[1], int64(i+1)),
		})
	}
	for _, cfg := range [][2]int{{2, 1}, {3, 1}, {4, 2}} { // 3 Grover
		out = append(out, Benchmark{
			Name: fmtName("grover", cfg[0], "it", cfg[1]), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: Grover(cfg[0], cfg[1], 1),
		})
	}
	for i, cfg := range [][2]int{{3, 2}, {3, 4}, {4, 2}, {4, 4}, {5, 2}, {5, 4}, {6, 3}, {7, 3}, {8, 3}, {9, 3}, {10, 3}, {12, 3}} { // 12 random
		out = append(out, Benchmark{
			Name: fmtName("random", cfg[0], "d", cfg[1]), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: RandomCircuit(cfg[0], cfg[1], int64(i+11)),
		})
	}
	for i, cfg := range [][2]int{{4, 4}, {4, 8}, {6, 6}, {8, 8}, {10, 10}} { // 5 random SU(4) blocks
		out = append(out, Benchmark{
			Name: fmtName("su4blocks", cfg[0], "b", cfg[1]), Category: CatFTAlgorithm, Dataset: "benchpress",
			Circuit: RandomSU4Blocks(cfg[0], cfg[1], int64(i+29)),
		})
	}
	return out
}

// Stats summarizes a dataset for Table 2.
type Stats struct {
	Dataset        string
	Count          int
	MinQ, MaxQ     int
	MeanQ          float64
	MinRot, MaxRot int
	MeanRot        float64
}

// DatasetStats computes Table 2's per-dataset qubit and rotation-count
// statistics from the generated suite (rotations counted on the raw
// circuits, before transpilation).
func DatasetStats(benchmarks []Benchmark) []Stats {
	order := []string{"benchpress", "hamlib", "qaoa"}
	agg := map[string]*Stats{}
	for _, name := range order {
		agg[name] = &Stats{Dataset: name, MinQ: 1 << 30, MinRot: 1 << 30}
	}
	for _, b := range benchmarks {
		s := agg[b.Dataset]
		if s == nil {
			continue
		}
		q := b.Circuit.N
		r := b.Circuit.CountRotations()
		s.Count++
		s.MeanQ += float64(q)
		s.MeanRot += float64(r)
		if q < s.MinQ {
			s.MinQ = q
		}
		if q > s.MaxQ {
			s.MaxQ = q
		}
		if r < s.MinRot {
			s.MinRot = r
		}
		if r > s.MaxRot {
			s.MaxRot = r
		}
	}
	out := make([]Stats, 0, len(order))
	for _, name := range order {
		s := agg[name]
		if s.Count > 0 {
			s.MeanQ /= float64(s.Count)
			s.MeanRot /= float64(s.Count)
		}
		out = append(out, *s)
	}
	return out
}
