package expt

import (
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/gates"
)

// Config sets experiment scales. Zero values select CPU-minutes defaults;
// the paper-scale values are noted per field.
type Config struct {
	// N is the number of random unitaries/angles for RQ1/RQ2 (paper: 1000).
	N int
	// Samples is trasyn's k (paper: 40000 on an A100).
	Samples int
	// MaxT is the per-tensor enumeration budget m (paper: 10).
	MaxT int
	// Sites is the maximum number of MPS tensors (paper: 3 → T ≤ 30).
	Sites int
	// BenchLimit caps how many of the 192 suite circuits the circuit
	// experiments process (0 = all; default subsamples evenly).
	BenchLimit int
	// SimQubits caps simulation-based experiments (paper: 12 for noisy).
	SimQubits int
	// FidTrials is the importance-sampling trial count for RQ4.
	FidTrials int
	// Seed drives all randomness.
	Seed int64
	// OutDir receives CSVs ("" disables).
	OutDir string
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

func (c Config) filled() Config {
	if c.N <= 0 {
		c.N = 40
	}
	if c.Samples <= 0 {
		c.Samples = 1500
	}
	if c.MaxT <= 0 {
		c.MaxT = 5
	}
	if c.Sites <= 0 {
		c.Sites = 4
	}
	if c.BenchLimit < 0 {
		c.BenchLimit = 0
	}
	if c.BenchLimit == 0 {
		c.BenchLimit = 48
	}
	if c.SimQubits <= 0 {
		c.SimQubits = 8
	}
	if c.FidTrials <= 0 {
		c.FidTrials = 300
	}
	if c.Seed == 0 {
		c.Seed = 20260611
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// trasynConfig builds the shared trasyn configuration for the scale.
func (c Config) trasynConfig(sites int, eps float64, seed int64) core.Config {
	cfg := core.DefaultConfig(gates.Shared(c.MaxT), c.MaxT, sites, c.Samples)
	cfg.Epsilon = eps
	cfg.Rng = rand.New(rand.NewSource(seed))
	return cfg
}
