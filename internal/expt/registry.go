package expt

import (
	"fmt"
	"sort"
)

// Experiment regenerates one table or figure.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Config) (*Table, error)
}

// Registry lists every experiment, keyed by the paper artifact it
// regenerates.
func Registry() []Experiment {
	return []Experiment{
		{"fig2", "headline reduction-ratio summary (T/Clifford/infidelity)", Fig2},
		{"fig3b", "Rz:U3 rotation-count ratio across the suite", Fig3b},
		{"fig6", "best-transpile-setting histogram (16 settings)", Fig6},
		{"fig7", "synthesis error vs T/Clifford count scatter (RQ1)", Fig7},
		{"tab1", "T and Clifford reductions at eps 1e-3 (Table 1)", Tab1},
		{"fig8", "synthesis time comparison (RQ1)", Fig8},
		{"fig9", "logical-vs-synthesis error tradeoff + sqrt fit (RQ2)", Fig9},
		{"tab2", "benchmark dataset statistics (Table 2)", Tab2},
		{"fig10", "per-category reduction ratios (RQ3)", Fig10},
		{"fig11", "absolute circuit infidelity scatter", Fig11},
		{"fig12", "trasyn vs BQSKit-style resynthesis (RQ3)", Fig12},
		{"fig13", "application fidelity under logical noise (RQ4)", Fig13},
		{"fig14", "before/after post-optimization ratios (RQ5)", Fig14},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("unknown experiment %q (known: %v)", id, ids)
}
