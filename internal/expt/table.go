// Package expt regenerates every table and figure of the paper's
// evaluation. Each experiment produces a Table (rows of the same series
// the paper plots) that can be printed and/or written as CSV; scale knobs
// in Config trade fidelity to the paper's sample sizes against CPU time.
// See EXPERIMENTS.md for the paper-vs-measured record.
package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Table is a printable/exportable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, stringifying the values.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case math.Abs(x) >= 1e4 || math.Abs(x) < 1e-3:
		return fmt.Sprintf("%.4g", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// Print renders an aligned text table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the table into dir as <id>.csv.
func (t *Table) WriteCSV(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// geomean returns the geometric mean of positive values.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	if len(c)%2 == 1 {
		return c[len(c)/2]
	}
	return (c[len(c)/2-1] + c[len(c)/2]) / 2
}

func minMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
