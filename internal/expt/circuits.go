package expt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/circuit"
	"repro/internal/sim"
	"repro/internal/suite"
	"repro/internal/transpile"
	"repro/optimize"
	"repro/synth"
)

// benchResult holds both workflow outcomes for one benchmark circuit.
type benchResult struct {
	bench   suite.Benchmark
	u3IR    *circuit.Circuit // CX+U3 IR (best setting)
	rzIR    *circuit.Circuit // CX+H+RZ IR (best setting)
	u3Out   *circuit.Circuit // trasyn-lowered
	rzOut   *circuit.Circuit // gridsynth-lowered
	u3Stats synth.PipelineStats
	rzStats synth.PipelineStats
	err     error
}

// lowerOnly builds a synthesis-only pipeline (the Lower pass alone) for an
// already-transpiled IR, sharing the given cache.
func lowerOnly(backend string, req synth.Request, cache *synth.Cache) (*synth.Pipeline, error) {
	return synth.NewPipelineFor(backend,
		synth.WithRequest(req),
		synth.WithCache(cache),
		synth.WithWorkers(1), // outer loop already parallelizes per circuit
		synth.WithPasses(synth.Lower()),
	)
}

// selectBenchmarks subsamples the 192-circuit suite evenly (stable order).
func selectBenchmarks(limit int) []suite.Benchmark {
	all := suite.Suite()
	if limit <= 0 || limit >= len(all) {
		return all
	}
	var out []suite.Benchmark
	step := float64(len(all)) / float64(limit)
	for i := 0; i < limit; i++ {
		out = append(out, all[int(float64(i)*step)])
	}
	return out
}

// runStudy compiles the selected benchmarks through both workflows.
// The per-rotation threshold: trasyn runs at eps (paper: 0.007) with its T
// budget; gridsynth's budget is eps scaled by the U3:Rz rotation ratio so
// circuit-level errors match (§4.3).
func runStudy(cfg Config, eps float64) []benchResult {
	cfg = cfg.filled()
	benches := selectBenchmarks(cfg.BenchLimit)
	results := make([]benchResult, len(benches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, b := range benches {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, b suite.Benchmark) {
			defer wg.Done()
			defer func() { <-sem }()
			r := benchResult{bench: b}
			defer func() { results[i] = r }()
			r.u3IR, _ = transpile.BestSetting(b.Circuit, transpile.BasisU3)
			r.rzIR, _ = transpile.BestSetting(b.Circuit, transpile.BasisRz)
			// trasyn gets one extra tensor and a tighter stop threshold so
			// its realized per-rotation error lands near gridsynth's
			// (gridsynth over-delivers its threshold by ~2.5x on average;
			// the paper's trasyn reports best-found rather than
			// threshold-truncated solutions).
			treq := synth.Request{
				Epsilon: eps * 0.6, TBudget: cfg.MaxT, Tensors: cfg.Sites + 1,
				Samples: cfg.Samples, Seed: synth.Seed(cfg.Seed + int64(i*31)),
			}
			// Per-circuit caches (seeds differ per circuit, so entries
			// must not leak across circuits); repeated angles within a
			// circuit synthesize once. Both workflows lower through a
			// synthesis-only pipeline over their pre-transpiled IR.
			cache := synth.NewCache(0)
			tp, err := lowerOnly("trasyn", treq, cache)
			if err != nil {
				r.err = err
				return
			}
			u3Res, err := tp.Run(context.Background(), r.u3IR)
			if err != nil {
				r.err = err
				return
			}
			r.u3Out, r.u3Stats = u3Res.Circuit, u3Res.Stats
			nU3 := r.u3IR.CountRotations()
			nRz := r.rzIR.CountRotations()
			epsRz := eps
			if nRz > 0 && nU3 > 0 {
				epsRz = eps * float64(nU3) / float64(nRz)
			}
			gp, err := lowerOnly("gridsynth", synth.Request{Epsilon: epsRz}, cache)
			if err != nil {
				r.err = err
				return
			}
			rzRes, err := gp.Run(context.Background(), r.rzIR)
			if err != nil {
				r.err = err
				return
			}
			r.rzOut, r.rzStats = rzRes.Circuit, rzRes.Stats
		}(i, b)
	}
	wg.Wait()
	return results
}

var (
	studyMu    sync.Mutex
	studyCache map[string][]benchResult
)

// cachedStudy shares one study run across experiments in a process.
func cachedStudy(cfg Config, eps float64) []benchResult {
	cfg = cfg.filled()
	key := fmt.Sprintf("%d/%d/%d/%d/%g", cfg.BenchLimit, cfg.Samples, cfg.MaxT, cfg.Sites, eps)
	studyMu.Lock()
	defer studyMu.Unlock()
	if studyCache == nil {
		studyCache = map[string][]benchResult{}
	}
	if r, ok := studyCache[key]; ok {
		return r
	}
	studyMu.Unlock()
	r := runStudy(cfg, eps)
	studyMu.Lock()
	studyCache[key] = r
	return r
}

const defaultCircuitEps = 0.007 // the paper's RQ3 threshold

// Fig3b regenerates the Rz:U3 rotation-count ratio across the suite.
func Fig3b(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	benches := selectBenchmarks(0) // transpiling is cheap: use all 192
	t := &Table{
		ID:     "fig3b",
		Title:  "ratio of Rz-basis to U3-basis rotation counts after transpilation",
		Header: []string{"benchmark", "category", "rz_rotations", "u3_rotations", "ratio"},
	}
	var ratios []float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	type rowT struct {
		b      suite.Benchmark
		rz, u3 int
		ratio  float64
	}
	rowsOut := make([]rowT, len(benches))
	for i, b := range benches {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, b suite.Benchmark) {
			defer wg.Done()
			defer func() { <-sem }()
			u3, _ := transpile.BestSetting(b.Circuit, transpile.BasisU3)
			rz, _ := transpile.BestSetting(b.Circuit, transpile.BasisRz)
			nU3, nRz := u3.CountRotations(), rz.CountRotations()
			ratio := math.NaN()
			if nU3 > 0 {
				ratio = float64(nRz) / float64(nU3)
			}
			rowsOut[i] = rowT{b, nRz, nU3, ratio}
			if !math.IsNaN(ratio) {
				mu.Lock()
				ratios = append(ratios, ratio)
				mu.Unlock()
			}
		}(i, b)
	}
	wg.Wait()
	for _, r := range rowsOut {
		t.Add(r.b.Name, string(r.b.Category), r.rz, r.u3, r.ratio)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean ratio %.3f over %d circuits (values > 1 favor the U3 IR; paper shows up to 2.5x)",
			geomean(ratios), len(ratios)))
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig6 regenerates the best-transpile-setting histogram (16 settings).
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	benches := selectBenchmarks(0)
	counts := map[transpile.Setting]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for _, b := range benches {
		wg.Add(1)
		sem <- struct{}{}
		go func(b suite.Benchmark) {
			defer wg.Done()
			defer func() { <-sem }()
			best := math.MaxInt32
			vals := map[transpile.Setting]int{}
			for _, s := range transpile.AllSettings() {
				n := transpile.OptimizeWith(b.Circuit, s).CountRotations()
				vals[s] = n
				if n < best {
					best = n
				}
			}
			mu.Lock()
			for s, n := range vals {
				if n == best {
					counts[s]++
				}
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	t := &Table{
		ID:     "fig6",
		Title:  "instances where each transpilation setting achieves the fewest rotations",
		Header: []string{"basis", "level", "commutation", "wins"},
	}
	basisName := map[transpile.Basis]string{transpile.BasisRz: "rz", transpile.BasisU3: "u3"}
	rzTotal, u3Total := 0, 0
	for _, s := range transpile.AllSettings() {
		t.Add(basisName[s.Basis], s.Level, s.Commute, counts[s])
		if s.Basis == transpile.BasisRz {
			rzTotal += counts[s]
		} else {
			u3Total += counts[s]
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("u3 settings win %d instances vs rz %d (ties counted for both; paper Fig. 6 shows U3+commutation dominating)", u3Total, rzTotal))
	return t, t.WriteCSV(cfg.OutDir)
}

// Tab2 regenerates the dataset statistics table.
func Tab2(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	stats := suite.DatasetStats(suite.Suite())
	t := &Table{
		ID:     "tab2",
		Title:  "datasets used in the full circuit benchmarks",
		Header: []string{"dataset", "count", "min_qubits", "mean_qubits", "max_qubits", "min_rot", "mean_rot", "max_rot"},
	}
	for _, s := range stats {
		t.Add(s.Dataset, s.Count, s.MinQ, s.MeanQ, s.MaxQ, s.MinRot, s.MeanRot, s.MaxRot)
	}
	t.Notes = append(t.Notes, "generated corpus; paper Table 2 ranges: benchpress 2-395 qubits, hamlib 2-592, qaoa 4-26")
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig10 regenerates the per-category T/T-depth/Clifford reduction ratios.
func Fig10(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	results := cachedStudy(cfg, defaultCircuitEps)
	t := &Table{
		ID:    "fig10",
		Title: "T count, T depth and Clifford reductions of trasyn over gridsynth by category",
		Header: []string{"benchmark", "category", "t_ratio", "tdepth_ratio", "clifford_ratio",
			"log_err_ratio", "u3_rotations", "rz_rotations"},
	}
	perCat := map[string][][3]float64{}
	for _, r := range results {
		if r.err != nil || r.u3Out == nil || r.rzOut == nil {
			continue
		}
		tU3, tRz := r.u3Out.TCount(), r.rzOut.TCount()
		dU3, dRz := r.u3Out.TDepth(), r.rzOut.TDepth()
		cU3, cRz := r.u3Out.CliffordCount(), r.rzOut.CliffordCount()
		if tU3 == 0 || dU3 == 0 || cU3 == 0 {
			continue
		}
		tr := float64(tRz) / float64(tU3)
		dr := float64(dRz) / float64(dU3)
		cr := float64(cRz) / float64(cU3)
		logErrRatio := math.NaN()
		if r.u3Stats.ErrorBound > 0 && r.rzStats.ErrorBound > 0 {
			logErrRatio = math.Log(r.u3Stats.ErrorBound) / math.Log(r.rzStats.ErrorBound)
		}
		cat := string(r.bench.Category)
		perCat[cat] = append(perCat[cat], [3]float64{tr, dr, cr})
		t.Add(r.bench.Name, cat, tr, dr, cr, logErrRatio,
			r.u3IR.CountRotations(), r.rzIR.CountRotations())
	}
	for cat, vals := range perCat {
		var ts, ds, cs []float64
		for _, v := range vals {
			ts = append(ts, v[0])
			ds = append(ds, v[1])
			cs = append(cs, v[2])
		}
		t.Add("GEOMEAN/"+cat, cat, geomean(ts), geomean(ds), geomean(cs), "", "", "")
	}
	t.Notes = append(t.Notes,
		"paper geomeans: T 1.64/1.46/1.09/1.17 and Clifford 2.44/2.88/1.75/2.43 for qaoa/quantum-ham/classical-ham/ft-alg",
		fmt.Sprintf("per-rotation eps=%.3g; gridsynth eps scaled by rotation ratio (paper §4.3)", defaultCircuitEps))
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig2 regenerates the headline reduction-ratio summary.
func Fig2(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	results := cachedStudy(cfg, defaultCircuitEps)
	var tRatios, cRatios, infidRatios []float64
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	for _, r := range results {
		if r.err != nil || r.u3Out == nil || r.rzOut == nil {
			continue
		}
		if tU3 := r.u3Out.TCount(); tU3 > 0 {
			tRatios = append(tRatios, float64(r.rzOut.TCount())/float64(tU3))
		}
		if cU3 := r.u3Out.CliffordCount(); cU3 > 0 {
			cRatios = append(cRatios, float64(r.rzOut.CliffordCount())/float64(cU3))
		}
		if r.bench.Circuit.N <= cfg.SimQubits {
			// Infidelity vs the ORIGINAL circuit's state: synthesis and
			// logical error combine exactly as in the paper's RQ4 setup.
			nm := sim.NoiseModel{Rate: 1e-5}
			fU3 := sim.ImportanceFidelityVs(r.bench.Circuit, r.u3Out, nm, cfg.FidTrials, rng)
			fRz := sim.ImportanceFidelityVs(r.bench.Circuit, r.rzOut, nm, cfg.FidTrials, rng)
			if iU3 := 1 - fU3; iU3 > 0 {
				infidRatios = append(infidRatios, (1-fRz)/iU3)
			}
		}
	}
	t := &Table{
		ID:     "fig2",
		Title:  "headline reduction ratios (gridsynth / trasyn); >1 favors trasyn",
		Header: []string{"metric", "geomean", "max", "n"},
	}
	_, tmax := minMax(tRatios)
	_, cmax := minMax(cRatios)
	_, imax := minMax(infidRatios)
	t.Add("t_count", geomean(tRatios), tmax, len(tRatios))
	t.Add("clifford", geomean(cRatios), cmax, len(cRatios))
	t.Add("infidelity@1e-5", geomean(infidRatios), imax, len(infidRatios))
	t.Notes = append(t.Notes, "paper geomeans: T 1.38, Clifford 2.44, infidelity 2.07 (1e-5 logical rate)")
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig11 regenerates the absolute circuit-infidelity scatter for trasyn.
func Fig11(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	results := cachedStudy(cfg, defaultCircuitEps)
	t := &Table{
		ID:     "fig11",
		Title:  "circuit synthesis infidelity (trasyn) vs qubits and rotations",
		Header: []string{"benchmark", "dataset", "qubits", "rotations", "error_bound", "infidelity_est"},
	}
	for _, r := range results {
		if r.err != nil || r.u3Out == nil {
			continue
		}
		// Infidelity estimate from the additive error bound: 1-F ≈ (Σε)².
		eb := r.u3Stats.ErrorBound
		t.Add(r.bench.Name, r.bench.Dataset, r.bench.Circuit.N,
			r.u3IR.CountRotations(), eb, eb*eb)
	}
	t.Notes = append(t.Notes, "paper Fig. 11 plots exact state infidelity; the additive unitary-distance bound squares to an infidelity estimate")
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig12 regenerates the trasyn vs BQSKit+gridsynth comparison.
func Fig12(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	results := cachedStudy(cfg, defaultCircuitEps)
	t := &Table{
		ID:     "fig12",
		Title:  "trasyn vs BQSKit-style resynthesis + gridsynth",
		Header: []string{"benchmark", "rot_ratio", "t_ratio"},
	}
	var rotRatios, tRatios []float64
	var wg sync.WaitGroup
	var mu sync.Mutex
	sem := make(chan struct{}, cfg.Workers)
	for _, r := range results {
		if r.err != nil || r.u3Out == nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(r benchResult) {
			defer wg.Done()
			defer func() { <-sem }()
			bq, err := optimize.ZXZXZ().Optimize(r.u3IR)
			if err != nil {
				return
			}
			nBq, nU3 := bq.CountRotations(), r.u3IR.CountRotations()
			if nU3 == 0 {
				return
			}
			epsRz := defaultCircuitEps * float64(nU3) / math.Max(1, float64(nBq))
			gp, err := lowerOnly("gridsynth", synth.Request{Epsilon: epsRz}, synth.NewCache(0))
			if err != nil {
				return
			}
			lowRes, err := gp.Run(context.Background(), bq)
			if err != nil {
				return
			}
			low := lowRes.Circuit
			mu.Lock()
			defer mu.Unlock()
			rr := float64(nBq) / float64(nU3)
			tr := math.NaN()
			if t := r.u3Out.TCount(); t > 0 {
				tr = float64(low.TCount()) / float64(t)
			}
			rotRatios = append(rotRatios, rr)
			if !math.IsNaN(tr) {
				tRatios = append(tRatios, tr)
			}
			t.Add(r.bench.Name, rr, tr)
		}(r)
	}
	wg.Wait()
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean rotation ratio %.3f, T ratio %.3f (paper: BQSKit only increases rotations → more T)",
			geomean(rotRatios), geomean(tRatios)))
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig13 regenerates the application-fidelity comparison under logical error.
func Fig13(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	results := cachedStudy(cfg, defaultCircuitEps)
	rates := []float64{1e-4, 1e-5, 1e-6}
	t := &Table{
		ID:     "fig13",
		Title:  "infidelity ratio (gridsynth/trasyn) under logical depolarizing noise",
		Header: []string{"benchmark", "rate", "infid_trasyn", "infid_gridsynth", "ratio"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	perRate := map[float64][]float64{}
	for _, r := range results {
		if r.err != nil || r.u3Out == nil || r.rzOut == nil || r.bench.Circuit.N > cfg.SimQubits {
			continue
		}
		for _, rate := range rates {
			nm := sim.NoiseModel{Rate: rate} // all non-Pauli gates noisy (RQ4 model)
			fU3 := sim.ImportanceFidelityVs(r.bench.Circuit, r.u3Out, nm, cfg.FidTrials, rng)
			fRz := sim.ImportanceFidelityVs(r.bench.Circuit, r.rzOut, nm, cfg.FidTrials, rng)
			iU3 := 1 - fU3
			iRz := 1 - fRz
			if iU3 <= 0 {
				continue
			}
			ratio := iRz / iU3
			perRate[rate] = append(perRate[rate], ratio)
			t.Add(r.bench.Name, rate, iU3, iRz, ratio)
		}
	}
	for _, rate := range rates {
		t.Add(fmt.Sprintf("GEOMEAN@%.0e", rate), rate, "", "", geomean(perRate[rate]))
	}
	t.Notes = append(t.Notes, "paper: advantage consistent across rates (up to ~4x); noise on all non-Pauli gates")
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig14 regenerates the before/after post-optimization (PyZX-style) ratios,
// driving the public optimize package's fixed-point driver (foldphases +
// peephole at the experiment's enumeration budget).
func Fig14(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	results := cachedStudy(cfg, defaultCircuitEps)
	rules := []optimize.Optimizer{optimize.FoldPhases(), optimize.NewPeephole(cfg.MaxT)}
	postOpt := func(c *circuit.Circuit) *circuit.Circuit {
		res, err := optimize.Run(c, rules...)
		if err != nil {
			return c
		}
		return res.Circuit
	}
	t := &Table{
		ID:     "fig14",
		Title:  "trasyn:gridsynth ratios before and after post-optimization",
		Header: []string{"benchmark", "t_ratio_before", "t_ratio_after", "cliff_ratio_before", "cliff_ratio_after"},
	}
	var before, after []float64
	var wg sync.WaitGroup
	var mu sync.Mutex
	sem := make(chan struct{}, cfg.Workers)
	for _, r := range results {
		if r.err != nil || r.u3Out == nil || r.rzOut == nil || r.u3Out.TCount() == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(r benchResult) {
			defer wg.Done()
			defer func() { <-sem }()
			u3Opt := postOpt(r.u3Out)
			rzOpt := postOpt(r.rzOut)
			if u3Opt.TCount() == 0 {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			b := float64(r.rzOut.TCount()) / float64(r.u3Out.TCount())
			a := float64(rzOpt.TCount()) / float64(u3Opt.TCount())
			cb := float64(r.rzOut.CliffordCount()) / math.Max(1, float64(r.u3Out.CliffordCount()))
			ca := float64(rzOpt.CliffordCount()) / math.Max(1, float64(u3Opt.CliffordCount()))
			before = append(before, b)
			after = append(after, a)
			t.Add(r.bench.Name, b, a, cb, ca)
		}(r)
	}
	wg.Wait()
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean T ratio before %.3f → after %.3f (paper: PyZX cannot reclaim the T advantage)",
			geomean(before), geomean(after)))
	return t, t.WriteCSV(cfg.OutDir)
}
