package expt

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/gridsynth"
	"repro/internal/qmat"
	"repro/internal/sim"
)

// rq1Point is one synthesis outcome for the RQ1 scatter.
type rq1Point struct {
	method  string
	scale   int // 1..3 ↔ error regimes 1e-1/1e-2/1e-3
	tCount  int
	cliff   int
	err     float64
	seconds float64
	ok      bool
}

var rq1Eps = [4]float64{0, 1e-1, 1e-2, 1e-3} // indexed by scale

var (
	rq1Mu    sync.Mutex
	rq1Cache = map[string][]rq1Point{}
)

// runRQ1 synthesizes cfg.N Haar-random unitaries with trasyn, gridsynth
// and the annealer at the three scales of Figure 7. Results are cached per
// scale key so fig7 and fig8 share one run within a process.
func runRQ1(cfg Config) []rq1Point {
	cfg = cfg.filled()
	key := fmt.Sprintf("%d/%d/%d/%d", cfg.N, cfg.Samples, cfg.MaxT, cfg.Seed)
	rq1Mu.Lock()
	if pts, ok := rq1Cache[key]; ok {
		rq1Mu.Unlock()
		return pts
	}
	rq1Mu.Unlock()
	pts := computeRQ1(cfg)
	rq1Mu.Lock()
	rq1Cache[key] = pts
	rq1Mu.Unlock()
	return pts
}

func computeRQ1(cfg Config) []rq1Point {
	type job struct{ i, scale int }
	var jobs []job
	for i := 0; i < cfg.N; i++ {
		for s := 1; s <= 3; s++ {
			jobs = append(jobs, job{i, s})
		}
	}
	var mu sync.Mutex
	var points []rq1Point
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			u := qmat.HaarRandom(rand.New(rand.NewSource(cfg.Seed + int64(j.i))))
			var local []rq1Point

			// trasyn, Eq. (3) mode: 2·scale tensors of budget m ⇒ T budgets
			// of ~10/20/30 at the default m=5 (the paper's three scales).
			tcfg := cfg.trasynConfig(2*j.scale, 0, cfg.Seed+int64(j.i*7+j.scale))
			tcfg.MinSites = 2 * j.scale
			start := time.Now()
			res := core.Synthesize(u, tcfg)
			local = append(local, rq1Point{
				method: "trasyn", scale: j.scale,
				tCount: res.TCount, cliff: res.Clifford, err: res.Error,
				seconds: time.Since(start).Seconds(), ok: res.Seq != nil,
			})

			// gridsynth (three-rotation U3 decomposition).
			start = time.Now()
			gres, gerr := gridsynth.U3(u, rq1Eps[j.scale], gridsynth.Options{})
			local = append(local, rq1Point{
				method: "gridsynth", scale: j.scale,
				tCount: gres.TCount, cliff: gres.Clifford, err: gres.Error,
				seconds: time.Since(start).Seconds(), ok: gerr == nil,
			})

			// Synthetiq-style annealer, small wall-clock budget.
			start = time.Now()
			ares := anneal.Synthesize(u, rq1Eps[j.scale], anneal.Options{
				Budget: 400 * time.Millisecond,
				Rng:    rand.New(rand.NewSource(cfg.Seed + int64(j.i*13+j.scale))),
			})
			local = append(local, rq1Point{
				method: "synthetiq-like", scale: j.scale,
				tCount: ares.TCount, cliff: ares.Clifford, err: ares.Error,
				seconds: time.Since(start).Seconds(), ok: ares.Success,
			})
			mu.Lock()
			points = append(points, local...)
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return points
}

// Fig7 regenerates the synthesis-error vs T-count / Clifford-count scatter.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	points := runRQ1(cfg)
	t := &Table{
		ID:     "fig7",
		Title:  "synthesis error vs T count and Clifford count (RQ1 scatter)",
		Header: []string{"method", "scale", "t_count", "clifford", "error", "found"},
	}
	// Per (method, scale) summary rows first for readability.
	for _, m := range []string{"trasyn", "gridsynth", "synthetiq-like"} {
		for s := 1; s <= 3; s++ {
			var ts, cs, es []float64
			found := 0
			total := 0
			for _, p := range points {
				if p.method != m || p.scale != s {
					continue
				}
				total++
				if !p.ok {
					continue
				}
				found++
				ts = append(ts, float64(p.tCount))
				cs = append(cs, float64(p.cliff))
				es = append(es, p.err)
			}
			if total == 0 {
				continue
			}
			t.Add("MEAN/"+m, s, mean(ts), mean(cs), geomean(es), fmt.Sprintf("%d/%d", found, total))
		}
	}
	for _, p := range points {
		t.Add(p.method, p.scale, p.tCount, p.cliff, p.err, p.ok)
	}
	t.Notes = append(t.Notes,
		"scales 1..3 target errors 1e-1/1e-2/1e-3 (gridsynth thresholds; trasyn T budgets m·scale)",
		fmt.Sprintf("n=%d unitaries; paper uses 1000 with k=40000 on an A100", cfg.N))
	return t, t.WriteCSV(cfg.OutDir)
}

// Tab1 regenerates Table 1: T and Clifford reductions at the tightest scale.
func Tab1(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	// Pair trasyn and gridsynth per unitary at the tightest scale, in
	// parallel across unitaries with deterministic per-index seeds.
	tRatios := make([]float64, 0, cfg.N)
	cRatios := make([]float64, 0, cfg.N)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			u := qmat.HaarRandom(rand.New(rand.NewSource(cfg.Seed + int64(i))))
			tcfg := cfg.trasynConfig(6, 0, cfg.Seed+int64(i*7+3))
			tcfg.MinSites = 6
			res := core.Synthesize(u, tcfg)
			// Match gridsynth's threshold to the error trasyn achieved so
			// the comparison is at "similar approximation errors" (§4.1).
			geps := res.Error
			if geps < 1e-4 {
				geps = 1e-4
			}
			if geps > 0.5 {
				geps = 0.5
			}
			gres, err := gridsynth.U3(u, geps, gridsynth.Options{})
			if err != nil || res.Seq == nil || res.TCount == 0 || gres.TCount == 0 {
				return
			}
			mu.Lock()
			tRatios = append(tRatios, float64(gres.TCount)/float64(res.TCount))
			cRatios = append(cRatios, float64(gres.Clifford)/math.Max(1, float64(res.Clifford)))
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	t := &Table{
		ID:     "tab1",
		Title:  "T and Clifford count reductions of trasyn vs gridsynth (error scale 1e-3)",
		Header: []string{"reduction", "min", "mean", "geomean", "median", "max"},
	}
	tmin, tmax := minMax(tRatios)
	cmin, cmax := minMax(cRatios)
	t.Add("t_count", tmin, mean(tRatios), geomean(tRatios), median(tRatios), tmax)
	t.Add("clifford", cmin, mean(cRatios), geomean(cRatios), median(cRatios), cmax)
	t.Notes = append(t.Notes,
		"paper (1000 unitaries, A100): T 2.31/3.76/3.74/3.68/6.12; Clifford 3.39/5.77/5.73/5.66/9.41",
		"CPU-scale trasyn budgets give smaller but same-direction reductions; raise -samples/-maxt to approach paper scale")
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig8 regenerates the synthesis-time comparison.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	points := runRQ1(cfg)
	t := &Table{
		ID:     "fig8",
		Title:  "synthesis time per unitary (and price-adjusted)",
		Header: []string{"method", "scale", "median_s", "mean_s", "price_usd", "found"},
	}
	const cpuUSDPerHour = 1.18 // paper's 24-core EPYC price point
	for _, m := range []string{"trasyn", "gridsynth", "synthetiq-like"} {
		for s := 1; s <= 3; s++ {
			var secs []float64
			found, total := 0, 0
			for _, p := range points {
				if p.method != m || p.scale != s {
					continue
				}
				total++
				if p.ok {
					found++
				}
				secs = append(secs, p.seconds)
			}
			if total == 0 {
				continue
			}
			med := median(secs)
			t.Add(m, s, med, mean(secs), med/3600*cpuUSDPerHour, fmt.Sprintf("%d/%d", found, total))
		}
	}
	t.Notes = append(t.Notes,
		"all methods run on the same CPU here; the paper price-adjusts A100 vs 24-core EPYC",
		"synthetiq-like budget fixed at 0.4s (paper: 10 min limit, mostly exhausted at tight eps)")
	return t, t.WriteCSV(cfg.OutDir)
}

// Fig9 regenerates the logical-vs-synthesis-error tradeoff and the √-fit.
func Fig9(cfg Config) (*Table, error) {
	cfg = cfg.filled()
	epsGrid := []float64{1e-1, 4.6e-2, 2.2e-2, 1e-2, 4.6e-3, 2.2e-3, 1e-3, 4.6e-4, 2.2e-4, 1e-4, 4.6e-5}
	rates := []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7}
	n := cfg.N
	rng := rand.New(rand.NewSource(cfg.Seed + 999))
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = rng.Float64()*2*math.Pi - math.Pi
	}
	// infid[e][r] = mean process infidelity at epsGrid[e], rates[r].
	infid := make([][]float64, len(epsGrid))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	var mu sync.Mutex
	for e, eps := range epsGrid {
		infid[e] = make([]float64, len(rates))
		wg.Add(1)
		sem <- struct{}{}
		go func(e int, eps float64) {
			defer wg.Done()
			defer func() { <-sem }()
			sums := make([]float64, len(rates))
			count := 0
			for _, th := range angles {
				res, err := gridsynth.Rz(th, eps, gridsynth.Options{})
				if err != nil {
					continue
				}
				count++
				target := qmat.Rz(th)
				for r, rate := range rates {
					ch := sim.SequencePTM(res.Seq, rate)
					sums[r] += 1 - sim.ProcessFidelity(target, ch)
				}
			}
			mu.Lock()
			for r := range rates {
				if count > 0 {
					infid[e][r] = sums[r] / float64(count)
				}
			}
			mu.Unlock()
		}(e, eps)
	}
	wg.Wait()
	t := &Table{
		ID:     "fig9",
		Title:  "process infidelity vs synthesis error threshold (a) and optimal threshold fit (b)",
		Header: []string{"series", "x", "y"},
	}
	for e, eps := range epsGrid {
		for r, rate := range rates {
			t.Add(fmt.Sprintf("infid@rate=%.0e", rate), eps, infid[e][r])
			_ = r
		}
	}
	// (b) optimal threshold per rate + least-squares fit in log-log.
	var lx, ly []float64
	for r, rate := range rates {
		bestE, bestV := 0, math.Inf(1)
		for e := range epsGrid {
			if infid[e][r] > 0 && infid[e][r] < bestV {
				bestE, bestV = e, infid[e][r]
			}
		}
		opt := epsGrid[bestE]
		t.Add("optimal_eps", rate, opt)
		lx = append(lx, math.Log(rate))
		ly = append(ly, math.Log(opt))
	}
	slope, intercept := linFit(lx, ly)
	t.Add("fit_exponent", "", slope)
	t.Add("fit_coefficient", "", math.Exp(intercept))
	t.Notes = append(t.Notes,
		"paper fit: optimal eps ≈ 1.22·√(logical rate) (exponent 0.5)",
		fmt.Sprintf("measured exponent %.3f, coefficient %.3f over rates 1e-3..1e-7", slope, math.Exp(intercept)))
	return t, t.WriteCSV(cfg.OutDir)
}

func linFit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}
