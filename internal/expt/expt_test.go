package expt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns a configuration that keeps every experiment in test time.
func tiny(t *testing.T) Config {
	t.Helper()
	return Config{
		N:          4,
		Samples:    300,
		MaxT:       5,
		Sites:      2,
		BenchLimit: 6,
		SimQubits:  5,
		FidTrials:  60,
		Seed:       7,
		Workers:    4,
	}
}

// TestAllExperimentsRun: every registered experiment must produce a
// non-empty table at miniature scale. This is the end-to-end smoke test of
// the whole reproduction pipeline.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive end-to-end test")
	}
	cfg := tiny(t)
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tab.Print(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatalf("%s print output missing id", e.ID)
			}
		})
	}
}

func TestFindRegistry(t *testing.T) {
	if _, err := Find("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{ID: "unit", Header: []string{"a", "b"}}
	tab.Add(1, 2.5)
	if err := tab.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "unit.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a,b") {
		t.Fatalf("csv content wrong: %q", data)
	}
}

func TestStatHelpers(t *testing.T) {
	xs := []float64{1, 2, 4}
	if g := geomean(xs); g < 1.9 || g > 2.1 {
		t.Errorf("geomean = %v", g)
	}
	if m := median(xs); m != 2 {
		t.Errorf("median = %v", m)
	}
	if m := mean(xs); m < 2.3 || m > 2.4 {
		t.Errorf("mean = %v", m)
	}
	lo, hi := minMax(xs)
	if lo != 1 || hi != 4 {
		t.Errorf("minMax = %v %v", lo, hi)
	}
	slope, _ := linFit([]float64{0, 1, 2}, []float64{1, 3, 5})
	if slope < 1.99 || slope > 2.01 {
		t.Errorf("linFit slope = %v", slope)
	}
}
