package gates

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/qmat"
	"repro/internal/ring"
)

func TestGateMatricesConsistent(t *testing.T) {
	for g := I; g < numGates; g++ {
		if !qmat.ApproxEqual(g.M2(), g.UMat().Complex(), 1e-12) {
			t.Errorf("%v: numeric and exact matrices disagree", g)
		}
		adj := qmat.Mul(g.M2(), g.Adjoint().M2())
		if !qmat.ApproxEqual(adj, qmat.I2(), 1e-12) {
			t.Errorf("%v: g·g† ≠ I", g)
		}
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	s := Sequence{H, T, S, H, T, Z, Sdg, Tdg, X}
	parsed, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != s.String() {
		t.Fatalf("parse round trip: %q vs %q", parsed.String(), s.String())
	}
	if _, err := Parse("H FOO"); err == nil {
		t.Error("expected parse error")
	}
}

func TestSequenceCounts(t *testing.T) {
	s := Sequence{H, T, S, H, T, Z, Sdg, Tdg, X}
	if s.TCount() != 3 {
		t.Errorf("TCount = %d, want 3", s.TCount())
	}
	if s.CliffordCount() != 4 {
		t.Errorf("CliffordCount = %d, want 4 (H S H Sdg)", s.CliffordCount())
	}
}

func TestSequenceAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomWord(r, 10)
		p := qmat.Mul(s.Matrix(), s.Adjoint().Matrix())
		return qmat.ApproxEqual(p, qmat.I2(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func randomWord(r *rand.Rand, n int) Sequence {
	alphabet := []Gate{X, Y, Z, H, S, Sdg, T, Tdg}
	s := make(Sequence, n)
	for i := range s {
		s[i] = alphabet[r.Intn(len(alphabet))]
	}
	return s
}

func TestCliffordGroupSize(t *testing.T) {
	cl := CliffordGroup()
	if len(cl) != 24 {
		t.Fatalf("Clifford group has %d elements, want 24", len(cl))
	}
	if len(cl[0].Seq) != 0 {
		t.Errorf("first Clifford should be identity, got %v", cl[0].Seq)
	}
	seen := map[ring.Key]bool{}
	for _, c := range cl {
		if seen[c.Key] {
			t.Fatal("duplicate Clifford")
		}
		seen[c.Key] = true
		if got := c.Seq.UMat(); !got.EqualUpToPhase(c.U) {
			t.Fatal("Clifford sequence does not reproduce its matrix")
		}
		if c.Seq.TCount() != 0 {
			t.Fatal("Clifford sequence contains T gates")
		}
	}
}

func TestCliffordClosure(t *testing.T) {
	cl := CliffordGroup()
	for _, a := range cl {
		for _, b := range cl {
			if CliffordIndex(a.U.Mul(b.U)) < 0 {
				t.Fatalf("product of Cliffords not in group")
			}
		}
	}
}

func TestCliffordIndexRejectsT(t *testing.T) {
	if CliffordIndex(T.UMat()) >= 0 {
		t.Error("T should not be a Clifford")
	}
}

// TestEnumerationCountLaw checks the paper's count of unique matrices:
// 24·(3·2^t − 2) operators with T count ≤ t (§3.3, step 0).
func TestEnumerationCountLaw(t *testing.T) {
	tab := BuildTable(7)
	cum := 0
	for lvl := 0; lvl <= 7; lvl++ {
		cum += len(tab.Levels[lvl])
		want := 24 * (3*(1<<uint(lvl)) - 2)
		if cum != want {
			t.Fatalf("cumulative count at T=%d is %d, want %d", lvl, cum, want)
		}
	}
}

func TestEnumerationEntriesAreConsistent(t *testing.T) {
	tab := Shared(5)
	rng := rand.New(rand.NewSource(2))
	for lvl := 0; lvl <= 5; lvl++ {
		for trial := 0; trial < 40; trial++ {
			es := tab.Levels[lvl]
			e := &es[rng.Intn(len(es))]
			seq := e.Sequence()
			if seq.TCount() != int(e.TCount) || int(e.TCount) != lvl {
				t.Fatalf("entry T count mismatch: seq=%d entry=%d level=%d", seq.TCount(), e.TCount, lvl)
			}
			if seq.CliffordCount() != int(e.NonPauli) {
				t.Fatalf("entry NonPauli mismatch: %d vs %d", seq.CliffordCount(), e.NonPauli)
			}
			if !qmat.ApproxEqual(seq.Matrix(), e.M, 1e-9) {
				t.Fatal("entry matrix does not match its sequence")
			}
		}
	}
}

// TestLookupFindsMinimalTCount: the exact product of ANY Clifford+T word
// with w T gates must be found in the table with T count ≤ w. This is the
// property trasyn's step-3 rewriting and exact synthesis both rely on.
func TestLookupFindsMinimalTCount(t *testing.T) {
	tab := Shared(6)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		w := randomWord(rng, 3+rng.Intn(15))
		tc := w.TCount()
		if tc > 6 {
			continue
		}
		e, ok := tab.Find(w.UMat())
		if !ok {
			t.Fatalf("word %v (T=%d) not found in table", w, tc)
		}
		if int(e.TCount) > tc {
			t.Fatalf("table entry T=%d exceeds word T=%d for %v", e.TCount, tc, w)
		}
		// The found entry must be the same operator up to phase.
		if d := qmat.Distance(e.M, w.Matrix()); d > 1e-7 {
			t.Fatalf("lookup returned wrong operator: distance %v", d)
		}
	}
}

func TestCollect(t *testing.T) {
	tab := Shared(4)
	all := tab.Collect(0, 4)
	if len(all) != tab.Count() {
		t.Fatalf("Collect(0,4) returned %d, want %d", len(all), tab.Count())
	}
	only3 := tab.Collect(3, 3)
	if len(only3) != 24*3*(1<<2) {
		t.Fatalf("Collect(3,3) returned %d, want %d", len(only3), 24*3*(1<<2))
	}
	for _, e := range only3 {
		if e.TCount != 3 {
			t.Fatal("Collect returned wrong level")
		}
	}
	if got := tab.Collect(5, 9); got != nil {
		t.Fatal("Collect beyond MaxT should be empty")
	}
}

func TestSharedCaches(t *testing.T) {
	a := Shared(3)
	b := Shared(3)
	if a != b {
		t.Error("Shared should cache tables")
	}
}

// TestSharedConcurrentFirstUse hammers Shared from many goroutines across
// several budgets simultaneously, including budgets no other test touches,
// so the per-budget construction race is exercised under -race: every
// caller must observe the same fully built table.
func TestSharedConcurrentFirstUse(t *testing.T) {
	budgets := []int{1, 2, 4, 5}
	const workers = 16
	got := make([][]*Table, len(budgets))
	for i := range got {
		got[i] = make([]*Table, workers)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for bi, maxT := range budgets {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(bi, w, maxT int) {
				defer wg.Done()
				<-start
				tab := Shared(maxT)
				// Use the table immediately: a torn/partial table would
				// trip the race detector or fail the lookup below.
				if _, found := tab.Find(ring.UIdentity()); !found {
					t.Errorf("Shared(%d): identity not found", maxT)
				}
				got[bi][w] = tab
			}(bi, w, maxT)
		}
	}
	close(start)
	wg.Wait()
	for bi, maxT := range budgets {
		for w := 1; w < workers; w++ {
			if got[bi][w] != got[bi][0] {
				t.Fatalf("Shared(%d) returned distinct tables under concurrency", maxT)
			}
		}
	}
}

func BenchmarkBuildTableT8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BuildTable(8)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tab := Shared(6)
	rng := rand.New(rand.NewSource(4))
	words := make([]ring.UMat, 64)
	for i := range words {
		words[i] = randomWord(rng, 12).UMat()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Find(words[i%len(words)])
	}
}
