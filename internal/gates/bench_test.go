package gates

import "testing"

func BenchmarkEnumerationT8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := BuildTable(8)
		if tab.Count() != 24*(3*256-2) {
			b.Fatal("bad count")
		}
	}
}
