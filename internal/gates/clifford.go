package gates

import (
	"sort"
	"sync"

	"repro/internal/qmat"
	"repro/internal/ring"
)

// Clifford is one of the 24 single-qubit Clifford operators (up to global
// phase) with a cost-minimal generating sequence.
type Clifford struct {
	Seq Sequence  // cost-minimal sequence over {H, S, X, Y, Z}
	U   ring.UMat // exact matrix of Seq
	M   qmat.M2   // numeric matrix
	Key ring.Key  // canonical phase-invariant key
}

var (
	cliffordOnce  sync.Once
	cliffordGroup []Clifford
	cliffordIdx   map[ring.Key]int
)

// CliffordGroup returns the 24 Clifford operators, ordered with the identity
// first, each with a sequence minimizing (non-Pauli count, length). The
// result is built once and shared; callers must not mutate it.
func CliffordGroup() []Clifford {
	cliffordOnce.Do(buildCliffords)
	return cliffordGroup
}

// CliffordIndex returns the index into CliffordGroup of the operator equal
// to u up to global phase, or -1 if u is not a Clifford.
func CliffordIndex(u ring.UMat) int {
	cliffordOnce.Do(buildCliffords)
	if i, ok := cliffordIdx[u.CanonicalKey()]; ok {
		return i
	}
	return -1
}

type cliffCand struct {
	seq Sequence
	u   ring.UMat
}

func buildCliffords() {
	// Dijkstra-flavored BFS over generators; Paulis cost 0, H/S cost 1.
	gens := []Gate{X, Y, Z, H, S}
	best := map[ring.Key]cliffCand{}
	cost := func(s Sequence) (int, int) { return s.CliffordCount(), len(s) }
	better := func(a, b Sequence) bool {
		ac, al := cost(a)
		bc, bl := cost(b)
		if ac != bc {
			return ac < bc
		}
		return al < bl
	}
	id := cliffCand{seq: Sequence{}, u: ring.UIdentity()}
	best[id.u.CanonicalKey()] = id
	frontier := []cliffCand{id}
	for len(frontier) > 0 && len(best) < 24 {
		var next []cliffCand
		for _, c := range frontier {
			for _, g := range gens {
				nu := c.u.Mul(g.UMat())
				ns := append(append(Sequence{}, c.seq...), g)
				key := nu.CanonicalKey()
				if old, ok := best[key]; !ok || better(ns, old.seq) {
					best[key] = cliffCand{seq: ns, u: nu}
					next = append(next, cliffCand{seq: ns, u: nu})
				}
			}
		}
		frontier = next
	}
	// A couple of relaxation rounds so that costs settle (the graph is tiny).
	for round := 0; round < 4; round++ {
		changed := false
		for _, c := range snapshot(best) {
			for _, g := range gens {
				nu := c.u.Mul(g.UMat())
				ns := append(append(Sequence{}, c.seq...), g)
				key := nu.CanonicalKey()
				if old, ok := best[key]; !ok || better(ns, old.seq) {
					best[key] = cliffCand{seq: ns, u: nu}
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	if len(best) != 24 {
		panic("gates: Clifford group enumeration did not yield 24 elements")
	}
	cliffordGroup = make([]Clifford, 0, 24)
	for key, c := range best {
		cliffordGroup = append(cliffordGroup, Clifford{Seq: c.seq, U: c.u, M: c.u.Complex(), Key: key})
	}
	// Deterministic order: identity first, then by (cost, len, key).
	sort.Slice(cliffordGroup, func(i, j int) bool {
		a, b := cliffordGroup[i], cliffordGroup[j]
		ac, al := a.Seq.CliffordCount(), len(a.Seq)
		bc, bl := b.Seq.CliffordCount(), len(b.Seq)
		if ac != bc {
			return ac < bc
		}
		if al != bl {
			return al < bl
		}
		return lessKey(a.Key, b.Key)
	})
	cliffordIdx = make(map[ring.Key]int, 24)
	for i, c := range cliffordGroup {
		cliffordIdx[c.Key] = i
	}
}

func snapshot(m map[ring.Key]cliffCand) []cliffCand {
	out := make([]cliffCand, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	return out
}

func lessKey(a, b ring.Key) bool {
	if a.K != b.K {
		return a.K < b.K
	}
	for i := range a.C {
		if a.C[i] != b.C[i] {
			return a.C[i] < b.C[i]
		}
	}
	return false
}
