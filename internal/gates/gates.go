// Package gates defines the discrete Clifford+T gate alphabet, the
// single-qubit Clifford group, and the step-0 enumeration of the paper:
// all unique Clifford+T matrices (up to global phase) within a T-count
// budget, via Matsumoto–Amano normal forms, together with the lookup table
// used by trasyn's post-processing and by exact synthesis.
package gates

import (
	"fmt"
	"strings"

	"repro/internal/qmat"
	"repro/internal/ring"
)

// Gate is a discrete single-qubit gate from the Clifford+T alphabet.
type Gate uint8

// The gate alphabet. Pauli gates are free in error-corrected execution;
// H, S, S† count as Clifford resources; T, T† consume a magic state each.
const (
	I Gate = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	numGates
)

var gateNames = [numGates]string{"I", "X", "Y", "Z", "H", "S", "Sdg", "T", "Tdg"}

// String returns the gate mnemonic.
func (g Gate) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("Gate(%d)", uint8(g))
}

// IsPauli reports whether g ∈ {I, X, Y, Z}.
func (g Gate) IsPauli() bool { return g <= Z }

// IsT reports whether g consumes a magic state (T or T†).
func (g Gate) IsT() bool { return g == T || g == Tdg }

// IsCliffordNonPauli reports whether g ∈ {H, S, S†}.
func (g Gate) IsCliffordNonPauli() bool { return g == H || g == S || g == Sdg }

// M2 returns the numeric matrix of g.
func (g Gate) M2() qmat.M2 {
	switch g {
	case I:
		return qmat.I2()
	case X:
		return qmat.X
	case Y:
		return qmat.Y
	case Z:
		return qmat.Z
	case H:
		return qmat.H()
	case S:
		return qmat.S()
	case Sdg:
		return qmat.Sdg()
	case T:
		return qmat.T()
	case Tdg:
		return qmat.Tdg()
	}
	panic("gates: unknown gate")
}

// UMat returns the exact matrix of g over D[ω].
func (g Gate) UMat() ring.UMat {
	switch g {
	case I:
		return ring.UIdentity()
	case X:
		return ring.UGateX()
	case Y:
		return ring.UGateY()
	case Z:
		return ring.UGateZ()
	case H:
		return ring.UGateH()
	case S:
		return ring.UGateS()
	case Sdg:
		return ring.UGateSdg()
	case T:
		return ring.UGateT()
	case Tdg:
		return ring.UGateTdg()
	}
	panic("gates: unknown gate")
}

// Adjoint returns g†.
func (g Gate) Adjoint() Gate {
	switch g {
	case S:
		return Sdg
	case Sdg:
		return S
	case T:
		return Tdg
	case Tdg:
		return T
	default:
		return g
	}
}

// Sequence is a list of gates in matrix-product order: the product of a
// sequence [g1, g2, …, gn] is g1·g2·…·gn (gn acts first on kets).
type Sequence []Gate

// Matrix returns the numeric product of the sequence.
func (s Sequence) Matrix() qmat.M2 {
	m := qmat.I2()
	for _, g := range s {
		m = qmat.Mul(m, g.M2())
	}
	return m
}

// UMat returns the exact product of the sequence.
func (s Sequence) UMat() ring.UMat {
	m := ring.UIdentity()
	for _, g := range s {
		m = m.Mul(g.UMat())
	}
	return m
}

// TCount returns the number of T/T† gates.
func (s Sequence) TCount() int {
	n := 0
	for _, g := range s {
		if g.IsT() {
			n++
		}
	}
	return n
}

// CliffordCount returns the number of non-Pauli Clifford gates (H, S, S†);
// Pauli gates are free in QEC (paper §4, Metrics).
func (s Sequence) CliffordCount() int {
	n := 0
	for _, g := range s {
		if g.IsCliffordNonPauli() {
			n++
		}
	}
	return n
}

// Adjoint returns the sequence implementing the inverse product.
func (s Sequence) Adjoint() Sequence {
	r := make(Sequence, 0, len(s))
	for i := len(s) - 1; i >= 0; i-- {
		r = append(r, s[i].Adjoint())
	}
	return r
}

// String renders the sequence as space-separated mnemonics.
func (s Sequence) String() string {
	if len(s) == 0 {
		return "I"
	}
	parts := make([]string, len(s))
	for i, g := range s {
		parts[i] = g.String()
	}
	return strings.Join(parts, " ")
}

// Parse parses a space-separated gate string (inverse of String).
func Parse(str string) (Sequence, error) {
	var s Sequence
	for _, tok := range strings.Fields(str) {
		found := false
		for g := I; g < numGates; g++ {
			if strings.EqualFold(tok, gateNames[g]) {
				if g != I {
					s = append(s, g)
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("gates: unknown gate %q", tok)
		}
	}
	return s, nil
}
