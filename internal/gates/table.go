package gates

import (
	"fmt"
	"sync"

	"repro/internal/qmat"
	"repro/internal/ring"
)

// Entry is one unique Clifford+T operator (up to global phase), stored as
// its Matsumoto–Amano normal form (ε|T)(HT|SHT)*·C. The MA form realizes
// the minimal T count for the operator.
type Entry struct {
	M        qmat.M2 // numeric matrix of the normal form
	TPart    uint32  // syllable bits: bit i = 1 means syllable i is SHT, else HT
	NSyl     uint8   // number of (HT|SHT) syllables
	LeadT    bool    // leading T factor present
	Cliff    uint8   // index into CliffordGroup()
	TCount   uint8   // minimal T count (NSyl + LeadT)
	NonPauli uint8   // H+S+S† gates in Sequence() (Clifford cost)
}

// Sequence reconstructs the gate sequence (matrix-product order).
func (e *Entry) Sequence() Sequence {
	s := make(Sequence, 0, int(e.NSyl)*3+6)
	if e.LeadT {
		s = append(s, T)
	}
	for i := 0; i < int(e.NSyl); i++ {
		if e.TPart>>i&1 == 1 {
			s = append(s, S, H, T)
		} else {
			s = append(s, H, T)
		}
	}
	s = append(s, CliffordGroup()[e.Cliff].Seq...)
	return s
}

// Ref locates an Entry inside a Table.
type Ref struct {
	Level uint8
	Idx   int32
}

// Table is the step-0 enumeration: all unique Clifford+T operators with
// minimal T count ≤ MaxT, indexed by canonical (phase-invariant) key.
// It doubles as the equivalence lookup table used by trasyn's
// post-processing and by exact synthesis.
type Table struct {
	MaxT   int
	Levels [][]Entry // Levels[t] = operators with minimal T count exactly t
	lookup map[ring.Key]Ref
}

type maPart struct {
	bits uint32
	nsyl uint8
	lead bool
	u    ring.UMat
}

// BuildTable enumerates all unique operators with T count ≤ maxT.
// The number of entries is 24·(3·2^maxT − 2); maxT ≤ 12 is practical.
func BuildTable(maxT int) *Table {
	if maxT < 0 || maxT > 24 {
		panic(fmt.Sprintf("gates: unreasonable maxT %d", maxT))
	}
	cliffs := CliffordGroup()
	ht := Sequence{H, T}.UMat()
	sht := Sequence{S, H, T}.UMat()

	tab := &Table{MaxT: maxT, Levels: make([][]Entry, maxT+1)}
	total := 24 * (3*(1<<uint(maxT)) - 2)
	tab.lookup = make(map[ring.Key]Ref, total)

	level := []maPart{{u: ring.UIdentity()}}
	for t := 0; t <= maxT; t++ {
		entries := make([]Entry, 0, len(level)*24)
		for _, p := range level {
			partNP := uint8(0)
			for i := 0; i < int(p.nsyl); i++ {
				if p.bits>>i&1 == 1 {
					partNP += 2 // S H
				} else {
					partNP++ // H
				}
			}
			for ci, c := range cliffs {
				u := p.u.Mul(c.U)
				e := Entry{
					M:        u.Complex(),
					TPart:    p.bits,
					NSyl:     p.nsyl,
					LeadT:    p.lead,
					Cliff:    uint8(ci),
					TCount:   uint8(t),
					NonPauli: partNP + uint8(c.Seq.CliffordCount()),
				}
				key := u.CanonicalKey()
				if _, dup := tab.lookup[key]; dup {
					// MA normal forms are unique; a collision signals a bug.
					panic("gates: duplicate canonical key during MA enumeration")
				}
				tab.lookup[key] = Ref{Level: uint8(t), Idx: int32(len(entries))}
				entries = append(entries, e)
			}
		}
		tab.Levels[t] = entries
		if t == maxT {
			break
		}
		// Next level of T-parts.
		var next []maPart
		if t == 0 {
			next = []maPart{
				{lead: true, u: T.UMat()},
				{nsyl: 1, bits: 0, u: ht},
				{nsyl: 1, bits: 1, u: sht},
			}
		} else {
			next = make([]maPart, 0, 2*len(level))
			for _, p := range level {
				next = append(next,
					maPart{bits: p.bits, nsyl: p.nsyl + 1, lead: p.lead, u: p.u.Mul(ht)},
					maPart{bits: p.bits | 1<<p.nsyl, nsyl: p.nsyl + 1, lead: p.lead, u: p.u.Mul(sht)},
				)
			}
		}
		level = next
	}
	return tab
}

// Count returns the total number of enumerated operators.
func (t *Table) Count() int {
	n := 0
	for _, l := range t.Levels {
		n += len(l)
	}
	return n
}

// Find returns the entry equal to u up to global phase, if enumerated.
func (t *Table) Find(u ring.UMat) (*Entry, bool) {
	return t.FindKey(u.CanonicalKey())
}

// FindKey looks up a canonical key directly.
func (t *Table) FindKey(k ring.Key) (*Entry, bool) {
	ref, ok := t.lookup[k]
	if !ok {
		return nil, false
	}
	return &t.Levels[ref.Level][ref.Idx], true
}

// Collect returns pointers to all entries with T count in [loT, hiT].
func (t *Table) Collect(loT, hiT int) []*Entry {
	if hiT > t.MaxT {
		hiT = t.MaxT
	}
	var out []*Entry
	for lvl := loT; lvl <= hiT; lvl++ {
		if lvl < 0 {
			continue
		}
		es := t.Levels[lvl]
		for i := range es {
			out = append(out, &es[i])
		}
	}
	return out
}

var (
	sharedMu  sync.Mutex
	sharedTab = map[int]*sharedEntry{}
)

// sharedEntry is one per-budget construction slot: the once guarantees a
// single BuildTable per budget no matter how many goroutines race the
// first use, and the global mutex is held only for the map access, so
// concurrent first uses of different budgets build in parallel.
type sharedEntry struct {
	once sync.Once
	tab  *Table
}

// Shared returns a process-wide cached table for the given budget, building
// it on first use. Tables are immutable after construction; Shared is safe
// for concurrent use, including concurrent first use (the table for each
// budget is built exactly once).
func Shared(maxT int) *Table {
	sharedMu.Lock()
	e, ok := sharedTab[maxT]
	if !ok {
		e = &sharedEntry{}
		sharedTab[maxT] = e
	}
	sharedMu.Unlock()
	e.once.Do(func() { e.tab = BuildTable(maxT) })
	return e.tab
}
