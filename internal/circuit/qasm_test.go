package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestQASMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New(4)
	for i := 0; i < 40; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(4))
		case 1:
			c.RZ(rng.Intn(4), rng.Float64()*6-3)
		case 2:
			c.U3Gate(rng.Intn(4), rng.Float64()*3, rng.Float64()*6, rng.Float64()*6)
		case 3:
			a := rng.Intn(4)
			c.CX(a, (a+1)%4)
		case 4:
			c.Tdg(rng.Intn(4))
		case 5:
			c.CZ(rng.Intn(4), (rng.Intn(3)+1+rng.Intn(4))%4)
		}
	}
	// Fix accidental same-qubit CZ.
	for i, op := range c.Ops {
		if op.G.IsTwoQubit() && op.Q[0] == op.Q[1] {
			c.Ops[i].Q[1] = (op.Q[0] + 1) % 4
		}
	}
	parsed, err := ParseQASM(c.QASM())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.N != c.N || len(parsed.Ops) != len(c.Ops) {
		t.Fatalf("round trip shape mismatch: %d/%d ops", len(parsed.Ops), len(c.Ops))
	}
	for i := range c.Ops {
		a, b := c.Ops[i], parsed.Ops[i]
		if a.G != b.G || a.Q != b.Q {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.P {
			if math.Abs(a.P[j]-b.P[j]) > 1e-9 {
				t.Fatalf("op %d angle mismatch: %v vs %v", i, a.P, b.P)
			}
		}
	}
}

func TestQASMAngleExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(pi/2) q[0];
rz(-pi/4) q[0];
rz(2*pi) q[0];
rz(0.25) q[0];
u2(0,pi) q[0];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Pi / 2, -math.Pi / 4, 2 * math.Pi, 0.25}
	for i, w := range want {
		if math.Abs(c.Ops[i].P[0]-w) > 1e-12 {
			t.Fatalf("angle %d = %v, want %v", i, c.Ops[i].P[0], w)
		}
	}
	// u2(φ,λ) = u3(π/2,φ,λ).
	last := c.Ops[len(c.Ops)-1]
	if last.G != U3 || math.Abs(last.P[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("u2 not lowered to u3: %+v", last)
	}
}

func TestQASMErrors(t *testing.T) {
	cases := []string{
		"qreg q[2];\nfoo q[0];",      // unknown gate
		"h q[0];",                    // gate before qreg
		"qreg q[2];\ncx q[0];",       // arity
		"qreg q[2];\nh q[5];",        // out of range
		"qreg q[2];\nrz(pi/0) q[0];", // division by zero
		"qreg q[2]\nh q[0];",         // missing semicolon
		"",                           // empty
	}
	for _, src := range cases {
		if _, err := ParseQASM(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestQASMIgnoresClassical(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
barrier q[0],q[1];
measure q[0] -> c[0];
cx q[0],q[1];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ops) != 2 {
		t.Fatalf("expected 2 ops, got %d", len(c.Ops))
	}
	if !strings.Contains(c.QASM(), "cx q[0],q[1]") {
		t.Fatal("re-emission broken")
	}
}
