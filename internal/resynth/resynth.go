// Package resynth is the BQSKit-substitute of Figure 12: a
// partition-and-reinstantiate pass that numerically re-expresses every
// merged single-qubit unitary in the fixed ZXZXZ template
// RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ) (SX = √X, a Clifford). Like BQSKit's
// numerical instantiation, this canonicalizes structure at the cost of
// inflating the number of arbitrary rotations — one U3 becomes three
// nontrivial RZ gates — which is exactly the behavior the paper measures
// against.
package resynth

import (
	"math"

	"repro/circuit"
	"repro/internal/qmat"
	"repro/internal/transpile"
)

// Resynthesize merges adjacent 1q gates, then re-instantiates each U3 into
// the ZXZXZ template, emitting an Rz-basis circuit (SX expanded into
// H·S·H-form Cliffords via the RZ(π/2) identity).
func Resynthesize(c *circuit.Circuit) *circuit.Circuit {
	merged := transpile.Merge1Q(c)
	out := circuit.New(c.N)
	for _, op := range merged.Ops {
		if op.G != circuit.U3 {
			out.Add(op)
			continue
		}
		th, ph, la := op.P[0], op.P[1], op.P[2]
		q := op.Q[0]
		// Time order: RZ(λ), SX, RZ(θ+π), SX, RZ(φ+π); SX = H·RZ(π/2)·H up
		// to phase (H S H).
		emit := func(angle float64) {
			angle = math.Mod(angle, 2*math.Pi)
			if angle < 0 {
				angle += 2 * math.Pi
			}
			if angle > 1e-12 && 2*math.Pi-angle > 1e-12 {
				out.RZ(q, angle)
			}
		}
		sx := func() {
			out.H(q)
			out.S(q)
			out.H(q)
		}
		emit(la)
		sx()
		emit(th + math.Pi)
		sx()
		emit(ph + math.Pi)
	}
	return out
}

// verifyTemplate recomputes the ZXZXZ identity; exported through tests.
func verifyTemplate(th, ph, la float64) float64 {
	u := qmat.U3(th, ph, la)
	sx := qmat.MulAll(qmat.H(), qmat.S(), qmat.H())
	v := qmat.MulAll(qmat.Rz(ph+math.Pi), sx, qmat.Rz(th+math.Pi), sx, qmat.Rz(la))
	return qmat.Distance(u, v)
}
