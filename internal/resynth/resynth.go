// Package resynth is the BQSKit-substitute of Figure 12: a
// partition-and-reinstantiate pass that numerically re-expresses every
// merged single-qubit unitary in the fixed ZXZXZ template.
//
// Deprecated: the implementation was promoted to the public optimize
// package as optimize.ZXZXZ (the "zxzxz" registry entry). This package
// remains as a thin delegating shim for source compatibility.
package resynth

import (
	"math"

	"repro/circuit"
	"repro/internal/qmat"
	"repro/optimize"
)

// Resynthesize merges adjacent 1q gates, then re-instantiates each U3
// into the ZXZXZ template, emitting an Rz-basis circuit.
//
// Deprecated: use optimize.ZXZXZ.
func Resynthesize(c *circuit.Circuit) *circuit.Circuit {
	out, _ := optimize.ZXZXZ().Optimize(c)
	return out
}

// verifyTemplate recomputes the ZXZXZ identity; exported through tests.
func verifyTemplate(th, ph, la float64) float64 {
	u := qmat.U3(th, ph, la)
	sx := qmat.MulAll(qmat.H(), qmat.S(), qmat.H())
	v := qmat.MulAll(qmat.Rz(ph+math.Pi), sx, qmat.Rz(th+math.Pi), sx, qmat.Rz(la))
	return qmat.Distance(u, v)
}
