package resynth

import (
	"math"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/sim"
)

func TestZXZXZTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		th := rng.Float64() * math.Pi
		ph := (rng.Float64() - 0.5) * 4 * math.Pi
		la := (rng.Float64() - 0.5) * 4 * math.Pi
		if d := verifyTemplate(th, ph, la); d > 1e-7 {
			t.Fatalf("ZXZXZ template broken: θ=%v φ=%v λ=%v d=%v", th, ph, la, d)
		}
	}
}

func TestResynthesizePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		c := circuit.New(3)
		for i := 0; i < 20; i++ {
			switch rng.Intn(4) {
			case 0:
				c.U3Gate(rng.Intn(3), rng.Float64()*3, rng.Float64()*6, rng.Float64()*6)
			case 1:
				c.RZ(rng.Intn(3), rng.Float64()*6)
			case 2:
				c.H(rng.Intn(3))
			case 3:
				a := rng.Intn(3)
				c.CX(a, (a+1)%3)
			}
		}
		r := Resynthesize(c)
		if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(r)); d > 1e-6 {
			t.Fatalf("Resynthesize changed unitary: %v", d)
		}
		for _, op := range r.Ops {
			if op.G == circuit.U3 || op.G == circuit.RX || op.G == circuit.RY {
				t.Fatal("Resynthesize left a non-RZ rotation")
			}
		}
	}
}

// TestResynthesizeInflatesRotations: the pass must increase the rotation
// count relative to the merged U3 form — BQSKit's observed behavior in
// Fig. 12 (each nontrivial U3 becomes up to 3 nontrivial RZs).
func TestResynthesizeInflatesRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := circuit.New(2)
	for i := 0; i < 10; i++ {
		c.U3Gate(i%2, rng.Float64()*3, rng.Float64()*6, rng.Float64()*6)
		c.CX(0, 1)
	}
	merged := c.Clone()
	r := Resynthesize(c)
	if r.CountRotations() <= merged.CountRotations() {
		t.Fatalf("expected rotation inflation: %d → %d",
			merged.CountRotations(), r.CountRotations())
	}
}
