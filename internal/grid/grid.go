// Package grid solves the one- and two-dimensional scaled grid problems of
// Ross–Selinger style Rz synthesis: enumerating points of Z[√2] (and, via a
// coset construction, Z[ω]) whose two field embeddings fall in prescribed
// intervals/regions.
//
// The 2-D problem enumerated here is the gridsynth candidate search: find
// u ∈ Z[ω] with u/√2^k in the ε-sliver {|z| ≤ 1, Re(z·e^{iθ/2}) ≥ √(1−ε²)}
// and u•/√2^k in the closed unit disk. Candidates are produced by slicing
// the sliver's bounding box along x with a 1-D grid solve, then solving a
// second 1-D problem for y on the exact sliver/disk sections; λ-rescaling
// keeps every 1-D solve proportional to its output size.
package grid

import (
	"math"

	"repro/internal/ring"
)

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Len returns the interval length (negative if empty).
func (iv Interval) Len() float64 { return iv.Hi - iv.Lo }

// widen returns the interval expanded by a relative fuzz to absorb float64
// rounding; exactness is restored by downstream verification.
func (iv Interval) widen(abs float64) Interval {
	return Interval{iv.Lo - abs, iv.Hi + abs}
}

const lnLambda = 0.881373587019543 // ln(1+√2)

// Solve1D returns all α = m + n√2 ∈ Z[√2] with α ∈ a and α• ∈ b.
// Rescaling by λ = 1+√2 balances the interval lengths first (λ·λ• = −1), so
// the scan is proportional to the expected number of solutions plus O(1).
func Solve1D(a, b Interval) []ring.ZSqrt2 {
	if a.Len() < 0 || b.Len() < 0 {
		return nil
	}
	la, lb := a.Len(), b.Len()
	j := 0
	if la > 0 && lb > 0 {
		j = int(math.Round(math.Log(math.Sqrt(lb/la)) / lnLambda))
	} else if la == 0 && lb > 0 {
		j = int(math.Round(math.Log(lb) / lnLambda))
	} else if lb == 0 && la > 0 {
		j = -int(math.Round(math.Log(la) / lnLambda))
	}
	const maxScale = 52
	if j > maxScale {
		j = maxScale
	}
	if j < -maxScale {
		j = -maxScale
	}
	// β = λ^j α: β ∈ λ^j·a, β• = (−1/λ)^j α•.
	lj := math.Exp(lnLambda * float64(j))
	sa := Interval{a.Lo * lj, a.Hi * lj}
	var sb Interval
	ljInv := 1 / lj
	if j%2 == 0 {
		sb = Interval{b.Lo * ljInv, b.Hi * ljInv}
	} else {
		sb = Interval{-b.Hi * ljInv, -b.Lo * ljInv}
	}
	sols := solve1DDirect(sa, sb)
	if j == 0 {
		return sols
	}
	// Map back: α = λ^{−j}·β, exactly in Z[√2].
	linv := ring.ZSqrt2{A: -1, B: 1} // λ⁻¹
	if j < 0 {
		linv = ring.ZSqrt2{A: 1, B: 1} // λ
	}
	steps := j
	if steps < 0 {
		steps = -steps
	}
	scale := ring.ZSqrt2{A: 1, B: 0}
	for i := 0; i < steps; i++ {
		scale = scale.Mul(linv)
	}
	out := sols[:0]
	for _, s := range sols {
		out = append(out, s.Mul(scale))
	}
	return out
}

// solve1DDirect scans n = (α − α•)/(2√2) over its feasible range.
func solve1DDirect(a, b Interval) []ring.ZSqrt2 {
	const fuzz = 1e-9
	a = a.widen(fuzz * (1 + math.Abs(a.Lo) + math.Abs(a.Hi)))
	b = b.widen(fuzz * (1 + math.Abs(b.Lo) + math.Abs(b.Hi)))
	nLo := int64(math.Ceil((a.Lo - b.Hi) / (2 * ring.Sqrt2)))
	nHi := int64(math.Floor((a.Hi - b.Lo) / (2 * ring.Sqrt2)))
	if nHi-nLo > 1<<22 {
		// Pathologically unbalanced intervals: refuse rather than spin.
		return nil
	}
	var out []ring.ZSqrt2
	for n := nLo; n <= nHi; n++ {
		f := float64(n) * ring.Sqrt2
		mLo := math.Ceil(math.Max(a.Lo-f, b.Lo+f))
		mHi := math.Floor(math.Min(a.Hi-f, b.Hi+f))
		for m := mLo; m <= mHi; m++ {
			out = append(out, ring.ZSqrt2{A: int64(m), B: n})
		}
	}
	return out
}

// Candidate is one Z[ω] grid point u (candidate numerator for gridsynth).
type Candidate struct {
	U ring.ZOmega
}

// SliverParams describes the scaled candidate region for angle theta, error
// eps and denominator exponent k.
type SliverParams struct {
	Theta float64
	Eps   float64
	K     int
}

// SliverCandidates enumerates u ∈ Z[ω] with u/√2^k in the ε-sliver for
// Rz(θ) and u•/√2^k in the unit disk, stopping after limit candidates
// (limit ≤ 0 means no limit). The sliver is
// {z : |z| ≤ 1, Re(z·e^{iθ/2}) ≥ c}, c = √(1−ε²).
func SliverCandidates(p SliverParams, limit int) []Candidate {
	s := math.Pow(2, float64(p.K)/2) // √2^k
	c := math.Sqrt(math.Max(0, 1-p.Eps*p.Eps))
	phi := p.Theta / 2
	cosP, sinP := math.Cos(phi), math.Sin(phi)

	// Scaled sliver extreme points (see DESIGN.md): chord endpoints z± and
	// arc apex z0, plus axis-aligned arc extremes when inside the segment.
	w := math.Sqrt(math.Max(0, 1-c*c))
	pts := [][2]float64{
		{s * (c*cosP + w*sinP), s * (-c*sinP + w*cosP)}, // z+ = e^{−iφ}(c+iw)·s
		{s * (c*cosP - w*sinP), s * (-c*sinP - w*cosP)}, // z−
		{s * cosP, s * -sinP},                           // z0 = e^{−iφ}·s
	}
	xLo, xHi := pts[0][0], pts[0][0]
	yLo, yHi := pts[0][1], pts[0][1]
	for _, pt := range pts[1:] {
		xLo, xHi = math.Min(xLo, pt[0]), math.Max(xHi, pt[0])
		yLo, yHi = math.Min(yLo, pt[1]), math.Max(yHi, pt[1])
	}
	// Axis extreme points of the arc (e.g. z = ±s or ±is) belong to the
	// sliver iff they satisfy the chord constraint.
	axes := [][2]float64{{s, 0}, {-s, 0}, {0, s}, {0, -s}}
	for _, pt := range axes {
		if pt[0]*cosP-pt[1]*sinP >= c*s {
			xLo, xHi = math.Min(xLo, pt[0]), math.Max(xHi, pt[0])
			yLo, yHi = math.Min(yLo, pt[1]), math.Max(yHi, pt[1])
		}
	}

	inSliver := func(x, y float64) bool {
		const tol = 1e-9
		if x*x+y*y > s*s*(1+tol)+tol {
			return false
		}
		return x*cosP-y*sinP >= c*s-tol*s-tol
	}

	// Work in primed coordinates x' = √2·x so both cosets of Z[ω] are plain
	// Z[√2] points with a parity coupling (see package ring).
	xInt := Interval{xLo * ring.Sqrt2, xHi * ring.Sqrt2}
	// |x•| ≤ s ⇒ x'• = −√2·x• ∈ [−√2 s, √2 s].
	xBullet := Interval{-s * ring.Sqrt2, s * ring.Sqrt2}

	var out []Candidate
	for _, xp := range Solve1D(xInt, xBullet) {
		x := xp.Float() / ring.Sqrt2
		xb := -xp.Bullet().Float() / ring.Sqrt2 // x• (the bullet of x, not x')
		// y-range of the sliver section at this x.
		disc := s*s - x*x
		if disc < 0 {
			continue
		}
		r := math.Sqrt(disc)
		ylo, yhi := -r, r
		// Chord: x cosφ − y sinφ ≥ c·s.
		switch {
		case sinP > 1e-300:
			yhi = math.Min(yhi, (x*cosP-c*s)/sinP)
		case sinP < -1e-300:
			ylo = math.Max(ylo, (x*cosP-c*s)/sinP)
		default:
			if x*cosP < c*s {
				continue
			}
		}
		if yhi < ylo {
			continue
		}
		// y'• section: |y•| ≤ sqrt(s² − x•²).
		discB := s*s - xb*xb
		if discB < 0 {
			continue
		}
		rb := math.Sqrt(discB)
		yInt := Interval{ylo * ring.Sqrt2, yhi * ring.Sqrt2}
		yBullet := Interval{-rb * ring.Sqrt2, rb * ring.Sqrt2}
		for _, yp := range Solve1D(yInt, yBullet) {
			// Parity coupling: int parts of x' and y' must match mod 2.
			if (xp.A-yp.A)&1 != 0 {
				continue
			}
			u := ring.ZOmega{
				A: xp.B, // a = √2-coefficient of x'
				B: (yp.A + xp.A) / 2,
				C: yp.B,
				D: (yp.A - xp.A) / 2,
			}
			// Exact-ish final membership check in float (downstream
			// verification is exact).
			z := u.Complex()
			if !inSliver(real(z), imag(z)) {
				continue
			}
			zb := u.Bullet().Complex()
			if real(zb)*real(zb)+imag(zb)*imag(zb) > s*s*(1+1e-9) {
				continue
			}
			out = append(out, Candidate{U: u})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}
