// Package grid solves the one- and two-dimensional scaled grid problems of
// Ross–Selinger style Rz synthesis: enumerating points of Z[√2] (and, via a
// coset construction, Z[ω]) whose two field embeddings fall in prescribed
// intervals/regions.
//
// The 2-D problem enumerated here is the gridsynth candidate search: find
// u ∈ Z[ω] with u/√2^k in the ε-sliver {|z| ≤ 1, Re(z·e^{iθ/2}) ≥ √(1−ε²)}
// and u•/√2^k in the closed unit disk. Candidates are produced by slicing
// the sliver's bounding box along x with a 1-D grid solve, then solving a
// second 1-D problem for y on the exact sliver/disk sections; λ-rescaling
// keeps every 1-D solve proportional to its output size.
package grid

import (
	"math"

	"repro/internal/ring"
)

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Len returns the interval length (negative if empty).
func (iv Interval) Len() float64 { return iv.Hi - iv.Lo }

// widen returns the interval expanded by a relative fuzz to absorb float64
// rounding; exactness is restored by downstream verification.
func (iv Interval) widen(abs float64) Interval {
	return Interval{iv.Lo - abs, iv.Hi + abs}
}

const lnLambda = 0.881373587019543 // ln(1+√2)

// Solve1D returns all α = m + n√2 ∈ Z[√2] with α ∈ a and α• ∈ b.
// Rescaling by λ = 1+√2 balances the interval lengths first (λ·λ• = −1), so
// the scan is proportional to the expected number of solutions plus O(1).
func Solve1D(a, b Interval) []ring.ZSqrt2 { return AppendSolve1D(nil, a, b) }

// AppendSolve1D is Solve1D appending into dst (reusing its capacity), the
// allocation-free form for callers with a scan loop.
func AppendSolve1D(dst []ring.ZSqrt2, a, b Interval) []ring.ZSqrt2 {
	each1D(a, b, func(sol ring.ZSqrt2) bool {
		dst = append(dst, sol)
		return true
	})
	return dst
}

// each1D is the lazy form of Solve1D: solutions are yielded in scan order
// without materializing a slice, so callers enumerating enormous candidate
// ranges (gridsynth at small ε and large k) run in O(1) memory. Yielding
// false stops the scan; each1D reports whether the scan ran to completion.
func each1D(a, b Interval, yield func(ring.ZSqrt2) bool) bool {
	if a.Len() < 0 || b.Len() < 0 {
		return true
	}
	la, lb := a.Len(), b.Len()
	j := 0
	if la > 0 && lb > 0 {
		j = int(math.Round(math.Log(math.Sqrt(lb/la)) / lnLambda))
	} else if la == 0 && lb > 0 {
		j = int(math.Round(math.Log(lb) / lnLambda))
	} else if lb == 0 && la > 0 {
		j = -int(math.Round(math.Log(la) / lnLambda))
	}
	const maxScale = 52
	if j > maxScale {
		j = maxScale
	}
	if j < -maxScale {
		j = -maxScale
	}
	// β = λ^j α: β ∈ λ^j·a, β• = (−1/λ)^j α•.
	lj := math.Exp(lnLambda * float64(j))
	sa := Interval{a.Lo * lj, a.Hi * lj}
	var sb Interval
	ljInv := 1 / lj
	if j%2 == 0 {
		sb = Interval{b.Lo * ljInv, b.Hi * ljInv}
	} else {
		sb = Interval{-b.Hi * ljInv, -b.Lo * ljInv}
	}
	if j == 0 {
		return each1DDirect(sa, sb, yield)
	}
	// Map back: α = λ^{−j}·β, exactly in Z[√2].
	linv := ring.ZSqrt2{A: -1, B: 1} // λ⁻¹
	if j < 0 {
		linv = ring.ZSqrt2{A: 1, B: 1} // λ
	}
	steps := j
	if steps < 0 {
		steps = -steps
	}
	scale := ring.ZSqrt2{A: 1, B: 0}
	for i := 0; i < steps; i++ {
		scale = scale.Mul(linv)
	}
	return each1DDirect(sa, sb, func(sol ring.ZSqrt2) bool {
		return yield(sol.Mul(scale))
	})
}

// each1DDirect scans n = (α − α•)/(2√2) over its feasible range.
func each1DDirect(a, b Interval, yield func(ring.ZSqrt2) bool) bool {
	const fuzz = 1e-9
	a = a.widen(fuzz * (1 + math.Abs(a.Lo) + math.Abs(a.Hi)))
	b = b.widen(fuzz * (1 + math.Abs(b.Lo) + math.Abs(b.Hi)))
	nLo := int64(math.Ceil((a.Lo - b.Hi) / (2 * ring.Sqrt2)))
	nHi := int64(math.Floor((a.Hi - b.Lo) / (2 * ring.Sqrt2)))
	if nHi-nLo > 1<<22 {
		// Pathologically unbalanced intervals: refuse rather than spin.
		// Reported as an incomplete scan — nothing was enumerated.
		return false
	}
	for n := nLo; n <= nHi; n++ {
		f := float64(n) * ring.Sqrt2
		mLo := math.Ceil(math.Max(a.Lo-f, b.Lo+f))
		mHi := math.Floor(math.Min(a.Hi-f, b.Hi+f))
		for m := mLo; m <= mHi; m++ {
			if !yield(ring.ZSqrt2{A: int64(m), B: n}) {
				return false
			}
		}
	}
	return true
}

// Candidate is one Z[ω] grid point u (candidate numerator for gridsynth).
type Candidate struct {
	U ring.ZOmega
}

// SliverParams describes the scaled candidate region for angle theta, error
// eps and denominator exponent k.
type SliverParams struct {
	Theta float64
	Eps   float64
	K     int
}

// Sliver is the ε-sliver geometry for a fixed (θ, ε), hoisted out of the
// per-k candidate scan: the chord constant c = √(1−ε²), the half-angle
// rotation and the chord-normal direction are computed once per search
// instead of once per candidate enumeration. It also owns the reusable
// 1-D solve buffer for the inner y scans, so repeated Scan calls (one per
// denominator exponent k) allocate nothing in steady state; the outer x
// scan is lazy (each1D) and never materialized, which keeps memory O(1)
// even at the large k values small ε demands.
// Not safe for concurrent use.
type Sliver struct {
	c, w       float64 // chord distance √(1−ε²) and half-width √(1−c²)
	cosP, sinP float64 // cos/sin of θ/2
	ybuf       []ring.ZSqrt2
}

// NewSliver precomputes the sliver geometry for Rz(θ) at error ε. The
// sliver is {z : |z| ≤ 1, Re(z·e^{iθ/2}) ≥ c}, c = √(1−ε²).
func NewSliver(theta, eps float64) *Sliver {
	c := math.Sqrt(math.Max(0, 1-eps*eps))
	phi := theta / 2
	return &Sliver{
		c:    c,
		w:    math.Sqrt(math.Max(0, 1-c*c)),
		cosP: math.Cos(phi),
		sinP: math.Sin(phi),
	}
}

// SliverCandidates enumerates u ∈ Z[ω] with u/√2^k in the ε-sliver for
// Rz(θ) and u•/√2^k in the unit disk, stopping after limit candidates
// (limit ≤ 0 means no limit). One-shot wrapper over Sliver.
func SliverCandidates(p SliverParams, limit int) []Candidate {
	return NewSliver(p.Theta, p.Eps).AppendCandidates(nil, p.K, limit)
}

// AppendCandidates enumerates the sliver grid points at denominator
// exponent k, appending into dst (whose capacity is reused) and stopping
// after limit candidates (limit ≤ 0 means no limit).
func (sl *Sliver) AppendCandidates(dst []Candidate, k, limit int) []Candidate {
	start := len(dst)
	sl.Scan(k, func(cand Candidate) bool {
		dst = append(dst, cand)
		return limit <= 0 || len(dst)-start < limit
	})
	return dst
}

// Scan enumerates the sliver grid points at denominator exponent k in a
// deterministic order, yielding each candidate as it is found; yielding
// false stops the scan. Scan reports whether the enumeration ran to
// completion. Unlike AppendCandidates it holds no candidate storage, so
// callers that reject most candidates (gridsynth below ε ≈ 1e-4, where the
// per-k enumeration is large) pay O(1) memory.
func (sl *Sliver) Scan(k int, yield func(Candidate) bool) bool {
	s := math.Pow(2, float64(k)/2) // √2^k
	c, w := sl.c, sl.w
	cosP, sinP := sl.cosP, sl.sinP

	// Scaled sliver extreme points (see DESIGN.md): chord endpoints z± and
	// arc apex z0, plus axis-aligned arc extremes when inside the segment.
	pts := [3][2]float64{
		{s * (c*cosP + w*sinP), s * (-c*sinP + w*cosP)}, // z+ = e^{−iφ}(c+iw)·s
		{s * (c*cosP - w*sinP), s * (-c*sinP - w*cosP)}, // z−
		{s * cosP, s * -sinP},                           // z0 = e^{−iφ}·s
	}
	xLo, xHi := pts[0][0], pts[0][0]
	for _, pt := range pts[1:] {
		xLo, xHi = math.Min(xLo, pt[0]), math.Max(xHi, pt[0])
	}
	// Axis extreme points of the arc (e.g. z = ±s or ±is) belong to the
	// sliver iff they satisfy the chord constraint.
	axes := [4][2]float64{{s, 0}, {-s, 0}, {0, s}, {0, -s}}
	for _, pt := range axes {
		if pt[0]*cosP-pt[1]*sinP >= c*s {
			xLo, xHi = math.Min(xLo, pt[0]), math.Max(xHi, pt[0])
		}
	}

	// Work in primed coordinates x' = √2·x so both cosets of Z[ω] are plain
	// Z[√2] points with a parity coupling (see package ring).
	xInt := Interval{xLo * ring.Sqrt2, xHi * ring.Sqrt2}
	// |x•| ≤ s ⇒ x'• = −√2·x• ∈ [−√2 s, √2 s].
	xBullet := Interval{-s * ring.Sqrt2, s * ring.Sqrt2}

	return each1D(xInt, xBullet, func(xp ring.ZSqrt2) bool {
		x := xp.Float() / ring.Sqrt2
		xb := -xp.Bullet().Float() / ring.Sqrt2 // x• (the bullet of x, not x')
		// y-range of the sliver section at this x.
		disc := s*s - x*x
		if disc < 0 {
			return true
		}
		r := math.Sqrt(disc)
		ylo, yhi := -r, r
		// Chord: x cosφ − y sinφ ≥ c·s.
		switch {
		case sinP > 1e-300:
			yhi = math.Min(yhi, (x*cosP-c*s)/sinP)
		case sinP < -1e-300:
			ylo = math.Max(ylo, (x*cosP-c*s)/sinP)
		default:
			if x*cosP < c*s {
				return true
			}
		}
		if yhi < ylo {
			return true
		}
		// y'• section: |y•| ≤ sqrt(s² − x•²).
		discB := s*s - xb*xb
		if discB < 0 {
			return true
		}
		rb := math.Sqrt(discB)
		yInt := Interval{ylo * ring.Sqrt2, yhi * ring.Sqrt2}
		yBullet := Interval{-rb * ring.Sqrt2, rb * ring.Sqrt2}
		sl.ybuf = AppendSolve1D(sl.ybuf[:0], yInt, yBullet)
		for _, yp := range sl.ybuf {
			// Parity coupling: int parts of x' and y' must match mod 2.
			if (xp.A-yp.A)&1 != 0 {
				continue
			}
			u := ring.ZOmega{
				A: xp.B, // a = √2-coefficient of x'
				B: (yp.A + xp.A) / 2,
				C: yp.B,
				D: (yp.A - xp.A) / 2,
			}
			// Exact-ish final membership check in float (downstream
			// verification is exact).
			z := u.Complex()
			if !sl.inSliver(real(z), imag(z), s) {
				continue
			}
			zb := u.Bullet().Complex()
			if real(zb)*real(zb)+imag(zb)*imag(zb) > s*s*(1+1e-9) {
				continue
			}
			if !yield(Candidate{U: u}) {
				return false
			}
		}
		return true
	})
}

// PreError returns the unitary distance (Eq. (2)) that candidate u will
// realize at denominator exponent k, computed from u alone: the gridsynth
// column structure fixes |Tr(Rz(θ_g)†·V)|/2 = |Re(u·e^{iθ_g/2})|/√2^k, so
// the distance of the assembled unitary is known before the norm equation
// is solved or any gate is synthesized. Accuracy is a few float64 ulp
// (~1e-15 absolute), far inside the admission slack at every practical ε —
// unlike the fuzzy geometric sliver test whose widening exceeds the true
// sliver depth below ε ≈ 1e-5, this is the authoritative candidate filter.
func (sl *Sliver) PreError(u ring.ZOmega, k int) float64 {
	s := math.Pow(2, float64(k)/2)
	z := u.Complex()
	t := (real(z)*sl.cosP - imag(z)*sl.sinP) / s
	d := 1 - t*t
	if d < 0 {
		return 0
	}
	return math.Sqrt(d)
}

// inSliver tests scaled-sliver membership at scale s = √2^k.
func (sl *Sliver) inSliver(x, y, s float64) bool {
	const tol = 1e-9
	if x*x+y*y > s*s*(1+tol)+tol {
		return false
	}
	return x*sl.cosP-y*sl.sinP >= sl.c*s-tol*s-tol
}
