package grid

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/ring"
)

// bruteSolve1D enumerates solutions exhaustively for small intervals.
func bruteSolve1D(a, b Interval) []ring.ZSqrt2 {
	var out []ring.ZSqrt2
	nLo := int64(math.Floor((a.Lo - b.Hi) / (2 * ring.Sqrt2)))
	nHi := int64(math.Ceil((a.Hi - b.Lo) / (2 * ring.Sqrt2)))
	for n := nLo; n <= nHi; n++ {
		for m := int64(math.Floor(a.Lo - float64(n)*ring.Sqrt2)); m <= int64(math.Ceil(a.Hi-float64(n)*ring.Sqrt2)); m++ {
			x := ring.ZSqrt2{A: m, B: n}
			if f := x.Float(); f < a.Lo || f > a.Hi {
				continue
			}
			if f := x.Bullet().Float(); f < b.Lo || f > b.Hi {
				continue
			}
			out = append(out, x)
		}
	}
	return out
}

func TestSolve1DMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := Interval{rng.Float64()*20 - 10, 0}
		a.Hi = a.Lo + rng.Float64()*8
		b := Interval{rng.Float64()*20 - 10, 0}
		b.Hi = b.Lo + rng.Float64()*8
		got := Solve1D(a, b)
		want := bruteSolve1D(a, b)
		// Compare as sets (allow boundary fuzz: every brute solution must be
		// found; extra solutions must be within fuzz of the boundary).
		gotSet := map[ring.ZSqrt2]bool{}
		for _, x := range got {
			gotSet[x] = true
		}
		for _, x := range want {
			if !gotSet[x] {
				t.Fatalf("missing solution %v for a=%v b=%v", x, a, b)
			}
		}
		for _, x := range got {
			f, fb := x.Float(), x.Bullet().Float()
			if f < a.Lo-1e-6 || f > a.Hi+1e-6 || fb < b.Lo-1e-6 || fb > b.Hi+1e-6 {
				t.Fatalf("spurious solution %v for a=%v b=%v", x, a, b)
			}
		}
	}
}

// TestSolve1DUnbalanced: λ-rescaling must handle very thin/long interval
// pairs without scanning forever.
func TestSolve1DUnbalanced(t *testing.T) {
	// a thin (~1e-4), b long (~1e4): area ~1 → expect O(1) solutions.
	a := Interval{1000.0, 1000.0001}
	b := Interval{-12000, 12000}
	sols := Solve1D(a, b)
	for _, x := range sols {
		f, fb := x.Float(), x.Bullet().Float()
		if f < a.Lo-1e-6 || f > a.Hi+1e-6 || fb < b.Lo-1e-3 || fb > b.Hi+1e-3 {
			t.Fatalf("solution %v outside intervals", x)
		}
	}
	// The reverse orientation.
	sols2 := Solve1D(b, a)
	for _, x := range sols2 {
		f, fb := x.Float(), x.Bullet().Float()
		if f < b.Lo-1e-3 || f > b.Hi+1e-3 || fb < a.Lo-1e-6 || fb > a.Hi+1e-6 {
			t.Fatalf("reverse solution %v outside intervals", x)
		}
	}
}

func TestSolve1DEmpty(t *testing.T) {
	if got := Solve1D(Interval{1, 0}, Interval{0, 1}); got != nil {
		t.Error("inverted interval should yield nil")
	}
	// Feasibly empty: α ∈ [0.4, 0.45] and α• ∈ [0.4, 0.45] has no solutions
	// (the only candidates with both embeddings tiny are 0 and ±small λ^j).
	got := Solve1D(Interval{0.4, 0.45}, Interval{0.4, 0.45})
	if len(got) != 0 {
		t.Errorf("expected no solutions, got %v", got)
	}
}

// TestSliverCandidatesValid: every returned u must lie in the sliver and
// have u• in the disk — exactly, checked through the ring embedding.
func TestSliverCandidatesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		theta := rng.Float64()*4*math.Pi - 2*math.Pi
		eps := math.Pow(10, -1-2*rng.Float64()) // 1e-1 … 1e-3
		k := 8 + rng.Intn(10)
		p := SliverParams{Theta: theta, Eps: eps, K: k}
		cands := SliverCandidates(p, 16)
		s := math.Pow(2, float64(k)/2)
		c := math.Sqrt(1 - eps*eps)
		for _, cand := range cands {
			z := cand.U.Complex()
			if cmplx.Abs(z) > s*(1+1e-8) {
				t.Fatalf("candidate outside disk: |z|=%v s=%v", cmplx.Abs(z), s)
			}
			re := real(z)*math.Cos(theta/2) - imag(z)*math.Sin(theta/2)
			if re < c*s-1e-6*s {
				t.Fatalf("candidate outside sliver: re=%v cs=%v", re, c*s)
			}
			zb := cand.U.Bullet().Complex()
			if cmplx.Abs(zb) > s*(1+1e-8) {
				t.Fatalf("bullet outside disk: %v > %v", cmplx.Abs(zb), s)
			}
		}
	}
}

// TestSliverCandidatesExist: for large enough k there must be candidates
// (4^k·ε³ ≫ 1 guarantees lattice points in the region).
func TestSliverCandidatesExist(t *testing.T) {
	for _, tc := range []struct {
		eps float64
		k   int
	}{
		{0.1, 8}, {0.03, 12}, {0.01, 16},
	} {
		found := false
		for _, theta := range []float64{0.3, 1.1, 2.7, -0.8} {
			cands := SliverCandidates(SliverParams{Theta: theta, Eps: tc.eps, K: tc.k}, 4)
			if len(cands) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("no candidates at eps=%v k=%d for any test angle", tc.eps, tc.k)
		}
	}
}

// TestSliverExactAngle: θ = 0 must yield u = √2^k (the exact identity
// numerator) among candidates at any k, in particular k=0.
func TestSliverExactAngle(t *testing.T) {
	cands := SliverCandidates(SliverParams{Theta: 0, Eps: 1e-9, K: 0}, 0)
	foundOne := false
	for _, c := range cands {
		if c.U == ring.ZOmegaFromInt(1) {
			foundOne = true
		}
	}
	if !foundOne {
		t.Errorf("u=1 not found for θ=0, k=0: got %v", cands)
	}
}

func BenchmarkSliverCandidates(b *testing.B) {
	p := SliverParams{Theta: 1.234, Eps: 1e-3, K: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SliverCandidates(p, 8)
	}
}
