package sim

import (
	"repro/internal/gates"
	"repro/internal/qmat"
)

// PTM is the Pauli transfer matrix of a single-qubit channel: the 4x4 real
// matrix R with R[i][j] = Tr(P_i·Λ(P_j))/2 over the Pauli basis
// (I, X, Y, Z). Channel composition is matrix multiplication, which makes
// long gate sequences with interleaved noise exact and cheap — the engine
// behind the RQ2 logical-vs-synthesis-error study.
type PTM [4][4]float64

// PTMIdentity returns the identity channel.
func PTMIdentity() PTM {
	var r PTM
	for i := 0; i < 4; i++ {
		r[i][i] = 1
	}
	return r
}

// PTMFromUnitary returns the PTM of ρ ↦ UρU†.
func PTMFromUnitary(u qmat.M2) PTM {
	var r PTM
	ud := qmat.Dagger(u)
	for j := 0; j < 4; j++ {
		// Λ(P_j) = U·P_j·U†.
		m := qmat.MulAll(u, pauliMats[j], ud)
		for i := 0; i < 4; i++ {
			r[i][j] = real(qmat.Trace(qmat.Mul(pauliMats[i], m))) / 2
		}
	}
	return r
}

// PTMDepolarizing returns the depolarizing channel with probability p.
func PTMDepolarizing(p float64) PTM {
	var r PTM
	r[0][0] = 1
	s := 1 - 4*p/3
	r[1][1], r[2][2], r[3][3] = s, s, s
	return r
}

// Mul returns a·b (channel b applied first).
func (a PTM) Mul(b PTM) PTM {
	var r PTM
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < 4; j++ {
				r[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return r
}

// ProcessFidelity returns the process (entanglement) fidelity between the
// channel and the target unitary: F_pro = Tr(R_U^T · R_Λ)/4 for qubits.
func ProcessFidelity(target qmat.M2, channel PTM) float64 {
	ru := PTMFromUnitary(target)
	s := 0.0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s += ru[i][j] * channel[i][j]
		}
	}
	return s / 4
}

// SequencePTM composes the PTM of a discrete gate sequence (matrix-product
// order, so the LAST element acts first) with depolarizing noise of rate p
// attached to each T/T† gate (the paper's conservative logical error model:
// Cliffords are error-free). Set p = 0 for the ideal channel.
func SequencePTM(seq gates.Sequence, p float64) PTM {
	r := PTMIdentity()
	noise := PTMDepolarizing(p)
	// Apply gates in time order: iterate the sequence from the right.
	for i := len(seq) - 1; i >= 0; i-- {
		g := seq[i]
		r = PTMFromUnitary(g.M2()).Mul(r)
		if p > 0 && g.IsT() {
			r = noise.Mul(r)
		}
	}
	return r
}

// ChoiFidelityFromStates cross-checks a PTM against density-matrix
// simulation: it computes the process fidelity via the channel's action on
// the four Pauli basis elements reconstructed from PTM columns. Exposed for
// tests.
func ChoiFidelityFromStates(target qmat.M2, channel PTM) float64 {
	// J(Λ) = (1/2)Σ_ij |i⟩⟨j| ⊗ Λ(|i⟩⟨j|); F_pro = ⟨Φ_U|J(Λ)|Φ_U⟩ where
	// |Φ_U⟩ = (U ⊗ I)|Φ⁺⟩. Reconstruct Λ(|i⟩⟨j|) from the PTM.
	basisToPauli := func(i, j int) [4]complex128 {
		// |i⟩⟨j| = Σ_k c_k P_k /2 with c_k = Tr(P_k |i⟩⟨j|) = ⟨j|P_k|i⟩.
		var c [4]complex128
		for k := 0; k < 4; k++ {
			c[k] = pauliMats[k][j][i]
		}
		return c
	}
	lambdaOf := func(i, j int) qmat.M2 {
		cin := basisToPauli(i, j)
		var cout [4]complex128
		for r := 0; r < 4; r++ {
			for k := 0; k < 4; k++ {
				cout[r] += complex(channel[r][k], 0) * cin[k]
			}
		}
		var m qmat.M2
		for k := 0; k < 4; k++ {
			m = qmat.Add(m, qmat.Scale(cout[k]/2, pauliMats[k]))
		}
		return m
	}
	// F_pro = ⟨Φ_U|J(Λ)|Φ_U⟩ = (1/4)·Σ_ij (U†·Λ(|i⟩⟨j|)·U)[i][j].
	var f complex128
	ud := qmat.Dagger(target)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m := qmat.MulAll(ud, lambdaOf(i, j), target)
			f += m[i][j]
		}
	}
	return real(f) / 4
}
