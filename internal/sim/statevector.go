// Package sim provides the simulation substrate for the evaluation:
// a statevector simulator, a density-matrix simulator with depolarizing
// noise, Monte-Carlo Pauli-twirl trajectories for larger circuits, and
// Pauli-transfer-matrix (PTM) composition for exact single-qubit channel
// arithmetic (used in the logical-vs-synthesis-error study, RQ2).
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/circuit"
	"repro/internal/qmat"
)

// State is a pure state on N qubits; qubit 0 is the least significant bit
// of the amplitude index.
type State struct {
	N   int
	Amp []complex128
}

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) *State {
	if n < 0 || n > 28 {
		panic(fmt.Sprintf("sim: unreasonable qubit count %d", n))
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[0] = 1
	return s
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	return &State{N: s.N, Amp: append([]complex128(nil), s.Amp...)}
}

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(q int, m qmat.M2) {
	bit := 1 << uint(q)
	for i := 0; i < len(s.Amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.Amp[i], s.Amp[j]
		s.Amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.Amp[j] = m[1][0]*a0 + m[1][1]*a1
	}
}

// ApplyCX applies a controlled-X.
func (s *State) ApplyCX(ctl, tgt int) {
	cb, tb := 1<<uint(ctl), 1<<uint(tgt)
	for i := 0; i < len(s.Amp); i++ {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	}
}

// ApplyCZ applies a controlled-Z.
func (s *State) ApplyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := 0; i < len(s.Amp); i++ {
		if i&ab != 0 && i&bb != 0 {
			s.Amp[i] = -s.Amp[i]
		}
	}
}

// ApplySwap swaps two qubits.
func (s *State) ApplySwap(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := 0; i < len(s.Amp); i++ {
		if i&ab != 0 && i&bb == 0 {
			j := i&^ab | bb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	}
}

// ApplyOp applies one circuit operation.
func (s *State) ApplyOp(op circuit.Op) {
	switch op.G {
	case circuit.CX:
		s.ApplyCX(op.Q[0], op.Q[1])
	case circuit.CZ:
		s.ApplyCZ(op.Q[0], op.Q[1])
	case circuit.SWAP:
		s.ApplySwap(op.Q[0], op.Q[1])
	case circuit.I:
	default:
		s.Apply1Q(op.Q[0], op.Matrix1Q())
	}
}

// Run applies a whole circuit.
func (s *State) Run(c *circuit.Circuit) {
	for _, op := range c.Ops {
		s.ApplyOp(op)
	}
}

// RunCircuit returns the state c|0…0⟩.
func RunCircuit(c *circuit.Circuit) *State {
	s := NewState(c.N)
	s.Run(c)
	return s
}

// Inner returns ⟨a|b⟩.
func Inner(a, b *State) complex128 {
	if a.N != b.N {
		panic("sim: qubit count mismatch")
	}
	var acc complex128
	for i := range a.Amp {
		acc += cmplx.Conj(a.Amp[i]) * b.Amp[i]
	}
	return acc
}

// StateFidelity returns |⟨a|b⟩|².
func StateFidelity(a, b *State) float64 {
	v := cmplx.Abs(Inner(a, b))
	return v * v
}

// Norm returns ⟨s|s⟩.
func (s *State) Norm() float64 {
	n := 0.0
	for _, a := range s.Amp {
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return n
}

// Unitary builds the full 2^n × 2^n matrix of the circuit (column i =
// c|i⟩); intended for verification at small n (n ≤ 10).
func Unitary(c *circuit.Circuit) [][]complex128 {
	dim := 1 << uint(c.N)
	u := make([][]complex128, dim)
	for col := 0; col < dim; col++ {
		s := NewState(c.N)
		s.Amp[0] = 0
		s.Amp[col] = 1
		s.Run(c)
		for row := 0; row < dim; row++ {
			if u[row] == nil {
				u[row] = make([]complex128, dim)
			}
			u[row][col] = s.Amp[row]
		}
	}
	return u
}

// UnitaryDistance is Eq. (2) generalized to N dimensions:
// sqrt(1 − |Tr(A†B)|²/N²).
func UnitaryDistance(a, b [][]complex128) float64 {
	n := len(a)
	var tr complex128
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tr += cmplx.Conj(a[i][j]) * b[i][j]
		}
	}
	t := cmplx.Abs(tr) / float64(n)
	d := 1 - t*t
	if d < 0 {
		return 0
	}
	return math.Sqrt(d)
}

// pauliMats indexes I, X, Y, Z.
var pauliMats = [4]qmat.M2{qmat.I2(), qmat.X, qmat.Y, qmat.Z}

// NoiseModel configures depolarizing noise injection.
type NoiseModel struct {
	// Rate is the depolarizing probability per noisy gate.
	Rate float64
	// TGatesOnly restricts noise to T/T† gates (the paper's conservative
	// RQ2 model); otherwise all non-Pauli gates are noisy (RQ4 model).
	TGatesOnly bool
}

// noisy reports whether the model attaches noise to op.
func (nm NoiseModel) noisy(op circuit.Op) bool {
	if nm.Rate <= 0 {
		return false
	}
	if nm.TGatesOnly {
		return op.G == circuit.T || op.G == circuit.Tdg
	}
	switch op.G {
	case circuit.I, circuit.X, circuit.Y, circuit.Z:
		return false
	}
	return true
}

// RunTrajectory runs the circuit once, stochastically inserting Pauli
// errors after noisy gates (depolarizing = uniform X/Y/Z with prob. Rate).
func RunTrajectory(c *circuit.Circuit, nm NoiseModel, rng *rand.Rand) *State {
	s := NewState(c.N)
	for _, op := range c.Ops {
		s.ApplyOp(op)
		if nm.noisy(op) {
			qubits := []int{op.Q[0]}
			if op.G.IsTwoQubit() {
				qubits = append(qubits, op.Q[1])
			}
			for _, q := range qubits {
				if rng.Float64() < nm.Rate {
					s.Apply1Q(q, pauliMats[1+rng.Intn(3)])
				}
			}
		}
	}
	return s
}

// TrajectoryFidelity estimates ⟨ψ_ideal|ρ_noisy|ψ_ideal⟩ by Monte-Carlo:
// the mean of |⟨ψ_ideal|ψ_traj⟩|² over trajectories (exact in expectation
// because depolarizing is a stochastic Pauli channel).
func TrajectoryFidelity(c *circuit.Circuit, nm NoiseModel, trials int, rng *rand.Rand) float64 {
	ideal := RunCircuit(c)
	sum := 0.0
	for i := 0; i < trials; i++ {
		t := RunTrajectory(c, nm, rng)
		sum += StateFidelity(ideal, t)
	}
	return sum / float64(trials)
}
