package sim

import (
	"math"
	"math/rand"

	"repro/circuit"
)

// noiseLocations returns the indices of (op, qubit) pairs that carry noise.
func noiseLocations(c *circuit.Circuit, nm NoiseModel) [][2]int {
	var locs [][2]int
	for i, op := range c.Ops {
		if !nm.noisy(op) {
			continue
		}
		locs = append(locs, [2]int{i, op.Q[0]})
		if op.G.IsTwoQubit() {
			locs = append(locs, [2]int{i, op.Q[1]})
		}
	}
	return locs
}

// ImportanceFidelity estimates ⟨ψ_ideal|ρ_noisy|ψ_ideal⟩ by conditioning on
// the number of Pauli errors: the zero-error trajectory contributes
// P₀ = (1−p)^L exactly (fidelity 1), and trajectories with ≥1 error are
// sampled directly, so the estimator's variance scales with the small
// probability mass (1−P₀) instead of with the fidelity itself. This makes
// infidelities of order 1e-4…1e-6 measurable with a few hundred samples —
// plain Monte-Carlo would need millions (used for RQ4 at logical error
// rates down to 1e-6).
func ImportanceFidelity(c *circuit.Circuit, nm NoiseModel, trials int, rng *rand.Rand) float64 {
	return ImportanceFidelityVs(c, c, nm, trials, rng)
}

// ImportanceFidelityVs estimates ⟨ψ_ref|ρ_noisy(c)|ψ_ref⟩ where the
// reference state comes from a separate circuit (e.g. the pre-synthesis
// original, so that synthesis error and logical error combine the way the
// paper's RQ4 fidelities do). The zero-error branch then contributes
// P₀·|⟨ψ_ref|ψ_c⟩|² instead of P₀.
func ImportanceFidelityVs(ref, c *circuit.Circuit, nm NoiseModel, trials int, rng *rand.Rand) float64 {
	ideal := RunCircuit(ref)
	locs := noiseLocations(c, nm)
	l := len(locs)
	f0 := StateFidelity(ideal, RunCircuit(c))
	if f0 > 1 { // rounding guard
		f0 = 1
	}
	if l == 0 || nm.Rate <= 0 {
		return f0
	}
	p := nm.Rate
	logP0 := float64(l) * math.Log1p(-p)
	p0 := math.Exp(logP0)
	if p0 >= 1 {
		return f0
	}
	// Sample k ≥ 1 errors from the conditioned binomial, then positions.
	sampleK := func() int {
		// Inverse-CDF on the truncated binomial; l·p is small in practice
		// so k is almost always 1 or 2.
		u := rng.Float64() * (1 - p0)
		cdf := 0.0
		pk := p0
		for k := 1; k <= l; k++ {
			// Recurrence: P(k) = P(k−1)·(l−k+1)/k·p/(1−p).
			pk = pk * float64(l-k+1) / float64(k) * p / (1 - p)
			cdf += pk
			if u <= cdf {
				return k
			}
		}
		return l
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		k := sampleK()
		// Choose k distinct locations.
		chosen := map[int]int{} // loc index → pauli (1..3)
		for len(chosen) < k {
			chosen[rng.Intn(l)] = 1 + rng.Intn(3)
		}
		s := NewState(c.N)
		for i, op := range c.Ops {
			s.ApplyOp(op)
			for li, pauli := range chosen {
				if locs[li][0] == i {
					s.Apply1Q(locs[li][1], pauliMats[pauli])
				}
			}
		}
		sum += StateFidelity(ideal, s)
	}
	return p0*f0 + (1-p0)*sum/float64(trials)
}
