package sim

import (
	"math/cmplx"

	"repro/circuit"
	"repro/internal/qmat"
)

// Density is a density matrix on N qubits (row-major 2^N × 2^N).
type Density struct {
	N   int
	Rho []complex128
	dim int
}

// NewDensity returns |0…0⟩⟨0…0| on n qubits (n ≤ 12 practical).
func NewDensity(n int) *Density {
	dim := 1 << uint(n)
	d := &Density{N: n, Rho: make([]complex128, dim*dim), dim: dim}
	d.Rho[0] = 1
	return d
}

// DensityFromState returns |ψ⟩⟨ψ|.
func DensityFromState(s *State) *Density {
	dim := len(s.Amp)
	d := &Density{N: s.N, Rho: make([]complex128, dim*dim), dim: dim}
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			d.Rho[i*dim+j] = s.Amp[i] * cmplx.Conj(s.Amp[j])
		}
	}
	return d
}

// apply1QLeft computes ρ ← (M ⊗ rest)·ρ for a 1q gate on qubit q.
func (d *Density) apply1QLeft(q int, m qmat.M2) {
	bit := 1 << uint(q)
	for col := 0; col < d.dim; col++ {
		for row := 0; row < d.dim; row++ {
			if row&bit != 0 {
				continue
			}
			r2 := row | bit
			a0, a1 := d.Rho[row*d.dim+col], d.Rho[r2*d.dim+col]
			d.Rho[row*d.dim+col] = m[0][0]*a0 + m[0][1]*a1
			d.Rho[r2*d.dim+col] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// apply1QRight computes ρ ← ρ·(M† ⊗ rest).
func (d *Density) apply1QRight(q int, m qmat.M2) {
	bit := 1 << uint(q)
	md := qmat.Dagger(m)
	for row := 0; row < d.dim; row++ {
		base := row * d.dim
		for col := 0; col < d.dim; col++ {
			if col&bit != 0 {
				continue
			}
			c2 := col | bit
			a0, a1 := d.Rho[base+col], d.Rho[base+c2]
			d.Rho[base+col] = a0*md[0][0] + a1*md[1][0]
			d.Rho[base+c2] = a0*md[0][1] + a1*md[1][1]
		}
	}
}

// ApplyUnitary1Q applies ρ ← MρM† on qubit q.
func (d *Density) ApplyUnitary1Q(q int, m qmat.M2) {
	d.apply1QLeft(q, m)
	d.apply1QRight(q, m)
}

// ApplyCX applies the two-qubit unitary conjugation for CX.
func (d *Density) ApplyCX(ctl, tgt int) {
	cb, tb := 1<<uint(ctl), 1<<uint(tgt)
	// Left multiply: swap rows.
	for row := 0; row < d.dim; row++ {
		if row&cb != 0 && row&tb == 0 {
			r2 := row | tb
			for col := 0; col < d.dim; col++ {
				d.Rho[row*d.dim+col], d.Rho[r2*d.dim+col] = d.Rho[r2*d.dim+col], d.Rho[row*d.dim+col]
			}
		}
	}
	// Right multiply: swap columns.
	for col := 0; col < d.dim; col++ {
		if col&cb != 0 && col&tb == 0 {
			c2 := col | tb
			for row := 0; row < d.dim; row++ {
				d.Rho[row*d.dim+col], d.Rho[row*d.dim+c2] = d.Rho[row*d.dim+c2], d.Rho[row*d.dim+col]
			}
		}
	}
}

// ApplyCZ applies the CZ conjugation.
func (d *Density) ApplyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for row := 0; row < d.dim; row++ {
		for col := 0; col < d.dim; col++ {
			sign := 1.0
			if row&ab != 0 && row&bb != 0 {
				sign = -sign
			}
			if col&ab != 0 && col&bb != 0 {
				sign = -sign
			}
			if sign < 0 {
				d.Rho[row*d.dim+col] = -d.Rho[row*d.dim+col]
			}
		}
	}
}

// ApplyDepolarizing applies the single-qubit depolarizing channel with
// probability p: ρ ← (1−p)ρ + (p/3)(XρX + YρY + ZρZ).
func (d *Density) ApplyDepolarizing(q int, p float64) {
	if p <= 0 {
		return
	}
	orig := append([]complex128(nil), d.Rho...)
	acc := make([]complex128, len(d.Rho))
	for i, v := range orig {
		acc[i] = complex(1-p, 0) * v
	}
	for pi := 1; pi <= 3; pi++ {
		copy(d.Rho, orig)
		d.ApplyUnitary1Q(q, pauliMats[pi])
		for i, v := range d.Rho {
			acc[i] += complex(p/3, 0) * v
		}
	}
	copy(d.Rho, acc)
}

// RunNoisy applies a circuit under the noise model (depolarizing after each
// noisy gate, on every qubit the gate touches).
func (d *Density) RunNoisy(c *circuit.Circuit, nm NoiseModel) {
	for _, op := range c.Ops {
		switch op.G {
		case circuit.CX:
			d.ApplyCX(op.Q[0], op.Q[1])
		case circuit.CZ:
			d.ApplyCZ(op.Q[0], op.Q[1])
		case circuit.I:
		default:
			d.ApplyUnitary1Q(op.Q[0], op.Matrix1Q())
		}
		if nm.noisy(op) {
			d.ApplyDepolarizing(op.Q[0], nm.Rate)
			if op.G.IsTwoQubit() {
				d.ApplyDepolarizing(op.Q[1], nm.Rate)
			}
		}
	}
}

// FidelityWithState returns ⟨ψ|ρ|ψ⟩ (real part; imaginary is zero for
// Hermitian ρ).
func (d *Density) FidelityWithState(s *State) float64 {
	var acc complex128
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			acc += cmplx.Conj(s.Amp[i]) * d.Rho[i*d.dim+j] * s.Amp[j]
		}
	}
	return real(acc)
}

// Trace returns Tr(ρ).
func (d *Density) Trace() complex128 {
	var t complex128
	for i := 0; i < d.dim; i++ {
		t += d.Rho[i*d.dim+i]
	}
	return t
}
