package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/qmat"
)

func bell() *circuit.Circuit {
	c := circuit.New(2)
	c.H(0).CX(0, 1)
	return c
}

func TestBellState(t *testing.T) {
	s := RunCircuit(bell())
	want := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(s.Amp[0]-want) > 1e-12 || cmplx.Abs(s.Amp[3]-want) > 1e-12 ||
		cmplx.Abs(s.Amp[1]) > 1e-12 || cmplx.Abs(s.Amp[2]) > 1e-12 {
		t.Fatalf("Bell state wrong: %v", s.Amp)
	}
}

func TestNormPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := circuit.New(4)
	for i := 0; i < 60; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(4))
		case 1:
			c.RZ(rng.Intn(4), rng.Float64()*6)
		case 2:
			c.CX(rng.Intn(4), (rng.Intn(3)+1+rng.Intn(4))%4)
		case 3:
			c.U3Gate(rng.Intn(4), rng.Float64()*3, rng.Float64()*6, rng.Float64()*6)
		}
	}
	// Fix any accidental same-qubit CX.
	for i, op := range c.Ops {
		if op.G == circuit.CX && op.Q[0] == op.Q[1] {
			c.Ops[i].Q[1] = (op.Q[0] + 1) % 4
		}
	}
	s := RunCircuit(c)
	if math.Abs(s.Norm()-1) > 1e-10 {
		t.Fatalf("norm drifted: %v", s.Norm())
	}
}

func TestCZSymmetricAndMatchesCX(t *testing.T) {
	// CZ = (I⊗H)·CX·(I⊗H).
	a := circuit.New(2)
	a.H(0).H(1).CZ(0, 1)
	b := circuit.New(2)
	b.H(0).H(1).H(1).CX(0, 1).H(1)
	ua, ub := Unitary(a), Unitary(b)
	if d := UnitaryDistance(ua, ub); d > 1e-9 {
		t.Fatalf("CZ ≠ H·CX·H: %v", d)
	}
	// CZ symmetric in its qubits.
	c1 := circuit.New(2)
	c1.CZ(0, 1)
	c2 := circuit.New(2)
	c2.CZ(1, 0)
	if d := UnitaryDistance(Unitary(c1), Unitary(c2)); d > 1e-12 {
		t.Fatal("CZ not symmetric")
	}
}

func TestUnitaryOfSingleGate(t *testing.T) {
	c := circuit.New(1)
	c.U3Gate(0, 1.1, 0.5, -0.3)
	u := Unitary(c)
	want := qmat.U3(1.1, 0.5, -0.3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(u[i][j]-want[i][j]) > 1e-12 {
				t.Fatal("1q unitary mismatch")
			}
		}
	}
}

func TestDensityMatchesStatevector(t *testing.T) {
	c := circuit.New(3)
	c.H(0).CX(0, 1).RZ(1, 0.7).CX(1, 2).U3Gate(2, 0.4, 1.0, -0.2).CZ(0, 2)
	s := RunCircuit(c)
	d := NewDensity(3)
	d.RunNoisy(c, NoiseModel{})
	ds := DensityFromState(s)
	for i := range d.Rho {
		if cmplx.Abs(d.Rho[i]-ds.Rho[i]) > 1e-10 {
			t.Fatalf("density mismatch at %d", i)
		}
	}
	if f := d.FidelityWithState(s); math.Abs(f-1) > 1e-10 {
		t.Fatalf("fidelity with own state = %v", f)
	}
}

func TestDepolarizingReducesFidelity(t *testing.T) {
	c := circuit.New(2)
	c.H(0).T(0).CX(0, 1).T(1).Tdg(0).CX(0, 1)
	ideal := RunCircuit(c)
	d := NewDensity(2)
	nm := NoiseModel{Rate: 0.05, TGatesOnly: true}
	d.RunNoisy(c, nm)
	if math.Abs(real(d.Trace())-1) > 1e-9 {
		t.Fatalf("trace not preserved: %v", d.Trace())
	}
	f := d.FidelityWithState(ideal)
	if f >= 1 || f < 0.7 {
		t.Fatalf("unexpected noisy fidelity %v", f)
	}
	// Trajectories must agree with the exact density matrix.
	rng := rand.New(rand.NewSource(2))
	mc := TrajectoryFidelity(c, nm, 30000, rng)
	if math.Abs(mc-f) > 0.01 {
		t.Fatalf("trajectory fidelity %v vs exact %v", mc, f)
	}
}

func TestPTMIdentities(t *testing.T) {
	// Unitary PTMs compose like the unitaries.
	a, b := qmat.H(), qmat.T()
	lhs := PTMFromUnitary(qmat.Mul(a, b))
	rhs := PTMFromUnitary(a).Mul(PTMFromUnitary(b))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(lhs[i][j]-rhs[i][j]) > 1e-12 {
				t.Fatal("PTM composition mismatch")
			}
		}
	}
	// Process fidelity of a channel with itself is 1.
	if f := ProcessFidelity(qmat.T(), PTMFromUnitary(qmat.T())); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self process fidelity %v", f)
	}
	// Depolarizing p: F_pro = 1 − p for the identity target.
	for _, p := range []float64{0.01, 0.1, 0.3} {
		f := ProcessFidelity(qmat.I2(), PTMDepolarizing(p))
		if math.Abs(f-(1-p)) > 1e-12 {
			t.Fatalf("depolarizing F_pro(%v) = %v, want %v", p, f, 1-p)
		}
	}
}

func TestPTMAgainstChoi(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		u := qmat.HaarRandom(rng)
		ch := PTMFromUnitary(qmat.HaarRandom(rng)).Mul(PTMDepolarizing(0.1 * rng.Float64()))
		f1 := ProcessFidelity(u, ch)
		f2 := ChoiFidelityFromStates(u, ch)
		if math.Abs(f1-f2) > 1e-9 {
			t.Fatalf("PTM fidelity %v vs Choi fidelity %v", f1, f2)
		}
	}
}

func TestSequencePTM(t *testing.T) {
	seq := gates.Sequence{gates.H, gates.T, gates.S, gates.H, gates.Tdg}
	// Noise-free: PTM must equal the PTM of the sequence product.
	got := SequencePTM(seq, 0)
	want := PTMFromUnitary(seq.Matrix())
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(got[i][j]-want[i][j]) > 1e-12 {
				t.Fatal("SequencePTM noise-free mismatch")
			}
		}
	}
	// With noise on T gates only: fidelity ≈ 1 − (4/3)·p·#T·(1 − small).
	p := 1e-3
	f := ProcessFidelity(seq.Matrix(), SequencePTM(seq, p))
	expected := 1 - 2*p // 2 T gates, each costing ~p
	if math.Abs(f-expected) > 3*p {
		t.Fatalf("noisy sequence fidelity %v, expected ≈ %v", f, expected)
	}
}

func TestUnitaryDistanceSelf(t *testing.T) {
	c := bell()
	u := Unitary(c)
	if d := UnitaryDistance(u, u); d > 1e-7 {
		t.Fatalf("self distance %v", d)
	}
}

// TestImportanceFidelityAgreesWithExact: the conditioned estimator must
// match the exact density matrix at moderate rates.
func TestImportanceFidelityAgreesWithExact(t *testing.T) {
	c := circuit.New(2)
	c.H(0).T(0).CX(0, 1).T(1).Tdg(0).CX(0, 1).H(1).T(1)
	nm := NoiseModel{Rate: 0.02, TGatesOnly: false}
	d := NewDensity(2)
	d.RunNoisy(c, nm)
	exact := d.FidelityWithState(RunCircuit(c))
	rng := rand.New(rand.NewSource(7))
	est := ImportanceFidelity(c, nm, 20000, rng)
	if math.Abs(est-exact) > 0.004 {
		t.Fatalf("importance fidelity %v vs exact %v", est, exact)
	}
}

// TestImportanceFidelityTinyRates: at tiny rates the infidelity must track
// ~(4/3)·p·L to within sampling error (single-error regime) — and be far
// less noisy than the infidelity itself.
func TestImportanceFidelityTinyRates(t *testing.T) {
	c := circuit.New(2)
	for i := 0; i < 10; i++ {
		c.H(0).T(0).CX(0, 1).T(1)
	}
	nm := NoiseModel{Rate: 1e-5, TGatesOnly: true}
	rng := rand.New(rand.NewSource(8))
	f := ImportanceFidelity(c, nm, 4000, rng)
	infid := 1 - f
	if infid <= 0 || infid > 1e-3 {
		t.Fatalf("implausible tiny-rate infidelity %v", infid)
	}
	// 20 T locations at 1e-5 → P(≥1 error) ≈ 2e-4; most single Pauli
	// errors hurt, so infidelity within [2e-5, 2e-4].
	if infid < 2e-5 || infid > 2.5e-4 {
		t.Fatalf("tiny-rate infidelity %v outside expected window", infid)
	}
}

func TestImportanceFidelityNoNoise(t *testing.T) {
	c := bell()
	if f := ImportanceFidelity(c, NoiseModel{}, 100, rand.New(rand.NewSource(9))); f != 1 {
		t.Fatalf("noise-free fidelity %v", f)
	}
}
