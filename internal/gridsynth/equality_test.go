package gridsynth

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/dioph"
	"repro/internal/exact"
	"repro/internal/ring"
)

// Seed-equality property: the optimized hot path (exact synthesis's int64
// peel loop, the Diophantine residue pre-filter, the in-place ring
// arithmetic that both now sit on) must produce bit-identical gate
// sequences to the arbitrary-precision reference path — same gates in the
// same order, same T count, same denominator exponent k — for fixed seeds
// across the benchmark ε ladder. This is the acceptance gate that lets the
// perf work claim "no output change".

// withReferencePaths runs f with every fast path disabled, restoring the
// production configuration afterwards.
func withReferencePaths(t *testing.T, f func()) {
	t.Helper()
	prevFast := exact.SetFastPath(false)
	prevFilter := dioph.SetPreFilter(false)
	defer func() {
		exact.SetFastPath(prevFast)
		dioph.SetPreFilter(prevFilter)
	}()
	f()
}

func sequencesEqual(a, b []Result) (int, bool) {
	for i := range a {
		if len(a[i].Seq) != len(b[i].Seq) {
			return i, false
		}
		for j := range a[i].Seq {
			if a[i].Seq[j] != b[i].Seq[j] {
				return i, false
			}
		}
		if a[i].TCount != b[i].TCount || a[i].Clifford != b[i].Clifford ||
			a[i].K != b[i].K || a[i].Error != b[i].Error {
			return i, false
		}
	}
	return 0, true
}

// equalityAngles returns the fixed angle set for one ε tier: a seeded
// spread plus the benchmark angles, so the equality claim covers exactly
// what BENCH_gridsynth.json measures.
func equalityAngles(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	angles := make([]float64, 0, n+5)
	for i := 0; i < n; i++ {
		angles = append(angles, rng.Float64()*4*math.Pi-2*math.Pi)
	}
	for i := 0; i < 5; i++ {
		angles = append(angles, 1.0+float64(i)*0.21) // the bench ladder
	}
	return angles
}

func runEquality(t *testing.T, eps float64, angles []float64) {
	t.Helper()
	fast := make([]Result, len(angles))
	for i, theta := range angles {
		r, err := Rz(theta, eps, Options{})
		if err != nil {
			t.Fatalf("fast Rz(%v, %v): %v", theta, eps, err)
		}
		fast[i] = r
	}
	ref := make([]Result, len(angles))
	withReferencePaths(t, func() {
		for i, theta := range angles {
			r, err := Rz(theta, eps, Options{})
			if err != nil {
				t.Fatalf("reference Rz(%v, %v): %v", theta, eps, err)
			}
			ref[i] = r
		}
	})
	if i, ok := sequencesEqual(fast, ref); !ok {
		t.Fatalf("eps=%v theta=%v: fast path diverged from reference:\nfast: k=%d t=%d err=%v %v\nref:  k=%d t=%d err=%v %v",
			eps, angles[i],
			fast[i].K, fast[i].TCount, fast[i].Error, fast[i].Seq,
			ref[i].K, ref[i].TCount, ref[i].Error, ref[i].Seq)
	}
}

func TestSeedEquality1e2(t *testing.T) { runEquality(t, 1e-2, equalityAngles(11, 8)) }

func TestSeedEquality1e4(t *testing.T) { runEquality(t, 1e-4, equalityAngles(12, 4)) }

func TestSeedEquality1e6(t *testing.T) { runEquality(t, 1e-6, equalityAngles(13, 4)) }

// TestPreFilterNeverLies proves the residue pre-filter is a pure
// optimization: any ξ the filter rejects must also be rejected by the
// full solver, and filtering never changes a verdict. (Acceptance by the
// filter decides nothing — the solver still runs — so agreement is
// exactly the soundness claim.) Three input families: random small ξ,
// crafted ξ with odd valuation v_p(N(ξ)) at EVERY small prime
// p ≡ 7 (mod 8) the filter tests (the documented reject condition), and
// the same crafted ξ scaled by 3^45 so N(ξ) leaves int64 range and the
// filter's big.Int fallback path is exercised.
func TestPreFilterNeverLies(t *testing.T) {
	defer dioph.SetPreFilter(dioph.SetPreFilter(true))
	check := func(xi ring.BSqrt2) {
		t.Helper()
		dioph.SetPreFilter(true)
		_, okFiltered := dioph.SolveNormEquation(xi)
		dioph.SetPreFilter(false)
		_, okFull := dioph.SolveNormEquation(xi)
		if okFiltered != okFull {
			t.Fatalf("ξ=%v: filtered=%v full=%v", xi, okFiltered, okFull)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		check(ring.NewBSqrt2(rng.Int63n(1<<20), rng.Int63n(1<<10)))
	}
	// Crafted odd-valuation inputs for each prefilter prime p: search small
	// totally positive a+b√2 with v_p(a²−2b²) odd (2 is a QR mod p for
	// p ≡ ±1 (mod 8), so solutions are dense).
	primes := []int64{7, 23, 31, 47, 71, 79, 103, 127, 151, 167,
		191, 199, 223, 239, 263, 271, 311, 359, 367, 383}
	for _, p := range primes {
		found := false
	search:
		for a := p; a < p+6*p && !found; a++ {
			for b := int64(1); b*b*2 < a*a; b++ {
				n, e := a*a-2*b*b, 0
				for n%p == 0 {
					n, e = n/p, e+1
				}
				if e&1 == 0 {
					continue
				}
				xi := ring.NewBSqrt2(a, b)
				check(xi)
				// Same valuation pattern with N(ξ) pushed out of int64
				// range: m·ξ for m = 3^45 has N = 3^90·(a²−2b²) (same
				// odd valuation at every prefilter prime, since 3 is not
				// one), exercising the filter's big.Int fallback path.
				m := new(big.Int).Exp(big.NewInt(3), big.NewInt(45), nil)
				scaled := ring.BSqrt2{
					A: new(big.Int).Mul(m, big.NewInt(a)),
					B: new(big.Int).Mul(m, big.NewInt(b)),
				}
				check(scaled)
				found = true
				break search
			}
		}
		if !found {
			t.Fatalf("no odd-valuation ξ found for p=%d", p)
		}
	}
}
