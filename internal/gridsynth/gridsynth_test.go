package gridsynth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/qmat"
)

// TestRzMeetsThreshold: for a spread of angles and thresholds, the output
// must satisfy the error bound and actually be a Clifford+T word.
func TestRzMeetsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, eps := range []float64{0.3, 0.1, 0.03, 0.01} {
		for i := 0; i < 6; i++ {
			theta := rng.Float64()*4*math.Pi - 2*math.Pi
			res, err := Rz(theta, eps, Options{})
			if err != nil {
				t.Fatalf("Rz(%v, %v): %v", theta, eps, err)
			}
			if res.Error > eps*(1+1e-6)+1e-7 {
				t.Fatalf("error %v exceeds eps %v", res.Error, eps)
			}
			if d := qmat.Distance(qmat.Rz(theta), res.Seq.Matrix()); math.Abs(d-res.Error) > 1e-9 {
				t.Fatalf("reported error %v but sequence realizes %v", res.Error, d)
			}
			if res.TCount != res.Seq.TCount() {
				t.Fatal("T count metadata mismatch")
			}
		}
	}
}

// TestRzExactAngles: multiples of π/4 must synthesize exactly with ≤ 1 T
// gate (footnote 3 of the paper).
func TestRzExactAngles(t *testing.T) {
	for mult := -8; mult <= 8; mult++ {
		theta := float64(mult) * math.Pi / 4
		res, err := Rz(theta, 1e-8, Options{})
		if err != nil {
			t.Fatalf("Rz(%dπ/4): %v", mult, err)
		}
		if res.Error > 1e-7 {
			t.Fatalf("Rz(%dπ/4) error %v, want ~0", mult, res.Error)
		}
		if res.TCount > 1 {
			t.Fatalf("Rz(%dπ/4) used %d T gates, want ≤ 1", mult, res.TCount)
		}
	}
}

// TestRzTCountScaling: T count must grow like ~3·log2(1/ε) + O(1) — the
// gridsynth shape the paper's baselines rely on. We check the growth rate
// sits in a [2, 5]·log2(1/ε) window to allow constant offsets.
func TestRzTCountScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	epsList := []float64{1e-1, 1e-2, 1e-3}
	avg := make([]float64, len(epsList))
	const n = 4
	for i := 0; i < n; i++ {
		theta := rng.Float64()*2*math.Pi - math.Pi
		for j, eps := range epsList {
			res, err := Rz(theta, eps, Options{})
			if err != nil {
				t.Fatalf("Rz(%v, %v): %v", theta, eps, err)
			}
			avg[j] += float64(res.TCount) / n
		}
	}
	// Slope between eps=1e-1 and 1e-3: Δlog2(1/ε) = log2(1e2) ≈ 6.64.
	slope := (avg[2] - avg[0]) / (math.Log2(1e3) - math.Log2(1e1))
	if slope < 1.5 || slope > 6 {
		t.Errorf("T-count slope %v per log2(1/ε); want ≈3 (gridsynth shape). Avgs: %v", slope, avg)
	}
}

// TestU3IsThreeRotations: the Rz-workflow U3 synthesis must meet its error
// budget and cost roughly 3x a single rotation.
func TestU3IsThreeRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		u := qmat.HaarRandom(rng)
		res, err := U3(u, 0.03, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Error > 0.03 {
			t.Fatalf("U3 error %v exceeds budget", res.Error)
		}
		single, err := Rz(1.2345, 0.01, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.TCount < single.TCount {
			t.Fatalf("U3 T count %d suspiciously below single-rotation %d", res.TCount, single.TCount)
		}
	}
}

func TestRzRejectsBadEps(t *testing.T) {
	if _, err := Rz(1.0, 0, Options{}); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := Rz(1.0, 1.5, Options{}); err == nil {
		t.Error("eps>1 should error")
	}
}

func BenchmarkRzEps1e2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Rz(1.0+float64(i%7)*0.37, 1e-2, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRzEps1e3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Rz(1.0+float64(i%7)*0.37, 1e-3, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
