package gridsynth

import "testing"

func BenchmarkGridsynthRz1e2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Rz(1.0+float64(i%5)*0.21, 1e-2, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridsynthRz1e4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Rz(1.0+float64(i%5)*0.21, 1e-4, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridsynthRz1e6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Rz(1.0+float64(i%5)*0.21, 1e-6, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
