package gridsynth

import (
	"encoding/json"
	"os"
	"testing"
)

// TestAllocBudget is the perf-smoke allocation gate: steady-state Rz
// synthesis must stay within the allocs/op ceilings checked into
// testdata/alloc_budget.json. It runs only when PERF_SMOKE=1 (the CI
// perf-smoke job) because allocation counts are not comparable under the
// race detector or arbitrary developer environments.
func TestAllocBudget(t *testing.T) {
	if os.Getenv("PERF_SMOKE") != "1" {
		t.Skip("set PERF_SMOKE=1 to enforce the allocation budget")
	}
	data, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatal(err)
	}
	var cfg struct {
		Budgets map[string]float64 `json:"budgets"`
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	tiers := map[string]float64{"1e-2": 1e-2, "1e-4": 1e-4}
	for name, eps := range tiers {
		budget, ok := cfg.Budgets[name]
		if !ok {
			t.Fatalf("alloc_budget.json has no budget for %s", name)
		}
		i := 0
		op := func() {
			if _, err := Rz(1.0+float64(i%5)*0.21, eps, Options{}); err != nil {
				t.Fatal(err)
			}
			i++
		}
		op() // warm-up: shared table build, big.Int capacity growth
		got := testing.AllocsPerRun(20, op)
		t.Logf("eps=%s: %.0f allocs/op (budget %.0f)", name, got, budget)
		if got > budget {
			t.Errorf("eps=%s: %.0f allocs/op exceeds budget %.0f — the hot path regressed; see BENCH_gridsynth.json and DESIGN.md §Engine performance", name, got, budget)
		}
	}
}
