// Package gridsynth is the Ross–Selinger baseline: ancilla-free Clifford+T
// approximation of Rz(θ) rotations (the paper's primary comparison point).
//
// For increasing denominator exponents k it enumerates numerator candidates
// u ∈ Z[ω] in the ε-sliver (package grid), solves the norm equation
// t·t† = 2^k − u·u† (package dioph), assembles the exact unitary
// V = (1/√2^k)[[u, −t†ω^g],[t, u†ω^g]] and synthesizes it into gates
// (package exact). Solutions are found "up to global phase": both the
// integer (g=0) and half (g=1) phase grids are searched, matching the
// paper's use of gridsynth's phase flag. T count grows as
// ≈ 3·log2(1/ε) + O(1), the known gridsynth shape.
package gridsynth

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dioph"
	"repro/internal/exact"
	"repro/internal/gates"
	"repro/internal/grid"
	"repro/internal/qmat"
	"repro/internal/ring"
	"repro/synth/trace"
)

// Options tunes the search; zero values select sensible defaults.
type Options struct {
	// MaxK caps the denominator exponent (default 120 ≈ ε ~ 1e-18).
	MaxK int
	// CandidatesPerK bounds the admitted candidates (those passing the
	// PreError distance screen) attempted per (k, phase grid). The default
	// 4096 is sized for small ε, where thousands of geometrically valid
	// candidates per k compete and only ~0.1% of them have a solvable norm
	// equation; the residue pre-filter keeps a failed attempt at ~1µs, so
	// a deep budget is cheap and the search terminates within a k or two
	// of the information-theoretic minimum. Larger ε never fills the
	// budget — the first admitted candidates solve almost immediately.
	CandidatesPerK int
	// Table supplies the residual lookup for exact synthesis (default
	// gates.Shared(4)).
	Table *gates.Table
	// Cancel, when non-nil, aborts the search between denominator
	// exponents, returning ErrCanceled.
	Cancel <-chan struct{}
	// Trace, when non-nil, is the parent span the search records its
	// per-denominator-exponent candidate scans under (one child span per
	// k, with the admitted-candidate count). Nil — the normal case —
	// costs one pointer check per k.
	Trace *trace.Span
}

// Result is a synthesized Rz approximation.
type Result struct {
	Seq      gates.Sequence // product equals Rz(θ) up to global phase, within Error
	Error    float64        // unitary distance Eq. (2)
	TCount   int
	Clifford int // non-Pauli Clifford gates
	K        int // denominator exponent of the solution
}

// ErrNoSolution is returned when no solution is found within MaxK.
var ErrNoSolution = errors.New("gridsynth: no solution within MaxK")

// ErrCanceled is returned when Options.Cancel fires mid-search.
var ErrCanceled = errors.New("gridsynth: canceled")

func (o Options) filled() Options {
	if o.MaxK <= 0 {
		o.MaxK = 120
	}
	if o.CandidatesPerK <= 0 {
		o.CandidatesPerK = 4096
	}
	if o.Table == nil {
		o.Table = gates.Shared(4)
	}
	return o
}

// Rz synthesizes Rz(theta) to unitary distance ≤ eps.
//
// The hot-path state — sliver geometry per phase grid, the Diophantine
// solver with its scratch and per-prime memo, and the in-place ring
// temporaries — is created once here and reused across every
// (k, candidate) pair, so the search allocates only when it finds a
// solution (plus unavoidable math/big growth).
//
// Candidates stream lazily out of grid.Sliver.Scan and are admitted by
// grid.Sliver.PreError — the distance the assembled unitary will realize,
// computed from the numerator alone to float64 accuracy — before any
// norm-equation or synthesis work is spent on them. Admission ordering is
// the enumeration ordering, so results are deterministic. (The fuzzy
// geometric sliver test alone over-admits by orders of magnitude below
// ε ≈ 1e-5, which used to fill the per-k candidate budget with
// false positives and drive the search into runaway k; with PreError
// screening, ε = 1e-6 synthesizes in tens of milliseconds.)
func Rz(theta, eps float64, opt Options) (Result, error) {
	opt = opt.filled()
	if eps <= 0 || eps >= 1 {
		return Result{}, fmt.Errorf("gridsynth: eps %v out of range (0,1)", eps)
	}
	target := qmat.Rz(theta)
	pow2k := ring.NewBSqrt2(1, 0)
	two := ring.NewBSqrt2(2, 0)
	// Per-search reusable state.
	var (
		scr    ring.Scratch
		u      ring.BOmega
		n2, xi ring.BSqrt2
		solver = dioph.NewSolver()
	)
	// Phase grid g: direction rotated by ω^{g/2} = e^{igπ/8} (see package
	// doc); equivalent to synthesizing at θ − gπ/4.
	slivers := [2]*grid.Sliver{
		grid.NewSliver(theta, eps),
		grid.NewSliver(theta-math.Pi/4, eps),
	}
	// The final acceptance bound, shared by the PreError admission below
	// (with a hair of extra slack so borderline candidates reach the
	// authoritative post-synthesis check rather than being screened out).
	bound := eps*(1+1e-6) + 1e-7
	admit := bound + 1e-12
	for k := 0; k <= opt.MaxK; k++ {
		if opt.Cancel != nil {
			select {
			case <-opt.Cancel:
				return Result{}, ErrCanceled
			default:
			}
		}
		ks := opt.Trace.Child("gridsynth.k")
		ks.SetAttr("k", k)
		kAdmitted := 0
		for g := 0; g < 2; g++ {
			var (
				res      Result
				found    bool
				admitted int
			)
			sl := slivers[g]
			sl.Scan(k, func(cand grid.Candidate) bool {
				if sl.PreError(cand.U, k) > admit {
					return true // keep scanning; no budget spent
				}
				admitted++
				u.SetZOmega(cand.U)
				u.Norm2To(&n2, &scr)
				xi.SubTo(pow2k, n2)
				t, ok := solver.Solve(xi)
				if ok {
					v := exact.FromColumns(u, t, k, g)
					if seq, err := exact.Synthesize(v, opt.Table); err == nil {
						if d := qmat.Distance(target, seq.Matrix()); d <= bound {
							res = Result{
								Seq:      seq,
								Error:    d,
								TCount:   seq.TCount(),
								Clifford: seq.CliffordCount(),
								K:        k,
							}
							found = true
							return false
						}
					}
				}
				return admitted < opt.CandidatesPerK
			})
			kAdmitted += admitted
			if found {
				ks.SetAttr("admitted", kAdmitted)
				ks.SetAttr("found", true)
				ks.End()
				return res, nil
			}
		}
		ks.SetAttr("admitted", kAdmitted)
		ks.End()
		pow2k.MulTo(pow2k, two, &scr)
	}
	return Result{}, ErrNoSolution
}

// U3 synthesizes an arbitrary single-qubit unitary by decomposing it into
// three Rz rotations via Eq. (1) — the paper's "Rz workflow" applied to a
// fused U3 — and synthesizing each rotation at eps/3 (the error-budget
// split the paper applies to the baseline).
func U3(u qmat.M2, eps float64, opt Options) (Result, error) {
	theta, phi, lambda := qmat.ZYZAngles(u)
	part := eps / 3
	// Each of the three Rz legs gets its own span (the per-k scans of a
	// leg then nest under it) so a trace distinguishes which Euler angle
	// was expensive.
	rz := func(angle float64) (Result, error) {
		o := opt
		o.Trace = opt.Trace.Child("gridsynth.rz")
		o.Trace.SetAttr("theta", angle)
		r, err := Rz(angle, part, o)
		if err == nil {
			o.Trace.SetAttr("t_count", r.TCount)
		}
		o.Trace.End()
		return r, err
	}
	r1, err := rz(phi + math.Pi/2)
	if err != nil {
		return Result{}, err
	}
	r2, err := rz(theta)
	if err != nil {
		return Result{}, err
	}
	r3, err := rz(lambda - math.Pi/2)
	if err != nil {
		return Result{}, err
	}
	// U3 = Rz(φ+π/2)·H·Rz(θ)·H·Rz(λ−π/2) up to phase.
	seq := make(gates.Sequence, 0, len(r1.Seq)+len(r2.Seq)+len(r3.Seq)+2)
	seq = append(seq, r1.Seq...)
	seq = append(seq, gates.H)
	seq = append(seq, r2.Seq...)
	seq = append(seq, gates.H)
	seq = append(seq, r3.Seq...)
	d := qmat.Distance(u, seq.Matrix())
	return Result{
		Seq:      seq,
		Error:    d,
		TCount:   seq.TCount(),
		Clifford: seq.CliffordCount(),
		K:        max(r1.K, r2.K, r3.K),
	}, nil
}
