// Package gridsynth is the Ross–Selinger baseline: ancilla-free Clifford+T
// approximation of Rz(θ) rotations (the paper's primary comparison point).
//
// For increasing denominator exponents k it enumerates numerator candidates
// u ∈ Z[ω] in the ε-sliver (package grid), solves the norm equation
// t·t† = 2^k − u·u† (package dioph), assembles the exact unitary
// V = (1/√2^k)[[u, −t†ω^g],[t, u†ω^g]] and synthesizes it into gates
// (package exact). Solutions are found "up to global phase": both the
// integer (g=0) and half (g=1) phase grids are searched, matching the
// paper's use of gridsynth's phase flag. T count grows as
// ≈ 3·log2(1/ε) + O(1), the known gridsynth shape.
package gridsynth

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dioph"
	"repro/internal/exact"
	"repro/internal/gates"
	"repro/internal/grid"
	"repro/internal/qmat"
	"repro/internal/ring"
)

// Options tunes the search; zero values select sensible defaults.
type Options struct {
	// MaxK caps the denominator exponent (default 120 ≈ ε ~ 1e-18).
	MaxK int
	// CandidatesPerK bounds grid candidates examined per (k, phase grid).
	CandidatesPerK int
	// Table supplies the residual lookup for exact synthesis (default
	// gates.Shared(4)).
	Table *gates.Table
	// Cancel, when non-nil, aborts the search between denominator
	// exponents, returning ErrCanceled.
	Cancel <-chan struct{}
}

// Result is a synthesized Rz approximation.
type Result struct {
	Seq      gates.Sequence // product equals Rz(θ) up to global phase, within Error
	Error    float64        // unitary distance Eq. (2)
	TCount   int
	Clifford int // non-Pauli Clifford gates
	K        int // denominator exponent of the solution
}

// ErrNoSolution is returned when no solution is found within MaxK.
var ErrNoSolution = errors.New("gridsynth: no solution within MaxK")

// ErrCanceled is returned when Options.Cancel fires mid-search.
var ErrCanceled = errors.New("gridsynth: canceled")

func (o Options) filled() Options {
	if o.MaxK <= 0 {
		o.MaxK = 120
	}
	if o.CandidatesPerK <= 0 {
		o.CandidatesPerK = 24
	}
	if o.Table == nil {
		o.Table = gates.Shared(4)
	}
	return o
}

// Rz synthesizes Rz(theta) to unitary distance ≤ eps.
func Rz(theta, eps float64, opt Options) (Result, error) {
	opt = opt.filled()
	if eps <= 0 || eps >= 1 {
		return Result{}, fmt.Errorf("gridsynth: eps %v out of range (0,1)", eps)
	}
	target := qmat.Rz(theta)
	pow2k := ring.NewBSqrt2(1, 0)
	two := ring.NewBSqrt2(2, 0)
	for k := 0; k <= opt.MaxK; k++ {
		if opt.Cancel != nil {
			select {
			case <-opt.Cancel:
				return Result{}, ErrCanceled
			default:
			}
		}
		for g := 0; g < 2; g++ {
			// Phase grid g: direction rotated by ω^{g/2} = e^{igπ/8}
			// (see package doc); equivalent to synthesizing at θ − gπ/4.
			cands := grid.SliverCandidates(grid.SliverParams{
				Theta: theta - float64(g)*math.Pi/4,
				Eps:   eps,
				K:     k,
			}, opt.CandidatesPerK)
			for _, cand := range cands {
				u := ring.BOmegaFromZOmega(cand.U)
				xi := pow2k.Sub(u.Norm2())
				t, ok := dioph.SolveNormEquation(xi)
				if !ok {
					continue
				}
				v := exact.FromColumns(u, t, k, g)
				seq, err := exact.Synthesize(v, opt.Table)
				if err != nil {
					continue
				}
				d := qmat.Distance(target, seq.Matrix())
				if d > eps*(1+1e-6)+1e-7 {
					// Boundary fuzz pushed us out; try the next candidate.
					continue
				}
				return Result{
					Seq:      seq,
					Error:    d,
					TCount:   seq.TCount(),
					Clifford: seq.CliffordCount(),
					K:        k,
				}, nil
			}
		}
		pow2k = pow2k.Mul(two)
	}
	return Result{}, ErrNoSolution
}

// U3 synthesizes an arbitrary single-qubit unitary by decomposing it into
// three Rz rotations via Eq. (1) — the paper's "Rz workflow" applied to a
// fused U3 — and synthesizing each rotation at eps/3 (the error-budget
// split the paper applies to the baseline).
func U3(u qmat.M2, eps float64, opt Options) (Result, error) {
	theta, phi, lambda := qmat.ZYZAngles(u)
	part := eps / 3
	r1, err := Rz(phi+math.Pi/2, part, opt)
	if err != nil {
		return Result{}, err
	}
	r2, err := Rz(theta, part, opt)
	if err != nil {
		return Result{}, err
	}
	r3, err := Rz(lambda-math.Pi/2, part, opt)
	if err != nil {
		return Result{}, err
	}
	// U3 = Rz(φ+π/2)·H·Rz(θ)·H·Rz(λ−π/2) up to phase.
	seq := make(gates.Sequence, 0, len(r1.Seq)+len(r2.Seq)+len(r3.Seq)+2)
	seq = append(seq, r1.Seq...)
	seq = append(seq, gates.H)
	seq = append(seq, r2.Seq...)
	seq = append(seq, gates.H)
	seq = append(seq, r3.Seq...)
	d := qmat.Distance(u, seq.Matrix())
	return Result{
		Seq:      seq,
		Error:    d,
		TCount:   seq.TCount(),
		Clifford: seq.CliffordCount(),
		K:        maxInt(r1.K, maxInt(r2.K, r3.K)),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
