package dioph

import (
	"math/big"
	"sort"
)

// PrimePower is a prime together with its multiplicity.
type PrimePower struct {
	P *big.Int
	E int
}

var smallPrimes = sievePrimes(1 << 14)

func sievePrimes(n int) []int64 {
	sieve := make([]bool, n)
	var out []int64
	for i := 2; i < n; i++ {
		if sieve[i] {
			continue
		}
		out = append(out, int64(i))
		for j := i * i; j < n; j += i {
			sieve[j] = true
		}
	}
	return out
}

// Factor returns the prime factorization of n > 0 (sorted by prime), or
// ok=false when the rho budget is exhausted on a hard composite.
func Factor(n *big.Int) ([]PrimePower, bool) {
	if n.Sign() <= 0 {
		return nil, false
	}
	counts := map[string]*PrimePower{}
	add := func(p *big.Int, e int) {
		k := p.String()
		if pp, ok := counts[k]; ok {
			pp.E += e
		} else {
			counts[k] = &PrimePower{P: new(big.Int).Set(p), E: e}
		}
	}
	rem := new(big.Int).Set(n)
	for _, sp := range smallPrimes {
		p := big.NewInt(sp)
		if new(big.Int).Mul(p, p).Cmp(rem) > 0 {
			break
		}
		for {
			q, r := new(big.Int).QuoRem(rem, p, new(big.Int))
			if r.Sign() != 0 {
				break
			}
			rem = q
			add(p, 1)
		}
	}
	// Recursive rho on what remains.
	var split func(m *big.Int) bool
	split = func(m *big.Int) bool {
		if m.Cmp(big.NewInt(1)) == 0 {
			return true
		}
		if m.ProbablyPrime(24) {
			add(m, 1)
			return true
		}
		// Perfect square fast path (common for norms).
		sq := new(big.Int).Sqrt(m)
		if new(big.Int).Mul(sq, sq).Cmp(m) == 0 {
			return split(sq) && split(sq)
		}
		d, ok := rhoBrent(m)
		if !ok {
			return false
		}
		q := new(big.Int).Quo(m, d)
		return split(d) && split(q)
	}
	if !split(rem) {
		return nil, false
	}
	out := make([]PrimePower, 0, len(counts))
	for _, pp := range counts {
		out = append(out, *pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P.Cmp(out[j].P) < 0 })
	return out, true
}

// rhoBrent finds a nontrivial factor of an odd composite m using Brent's
// cycle variant of Pollard rho with batched gcds, within MaxRhoIter steps.
func rhoBrent(m *big.Int) (*big.Int, bool) {
	one := big.NewInt(1)
	for c := int64(1); c < 32; c++ {
		cBig := big.NewInt(c)
		y := big.NewInt(2)
		g := new(big.Int).Set(one)
		q := new(big.Int).Set(one)
		var x, ys *big.Int
		r := 1
		iter := 0
		const batch = 128
		for g.Cmp(one) == 0 && iter < MaxRhoIter {
			x = new(big.Int).Set(y)
			for i := 0; i < r; i++ {
				y.Mul(y, y)
				y.Add(y, cBig)
				y.Mod(y, m)
			}
			for k := 0; k < r && g.Cmp(one) == 0 && iter < MaxRhoIter; k += batch {
				ys = new(big.Int).Set(y)
				lim := batch
				if r-k < lim {
					lim = r - k
				}
				for i := 0; i < lim; i++ {
					y.Mul(y, y)
					y.Add(y, cBig)
					y.Mod(y, m)
					diff := new(big.Int).Sub(x, y)
					diff.Abs(diff)
					q.Mul(q, diff)
					q.Mod(q, m)
					iter++
				}
				g.GCD(nil, nil, q, m)
			}
			r *= 2
		}
		if g.Cmp(m) == 0 {
			// Backtrack one step at a time.
			g.Set(one)
			for g.Cmp(one) == 0 {
				ys.Mul(ys, ys)
				ys.Add(ys, cBig)
				ys.Mod(ys, m)
				diff := new(big.Int).Sub(x, ys)
				diff.Abs(diff)
				g.GCD(nil, nil, diff, m)
				iter++
				if iter > MaxRhoIter {
					break
				}
			}
		}
		if g.Cmp(one) > 0 && g.Cmp(m) < 0 {
			return g, true
		}
	}
	return nil, false
}
