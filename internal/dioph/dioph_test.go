package dioph

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/ring"
)

func TestFactorSmall(t *testing.T) {
	cases := map[int64][]int64{
		2:       {2},
		12:      {2, 2, 3},
		97:      {97},
		1 << 20: {2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
		999983:  {999983}, // prime
		1000003: {1000003},
	}
	for n, want := range cases {
		fs, ok := Factor(big.NewInt(n))
		if !ok {
			t.Fatalf("Factor(%d) failed", n)
		}
		prod := big.NewInt(1)
		count := 0
		for _, pf := range fs {
			for i := 0; i < pf.E; i++ {
				prod.Mul(prod, pf.P)
				count++
			}
			if !pf.P.ProbablyPrime(20) {
				t.Errorf("Factor(%d) returned composite %v", n, pf.P)
			}
		}
		if prod.Int64() != n {
			t.Errorf("Factor(%d): product %v", n, prod)
		}
		if count != len(want) {
			t.Errorf("Factor(%d): %d prime factors, want %d", n, count, len(want))
		}
	}
}

func TestFactorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		a := big.NewInt(rng.Int63n(1 << 30))
		b := big.NewInt(rng.Int63n(1 << 30))
		n := new(big.Int).Mul(a, b)
		if n.Sign() == 0 {
			continue
		}
		fs, ok := Factor(n)
		if !ok {
			t.Fatalf("Factor(%v) failed", n)
		}
		prod := big.NewInt(1)
		for _, pf := range fs {
			for e := 0; e < pf.E; e++ {
				prod.Mul(prod, pf.P)
			}
		}
		if prod.Cmp(n) != 0 {
			t.Fatalf("Factor(%v): product %v", n, prod)
		}
	}
}

func TestFactorRejectsNonPositive(t *testing.T) {
	if _, ok := Factor(big.NewInt(0)); ok {
		t.Error("Factor(0) should fail")
	}
	if _, ok := Factor(big.NewInt(-4)); ok {
		t.Error("Factor(-4) should fail")
	}
}

// TestSolveNormEquationOnRealizable: ξ = t·t† built from random t must be
// solvable, and any solution must verify exactly.
func TestSolveNormEquationOnRealizable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	solved := 0
	for i := 0; i < 120; i++ {
		tt := ring.NewBOmega(
			rng.Int63n(19)-9, rng.Int63n(19)-9,
			rng.Int63n(19)-9, rng.Int63n(19)-9)
		xi := tt.Norm2()
		if xi.IsZero() {
			continue
		}
		got, ok := SolveNormEquation(xi)
		if !ok {
			// Factoring budget may rarely fail; tolerate a few.
			continue
		}
		solved++
		if !got.Norm2().Equal(xi) {
			t.Fatalf("solution does not verify: t=%v ξ=%v t·t†=%v", got, xi, got.Norm2())
		}
	}
	if solved < 100 {
		t.Fatalf("solved only %d/120 realizable norm equations", solved)
	}
}

// TestSolveNormEquationRejectsNegative: totally negative ξ is infeasible.
func TestSolveNormEquationRejectsNegative(t *testing.T) {
	if _, ok := SolveNormEquation(ring.NewBSqrt2(-3, 0)); ok {
		t.Error("ξ = −3 should be infeasible")
	}
	// ξ = 1 − √2 has negative embedding.
	if _, ok := SolveNormEquation(ring.NewBSqrt2(1, -1)); ok {
		t.Error("ξ = 1 − √2 should be infeasible (negative embedding)")
	}
}

// TestSolveNormEquationKnownInfeasible: ξ = 7 needs v_π even for p≡7 (mod 8);
// 7 = π·π• with v_π(7) = 1 odd, so no solution exists.
func TestSolveNormEquationKnownInfeasible(t *testing.T) {
	if tt, ok := SolveNormEquation(ring.NewBSqrt2(7, 0)); ok {
		t.Errorf("ξ = 7 reported solvable with t = %v (t·t† = %v)", tt, tt.Norm2())
	}
}

// TestSolveNormEquationSimpleKnown: small hand-checkable cases.
func TestSolveNormEquationSimpleKnown(t *testing.T) {
	cases := []ring.BSqrt2{
		ring.NewBSqrt2(0, 0),  // t = 0
		ring.NewBSqrt2(1, 0),  // t = 1
		ring.NewBSqrt2(2, 0),  // t = √2-ish
		ring.NewBSqrt2(2, 1),  // norm 2: λ·√2? must verify exactly
		ring.NewBSqrt2(5, 0),  // p ≡ 5 (mod 8): t·t† = 5 solvable (norm 25)
		ring.NewBSqrt2(3, 1),  // N = 7: π with p ≡ 7... mixed; may be feasible or not — just check verification if solved
		ring.NewBSqrt2(17, 0), // p ≡ 1 (mod 8)
	}
	for _, xi := range cases {
		got, ok := SolveNormEquation(xi)
		if !ok {
			continue // feasibility varies; soundness is what we assert
		}
		if !got.Norm2().Equal(xi) {
			t.Fatalf("ξ=%v: solution %v does not verify (t·t†=%v)", xi, got, got.Norm2())
		}
	}
	// ξ = 2 must be solvable: t = √2 works since √2·√2† = 2.
	if _, ok := SolveNormEquation(ring.NewBSqrt2(2, 0)); !ok {
		t.Error("ξ = 2 should be solvable")
	}
	// ξ = 5 must be solvable (5 ≡ 5 mod 8, splits in Z[ω]).
	if _, ok := SolveNormEquation(ring.NewBSqrt2(5, 0)); !ok {
		t.Error("ξ = 5 should be solvable")
	}
	// ξ = 17 must be solvable (17 ≡ 1 mod 8).
	if _, ok := SolveNormEquation(ring.NewBSqrt2(17, 0)); !ok {
		t.Error("ξ = 17 should be solvable")
	}
}

// TestSolveNormEquationLargeRealizable exercises the big-number path.
func TestSolveNormEquationLargeRealizable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	solved := 0
	for i := 0; i < 20; i++ {
		tt := ring.NewBOmega(
			rng.Int63n(1<<16), rng.Int63n(1<<16),
			rng.Int63n(1<<16), rng.Int63n(1<<16))
		xi := tt.Norm2()
		got, ok := SolveNormEquation(xi)
		if !ok {
			continue
		}
		solved++
		if !got.Norm2().Equal(xi) {
			t.Fatal("large solution does not verify")
		}
	}
	if solved < 10 {
		t.Fatalf("solved only %d/20 large realizable instances", solved)
	}
}

func BenchmarkSolveNormEquation(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xis := make([]ring.BSqrt2, 16)
	for i := range xis {
		tt := ring.NewBOmega(rng.Int63n(1<<12), rng.Int63n(1<<12), rng.Int63n(1<<12), rng.Int63n(1<<12))
		xis[i] = tt.Norm2()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveNormEquation(xis[i%len(xis)])
	}
}
