// Package dioph solves the norm equation t·t† = ξ over Z[ω] for totally
// positive ξ ∈ Z[√2] — the Diophantine step of Ross–Selinger gridsynth.
//
// Strategy (the standard one): factor the rational norm N(ξ) = ξ·ξ•
// (trial division + Pollard–Brent rho with a budget), split each rational
// prime according to its class mod 8 using square roots mod p
// (big.Int.ModSqrt) and Euclidean gcds in Z[√2] and Z[ω], assemble t from
// the prime pieces, fix the leftover unit λ^{2s}, and verify t·t† = ξ
// exactly. A failed factorization or verification returns ok=false and the
// caller simply moves to the next grid candidate (standard gridsynth
// practice; completeness is heuristic, soundness is exact).
package dioph

import (
	"math"
	"math/big"

	"repro/internal/ring"
)

// MaxRhoIter bounds Pollard rho work per composite (tunable for tests).
var MaxRhoIter = 1 << 17

// SolveNormEquation returns t with t·t† = ξ, or ok=false if ξ is not
// expressible (or the factoring budget was exceeded).
func SolveNormEquation(xi ring.BSqrt2) (ring.BOmega, bool) {
	if xi.IsZero() {
		return ring.BOmegaFromInt(0), true
	}
	// ξ must be totally non-negative.
	if xi.Sign() < 0 || xi.Bullet().Sign() < 0 {
		return ring.BOmega{}, false
	}
	t := ring.BOmegaFromInt(1)
	rem := xi.Clone()
	// Remove √2 factors: √2 | (a + b√2) iff a is even; quotient is b + (a/2)√2.
	delta := ring.NewBOmega(1, 1, 0, 0) // 1 + ω, with δ·δ† = √2·λ
	for rem.A.Bit(0) == 0 && !rem.IsZero() {
		half := new(big.Int).Rsh(rem.A, 1)
		rem = ring.BSqrt2{A: rem.B, B: half}
		t = t.Mul(delta)
	}
	n := rem.NormZ()
	n.Abs(n)
	if n.Sign() == 0 {
		return ring.BOmega{}, false
	}
	factors, ok := Factor(n)
	if !ok {
		return ring.BOmega{}, false
	}
	for _, pf := range factors {
		p := pf.P
		mod8 := new(big.Int).And(p, big.NewInt(7)).Int64()
		switch mod8 {
		case 1, 7:
			// p splits in Z[√2]: π = gcd(p, x − √2), x² ≡ 2 (mod p).
			x := new(big.Int).ModSqrt(big.NewInt(2), p)
			if x == nil {
				return ring.BOmega{}, false
			}
			pi := gcdZSqrt2(ring.BSqrt2{A: new(big.Int).Set(p), B: big.NewInt(0)},
				ring.BSqrt2{A: new(big.Int).Set(x), B: big.NewInt(-1)})
			if pi.NormZ().CmpAbs(big.NewInt(1)) == 0 {
				return ring.BOmega{}, false
			}
			for _, prime := range []ring.BSqrt2{pi, pi.Bullet()} {
				e := 0
				for {
					q, divides := rem.DivExact(prime)
					if !divides {
						break
					}
					rem = q
					e++
				}
				if e == 0 {
					continue
				}
				if mod8 == 7 {
					// Inert in Z[ω]: even exponent required.
					if e%2 == 1 {
						return ring.BOmega{}, false
					}
					half := ring.BOmegaFromBSqrt2(prime)
					for i := 0; i < e/2; i++ {
						t = t.Mul(half)
					}
					continue
				}
				// p ≡ 1 (mod 8): split π further in Z[ω] via y² ≡ −1.
				eta, found := splitOmega(prime, p, big.NewInt(-1), ring.NewBOmega(0, 0, 1, 0))
				if !found {
					return ring.BOmega{}, false
				}
				for i := 0; i < e; i++ {
					t = t.Mul(eta)
				}
			}
		case 3:
			// Inert in Z[√2]; split in Z[ω] via w² ≡ −2, i√2 = ω + ω³.
			e, newRem, found := divideOutRational(rem, p)
			if !found {
				return ring.BOmega{}, false
			}
			rem = newRem
			if e > 0 {
				mu, got := splitOmega(ring.BSqrt2{A: new(big.Int).Set(p), B: big.NewInt(0)},
					p, big.NewInt(-2), ring.NewBOmega(0, 1, 0, 1))
				if !got {
					return ring.BOmega{}, false
				}
				for i := 0; i < e; i++ {
					t = t.Mul(mu)
				}
			}
		case 5:
			// Inert in Z[√2]; split in Z[ω] via y² ≡ −1, i = ω².
			e, newRem, found := divideOutRational(rem, p)
			if !found {
				return ring.BOmega{}, false
			}
			rem = newRem
			if e > 0 {
				nu, got := splitOmega(ring.BSqrt2{A: new(big.Int).Set(p), B: big.NewInt(0)},
					p, big.NewInt(-1), ring.NewBOmega(0, 0, 1, 0))
				if !got {
					return ring.BOmega{}, false
				}
				for i := 0; i < e; i++ {
					t = t.Mul(nu)
				}
			}
		default: // p = 2 cannot appear: √2 factors were removed
			return ring.BOmega{}, false
		}
	}
	// Fix the leftover unit: ξ/(t·t†) must be λ^{2s} (totally positive unit).
	tt := t.Norm2()
	q, divides := xi.DivExact(tt)
	if !divides {
		return ring.BOmega{}, false
	}
	j := unitLambdaExponent(q)
	if j == nil || *j%2 != 0 {
		return ring.BOmega{}, false
	}
	t = t.Mul(ring.BOmegaFromBSqrt2(ring.PowLambda(*j / 2)))
	// Exact verification — the soundness guarantee.
	if !t.Norm2().Equal(xi) {
		return ring.BOmega{}, false
	}
	return t, true
}

// divideOutRational removes all factors of rational prime p from x ∈ Z[√2].
func divideOutRational(x ring.BSqrt2, p *big.Int) (int, ring.BSqrt2, bool) {
	e := 0
	d := ring.BSqrt2{A: new(big.Int).Set(p), B: big.NewInt(0)}
	for {
		q, ok := x.DivExact(d)
		if !ok {
			return e, x, true
		}
		x = q
		e++
		if e > 512 {
			return e, x, false
		}
	}
}

// splitOmega finds η ∈ Z[ω] with η·η† = π·(unit), where π is a prime of
// Z[√2] above rational prime p, by computing gcd(π, r − root) with
// r² ≡ square (mod p) and root² = square in Z[ω].
func splitOmega(pi ring.BSqrt2, p, square *big.Int, root ring.BOmega) (ring.BOmega, bool) {
	r := new(big.Int).ModSqrt(new(big.Int).Mod(square, p), p)
	if r == nil {
		return ring.BOmega{}, false
	}
	target := ring.BOmega{A: new(big.Int).Set(r), B: big.NewInt(0), C: big.NewInt(0), D: big.NewInt(0)}.Sub(root)
	eta := ring.GCD(ring.BOmegaFromBSqrt2(pi), target)
	// η must be a proper divisor (not a unit, not an associate of π itself
	// when π splits).
	normEta := eta.NormZ()
	if normEta.CmpAbs(big.NewInt(1)) == 0 {
		return ring.BOmega{}, false
	}
	return eta, true
}

// unitLambdaExponent returns j with q = λ^j, or nil if q is not a positive
// power-of-λ unit.
func unitLambdaExponent(q ring.BSqrt2) *int {
	if q.Sign() <= 0 {
		return nil
	}
	f := q.Float()
	if f <= 0 || math.IsInf(f, 0) || math.IsNaN(f) {
		return nil
	}
	j := int(math.Round(math.Log(f) / math.Log(1+ring.Sqrt2)))
	if j < -4096 || j > 4096 {
		return nil
	}
	if ring.PowLambda(j).Equal(q) {
		return &j
	}
	return nil
}

// gcdZSqrt2 computes a gcd in Z[√2] via the Euclidean algorithm with
// coefficient-rounding division (always norm-reducing in Z[√2]).
func gcdZSqrt2(a, b ring.BSqrt2) ring.BSqrt2 {
	for !b.IsZero() {
		_, r := euclidZSqrt2(a, b)
		a, b = b, r
	}
	return a
}

// euclidZSqrt2 returns q, r with a = q·b + r and |N(r)| < |N(b)|.
func euclidZSqrt2(a, b ring.BSqrt2) (q, r ring.BSqrt2) {
	n := b.NormZ() // may be negative
	num := a.Mul(b.Bullet())
	q = ring.BSqrt2{A: roundQuo(num.A, n), B: roundQuo(num.B, n)}
	r = a.Sub(q.Mul(b))
	return q, r
}

// roundQuo returns the nearest integer to x/n for nonzero n.
func roundQuo(x, n *big.Int) *big.Int {
	q0 := new(big.Int).Quo(x, n)
	best := new(big.Int).Set(q0)
	bestErr := new(big.Int).Abs(new(big.Int).Sub(x, new(big.Int).Mul(best, n)))
	for _, d := range []int64{-1, 1} {
		c := new(big.Int).Add(q0, big.NewInt(d))
		e := new(big.Int).Abs(new(big.Int).Sub(x, new(big.Int).Mul(c, n)))
		if e.Cmp(bestErr) < 0 {
			best, bestErr = c, e
		}
	}
	return best
}
