// Package dioph solves the norm equation t·t† = ξ over Z[ω] for totally
// positive ξ ∈ Z[√2] — the Diophantine step of Ross–Selinger gridsynth.
//
// Strategy (the standard one): factor the rational norm N(ξ) = ξ·ξ•
// (trial division + Pollard–Brent rho with a budget), split each rational
// prime according to its class mod 8 using square roots mod p
// (big.Int.ModSqrt) and Euclidean gcds in Z[√2] and Z[ω], assemble t from
// the prime pieces, fix the leftover unit λ^{2s}, and verify t·t† = ξ
// exactly. A failed factorization or verification returns ok=false and the
// caller simply moves to the next grid candidate (standard gridsynth
// practice; completeness is heuristic, soundness is exact).
//
// The Solver type carries all temporaries, a per-search ModSqrt memo and a
// cheap residue pre-filter, so a search over many candidates performs no
// steady-state allocation outside math/big growth; SolveNormEquation is
// the one-shot convenience wrapper.
package dioph

import (
	"math"
	"math/big"

	"repro/internal/ring"
)

// MaxRhoIter bounds Pollard rho work per composite (tunable for tests).
var MaxRhoIter = 1 << 17

// Hoisted constants (read-only; never mutated).
var (
	bigOne     = big.NewInt(1)
	bigTwo     = big.NewInt(2)
	bigNegOne  = big.NewInt(-1)
	bigNegTwo  = big.NewInt(-2)
	deltaOmega = ring.NewBOmega(1, 1, 0, 0) // δ = 1 + ω, with δ·δ† = √2·λ
	rootI      = ring.NewBOmega(0, 0, 1, 0) // ω² = i,      i² = −1
	rootISqrt2 = ring.NewBOmega(0, 1, 0, 1) // ω + ω³ = i√2, (i√2)² = −2
)

// preFilterEnabled gates the residue pre-filter. It only exists so the
// equality tests can prove the filter rejects exactly the candidates the
// full solver would reject; production code never turns it off.
var preFilterEnabled = true

// SetPreFilter toggles the residue pre-filter (for tests); it returns the
// previous setting.
func SetPreFilter(enabled bool) bool {
	prev := preFilterEnabled
	preFilterEnabled = enabled
	return prev
}

// prefilterPrimes are the small rational primes p ≡ 7 (mod 8). Such p
// split in Z[√2] into π·π•, and both π-exponents of ξ must be even for
// t·t† = ξ to be solvable (π is inert in Z[ω]); an odd valuation
// v_p(N(ξ)) = e_π + e_π• certifies unsolvability before any factoring.
var prefilterPrimes = [...]int64{7, 23, 31, 47, 71, 79, 103, 127, 151, 167,
	191, 199, 223, 239, 263, 271, 311, 359, 367, 383}

// sqrtKey memoizes ModSqrt(square, p) for int64-sized p.
type sqrtKey struct {
	square int8
	p      int64
}

// Solver carries the scratch state of norm-equation solving: big.Int
// temporaries, Euclidean gcd rotation slots in both rings, and a per-prime
// ModSqrt memo. One Solver serves a whole candidate search (it is reused
// across SolveNormEquation calls); it is not safe for concurrent use.
type Solver struct {
	s   ring.Scratch
	st  ring.EuclidState
	rem ring.BSqrt2
	q   ring.BSqrt2
	xb  ring.BSqrt2
	pi  ring.BSqrt2
	piB ring.BSqrt2
	d   ring.BSqrt2
	tt  ring.BSqrt2
	uq  ring.BSqrt2
	t   ring.BOmega
	tmp ring.BOmega
	trg ring.BOmega
	n   big.Int
	n2  big.Int
	h   big.Int
	e1  big.Int
	e2  big.Int
	// Z[√2] gcd rotation slots and Euclid temporaries.
	ga, gb, gr, gq ring.BSqrt2
	gnum, gbt      ring.BSqrt2
	gn             big.Int

	memo map[sqrtKey]*big.Int
}

// NewSolver returns a Solver ready for a candidate search.
func NewSolver() *Solver {
	return &Solver{memo: make(map[sqrtKey]*big.Int, 16)}
}

// SolveNormEquation returns t with t·t† = ξ, or ok=false if ξ is not
// expressible (or the factoring budget was exceeded). One-shot wrapper
// over Solver for callers without a search loop.
func SolveNormEquation(xi ring.BSqrt2) (ring.BOmega, bool) {
	return NewSolver().Solve(xi)
}

// modSqrt returns √square mod p (or nil), memoizing per prime for the
// lifetime of the Solver. square must be small (2, −1 or −2 here); the
// returned value is shared and must not be mutated.
func (sv *Solver) modSqrt(square *big.Int, p *big.Int) *big.Int {
	if p.IsInt64() {
		k := sqrtKey{square: int8(square.Int64()), p: p.Int64()}
		if r, ok := sv.memo[k]; ok {
			return r
		}
		r := new(big.Int).ModSqrt(sv.h.Mod(square, p), p)
		sv.memo[k] = r
		return r
	}
	return new(big.Int).ModSqrt(sv.h.Mod(square, p), p)
}

// mod8 returns p mod 8 without allocating (p > 0).
func mod8(p *big.Int) int64 {
	return int64(p.Bit(0)) | int64(p.Bit(1))<<1 | int64(p.Bit(2))<<2
}

// preFilter reports whether n = |N(ξ)| passes the cheap necessary
// conditions (true = may be solvable). It rejects any n with odd
// valuation at a small prime ≡ 7 (mod 8); the full solver would reject
// such ξ after factoring, so filtering first only saves work and cannot
// change the result.
func (sv *Solver) preFilter(n *big.Int) bool {
	if v, ok := n.Int64(), n.IsInt64(); ok && v > 0 {
		for _, p := range prefilterPrimes {
			if v < p {
				break
			}
			e := 0
			for v%p == 0 {
				v /= p
				e++
			}
			if e&1 == 1 {
				return false
			}
		}
		return true
	}
	// Big n: same test with scratch big.Ints (still far cheaper than rho).
	sv.h.Set(n)
	for _, p := range prefilterPrimes {
		sv.e2.SetInt64(p)
		e := 0
		for {
			sv.e1.QuoRem(&sv.h, &sv.e2, &sv.n2)
			if sv.n2.Sign() != 0 {
				break
			}
			sv.h.Set(&sv.e1)
			e++
		}
		if e&1 == 1 {
			return false
		}
	}
	return true
}

// Solve returns t with t·t† = ξ, or ok=false if ξ is not expressible (or
// the factoring budget was exceeded). The result is freshly allocated and
// owned by the caller; all intermediates live in the Solver.
func (sv *Solver) Solve(xi ring.BSqrt2) (ring.BOmega, bool) {
	if xi.IsZero() {
		return ring.BOmegaFromInt(0), true
	}
	// ξ must be totally non-negative.
	sv.xb.BulletTo(xi)
	if xi.Sign() < 0 || sv.xb.Sign() < 0 {
		return ring.BOmega{}, false
	}
	sv.t.SetInt64(1, 0, 0, 0)
	sv.rem.Set(xi)
	// Remove √2 factors: √2 | (a + b√2) iff a is even; quotient is b + (a/2)√2.
	for sv.rem.A.Bit(0) == 0 && !sv.rem.IsZero() {
		sv.h.Rsh(sv.rem.A, 1)
		sv.rem.A.Set(sv.rem.B)
		sv.rem.B.Set(&sv.h)
		sv.t.MulTo(sv.t, deltaOmega, &sv.s)
	}
	sv.rem.NormZTo(&sv.n, &sv.s)
	sv.n.Abs(&sv.n)
	if sv.n.Sign() == 0 {
		return ring.BOmega{}, false
	}
	if preFilterEnabled && !sv.preFilter(&sv.n) {
		return ring.BOmega{}, false
	}
	factors, ok := Factor(&sv.n)
	if !ok {
		return ring.BOmega{}, false
	}
	for _, pf := range factors {
		p := pf.P
		switch mod8(p) {
		case 1, 7:
			// p splits in Z[√2]: π = gcd(p, x − √2), x² ≡ 2 (mod p).
			x := sv.modSqrt(bigTwo, p)
			if x == nil {
				return ring.BOmega{}, false
			}
			sv.d.SetInt64(0, 0)
			sv.d.A.Set(p)
			sv.tt.SetInt64(0, -1)
			sv.tt.A.Set(x)
			sv.gcdZSqrt2To(&sv.pi, sv.d, sv.tt)
			sv.pi.NormZTo(&sv.n2, &sv.s)
			if sv.n2.CmpAbs(bigOne) == 0 {
				return ring.BOmega{}, false
			}
			sv.piB.BulletTo(sv.pi)
			for _, prime := range [2]*ring.BSqrt2{&sv.pi, &sv.piB} {
				e := 0
				for sv.q.DivExactTo(sv.rem, *prime, &sv.s) {
					sv.rem, sv.q = sv.q, sv.rem
					e++
				}
				if e == 0 {
					continue
				}
				if mod8(p) == 7 {
					// Inert in Z[ω]: even exponent required.
					if e%2 == 1 {
						return ring.BOmega{}, false
					}
					sv.tmp.SetBSqrt2(*prime)
					for i := 0; i < e/2; i++ {
						sv.t.MulTo(sv.t, sv.tmp, &sv.s)
					}
					continue
				}
				// p ≡ 1 (mod 8): split π further in Z[ω] via y² ≡ −1.
				eta, found := sv.splitOmega(*prime, p, bigNegOne, rootI)
				if !found {
					return ring.BOmega{}, false
				}
				for i := 0; i < e; i++ {
					sv.t.MulTo(sv.t, eta, &sv.s)
				}
			}
		case 3:
			// Inert in Z[√2]; split in Z[ω] via w² ≡ −2, i√2 = ω + ω³.
			e, found := sv.divideOutRational(p)
			if !found {
				return ring.BOmega{}, false
			}
			if e > 0 {
				sv.d.SetInt64(0, 0)
				sv.d.A.Set(p)
				mu, got := sv.splitOmega(sv.d, p, bigNegTwo, rootISqrt2)
				if !got {
					return ring.BOmega{}, false
				}
				for i := 0; i < e; i++ {
					sv.t.MulTo(sv.t, mu, &sv.s)
				}
			}
		case 5:
			// Inert in Z[√2]; split in Z[ω] via y² ≡ −1, i = ω².
			e, found := sv.divideOutRational(p)
			if !found {
				return ring.BOmega{}, false
			}
			if e > 0 {
				sv.d.SetInt64(0, 0)
				sv.d.A.Set(p)
				nu, got := sv.splitOmega(sv.d, p, bigNegOne, rootI)
				if !got {
					return ring.BOmega{}, false
				}
				for i := 0; i < e; i++ {
					sv.t.MulTo(sv.t, nu, &sv.s)
				}
			}
		default: // p = 2 cannot appear: √2 factors were removed
			return ring.BOmega{}, false
		}
	}
	// Fix the leftover unit: ξ/(t·t†) must be λ^{2s} (totally positive unit).
	sv.t.Norm2To(&sv.tt, &sv.s)
	if !sv.uq.DivExactTo(xi, sv.tt, &sv.s) {
		return ring.BOmega{}, false
	}
	j := unitLambdaExponent(sv.uq)
	if j == nil || *j%2 != 0 {
		return ring.BOmega{}, false
	}
	sv.tmp.SetBSqrt2(ring.PowLambda(*j / 2))
	sv.t.MulTo(sv.t, sv.tmp, &sv.s)
	// Exact verification — the soundness guarantee.
	sv.t.Norm2To(&sv.tt, &sv.s)
	if !sv.tt.Equal(xi) {
		return ring.BOmega{}, false
	}
	return sv.t.Clone(), true
}

// divideOutRational removes all factors of rational prime p from sv.rem.
func (sv *Solver) divideOutRational(p *big.Int) (int, bool) {
	e := 0
	sv.d.SetInt64(0, 0)
	sv.d.A.Set(p)
	for {
		if !sv.q.DivExactTo(sv.rem, sv.d, &sv.s) {
			return e, true
		}
		sv.rem, sv.q = sv.q, sv.rem
		e++
		if e > 512 {
			return e, false
		}
	}
}

// splitOmega finds η ∈ Z[ω] with η·η† = π·(unit), where π is a prime of
// Z[√2] above rational prime p, by computing gcd(π, r − root) with
// r² ≡ square (mod p) and root² = square in Z[ω]. The result aliases
// freshly allocated storage (safe until the caller's next use of it ends).
func (sv *Solver) splitOmega(pi ring.BSqrt2, p, square *big.Int, root ring.BOmega) (ring.BOmega, bool) {
	r := sv.modSqrt(square, p)
	if r == nil {
		return ring.BOmega{}, false
	}
	sv.trg.Ensure()
	sv.trg.A.Set(r)
	sv.trg.B.SetInt64(0)
	sv.trg.C.SetInt64(0)
	sv.trg.D.SetInt64(0)
	sv.trg.SubTo(sv.trg, root)
	sv.tmp.SetBSqrt2(pi)
	eta := sv.st.GCD(sv.tmp, sv.trg)
	// η must be a proper divisor (not a unit, not an associate of π itself
	// when π splits).
	eta.NormZTo(&sv.n2, &sv.s)
	if sv.n2.CmpAbs(bigOne) == 0 {
		return ring.BOmega{}, false
	}
	return eta, true
}

// unitLambdaExponent returns j with q = λ^j, or nil if q is not a positive
// power-of-λ unit.
func unitLambdaExponent(q ring.BSqrt2) *int {
	if q.Sign() <= 0 {
		return nil
	}
	f := q.Float()
	if f <= 0 || math.IsInf(f, 0) || math.IsNaN(f) {
		return nil
	}
	j := int(math.Round(math.Log(f) / math.Log(1+ring.Sqrt2)))
	if j < -4096 || j > 4096 {
		return nil
	}
	if ring.PowLambda(j).Equal(q) {
		return &j
	}
	return nil
}

// gcdZSqrt2To computes gcd(a, b) in Z[√2] into dst via the Euclidean
// algorithm with coefficient-rounding division (always norm-reducing in
// Z[√2]), reusing the Solver's rotation slots.
func (sv *Solver) gcdZSqrt2To(dst *ring.BSqrt2, a, b ring.BSqrt2) {
	sv.ga.Set(a)
	sv.gb.Set(b)
	for !sv.gb.IsZero() {
		sv.euclidZSqrt2(sv.ga, sv.gb)
		sv.ga, sv.gb, sv.gr = sv.gb, sv.gr, sv.ga
	}
	dst.Set(sv.ga)
}

// euclidZSqrt2 computes q, r with a = q·b + r and |N(r)| < |N(b)| into
// sv.gq and sv.gr.
func (sv *Solver) euclidZSqrt2(a, b ring.BSqrt2) {
	b.NormZTo(&sv.gn, &sv.s) // may be negative
	sv.gbt.BulletTo(b)
	sv.gnum.MulTo(a, sv.gbt, &sv.s)
	sv.gq.Ensure()
	ring.RoundQuoTo(sv.gq.A, sv.gnum.A, &sv.gn, &sv.e1, &sv.e2)
	ring.RoundQuoTo(sv.gq.B, sv.gnum.B, &sv.gn, &sv.e1, &sv.e2)
	sv.gbt.MulTo(sv.gq, b, &sv.s)
	sv.gr.SubTo(a, sv.gbt)
}
