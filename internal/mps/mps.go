// Package mps implements steps 1 and 2 of trasyn: building the matrix
// product state whose entries are the trace values Tr(U†·M_{s1}···M_{sl})
// for every combination of candidate matrices, bringing it to canonical
// form, and sampling high-trace-value gate sequences from it.
//
// The trace network is a ring (the trace couples the last matrix back to
// the first). We cut the ring by fusing the trace index into the bond, so
// bond dimensions are at most 4 = 2·2 and the whole chain canonicalizes
// with tiny LQ factorizations — the algebraic equivalent of the paper's
// "shift the target's dimension by contractions and SVDs".
package mps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"repro/internal/linalg"
	"repro/internal/qmat"
)

// site is one canonicalized MPS tensor with layout data[s*dl*dr + l*dr + r].
type site struct {
	m      int // physical dimension (number of candidate matrices)
	dl, dr int // bond dimensions
	data   []complex128
}

// Chain is the canonicalized trace-value MPS.
type Chain struct {
	sites []site
	norm2 float64 // Σ |trace value|² over all configurations
}

// Build constructs the trace-value MPS for the target unitary and the given
// per-site candidate matrix lists. len(siteMats) ≥ 1; each site must be
// non-empty.
func Build(target qmat.M2, siteMats [][]qmat.M2) *Chain {
	l := len(siteMats)
	if l == 0 {
		panic("mps: no sites")
	}
	ud := qmat.Dagger(target)
	c := &Chain{sites: make([]site, l)}
	if l == 1 {
		ms := siteMats[0]
		st := site{m: len(ms), dl: 1, dr: 1, data: make([]complex128, len(ms))}
		for s, mm := range ms {
			st.data[s] = qmat.Trace(qmat.Mul(mm, ud))
		}
		c.sites[0] = st
		c.canonicalize()
		return c
	}
	for i, ms := range siteMats {
		switch {
		case i == 0:
			// A[s, 1, (a1,a0)] = M_s[a0, a1]; bond index = a1*2 + a0.
			st := site{m: len(ms), dl: 1, dr: 4, data: make([]complex128, len(ms)*4)}
			for s, mm := range ms {
				for a0 := 0; a0 < 2; a0++ {
					for a1 := 0; a1 < 2; a1++ {
						st.data[s*4+a1*2+a0] = mm[a0][a1]
					}
				}
			}
			c.sites[i] = st
		case i == l-1:
			// A[s, (a,a0), 1] = (M_s·U†)[a, a0].
			st := site{m: len(ms), dl: 4, dr: 1, data: make([]complex128, len(ms)*4)}
			for s, mm := range ms {
				p := qmat.Mul(mm, ud)
				for a := 0; a < 2; a++ {
					for a0 := 0; a0 < 2; a0++ {
						st.data[s*4+a*2+a0] = p[a][a0]
					}
				}
			}
			c.sites[i] = st
		default:
			// A[s, (ap,a0), (an,a0')] = M_s[ap, an]·δ_{a0,a0'}.
			st := site{m: len(ms), dl: 4, dr: 4, data: make([]complex128, len(ms)*16)}
			for s, mm := range ms {
				for ap := 0; ap < 2; ap++ {
					for an := 0; an < 2; an++ {
						for a0 := 0; a0 < 2; a0++ {
							st.data[s*16+(ap*2+a0)*4+an*2+a0] = mm[ap][an]
						}
					}
				}
			}
			c.sites[i] = st
		}
	}
	c.canonicalize()
	return c
}

// canonicalize sweeps right to left, leaving every site but the first
// right-canonical (Σ_{s,r} B[s,l,r]·conj(B[s,l',r]) = δ).
func (c *Chain) canonicalize() {
	for i := len(c.sites) - 1; i >= 1; i-- {
		st := c.sites[i]
		// Matricize as (dl) × (m·dr).
		mat := linalg.New(st.dl, st.m*st.dr)
		for s := 0; s < st.m; s++ {
			for l := 0; l < st.dl; l++ {
				for r := 0; r < st.dr; r++ {
					mat.Set(l, s*st.dr+r, st.data[s*st.dl*st.dr+l*st.dr+r])
				}
			}
		}
		lm, q := linalg.LQ(mat)
		newDl := q.Rows
		ns := site{m: st.m, dl: newDl, dr: st.dr, data: make([]complex128, st.m*newDl*st.dr)}
		for s := 0; s < st.m; s++ {
			for l := 0; l < newDl; l++ {
				for r := 0; r < st.dr; r++ {
					ns.data[s*newDl*st.dr+l*st.dr+r] = q.At(l, s*st.dr+r)
				}
			}
		}
		c.sites[i] = ns
		// Absorb L (dl_prev_right × newDl) into site i-1's right bond.
		prev := c.sites[i-1]
		np := site{m: prev.m, dl: prev.dl, dr: newDl, data: make([]complex128, prev.m*prev.dl*newDl)}
		for s := 0; s < prev.m; s++ {
			for l := 0; l < prev.dl; l++ {
				for rn := 0; rn < newDl; rn++ {
					var acc complex128
					for r := 0; r < prev.dr; r++ {
						acc += prev.data[s*prev.dl*prev.dr+l*prev.dr+r] * lm.At(r, rn)
					}
					np.data[s*prev.dl*newDl+l*newDl+rn] = acc
				}
			}
		}
		c.sites[i-1] = np
	}
	// Total norm² from the (non-canonical) first site.
	n := 0.0
	for _, v := range c.sites[0].data {
		n += real(v)*real(v) + imag(v)*imag(v)
	}
	c.norm2 = n
}

// NumSites returns the chain length.
func (c *Chain) NumSites() int { return len(c.sites) }

// SiteDim returns the physical dimension of site i.
func (c *Chain) SiteDim(i int) int { return c.sites[i].m }

// Norm2 returns Σ |trace value|² over all configurations.
func (c *Chain) Norm2() float64 { return c.norm2 }

// Eval contracts the chain at a specific configuration, returning the exact
// trace value Tr(U†·M_{s1}···M_{sl}) for that configuration.
func (c *Chain) Eval(idx []int32) complex128 {
	if len(idx) != len(c.sites) {
		panic("mps: wrong index length")
	}
	env := []complex128{1}
	for i, st := range c.sites {
		s := int(idx[i])
		next := make([]complex128, st.dr)
		base := s * st.dl * st.dr
		for l := 0; l < st.dl; l++ {
			e := env[l]
			if e == 0 {
				continue
			}
			row := st.data[base+l*st.dr : base+(l+1)*st.dr]
			for r, v := range row {
				next[r] += e * v
			}
		}
		env = next
	}
	return env[0]
}

// Sampled is one distinct sampled configuration.
type Sampled struct {
	Indices []int32    // one physical index per site
	Trace   complex128 // exact trace value of this configuration
	Count   int        // how many of the k samples landed here
}

type group struct {
	env    []complex128
	prefix []int32
	count  int
}

// Sample draws k configurations from p ∝ |trace value|² (perfect MPS
// sampling) and returns the distinct ones. envCap bounds the number of
// concurrently tracked distinct prefixes (0 = unlimited); when exceeded,
// the lowest-count groups are dropped, which biases the search slightly
// toward high-probability sequences — acceptable for a search heuristic.
func (c *Chain) Sample(rng *rand.Rand, k, envCap int) []Sampled {
	if c.norm2 <= 0 || k <= 0 {
		return nil
	}
	groups := []group{{env: []complex128{1}, count: k}}
	for i := range c.sites {
		st := &c.sites[i]
		var next []group
		for _, g := range groups {
			next = append(next, c.expandGroup(rng, st, g)...)
		}
		if envCap > 0 && len(next) > envCap {
			sort.Slice(next, func(a, b int) bool { return next[a].count > next[b].count })
			next = next[:envCap]
		}
		groups = next
	}
	out := make([]Sampled, 0, len(groups))
	for _, g := range groups {
		out = append(out, Sampled{Indices: g.prefix, Trace: g.env[0], Count: g.count})
	}
	return out
}

// expandGroup samples site st for all g.count samples in the group at once.
// Weights are computed in a first pass without materializing environment
// vectors; envs are rebuilt only for the (few) selected indices.
func (c *Chain) expandGroup(rng *rand.Rand, st *site, g group) []group {
	m, dl, dr := st.m, st.dl, st.dr
	weights := make([]float64, m)
	total := 0.0
	var v [4]complex128 // dr ≤ 4 by construction
	env := g.env
	for s := 0; s < m; s++ {
		base := s * dl * dr
		for r := 0; r < dr; r++ {
			v[r] = 0
		}
		for l := 0; l < dl; l++ {
			e := env[l]
			if e == 0 {
				continue
			}
			row := st.data[base+l*dr : base+(l+1)*dr]
			for r, x := range row {
				v[r] += e * x
			}
		}
		w := 0.0
		for r := 0; r < dr; r++ {
			x := v[r]
			w += real(x)*real(x) + imag(x)*imag(x)
		}
		weights[s] = w
		total += w
	}
	if total <= 0 {
		return nil
	}
	// Multinomial draw of g.count samples.
	counts := multinomial(rng, weights, total, g.count)
	out := make([]group, 0, len(counts))
	for _, sc := range counts {
		s, n := sc.idx, sc.n
		ev := make([]complex128, dr)
		base := s * dl * dr
		for l := 0; l < dl; l++ {
			e := env[l]
			if e == 0 {
				continue
			}
			row := st.data[base+l*dr : base+(l+1)*dr]
			for r, x := range row {
				ev[r] += e * x
			}
		}
		prefix := make([]int32, len(g.prefix)+1)
		copy(prefix, g.prefix)
		prefix[len(g.prefix)] = int32(s)
		out = append(out, group{env: ev, prefix: prefix, count: n})
	}
	return out
}

type idxCount struct {
	idx, n int
}

// multinomial draws n samples from the weight vector; returns the sparse
// counts in deterministic (increasing index) order so sampling is
// reproducible for a fixed rng seed.
func multinomial(rng *rand.Rand, w []float64, total float64, n int) []idxCount {
	// Cumulative + binary search; n draws.
	cum := make([]float64, len(w))
	acc := 0.0
	for i, x := range w {
		acc += x
		cum[i] = acc
	}
	m := make(map[int]int, min(n, 16))
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		j := sort.SearchFloat64s(cum, u)
		if j >= len(w) {
			j = len(w) - 1
		}
		m[j]++
	}
	out := make([]idxCount, 0, len(m))
	for idx, cnt := range m {
		out = append(out, idxCount{idx, cnt})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].idx < out[b].idx })
	return out
}

// SampleBestTail draws k prefixes through sites 1..l−1 like Sample, but
// completes each distinct prefix with the argmax over the last site's
// physical index instead of a random draw. The amplitude of a completion
// is the exact trace value, so the argmax is the best completion for that
// prefix at no extra cost — a strict quality improvement over pure
// sampling when the caller wants the maximum-|trace| configuration.
func (c *Chain) SampleBestTail(rng *rand.Rand, k, envCap int) []Sampled {
	if c.norm2 <= 0 || k <= 0 {
		return nil
	}
	if len(c.sites) == 1 {
		return c.Beam(min(k, c.sites[0].m))
	}
	groups := []group{{env: []complex128{1}, count: k}}
	for i := 0; i < len(c.sites)-1; i++ {
		st := &c.sites[i]
		var next []group
		for _, g := range groups {
			next = append(next, c.expandGroup(rng, st, g)...)
		}
		if envCap > 0 && len(next) > envCap {
			sort.Slice(next, func(a, b int) bool { return next[a].count > next[b].count })
			next = next[:envCap]
		}
		groups = next
	}
	last := &c.sites[len(c.sites)-1]
	out := make([]Sampled, 0, len(groups))
	for _, g := range groups {
		bestS, bestW := -1, -1.0
		var bestAmp complex128
		for s := 0; s < last.m; s++ {
			var amp complex128
			base := s * last.dl * last.dr
			for l := 0; l < last.dl; l++ {
				amp += g.env[l] * last.data[base+l*last.dr]
			}
			w := real(amp)*real(amp) + imag(amp)*imag(amp)
			if w > bestW {
				bestS, bestW, bestAmp = s, w, amp
			}
		}
		if bestS < 0 {
			continue
		}
		idx := make([]int32, len(g.prefix)+1)
		copy(idx, g.prefix)
		idx[len(g.prefix)] = int32(bestS)
		out = append(out, Sampled{Indices: idx, Trace: bestAmp, Count: g.count})
	}
	return out
}

// Beam runs a deterministic beam search for the configurations with the
// largest |trace value|, keeping `width` prefixes per site. Returned
// entries have Count = 1 and are sorted by decreasing |Trace|.
func (c *Chain) Beam(width int) []Sampled {
	type beamEntry struct {
		env    []complex128
		prefix []int32
		w      float64
	}
	beams := []beamEntry{{env: []complex128{1}}}
	for i := range c.sites {
		st := &c.sites[i]
		m, dl, dr := st.m, st.dl, st.dr
		// Stream all (beam, s) candidates through a fixed-size selection.
		var next []beamEntry
		worst := math.Inf(-1)
		push := func(e beamEntry) {
			if len(next) < width {
				next = append(next, e)
				if e.w < worst || len(next) == 1 {
					worst = e.w
				}
				if len(next) == width {
					worst = math.Inf(1)
					for _, x := range next {
						if x.w < worst {
							worst = x.w
						}
					}
				}
				return
			}
			if e.w <= worst {
				return
			}
			// Replace the current worst.
			wi, wv := 0, math.Inf(1)
			for j, x := range next {
				if x.w < wv {
					wi, wv = j, x.w
				}
			}
			next[wi] = e
			worst = math.Inf(1)
			for _, x := range next {
				if x.w < worst {
					worst = x.w
				}
			}
		}
		for _, b := range beams {
			for s := 0; s < m; s++ {
				v := make([]complex128, dr)
				base := s * dl * dr
				for l := 0; l < dl; l++ {
					e := b.env[l]
					if e == 0 {
						continue
					}
					row := st.data[base+l*dr : base+(l+1)*dr]
					for r, x := range row {
						v[r] += e * x
					}
				}
				w := 0.0
				for _, x := range v {
					w += real(x)*real(x) + imag(x)*imag(x)
				}
				if len(next) == width && w <= worst {
					continue
				}
				prefix := make([]int32, len(b.prefix)+1)
				copy(prefix, b.prefix)
				prefix[len(b.prefix)] = int32(s)
				push(beamEntry{env: v, prefix: prefix, w: w})
			}
		}
		beams = next
		if len(beams) == 0 {
			return nil
		}
	}
	sort.Slice(beams, func(a, b int) bool { return beams[a].w > beams[b].w })
	out := make([]Sampled, len(beams))
	for i, b := range beams {
		out[i] = Sampled{Indices: b.prefix, Trace: b.env[0], Count: 1}
	}
	return out
}

// Best returns the sampled configuration with the largest |Trace| and the
// corresponding absolute trace value; ok=false for an empty slice.
func Best(samples []Sampled) (Sampled, bool) {
	if len(samples) == 0 {
		return Sampled{}, false
	}
	best := samples[0]
	bv := cmplx.Abs(best.Trace)
	for _, s := range samples[1:] {
		if v := cmplx.Abs(s.Trace); v > bv {
			best, bv = s, v
		}
	}
	return best, true
}
