package mps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/qmat"
)

// randomSites builds small random unitary candidate lists.
func randomSites(rng *rand.Rand, dims ...int) [][]qmat.M2 {
	sites := make([][]qmat.M2, len(dims))
	for i, d := range dims {
		sites[i] = make([]qmat.M2, d)
		for j := range sites[i] {
			sites[i][j] = qmat.HaarRandom(rng)
		}
	}
	return sites
}

// bruteTrace computes Tr(U†·M_{s1}···M_{sl}) directly.
func bruteTrace(u qmat.M2, sites [][]qmat.M2, idx []int32) complex128 {
	v := qmat.I2()
	for i, s := range idx {
		v = qmat.Mul(v, sites[i][s])
	}
	return qmat.HSTrace(u, v)
}

// TestEvalMatchesBruteForce: the MPS must reproduce every trace value
// exactly — the central correctness property of step 1.
func TestEvalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{5}, {3, 4}, {2, 3, 4}, {3, 2, 2, 3}} {
		sites := randomSites(rng, dims...)
		u := qmat.HaarRandom(rng)
		chain := Build(u, sites)
		// Exhaustive over all configurations.
		idx := make([]int32, len(dims))
		var walk func(site int)
		walk = func(site int) {
			if site == len(dims) {
				got := chain.Eval(idx)
				want := bruteTrace(u, sites, idx)
				if cmplx.Abs(got-want) > 1e-9 {
					t.Fatalf("dims %v idx %v: Eval=%v brute=%v", dims, idx, got, want)
				}
				return
			}
			for s := 0; s < dims[site]; s++ {
				idx[site] = int32(s)
				walk(site + 1)
			}
		}
		walk(0)
	}
}

// TestNorm2MatchesSum: chain.Norm2 must equal Σ|T|² over all configs
// (guaranteed by right-canonical form).
func TestNorm2MatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := []int{3, 4, 2}
	sites := randomSites(rng, dims...)
	u := qmat.HaarRandom(rng)
	chain := Build(u, sites)
	sum := 0.0
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 2; c++ {
				v := bruteTrace(u, sites, []int32{int32(a), int32(b), int32(c)})
				sum += real(v)*real(v) + imag(v)*imag(v)
			}
		}
	}
	if math.Abs(chain.Norm2()-sum) > 1e-9*(1+sum) {
		t.Fatalf("Norm2 = %v, brute sum = %v", chain.Norm2(), sum)
	}
}

// TestSampleDistribution: empirical frequencies must approach |T|²/Z.
func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{3, 3}
	sites := randomSites(rng, dims...)
	u := qmat.HaarRandom(rng)
	chain := Build(u, sites)
	const k = 200000
	samples := chain.Sample(rng, k, 0)
	freq := map[[2]int32]float64{}
	for _, s := range samples {
		freq[[2]int32{s.Indices[0], s.Indices[1]}] += float64(s.Count) / k
		// Trace must be exact for each sample.
		want := bruteTrace(u, sites, s.Indices)
		if cmplx.Abs(s.Trace-want) > 1e-9 {
			t.Fatalf("sampled trace mismatch: %v vs %v", s.Trace, want)
		}
	}
	z := chain.Norm2()
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 3; b++ {
			v := bruteTrace(u, sites, []int32{a, b})
			p := (real(v)*real(v) + imag(v)*imag(v)) / z
			if math.Abs(freq[[2]int32{a, b}]-p) > 0.01 {
				t.Fatalf("config (%d,%d): freq %v vs p %v", a, b, freq[[2]int32{a, b}], p)
			}
		}
	}
}

// TestSampleCountsConserved: the distinct samples must account for all k.
func TestSampleCountsConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sites := randomSites(rng, 4, 5, 3)
	chain := Build(qmat.HaarRandom(rng), sites)
	samples := chain.Sample(rng, 1234, 0)
	total := 0
	for _, s := range samples {
		total += s.Count
	}
	if total != 1234 {
		t.Fatalf("sample counts sum to %d, want 1234", total)
	}
}

// TestBeamFindsArgmax: with full width the beam must find the global
// optimum of |T|.
func TestBeamFindsArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := []int{4, 5, 3}
	sites := randomSites(rng, dims...)
	u := qmat.HaarRandom(rng)
	chain := Build(u, sites)
	res := chain.Beam(4 * 5 * 3)
	if len(res) == 0 {
		t.Fatal("beam returned nothing")
	}
	best := res[0]
	// Brute force argmax.
	bestBrute := -1.0
	for a := 0; a < dims[0]; a++ {
		for b := 0; b < dims[1]; b++ {
			for c := 0; c < dims[2]; c++ {
				v := cmplx.Abs(bruteTrace(u, sites, []int32{int32(a), int32(b), int32(c)}))
				if v > bestBrute {
					bestBrute = v
				}
			}
		}
	}
	if math.Abs(cmplx.Abs(best.Trace)-bestBrute) > 1e-9 {
		t.Fatalf("beam best %v vs brute best %v", cmplx.Abs(best.Trace), bestBrute)
	}
	// Results must be sorted decreasing.
	for i := 1; i < len(res); i++ {
		if cmplx.Abs(res[i].Trace) > cmplx.Abs(res[i-1].Trace)+1e-12 {
			t.Fatal("beam results not sorted")
		}
	}
}

// TestSingleSiteChain: l=1 degenerates to a direct lookup table.
func TestSingleSiteChain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sites := randomSites(rng, 20)
	u := qmat.HaarRandom(rng)
	chain := Build(u, sites)
	for s := int32(0); s < 20; s++ {
		got := chain.Eval([]int32{s})
		want := bruteTrace(u, sites, []int32{s})
		if cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("single-site Eval mismatch at %d", s)
		}
	}
	res := chain.Beam(5)
	if len(res) != 5 {
		t.Fatalf("beam width 5 returned %d", len(res))
	}
}

func TestEnvCapLimitsGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sites := randomSites(rng, 10, 10, 10)
	chain := Build(qmat.HaarRandom(rng), sites)
	samples := chain.Sample(rng, 5000, 8)
	if len(samples) > 8 {
		t.Fatalf("envCap violated: %d groups", len(samples))
	}
}

func TestBestHelper(t *testing.T) {
	if _, ok := Best(nil); ok {
		t.Error("Best(nil) should report !ok")
	}
	s := []Sampled{{Trace: 1}, {Trace: 3i}, {Trace: -2}}
	b, ok := Best(s)
	if !ok || cmplx.Abs(b.Trace) != 3 {
		t.Errorf("Best returned %v", b)
	}
}

func BenchmarkSample3Sites(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	sites := randomSites(rng, 1000, 1000, 1000)
	chain := Build(qmat.HaarRandom(rng), sites)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.Sample(rng, 1000, 64)
	}
}

func BenchmarkBeam3Sites(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	sites := randomSites(rng, 1000, 1000, 1000)
	chain := Build(qmat.HaarRandom(rng), sites)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.Beam(64)
	}
}
