// Package resource estimates fault-tolerant execution cost from circuit
// metrics, following the standard surface-code accounting the paper's
// motivation leans on (§1–2): T gates dominate because each consumes a
// magic state produced by a 15-to-1 distillation factory.
package resource

import (
	"math"
)

// Params models an early-fault-tolerant machine.
type Params struct {
	// PhysErrRate is the physical error rate p.
	PhysErrRate float64
	// TargetLogicalErr is the per-operation logical error budget.
	TargetLogicalErr float64
	// CycleTimeNs is the surface-code cycle time in nanoseconds.
	CycleTimeNs float64
	// Factories is the number of parallel magic state factories.
	Factories int
}

// DefaultParams returns a plausible EFT configuration (p = 1e-3 hardware,
// 1e-5 logical target — Fig. 2's operating point).
func DefaultParams() Params {
	return Params{
		PhysErrRate:      1e-3,
		TargetLogicalErr: 1e-5,
		CycleTimeNs:      1000,
		Factories:        1,
	}
}

// Estimate is the derived resource footprint.
type Estimate struct {
	CodeDistance   int
	PhysPerLogical int     // physical qubits per logical qubit (2d²)
	MagicStates    int     // = T count
	DistillRounds  int     // 15-to-1 rounds per state
	FactoryQubits  int     // physical qubits in the factories
	DataQubits     int     // physical qubits for the data block
	ExecCycles     float64 // surface-code cycles, T-gate limited
	ExecSeconds    float64
}

// CodeDistance returns the minimal odd distance d with
// A·(p/p_th)^((d+1)/2) ≤ target, using A=0.1, p_th=1e-2 (standard fit).
func CodeDistance(p, target float64) int {
	const a, pth = 0.1, 1e-2
	for d := 3; d <= 61; d += 2 {
		if a*math.Pow(p/pth, float64(d+1)/2) <= target {
			return d
		}
	}
	return 61
}

// Estimate computes the footprint for a circuit with the given logical
// qubit count and T metrics.
func (p Params) Estimate(logicalQubits, tCount, tDepth int) Estimate {
	d := CodeDistance(p.PhysErrRate, p.TargetLogicalErr)
	perLogical := 2 * d * d
	// 15-to-1 distillation: error p → 35p³ per round.
	rounds := 0
	err := p.PhysErrRate * 10 // injected magic state error ~10x physical
	for err > p.TargetLogicalErr && rounds < 4 {
		err = 35 * err * err * err
		rounds++
	}
	factoryQ := p.Factories * 15 * perLogical * rounds
	// One T gate per factory per ~10d cycles (distillation latency).
	perT := 10 * float64(d)
	cycles := perT * float64(tCount) / float64(p.Factories)
	if seq := perT * float64(tDepth); seq > cycles {
		cycles = seq // cannot go below the critical path
	}
	return Estimate{
		CodeDistance:   d,
		PhysPerLogical: perLogical,
		MagicStates:    tCount,
		DistillRounds:  rounds,
		FactoryQubits:  factoryQ,
		DataQubits:     logicalQubits * perLogical,
		ExecCycles:     cycles,
		ExecSeconds:    cycles * p.CycleTimeNs * 1e-9,
	}
}
