package resource

import "testing"

func TestCodeDistanceMonotone(t *testing.T) {
	prev := 0
	for _, target := range []float64{1e-3, 1e-5, 1e-7, 1e-9} {
		d := CodeDistance(1e-3, target)
		if d < prev {
			t.Fatalf("distance must grow as target tightens: %d < %d", d, prev)
		}
		prev = d
		if d%2 == 0 {
			t.Fatal("code distance must be odd")
		}
	}
}

func TestEstimateScalesWithTCount(t *testing.T) {
	p := DefaultParams()
	small := p.Estimate(10, 100, 50)
	large := p.Estimate(10, 1000, 500)
	if large.ExecCycles <= small.ExecCycles {
		t.Fatal("more T gates must cost more cycles")
	}
	if small.MagicStates != 100 || large.MagicStates != 1000 {
		t.Fatal("magic states must equal T count")
	}
	if small.DataQubits != 10*small.PhysPerLogical {
		t.Fatal("data qubits wrong")
	}
	if small.ExecSeconds <= 0 {
		t.Fatal("execution time must be positive")
	}
}

func TestFactoriesReduceTime(t *testing.T) {
	p := DefaultParams()
	p1 := p.Estimate(5, 10000, 10)
	p.Factories = 4
	p4 := p.Estimate(5, 10000, 10)
	if p4.ExecCycles >= p1.ExecCycles {
		t.Fatal("parallel factories must reduce execution time")
	}
}
