// Package zxopt is the post-synthesis T-count optimizer standing in for
// PyZX in RQ5.
//
// Deprecated: the implementation was promoted to the public optimize
// package — phase folding is optimize.FoldPhases (the "foldphases"
// registry entry), table peephole is optimize.NewPeephole ("peephole"),
// and Optimize is a fixed-point optimize.Driver run. This package
// remains as a thin delegating shim for source compatibility.
package zxopt

import (
	"repro/circuit"
	"repro/internal/gates"
	"repro/optimize"
)

// Optimize applies phase folding and the table peephole to a true fixed
// point (with the driver's safety ceiling), returning the best circuit
// found. The historical 6-pass cap is gone: the fixed-point driver in
// the optimize package iterates until a full sweep stops improving.
//
// Deprecated: use optimize.Run (which also reports iteration counts,
// per-rule hit counters, and before/after metric deltas).
func Optimize(c *circuit.Circuit, tab *gates.Table) *circuit.Circuit {
	maxT := 0
	if tab != nil {
		maxT = tab.MaxT
	}
	res, err := optimize.Run(c, optimize.FoldPhases(), optimize.NewPeephole(maxT))
	if err != nil {
		// The promoted rules never error; keep the legacy non-erroring
		// signature by degrading to the input.
		return c.Clone()
	}
	return res.Circuit
}

// FoldPhases merges diagonal phase gates acting on the same CNOT parity.
//
// Deprecated: use optimize.FoldPhases.
func FoldPhases(c *circuit.Circuit) *circuit.Circuit {
	out, _ := optimize.FoldPhases().Optimize(c)
	return out
}

// Peephole rewrites maximal runs of discrete 1q gates per qubit into
// their minimal table form.
//
// Deprecated: use optimize.NewPeephole.
func Peephole(c *circuit.Circuit, tab *gates.Table) *circuit.Circuit {
	maxT := 0
	if tab != nil {
		maxT = tab.MaxT
	}
	out, _ := optimize.NewPeephole(maxT).Optimize(c)
	return out
}
