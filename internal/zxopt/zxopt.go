// Package zxopt is the post-synthesis T-count optimizer standing in for
// PyZX in RQ5. It implements the two mechanisms by which ZX-calculus
// optimizers reclaim T gates from Clifford+T circuits:
//
//  1. phase folding: tracking CNOT parities and merging single-qubit phase
//     gates (T/S/Z/RZ) applied to the same parity term, and
//  2. exact peephole rewriting of single-qubit gate runs against the
//     step-0 enumeration table (minimal Clifford+T forms).
//
// Both transformations preserve the circuit unitary exactly (up to global
// phase), which the tests verify by simulation.
package zxopt

import (
	"fmt"
	"math"
	"sort"

	"repro/circuit"
	"repro/internal/core"
	"repro/internal/gates"
)

// Optimize applies phase folding followed by the table peephole until the
// combined T + Clifford count stops improving.
func Optimize(c *circuit.Circuit, tab *gates.Table) *circuit.Circuit {
	cur := c.Clone()
	for pass := 0; pass < 6; pass++ {
		before := cur.TCount()*1000 + cur.CliffordCount()
		cur = FoldPhases(cur)
		cur = Peephole(cur, tab)
		if cur.TCount()*1000+cur.CliffordCount() >= before {
			break
		}
	}
	return cur
}

type phaseSlot struct {
	angle float64
	qubit int
}

// FoldPhases merges diagonal phase gates (T, T†, S, S†, Z, RZ) that act on
// the same CNOT parity of the initial wire variables. CX updates parities
// by symmetric difference; any other non-diagonal gate allocates a fresh
// variable for its qubit (ending the foldable region). Parities are exact
// sorted variable sets, so distinct parities never merge.
func FoldPhases(c *circuit.Circuit) *circuit.Circuit {
	nextVar := 0
	fresh := func() int { v := nextVar; nextVar++; return v }
	parity := make([][]int, c.N)
	for q := range parity {
		parity[q] = []int{fresh()}
	}
	keyOf := func(vars []int) string { return fmt.Sprint(vars) }

	slots := map[string]*phaseSlot{} // parity key → accumulated phase
	slotAt := map[int]*phaseSlot{}   // output position → slot
	var outOps []circuit.Op

	angleOf := func(op circuit.Op) (float64, bool) {
		switch op.G {
		case circuit.Z:
			return math.Pi, true
		case circuit.S:
			return math.Pi / 2, true
		case circuit.Sdg:
			return -math.Pi / 2, true
		case circuit.T:
			return math.Pi / 4, true
		case circuit.Tdg:
			return -math.Pi / 4, true
		case circuit.RZ:
			return op.P[0], true
		}
		return 0, false
	}
	for _, op := range c.Ops {
		if a, ok := angleOf(op); ok {
			q := op.Q[0]
			k := keyOf(parity[q])
			if s, exists := slots[k]; exists {
				s.angle += a
				continue
			}
			s := &phaseSlot{angle: a, qubit: q}
			slots[k] = s
			slotAt[len(outOps)] = s
			outOps = append(outOps, circuit.Op{}) // placeholder
			continue
		}
		switch {
		case op.G == circuit.CX:
			parity[op.Q[1]] = symdiff(parity[op.Q[1]], parity[op.Q[0]])
			outOps = append(outOps, op)
		case op.G == circuit.CZ:
			// Diagonal: commutes with Z-phases, parities unchanged.
			outOps = append(outOps, op)
		case op.G == circuit.I:
		default:
			parity[op.Q[0]] = []int{fresh()}
			outOps = append(outOps, op)
		}
	}
	out := circuit.New(c.N)
	for i, op := range outOps {
		if s, ok := slotAt[i]; ok {
			emitPhase(out, s.qubit, s.angle)
			continue
		}
		out.Add(op)
	}
	return out
}

// symdiff returns the sorted symmetric difference of two sorted sets.
func symdiff(a, b []int) []int {
	m := map[int]bool{}
	for _, x := range a {
		m[x] = !m[x]
	}
	for _, x := range b {
		m[x] = !m[x]
	}
	var out []int
	for x, keep := range m {
		if keep {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// emitPhase appends the cheapest discrete gates for an RZ-type phase.
func emitPhase(c *circuit.Circuit, q int, angle float64) {
	angle = math.Mod(angle, 2*math.Pi)
	if angle < 0 {
		angle += 2 * math.Pi
	}
	if angle < 1e-12 || 2*math.Pi-angle < 1e-12 {
		return
	}
	if circuit.TrivialAngle(angle) {
		m := int(math.Round(angle/(math.Pi/4))) % 8
		switch m {
		case 1:
			c.T(q)
		case 2:
			c.S(q)
		case 3:
			c.S(q)
			c.T(q)
		case 4:
			c.Z(q)
		case 5:
			c.Z(q)
			c.T(q)
		case 6:
			c.Gate1(circuit.Sdg, q)
		case 7:
			c.Tdg(q)
		}
		return
	}
	c.RZ(q, angle)
}

// Peephole rewrites maximal runs of discrete 1q gates per qubit into their
// minimal table form (trasyn's step-3 rewriting applied circuit-wide).
func Peephole(c *circuit.Circuit, tab *gates.Table) *circuit.Circuit {
	out := circuit.New(c.N)
	pending := make([]gates.Sequence, c.N) // time-ordered runs
	flush := func(q int) {
		run := pending[q]
		if len(run) == 0 {
			return
		}
		pending[q] = nil
		// Convert time order → matrix-product order, rewrite, convert back.
		rev := make(gates.Sequence, len(run))
		for i, g := range run {
			rev[len(run)-1-i] = g
		}
		rev = core.Rewrite(rev, tab)
		for _, op := range circuit.FromSequence(rev, q) {
			out.Add(op)
		}
	}
	toGate := func(g circuit.GateType) (gates.Gate, bool) {
		switch g {
		case circuit.X:
			return gates.X, true
		case circuit.Y:
			return gates.Y, true
		case circuit.Z:
			return gates.Z, true
		case circuit.H:
			return gates.H, true
		case circuit.S:
			return gates.S, true
		case circuit.Sdg:
			return gates.Sdg, true
		case circuit.T:
			return gates.T, true
		case circuit.Tdg:
			return gates.Tdg, true
		}
		return 0, false
	}
	for _, op := range c.Ops {
		if op.G.IsTwoQubit() {
			flush(op.Q[0])
			flush(op.Q[1])
			out.Add(op)
			continue
		}
		if g, ok := toGate(op.G); ok {
			pending[op.Q[0]] = append(pending[op.Q[0]], g)
			continue
		}
		if op.G == circuit.I {
			continue
		}
		flush(op.Q[0])
		out.Add(op)
	}
	for q := 0; q < c.N; q++ {
		flush(q)
	}
	return out
}
