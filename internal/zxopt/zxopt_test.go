package zxopt

import (
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/gates"
	"repro/internal/sim"
)

func randomCliffordT(rng *rand.Rand, n, depth int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		switch rng.Intn(7) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.Tdg(rng.Intn(n))
		case 3:
			c.S(rng.Intn(n))
		case 4:
			c.Z(rng.Intn(n))
		case 5, 6:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	return c
}

func TestFoldPhasesPreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		c := randomCliffordT(rng, 3, 40)
		f := FoldPhases(c)
		if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(f)); d > 1e-6 {
			t.Fatalf("FoldPhases changed unitary: %v", d)
		}
	}
}

func TestFoldPhasesMergesAcrossCX(t *testing.T) {
	// T(0)·CX(0,1)·T(0): the two T's share the control parity and must
	// merge into one S.
	c := circuit.New(2)
	c.T(0).CX(0, 1).T(0)
	f := FoldPhases(c)
	if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(f)); d > 1e-7 {
		t.Fatalf("unitary changed: %v", d)
	}
	if f.TCount() != 0 {
		t.Fatalf("expected T count 0 after folding, got %d", f.TCount())
	}
}

func TestFoldPhasesMergesParityPattern(t *testing.T) {
	// CX(0,1)·T(1)·CX(0,1)·…·CX(0,1)·T(1)·CX(0,1): both T's act on the
	// parity x0⊕x1 and must merge.
	c := circuit.New(2)
	c.CX(0, 1).T(1).CX(0, 1).H(0).H(0).CX(0, 1).T(1).CX(0, 1)
	f := Optimize(c, gates.Shared(4))
	if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(f)); d > 1e-6 {
		t.Fatalf("unitary changed: %v", d)
	}
	if f.TCount() != 0 {
		t.Fatalf("expected parity T's to fold to S: T=%d", f.TCount())
	}
}

func TestFoldPhasesRespectsHBarrier(t *testing.T) {
	// T·H·T on one qubit: the H separates parities; T count must stay 2.
	c := circuit.New(1)
	c.T(0).H(0).T(0)
	f := FoldPhases(c)
	if f.TCount() != 2 {
		t.Fatalf("H barrier violated: T=%d", f.TCount())
	}
	if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(f)); d > 1e-7 {
		t.Fatal("unitary changed")
	}
}

func TestPeepholePreservesUnitaryAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		c := randomCliffordT(rng, 2, 50)
		p := Peephole(c, gates.Shared(5))
		if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(p)); d > 1e-6 {
			t.Fatalf("Peephole changed unitary: %v", d)
		}
		if p.TCount() > c.TCount() {
			t.Fatalf("Peephole increased T count %d → %d", c.TCount(), p.TCount())
		}
	}
}

func TestOptimizeNeverIncreasesT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := gates.Shared(5)
	saved := 0
	for trial := 0; trial < 15; trial++ {
		c := randomCliffordT(rng, 3, 60)
		o := Optimize(c, tab)
		if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(o)); d > 1e-6 {
			t.Fatalf("Optimize changed unitary: %v", d)
		}
		if o.TCount() > c.TCount() {
			t.Fatalf("Optimize increased T count %d → %d", c.TCount(), o.TCount())
		}
		saved += c.TCount() - o.TCount()
	}
	if saved == 0 {
		t.Error("Optimize never saved a single T gate across 15 random circuits")
	}
}

// The emitPhase angle-table test moved to the optimize package with the
// implementation (TestEmitPhaseAngles in optimize/optimize_test.go).
