package mixing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/qmat"
)

func TestBlochDriftBasics(t *testing.T) {
	u := qmat.I2()
	// Rz(2ε) drifts by 2ε·ẑ … up to sign convention; magnitude ε-scaled.
	eps := 1e-3
	h := BlochDrift(u, qmat.Rz(2*eps))
	if math.Abs(norm3(h)-eps) > 1e-6 {
		t.Fatalf("drift magnitude %v, want ~%v", norm3(h), eps)
	}
	if math.Abs(math.Abs(h[2])-eps) > 1e-6 || math.Abs(h[0]) > 1e-9 || math.Abs(h[1]) > 1e-9 {
		t.Fatalf("drift not along z: %v", h)
	}
	// Drift of the target itself is zero.
	if norm3(BlochDrift(u, u)) > 1e-12 {
		t.Fatal("self drift nonzero")
	}
	// Magnitude ≈ unitary distance for small errors.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := qmat.HaarRandom(rng)
		b := qmat.Mul(a, qmat.Rz(2e-3))
		d := qmat.Distance(a, b)
		n := norm3(BlochDrift(a, b))
		if math.Abs(d-n) > 0.2*d {
			t.Fatalf("drift %v vs distance %v", n, d)
		}
	}
}

// TestMixCancelsOppositeDrifts: two approximations erring in opposite
// directions must mix to a residual far below either.
func TestMixCancelsOppositeDrifts(t *testing.T) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(2)))
	eps := 2e-3
	cands := []Candidate{
		{Seq: nil}, // placeholders; matrices injected below via sequences
	}
	_ = cands
	// Build "sequences" directly is awkward; instead test through matrices
	// by wrapping them as single-element custom check: use Mix on real
	// trasyn candidates below; here verify the algebra with synthetic
	// drifts via BlochDrift only.
	vPlus := qmat.Mul(u, qmat.Rz(2*eps))
	vMinus := qmat.Mul(u, qmat.Rz(-2*eps))
	hp := BlochDrift(u, vPlus)
	hm := BlochDrift(u, vMinus)
	for k := 0; k < 3; k++ {
		if math.Abs(hp[k]+hm[k]) > 1e-9 {
			t.Fatalf("opposite rotations do not cancel: %v vs %v", hp, hm)
		}
	}
}

// TestMixOnTrasynCandidates: end to end — mixing trasyn's candidate set
// must reduce the residual coherent error below the best single candidate.
func TestMixOnTrasynCandidates(t *testing.T) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(3)))
	cfg := core.DefaultConfig(gates.Shared(5), 5, 3, 3000)
	cfg.MinSites = 3
	cfg.KeepBest = 24
	cfg.Rng = rand.New(rand.NewSource(4))
	results := core.Candidates(u, cfg)
	if len(results) < 4 {
		t.Fatalf("too few candidates: %d", len(results))
	}
	cands := make([]Candidate, len(results))
	for i, r := range results {
		cands[i] = Candidate{Seq: r.Seq}
	}
	mix, ok := Mix(u, cands)
	if !ok {
		t.Fatal("Mix failed")
	}
	if mix.ResidualDrift >= mix.BestSingleDrift {
		t.Fatalf("mixing did not reduce drift: %v ≥ %v", mix.ResidualDrift, mix.BestSingleDrift)
	}
	if mix.ProbA < 0 || mix.ProbA > 1 {
		t.Fatalf("invalid probability %v", mix.ProbA)
	}
	// The mixed channel's process infidelity must not exceed the best
	// candidate's by more than rounding (it is a convex combination).
	bestInfid := math.Inf(1)
	for _, r := range results {
		if v := r.Error * r.Error; v < bestInfid {
			bestInfid = v
		}
	}
	if mix.ProcessInfidelity > 4*bestInfid+1e-12 {
		t.Fatalf("mixed infidelity %v implausibly above best single %v",
			mix.ProcessInfidelity, bestInfid)
	}
}

func TestMixNeedsTwo(t *testing.T) {
	if _, ok := Mix(qmat.I2(), []Candidate{{Seq: gates.Sequence{gates.T}}}); ok {
		t.Fatal("Mix should fail with one candidate")
	}
}
