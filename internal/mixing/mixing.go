// Package mixing implements probabilistic unitary mixing (Campbell 2017 /
// Hastings 2016), the ensemble extension the paper's related-work section
// points at: "using trasyn as a blackbox algorithm, mixing unitaries can
// reduce the error quadratically."
//
// A single Clifford+T approximation V of U carries a coherent error: up to
// phase, U†V = exp(i h·σ/…) with a small Bloch drift vector h, |h| ≈ D(U,V).
// Executing V_i with probability p_i yields a channel whose FIRST-ORDER
// error is Σ p_i h_i — choosing approximations whose drifts nearly cancel
// leaves only the second-order (incoherent) part, improving the worst-case
// (diamond) error from ε to ~ε². This costs nothing at runtime beyond
// randomizing which sequence is executed.
package mixing

import (
	"math"
	"math/cmplx"

	"repro/internal/gates"
	"repro/internal/qmat"
	"repro/internal/sim"
)

// Candidate is one approximation with its gate sequence.
type Candidate struct {
	Seq gates.Sequence
}

// Result describes the chosen two-component mixture.
type Result struct {
	IndexA, IndexB int     // indices into the input candidates
	ProbA          float64 // probability of IndexA (IndexB gets 1−ProbA)
	// ResidualDrift is |p·h_A + (1−p)·h_B|: the remaining first-order
	// coherent error of the mixture.
	ResidualDrift float64
	// BestSingleDrift is min_i |h_i| — the drift of the best single
	// candidate, for comparison.
	BestSingleDrift float64
	// ProcessInfidelity of the mixed channel vs the target (PTM-exact).
	ProcessInfidelity float64
}

// BlochDrift extracts the first-order error vector h of V vs target U:
// align the global phase, write U†V = cos(θ)I − i·sin(θ)(n̂·σ), and return
// θ·n̂ (for θ ≪ 1 this is the rotation generator).
func BlochDrift(u, v qmat.M2) [3]float64 {
	m := qmat.Mul(qmat.Dagger(u), v)
	// Remove global phase: rotate so Tr(m) is real positive.
	tr := qmat.Trace(m)
	if a := cmplx.Abs(tr); a > 1e-300 {
		m = qmat.Scale(complex(a, 0)/tr, m)
	}
	c := real(qmat.Trace(m)) / 2
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	theta := math.Acos(c)
	s := math.Sin(theta)
	if math.Abs(s) < 1e-14 {
		return [3]float64{}
	}
	// m = c·I − i·s·(n·σ): extract n from the anti-Hermitian part.
	nx := -imag(m[0][1]+m[1][0]) / (2 * s)
	ny := real(m[1][0]-m[0][1]) / (2 * s)
	nz := -imag(m[0][0]-m[1][1]) / (2 * s)
	return [3]float64{theta * nx, theta * ny, theta * nz}
}

func norm3(v [3]float64) float64 {
	return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
}

// Mix selects the two-candidate convex combination minimizing the residual
// first-order drift. Requires at least two candidates; returns ok=false if
// fewer are supplied.
func Mix(target qmat.M2, cands []Candidate) (Result, bool) {
	if len(cands) < 2 {
		return Result{}, false
	}
	drifts := make([][3]float64, len(cands))
	best := math.Inf(1)
	for i, c := range cands {
		drifts[i] = BlochDrift(target, c.Seq.Matrix())
		if n := norm3(drifts[i]); n < best {
			best = n
		}
	}
	res := Result{ResidualDrift: math.Inf(1), BestSingleDrift: best}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			hi, hj := drifts[i], drifts[j]
			// Minimize |w·hi + (1−w)·hj|² over w ∈ [0,1]:
			// w* = −hj·(hi−hj) / |hi−hj|².
			var diff [3]float64
			var dot, dd float64
			for k := 0; k < 3; k++ {
				diff[k] = hi[k] - hj[k]
				dot += hj[k] * diff[k]
				dd += diff[k] * diff[k]
			}
			w := 0.5
			if dd > 1e-30 {
				w = -dot / dd
			}
			if w < 0 {
				w = 0
			}
			if w > 1 {
				w = 1
			}
			var resid [3]float64
			for k := 0; k < 3; k++ {
				resid[k] = w*hi[k] + (1-w)*hj[k]
			}
			if n := norm3(resid); n < res.ResidualDrift {
				res.ResidualDrift = n
				res.IndexA, res.IndexB, res.ProbA = i, j, w
			}
		}
	}
	// Exact channel-level check via PTMs.
	a := sim.PTMFromUnitary(cands[res.IndexA].Seq.Matrix())
	b := sim.PTMFromUnitary(cands[res.IndexB].Seq.Matrix())
	var mixed sim.PTM
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			mixed[i][j] = res.ProbA*a[i][j] + (1-res.ProbA)*b[i][j]
		}
	}
	res.ProcessInfidelity = 1 - sim.ProcessFidelity(target, mixed)
	return res, true
}
