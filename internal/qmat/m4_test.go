package qmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestKronConvention(t *testing.T) {
	// X on the first (high) qubit must map |0b⟩ ↔ |1b⟩, i.e. swap
	// rows 0↔2 and 1↔3.
	xi := Kron(X, I2())
	want := M4{
		{0, 0, 1, 0},
		{0, 0, 0, 1},
		{1, 0, 0, 0},
		{0, 1, 0, 0},
	}
	if !ApproxEqual4(xi, want, 1e-15) {
		t.Fatalf("Kron(X,I) = %v", xi)
	}
	// Z on the second (low) qubit: diag(1,−1,1,−1).
	iz := Kron(I2(), Z)
	want = M4{{1, 0, 0, 0}, {0, -1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}}
	if !ApproxEqual4(iz, want, 1e-15) {
		t.Fatalf("Kron(I,Z) = %v", iz)
	}
}

func TestCXConjugation(t *testing.T) {
	cx := CXFirst()
	// CX (X⊗I) CX = X⊗X: control-X propagates to the target.
	got := MulAll4(cx, Kron(X, I2()), cx)
	if !ApproxEqual4(got, Kron(X, X), 1e-14) {
		t.Fatalf("CX(X⊗I)CX = %v", got)
	}
	// CX (I⊗Z) CX = Z⊗Z: target-Z propagates to the control.
	got = MulAll4(cx, Kron(I2(), Z), cx)
	if !ApproxEqual4(got, Kron(Z, Z), 1e-14) {
		t.Fatalf("CX(I⊗Z)CX = %v", got)
	}
	// The other orientation mirrors the roles.
	cx2 := CXSecond()
	got = MulAll4(cx2, Kron(I2(), X), cx2)
	if !ApproxEqual4(got, Kron(X, X), 1e-14) {
		t.Fatalf("CX2(I⊗X)CX2 = %v", got)
	}
}

func TestSwapAndCZ(t *testing.T) {
	sw := SWAP4()
	if !ApproxEqual4(Mul4(sw, sw), I4(), 1e-15) {
		t.Fatal("SWAP² != I")
	}
	// SWAP = CXFirst·CXSecond·CXFirst.
	if got := MulAll4(CXFirst(), CXSecond(), CXFirst()); !ApproxEqual4(got, sw, 1e-15) {
		t.Fatalf("3-CX swap identity: %v", got)
	}
	// CZ = (I⊗H)·CX·(I⊗H).
	ih := Kron(I2(), H())
	if got := MulAll4(ih, CXFirst(), ih); !ApproxEqual4(got, CZ4(), 1e-14) {
		t.Fatalf("CZ from CX: %v", got)
	}
}

func TestHaarRandom4Unitary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		u := HaarRandom4(rng)
		if !IsUnitary4(u, 1e-10) {
			t.Fatalf("draw %d not unitary", i)
		}
		if d := cmplx.Abs(Det4(u) - 1); d > 1e-10 {
			t.Fatalf("draw %d det off by %g", i, d)
		}
	}
}

func TestKronFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a, b := HaarRandom(rng), HaarRandom(rng)
		ph := cmplx.Exp(complex(0, 2*math.Pi*rng.Float64()))
		u := Scale4(ph, Kron(a, b))
		fa, fb, fph, ok := KronFactor(u, 1e-10)
		if !ok {
			t.Fatalf("draw %d: failed to factor a product state", i)
		}
		re := Scale4(fph, Kron(fa, fb))
		if !ApproxEqual4(re, u, 1e-10) {
			t.Fatalf("draw %d: factorization inexact", i)
		}
	}
	// Entangling matrices must be rejected.
	if _, _, _, ok := KronFactor(CXFirst(), 1e-10); ok {
		t.Fatal("KronFactor accepted CX")
	}
	if _, _, _, ok := KronFactor(MulAll4(CXFirst(), Kron(H(), T()), CXSecond()), 1e-10); ok {
		t.Fatal("KronFactor accepted an entangling product")
	}
}

func TestDistance4(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := HaarRandom4(rng)
	if d := Distance4(u, Scale4(cmplx.Exp(1i), u)); d > 1e-12 {
		t.Fatalf("phase-invariance broken: %g", d)
	}
	if d := Distance4(I4(), SWAP4()); d < 0.5 {
		t.Fatalf("I vs SWAP suspiciously close: %g", d)
	}
}
