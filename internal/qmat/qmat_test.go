package qmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGatesAreUnitary(t *testing.T) {
	gates := map[string]M2{
		"H": H(), "S": S(), "Sdg": Sdg(), "T": T(), "Tdg": Tdg(),
		"X": X, "Y": Y, "Z": Z,
		"Rz": Rz(0.7), "Rx": Rx(-1.3), "Ry": Ry(2.2), "U3": U3(0.3, 1.1, -0.4),
	}
	for name, g := range gates {
		if !IsUnitary(g, 1e-12) {
			t.Errorf("%s is not unitary: %v", name, g)
		}
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	tol := 1e-12
	if !ApproxEqual(Mul(T(), T()), S(), tol) {
		t.Error("T² ≠ S")
	}
	if !ApproxEqual(Mul(S(), S()), Z, tol) {
		t.Error("S² ≠ Z")
	}
	if !ApproxEqual(Mul(H(), H()), I2(), tol) {
		t.Error("H² ≠ I")
	}
	if !ApproxEqual(MulAll(H(), Z, H()), X, tol) {
		t.Error("HZH ≠ X")
	}
	if !ApproxEqual(Mul(S(), Sdg()), I2(), tol) {
		t.Error("S·S† ≠ I")
	}
	if !ApproxEqual(Mul(T(), Tdg()), I2(), tol) {
		t.Error("T·T† ≠ I")
	}
	// Y = iXZ
	if !ApproxEqual(Scale(1i, Mul(X, Z)), Y, tol) {
		t.Error("Y ≠ iXZ")
	}
}

func TestRzTAgreement(t *testing.T) {
	// T = e^{iπ/8} Rz(π/4): equal up to global phase.
	if !EqualUpToPhase(T(), Rz(math.Pi/4), 1e-12) {
		t.Error("T not Rz(π/4) up to phase")
	}
	if !EqualUpToPhase(S(), Rz(math.Pi/2), 1e-12) {
		t.Error("S not Rz(π/2) up to phase")
	}
}

func TestHRzHIsRx(t *testing.T) {
	for _, th := range []float64{0.1, 1.0, -2.5, math.Pi} {
		got := MulAll(H(), Rz(th), H())
		if !ApproxEqual(got, Rx(th), 1e-12) {
			t.Errorf("H Rz(%v) H ≠ Rx(%v)", th, th)
		}
	}
}

// TestU3Decomposition checks the paper's Eq. (1):
// U3(θ,φ,λ) ≅ Rz(φ+π/2)·H·Rz(θ)·H·Rz(λ−π/2) up to global phase.
func TestU3Decomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		th := rng.Float64() * math.Pi
		ph := (rng.Float64() - 0.5) * 4 * math.Pi
		la := (rng.Float64() - 0.5) * 4 * math.Pi
		u := U3(th, ph, la)
		v := MulAll(Rz(ph+math.Pi/2), H(), Rz(th), H(), Rz(la-math.Pi/2))
		if d := Distance(u, v); d > 1e-7 {
			t.Fatalf("Eq(1) violated: θ=%v φ=%v λ=%v dist=%v", th, ph, la, d)
		}
	}
}

func TestU3IsZYZ(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		th := rng.Float64() * math.Pi
		ph := (rng.Float64() - 0.5) * 4 * math.Pi
		la := (rng.Float64() - 0.5) * 4 * math.Pi
		u := U3(th, ph, la)
		v := MulAll(Rz(ph), Ry(th), Rz(la))
		if d := Distance(u, v); d > 1e-7 {
			t.Fatalf("U3 ≠ Rz·Ry·Rz up to phase: dist=%v", d)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		u := HaarRandom(rng)
		v := HaarRandom(rng)
		d := Distance(u, v)
		if d < 0 || d > 1 {
			t.Fatalf("distance out of range: %v", d)
		}
		if Distance(u, u) > 5e-8 {
			t.Fatal("D(U,U) ≠ 0")
		}
		// Global phase invariance.
		ph := cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
		if math.Abs(Distance(u, Scale(ph, v))-d) > 1e-12 {
			t.Fatal("distance not phase invariant")
		}
		// Symmetry.
		if math.Abs(Distance(v, u)-d) > 1e-12 {
			t.Fatal("distance not symmetric")
		}
	}
}

func TestDistanceApproximatesOpNorm(t *testing.T) {
	// For small errors, D(U,V) ≈ min_phase ‖U − e^{iγ}V‖ (paper, footnote 4).
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		u := HaarRandom(rng)
		eps := 1e-3 * (1 + rng.Float64())
		v := Mul(u, Rz(eps)) // small perturbation
		d := Distance(u, v)
		n := OpNormDiff(u, v, true)
		if d == 0 || n == 0 {
			continue
		}
		if r := d / n; r < 0.5 || r > 2.0 {
			t.Fatalf("distance %v not close to phase-free opnorm %v (ratio %v)", d, n, r)
		}
	}
}

func TestHaarRandomIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		u := HaarRandom(rng)
		if !IsUnitary(u, 1e-12) {
			t.Fatalf("Haar sample not unitary: %v", u)
		}
		if cmplx.Abs(Det(u)-1) > 1e-12 {
			t.Fatalf("Haar sample not special: det=%v", Det(u))
		}
	}
}

func TestZYZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := HaarRandom(r)
		th, ph, la := ZYZAngles(u)
		v := U3(th, ph, la)
		return Distance(u, v) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestZYZEdgeCases(t *testing.T) {
	for _, u := range []M2{I2(), Z, X, Y, S(), Rz(1e-13), Ry(math.Pi)} {
		th, ph, la := ZYZAngles(u)
		if d := Distance(u, U3(th, ph, la)); d > 1e-6 {
			t.Errorf("ZYZ edge case failed for %v: d=%v", u, d)
		}
	}
}

func TestMulAllEmpty(t *testing.T) {
	if MulAll() != I2() {
		t.Error("MulAll() should be identity")
	}
}

func TestDistanceFromTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		u, v := HaarRandom(rng), HaarRandom(rng)
		if math.Abs(DistanceFromTrace(HSTrace(u, v))-Distance(u, v)) > 1e-12 {
			t.Fatal("DistanceFromTrace mismatch")
		}
	}
}
