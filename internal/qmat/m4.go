package qmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// M4 is a 4x4 complex matrix stored row-major, representing an operator on
// a qubit pair (a, b). The basis ordering puts the FIRST qubit of the pair
// in the high bit: index = bitA·2 + bitB, i.e. rows/columns run
// |00⟩, |01⟩, |10⟩, |11⟩ with |a b⟩. Kron(A, B) therefore applies A to the
// first qubit and B to the second.
type M4 [4][4]complex128

// I4 returns the 4x4 identity.
func I4() M4 {
	var m M4
	for i := 0; i < 4; i++ {
		m[i][i] = 1
	}
	return m
}

// Kron returns a⊗b: the first (high) qubit sees a, the second sees b.
// Kron(a,b)[2i+j][2k+l] = a[i][k]·b[j][l].
func Kron(a, b M2) M4 {
	var m M4
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				for l := 0; l < 2; l++ {
					m[2*i+j][2*k+l] = a[i][k] * b[j][l]
				}
			}
		}
	}
	return m
}

// CXFirst returns CX with the first (high) qubit as control.
// It swaps rows |10⟩ and |11⟩.
func CXFirst() M4 {
	return M4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}
}

// CXSecond returns CX with the second (low) qubit as control.
// It swaps rows |01⟩ and |11⟩.
func CXSecond() M4 {
	return M4{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	}
}

// CZ4 returns the (symmetric) controlled-Z on the pair.
func CZ4() M4 {
	m := I4()
	m[3][3] = -1
	return m
}

// SWAP4 returns the swap of the two qubits.
func SWAP4() M4 {
	return M4{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	}
}

// Mul4 returns a·b.
func Mul4(a, b M4) M4 {
	var m M4
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			s := complex(0, 0)
			for j := 0; j < 4; j++ {
				s += a[i][j] * b[j][k]
			}
			m[i][k] = s
		}
	}
	return m
}

// MulAll4 multiplies left to right: MulAll4(a,b,c) = a·b·c.
func MulAll4(ms ...M4) M4 {
	p := I4()
	for _, m := range ms {
		p = Mul4(p, m)
	}
	return p
}

// Dagger4 returns the conjugate transpose.
func Dagger4(a M4) M4 {
	var m M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = cmplx.Conj(a[j][i])
		}
	}
	return m
}

// Transpose4 returns the (plain) transpose.
func Transpose4(a M4) M4 {
	var m M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = a[j][i]
		}
	}
	return m
}

// Scale4 returns s·a.
func Scale4(s complex128, a M4) M4 {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a[i][j] *= s
		}
	}
	return a
}

// Add4 returns a+b.
func Add4(a, b M4) M4 {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a[i][j] += b[i][j]
		}
	}
	return a
}

// Sub4 returns a−b.
func Sub4(a, b M4) M4 { return Add4(a, Scale4(-1, b)) }

// Trace4 returns Tr(a).
func Trace4(a M4) complex128 { return a[0][0] + a[1][1] + a[2][2] + a[3][3] }

// Det4 returns det(a) by cofactor expansion along the first row.
func Det4(a M4) complex128 {
	det3 := func(m [3][3]complex128) complex128 {
		return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
			m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
			m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
	}
	var d complex128
	sign := complex(1, 0)
	for c := 0; c < 4; c++ {
		var minor [3][3]complex128
		for i := 1; i < 4; i++ {
			mc := 0
			for j := 0; j < 4; j++ {
				if j == c {
					continue
				}
				minor[i-1][mc] = a[i][j]
				mc++
			}
		}
		d += sign * a[0][c] * det3(minor)
		sign = -sign
	}
	return d
}

// HSTrace4 returns Tr(U†V).
func HSTrace4(u, v M4) complex128 {
	var s complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s += cmplx.Conj(u[i][j]) * v[i][j]
		}
	}
	return s
}

// TraceValue4 returns |Tr(U†V)|/4, the N = 4 trace value.
func TraceValue4(u, v M4) float64 { return cmplx.Abs(HSTrace4(u, v)) / 4 }

// Distance4 is the global-phase-invariant unitary distance
// sqrt(1 − |Tr(U†V)|²/16), the N = 4 analogue of Distance.
func Distance4(u, v M4) float64 {
	t := TraceValue4(u, v)
	d := 1 - t*t
	if d < 0 {
		return 0
	}
	return math.Sqrt(d)
}

// MaxAbsDiff4 returns the largest entrywise |u−v| after aligning the global
// phase of v to u (via the Hilbert–Schmidt overlap). For unitaries it upper-
// bounds the operator-norm error of using v in place of u up to phase.
func MaxAbsDiff4(u, v M4) float64 {
	tr := HSTrace4(v, u)
	ph := complex(1, 0)
	if cmplx.Abs(tr) > 0 {
		ph = tr / complex(cmplx.Abs(tr), 0)
	}
	worst := 0.0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if d := cmplx.Abs(u[i][j] - ph*v[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// IsUnitary4 reports whether a†a = I within tol (entrywise).
func IsUnitary4(a M4, tol float64) bool {
	g := Mul4(Dagger4(a), a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(g[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// ApproxEqual4 reports whether a and b agree entrywise within tol.
func ApproxEqual4(a, b M4, tol float64) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if cmplx.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// KronFactor attempts to factor u ≈ e^{iγ}·(a⊗b) into single-qubit factors,
// returning ok=false when u is entangling. The residual entrywise error of
// e^{iγ}(a⊗b) vs u is bounded by tol on success.
func KronFactor(u M4, tol float64) (a, b M2, phase complex128, ok bool) {
	// Pick the 2x2 block (i,k) of largest norm: block(i,k)[j][l] = a[i][k]·b[j][l].
	bi, bk, bn := 0, 0, -1.0
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			n := 0.0
			for j := 0; j < 2; j++ {
				for l := 0; l < 2; l++ {
					c := u[2*i+j][2*k+l]
					n += real(c)*real(c) + imag(c)*imag(c)
				}
			}
			if n > bn {
				bi, bk, bn = i, k, n
			}
		}
	}
	if bn < 1e-24 {
		return a, b, 0, false
	}
	// b is the dominant block normalized to unit Frobenius norm scaled to a
	// unitary candidate (‖unitary 2x2‖_F = √2).
	scale := complex(math.Sqrt(2/bn), 0)
	for j := 0; j < 2; j++ {
		for l := 0; l < 2; l++ {
			b[j][l] = u[2*bi+j][2*bk+l] * scale
		}
	}
	// a entries from overlaps: a[i][k] = Tr(block(i,k)·b†)/2.
	bd := Dagger(b)
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			var blk M2
			for j := 0; j < 2; j++ {
				for l := 0; l < 2; l++ {
					blk[j][l] = u[2*i+j][2*k+l]
				}
			}
			p := Mul(blk, bd)
			a[i][k] = Trace(p) / 2
		}
	}
	if !IsUnitary(a, 1e-6) || !IsUnitary(b, 1e-6) {
		return a, b, 0, false
	}
	// Pull the residual phase out of a so a, b are unitary and
	// phase·(a⊗b) ≈ u exactly (not only up to phase).
	da := cmplx.Sqrt(Det(a))
	if cmplx.Abs(da) < 1e-300 {
		return a, b, 0, false
	}
	a = Scale(1/da, a)
	phase = da
	k := Kron(a, b)
	// Align residual global phase precisely.
	tr := HSTrace4(k, u)
	if cmplx.Abs(tr) < 1e-12 {
		return a, b, 0, false
	}
	phase = tr / complex(cmplx.Abs(tr), 0)
	k = Scale4(phase, k)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if cmplx.Abs(k[i][j]-u[i][j]) > tol {
				return a, b, 0, false
			}
		}
	}
	return a, b, phase, true
}

// HaarRandom4 returns a Haar-distributed SU(4) element: a complex Ginibre
// matrix orthonormalized by Gram–Schmidt (QR with positive diagonal), with
// the determinant normalized away.
func HaarRandom4(rng *rand.Rand) M4 {
	var g [4][4]complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			g[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	// Gram–Schmidt on columns.
	var q M4
	for c := 0; c < 4; c++ {
		var v [4]complex128
		for r := 0; r < 4; r++ {
			v[r] = g[r][c]
		}
		for p := 0; p < c; p++ {
			var dot complex128
			for r := 0; r < 4; r++ {
				dot += cmplx.Conj(q[r][p]) * v[r]
			}
			for r := 0; r < 4; r++ {
				v[r] -= dot * q[r][p]
			}
		}
		n := 0.0
		for r := 0; r < 4; r++ {
			n += real(v[r])*real(v[r]) + imag(v[r])*imag(v[r])
		}
		n = math.Sqrt(n)
		if n < 1e-12 {
			// Degenerate draw (measure zero); retry wholesale.
			return HaarRandom4(rng)
		}
		for r := 0; r < 4; r++ {
			q[r][c] = v[r] / complex(n, 0)
		}
	}
	// Normalize det to 1: divide by det^{1/4}.
	d := Det4(q)
	root := cmplx.Pow(d, 0.25)
	if cmplx.Abs(root) < 1e-300 {
		return HaarRandom4(rng)
	}
	return Scale4(1/root, q)
}

// String renders the matrix for debugging.
func (m M4) String() string {
	s := "["
	for i := 0; i < 4; i++ {
		if i > 0 {
			s += ",\n "
		}
		s += fmt.Sprintf("[%v, %v, %v, %v]", m[i][0], m[i][1], m[i][2], m[i][3])
	}
	return s + "]"
}
