// Package qmat provides dense 2x2 complex matrices and the standard
// single-qubit gate constructors used throughout the repository, together
// with the closeness metrics from the paper (Hilbert-Schmidt trace value and
// the unitary distance of Eq. (2)).
package qmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// M2 is a 2x2 complex matrix stored row-major: [row][col].
type M2 [2][2]complex128

// I2 returns the identity matrix.
func I2() M2 { return M2{{1, 0}, {0, 1}} }

// Standard gate matrices of the Clifford+T set {H, S, T, X, Y, Z}.
var (
	X = M2{{0, 1}, {1, 0}}
	Y = M2{{0, -1i}, {1i, 0}}
	Z = M2{{1, 0}, {0, -1}}
)

// H returns the Hadamard gate.
func H() M2 {
	s := complex(1/math.Sqrt2, 0)
	return M2{{s, s}, {s, -s}}
}

// S returns the phase gate diag(1, i).
func S() M2 { return M2{{1, 0}, {0, 1i}} }

// Sdg returns S†.
func Sdg() M2 { return M2{{1, 0}, {0, -1i}} }

// T returns the T gate diag(1, e^{iπ/4}).
func T() M2 { return M2{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}} }

// Tdg returns T†.
func Tdg() M2 { return M2{{1, 0}, {0, cmplx.Exp(complex(0, -math.Pi/4))}} }

// Rz returns the z-rotation diag(e^{-iθ/2}, e^{iθ/2}).
func Rz(theta float64) M2 {
	return M2{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	}
}

// Rx returns the x-rotation exp(-iθX/2).
func Rx(theta float64) M2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return M2{{c, s}, {s, c}}
}

// Ry returns the y-rotation exp(-iθY/2).
func Ry(theta float64) M2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return M2{{c, -s}, {s, c}}
}

// U3 returns the general single-qubit unitary with the OpenQASM convention:
//
//	U3(θ,φ,λ) = [[cos(θ/2), -e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]].
//
// Up to global phase, U3(θ,φ,λ) = Rz(φ)·Ry(θ)·Rz(λ).
func U3(theta, phi, lambda float64) M2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return M2{
		{c, -cmplx.Exp(complex(0, lambda)) * s},
		{cmplx.Exp(complex(0, phi)) * s, cmplx.Exp(complex(0, phi+lambda)) * c},
	}
}

// Mul returns a·b.
func Mul(a, b M2) M2 {
	return M2{
		{a[0][0]*b[0][0] + a[0][1]*b[1][0], a[0][0]*b[0][1] + a[0][1]*b[1][1]},
		{a[1][0]*b[0][0] + a[1][1]*b[1][0], a[1][0]*b[0][1] + a[1][1]*b[1][1]},
	}
}

// MulAll multiplies the matrices left to right: MulAll(a,b,c) = a·b·c.
func MulAll(ms ...M2) M2 {
	p := I2()
	for _, m := range ms {
		p = Mul(p, m)
	}
	return p
}

// Dagger returns the conjugate transpose.
func Dagger(a M2) M2 {
	return M2{
		{cmplx.Conj(a[0][0]), cmplx.Conj(a[1][0])},
		{cmplx.Conj(a[0][1]), cmplx.Conj(a[1][1])},
	}
}

// Scale returns s·a.
func Scale(s complex128, a M2) M2 {
	return M2{{s * a[0][0], s * a[0][1]}, {s * a[1][0], s * a[1][1]}}
}

// Add returns a+b.
func Add(a, b M2) M2 {
	return M2{
		{a[0][0] + b[0][0], a[0][1] + b[0][1]},
		{a[1][0] + b[1][0], a[1][1] + b[1][1]},
	}
}

// Sub returns a-b.
func Sub(a, b M2) M2 { return Add(a, Scale(-1, b)) }

// Trace returns Tr(a).
func Trace(a M2) complex128 { return a[0][0] + a[1][1] }

// Det returns det(a).
func Det(a M2) complex128 { return a[0][0]*a[1][1] - a[0][1]*a[1][0] }

// HSTrace returns Tr(U†V), the (unnormalized) Hilbert-Schmidt inner product.
func HSTrace(u, v M2) complex128 {
	// Tr(U†V) = Σ_ij conj(U_ij)·V_ij.
	return cmplx.Conj(u[0][0])*v[0][0] + cmplx.Conj(u[0][1])*v[0][1] +
		cmplx.Conj(u[1][0])*v[1][0] + cmplx.Conj(u[1][1])*v[1][1]
}

// TraceValue returns |Tr(U†V)|/2, the paper's "trace value" (N = 2).
func TraceValue(u, v M2) float64 { return cmplx.Abs(HSTrace(u, v)) / 2 }

// Distance returns the unitary distance of Eq. (2):
// D(U,V) = sqrt(1 - |Tr(U†V)|²/4). It is global-phase invariant and, for
// small values, numerically close to the operator norm ‖U−V‖.
func Distance(u, v M2) float64 {
	t := TraceValue(u, v)
	d := 1 - t*t
	if d < 0 { // guard tiny negative rounding
		return 0
	}
	return math.Sqrt(d)
}

// DistanceFromTrace converts an (unnormalized) trace value Tr(U†V) to the
// unitary distance without re-multiplying matrices.
func DistanceFromTrace(tr complex128) float64 {
	t := cmplx.Abs(tr) / 2
	d := 1 - t*t
	if d < 0 {
		return 0
	}
	return math.Sqrt(d)
}

// OpNormDiff returns the spectral norm of U−V, minimizing over global phase
// if phaseFree is set. For 2x2 matrices the spectral norm is computed from
// the eigenvalues of (U−V)†(U−V).
func OpNormDiff(u, v M2, phaseFree bool) float64 {
	norm := func(a M2) float64 {
		g := Mul(Dagger(a), a) // Hermitian PSD
		tr := real(g[0][0] + g[1][1])
		det := real(g[0][0]*g[1][1] - g[0][1]*g[1][0])
		disc := tr*tr/4 - det
		if disc < 0 {
			disc = 0
		}
		lmax := tr/2 + math.Sqrt(disc)
		if lmax < 0 {
			lmax = 0
		}
		return math.Sqrt(lmax)
	}
	if !phaseFree {
		return norm(Sub(u, v))
	}
	// Optimal phase aligns Tr(U†V) to the positive real axis.
	tr := HSTrace(u, v)
	ph := complex(1, 0)
	if cmplx.Abs(tr) > 0 {
		ph = tr / complex(cmplx.Abs(tr), 0)
	}
	return norm(Sub(u, Scale(ph, v)))
}

// IsUnitary reports whether a†a = I within tol.
func IsUnitary(a M2, tol float64) bool {
	g := Mul(Dagger(a), a)
	return cmplx.Abs(g[0][0]-1) < tol && cmplx.Abs(g[1][1]-1) < tol &&
		cmplx.Abs(g[0][1]) < tol && cmplx.Abs(g[1][0]) < tol
}

// ApproxEqual reports whether a and b agree entrywise within tol.
func ApproxEqual(a, b M2, tol float64) bool {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// EqualUpToPhase reports whether a = e^{iγ}·b for some γ, within tol.
func EqualUpToPhase(a, b M2, tol float64) bool {
	return Distance(a, b) < tol && math.Abs(cmplx.Abs(Det(a))-cmplx.Abs(Det(b))) < tol
}

// HaarRandom returns a Haar-distributed SU(2) element drawn from rng,
// via a uniform unit quaternion.
func HaarRandom(rng *rand.Rand) M2 {
	// Marsaglia: four independent normals normalized to the 3-sphere.
	var q [4]float64
	n := 0.0
	for {
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		n = math.Sqrt(q[0]*q[0] + q[1]*q[1] + q[2]*q[2] + q[3]*q[3])
		if n > 1e-12 {
			break
		}
	}
	a, b, c, d := q[0]/n, q[1]/n, q[2]/n, q[3]/n
	// SU(2) = a·I + i(b·X + c·Y + d·Z)
	return M2{
		{complex(a, d), complex(c, b)},
		{complex(-c, b), complex(a, -d)},
	}
}

// ZYZAngles decomposes a unitary (up to global phase) as
// Rz(φ)·Ry(θ)·Rz(λ), returning θ, φ, λ such that U3(θ,φ,λ) equals u up to
// global phase.
func ZYZAngles(u M2) (theta, phi, lambda float64) {
	// Remove global phase: make it special (det 1), then read angles.
	det := Det(u)
	ph := cmplx.Sqrt(det)
	if cmplx.Abs(ph) < 1e-300 {
		return 0, 0, 0
	}
	v := Scale(1/ph, u) // now det(v) = ±1; for unitary u it is 1 up to rounding
	c := cmplx.Abs(v[0][0])
	s := cmplx.Abs(v[1][0])
	theta = 2 * math.Atan2(s, c)
	switch {
	case s < 1e-7:
		// Diagonal (θ ≈ 0): only φ+λ matters; put it all in φ. Never read
		// the phase of the ~0 off-diagonal entries — it is rounding noise.
		theta = 0
		phi = cmplx.Phase(v[1][1]) - cmplx.Phase(v[0][0])
		lambda = 0
	case c < 1e-7:
		// Antidiagonal (θ ≈ π): U3(π,φ,λ) = [[0, −e^{iλ}], [e^{iφ}, 0]].
		theta = math.Pi
		phi = cmplx.Phase(v[1][0])
		lambda = cmplx.Phase(-v[0][1])
	default:
		phi = cmplx.Phase(v[1][0]) - cmplx.Phase(v[0][0])
		lambda = cmplx.Phase(-v[0][1]) - cmplx.Phase(v[0][0])
	}
	return theta, phi, lambda
}

// String renders the matrix for debugging.
func (m M2) String() string {
	return fmt.Sprintf("[[%v, %v], [%v, %v]]", m[0][0], m[0][1], m[1][0], m[1][1])
}
