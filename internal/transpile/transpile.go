// Package transpile implements the circuit-level passes the paper's
// compilation workflows rely on (§2.2, §3.4): merging adjacent single-qubit
// gates into U3, commuting Rz through CX controls and Rx through CX
// targets, conversion between the CX+U3 and CX+H+RZ intermediate
// representations, CX cancellation, and the 16-setting optimization sweep
// (levels 0–3 × {Rz, U3} × {±commutation}).
package transpile

import (
	"math"

	"repro/circuit"
	"repro/internal/qmat"
)

// Basis selects the intermediate representation.
type Basis int

// The two IRs compared throughout the paper.
const (
	BasisRz Basis = iota // CX + H + RZ
	BasisU3              // CX + U3
)

// Setting is one transpilation configuration of the 16-way sweep.
type Setting struct {
	Basis   Basis
	Level   int  // 0–3
	Commute bool // run the commutation pass (not in default Qiskit levels)
}

// Merge1Q fuses maximal runs of adjacent single-qubit gates on each qubit
// into a single U3 (dropping identity products). Two-qubit gates break
// runs on the qubits they touch.
func Merge1Q(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N)
	pending := make([]*qmat.M2, c.N) // accumulated 1q unitary per qubit
	flush := func(q int) {
		if pending[q] == nil {
			return
		}
		m := *pending[q]
		pending[q] = nil
		if qmat.Distance(m, qmat.I2()) < 1e-9 {
			return
		}
		th, ph, la := qmat.ZYZAngles(m)
		out.U3Gate(q, th, ph, la)
	}
	for _, op := range c.Ops {
		if op.G.IsTwoQubit() {
			flush(op.Q[0])
			flush(op.Q[1])
			out.Add(op)
			continue
		}
		if op.G == circuit.I {
			continue
		}
		m := op.Matrix1Q()
		if pending[op.Q[0]] == nil {
			pending[op.Q[0]] = &m
		} else {
			// Time order: later gate multiplies on the left.
			prod := qmat.Mul(m, *pending[op.Q[0]])
			pending[op.Q[0]] = &prod
		}
	}
	for q := 0; q < c.N; q++ {
		flush(q)
	}
	return out
}

// Commute pushes RZ-like gates forward through CX controls and RX-like
// gates forward through CX targets (both commute), so that later merges can
// fuse them with following rotations. Ops acting on disjoint qubits are
// transparent: a rotation bubbles rightward until the next gate on its
// qubit, and hops over that gate when the commutation rule allows.
func Commute(c *circuit.Circuit) *circuit.Circuit {
	ops := append([]circuit.Op(nil), c.Ops...)
	changed := true
	for rounds := 0; changed && rounds < len(ops)+4; rounds++ {
		changed = false
		for i := 0; i < len(ops); i++ {
			op := ops[i]
			movable := diagonalLike(op.G) || xLike(op.G)
			if !movable || op.G.IsTwoQubit() {
				continue
			}
			q := op.Q[0]
			// Next op touching q.
			j := i + 1
			for j < len(ops) {
				nxt := ops[j]
				touches := nxt.Q[0] == q || (nxt.G.IsTwoQubit() && nxt.Q[1] == q)
				if touches {
					break
				}
				j++
			}
			if j >= len(ops) {
				continue
			}
			nxt := ops[j]
			hop := nxt.G == circuit.CX &&
				((diagonalLike(op.G) && nxt.Q[0] == q) || (xLike(op.G) && nxt.Q[1] == q))
			if !hop {
				continue
			}
			// Move op to just after the CX at j.
			copy(ops[i:j], ops[i+1:j+1])
			ops[j] = op
			changed = true
		}
	}
	out := circuit.New(c.N)
	out.Ops = ops
	return out
}

func diagonalLike(g circuit.GateType) bool {
	switch g {
	case circuit.RZ, circuit.Z, circuit.S, circuit.Sdg, circuit.T, circuit.Tdg:
		return true
	}
	return false
}

func xLike(g circuit.GateType) bool {
	return g == circuit.RX || g == circuit.X
}

// CancelCX removes adjacent identical CX/CZ pairs (with no intervening gate
// on either qubit).
func CancelCX(c *circuit.Circuit) *circuit.Circuit {
	ops := append([]circuit.Op(nil), c.Ops...)
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(ops); i++ {
			if !ops[i].G.IsTwoQubit() {
				continue
			}
			// Find the next op touching either qubit.
			for j := i + 1; j < len(ops); j++ {
				touches := ops[j].Q[0] == ops[i].Q[0] || ops[j].Q[0] == ops[i].Q[1] ||
					(ops[j].G.IsTwoQubit() && (ops[j].Q[1] == ops[i].Q[0] || ops[j].Q[1] == ops[i].Q[1]))
				if !touches {
					continue
				}
				same := ops[j].G == ops[i].G && ((ops[j].Q == ops[i].Q) ||
					(ops[i].G == circuit.CZ && ops[j].Q[0] == ops[i].Q[1] && ops[j].Q[1] == ops[i].Q[0]))
				if same {
					ops = append(ops[:j], ops[j+1:]...)
					ops = append(ops[:i], ops[i+1:]...)
					changed = true
				}
				break
			}
		}
	}
	out := circuit.New(c.N)
	out.Ops = ops
	return out
}

// ToRzBasis lowers every rotation to the CX + H + RZ IR using Eq. (1):
// U3(θ,φ,λ) = Rz(φ+π/2)·H·Rz(θ)·H·Rz(λ−π/2) (time order reversed),
// RX(θ) = H·RZ(θ)·H, RY(θ) = Sdg·H·RZ(θ)·H·S (up to global phase). Trivial
// angles are snapped to discrete gates.
func ToRzBasis(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N)
	for _, op := range c.Ops {
		q := op.Q[0]
		switch op.G {
		case circuit.U3:
			th, ph, la := op.P[0], op.P[1], op.P[2]
			emitRz(out, q, la-math.Pi/2)
			out.H(q)
			emitRz(out, q, th)
			out.H(q)
			emitRz(out, q, ph+math.Pi/2)
		case circuit.RX:
			out.H(q)
			emitRz(out, q, op.P[0])
			out.H(q)
		case circuit.RY:
			// RY(θ) = S·H·RZ(θ)·H·S† in matrix order ⇒ time order S†,H,RZ,H,S.
			out.Gate1(circuit.Sdg, q)
			out.H(q)
			emitRz(out, q, op.P[0])
			out.H(q)
			out.Gate1(circuit.S, q)
		case circuit.RZ:
			emitRz(out, q, op.P[0])
		default:
			out.Add(op)
		}
	}
	return out
}

// emitRz appends RZ(θ), snapping trivial angles to discrete Z/S/T gates.
func emitRz(c *circuit.Circuit, q int, theta float64) {
	theta = math.Mod(theta, 2*math.Pi)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	if !circuit.TrivialAngle(theta) {
		c.RZ(q, theta)
		return
	}
	// θ = m·π/4 up to tolerance; emit the discrete equivalent (up to phase).
	m := int(math.Round(theta/(math.Pi/4))) % 8
	switch m {
	case 0:
	case 1:
		c.T(q)
	case 2:
		c.S(q)
	case 3:
		c.S(q)
		c.T(q)
	case 4:
		c.Z(q)
	case 5:
		c.Z(q)
		c.T(q)
	case 6:
		c.Gate1(circuit.Sdg, q)
	case 7:
		c.Tdg(q)
	}
}

// ToU3Basis lowers to the CX + U3 IR (merging adjacent 1q gates).
func ToU3Basis(c *circuit.Circuit) *circuit.Circuit { return Merge1Q(c) }

// OptimizeWith applies the pass pipeline for a Setting and returns the
// transpiled circuit in the requested basis.
func OptimizeWith(c *circuit.Circuit, s Setting) *circuit.Circuit {
	cur := c.Clone()
	rounds := 1
	switch {
	case s.Level <= 0:
		rounds = 0
	case s.Level == 1:
		rounds = 1
	case s.Level == 2:
		rounds = 2
	default:
		rounds = 4
	}
	for r := 0; r < rounds; r++ {
		if s.Commute {
			cur = Commute(cur)
		}
		cur = Merge1Q(cur)
		if s.Level >= 2 {
			cur = CancelCX(cur)
		}
	}
	if s.Basis == BasisRz {
		cur = ToRzBasis(cur)
		if s.Level >= 1 {
			cur = MergeRz(cur)
		}
	} else {
		cur = ToU3Basis(cur)
	}
	return cur
}

// MergeRz fuses directly adjacent RZ/phase gates on the same qubit
// (the only 1q merge available inside the Rz basis without changing IR).
func MergeRz(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N)
	pendingAngle := make([]float64, c.N)
	hasPending := make([]bool, c.N)
	flush := func(q int) {
		if !hasPending[q] {
			return
		}
		emitRz(out, q, pendingAngle[q])
		pendingAngle[q] = 0
		hasPending[q] = false
	}
	angleOf := func(op circuit.Op) (float64, bool) {
		switch op.G {
		case circuit.RZ:
			return op.P[0], true
		case circuit.Z:
			return math.Pi, true
		case circuit.S:
			return math.Pi / 2, true
		case circuit.Sdg:
			return -math.Pi / 2, true
		case circuit.T:
			return math.Pi / 4, true
		case circuit.Tdg:
			return -math.Pi / 4, true
		}
		return 0, false
	}
	for _, op := range c.Ops {
		if op.G.IsTwoQubit() {
			// RZ commutes with CX control and CZ on both qubits; keep it
			// simple: flush both.
			flush(op.Q[0])
			flush(op.Q[1])
			out.Add(op)
			continue
		}
		if a, ok := angleOf(op); ok {
			pendingAngle[op.Q[0]] += a
			hasPending[op.Q[0]] = true
			continue
		}
		flush(op.Q[0])
		out.Add(op)
	}
	for q := 0; q < c.N; q++ {
		flush(q)
	}
	return out
}

// AllSettings returns the 16 configurations of the paper's Figure 6 sweep.
func AllSettings() []Setting {
	var out []Setting
	for _, basis := range []Basis{BasisRz, BasisU3} {
		for level := 0; level <= 3; level++ {
			for _, commute := range []bool{false, true} {
				out = append(out, Setting{Basis: basis, Level: level, Commute: commute})
			}
		}
	}
	return out
}

// BestSetting transpiles under all 16 settings for the given basis and
// returns the circuit with the fewest nontrivial rotations, with its
// setting. This mirrors the paper's "pick the optimization level with
// minimum rotations" (§2.2, §4.3).
func BestSetting(c *circuit.Circuit, basis Basis) (*circuit.Circuit, Setting) {
	var best *circuit.Circuit
	var bestSetting Setting
	bestCount := math.MaxInt32
	for _, s := range AllSettings() {
		if s.Basis != basis {
			continue
		}
		t := OptimizeWith(c, s)
		if n := t.CountRotations(); n < bestCount {
			best, bestSetting, bestCount = t, s, n
		}
	}
	return best, bestSetting
}
