package transpile

import (
	"math"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/sim"
)

// randomCircuit builds a random circuit with rotations and CX gates.
func randomCircuit(rng *rand.Rand, n, depth int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 2:
			c.RX(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 3:
			c.RY(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 4:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		case 5:
			c.T(rng.Intn(n))
		}
	}
	return c
}

func assertSameUnitary(t *testing.T, a, b *circuit.Circuit, tol float64, msg string) {
	t.Helper()
	if d := sim.UnitaryDistance(sim.Unitary(a), sim.Unitary(b)); d > tol {
		t.Fatalf("%s: unitary distance %v", msg, d)
	}
}

func TestMerge1QPreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 3, 30)
		m := Merge1Q(c)
		assertSameUnitary(t, c, m, 1e-6, "Merge1Q")
		// Merged circuit must not have adjacent 1q gates on the same qubit.
		last1q := make([]int, c.N)
		for i := range last1q {
			last1q[i] = -2
		}
		for i, op := range m.Ops {
			if op.G.IsTwoQubit() {
				last1q[op.Q[0]] = -2
				last1q[op.Q[1]] = -2
				continue
			}
			if last1q[op.Q[0]] >= 0 {
				t.Fatal("adjacent 1q gates survived Merge1Q")
			}
			last1q[op.Q[0]] = i
		}
	}
}

func TestCommutePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 3, 30)
		m := Commute(c)
		assertSameUnitary(t, c, m, 1e-6, "Commute")
	}
}

func TestToRzBasisPreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 3, 25)
		m := ToRzBasis(c)
		assertSameUnitary(t, c, m, 1e-6, "ToRzBasis")
		for _, op := range m.Ops {
			if op.G == circuit.U3 || op.G == circuit.RX || op.G == circuit.RY {
				t.Fatalf("non-RZ rotation %v survived ToRzBasis", op.G)
			}
		}
	}
}

func TestCancelCX(t *testing.T) {
	c := circuit.New(3)
	c.CX(0, 1).CX(0, 1).H(2).CX(1, 2).RZ(0, 0.5).CX(1, 2)
	m := CancelCX(c)
	assertSameUnitary(t, c, m, 1e-9, "CancelCX")
	if m.TwoQubitCount() != 0 {
		t.Fatalf("expected all CX cancelled, %d left", m.TwoQubitCount())
	}
	// Blocking gate prevents cancellation.
	c2 := circuit.New(2)
	c2.CX(0, 1).H(1).CX(0, 1)
	m2 := CancelCX(c2)
	if m2.TwoQubitCount() != 2 {
		t.Fatal("CX pairs across a blocker must not cancel")
	}
}

// TestCommutationEnablesMerges: the QAOA pattern RX(q1)·CX(q0,q1)·RZ(q1)
// where RX commutes through the CX target, enabling a merge.
func TestCommutationEnablesMerges(t *testing.T) {
	c := circuit.New(2)
	c.RX(1, 0.7)
	c.CX(0, 1)
	c.RX(1, 0.9)
	before, _ := BestSetting(c, BasisU3)
	if before.CountRotations() != 1 {
		t.Fatalf("expected commutation to merge the two RX: got %d rotations", before.CountRotations())
	}
	assertSameUnitary(t, c, before, 1e-6, "BestSetting")
}

// TestU3NeedsFewerRotations: diverse-rotation circuits must transpile to
// fewer rotations in U3 than in the Rz basis (Fig. 3b's premise).
func TestU3NeedsFewerRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	wins, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(rng, 4, 40)
		u3, _ := BestSetting(c, BasisU3)
		rz, _ := BestSetting(c, BasisRz)
		if u3.CountRotations() <= rz.CountRotations() {
			wins++
		}
		total++
	}
	if wins < total-1 {
		t.Fatalf("U3 basis beat Rz only %d/%d times", wins, total)
	}
}

func TestOptimizeWithLevelsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 4, 50)
	prev := math.MaxInt32
	for level := 0; level <= 3; level++ {
		s := Setting{Basis: BasisU3, Level: level, Commute: true}
		tc := OptimizeWith(c, s)
		assertSameUnitary(t, c, tc, 1e-6, "OptimizeWith")
		n := tc.CountRotations()
		if n > prev {
			t.Fatalf("rotations increased from level %d: %d > %d", level-1, n, prev)
		}
		prev = n
	}
}

func TestAllSettingsCount(t *testing.T) {
	if n := len(AllSettings()); n != 16 {
		t.Fatalf("expected 16 settings, got %d", n)
	}
}

func TestEmitRzSnapsTrivialAngles(t *testing.T) {
	for m := 0; m < 8; m++ {
		c := circuit.New(1)
		c.RZ(0, float64(m)*math.Pi/4)
		lowered := ToRzBasis(c)
		if lowered.CountRotations() != 0 {
			t.Fatalf("RZ(%dπ/4) should snap to discrete gates", m)
		}
		assertSameUnitary(t, c, lowered, 1e-7, "snap")
	}
}
