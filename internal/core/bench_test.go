package core

// Engine microbenchmarks and the design-choice ablations DESIGN.md calls
// out, kept next to the engine they measure. Service-layer benchmarks
// (BenchmarkCompileBatch) live in the synth package; paper-artifact
// benchmarks live at the repository root.

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/qmat"
)

func BenchmarkTrasynSynthesizeT10(b *testing.B) {
	cfg := DefaultConfig(gates.Shared(5), 5, 2, 1000)
	cfg.Rng = rand.New(rand.NewSource(1))
	u := qmat.HaarRandom(rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(float64(res.TCount), "tcount")
			b.ReportMetric(res.Error, "error")
		}
	}
}

func BenchmarkTrasynSynthesizeT20(b *testing.B) {
	cfg := DefaultConfig(gates.Shared(5), 5, 4, 2000)
	cfg.MinSites = 4
	cfg.Rng = rand.New(rand.NewSource(1))
	u := qmat.HaarRandom(rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(float64(res.TCount), "tcount")
			b.ReportMetric(res.Error, "error")
		}
	}
}

// AblationBudgetSplit: same total T budget, different per-tensor splits.
// Small-budget/long chains are cheaper per sample and finer-grained.
func BenchmarkAblationBudgetM5L4(b *testing.B)  { ablationSplit(b, 5, 4) }
func BenchmarkAblationBudgetM10L2(b *testing.B) { ablationSplit(b, 10, 2) }

func ablationSplit(b *testing.B, m, l int) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(3)))
	cfg := DefaultConfig(gates.Shared(m), m, l, 1500)
	cfg.MinSites = l
	cfg.Rng = rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(res.Error, "error")
			b.ReportMetric(float64(res.TCount), "tcount")
		}
	}
}

// AblationSamplerBeamVsRandom: deterministic beam search vs perfect
// sampling at matched candidate counts.
func BenchmarkAblationSamplerRandom(b *testing.B) { ablationSampler(b, false) }
func BenchmarkAblationSamplerBeam(b *testing.B)   { ablationSampler(b, true) }

func ablationSampler(b *testing.B, beam bool) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(5)))
	cfg := DefaultConfig(gates.Shared(5), 5, 3, 1024)
	cfg.MinSites = 3
	cfg.UseBeam = beam
	cfg.BeamWidth = 256
	cfg.Rng = rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Synthesize(u, cfg)
		if i == 0 {
			b.ReportMetric(res.Error, "error")
		}
	}
}

// AblationRewrite: step-3 post-processing on vs off (Clifford savings).
func BenchmarkAblationWithRewrite(b *testing.B) {
	seqLen := 0
	tab := gates.Shared(5)
	rng := rand.New(rand.NewSource(7))
	alphabet := []gates.Gate{gates.H, gates.S, gates.T, gates.X, gates.Z, gates.Tdg, gates.Sdg}
	seqs := make([]gates.Sequence, 32)
	for i := range seqs {
		s := make(gates.Sequence, 60)
		for j := range s {
			s[j] = alphabet[rng.Intn(len(alphabet))]
		}
		seqs[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Rewrite(seqs[i%len(seqs)], tab)
		seqLen += len(out)
	}
	if b.N > 0 {
		b.ReportMetric(float64(seqLen)/float64(b.N), "outlen")
	}
}
