package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/qmat"
)

func testConfig(t *testing.T, m, sites, k int) Config {
	t.Helper()
	cfg := DefaultConfig(gates.Shared(min(m, 6)), min(m, 6), sites, k)
	cfg.Rng = rand.New(rand.NewSource(42))
	return cfg
}

// TestSequenceMatchesError: the returned sequence's product must realize the
// reported error (the "error for free" property of the MPS must agree with
// an independent numeric evaluation).
func TestSequenceMatchesError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig(t, 6, 2, 2000)
	for i := 0; i < 10; i++ {
		u := qmat.HaarRandom(rng)
		res := Synthesize(u, cfg)
		if res.Seq == nil {
			t.Fatal("no sequence returned")
		}
		d := qmat.Distance(u, res.Seq.Matrix())
		if math.Abs(d-res.Error) > 1e-6 {
			t.Fatalf("reported error %v but sequence realizes %v", res.Error, d)
		}
		if res.Seq.TCount() != res.TCount || res.Seq.CliffordCount() != res.Clifford {
			t.Fatal("cost metadata does not match sequence")
		}
	}
}

// TestSingleSiteIsOptimal: with one tensor, trasyn is an exact lookup table
// (§4.1), so it must return the true argmax over the enumeration.
func TestSingleSiteIsOptimal(t *testing.T) {
	tab := gates.Shared(4)
	cfg := DefaultConfig(tab, 4, 1, 100)
	cfg.Rng = rand.New(rand.NewSource(2))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5; i++ {
		u := qmat.HaarRandom(rng)
		res := Synthesize(u, cfg)
		// Brute-force best.
		best := math.Inf(1)
		for _, e := range tab.Collect(0, 4) {
			if d := qmat.Distance(u, e.M); d < best {
				best = d
			}
		}
		if math.Abs(res.Error-best) > 1e-9 {
			t.Fatalf("single-site result %v worse than brute force %v", res.Error, best)
		}
	}
}

// TestExactTargetIsFound: a target that IS a Clifford+T operator must be
// synthesized with (near-)zero error and no more T gates than it needs.
func TestExactTargetIsFound(t *testing.T) {
	tab := gates.Shared(5)
	cfg := DefaultConfig(tab, 5, 1, 100)
	cfg.Rng = rand.New(rand.NewSource(4))
	target := gates.Sequence{T, gates.H, gates.T, gates.S, gates.H, gates.T}
	u := target.Matrix()
	res := Synthesize(u, cfg)
	if res.Error > 1e-7 {
		t.Fatalf("exact target not found: err=%v", res.Error)
	}
	if res.TCount > target.TCount() {
		t.Fatalf("found T=%d, target needs ≤ %d", res.TCount, target.TCount())
	}
}

// T gate alias for test readability.
const T = gates.T

// TestMoreSitesReachLowerError: error should improve (or at least not
// regress) as the T budget grows — the paper's scaling claim at small size.
func TestMoreSitesReachLowerError(t *testing.T) {
	tab := gates.Shared(5)
	rng := rand.New(rand.NewSource(5))
	worse, total := 0, 0
	for i := 0; i < 8; i++ {
		u := qmat.HaarRandom(rng)
		cfg1 := DefaultConfig(tab, 5, 1, 4000)
		cfg1.Rng = rand.New(rand.NewSource(int64(i)))
		r1 := Synthesize(u, cfg1)
		cfg2 := DefaultConfig(tab, 5, 2, 4000)
		cfg2.Rng = rand.New(rand.NewSource(int64(i)))
		cfg2.KeepBest = 64
		r2 := Synthesize(u, cfg2)
		total++
		if r2.Error > r1.Error*1.05 {
			worse++
		}
	}
	if worse > total/2 {
		t.Fatalf("two sites worse than one in %d/%d cases", worse, total)
	}
}

// TestTRASYNRespectsEpsilon: Algorithm 1 in Eq. (4) mode stops at the first
// budget prefix that satisfies the threshold.
func TestTRASYNRespectsEpsilon(t *testing.T) {
	tab := gates.Shared(6)
	cfg := DefaultConfig(tab, 6, 3, 3000)
	cfg.Rng = rand.New(rand.NewSource(6))
	cfg.Epsilon = 0.05
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		u := qmat.HaarRandom(rng)
		res := TRASYN(u, cfg)
		if res.Error >= cfg.Epsilon {
			t.Fatalf("TRASYN missed epsilon: %v ≥ %v", res.Error, cfg.Epsilon)
		}
	}
}

// TestBeamMode: deterministic beam search must work end to end and be
// reproducible.
func TestBeamMode(t *testing.T) {
	tab := gates.Shared(5)
	cfg := DefaultConfig(tab, 5, 2, 0)
	cfg.UseBeam = true
	cfg.BeamWidth = 64
	u := qmat.HaarRandom(rand.New(rand.NewSource(8)))
	r1 := Synthesize(u, cfg)
	r2 := Synthesize(u, cfg)
	if r1.Error != r2.Error || r1.Seq.String() != r2.Seq.String() {
		t.Fatal("beam mode not deterministic")
	}
	if d := qmat.Distance(u, r1.Seq.Matrix()); math.Abs(d-r1.Error) > 1e-6 {
		t.Fatal("beam sequence does not realize reported error")
	}
}

// TestRewritePreservesOperator: step 3 must preserve the product up to
// global phase while never increasing (T, Clifford) cost.
func TestRewritePreservesOperator(t *testing.T) {
	tab := gates.Shared(5)
	rng := rand.New(rand.NewSource(9))
	alphabet := []gates.Gate{gates.X, gates.Z, gates.H, gates.S, gates.Sdg, gates.T, gates.Tdg}
	for trial := 0; trial < 100; trial++ {
		var seq gates.Sequence
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			seq = append(seq, alphabet[rng.Intn(len(alphabet))])
		}
		rw := Rewrite(seq, tab)
		if d := qmat.Distance(seq.Matrix(), rw.Matrix()); d > 1e-7 {
			t.Fatalf("rewrite changed the operator: d=%v\n in: %v\nout: %v", d, seq, rw)
		}
		if rw.TCount() > seq.TCount() {
			t.Fatalf("rewrite increased T count: %d → %d", seq.TCount(), rw.TCount())
		}
	}
}

// TestRewriteReducesRedundancy: classic redundant patterns must collapse.
func TestRewriteReducesRedundancy(t *testing.T) {
	tab := gates.Shared(5)
	cases := []struct {
		in   gates.Sequence
		maxT int
	}{
		{gates.Sequence{T, gates.Tdg}, 0},
		{gates.Sequence{T, T}, 0},                               // = S
		{gates.Sequence{gates.H, gates.H, T, T, T, T}, 0},       // = Z
		{gates.Sequence{T, gates.H, gates.H, T}, 1},             // = S up to H² = I
		{gates.Sequence{gates.S, gates.S, gates.S, gates.S}, 0}, // = I
	}
	for _, c := range cases {
		rw := Rewrite(c.in, tab)
		if rw.TCount() > c.maxT {
			t.Errorf("Rewrite(%v) kept %d T gates, want ≤ %d (got %v)", c.in, rw.TCount(), c.maxT, rw)
		}
	}
}

// TestConfigValidation: missing required fields must panic loudly.
func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing table")
		}
	}()
	Synthesize(qmat.I2(), Config{Budgets: []int{3}})
}

func BenchmarkSynthesize2Sites(b *testing.B) {
	tab := gates.Shared(6)
	cfg := DefaultConfig(tab, 6, 2, 2000)
	cfg.Rng = rand.New(rand.NewSource(10))
	u := qmat.HaarRandom(rand.New(rand.NewSource(11)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize(u, cfg)
	}
}
