// Package core implements trasyn, the paper's tensor-network-guided
// synthesis of arbitrary single-qubit unitaries over Clifford+T (§3).
//
// Step 0 (the enumeration) lives in package gates; this package builds the
// trace-value MPS over the enumerated building blocks (step 1), samples
// high-trace-value gate sequences (step 2), rewrites suboptimal junctions
// with the lookup table (step 3), and wraps everything in the Algorithm 1
// outer loop that trades T budget against synthesis error.
package core

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/gates"
	"repro/internal/mps"
	"repro/internal/qmat"
)

// Config controls a synthesis run. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Table is the step-0 enumeration (shared, immutable).
	Table *gates.Table
	// Budgets is the per-tensor T-count budget list (the paper's m). Site i
	// draws from all enumerated operators with T count ≤ Budgets[i].
	Budgets []int
	// MinSites is Algorithm 1's l: the first attempt uses Budgets[:MinSites].
	MinSites int
	// Samples is the number of MPS samples k per attempt.
	Samples int
	// EnvCap bounds concurrently tracked sample groups (0 = unlimited).
	EnvCap int
	// Attempts is Algorithm 1's r: sampling retries per budget prefix.
	Attempts int
	// Epsilon, when positive, turns the run into the Eq. (4) form: stop as
	// soon as the error threshold is met.
	Epsilon float64
	// UseBeam switches step 2 from sampling to a deterministic beam search
	// of width BeamWidth (an extension; the paper samples).
	UseBeam   bool
	BeamWidth int
	// KeepBest is how many top-trace samples are post-processed per attempt.
	KeepBest int
	// Rng drives sampling; nil selects a fixed default seed so that runs
	// are reproducible unless the caller opts into randomness.
	Rng *rand.Rand
	// Cancel, when non-nil, aborts TRASYN between attempts (the natural
	// preemption granularity); the best result so far is returned.
	Cancel <-chan struct{}
}

// DefaultConfig returns a CPU-friendly configuration: per-site budget m,
// nSites tensors, k samples. The paper's reference configuration is
// m=10, nSites∈{1,2,3}, k=40000 on an A100; defaults here are scaled for
// laptop-class hardware and can be raised freely.
func DefaultConfig(table *gates.Table, m, nSites, k int) Config {
	budgets := make([]int, nSites)
	for i := range budgets {
		budgets[i] = m
	}
	return Config{
		Table:     table,
		Budgets:   budgets,
		MinSites:  1,
		Samples:   k,
		EnvCap:    0, // unbounded: marginals at early sites are nearly flat
		Attempts:  1,
		KeepBest:  32,
		BeamWidth: 192,
	}
}

// Result is a synthesized approximation of the target.
type Result struct {
	Seq      gates.Sequence // gate sequence in matrix-product order
	Error    float64        // unitary distance Eq. (2) to the target
	TCount   int
	Clifford int // non-Pauli Clifford gates (H, S, S†)
	Sites    int // tensors used in the MPS for the winning attempt
	Evals    int // configurations examined across all attempts
}

// Synthesize solves the Eq. (3) form: minimize the distance to u subject to
// the per-site budgets (steps 1–3, no outer loop). The returned sequence's
// product equals the sampled operator up to global phase.
func Synthesize(u qmat.M2, cfg Config) Result {
	cfg = fill(cfg)
	return synthesizeOnce(u, cfg, cfg.Budgets)
}

// TRASYN is Algorithm 1: attempts budgets[:l], budgets[:l+1], …, r times
// each, keeping the best solution; with Epsilon > 0 it returns as soon as
// the threshold is met, effectively solving Eq. (4).
func TRASYN(u qmat.M2, cfg Config) Result {
	cfg = fill(cfg)
	best := Result{Error: math.Inf(1)}
	evals := 0
	for i := cfg.MinSites; i <= len(cfg.Budgets); i++ {
		for j := 0; j < cfg.Attempts; j++ {
			if cfg.Cancel != nil {
				select {
				case <-cfg.Cancel:
					best.Evals = evals
					return best
				default:
				}
			}
			res := synthesizeOnce(u, cfg, cfg.Budgets[:i])
			evals += res.Evals
			if res.Error < best.Error ||
				(res.Error == best.Error && res.TCount < best.TCount) {
				best = res
			}
			if cfg.Epsilon > 0 && best.Error < cfg.Epsilon {
				best.Evals = evals
				return best
			}
		}
	}
	best.Evals = evals
	return best
}

func fill(cfg Config) Config {
	if cfg.Table == nil {
		panic("core: Config.Table is required")
	}
	if len(cfg.Budgets) == 0 {
		panic("core: Config.Budgets is required")
	}
	if cfg.MinSites <= 0 {
		cfg.MinSites = 1
	}
	if cfg.MinSites > len(cfg.Budgets) {
		cfg.MinSites = len(cfg.Budgets)
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 1024
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 1
	}
	if cfg.KeepBest <= 0 {
		cfg.KeepBest = 16
	}
	if cfg.BeamWidth <= 0 {
		cfg.BeamWidth = 128
	}
	if cfg.Rng == nil {
		// A fixed default seed: reproducible batch runs must not depend on
		// the clock (callers wanting fresh randomness pass their own Rng).
		cfg.Rng = rand.New(rand.NewSource(1))
	}
	return cfg
}

func synthesizeOnce(u qmat.M2, cfg Config, budgets []int) Result {
	// Assemble per-site candidate lists from the enumeration.
	entries := make([][]*gates.Entry, len(budgets))
	mats := make([][]qmat.M2, len(budgets))
	for i, b := range budgets {
		if b > cfg.Table.MaxT {
			b = cfg.Table.MaxT
		}
		es := cfg.Table.Collect(0, b)
		ms := make([]qmat.M2, len(es))
		for j, e := range es {
			ms[j] = e.M
		}
		entries[i] = es
		mats[i] = ms
	}
	chain := mps.Build(u, mats)

	var samples []mps.Sampled
	if cfg.UseBeam || len(budgets) == 1 {
		// A single site is a lookup table: the beam scan is exact (§4.1).
		samples = chain.Beam(cfg.BeamWidth)
	} else {
		// Error-aware sampling with an exact argmax completion of the last
		// tensor per sampled prefix (same cost as a plain draw, strictly
		// better for the Eq. (3) objective).
		samples = chain.SampleBestTail(cfg.Rng, cfg.Samples, cfg.EnvCap)
	}
	best := Result{Error: math.Inf(1), Sites: len(budgets), Evals: len(samples)}
	if len(samples) == 0 {
		return best
	}
	// Examine the top KeepBest by trace value.
	top := topByTrace(samples, cfg.KeepBest)
	for _, s := range top {
		err := qmat.DistanceFromTrace(s.Trace)
		var seq gates.Sequence
		for site, idx := range s.Indices {
			seq = append(seq, entries[site][idx].Sequence()...)
		}
		seq = Rewrite(seq, cfg.Table)
		t, c := seq.TCount(), seq.CliffordCount()
		if err < best.Error ||
			(err == best.Error && (t < best.TCount || (t == best.TCount && c < best.Clifford))) {
			best.Error = err
			best.Seq = seq
			best.TCount = t
			best.Clifford = c
		}
	}
	return best
}

// Candidates returns up to cfg.KeepBest distinct post-processed
// approximations of u, best error first — the raw material for ensemble
// techniques such as probabilistic mixing (paper §5), which consume several
// nearby approximations rather than a single winner.
func Candidates(u qmat.M2, cfg Config) []Result {
	cfg = fill(cfg)
	budgets := cfg.Budgets
	entries := make([][]*gates.Entry, len(budgets))
	mats := make([][]qmat.M2, len(budgets))
	for i, b := range budgets {
		if b > cfg.Table.MaxT {
			b = cfg.Table.MaxT
		}
		es := cfg.Table.Collect(0, b)
		ms := make([]qmat.M2, len(es))
		for j, e := range es {
			ms[j] = e.M
		}
		entries[i] = es
		mats[i] = ms
	}
	chain := mps.Build(u, mats)
	var samples []mps.Sampled
	if cfg.UseBeam || len(budgets) == 1 {
		samples = chain.Beam(cfg.BeamWidth)
	} else {
		samples = chain.SampleBestTail(cfg.Rng, cfg.Samples, cfg.EnvCap)
	}
	top := topByTrace(samples, cfg.KeepBest)
	out := make([]Result, 0, len(top))
	seen := map[string]bool{}
	for _, s := range top {
		var seq gates.Sequence
		for site, idx := range s.Indices {
			seq = append(seq, entries[site][idx].Sequence()...)
		}
		seq = Rewrite(seq, cfg.Table)
		key := seq.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Result{
			Seq:      seq,
			Error:    qmat.DistanceFromTrace(s.Trace),
			TCount:   seq.TCount(),
			Clifford: seq.CliffordCount(),
			Sites:    len(budgets),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Error < out[j].Error })
	return out
}

// topByTrace selects up to n samples with the largest |trace| (selection
// without a full sort; sample lists can be large).
func topByTrace(samples []mps.Sampled, n int) []mps.Sampled {
	if len(samples) <= n {
		return samples
	}
	out := make([]mps.Sampled, 0, n)
	absv := func(c complex128) float64 {
		return real(c)*real(c) + imag(c)*imag(c)
	}
	worst := -1.0
	worstIdx := -1
	recomputeWorst := func() {
		worst, worstIdx = math.Inf(1), -1
		for i, s := range out {
			if v := absv(s.Trace); v < worst {
				worst, worstIdx = v, i
			}
		}
	}
	for _, s := range samples {
		v := absv(s.Trace)
		if len(out) < n {
			out = append(out, s)
			if len(out) == n {
				recomputeWorst()
			}
			continue
		}
		if v > worst {
			out[worstIdx] = s
			recomputeWorst()
		}
	}
	return out
}

// Rewrite is step 3: scan the sequence for windows whose exact product has
// a cheaper enumerated form and substitute it. Every window with T count ≤
// Table.MaxT is guaranteed to be found (MA normal forms are exhaustive), so
// segments are replaced by their canonical minimal form; alternating
// segmentation offsets across passes catches junction reductions. The
// product is preserved up to global phase.
func Rewrite(seq gates.Sequence, tab *gates.Table) gates.Sequence {
	if tab == nil || len(seq) == 0 {
		return seq
	}
	cost := func(s gates.Sequence) (int, int, int) {
		return s.TCount(), s.CliffordCount(), len(s)
	}
	better := func(a, b gates.Sequence) bool {
		at, ac, al := cost(a)
		bt, bc, bl := cost(b)
		if at != bt {
			return at < bt
		}
		if ac != bc {
			return ac < bc
		}
		return al < bl
	}
	cur := seq
	for pass := 0; pass < 12; pass++ {
		offset := 0
		if pass%2 == 1 && len(cur) > 1 {
			offset = 1 // shift segmentation to heal junctions
		}
		next := append(gates.Sequence{}, cur[:offset]...)
		i := offset
		changed := false
		for i < len(cur) {
			// Grow the window to the maximal T budget.
			j := i
			tcount := 0
			u := gates.Sequence(nil).UMat()
			for j < len(cur) {
				g := cur[j]
				if g.IsT() && tcount == tab.MaxT {
					break
				}
				u = u.Mul(g.UMat())
				if g.IsT() {
					tcount++
				}
				j++
			}
			window := cur[i:j]
			if e, ok := tab.Find(u); ok {
				rep := e.Sequence()
				if better(rep, window) {
					next = append(next, rep...)
					changed = true
					i = j
					continue
				}
			}
			next = append(next, window...)
			i = j
		}
		if !changed && pass >= 1 {
			return dropLeadingPaulis(next)
		}
		cur = next
	}
	return dropLeadingPaulis(cur)
}

// dropLeadingPaulis removes no-cost identity gates (I) anywhere; Paulis are
// kept (they are free but still part of the operator).
func dropLeadingPaulis(seq gates.Sequence) gates.Sequence {
	out := seq[:0]
	for _, g := range seq {
		if g == gates.I {
			continue
		}
		out = append(out, g)
	}
	return out
}
