// Package tensor provides dense complex tensors with reshaping, axis
// permutation and pairwise contraction. It is the generic counterpart to
// the specialized flat-slice hot loops in package mps; tests use it to
// brute-force-verify the tensor-network constructions.
package tensor

import (
	"fmt"

	"repro/internal/linalg"
)

// Tensor is a dense complex tensor in row-major (last index fastest) layout.
type Tensor struct {
	Shape []int
	Data  []complex128
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic("tensor: non-positive dimension")
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]complex128, n)}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// offset computes the flat index of a multi-index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic("tensor: wrong index rank")
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for axis %d (dim %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) complex128 { return t.Data[t.offset(idx)] }

// Set assigns the element at the multi-index.
func (t *Tensor) Set(v complex128, idx ...int) { t.Data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view-copy with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic("tensor: reshape size mismatch")
	}
	c := &Tensor{Shape: append([]int(nil), shape...), Data: make([]complex128, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Permute returns the tensor with axes reordered: result axis i is input
// axis perm[i].
func (t *Tensor) Permute(perm ...int) *Tensor {
	if len(perm) != len(t.Shape) {
		panic("tensor: bad permutation")
	}
	shape := make([]int, len(perm))
	for i, p := range perm {
		shape[i] = t.Shape[p]
	}
	out := New(shape...)
	srcIdx := make([]int, len(perm))
	dstIdx := make([]int, len(perm))
	var walk func(axis int)
	walk = func(axis int) {
		if axis == len(perm) {
			for i, p := range perm {
				srcIdx[p] = dstIdx[i]
			}
			out.Data[out.offset(dstIdx)] = t.Data[t.offset(srcIdx)]
			return
		}
		for x := 0; x < shape[axis]; x++ {
			dstIdx[axis] = x
			walk(axis + 1)
		}
	}
	walk(0)
	return out
}

// Contract contracts axesA of a with axesB of b (paired in order) and
// returns the result with a's free axes first, then b's.
func Contract(a, b *Tensor, axesA, axesB []int) *Tensor {
	if len(axesA) != len(axesB) {
		panic("tensor: axis count mismatch")
	}
	for i := range axesA {
		if a.Shape[axesA[i]] != b.Shape[axesB[i]] {
			panic("tensor: contracted dimensions differ")
		}
	}
	// Move contracted axes to the end of a and the start of b, then matmul.
	freeA := complement(len(a.Shape), axesA)
	freeB := complement(len(b.Shape), axesB)
	pa := a.Permute(append(append([]int{}, freeA...), axesA...)...)
	pb := b.Permute(append(append([]int{}, axesB...), freeB...)...)
	m, k, n := 1, 1, 1
	var outShape []int
	for _, ax := range freeA {
		m *= a.Shape[ax]
		outShape = append(outShape, a.Shape[ax])
	}
	for _, ax := range axesA {
		k *= a.Shape[ax]
	}
	for _, ax := range freeB {
		n *= b.Shape[ax]
		outShape = append(outShape, b.Shape[ax])
	}
	ma := linalg.Matrix{Rows: m, Cols: k, Data: pa.Data}
	mb := linalg.Matrix{Rows: k, Cols: n, Data: pb.Data}
	mc := ma.Mul(mb)
	if len(outShape) == 0 {
		outShape = []int{1}
	}
	return &Tensor{Shape: outShape, Data: mc.Data}
}

func complement(rank int, axes []int) []int {
	used := make([]bool, rank)
	for _, a := range axes {
		used[a] = true
	}
	var out []int
	for i := 0; i < rank; i++ {
		if !used[i] {
			out = append(out, i)
		}
	}
	return out
}
